#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/fleet.h"
#include "src/cluster/karma.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace proteus {
namespace cluster {
namespace {

class ClusterSchedulerTest : public ::testing::Test {
 protected:
  ClusterSchedulerTest() : catalog_(InstanceTypeCatalog::Default()) {
    SyntheticTraceConfig config;
    config.spikes_per_day = 3.0;
    Rng rng(81);
    traces_ = TraceStore::GenerateSynthetic(catalog_, {"z0"}, 40 * kDay, config, rng);
    estimator_.Train(traces_, 0.0, 15 * kDay);
    scheduler_ = std::make_unique<ClusterScheduler>(&catalog_, &traces_, &estimator_);
  }

  static TenantSpec Tenant(const std::string& name, double slot_hours, int max_slots) {
    TenantSpec spec;
    spec.name = name;
    spec.slot_hours = slot_hours;
    spec.max_slots = max_slots;
    return spec;
  }

  // Fleet rounds start past the estimator's training window.
  FleetConfig Config(int capacity, int rounds = 24) const {
    FleetConfig config;
    config.slot_market = {"z0", "c4.xlarge"};
    config.start = 16 * kDay;
    config.rounds = rounds;
    config.fixed_capacity = capacity;
    return config;
  }

  FleetResult Run(const std::vector<TenantSpec>& specs, const FleetConfig& config,
                  const std::string& mechanism = "karma") {
    const auto allocator = MakeAllocator(mechanism);
    return scheduler_->Run(specs, *allocator, config);
  }

  InstanceTypeCatalog catalog_;
  TraceStore traces_;
  EvictionEstimator estimator_;
  std::unique_ptr<ClusterScheduler> scheduler_;
};

TEST_F(ClusterSchedulerTest, SingleTenantCompletesAndAccountsItsWork) {
  const FleetResult result = Run({Tenant("a", 6.0, 4)}, Config(8));
  const TenantResult* a = result.Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->admitted);
  EXPECT_TRUE(a->completed);
  EXPECT_TRUE(a->deadline_met);  // No deadline: trivially met.
  EXPECT_GT(a->completion_time, 16 * kDay);
  EXPECT_NEAR(a->useful_hours, 6.0, 1e-6);
  EXPECT_GE(a->allocated_hours, a->useful_hours);
  EXPECT_GT(a->cost, 0.0);
  EXPECT_GT(result.total_useful_hours, 0.0);
}

TEST_F(ClusterSchedulerTest, EmptyFleetRunsTheHorizonWithoutWork) {
  const FleetResult result = Run({}, Config(8, 6));
  EXPECT_TRUE(result.tenants.empty());
  EXPECT_TRUE(result.tenant_rounds.empty());
  ASSERT_EQ(result.rounds.size(), 6u);
  EXPECT_DOUBLE_EQ(result.total_useful_hours, 0.0);
  EXPECT_DOUBLE_EQ(result.mean_utilization, 0.0);
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
  // The CSV/digest machinery still produces a stable artifact.
  EXPECT_EQ(result.Digest(), Run({}, Config(8, 6)).Digest());
}

TEST_F(ClusterSchedulerTest, GrantsRespectCapacityAndCreditsConserve) {
  std::vector<TenantSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(Tenant("t" + std::to_string(i), 500.0, 12));
  }
  const FleetResult result = Run(specs, Config(10));
  ASSERT_FALSE(result.rounds.empty());
  for (const RoundRecord& rec : result.rounds) {
    EXPECT_LE(rec.granted, rec.capacity) << "round " << rec.round;
    EXPECT_TRUE(rec.conservation_ok) << "round " << rec.round;
    EXPECT_LE(rec.utilization, 1.0 + 1e-9) << "round " << rec.round;
    EXPECT_GE(rec.escrow, 0) << "round " << rec.round;
  }
  // Oversubscribed 48 slots of demand onto 10: the pool stays busy.
  EXPECT_GT(result.mean_utilization, 0.5);
}

TEST_F(ClusterSchedulerTest, CapacityDropPreemptsHeldSlots) {
  const SimTime start = 16 * kDay;
  FleetConfig config = Config(0, 12);
  config.capacity = CapacityTrace({{0.0, 16}, {start + 4 * kHour, 2}});
  const FleetResult result =
      Run({Tenant("a", 500.0, 8), Tenant("b", 500.0, 8)}, config);
  EXPECT_GT(result.preempted_slots, 0);
  for (const RoundRecord& rec : result.rounds) {
    if (rec.round >= 4) {
      EXPECT_EQ(rec.capacity, 2) << "round " << rec.round;
    }
    EXPECT_LE(rec.granted, rec.capacity) << "round " << rec.round;
  }
}

TEST_F(ClusterSchedulerTest, MidRoundArrivalAdmittedAtNextBoundary) {
  TenantSpec late = Tenant("late", 4.0, 4);
  late.arrival = 16 * kDay + 1.5 * kHour;  // Mid-round-1.
  const FleetResult result = Run({Tenant("early", 4.0, 4), late}, Config(8));
  int first_late_round = -1;
  for (const TenantRound& row : result.tenant_rounds) {
    if (row.tenant == 1) {
      first_late_round = row.round;
      break;
    }
  }
  EXPECT_EQ(first_late_round, 2);
  const TenantResult* l = result.Find("late");
  ASSERT_NE(l, nullptr);
  EXPECT_TRUE(l->admitted);
  EXPECT_TRUE(l->completed);
}

TEST_F(ClusterSchedulerTest, SimultaneousDeadlinesBothMetDeterministically) {
  TenantSpec a = Tenant("a", 8.0, 4);
  TenantSpec b = Tenant("b", 8.0, 4);
  a.deadline = b.deadline = 16 * kDay + 12 * kHour;
  const FleetResult result = Run({a, b}, Config(8));
  for (const std::string& name : {"a", "b"}) {
    const TenantResult* t = result.Find(name);
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(t->completed) << name;
    EXPECT_TRUE(t->deadline_met) << name;
    EXPECT_LE(t->completion_time, a.deadline) << name;
  }
  // Identical contenders resolve by tenant id, not anything racy.
  EXPECT_EQ(result.Digest(), Run({a, b}, Config(8)).Digest());
}

TEST_F(ClusterSchedulerTest, TightDeadlineTriggersOnDemandTopUp) {
  TenantSpec spec = Tenant("rush", 30.0, 8);
  spec.deadline = 16 * kDay + 12 * kHour;
  const FleetResult result = Run({spec}, Config(2, 14));
  int od_slots = 0;
  for (const RoundRecord& rec : result.rounds) {
    od_slots += rec.on_demand;
  }
  EXPECT_GT(od_slots, 0);  // 2 spot slots cannot make 30h by hour 12.
  const TenantResult* t = result.Find("rush");
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->completed);
  EXPECT_TRUE(t->deadline_met);
}

TEST_F(ClusterSchedulerTest, CancellationDuringPrepYieldsNoUsefulWork) {
  TenantSpec spec = Tenant("gone", 50.0, 4);
  spec.cancel_at = 16 * kDay + 2 * kMinute;  // Inside the 5min prep delay.
  const FleetResult result = Run({spec}, Config(8, 4));
  const TenantResult* t = result.Find("gone");
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->admitted);
  EXPECT_TRUE(t->cancelled);
  EXPECT_FALSE(t->completed);
  EXPECT_DOUBLE_EQ(t->useful_hours, 0.0);
  // It still held (and paid for) the slots it was granted while preparing.
  EXPECT_GT(t->allocated_hours, 0.0);
  EXPECT_GT(t->cost, 0.0);
}

TEST_F(ClusterSchedulerTest, DigestIsByteIdenticalAcrossThreadCounts) {
  std::vector<TenantSpec> specs;
  for (int i = 0; i < 6; ++i) {
    TenantSpec spec = Tenant("t" + std::to_string(i), 300.0, 10);
    spec.active_fraction = 0.6;
    spec.demand_seed = 40 + static_cast<std::uint64_t>(i);
    if (i == 4) {
      spec.strategy = DemandStrategy::kInflate;
    }
    if (i == 5) {
      spec.strategy = DemandStrategy::kAlwaysMax;
    }
    specs.push_back(spec);
  }
  FleetConfig config = Config(14);
  config.threads = 1;
  const FleetResult serial = Run(specs, config);
  config.threads = 4;
  const FleetResult parallel = Run(specs, config);
  EXPECT_EQ(serial.ToCsv(), parallel.ToCsv());
  EXPECT_EQ(serial.Digest(), parallel.Digest());
}

TEST_F(ClusterSchedulerTest, EmitsPerTenantMetricsAndRoundSpans) {
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  scheduler_->SetObservability(&tracer, &metrics);
  const FleetConfig config = Config(8, 6);
  Run({Tenant("a", 4.0, 4), Tenant("b", 4.0, 4)}, config);
  scheduler_->SetObservability(nullptr, nullptr);

  const obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Value("cluster.rounds"), 6.0);
  EXPECT_NE(snap.Find("cluster.utilization.mean"), nullptr);
  EXPECT_NE(snap.Find("cluster.fairness.jain_long"), nullptr);
  const obs::MetricPoint* a_hours =
      snap.Find("cluster.tenant.useful_hours", {{"tenant", "a"}});
  ASSERT_NE(a_hours, nullptr);
  EXPECT_NEAR(a_hours->value, 4.0, 1e-6);
  EXPECT_NE(snap.Find("cluster.tenant.credits", {{"tenant", "b"}}), nullptr);
}

}  // namespace
}  // namespace cluster
}  // namespace proteus
