#include <gtest/gtest.h>

#include <thread>

#include "src/common/rng.h"
#include "src/rpc/channel.h"
#include "src/rpc/messages.h"
#include "src/rpc/serializer.h"

namespace proteus {
namespace {

TEST(Serializer, ScalarRoundTrip) {
  WireWriter w;
  w.U8(7);
  w.U32(123456);
  w.U64(1ULL << 40);
  w.I32(-42);
  w.I64(-(1LL << 33));
  w.F64(3.14159);
  WireReader r(w.bytes());
  EXPECT_EQ(r.U8().value(), 7);
  EXPECT_EQ(r.U32().value(), 123456u);
  EXPECT_EQ(r.U64().value(), 1ULL << 40);
  EXPECT_EQ(r.I32().value(), -42);
  EXPECT_EQ(r.I64().value(), -(1LL << 33));
  EXPECT_DOUBLE_EQ(r.F64().value(), 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serializer, StringAndArrayRoundTrip) {
  WireWriter w;
  w.Str("hello proteus");
  const std::vector<float> floats{1.5F, -2.5F, 0.0F};
  w.FloatArray(floats);
  const std::vector<std::int32_t> ints{10, 20, 30};
  w.I32Array(ints);
  WireReader r(w.bytes());
  EXPECT_EQ(r.Str().value(), "hello proteus");
  EXPECT_EQ(r.FloatArray().value(), floats);
  EXPECT_EQ(r.I32Array().value(), ints);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serializer, TruncationFailsCleanly) {
  WireWriter w;
  w.U64(99);
  auto bytes = w.Take();
  bytes.resize(4);  // Cut in half.
  WireReader r(bytes);
  EXPECT_FALSE(r.U64().has_value());
  EXPECT_TRUE(r.failed());
  // Subsequent reads stay failed.
  EXPECT_FALSE(r.U8().has_value());
}

TEST(Serializer, HostileLengthRejectedWithoutAllocation) {
  WireWriter w;
  w.U32(0xFFFFFFFFu);  // Claimed array length ~4 billion.
  WireReader r(w.bytes());
  EXPECT_FALSE(r.FloatArray().has_value());
  EXPECT_TRUE(r.failed());
}

TEST(Messages, AllTypesRoundTrip) {
  const std::vector<Message> originals = {
      AppCharacteristicsMsg{0.95, 30.0, 60.0, 8.0},
      AllocationRequestMsg{"us-east-1a", "c4.xlarge", 16, 0.23},
      AllocationGrantMsg{7, {100, 101, 102}, 4},
      EvictionNoticeMsg{7, {100, 101}, 120.0},
      ReadParamMsg{1, 123456789LL},
      ParamValueMsg{1, 42, {1.0F, 2.0F}},
      UpdateParamMsg{0, 7, {-0.5F}},
      WorkerReadyMsg{103, 25000},
  };
  for (const Message& original : originals) {
    const auto frame = EncodeMessage(original);
    const auto decoded = DecodeMessage(frame);
    ASSERT_TRUE(decoded.has_value()) << "type " << static_cast<int>(TypeOf(original));
    EXPECT_EQ(TypeOf(*decoded), TypeOf(original));
  }
}

TEST(Messages, FieldFidelity) {
  const AllocationRequestMsg original{"zone-b", "m4.2xlarge", 32, 0.431};
  const auto decoded = DecodeMessage(EncodeMessage(Message(original)));
  ASSERT_TRUE(decoded.has_value());
  const auto& m = std::get<AllocationRequestMsg>(*decoded);
  EXPECT_EQ(m.zone, "zone-b");
  EXPECT_EQ(m.instance_type, "m4.2xlarge");
  EXPECT_EQ(m.count, 32);
  EXPECT_DOUBLE_EQ(m.bid, 0.431);
}

TEST(Messages, UnknownTagRejected) {
  std::vector<std::uint8_t> frame{0xEE, 0, 0, 0};
  EXPECT_FALSE(DecodeMessage(frame).has_value());
  EXPECT_FALSE(DecodeMessage({}).has_value());
}

TEST(Messages, TrailingGarbageRejected) {
  auto frame = EncodeMessage(Message(ReadParamMsg{1, 2}));
  frame.push_back(0xAB);
  EXPECT_FALSE(DecodeMessage(frame).has_value());
}

TEST(Messages, TruncatedFramesNeverDecode) {
  // Property: every strict prefix of a valid frame must fail to decode.
  const auto frame = EncodeMessage(Message(ParamValueMsg{3, 99, {1.0F, 2.0F, 3.0F}}));
  for (std::size_t n = 0; n < frame.size(); ++n) {
    EXPECT_FALSE(DecodeMessage(std::span(frame.data(), n)).has_value()) << "prefix " << n;
  }
}

TEST(Messages, RandomBytesNeverCrash) {
  Rng rng(1234);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(static_cast<std::size_t>(rng.UniformInt(0, 64)));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
    }
    (void)DecodeMessage(junk);  // Must not crash or overrun.
  }
}

TEST(Channel, OrderedDelivery) {
  Channel channel;
  channel.Send(Message(ReadParamMsg{0, 1}));
  channel.Send(Message(ReadParamMsg{0, 2}));
  EXPECT_EQ(channel.pending(), 2u);
  const auto first = channel.Poll();
  const auto second = channel.Poll();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(std::get<ReadParamMsg>(*first).row, 1);
  EXPECT_EQ(std::get<ReadParamMsg>(*second).row, 2);
  EXPECT_FALSE(channel.Poll().has_value());
}


TEST(Serializer, EmptyCollectionsRoundTrip) {
  WireWriter w;
  w.Str("");
  w.FloatArray({});
  w.I32Array({});
  WireReader r(w.bytes());
  EXPECT_EQ(r.Str().value(), "");
  EXPECT_TRUE(r.FloatArray().value().empty());
  EXPECT_TRUE(r.I32Array().value().empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(Channel, CrossThreadDelivery) {
  Channel channel;
  constexpr int kMessages = 500;
  std::thread producer([&channel] {
    for (int i = 0; i < kMessages; ++i) {
      channel.Send(Message(ReadParamMsg{0, i}));
    }
  });
  int received = 0;
  std::int64_t last_row = -1;
  while (received < kMessages) {
    const auto message = channel.Poll();
    if (!message.has_value()) {
      std::this_thread::yield();
      continue;
    }
    const auto& m = std::get<ReadParamMsg>(*message);
    EXPECT_EQ(m.row, last_row + 1) << "ordered delivery";
    last_row = m.row;
    ++received;
  }
  producer.join();
  EXPECT_EQ(channel.messages_sent(), static_cast<std::uint64_t>(kMessages));
}

TEST(Channel, CountsMessagesAndBytes) {
  Channel channel;
  channel.Send(Message(WorkerReadyMsg{1, 100}));
  channel.Send(Message(WorkerReadyMsg{2, 100}));
  EXPECT_EQ(channel.messages_sent(), 2u);
  EXPECT_GT(channel.bytes_sent(), 2u * 8u);
}

TEST(Channel, DuplicateFaultDeliversExtraCopies) {
  Channel channel;
  channel.SetFaultHook([](const Message&) {
    ChannelFault fault;
    fault.action = ChannelFault::Action::kDuplicate;
    fault.copies = 3;
    return fault;
  });
  channel.Send(Message(ReadParamMsg{0, 7}));
  EXPECT_EQ(channel.pending(), 3u);
  EXPECT_EQ(channel.messages_duplicated(), 2u);  // Extras beyond the original.
  for (int i = 0; i < 3; ++i) {
    const auto m = channel.Poll();
    ASSERT_TRUE(m.has_value()) << "copy " << i;
    EXPECT_EQ(std::get<ReadParamMsg>(*m).row, 7);
  }
  EXPECT_FALSE(channel.Poll().has_value());
}

TEST(Channel, ConservationHoldsNetOfDuplicates) {
  // sent == delivered + dropped + pending - duplicated, under a mix of
  // deliver / drop / delay / duplicate decisions.
  Channel channel;
  int n = 0;
  channel.SetFaultHook([&n](const Message&) {
    ChannelFault fault;
    switch (n++ % 4) {
      case 0:
        break;  // Deliver.
      case 1:
        fault.action = ChannelFault::Action::kDrop;
        break;
      case 2:
        fault.action = ChannelFault::Action::kDelay;
        fault.delay_polls = 2;
        break;
      default:
        fault.action = ChannelFault::Action::kDuplicate;
        fault.copies = 2;
        break;
    }
    return fault;
  });
  for (std::int64_t i = 0; i < 40; ++i) {
    channel.Send(Message(ReadParamMsg{0, i}));
    if (i % 3 == 0) {
      (void)channel.Poll();
    }
  }
  const auto check = [&channel] {
    EXPECT_EQ(channel.messages_sent(),
              channel.messages_delivered() + channel.messages_dropped() +
                  channel.pending() - channel.messages_duplicated());
  };
  check();  // Mid-flight (delayed frames still pending).
  // Drain; a nullopt Poll still ages delayed frames, so keep polling
  // until nothing is pending.
  for (int guard = 0; channel.pending() > 0 && guard < 1000; ++guard) {
    (void)channel.Poll();
  }
  check();  // Drained: pending == 0.
  EXPECT_EQ(channel.pending(), 0u);
  EXPECT_GT(channel.messages_dropped(), 0u);
  EXPECT_GT(channel.messages_duplicated(), 0u);
}

}  // namespace
}  // namespace proteus
