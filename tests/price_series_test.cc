#include <gtest/gtest.h>

#include "src/market/price_series.h"

namespace proteus {
namespace {

PriceSeries MakeSeries() {
  // Steps: 0.10 at t=0, 0.50 at t=100, 0.08 at t=200.
  return PriceSeries({{0.0, 0.10}, {100.0, 0.50}, {200.0, 0.08}});
}

TEST(PriceSeries, PriceAtStepSemantics) {
  const PriceSeries s = MakeSeries();
  EXPECT_DOUBLE_EQ(s.PriceAt(0.0), 0.10);
  EXPECT_DOUBLE_EQ(s.PriceAt(99.9), 0.10);
  EXPECT_DOUBLE_EQ(s.PriceAt(100.0), 0.50);
  EXPECT_DOUBLE_EQ(s.PriceAt(150.0), 0.50);
  EXPECT_DOUBLE_EQ(s.PriceAt(1000.0), 0.08);
}

TEST(PriceSeries, PriceBeforeStartIsFirstPrice) {
  const PriceSeries s = MakeSeries();
  EXPECT_DOUBLE_EQ(s.PriceAt(-5.0), 0.10);
}

TEST(PriceSeries, FirstTimeAboveFindsCrossing) {
  const PriceSeries s = MakeSeries();
  const auto t = s.FirstTimeAbove(0.2, 0.0, 1e9);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 100.0);
}

TEST(PriceSeries, FirstTimeAboveImmediateWhenAlreadyAbove) {
  const PriceSeries s = MakeSeries();
  const auto t = s.FirstTimeAbove(0.3, 150.0, 1e9);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 150.0);
}

TEST(PriceSeries, FirstTimeAboveRespectsHorizon) {
  const PriceSeries s = MakeSeries();
  EXPECT_FALSE(s.FirstTimeAbove(0.2, 0.0, 50.0).has_value());
}

TEST(PriceSeries, FirstTimeAboveNeverCrossingHighBid) {
  const PriceSeries s = MakeSeries();
  EXPECT_FALSE(s.FirstTimeAbove(1.0, 0.0, 1e9).has_value());
}

TEST(PriceSeries, MinMaxOverWindow) {
  const PriceSeries s = MakeSeries();
  EXPECT_DOUBLE_EQ(s.MinPrice(0.0, 300.0), 0.08);
  EXPECT_DOUBLE_EQ(s.MaxPrice(0.0, 300.0), 0.50);
  EXPECT_DOUBLE_EQ(s.MaxPrice(0.0, 50.0), 0.10);
}

TEST(PriceSeries, AveragePriceTimeWeighted) {
  const PriceSeries s = MakeSeries();
  // [0,200): 100s at 0.10, 100s at 0.50 -> 0.30.
  EXPECT_NEAR(s.AveragePrice(0.0, 200.0), 0.30, 1e-12);
}

// Boundary clamping (see the header's boundary-semantics note): a
// backtest window may overhang either end of a recorded trace, and every
// query must clamp to the recorded span rather than extrapolate.
TEST(PriceSeries, LastPricePersistsPastEnd) {
  const PriceSeries s = MakeSeries();
  EXPECT_DOUBLE_EQ(s.PriceAt(s.end_time()), 0.08);
  EXPECT_DOUBLE_EQ(s.PriceAt(1e12), 0.08);
  // No change points exist past the end, so a bid above the final price
  // never crosses out there.
  EXPECT_FALSE(s.FirstTimeAbove(0.09, 250.0, 1e12).has_value());
}

TEST(PriceSeries, RangeQueriesClampToRecordedSpan) {
  const PriceSeries s = MakeSeries();
  // Entirely past the end: only the frozen final price is visible.
  EXPECT_DOUBLE_EQ(s.MinPrice(300.0, 500.0), 0.08);
  EXPECT_DOUBLE_EQ(s.MaxPrice(300.0, 500.0), 0.08);
  EXPECT_NEAR(s.AveragePrice(300.0, 500.0), 0.08, 1e-12);
  // Entirely before the start: the first price backfills.
  EXPECT_DOUBLE_EQ(s.MinPrice(-100.0, -50.0), 0.10);
  EXPECT_DOUBLE_EQ(s.MaxPrice(-100.0, -50.0), 0.10);
  EXPECT_NEAR(s.AveragePrice(-100.0, -50.0), 0.10, 1e-12);
}

TEST(PriceSeries, AverageWeighsOverhangAtFinalPrice) {
  const PriceSeries s = MakeSeries();
  // [100, 300): 100s at 0.50, then 100s frozen at 0.08 -> 0.29.
  EXPECT_NEAR(s.AveragePrice(100.0, 300.0), 0.29, 1e-12);
}

TEST(PriceSeries, AppendEnforcesMonotoneTime) {
  PriceSeries s;
  s.Append(0.0, 1.0);
  s.Append(10.0, 2.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.end_time(), 10.0);
}

}  // namespace
}  // namespace proteus
