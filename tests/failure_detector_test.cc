// FailureDetector: lease state machine unit tests plus full runtime
// integration — a silenced node is suspected, confirmed dead within the
// configured bound, rolled back, and removed, with the detection
// latency exported through the metrics registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/agileml/failure_detector.h"
#include "src/agileml/runtime.h"
#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/chaos/consistency_auditor.h"
#include "src/obs/metrics.h"

namespace proteus {
namespace {

FailureDetectorConfig Enabled(int suspect_after = 1, int confirm_after = 3) {
  FailureDetectorConfig config;
  config.enabled = true;
  config.suspect_after = suspect_after;
  config.confirm_after = confirm_after;
  return config;
}

TEST(FailureDetectorTest, LeaseLapsesThroughSuspicionToConfirmation) {
  FailureDetector detector(Enabled(1, 3));
  detector.Register(7, 0);
  EXPECT_TRUE(detector.IsTracked(7));

  FailureDetectorReport r1 = detector.Poll(1);
  ASSERT_EQ(r1.newly_suspected.size(), 1U);
  EXPECT_EQ(r1.newly_suspected[0], 7);
  EXPECT_TRUE(r1.confirmed_dead.empty());
  EXPECT_TRUE(detector.IsSuspected(7));

  FailureDetectorReport r2 = detector.Poll(2);
  EXPECT_TRUE(r2.newly_suspected.empty());  // Already suspected.
  EXPECT_TRUE(r2.confirmed_dead.empty());

  FailureDetectorReport r3 = detector.Poll(3);
  ASSERT_EQ(r3.confirmed_dead.size(), 1U);
  EXPECT_EQ(r3.confirmed_dead[0].node, 7);
  EXPECT_EQ(r3.confirmed_dead[0].missed_clocks, 3);  // Exactly the bound.
  EXPECT_FALSE(detector.IsTracked(7));
  EXPECT_EQ(detector.suspicions(), 1U);
  EXPECT_EQ(detector.confirmations(), 1U);
}

TEST(FailureDetectorTest, HeartbeatDuringSuspicionIsAFalsePositive) {
  FailureDetector detector(Enabled(1, 3));
  detector.Register(4, 0);
  detector.Poll(1);
  EXPECT_TRUE(detector.IsSuspected(4));
  EXPECT_TRUE(detector.Heartbeat(4, 2));  // Recovery flagged.
  EXPECT_FALSE(detector.IsSuspected(4));
  EXPECT_EQ(detector.false_positives(), 1U);
  const FailureDetectorReport r = detector.Poll(3);
  EXPECT_TRUE(r.confirmed_dead.empty());
  EXPECT_TRUE(detector.IsTracked(4));
}

TEST(FailureDetectorTest, HealthyHeartbeatsKeepLeasesFresh) {
  FailureDetector detector(Enabled(1, 3));
  detector.Register(1, 0);
  detector.Register(2, 0);
  for (std::int64_t clock = 1; clock <= 10; ++clock) {
    EXPECT_FALSE(detector.Heartbeat(1, clock));
    EXPECT_FALSE(detector.Heartbeat(2, clock));
    const FailureDetectorReport r = detector.Poll(clock);
    EXPECT_TRUE(r.newly_suspected.empty());
    EXPECT_TRUE(r.confirmed_dead.empty());
  }
  EXPECT_EQ(detector.suspicions(), 0U);
}

TEST(FailureDetectorTest, DisabledDetectorReportsNothing) {
  FailureDetector detector(FailureDetectorConfig{});  // enabled = false.
  detector.Register(3, 0);
  const FailureDetectorReport r = detector.Poll(100);
  EXPECT_TRUE(r.newly_suspected.empty());
  EXPECT_TRUE(r.confirmed_dead.empty());
}

TEST(FailureDetectorTest, UnregisterStopsTracking) {
  FailureDetector detector(Enabled());
  detector.Register(9, 0);
  detector.Unregister(9);
  EXPECT_FALSE(detector.IsTracked(9));
  EXPECT_TRUE(detector.Poll(50).confirmed_dead.empty());
  EXPECT_FALSE(detector.Heartbeat(9, 1));  // Untracked: no-op.
}

TEST(FailureDetectorTest, RewindClampsLeasesRenewedAtDiscardedClocks) {
  // A rollback rewinds the runtime clock; leases renewed at the
  // now-discarded clocks must not defer detection of a node that died
  // just before the rewind by the rewind distance.
  FailureDetector detector(Enabled(1, 3));
  detector.Register(3, 0);
  detector.Register(4, 0);
  for (std::int64_t clock = 1; clock <= 13; ++clock) {
    detector.Heartbeat(3, clock);
    detector.Heartbeat(4, clock);
    EXPECT_TRUE(detector.Poll(clock).confirmed_dead.empty());
  }
  // Node 4 goes dark at clock 13; the runtime rolls back to clock 7.
  detector.RewindTo(7);
  // Node 3 keeps renewing through the re-executed clocks; node 4 must be
  // confirmed at 7 + confirm_after, not 13 + confirm_after.
  detector.Heartbeat(3, 8);
  EXPECT_TRUE(detector.Poll(8).confirmed_dead.empty());
  detector.Heartbeat(3, 9);
  EXPECT_TRUE(detector.Poll(9).confirmed_dead.empty());
  detector.Heartbeat(3, 10);
  const FailureDetectorReport report = detector.Poll(10);
  ASSERT_EQ(report.confirmed_dead.size(), 1U);
  EXPECT_EQ(report.confirmed_dead[0].node, 4);
  EXPECT_EQ(report.confirmed_dead[0].missed_clocks, 3);
  EXPECT_TRUE(detector.IsTracked(3));
  EXPECT_FALSE(detector.IsSuspected(3));
}

TEST(FailureDetectorTest, PollOrderIsDeterministic) {
  FailureDetector detector(Enabled(1, 2));
  for (const NodeId node : {5, 1, 9, 3}) {
    detector.Register(node, 0);
  }
  const FailureDetectorReport r = detector.Poll(2);
  ASSERT_EQ(r.confirmed_dead.size(), 4U);
  for (std::size_t i = 1; i < r.confirmed_dead.size(); ++i) {
    EXPECT_LT(r.confirmed_dead[i - 1].node, r.confirmed_dead[i].node);
  }
}

// --- Runtime integration ---

class DetectorRuntimeTest : public ::testing::Test {
 protected:
  DetectorRuntimeTest() {
    RatingsConfig rc;
    rc.users = 300;
    rc.items = 150;
    rc.ratings = 10000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 4;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  AgileMLConfig Config() const {
    AgileMLConfig config;
    config.num_partitions = 8;
    config.data_blocks = 64;
    config.parallel_execution = false;
    config.detector = Enabled(1, 3);
    return config;
  }

  static std::vector<NodeInfo> Cluster(int reliable, int transient) {
    std::vector<NodeInfo> nodes;
    NodeId id = 0;
    for (int i = 0; i < reliable; ++i) {
      nodes.push_back({id++, Tier::kReliable, 8, kInvalidAllocation});
    }
    for (int i = 0; i < transient; ++i) {
      nodes.push_back({id++, Tier::kTransient, 8, kInvalidAllocation});
    }
    return nodes;
  }

  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_F(DetectorRuntimeTest, SilencedNodeConfirmedWithinBoundAndRolledBack) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(2, 6));
  obs::MetricsRegistry metrics;
  runtime.SetObservability(nullptr, &metrics);
  ConsistencyAuditor auditor(&runtime);
  runtime.RunClocks(4);
  auditor.ObserveClock();

  // Pick a ready transient node and cut its control plane.
  const NodeId victim = 5;
  ASSERT_TRUE(runtime.IsReadyNode(victim));
  runtime.SetNodeSilent(victim, true);
  EXPECT_TRUE(runtime.IsSilencedNode(victim));
  const Clock silenced_at = runtime.clock();

  std::vector<NodeId> confirmed;
  Clock confirmed_at = -1;
  for (int i = 0; i < 10 && confirmed.empty(); ++i) {
    const IterationReport report = runtime.RunClock();
    auditor.ObserveClock();
    if (!report.confirmed_dead.empty()) {
      confirmed = report.confirmed_dead;
      confirmed_at = runtime.clock();
    }
  }
  ASSERT_EQ(confirmed.size(), 1U);
  EXPECT_EQ(confirmed[0], victim);
  // Detection latency bound: confirmed within confirm_after clocks of
  // the silencing (rollback may rewind the clock afterwards, so measure
  // against the virtual clocks actually executed, tracked via the
  // exported latency gauge).
  EXPECT_EQ(metrics.Snapshot().Value("agileml.detector.detection_latency_clocks"), 3.0);
  EXPECT_GE(confirmed_at, silenced_at - 3);  // Rollback-safe sanity bound.
  // The node is gone from membership; no trace of it remains.
  EXPECT_FALSE(runtime.IsReadyNode(victim));
  EXPECT_FALSE(runtime.IsSilencedNode(victim));
  EXPECT_FALSE(runtime.failure_detector().IsTracked(victim));
  // The rollback actually happened (silent failure cost clocks) unless
  // the last backup sync was the same clock.
  EXPECT_GE(runtime.lost_clocks_total(), 0);
  EXPECT_EQ(metrics.Snapshot().Value("agileml.detector.suspicions"), 1.0);
  EXPECT_EQ(metrics.Snapshot().Value("agileml.detector.confirmed_dead"), 1.0);
  // Heartbeats and the suspicion notice hit the control-plane log.
  EXPECT_GT(runtime.control_log().Count(ControlMessage::kHeartbeat), 0);
  EXPECT_EQ(runtime.control_log().Count(ControlMessage::kSuspicionNotice), 1);
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
}

TEST_F(DetectorRuntimeTest, ShortHangRecoversAsFalsePositive) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(2, 6));
  obs::MetricsRegistry metrics;
  runtime.SetObservability(nullptr, &metrics);
  runtime.RunClocks(3);

  const NodeId victim = 6;
  ASSERT_TRUE(runtime.IsReadyNode(victim));
  runtime.SetNodeSilent(victim, true);
  runtime.RunClock();  // Missed 1 => suspected.
  runtime.SetNodeSilent(victim, false);
  const IterationReport report = runtime.RunClock();  // Heartbeat resumes.
  EXPECT_TRUE(report.confirmed_dead.empty());
  EXPECT_TRUE(runtime.IsReadyNode(victim));
  EXPECT_EQ(metrics.Snapshot().Value("agileml.detector.false_positives"), 1.0);
  EXPECT_EQ(runtime.failure_detector().confirmations(), 0U);
  // Keep running: the recovered node stays healthy.
  runtime.RunClocks(3);
  EXPECT_TRUE(runtime.IsReadyNode(victim));
}

TEST_F(DetectorRuntimeTest, AnnouncedPathsBypassTheDetector) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(2, 6));
  runtime.RunClocks(2);
  // Announced eviction: the detector must not later "confirm" the node.
  runtime.Evict({7});
  for (int i = 0; i < 6; ++i) {
    const IterationReport report = runtime.RunClock();
    EXPECT_TRUE(report.confirmed_dead.empty());
  }
  EXPECT_EQ(runtime.failure_detector().confirmations(), 0U);
}

TEST_F(DetectorRuntimeTest, FalsePositiveRecoversMidStorm) {
  // Sustained-churn hardening (PR 10): a short silent hang on a spot
  // node must recover as a false positive even while a zero-warning
  // serverless storm is awaiting confirmation — the detector must not
  // lump the recovered node into the storm's confirm batch.
  std::vector<NodeInfo> nodes = Cluster(2, 6);
  NodeId id = static_cast<NodeId>(nodes.size());
  for (int i = 0; i < 3; ++i) {
    nodes.push_back({id++, Tier::kServerless, 2, kInvalidAllocation});
  }
  AgileMLRuntime runtime(app_.get(), Config(), nodes);
  obs::MetricsRegistry metrics;
  runtime.SetObservability(nullptr, &metrics);
  ConsistencyAuditor auditor(&runtime);
  runtime.RunClocks(4);
  auditor.ObserveClock();

  // The storm: every serverless node revoked with zero warning.
  std::vector<NodeId> storm;
  for (const NodeInfo& node : runtime.nodes()) {
    if (node.serverless()) {
      runtime.SetNodeRevoked(node.id);
      storm.push_back(node.id);
    }
  }
  ASSERT_EQ(storm.size(), 3U);
  // The bait: a spot node hangs for one clock mid-storm, then recovers.
  const NodeId bait = 5;
  ASSERT_TRUE(runtime.IsReadyNode(bait));
  runtime.SetNodeSilent(bait, true);
  runtime.RunClock();  // Missed 1 => suspected, alongside the storm.
  auditor.ObserveClock();
  runtime.SetNodeSilent(bait, false);

  std::vector<NodeId> confirmed;
  for (int i = 0; i < 10 && confirmed.empty(); ++i) {
    const IterationReport report = runtime.RunClock();
    auditor.ObserveClock();
    confirmed = report.confirmed_dead;
  }
  ASSERT_EQ(confirmed.size(), storm.size());
  for (const NodeId victim : storm) {
    EXPECT_TRUE(std::count(confirmed.begin(), confirmed.end(), victim) == 1)
        << "storm victim " << victim << " not in the confirm batch";
    EXPECT_FALSE(runtime.IsReadyNode(victim));
  }
  // The recovered node survived the storm untouched.
  EXPECT_TRUE(runtime.IsReadyNode(bait));
  EXPECT_EQ(metrics.Snapshot().Value("agileml.detector.false_positives"), 1.0);
  EXPECT_EQ(runtime.RevokedCount(), 0);  // Bookkeeping fully drained.
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
  // Churn continues cleanly after the storm.
  for (int i = 0; i < 3; ++i) {
    runtime.RunClock();
    auditor.ObserveClock();
  }
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
}

TEST_F(DetectorRuntimeTest, BatchConfirmationGaugeReportsBatchMaximum) {
  // Many nodes confirmed in the same clock must export one latency
  // reading — the batch maximum — not the sum and not the last victim's
  // value by iteration accident.
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(2, 6));
  obs::MetricsRegistry metrics;
  runtime.SetObservability(nullptr, &metrics);
  runtime.RunClocks(3);
  const std::vector<NodeId> victims = {3, 4, 6, 7};
  for (const NodeId victim : victims) {
    ASSERT_TRUE(runtime.IsReadyNode(victim));
    runtime.SetNodeSilent(victim, true);
  }
  std::vector<NodeId> confirmed;
  for (int i = 0; i < 10 && confirmed.empty(); ++i) {
    confirmed = runtime.RunClock().confirmed_dead;
  }
  ASSERT_EQ(confirmed.size(), victims.size());  // One batch, same clock.
  EXPECT_EQ(metrics.Snapshot().Value("agileml.detector.detection_latency_clocks"),
            3.0);
  EXPECT_EQ(metrics.Snapshot().Value("agileml.detector.confirmed_dead"), 4.0);
}

TEST_F(DetectorRuntimeTest, DetectorDisabledMeansNoHeartbeatTraffic) {
  AgileMLConfig config = Config();
  config.detector = FailureDetectorConfig{};  // Disabled.
  AgileMLRuntime runtime(app_.get(), config, Cluster(2, 4));
  runtime.RunClocks(4);
  EXPECT_EQ(runtime.control_log().Count(ControlMessage::kHeartbeat), 0);
  EXPECT_EQ(runtime.control_log().NotificationTotal(), runtime.control_log().Total());
}

}  // namespace
}  // namespace proteus
