#include <gtest/gtest.h>

#include "src/market/spot_market.h"

namespace proteus {
namespace {

class SpotMarketTest : public ::testing::Test {
 protected:
  SpotMarketTest() : catalog_(InstanceTypeCatalog::Default()) {
    // c4.xlarge trace: cheap (0.05), spikes to 1.0 in [2.5h, 2.6h).
    traces_.Put({"z0", "c4.xlarge"},
                PriceSeries({{0.0, 0.05}, {2.5 * kHour, 1.0}, {2.6 * kHour, 0.05}}));
    market_ = std::make_unique<SpotMarket>(catalog_, traces_);
  }

  InstanceTypeCatalog catalog_;
  TraceStore traces_;
  std::unique_ptr<SpotMarket> market_;
  const MarketKey key_{"z0", "c4.xlarge"};
};

TEST_F(SpotMarketTest, GrantsWhenBidAtOrAboveMarket) {
  EXPECT_TRUE(market_->RequestSpot(key_, 2, 0.05, 0.0).has_value());
  EXPECT_TRUE(market_->RequestSpot(key_, 2, 0.10, 0.0).has_value());
}

TEST_F(SpotMarketTest, DeniesWhenBidBelowMarket) {
  EXPECT_FALSE(market_->RequestSpot(key_, 2, 0.04, 0.0).has_value());
  // During the spike the market is at 1.0.
  EXPECT_FALSE(market_->RequestSpot(key_, 2, 0.5, 2.55 * kHour).has_value());
}

TEST_F(SpotMarketTest, PrecomputesEvictionAtBidCrossing) {
  const auto id = market_->RequestSpot(key_, 4, 0.10, 0.0);
  ASSERT_TRUE(id.has_value());
  const Allocation& alloc = market_->Get(*id);
  ASSERT_TRUE(alloc.eviction_time.has_value());
  EXPECT_DOUBLE_EQ(*alloc.eviction_time, 2.5 * kHour);
}

TEST_F(SpotMarketTest, HighBidNeverEvicted) {
  const auto id = market_->RequestSpot(key_, 1, 2.0, 0.0);
  ASSERT_TRUE(id.has_value());
  EXPECT_FALSE(market_->Get(*id).eviction_time.has_value());
}

TEST_F(SpotMarketTest, WarningPrecedesEvictionByTwoMinutes) {
  const auto id = market_->RequestSpot(key_, 1, 0.10, 0.0);
  const auto warning = market_->WarningTime(*id);
  ASSERT_TRUE(warning.has_value());
  EXPECT_DOUBLE_EQ(*warning, 2.5 * kHour - 2 * kMinute);
}

TEST_F(SpotMarketTest, WarningClampedToAllocationStart) {
  // Requested one minute before the price crossing: the nominal warning
  // instant (crossing - 2 min) predates the allocation, so it clamps to
  // the start — the consumer never sees a warning in the past.
  const SimTime start = 2.5 * kHour - kMinute;
  const auto id = market_->RequestSpot(key_, 1, 0.10, start);
  ASSERT_TRUE(id.has_value());
  const auto warning = market_->WarningTime(*id);
  ASSERT_TRUE(warning.has_value());
  EXPECT_DOUBLE_EQ(*warning, start);
}

TEST_F(SpotMarketTest, RevokeInsideWarningWindowBillsAsEvictionAtRevokeInstant) {
  // A provider-side Revoke landing after the warning has opened but
  // before the precomputed crossing: the allocation ends at the revoke
  // instant (not the crossing), and billing treats it as an eviction —
  // the in-progress hour is refunded, the warned time is not billed
  // extra.
  const auto id = market_->RequestSpot(key_, 2, 0.10, 0.0);
  ASSERT_TRUE(id.has_value());
  const SimTime inside_warning = 2.5 * kHour - kMinute;
  ASSERT_GT(inside_warning, *market_->WarningTime(*id));
  market_->Revoke(*id, inside_warning);
  const Allocation& alloc = market_->Get(*id);
  EXPECT_EQ(alloc.state, AllocationState::kEvicted);
  EXPECT_DOUBLE_EQ(alloc.end, inside_warning);
  EXPECT_DOUBLE_EQ(*alloc.eviction_time, 2.5 * kHour);  // Unchanged.
  const BillingBreakdown bill = market_->Bill(*id, 10 * kHour);
  EXPECT_NEAR(bill.charged, 2 * 0.05 * 2, 1e-9);  // Hours 0 and 1.
  EXPECT_NEAR(bill.refunded, 0.05 * 2, 1e-9);     // In-progress hour 2.
}

TEST_F(SpotMarketTest, BillsFullHoursAtHourStartPrice) {
  const auto id = market_->RequestSpot(key_, 2, 0.10, 0.0);
  market_->Terminate(*id, 2.0 * kHour);
  const BillingBreakdown bill = market_->Bill(*id, 10 * kHour);
  // Two full hours at 0.05 x 2 instances.
  EXPECT_NEAR(bill.charged, 2 * 0.05 * 2, 1e-9);
  EXPECT_DOUBLE_EQ(bill.refunded, 0.0);
  EXPECT_DOUBLE_EQ(bill.paid_hours, 4.0);
}

TEST_F(SpotMarketTest, UserTerminationPaysPartialHourInFull) {
  const auto id = market_->RequestSpot(key_, 1, 0.10, 0.0);
  market_->Terminate(*id, 0.5 * kHour);
  const BillingBreakdown bill = market_->Bill(*id, 10 * kHour);
  EXPECT_NEAR(bill.charged, 0.05, 1e-9);  // Whole hour billed.
  EXPECT_DOUBLE_EQ(bill.free_hours, 0.0);
}

TEST_F(SpotMarketTest, EvictionRefundsInProgressHour) {
  const auto id = market_->RequestSpot(key_, 2, 0.10, 0.0);
  market_->MarkEvicted(*id);
  const Allocation& alloc = market_->Get(*id);
  EXPECT_DOUBLE_EQ(alloc.end, 2.5 * kHour);
  const BillingBreakdown bill = market_->Bill(*id, 10 * kHour);
  // Hours 0 and 1 charged; hour 2 (evicted at 2.5h) refunded.
  EXPECT_NEAR(bill.charged, 2 * 0.05 * 2, 1e-9);
  EXPECT_NEAR(bill.refunded, 0.05 * 2, 1e-9);
  EXPECT_NEAR(bill.free_hours, 0.5 * 2, 1e-9);  // Half an hour x 2 machines.
}

TEST_F(SpotMarketTest, TerminateAfterEvictionTimeBecomesEviction) {
  const auto id = market_->RequestSpot(key_, 1, 0.10, 0.0);
  market_->Terminate(*id, 3.0 * kHour);  // Market evicted it at 2.5h.
  const Allocation& alloc = market_->Get(*id);
  EXPECT_EQ(alloc.state, AllocationState::kEvicted);
  EXPECT_DOUBLE_EQ(alloc.end, 2.5 * kHour);
}

TEST_F(SpotMarketTest, OnDemandBilledAtCatalogPrice) {
  const AllocationId id = market_->RequestOnDemand(key_, 3, 0.0);
  market_->Terminate(id, 1.5 * kHour);
  const BillingBreakdown bill = market_->Bill(id, 10 * kHour);
  // 2 started hours x 3 instances x $0.209.
  EXPECT_NEAR(bill.charged, 2 * 3 * 0.209, 1e-9);
}

TEST_F(SpotMarketTest, BillAsOfMidRun) {
  const auto id = market_->RequestSpot(key_, 1, 2.0, 0.0);
  const BillingBreakdown bill = market_->Bill(*id, 0.25 * kHour);
  EXPECT_NEAR(bill.charged, 0.05, 1e-9);  // First hour already billed.
}

TEST_F(SpotMarketTest, TotalBillAggregates) {
  const auto a = market_->RequestSpot(key_, 1, 2.0, 0.0);
  const AllocationId b = market_->RequestOnDemand(key_, 1, 0.0);
  (void)a;
  (void)b;
  const BillingBreakdown bill = market_->TotalBill(0.5 * kHour);
  EXPECT_NEAR(bill.charged, 0.05 + 0.209, 1e-9);
}

TEST_F(SpotMarketTest, UnlimitedCapacityByDefault) {
  EXPECT_FALSE(market_->CapacityOf(key_).has_value());
  EXPECT_TRUE(market_->RequestSpot(key_, 10000, 0.10, 0.0).has_value());
}

TEST_F(SpotMarketTest, FiniteCapacityLimitsConcurrentClaimants) {
  market_->SetCapacity(key_, 5);
  ASSERT_EQ(market_->CapacityOf(key_), 5);
  const auto a = market_->RequestSpot(key_, 3, 0.10, 0.0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(market_->RunningCount(key_), 3);
  // A request that would overdraw the pool is denied whole.
  EXPECT_FALSE(market_->RequestSpot(key_, 3, 0.10, 0.0).has_value());
  const auto b = market_->RequestSpot(key_, 2, 0.10, 0.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(market_->RunningCount(key_), 5);
  EXPECT_FALSE(market_->RequestSpot(key_, 1, 0.10, 0.0).has_value());
}

TEST_F(SpotMarketTest, TerminateAndEvictReleaseCapacity) {
  market_->SetCapacity(key_, 2);
  const auto a = market_->RequestSpot(key_, 2, 0.10, 0.0);
  ASSERT_TRUE(a.has_value());
  market_->Terminate(*a, 1.0 * kHour);
  EXPECT_EQ(market_->RunningCount(key_), 0);
  const auto b = market_->RequestSpot(key_, 2, 0.10, 1.0 * kHour);
  ASSERT_TRUE(b.has_value());
  market_->MarkEvicted(*b);  // Price crossing at 2.5h.
  EXPECT_EQ(market_->RunningCount(key_), 0);
  EXPECT_TRUE(market_->RequestSpot(key_, 2, 0.10, 3.0 * kHour).has_value());
}

TEST_F(SpotMarketTest, RevokeReleasesCapacityAndBillsAsEviction) {
  market_->SetCapacity(key_, 4);
  const auto id = market_->RequestSpot(key_, 2, 2.0, 0.0);
  ASSERT_TRUE(id.has_value());
  // Provider-side reclaim (capacity shrank), distinct from the price
  // crossing: the allocation had no precomputed eviction time.
  market_->Revoke(*id, 1.5 * kHour);
  EXPECT_EQ(market_->RunningCount(key_), 0);
  const Allocation& alloc = market_->Get(*id);
  EXPECT_EQ(alloc.state, AllocationState::kEvicted);
  EXPECT_DOUBLE_EQ(alloc.end, 1.5 * kHour);
  // Eviction billing: hour 0 charged, the in-progress hour refunded.
  const BillingBreakdown bill = market_->Bill(*id, 10 * kHour);
  EXPECT_NEAR(bill.charged, 0.05 * 2, 1e-9);
  EXPECT_NEAR(bill.refunded, 0.05 * 2, 1e-9);
}

}  // namespace
}  // namespace proteus
