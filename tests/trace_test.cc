#include <gtest/gtest.h>

#include "src/market/trace_gen.h"
#include "src/market/trace_store.h"

namespace proteus {
namespace {

TEST(TraceGen, StaysAboveFloorAndBelowCap) {
  const InstanceTypeCatalog catalog = InstanceTypeCatalog::Default();
  const InstanceType& type = catalog.Get("c4.xlarge");
  SyntheticTraceConfig config;
  Rng rng(11);
  const PriceSeries series = GenerateSyntheticTrace(type, 7 * kDay, config, rng);
  ASSERT_FALSE(series.empty());
  for (const auto& point : series.points()) {
    EXPECT_GE(point.price, type.on_demand_price * config.floor_fraction - 1e-9);
    EXPECT_LE(point.price, type.on_demand_price * config.spike_multiple_max + 0.5);
  }
}

TEST(TraceGen, QuietRegimeNearBaseFraction) {
  const InstanceTypeCatalog catalog = InstanceTypeCatalog::Default();
  const InstanceType& type = catalog.Get("c4.2xlarge");
  SyntheticTraceConfig config;
  config.spikes_per_day = 0.0;  // Pure quiet regime.
  Rng rng(12);
  const PriceSeries series = GenerateSyntheticTrace(type, 7 * kDay, config, rng);
  const Money avg = series.AveragePrice(0.0, 7 * kDay);
  EXPECT_NEAR(avg, type.on_demand_price * config.base_fraction,
              type.on_demand_price * config.base_fraction * 0.5);
}

TEST(TraceGen, SpikesExceedOnDemand) {
  const InstanceTypeCatalog catalog = InstanceTypeCatalog::Default();
  const InstanceType& type = catalog.Get("c4.xlarge");
  SyntheticTraceConfig config;
  config.spikes_per_day = 6.0;
  Rng rng(13);
  const PriceSeries series = GenerateSyntheticTrace(type, 7 * kDay, config, rng);
  EXPECT_GT(series.MaxPrice(0.0, 7 * kDay), type.on_demand_price);
}

TEST(TraceGen, DeterministicBySeed) {
  const InstanceTypeCatalog catalog = InstanceTypeCatalog::Default();
  const InstanceType& type = catalog.Get("c4.xlarge");
  SyntheticTraceConfig config;
  Rng rng1(99);
  Rng rng2(99);
  const PriceSeries a = GenerateSyntheticTrace(type, kDay, config, rng1);
  const PriceSeries b = GenerateSyntheticTrace(type, kDay, config, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points()[i].price, b.points()[i].price);
  }
}

TEST(TraceStore, GenerateCoversZonesTimesTypes) {
  const InstanceTypeCatalog catalog = InstanceTypeCatalog::Default();
  Rng rng(14);
  const TraceStore store = TraceStore::GenerateSynthetic(catalog, {"z0", "z1"}, kDay,
                                                         SyntheticTraceConfig{}, rng);
  EXPECT_EQ(store.Keys().size(), 2 * catalog.types().size());
  EXPECT_NE(store.Find({"z1", "c4.xlarge"}), nullptr);
  EXPECT_EQ(store.Find({"z2", "c4.xlarge"}), nullptr);
}

TEST(TraceStore, CsvRoundTrip) {
  TraceStore store;
  store.Put({"z0", "c4.xlarge"}, PriceSeries({{0.0, 0.05}, {60.0, 0.07}}));
  store.Put({"z1", "m4.xlarge"}, PriceSeries({{0.0, 0.06}}));
  const TraceStore loaded = TraceStore::FromCsv(store.ToCsv());
  ASSERT_EQ(loaded.Keys().size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.Get({"z0", "c4.xlarge"}).PriceAt(61.0), 0.07);
  EXPECT_DOUBLE_EQ(loaded.Get({"z1", "m4.xlarge"}).PriceAt(0.0), 0.06);
}

TEST(InstanceTypeCatalog, DefaultHasPaperTypes) {
  const InstanceTypeCatalog catalog = InstanceTypeCatalog::Default();
  EXPECT_EQ(catalog.Get("c4.2xlarge").vcpus, 8);
  EXPECT_EQ(catalog.Get("c4.xlarge").vcpus, 4);
  // nu proportionality (footnote 7): c4.2xlarge does 2x c4.xlarge work.
  EXPECT_DOUBLE_EQ(catalog.Get("c4.2xlarge").WorkPerHour(),
                   2 * catalog.Get("c4.xlarge").WorkPerHour());
}

}  // namespace
}  // namespace proteus
