#include <gtest/gtest.h>

#include <cmath>

#include "src/bidbrain/cost_model.h"

namespace proteus {
namespace {

AllocationPlan SpotPlan(int count, Money price, double beta, SimDuration omega = kHour,
                        WorkUnits nu = 4.0) {
  AllocationPlan plan;
  plan.market = {"z0", "c4.xlarge"};
  plan.count = count;
  plan.hourly_price = price;
  plan.beta = beta;
  plan.omega = omega;
  plan.work_per_hour = nu;
  return plan;
}

TEST(CostModel, ExpectedCostEq1) {
  // (1 - beta) * P * k * t_r: 0.8 * 0.1 * 2 * 1hr = 0.16.
  EXPECT_NEAR(CostModel::ExpectedCost({SpotPlan(2, 0.10, 0.2)}), 0.16, 1e-12);
}

TEST(CostModel, CertainEvictionIsFree) {
  EXPECT_DOUBLE_EQ(CostModel::ExpectedCost({SpotPlan(4, 0.10, 1.0)}), 0.0);
}

TEST(CostModel, PartialHourScalesCost) {
  EXPECT_NEAR(CostModel::ExpectedCost({SpotPlan(1, 0.10, 0.0, kHour / 2)}), 0.05, 1e-12);
}

TEST(CostModel, AnyEvictionProbabilityComposes) {
  const std::vector<AllocationPlan> plans{SpotPlan(1, 0.1, 0.5), SpotPlan(1, 0.1, 0.5)};
  EXPECT_NEAR(CostModel::AnyEvictionProbability(plans), 0.75, 1e-12);
}

TEST(CostModel, UsefulTimeEq2) {
  AppProfile app;
  app.lambda = 10 * kMinute;
  app.sigma = 5 * kMinute;
  const std::vector<AllocationPlan> plans{SpotPlan(1, 0.1, 0.5)};
  // omega - beta*lambda = 3600 - 0.5*600 = 3300 (no sigma).
  EXPECT_NEAR(CostModel::ExpectedUsefulTime(plans[0], plans, app, false), 3300.0, 1e-9);
  // With footprint change: minus sigma = 3000.
  EXPECT_NEAR(CostModel::ExpectedUsefulTime(plans[0], plans, app, true), 3000.0, 1e-9);
}

TEST(CostModel, UsefulTimeNeverNegative) {
  AppProfile app;
  app.lambda = 2 * kHour;
  const std::vector<AllocationPlan> plans{SpotPlan(1, 0.1, 1.0)};
  EXPECT_DOUBLE_EQ(CostModel::ExpectedUsefulTime(plans[0], plans, app, false), 0.0);
}

TEST(CostModel, WorkEq3ScalesWithPhi) {
  AppProfile app;
  app.phi = 0.5;
  app.lambda = 0.0;
  app.sigma = 0.0;
  // 2 instances x 1hr x 4 work/hr x 0.5 = 4.
  EXPECT_NEAR(CostModel::ExpectedWork({SpotPlan(2, 0.1, 0.0)}, app, false), 4.0, 1e-12);
}

TEST(CostModel, CostPerWorkEq4) {
  AppProfile app;
  app.phi = 1.0;
  app.lambda = 0.0;
  app.sigma = 0.0;
  // Cost 0.1, work 4 -> 0.025 per unit.
  EXPECT_NEAR(CostModel::ExpectedCostPerWork({SpotPlan(1, 0.1, 0.0)}, app, false), 0.025, 1e-12);
}

TEST(CostModel, ZeroWorkGivesInfiniteCostPerWork) {
  AppProfile app;
  AllocationPlan od = SpotPlan(1, 0.2, 0.0);
  od.on_demand = true;
  od.work_per_hour = 0.0;
  EXPECT_TRUE(std::isinf(CostModel::ExpectedCostPerWork({od}, app, false)));
}

TEST(CostModel, CheaperAllocationAmortizesOnDemand) {
  // Fig. 6 narrative: adding a cheap spot allocation to an expensive
  // work-free on-demand footprint lowers cost per work.
  AppProfile app;
  app.lambda = 0.0;
  app.sigma = 0.0;
  AllocationPlan od = SpotPlan(1, 0.2, 0.0);
  od.on_demand = true;
  od.work_per_hour = 0.0;
  const std::vector<AllocationPlan> one{od, SpotPlan(2, 0.05, 0.0)};
  std::vector<AllocationPlan> two = one;
  two.push_back(SpotPlan(2, 0.05, 0.0));
  EXPECT_LT(CostModel::ExpectedCostPerWork(two, app, false),
            CostModel::ExpectedCostPerWork(one, app, false));
}

TEST(CostModel, HigherBetaLowersExpectedCostButAlsoWork) {
  AppProfile app;
  app.lambda = 10 * kMinute;
  const auto low = SpotPlan(1, 0.1, 0.1);
  const auto high = SpotPlan(1, 0.1, 0.9);
  EXPECT_LT(CostModel::ExpectedCost({high}), CostModel::ExpectedCost({low}));
  EXPECT_LT(CostModel::ExpectedWork({high}, app, false),
            CostModel::ExpectedWork({low}, app, false));
}

}  // namespace
}  // namespace proteus
