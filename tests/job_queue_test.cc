#include <gtest/gtest.h>

#include "src/proteus/job_queue.h"

namespace proteus {
namespace {

class JobQueueTest : public ::testing::Test {
 protected:
  JobQueueTest() : catalog_(InstanceTypeCatalog::Default()) {
    SyntheticTraceConfig config;
    config.spikes_per_day = 3.0;
    Rng rng(81);
    traces_ = TraceStore::GenerateSynthetic(catalog_, {"z0", "z1"}, 40 * kDay, config, rng);
    estimator_.Train(traces_, 0.0, 15 * kDay);
    sim_ = std::make_unique<JobQueueSimulator>(&catalog_, &traces_, &estimator_);
  }

  std::vector<QueuedJob> Queue(int n, SimDuration each) const {
    std::vector<QueuedJob> jobs;
    for (int i = 0; i < n; ++i) {
      jobs.push_back({"job" + std::to_string(i),
                      JobSpec::ForReferenceDuration(catalog_, "c4.2xlarge", 64, each, 0.95)});
    }
    return jobs;
  }

  SchemeConfig Config() const {
    SchemeConfig config;
    config.bidbrain.max_spot_instances = 128;
    return config;
  }

  InstanceTypeCatalog catalog_;
  TraceStore traces_;
  EvictionEstimator estimator_;
  std::unique_ptr<JobQueueSimulator> sim_;
};

TEST_F(JobQueueTest, AllJobsComplete) {
  const JobQueueResult result = sim_->Run(Queue(3, 2 * kHour), Config(), 16 * kDay);
  ASSERT_EQ(result.jobs.size(), 3u);
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(job.completed) << job.name;
    EXPECT_GT(job.runtime, 0.0);
  }
  EXPECT_GT(result.makespan, 0.0);
}

TEST_F(JobQueueTest, PerJobCostsApproximateTotal) {
  const JobQueueResult result = sim_->Run(Queue(3, 2 * kHour), Config(), 16 * kDay);
  Money per_job = 0.0;
  for (const auto& job : result.jobs) {
    per_job += job.cost;
  }
  // Per-job windows cover the whole queue; the difference from the true
  // total is the drain tail (hours still ticking after the last job) and
  // eviction refunds, both bounded.
  EXPECT_LE(per_job, result.total_cost + result.shutdown_refunds + 1e-6);
  EXPECT_GT(per_job, result.total_cost * 0.5);
}

TEST_F(JobQueueTest, LaterJobsReuseWarmFootprint) {
  // The first job pays the ramp-up; subsequent identical jobs should not
  // be slower on average (they inherit a running footprint).
  const JobQueueResult result = sim_->Run(Queue(4, 2 * kHour), Config(), 16 * kDay);
  ASSERT_EQ(result.jobs.size(), 4u);
  const SimDuration first = result.jobs[0].runtime;
  for (std::size_t i = 1; i < result.jobs.size(); ++i) {
    EXPECT_LT(result.jobs[i].runtime, first * 1.5);
  }
}

TEST_F(JobQueueTest, QueueIsCheaperPerJobThanStandalone) {
  // Amortizing ramp-up and leftover hours across jobs should not make
  // per-job cost worse than 1/n of the total.
  const JobQueueResult q3 = sim_->Run(Queue(3, 2 * kHour), Config(), 16 * kDay);
  const JobQueueResult q1 = sim_->Run(Queue(1, 2 * kHour), Config(), 16 * kDay);
  const Money per_job_q3 = q3.total_cost / 3;
  EXPECT_LT(per_job_q3, q1.total_cost * 1.2);
}

TEST_F(JobQueueTest, ShutdownWaitsForBillingHours) {
  const JobQueueResult result = sim_->Run(Queue(1, 2 * kHour), Config(), 16 * kDay);
  EXPECT_GE(result.shutdown_refunds, 0.0);
}

TEST_F(JobQueueTest, EmptyQueueHasNoFootprintAndNoCost) {
  const JobQueueResult result = sim_->Run({}, Config(), 16 * kDay);
  EXPECT_TRUE(result.jobs.empty());
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
  EXPECT_DOUBLE_EQ(result.shutdown_refunds, 0.0);
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);
}

}  // namespace
}  // namespace proteus
