// Property battery for the coalesced delta-batch wire format (the
// sharded PS hot-path payload, src/rpc/serializer.h). Invariants under
// test, over seeded random batches and adversarial edge cases:
//   - encode -> decode is lossless (keys ascending, payloads exact);
//   - duplicate keys coalesce by input-order summation (deterministic
//     float arithmetic: same result the ModelStore would compute);
//   - encoded.size() == DeltaBatchEncodedBytes(...) exactly — the byte
//     accounting the runtime charges to the fabric never drifts from
//     the real frame;
//   - EVERY truncated prefix of a valid frame decodes to nullopt (clean
//     error, no UB — this is what the sanitizer jobs exercise);
//   - corrupt version bytes and hostile lengths are rejected.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <random>
#include <vector>

#include "src/rpc/messages.h"
#include "src/rpc/serializer.h"

namespace proteus {
namespace {

struct RawBatch {
  // Parallel arrays: one entry per input row (duplicates allowed).
  std::vector<std::uint64_t> keys;
  std::vector<std::vector<float>> payloads;

  std::vector<DeltaRow> Rows() const {
    std::vector<DeltaRow> rows;
    rows.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      rows.push_back({keys[i], std::span<const float>(payloads[i])});
    }
    return rows;
  }
};

// Reference coalescing: sum duplicates in input order, emit key-sorted.
// Independent re-implementation of what EncodeDeltaBatch must do.
void ExpectedRows(const RawBatch& batch, std::vector<std::uint64_t>& keys,
                  std::vector<std::vector<float>>& values) {
  std::map<std::uint64_t, std::vector<float>> sums;
  for (std::size_t i = 0; i < batch.keys.size(); ++i) {
    auto [it, fresh] = sums.try_emplace(batch.keys[i], batch.payloads[i]);
    if (!fresh) {
      ASSERT_EQ(it->second.size(), batch.payloads[i].size());
      for (std::size_t c = 0; c < it->second.size(); ++c) {
        it->second[c] += batch.payloads[i][c];
      }
    }
  }
  keys.clear();
  values.clear();
  for (auto& [k, v] : sums) {
    keys.push_back(k);
    values.push_back(std::move(v));
  }
}

void ExpectRoundTrip(const RawBatch& batch) {
  std::vector<std::uint64_t> want_keys;
  std::vector<std::vector<float>> want_values;
  ExpectedRows(batch, want_keys, want_values);

  const std::vector<std::uint8_t> encoded = EncodeDeltaBatch(batch.Rows());

  // Exact size accounting against the post-coalescing row set.
  std::vector<std::uint32_t> want_cols;
  want_cols.reserve(want_values.size());
  for (const auto& v : want_values) {
    want_cols.push_back(static_cast<std::uint32_t>(v.size()));
  }
  EXPECT_EQ(encoded.size(), DeltaBatchEncodedBytes(want_keys, want_cols));

  const std::optional<DecodedDeltaBatch> decoded = DecodeDeltaBatch(encoded);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->rows(), want_keys.size());
  ASSERT_EQ(decoded->offsets.size(), want_keys.size() + 1);
  for (std::size_t i = 0; i < want_keys.size(); ++i) {
    EXPECT_EQ(decoded->keys[i], want_keys[i]);
    const std::span<const float> row = decoded->row(i);
    ASSERT_EQ(row.size(), want_values[i].size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      // Bitwise equality: encoding is raw f32s and coalescing must sum
      // in input order, so there is no tolerance to grant.
      EXPECT_EQ(row[c], want_values[i][c]) << "row " << i << " col " << c;
    }
  }
}

TEST(SerializerPropertyTest, EmptyBatch) {
  ExpectRoundTrip({});
  const std::vector<std::uint8_t> encoded = EncodeDeltaBatch({});
  EXPECT_EQ(encoded.size(), DeltaBatchEncodedBytes({}, {}));
  EXPECT_EQ(encoded.size(), 2u);  // Version byte + zero count.
}

TEST(SerializerPropertyTest, SingleRow) {
  RawBatch batch;
  batch.keys = {12345};
  batch.payloads = {{1.5F, -2.25F, 0.0F}};
  ExpectRoundTrip(batch);
}

TEST(SerializerPropertyTest, MaxRowId) {
  RawBatch batch;
  batch.keys = {0, std::numeric_limits<std::uint64_t>::max()};
  batch.payloads = {{1.0F}, {2.0F}};
  ExpectRoundTrip(batch);  // Key delta of 2^64-1 must survive the varint.
}

TEST(SerializerPropertyTest, DuplicateKeysCoalesceInInputOrder) {
  RawBatch batch;
  batch.keys = {7, 3, 7, 7, 3};
  batch.payloads = {{1.0F, 10.0F}, {0.5F, 0.5F}, {2.0F, 20.0F}, {4.0F, 40.0F}, {0.25F, 0.25F}};
  ExpectRoundTrip(batch);

  const std::optional<DecodedDeltaBatch> decoded =
      DecodeDeltaBatch(EncodeDeltaBatch(batch.Rows()));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->rows(), 2u);
  EXPECT_EQ(decoded->keys[0], 3u);
  EXPECT_EQ(decoded->keys[1], 7u);
  // ((1 + 2) + 4), summed left to right.
  EXPECT_EQ(decoded->row(1)[0], 7.0F);
  EXPECT_EQ(decoded->row(1)[1], 70.0F);
}

TEST(SerializerPropertyTest, RandomBatchesRoundTrip) {
  std::mt19937_64 rng(0xD1FFu);
  for (int trial = 0; trial < 200; ++trial) {
    RawBatch batch;
    const std::size_t n = rng() % 40;
    // Per-key column width must be consistent; derive it from the key.
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = rng() % 64;  // Small space => duplicates.
      const std::size_t cols = 1 + key % 7;
      std::vector<float> payload(cols);
      for (auto& v : payload) {
        v = static_cast<float>(static_cast<std::int64_t>(rng() % 4001) - 2000) / 128.0F;
      }
      batch.keys.push_back(key);
      batch.payloads.push_back(std::move(payload));
    }
    SCOPED_TRACE(testing::Message() << "trial " << trial << " rows " << n);
    ExpectRoundTrip(batch);
  }
}

TEST(SerializerPropertyTest, WideKeysAndWideRowsRoundTrip) {
  std::mt19937_64 rng(99);
  RawBatch batch;
  std::uint64_t key = 0;
  for (int i = 0; i < 16; ++i) {
    key += 1 + (rng() % (1ULL << 60));  // Multi-byte varint deltas.
    std::vector<float> payload(128);
    for (auto& v : payload) {
      v = static_cast<float>(rng() % 1000) * 0.001F;
    }
    batch.keys.push_back(key);
    batch.payloads.push_back(std::move(payload));
  }
  ExpectRoundTrip(batch);
}

TEST(SerializerPropertyTest, EveryTruncatedPrefixFailsCleanly) {
  RawBatch batch;
  batch.keys = {1, 1000, std::numeric_limits<std::uint64_t>::max() - 5};
  batch.payloads = {{1.0F, 2.0F}, {3.0F}, {4.0F, 5.0F, 6.0F, 7.0F}};
  const std::vector<std::uint8_t> encoded = EncodeDeltaBatch(batch.Rows());
  ASSERT_TRUE(DecodeDeltaBatch(encoded).has_value());
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    const std::span<const std::uint8_t> prefix(encoded.data(), len);
    EXPECT_FALSE(DecodeDeltaBatch(prefix).has_value()) << "prefix length " << len;
  }
}

TEST(SerializerPropertyTest, TrailingGarbageRejected) {
  std::vector<std::uint8_t> encoded = EncodeDeltaBatch({});
  encoded.push_back(0x00);
  EXPECT_FALSE(DecodeDeltaBatch(encoded).has_value());
}

TEST(SerializerPropertyTest, BadVersionRejected) {
  RawBatch batch;
  batch.keys = {5};
  batch.payloads = {{1.0F}};
  std::vector<std::uint8_t> encoded = EncodeDeltaBatch(batch.Rows());
  encoded[0] = kDeltaBatchVersion + 1;
  EXPECT_FALSE(DecodeDeltaBatch(encoded).has_value());
  encoded[0] = 0;
  EXPECT_FALSE(DecodeDeltaBatch(encoded).has_value());
}

TEST(SerializerPropertyTest, HostileRowCountRejected) {
  // Claims 2^24 + 1 rows with no payload behind it.
  WireWriter w;
  w.U8(kDeltaBatchVersion);
  w.VarU64((1ULL << 24) + 1);
  EXPECT_FALSE(DecodeDeltaBatch(w.bytes()).has_value());
}

TEST(SerializerPropertyTest, NonAscendingKeysRejected) {
  // Hand-build a frame whose second key delta is zero (duplicate key on
  // the wire, which the encoder can never emit).
  WireWriter w;
  w.U8(kDeltaBatchVersion);
  w.VarU64(2);      // Two rows.
  w.VarU64(9);      // First key.
  w.VarU64(1);      // One col.
  w.RawFloats(std::vector<float>{1.0F});
  w.VarU64(0);      // Key delta 0 => same key again: invalid.
  w.VarU64(1);
  w.RawFloats(std::vector<float>{2.0F});
  EXPECT_FALSE(DecodeDeltaBatch(w.bytes()).has_value());
}

TEST(SerializerPropertyTest, VarintOverflowRejected) {
  // 10-byte varint encoding a value above 2^64 for the first key.
  WireWriter w;
  w.U8(kDeltaBatchVersion);
  w.VarU64(1);
  for (int i = 0; i < 9; ++i) {
    w.U8(0xFF);
  }
  w.U8(0x7F);  // Continuations push the value past 64 bits.
  EXPECT_FALSE(DecodeDeltaBatch(w.bytes()).has_value());
}

std::uint64_t MakeKey(int table, std::int64_t row) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(table)) << 40) |
         static_cast<std::uint64_t>(row);
}

TEST(SerializerPropertyTest, ShardDeltaMsgRoundTrip) {
  RawBatch batch;
  batch.keys = {MakeKey(0, 3), MakeKey(1, 44)};
  batch.payloads = {{0.5F, 1.5F}, {-3.0F}};
  ShardDeltaMsg msg;
  msg.shard = 3;
  msg.clock = 41;
  msg.payload = EncodeDeltaBatch(batch.Rows());

  const std::vector<std::uint8_t> frame = EncodeMessage(msg);
  const std::optional<Message> decoded = DecodeMessage(frame);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(std::holds_alternative<ShardDeltaMsg>(*decoded));
  const auto& got = std::get<ShardDeltaMsg>(*decoded);
  EXPECT_EQ(got.shard, 3);
  EXPECT_EQ(got.clock, 41);
  EXPECT_EQ(got.payload, msg.payload);  // Opaque blob embeds untouched.
  // The embedded payload is still a decodable batch.
  EXPECT_TRUE(DecodeDeltaBatch(got.payload).has_value());

  // Truncated frames fail cleanly at the message layer too.
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(DecodeMessage({frame.data(), len}).has_value()) << "prefix " << len;
  }
}

}  // namespace
}  // namespace proteus
