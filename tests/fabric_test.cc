#include <gtest/gtest.h>

#include "src/net/fabric.h"

namespace proteus {
namespace {

TEST(Fabric, TransfersChargeBothEndpoints) {
  Fabric fabric(100.0);  // 100 bytes/sec for easy math.
  fabric.AddNode(0);
  fabric.AddNode(1);
  fabric.BeginRound();
  fabric.RecordTransfer(0, 1, 200);
  EXPECT_EQ(fabric.Traffic(0).fg_egress, 200u);
  EXPECT_EQ(fabric.Traffic(1).fg_ingress, 200u);
  EXPECT_DOUBLE_EQ(fabric.RoundCommTime(0), 2.0);
  EXPECT_DOUBLE_EQ(fabric.RoundCommTime(1), 2.0);
}

TEST(Fabric, SelfTransferIsFree) {
  Fabric fabric(100.0);
  fabric.AddNode(0);
  fabric.BeginRound();
  fabric.RecordTransfer(0, 0, 1000);
  EXPECT_DOUBLE_EQ(fabric.RoundCommTime(0), 0.0);
}

TEST(Fabric, FullDuplexUsesMaxOfDirections) {
  Fabric fabric(100.0);
  fabric.AddNode(0);
  fabric.AddNode(1);
  fabric.BeginRound();
  fabric.RecordTransfer(0, 1, 300);
  fabric.RecordTransfer(1, 0, 100);
  // Node 0: egress 300, ingress 100 -> 3s.
  EXPECT_DOUBLE_EQ(fabric.RoundCommTime(0), 3.0);
}

TEST(Fabric, BackgroundOnlyNodeIsFree) {
  Fabric fabric(100.0);
  fabric.AddNode(0);
  fabric.AddNode(1);
  fabric.BeginRound();
  fabric.RecordTransfer(0, 1, 500, TrafficClass::kBackground);
  // Node 1 has only background ingress: it does not gate the round.
  EXPECT_DOUBLE_EQ(fabric.RoundCommTime(1), 0.0);
  EXPECT_DOUBLE_EQ(fabric.RoundCommTime(0), 0.0);
}

TEST(Fabric, BackgroundContendsWithForeground) {
  Fabric fabric(100.0);
  fabric.AddNode(0);
  fabric.AddNode(1);
  fabric.AddNode(2);
  fabric.BeginRound();
  fabric.RecordTransfer(0, 1, 100, TrafficClass::kForeground);
  fabric.RecordTransfer(2, 1, 400, TrafficClass::kBackground);
  // Node 1 has foreground, so its background ingress counts too: 5s.
  EXPECT_DOUBLE_EQ(fabric.RoundCommTime(1), 5.0);
}

TEST(Fabric, BeginRoundClearsCounters) {
  Fabric fabric(100.0);
  fabric.AddNode(0);
  fabric.AddNode(1);
  fabric.BeginRound();
  fabric.RecordTransfer(0, 1, 100);
  fabric.BeginRound();
  EXPECT_EQ(fabric.Traffic(0).fg_egress, 0u);
  EXPECT_DOUBLE_EQ(fabric.RoundCommTimeMax(), 0.0);
}

TEST(Fabric, BottleneckNodeIdentified) {
  Fabric fabric(100.0);
  fabric.AddNode(0);
  fabric.AddNode(1);
  fabric.AddNode(2);
  fabric.BeginRound();
  fabric.RecordTransfer(0, 2, 100);
  fabric.RecordTransfer(1, 2, 300);
  EXPECT_EQ(fabric.RoundBottleneckNode(), 2);
  EXPECT_DOUBLE_EQ(fabric.RoundCommTimeMax(), 4.0);
}

TEST(Fabric, ExternalIngressAndEgress) {
  Fabric fabric(100.0);
  fabric.AddNode(0);
  fabric.BeginRound();
  fabric.RecordExternalIngress(0, 200, TrafficClass::kForeground);
  fabric.RecordExternalEgress(0, 100, TrafficClass::kForeground);
  EXPECT_DOUBLE_EQ(fabric.RoundCommTime(0), 2.0);
}

TEST(Fabric, RemoveNodeDropsAccounting) {
  Fabric fabric(100.0);
  fabric.AddNode(0);
  fabric.AddNode(1);
  fabric.RemoveNode(1);
  EXPECT_FALSE(fabric.HasNode(1));
  EXPECT_TRUE(fabric.HasNode(0));
}

TEST(Fabric, RemoveMidRoundKeepsSurvivorsAccounting) {
  // Detector-driven removal can yank a node between transfers of the
  // same round; the survivors' counters must be untouched.
  Fabric fabric(100.0);
  fabric.AddNode(0);
  fabric.AddNode(1);
  fabric.AddNode(2);
  fabric.BeginRound();
  fabric.RecordTransfer(0, 1, 100);
  fabric.RecordTransfer(0, 2, 200);
  fabric.RemoveNode(2);
  EXPECT_FALSE(fabric.HasNode(2));
  EXPECT_EQ(fabric.Traffic(0).fg_egress, 300u);
  EXPECT_EQ(fabric.Traffic(1).fg_ingress, 100u);
  EXPECT_DOUBLE_EQ(fabric.RoundCommTime(0), 3.0);
  // The removed node no longer gates the round bottleneck.
  EXPECT_EQ(fabric.RoundBottleneckNode(), 0);
}

#ifdef NDEBUG
// The graceful paths below are DCHECK'd: in Debug builds they abort by
// design, so only release builds exercise the degraded behavior.
TEST(Fabric, UnknownTrafficLookupReturnsEmpty) {
  Fabric fabric(100.0);
  fabric.AddNode(0);
  fabric.BeginRound();
  fabric.RecordTransfer(0, 0, 100);
  const NodeTraffic& t = fabric.Traffic(42);
  EXPECT_EQ(t.fg_egress, 0u);
  EXPECT_EQ(t.fg_ingress, 0u);
  EXPECT_FALSE(fabric.HasNode(42));  // Lookup must not insert.
}

TEST(Fabric, RemoveUnknownNodeIsIdempotent) {
  Fabric fabric(100.0);
  fabric.AddNode(0);
  fabric.RemoveNode(5);  // Never added: no-op.
  fabric.RemoveNode(0);
  fabric.RemoveNode(0);  // Double removal: no-op.
  EXPECT_FALSE(fabric.HasNode(0));
}
#endif  // NDEBUG

TEST(Fabric, RoundTotalBytesSumsEgress) {
  Fabric fabric(100.0);
  fabric.AddNode(0);
  fabric.AddNode(1);
  fabric.BeginRound();
  fabric.RecordTransfer(0, 1, 100);
  fabric.RecordTransfer(1, 0, 50, TrafficClass::kBackground);
  EXPECT_EQ(fabric.RoundTotalBytes(), 150u);
}

}  // namespace
}  // namespace proteus
