#include <gtest/gtest.h>

#include "src/ps/clock_table.h"

namespace proteus {
namespace {

TEST(ClockTable, MinClockTracksSlowestWorker) {
  ClockTable table(1);
  table.AddWorkerNode(0);
  table.AddWorkerNode(1);
  table.AdvanceTo(0, 5);
  table.AdvanceTo(1, 3);
  EXPECT_EQ(table.MinClock(), 3);
}

TEST(ClockTable, SspAdmission) {
  ClockTable table(2);
  table.AddWorkerNode(0);
  table.AddWorkerNode(1);
  table.AdvanceTo(0, 2);
  EXPECT_TRUE(table.CanAdvance(0));  // 2 - 0 <= 2.
  table.AdvanceTo(0, 3);
  EXPECT_FALSE(table.CanAdvance(0));  // 3 - 0 > 2.
  table.AdvanceTo(1, 1);
  EXPECT_TRUE(table.CanAdvance(0));  // 3 - 1 <= 2.
}

TEST(ClockTable, NewWorkerJoinsAtMinClock) {
  ClockTable table(0);
  table.AddWorkerNode(0);
  table.AdvanceTo(0, 7);
  table.AddWorkerNode(1);
  EXPECT_EQ(table.ClockOf(1), 7);
  EXPECT_EQ(table.MinClock(), 7);
}

TEST(ClockTable, RemovingLaggardRaisesMin) {
  ClockTable table(0);
  table.AddWorkerNode(0);
  table.AddWorkerNode(1);
  table.AdvanceTo(0, 10);
  table.AdvanceTo(1, 4);
  table.RemoveWorkerNode(1);
  EXPECT_EQ(table.MinClock(), 10);
}

TEST(ClockTable, EmptyTableMinIsZero) {
  ClockTable table(0);
  EXPECT_EQ(table.MinClock(), 0);
}

}  // namespace
}  // namespace proteus
