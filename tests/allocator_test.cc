#include <gtest/gtest.h>

#include "src/cluster/allocator.h"
#include "src/cluster/fairness.h"
#include "src/cluster/karma.h"
#include "src/common/rng.h"

namespace proteus {
namespace cluster {
namespace {

std::vector<SlotDemand> Demands(std::vector<int> slots) {
  std::vector<SlotDemand> demands;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    demands.push_back({static_cast<int>(i), slots[i]});
  }
  return demands;
}

int Granted(const std::vector<SlotGrant>& grants) {
  int sum = 0;
  for (const SlotGrant& g : grants) {
    sum += g.slots;
  }
  return sum;
}

TEST(AllocatorTest, RotatingFairSharesSplitEvenly) {
  const std::vector<int> shares = RotatingFairShares(0, 12, 4);
  EXPECT_EQ(shares, (std::vector<int>{3, 3, 3, 3}));
}

TEST(AllocatorTest, RotatingRemainderMovesWithRound) {
  // 10 slots, 4 claimants: base 2, remainder 2 rotates.
  EXPECT_EQ(RotatingFairShares(0, 10, 4), (std::vector<int>{3, 3, 2, 2}));
  EXPECT_EQ(RotatingFairShares(1, 10, 4), (std::vector<int>{2, 3, 3, 2}));
  EXPECT_EQ(RotatingFairShares(3, 10, 4), (std::vector<int>{3, 2, 2, 3}));
  // Over n consecutive rounds every index gets the same total.
  std::vector<int> totals(4, 0);
  for (int r = 0; r < 4; ++r) {
    const std::vector<int> shares = RotatingFairShares(r, 10, 4);
    for (int i = 0; i < 4; ++i) {
      totals[static_cast<std::size_t>(i)] += shares[static_cast<std::size_t>(i)];
    }
  }
  EXPECT_EQ(totals, (std::vector<int>{10, 10, 10, 10}));
}

TEST(AllocatorTest, FairShareCapsAtShareAndWastesUnused) {
  StaticFairShareAllocator alloc;
  // Shares are 3 each; tenant 0 wants 1, the rest want 6. The unused 2
  // slots are wasted: total granted is 10, not 12.
  const std::vector<SlotGrant> grants = alloc.Allocate(0, 12, Demands({1, 6, 6, 6}));
  EXPECT_EQ(grants[0].slots, 1);
  EXPECT_EQ(grants[1].slots, 3);
  EXPECT_EQ(Granted(grants), 10);
  for (const SlotGrant& g : grants) {
    EXPECT_EQ(g.borrowed, 0);
  }
}

TEST(AllocatorTest, GreedyRewardsTheBiggestReport) {
  GreedyMaxBidAllocator alloc;
  const std::vector<SlotGrant> grants = alloc.Allocate(0, 10, Demands({4, 9, 4}));
  EXPECT_EQ(grants[1].slots, 9);  // Biggest report served first.
  EXPECT_EQ(grants[0].slots, 1);  // Tie at 4 broken toward tenant 0.
  EXPECT_EQ(grants[2].slots, 0);
  EXPECT_EQ(Granted(grants), 10);
}

TEST(AllocatorTest, GreedyNeverExceedsCapacity) {
  GreedyMaxBidAllocator alloc;
  const std::vector<SlotGrant> grants = alloc.Allocate(0, 6, Demands({20, 20}));
  EXPECT_EQ(Granted(grants), 6);
}

TEST(AllocatorTest, FactoryBuildsEveryMechanism) {
  EXPECT_EQ(MakeAllocator("fair")->name(), "fair_share");
  EXPECT_EQ(MakeAllocator("fair_share")->name(), "fair_share");
  EXPECT_EQ(MakeAllocator("greedy")->name(), "greedy");
  EXPECT_EQ(MakeAllocator("karma")->name(), "karma");
  const auto karma = MakeAllocator("karma:init=5");
  ASSERT_NE(karma, nullptr);
  EXPECT_EQ(static_cast<const KarmaAllocator*>(karma.get())->config().init_credits, 5);
}

TEST(AllocatorTest, FactoryRejectsBadSpecs) {
  std::string error;
  EXPECT_EQ(MakeAllocator("auction", &error), nullptr);
  EXPECT_NE(error.find("auction"), std::string::npos);
  EXPECT_EQ(MakeAllocator("karma:init=", &error), nullptr);
  EXPECT_EQ(MakeAllocator("karma:init=-3", &error), nullptr);
  EXPECT_EQ(MakeAllocator("karma:init=2x", &error), nullptr);
}

class KarmaAllocatorTest : public ::testing::Test {
 protected:
  static KarmaAllocator Make(int tenants, std::int64_t init = 32) {
    KarmaConfig config;
    config.init_credits = init;
    KarmaAllocator alloc(config);
    for (int t = 0; t < tenants; ++t) {
      alloc.OnTenantAdmitted(t);
    }
    return alloc;
  }
};

TEST_F(KarmaAllocatorTest, DonorEarnsCreditsNextRound) {
  KarmaAllocator alloc = Make(2);
  // Capacity 8, shares 4/4. Tenant 0 wants 2 (donates 2), tenant 1 wants
  // 6 (borrows 2, paying 2 credits into escrow).
  const std::vector<SlotGrant> r0 = alloc.Allocate(0, 8, Demands({2, 6}));
  EXPECT_EQ(r0[0].slots, 2);
  EXPECT_EQ(r0[1].slots, 6);
  EXPECT_EQ(r0[1].borrowed, 2);
  EXPECT_EQ(alloc.CreditBalance(1), 30);
  EXPECT_EQ(alloc.Escrow(), 2);           // In flight between rounds.
  EXPECT_EQ(alloc.CreditBalance(0), 32);  // Payout lands next round.
  EXPECT_TRUE(alloc.ConservationHolds());

  alloc.Allocate(1, 8, Demands({4, 4}));  // No trading this round.
  EXPECT_EQ(alloc.CreditBalance(0), 34);  // Donor paid out.
  EXPECT_EQ(alloc.Escrow(), 0);
  EXPECT_TRUE(alloc.ConservationHolds());
}

TEST_F(KarmaAllocatorTest, BorrowingRequiresCredits) {
  KarmaAllocator alloc = Make(2, 0);  // Broke tenants.
  const std::vector<SlotGrant> grants = alloc.Allocate(0, 8, Demands({0, 8}));
  // Tenant 1 gets its share but cannot pay for the donated slots.
  EXPECT_EQ(grants[1].slots, 4);
  EXPECT_EQ(grants[1].borrowed, 0);
  EXPECT_EQ(alloc.Escrow(), 0);
  EXPECT_TRUE(alloc.ConservationHolds());
}

TEST_F(KarmaAllocatorTest, ContestedDonationsGoRichestFirst) {
  // With no credits anywhere, donated slots go unborrowed.
  KarmaAllocator broke = Make(3, 0);
  const std::vector<SlotGrant> r0 = broke.Allocate(0, 9, Demands({0, 3, 3}));
  EXPECT_EQ(r0[1].borrowed + r0[2].borrowed, 0);
  EXPECT_TRUE(broke.ConservationHolds());

  KarmaAllocator k = Make(3, 2);
  // Burn tenant 2's credits: capacity 9 (shares 3). Tenant 0 donates 3,
  // tenant 2 borrows 2 (its whole balance), tenant 1 sits at its share.
  const std::vector<SlotGrant> warm = k.Allocate(0, 9, Demands({0, 3, 6}));
  EXPECT_EQ(warm[2].borrowed, 2);
  EXPECT_EQ(k.CreditBalance(2), 0);
  // Now tenants 1 and 2 both want the 3 donated slots; tenant 1 has 2
  // credits, tenant 2 has 0: richest-first gives both payable slots to
  // tenant 1, none to tenant 2.
  const std::vector<SlotGrant> r1 = k.Allocate(1, 9, Demands({0, 6, 6}));
  EXPECT_EQ(r1[1].borrowed, 2);
  EXPECT_EQ(r1[2].borrowed, 0);
  EXPECT_TRUE(k.ConservationHolds());
}

TEST_F(KarmaAllocatorTest, TiesBreakTowardLowerTenantId) {
  KarmaConfig config;
  config.init_credits = 1;
  KarmaAllocator alloc(config);
  alloc.OnTenantAdmitted(0);
  alloc.OnTenantAdmitted(1);
  alloc.OnTenantAdmitted(2);
  // Shares 3 each; tenant 0 donates 3; tenants 1 and 2 each want more
  // with equal balances (1 credit each): only 2 of the 3 donated slots
  // can be paid for, one each — and with a single slot left and a fresh
  // tie, the lower id would win. Check the full grant vector.
  const std::vector<SlotGrant> grants = alloc.Allocate(0, 9, Demands({0, 6, 6}));
  EXPECT_EQ(grants[1].borrowed, 1);
  EXPECT_EQ(grants[2].borrowed, 1);
  EXPECT_EQ(alloc.Escrow(), 2);
  EXPECT_TRUE(alloc.ConservationHolds());
}

TEST_F(KarmaAllocatorTest, ConservationHoldsOverRandomChurn) {
  KarmaAllocator alloc = Make(0, 16);
  Rng rng(2024);
  std::vector<int> admitted;
  int next_id = 0;
  std::int64_t escrow_seen = 0;
  for (int round = 0; round < 400; ++round) {
    // Random admissions and retirements.
    if (admitted.size() < 6 && rng.Bernoulli(0.3)) {
      alloc.OnTenantAdmitted(next_id);
      admitted.push_back(next_id);
      ++next_id;
    }
    if (admitted.size() > 1 && rng.Bernoulli(0.15)) {
      const std::size_t victim =
          static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(admitted.size()) - 1));
      alloc.OnTenantRetired(admitted[victim]);
      admitted.erase(admitted.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    if (admitted.empty()) {
      continue;
    }
    std::vector<SlotDemand> demands;
    for (const int t : admitted) {
      demands.push_back({t, static_cast<int>(rng.UniformInt(0, 12))});
    }
    const int capacity = static_cast<int>(rng.UniformInt(0, 24));
    const std::vector<SlotGrant> grants = alloc.Allocate(round, capacity, demands);
    ASSERT_TRUE(alloc.ConservationHolds()) << "round " << round;
    ASSERT_LE(Granted(grants), capacity);
    for (std::size_t i = 0; i < grants.size(); ++i) {
      ASSERT_LE(grants[i].slots, demands[i].slots);
      ASSERT_GE(alloc.CreditBalance(demands[i].tenant), 0);
    }
    escrow_seen += alloc.Escrow();
  }
  EXPECT_GT(escrow_seen, 0);  // The churn actually exercised borrowing.
}

TEST_F(KarmaAllocatorTest, EscrowRetiresWhenDonorLeaves) {
  KarmaAllocator alloc = Make(2);
  alloc.Allocate(0, 8, Demands({2, 6}));  // Tenant 0 is owed 2 credits.
  EXPECT_EQ(alloc.Escrow(), 2);
  alloc.OnTenantRetired(0);  // Leaves before the payout lands.
  EXPECT_TRUE(alloc.ConservationHolds());
  alloc.Allocate(1, 8, {SlotDemand{1, 4}});
  // The orphaned payout retired instead of vanishing.
  EXPECT_EQ(alloc.Escrow(), 0);
  EXPECT_EQ(alloc.retired(), 32 + 2);
  EXPECT_TRUE(alloc.ConservationHolds());
}

TEST(FairnessTest, JainIndexBounds) {
  EXPECT_DOUBLE_EQ(JainIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainIndex({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(JainIndex({5.0, 5.0, 5.0}), 1.0);
  EXPECT_NEAR(JainIndex({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  const double mixed = JainIndex({4.0, 2.0, 2.0});
  EXPECT_GT(mixed, 0.25);
  EXPECT_LT(mixed, 1.0);
}

TEST(FairnessTest, WelfareMeasures) {
  EXPECT_DOUBLE_EQ(UtilitarianWelfare({1.0, 2.0, 3.0}), 6.0);
  // Nash welfare prefers the spread allocation at equal totals.
  EXPECT_GT(NashWelfare({3.0, 3.0}), NashWelfare({6.0, 0.0}));
  EXPECT_DOUBLE_EQ(NashWelfare({}), 0.0);
}

}  // namespace
}  // namespace cluster
}  // namespace proteus
