// Differential battery pinning the lock-striped parameter-store fast
// path (ModelOptions::shards >= 2) against the legacy single-shard
// engine. The legacy path is the oracle: for any op stream and any
// elasticity scenario, every shard count must produce bit-identical
// model state (canonical checkpoint bytes), identical clock tables, and
// identical coalesced dirty-row payloads. Wire-byte *accounting*
// deliberately differs between engines (per-row framing vs coalesced
// batches), so the comparisons here are over state, never over durations
// or fabric byte totals.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "src/agileml/runtime.h"
#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/ps/model.h"

namespace proteus {
namespace {

constexpr int kShardCounts[] = {1, 2, 4, 8};

// --- Store-level differential: a seeded op stream applied in lockstep ---

class StoreFleet {
 public:
  StoreFleet(std::vector<TableSpec> tables, int num_partitions, std::uint64_t seed) {
    for (const int shards : kShardCounts) {
      ModelOptions options;
      options.shards = shards;
      stores_.push_back(std::make_unique<ModelStore>(tables, num_partitions, seed, options));
    }
  }

  ModelStore& store(std::size_t i) { return *stores_[i]; }
  std::size_t size() const { return stores_.size(); }

  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (auto& s : stores_) {
      fn(*s);
    }
  }

  // Every store must serialize to the oracle's exact bytes, report the
  // same materialized-row count, and encode the same per-partition dirty
  // payloads.
  void ExpectIdentical(const char* where) {
    const std::vector<std::uint8_t> oracle = stores_[0]->SerializeCheckpoint();
    const std::size_t oracle_rows = stores_[0]->MaterializedRows();
    for (std::size_t i = 1; i < stores_.size(); ++i) {
      SCOPED_TRACE(testing::Message() << where << ": shards=" << stores_[i]->shards());
      EXPECT_EQ(stores_[i]->SerializeCheckpoint(), oracle);
      EXPECT_EQ(stores_[i]->MaterializedRows(), oracle_rows);
      for (PartitionId p = 0; p < stores_[0]->num_partitions(); ++p) {
        EXPECT_EQ(stores_[i]->EncodeDirtyRows(p), stores_[0]->EncodeDirtyRows(p))
            << "partition " << p;
      }
    }
  }

 private:
  std::vector<std::unique_ptr<ModelStore>> stores_;
};

std::vector<TableSpec> TwoTables() {
  return {{0, 500, 8, 0.5F, 0.25F}, {1, 64, 3, -1.0F, 0.0F}};
}

TEST(PsDifferentialTest, OpStreamBitIdenticalAcrossShardCounts) {
  StoreFleet fleet(TwoTables(), /*num_partitions=*/12, /*seed=*/42);
  std::mt19937_64 rng(7);
  auto rand_row = [&rng](std::int64_t rows) {
    return static_cast<std::int64_t>(rng() % static_cast<std::uint64_t>(rows));
  };
  auto rand_delta = [&rng](int cols) {
    std::vector<float> d(static_cast<std::size_t>(cols));
    for (auto& v : d) {
      v = static_cast<float>(static_cast<std::int64_t>(rng() % 2001) - 1000) / 256.0F;
    }
    return d;
  };

  const std::vector<TableSpec> tables = TwoTables();
  for (int round = 0; round < 6; ++round) {
    // A burst of single-row applies (the worker hot path) ...
    for (int i = 0; i < 50; ++i) {
      const int t = static_cast<int>(rng() % 2);
      const std::int64_t row = rand_row(tables[static_cast<std::size_t>(t)].rows);
      const std::vector<float> d = rand_delta(tables[static_cast<std::size_t>(t)].cols);
      fleet.ForEach([&](ModelStore& s) { s.ApplyDelta(t, row, d); });
    }
    // ... a batched apply (including duplicate rows, which must sum in
    // input order in both engines) ...
    std::vector<std::vector<float>> payloads;
    std::vector<RowDelta> batch;
    for (int i = 0; i < 20; ++i) {
      const int t = static_cast<int>(rng() % 2);
      const std::int64_t row = rand_row(tables[static_cast<std::size_t>(t)].rows / 4);
      payloads.push_back(rand_delta(tables[static_cast<std::size_t>(t)].cols));
      batch.push_back({t, row, std::span<const float>(payloads.back())});
    }
    fleet.ForEach([&](ModelStore& s) { s.ApplyUpdates(batch); });
    // ... some overwrites and reads (reads materialize rows).
    for (int i = 0; i < 10; ++i) {
      const int t = static_cast<int>(rng() % 2);
      const std::int64_t row = rand_row(tables[static_cast<std::size_t>(t)].rows);
      if (i % 2 == 0) {
        const std::vector<float> v = rand_delta(tables[static_cast<std::size_t>(t)].cols);
        fleet.ForEach([&](ModelStore& s) { s.SetRow(t, row, v); });
      } else {
        fleet.ForEach([&](ModelStore& s) {
          std::vector<float> out;
          s.ReadRow(t, row, out);
        });
      }
    }
    fleet.ExpectIdentical("after mutation round");

    switch (round) {
      case 0:
        fleet.ForEach([](ModelStore& s) { s.EnableBackups(); });
        break;
      case 1:  // Partial sync, then more dirt, then rollback.
        fleet.ForEach([](ModelStore& s) {
          for (PartitionId p = 0; p < s.num_partitions(); p += 2) {
            s.SyncPartitionToBackup(p, /*at_clock=*/10 + p);
          }
        });
        break;
      case 2:
        fleet.ForEach([](ModelStore& s) { s.RollbackAllToBackup(); });
        fleet.ExpectIdentical("after rollback");
        break;
      case 3: {  // Full checkpoint -> restore round trip.
        std::vector<std::uint8_t> blob;
        fleet.ForEach([&blob](ModelStore& s) {
          if (blob.empty()) {
            blob = s.SerializeCheckpoint();
          }
          s.RestoreCheckpoint(blob);
          EXPECT_FALSE(s.backups_enabled());  // Restore invalidates backups.
          s.EnableBackups();
        });
        fleet.ExpectIdentical("after restore");
        break;
      }
      case 4:  // Sync everything so round 5 rolls back to a rich backup.
        fleet.ForEach([](ModelStore& s) {
          for (PartitionId p = 0; p < s.num_partitions(); ++p) {
            s.SyncPartitionToBackup(p, /*at_clock=*/50);
          }
        });
        break;
      default:
        break;
    }
  }
  fleet.ForEach([](ModelStore& s) { s.RollbackAllToBackup(); });
  fleet.ExpectIdentical("final rollback");
}

TEST(PsDifferentialTest, ShardCheckpointsReassembleTheFullModel) {
  ModelOptions options;
  options.shards = 4;
  ModelStore store(TwoTables(), /*num_partitions=*/10, /*seed=*/3, options);
  std::vector<float> d8(8, 0.125F);
  std::vector<float> d3(3, -2.0F);
  for (std::int64_t r = 0; r < 200; ++r) {
    store.ApplyDelta(0, r, d8);
  }
  for (std::int64_t r = 0; r < 64; ++r) {
    store.ApplyDelta(1, r, d3);
  }
  const std::vector<std::uint8_t> full = store.SerializeCheckpoint();

  // Restore shard-by-shard into a fresh store (different shard count to
  // prove the blob format is layout-independent at the full level, and
  // same count for the shard level).
  ModelStore same(TwoTables(), 10, /*seed=*/3, options);
  std::size_t shard_bytes = 0;
  for (int s = 0; s < store.shards(); ++s) {
    const std::vector<std::uint8_t> blob = store.SerializeShardCheckpoint(s);
    shard_bytes += blob.size();
    same.RestoreShardCheckpoint(s, blob);
  }
  EXPECT_EQ(shard_bytes, full.size());  // Shard blobs partition the model.
  EXPECT_EQ(same.SerializeCheckpoint(), full);

  ModelStore legacy(TwoTables(), 10, /*seed=*/3, ModelOptions{});
  legacy.RestoreCheckpoint(full);
  EXPECT_EQ(legacy.SerializeCheckpoint(), full);
}

TEST(PsDifferentialTest, ShardMetadataTracksSyncsAndMutations) {
  ModelOptions options;
  options.shards = 4;
  ModelStore store({{0, 100, 4, 0.0F, 0.0F}}, /*num_partitions=*/8, /*seed=*/1, options);
  const std::uint64_t v0 = store.ShardVersion(0);
  std::vector<float> d(4, 1.0F);
  store.ApplyDelta(0, 0, d);  // Row 0 -> partition 0 -> shard 0.
  EXPECT_GT(store.ShardVersion(0), v0);
  store.EnableBackups();
  store.SyncPartitionToBackup(0, /*at_clock=*/17);
  EXPECT_EQ(store.ShardStateOf(0).last_sync_clock, 17);
  EXPECT_EQ(store.ShardStateOf(1).last_sync_clock, -1);  // Untouched shard.
  EXPECT_GE(store.ShardImbalance(), 1.0);
}

// --- Runtime-level differential: full elasticity scenario in lockstep ---

class PsRuntimeDifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  PsRuntimeDifferentialTest() {
    RatingsConfig rc;
    rc.users = 300;
    rc.items = 150;
    rc.ratings = 9000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 8;
    oracle_app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
    sharded_app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  AgileMLConfig Config(int shards) const {
    AgileMLConfig config;
    config.num_partitions = 16;
    config.data_blocks = 64;
    config.parallel_execution = false;  // Lockstep determinism.
    config.backup_sync_every = 3;       // Leave unsynced clocks for Fail().
    // Engines account wire bytes differently (per-row vs coalesced), so
    // virtual durations diverge. Infinite storage bandwidth makes preload
    // complete within one clock regardless of duration, keeping
    // membership events on identical clocks in both runs.
    config.storage_bandwidth = 1e18;
    config.model.shards = shards;
    return config;
  }

  static std::vector<NodeInfo> Cluster(int reliable, int transient, NodeId first_id = 0) {
    std::vector<NodeInfo> nodes;
    NodeId id = first_id;
    for (int i = 0; i < reliable; ++i) {
      nodes.push_back({id++, Tier::kReliable, 8, kInvalidAllocation});
    }
    for (int i = 0; i < transient; ++i) {
      nodes.push_back({id++, Tier::kTransient, 8, kInvalidAllocation});
    }
    return nodes;
  }

  // Applies `step` to both runtimes, then checks full state equivalence.
  template <typename Fn>
  void Lockstep(const char* what, Fn&& step) {
    step(*oracle_);
    step(*sharded_);
    SCOPED_TRACE(what);
    ExpectEquivalent();
  }

  void ExpectEquivalent() {
    ASSERT_EQ(sharded_->clock(), oracle_->clock());
    EXPECT_EQ(sharded_->stage(), oracle_->stage());
    EXPECT_EQ(sharded_->lost_clocks_total(), oracle_->lost_clocks_total());
    EXPECT_EQ(sharded_->clock_table().clocks(), oracle_->clock_table().clocks());
    EXPECT_EQ(sharded_->clock_table().Digest(), oracle_->clock_table().Digest());
    // The tentpole claim: bit-identical model state under every layout.
    EXPECT_EQ(sharded_->model().SerializeCheckpoint(), oracle_->model().SerializeCheckpoint());
    for (PartitionId p = 0; p < oracle_->config().num_partitions; ++p) {
      EXPECT_EQ(sharded_->model().EncodeDirtyRows(p), oracle_->model().EncodeDirtyRows(p))
          << "partition " << p;
    }
  }

  // First transient node currently serving at least one partition.
  static NodeId ServingTransient(const AgileMLRuntime& runtime) {
    for (const auto& [part, server] : runtime.roles().server) {
      for (const auto& node : runtime.nodes()) {
        if (node.id == server && !node.reliable()) {
          return server;
        }
      }
    }
    return kInvalidNode;
  }

  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> oracle_app_;
  std::unique_ptr<MatrixFactorizationApp> sharded_app_;
  std::unique_ptr<AgileMLRuntime> oracle_;
  std::unique_ptr<AgileMLRuntime> sharded_;
};

TEST_P(PsRuntimeDifferentialTest, ElasticityScenarioStaysBitIdentical) {
  oracle_ = std::make_unique<AgileMLRuntime>(oracle_app_.get(), Config(1), Cluster(4, 0));
  sharded_ =
      std::make_unique<AgileMLRuntime>(sharded_app_.get(), Config(GetParam()), Cluster(4, 0));
  ASSERT_EQ(sharded_->model().shards(), GetParam());
  ExpectEquivalent();

  Lockstep("stage-1 clocks", [](AgileMLRuntime& r) { r.RunClocks(3); });
  Lockstep("reliable checkpoint", [](AgileMLRuntime& r) { r.CheckpointReliable(); });

  // Bulk addition driving the stage 1 -> 2 transition.
  Lockstep("add transient nodes", [this](AgileMLRuntime& r) {
    r.AddNodes(Cluster(0, 8, /*first_id=*/100));
  });
  Lockstep("incorporate + stage 2", [](AgileMLRuntime& r) { r.RunClocks(2); });
  ASSERT_EQ(oracle_->stage(), Stage::kStage2);

  // Warned eviction of part of the transient tier: end-of-life pushes,
  // partition migration, no lost work.
  Lockstep("warned eviction", [](AgileMLRuntime& r) { r.Evict({100, 101}); });
  Lockstep("post-eviction clocks", [](AgileMLRuntime& r) { r.RunClocks(2); });

  // Unwarned failure of a serving ActivePS mid-push: the model holds
  // dirty rows newer than the last backup sync (backup_sync_every=3), so
  // this exercises rollback-to-backup including dropped fresh rows.
  const NodeId victim = ServingTransient(*oracle_);
  ASSERT_NE(victim, kInvalidNode);
  ASSERT_EQ(victim, ServingTransient(*sharded_));  // Same placement plan.
  Lockstep("fail ActivePS mid-push", [victim](AgileMLRuntime& r) {
    const int lost = r.Fail({victim});
    EXPECT_GE(lost, 0);
  });
  Lockstep("post-rollback clocks", [](AgileMLRuntime& r) { r.RunClocks(3); });

  // Chaos-style reliable-tier checkpoint / restore cycle (shard-granular
  // snapshot + restore on the fast path).
  Lockstep("checkpoint", [](AgileMLRuntime& r) { r.CheckpointReliable(); });
  Lockstep("advance", [](AgileMLRuntime& r) { r.RunClocks(2); });
  Lockstep("restore from checkpoint", [](AgileMLRuntime& r) {
    const int lost = r.RestoreFromCheckpoint();
    EXPECT_EQ(lost, 2);
  });
  Lockstep("post-restore clocks", [](AgileMLRuntime& r) { r.RunClocks(2); });
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, PsRuntimeDifferentialTest, ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace proteus
