// Out-of-sample validation of the eviction estimator: beta trained on
// one window must predict realized eviction frequency on a disjoint
// later window of the same market (the paper trains on Mar-Jun 2016 and
// evaluates on Jun-Aug).
#include <gtest/gtest.h>

#include <cmath>

#include "src/bidbrain/eviction_estimator.h"
#include "src/market/trace_gen.h"

namespace proteus {
namespace {

class EstimatorValidationTest : public ::testing::TestWithParam<double> {};

TEST_P(EstimatorValidationTest, TrainedBetaPredictsHoldoutEvictionRate) {
  const double spikes_per_day = GetParam();
  const InstanceTypeCatalog catalog = InstanceTypeCatalog::Default();
  SyntheticTraceConfig config;
  config.spikes_per_day = spikes_per_day;
  Rng rng(2024);
  TraceStore store;
  const MarketKey key{"z0", "c4.xlarge"};
  store.Put(key, GenerateSyntheticTrace(catalog.Get("c4.xlarge"), 120 * kDay, config, rng));

  EvictionEstimator estimator;
  estimator.Train(store, 0.0, 60 * kDay);

  // Replay the holdout window with a fixed delta and compare realized
  // eviction frequency with the trained beta.
  const Money delta = 0.01;
  const PriceSeries& series = store.Get(key);
  int samples = 0;
  int evicted = 0;
  for (SimTime t = 60 * kDay; t + kHour <= 120 * kDay; t += 30 * kMinute) {
    const Money bid = series.PriceAt(t) + delta;
    ++samples;
    if (series.FirstTimeAbove(bid, t, t + kHour).has_value()) {
      ++evicted;
    }
  }
  ASSERT_GT(samples, 500);
  const double realized = static_cast<double>(evicted) / samples;
  const double predicted = estimator.Estimate(key, delta).beta;
  // The process is stationary, so train and holdout must agree within a
  // generous statistical margin.
  EXPECT_NEAR(predicted, realized, std::max(0.05, realized * 0.5))
      << "spikes/day=" << spikes_per_day;
}

INSTANTIATE_TEST_SUITE_P(SpikeRates, EstimatorValidationTest,
                         ::testing::Values(1.0, 3.0, 8.0, 16.0));

}  // namespace
}  // namespace proteus
