#include <gtest/gtest.h>

#include <set>

#include "src/agileml/roles.h"
#include "src/common/rng.h"

namespace proteus {
namespace {

std::vector<NodeInfo> MakeCluster(int reliable, int transient) {
  std::vector<NodeInfo> nodes;
  NodeId id = 0;
  for (int i = 0; i < reliable; ++i) {
    nodes.push_back({id++, Tier::kReliable, 8, kInvalidAllocation});
  }
  for (int i = 0; i < transient; ++i) {
    nodes.push_back({id++, Tier::kTransient, 8, kInvalidAllocation});
  }
  return nodes;
}

std::set<NodeId> ReliableIds(const std::vector<NodeInfo>& nodes) {
  std::set<NodeId> ids;
  for (const auto& n : nodes) {
    if (n.reliable()) {
      ids.insert(n.id);
    }
  }
  return ids;
}

TEST(RolePlanner, StageThresholdsFromPaper) {
  RolePlanner planner(RolePlannerConfig{});
  EXPECT_EQ(planner.PickStage({4, 0}), Stage::kStage1);
  EXPECT_EQ(planner.PickStage({4, 4}), Stage::kStage1);   // 1:1 not > 1:1.
  EXPECT_EQ(planner.PickStage({4, 8}), Stage::kStage2);   // 2:1.
  EXPECT_EQ(planner.PickStage({4, 60}), Stage::kStage2);  // 15:1 not > 15:1.
  EXPECT_EQ(planner.PickStage({1, 63}), Stage::kStage3);  // 63:1.
}

TEST(RolePlanner, ForcedStageOverrides) {
  RolePlannerConfig config;
  config.forced_stage = Stage::kStage3;
  RolePlanner planner(config);
  EXPECT_EQ(planner.PickStage({4, 4}), Stage::kStage3);
}

TEST(RolePlanner, Stage1ServersOnlyOnReliable) {
  RolePlanner planner(RolePlannerConfig{});
  const auto nodes = MakeCluster(4, 4);
  const RoleAssignment roles = planner.Plan(nodes, 32, nullptr);
  EXPECT_EQ(roles.stage, Stage::kStage1);
  const auto reliable = ReliableIds(nodes);
  for (const auto& [part, server] : roles.server) {
    EXPECT_TRUE(reliable.count(server) > 0) << "partition " << part;
  }
  EXPECT_TRUE(roles.backup.empty());
  EXPECT_EQ(roles.worker_nodes.size(), 8u);  // Workers everywhere.
}

TEST(RolePlanner, Stage2ActivesOnTransientBackupsOnReliable) {
  RolePlanner planner(RolePlannerConfig{});
  const auto nodes = MakeCluster(4, 16);  // Ratio 4:1 -> stage 2.
  const RoleAssignment roles = planner.Plan(nodes, 32, nullptr);
  EXPECT_EQ(roles.stage, Stage::kStage2);
  // ActivePSs on half the transient nodes.
  EXPECT_EQ(roles.active_ps_nodes.size(), 8u);
  const auto reliable = ReliableIds(nodes);
  for (const NodeId n : roles.active_ps_nodes) {
    EXPECT_EQ(reliable.count(n), 0u);
  }
  for (const auto& [part, server] : roles.server) {
    EXPECT_TRUE(roles.active_ps_nodes.count(server) > 0) << "partition " << part;
  }
  for (const auto& [part, backup] : roles.backup) {
    EXPECT_TRUE(reliable.count(backup) > 0) << "partition " << part;
  }
  EXPECT_EQ(roles.worker_nodes.size(), 20u);  // Stage 2 keeps reliable workers.
}

TEST(RolePlanner, Stage3ExcludesReliableWorkers) {
  RolePlanner planner(RolePlannerConfig{});
  const auto nodes = MakeCluster(1, 63);
  const RoleAssignment roles = planner.Plan(nodes, 32, nullptr);
  EXPECT_EQ(roles.stage, Stage::kStage3);
  EXPECT_EQ(roles.worker_nodes.size(), 63u);
  EXPECT_EQ(roles.worker_nodes.count(0), 0u);  // Node 0 is the reliable one.
}

TEST(RolePlanner, EveryPartitionHasExactlyOneServer) {
  RolePlanner planner(RolePlannerConfig{});
  const auto nodes = MakeCluster(2, 30);
  const RoleAssignment roles = planner.Plan(nodes, 32, nullptr);
  EXPECT_EQ(roles.server.size(), 32u);
  EXPECT_EQ(roles.backup.size(), 32u);
}

TEST(RolePlanner, ForcedActivePsCount) {
  RolePlannerConfig config;
  config.forced_stage = Stage::kStage2;
  config.forced_active_ps_count = 48;
  RolePlanner planner(config);
  const auto nodes = MakeCluster(4, 60);
  const RoleAssignment roles = planner.Plan(nodes, 64, nullptr);
  EXPECT_EQ(roles.active_ps_nodes.size(), 48u);
}

TEST(RolePlanner, StablePlacementAcrossReplans) {
  RolePlanner planner(RolePlannerConfig{});
  auto nodes = MakeCluster(4, 16);
  const RoleAssignment first = planner.Plan(nodes, 32, nullptr);
  // Add two more transient nodes; most partitions should stay put.
  nodes.push_back({100, Tier::kTransient, 8, kInvalidAllocation});
  nodes.push_back({101, Tier::kTransient, 8, kInvalidAllocation});
  const RoleAssignment second = planner.Plan(nodes, 32, &first);
  int moved = 0;
  for (const auto& [part, server] : second.server) {
    if (first.server.at(part) != server) {
      ++moved;
    }
  }
  EXPECT_LE(moved, 8);  // Only rebalancing moves, not a reshuffle.
}

TEST(RolePlanner, ActivesPreferLongestRunningTransient) {
  RolePlanner planner(RolePlannerConfig{});
  const auto nodes = MakeCluster(4, 16);  // Transient ids 4..19 in join order.
  const RoleAssignment roles = planner.Plan(nodes, 32, nullptr);
  // The 8 actives must be the 8 earliest-joined transient nodes.
  for (NodeId id = 4; id < 12; ++id) {
    EXPECT_TRUE(roles.active_ps_nodes.count(id) > 0) << id;
  }
}

TEST(RolePlanner, FallsBackToStage1WithoutTransient) {
  RolePlannerConfig config;
  config.forced_stage = Stage::kStage2;
  RolePlanner planner(config);
  const auto nodes = MakeCluster(4, 0);
  const RoleAssignment roles = planner.Plan(nodes, 16, nullptr);
  EXPECT_EQ(roles.stage, Stage::kStage1);
}

// Property: partitions balanced over servers within +-1 of the ceiling.
class RolesBalanceTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RolesBalanceTest, ServerLoadBalanced) {
  const auto [reliable, transient] = GetParam();
  RolePlanner planner(RolePlannerConfig{});
  const auto nodes = MakeCluster(reliable, transient);
  const RoleAssignment roles = planner.Plan(nodes, 64, nullptr);
  std::map<NodeId, int> load;
  for (const auto& [part, server] : roles.server) {
    ++load[server];
  }
  int min = 1000;
  int max = 0;
  for (const auto& [node, count] : load) {
    min = std::min(min, count);
    max = std::max(max, count);
  }
  EXPECT_LE(max - min, 1);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RolesBalanceTest,
                         ::testing::Values(std::tuple{4, 0}, std::tuple{4, 12},
                                           std::tuple{2, 30}, std::tuple{1, 63},
                                           std::tuple{8, 8}));

}  // namespace
}  // namespace proteus
