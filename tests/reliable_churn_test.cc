// Churn on the *reliable* tier. The paper treats reliable nodes as
// stable, but the mechanisms must still cope: BackupPS ownership moves
// when a reliable node leaves, and a reliable failure in stages 2/3
// loses nothing because the authoritative state lives on the ActivePSs.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/agileml/runtime.h"
#include "src/apps/datasets.h"
#include "src/apps/mf.h"

namespace proteus {
namespace {

class ReliableChurnTest : public ::testing::Test {
 protected:
  ReliableChurnTest() {
    RatingsConfig rc;
    rc.users = 500;
    rc.items = 200;
    rc.ratings = 20000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 8;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  AgileMLConfig Config() const {
    AgileMLConfig config;
    config.num_partitions = 16;
    config.data_blocks = 64;
    config.parallel_execution = false;
    return config;
  }

  static std::vector<NodeInfo> Cluster(int reliable, int transient) {
    std::vector<NodeInfo> nodes;
    NodeId id = 0;
    for (int i = 0; i < reliable; ++i) {
      nodes.push_back({id++, Tier::kReliable, 8, kInvalidAllocation});
    }
    for (int i = 0; i < transient; ++i) {
      nodes.push_back({id++, Tier::kTransient, 8, kInvalidAllocation});
    }
    return nodes;
  }

  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_F(ReliableChurnTest, EvictingReliableNodeMovesBackups) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(4, 12));
  ASSERT_EQ(runtime.stage(), Stage::kStage2);
  runtime.RunClocks(3);
  // Evict reliable node 0 (e.g. planned maintenance).
  runtime.Evict({0});
  for (const auto& [part, backup] : runtime.roles().backup) {
    EXPECT_NE(backup, 0) << "partition " << part << " still backed by the removed node";
  }
  EXPECT_EQ(runtime.lost_clocks_total(), 0);
  const double obj = runtime.ComputeObjective();
  runtime.RunClocks(4);
  EXPECT_LT(runtime.ComputeObjective(), obj);
}

TEST_F(ReliableChurnTest, ReliableFailureInStage2LosesNothing) {
  AgileMLConfig config = Config();
  config.backup_sync_every = 4;  // Any rollback would be visible.
  AgileMLRuntime runtime(app_.get(), config, Cluster(4, 12));
  ASSERT_EQ(runtime.stage(), Stage::kStage2);
  runtime.RunClocks(6);  // Clock 6: two clocks past the sync at 4.
  const int lost = runtime.Fail({1});  // A BackupPS host dies.
  // The authoritative state lives on the ActivePSs: nothing is lost.
  EXPECT_EQ(lost, 0);
  EXPECT_EQ(runtime.clock(), 6);
  for (const auto& [part, backup] : runtime.roles().backup) {
    EXPECT_NE(backup, 1);
  }
}

TEST_F(ReliableChurnTest, LastReliableNodeCannotLeave) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(1, 4));
  runtime.RunClocks(2);
  // Evicting all transient nodes must work (fall back to stage 1)...
  std::vector<NodeId> transient;
  for (const auto& node : runtime.nodes()) {
    if (!node.reliable()) {
      transient.push_back(node.id);
    }
  }
  runtime.Evict(transient);
  EXPECT_EQ(runtime.stage(), Stage::kStage1);
  // ...and the runtime keeps making progress on the lone reliable node.
  const double obj = runtime.ComputeObjective();
  runtime.RunClocks(3);
  EXPECT_LT(runtime.ComputeObjective(), obj);
}

TEST_F(ReliableChurnTest, ReliableAdditionRebalancesBackups) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(1, 12));
  runtime.RunClocks(2);
  runtime.AddNodes({{100, Tier::kReliable, 8, kInvalidAllocation},
                    {101, Tier::kReliable, 8, kInvalidAllocation}});
  for (int i = 0; i < 40 && runtime.PreparingCount() > 0; ++i) {
    runtime.RunClock();
  }
  // The new reliable nodes should now hold a share of the backups.
  std::set<NodeId> backup_owners;
  for (const auto& [part, backup] : runtime.roles().backup) {
    backup_owners.insert(backup);
  }
  EXPECT_GE(backup_owners.size(), 2u);
}

}  // namespace
}  // namespace proteus
