// Golden determinism test for the run analyzer: a same-seed chaos run
// must yield a byte-identical REPORT json — across repeated runs AND
// across worker thread counts — with 100% of wall-clock attributed to
// {compute, transport, rollback, recovery, idle} and 100% of dollars to
// {transient, reliable, recovery, wasted_evicted}.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/chaos/harness.h"
#include "src/obs/analyze/analyze.h"
#include "src/obs/json.h"
#include "src/obs/ledger.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace proteus {
namespace {

ChaosConfig GoldenConfig(std::uint64_t seed, bool parallel) {
  ChaosConfig config;
  config.agileml.num_partitions = 8;
  config.agileml.data_blocks = 64;
  config.agileml.parallel_execution = parallel;
  config.agileml.backup_sync_every = 3;
  config.agileml.seed = seed;
  config.schedule.horizon = 20;
  config.schedule.events = 8;
  config.schedule.zones = 3;
  config.seed = seed;
  return config;
}

// One fully instrumented chaos run through the analyzer; returns the
// report bytes.
std::string ReportOneRun(MLApp* app, std::uint64_t seed, bool parallel = false) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::EventLedger ledger;
  ChaosHarness harness(app, GoldenConfig(seed, parallel));
  harness.SetObservability(&tracer, &metrics);
  harness.SetLedger(&ledger, nullptr);
  const ChaosRunResult result = harness.Run();
  EXPECT_TRUE(result.ok()) << harness.auditor().Report();

  const obs::analyze::AnalyzeResult analysis = obs::analyze::AnalyzeRun(
      ledger.ToJsonl(), tracer.ToChromeJson(), metrics.Snapshot().ToJson());
  EXPECT_TRUE(analysis.error.empty()) << analysis.error;
  EXPECT_EQ(analysis.unattributed_clocks, 0);
  EXPECT_EQ(analysis.ledger_gaps, 0);
  return analysis.report_json;
}

TEST(AnalyzeGolden, SameSeedReportsAreByteIdenticalAcrossRunsAndThreads) {
  RatingsConfig rc;
  rc.users = 200;
  rc.items = 100;
  rc.ratings = 6000;
  RatingsDataset data = GenerateRatings(rc);
  MfConfig mc;
  mc.rank = 4;
  MatrixFactorizationApp app(&data, mc);

  const std::string first = ReportOneRun(&app, /*seed=*/7);
  const std::string second = ReportOneRun(&app, /*seed=*/7);
  EXPECT_EQ(first, second);

  // Thread-count invariance: the parallel execution engine changes how
  // work is scheduled on the host, but every analyzer input derives
  // from the virtual-time model, so the report must not move a byte.
  const std::string parallel = ReportOneRun(&app, /*seed=*/7, /*parallel=*/true);
  EXPECT_EQ(first, parallel);

  // A different seed must change the report (the equality above is not
  // vacuous).
  const std::string other = ReportOneRun(&app, /*seed=*/8);
  EXPECT_NE(first, other);
}

TEST(AnalyzeGolden, ReportAttributesAllTimeAndAllDollars) {
  RatingsConfig rc;
  rc.users = 200;
  rc.items = 100;
  rc.ratings = 6000;
  RatingsDataset data = GenerateRatings(rc);
  MfConfig mc;
  mc.rank = 4;
  MatrixFactorizationApp app(&data, mc);

  const std::string report = ReportOneRun(&app, /*seed=*/11);
  obs::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(report, &parsed, &error)) << error;
  EXPECT_EQ(parsed.StringField("schema"), "proteus.report.v1");

  // 100% of wall-clock in exactly the five buckets.
  const obs::JsonValue* wall = parsed.Find("wall_time");
  ASSERT_NE(wall, nullptr);
  const double total = wall->NumberField("total");
  ASSERT_GT(total, 0.0);
  const double sum = wall->NumberField("compute") + wall->NumberField("transport") +
                     wall->NumberField("rollback") + wall->NumberField("recovery") +
                     wall->NumberField("idle");
  EXPECT_NEAR(sum, total, 1e-6 * total);
  const obs::JsonValue* wall_shares = parsed.Find("wall_time_shares");
  ASSERT_NE(wall_shares, nullptr);
  const double share_sum =
      wall_shares->NumberField("compute") + wall_shares->NumberField("transport") +
      wall_shares->NumberField("rollback") + wall_shares->NumberField("recovery") +
      wall_shares->NumberField("idle");
  EXPECT_NEAR(share_sum, 1.0, 1e-9);

  // 100% of dollars in exactly the four buckets (paper Fig 8/9 split).
  const obs::JsonValue* cost = parsed.Find("cost");
  ASSERT_NE(cost, nullptr);
  const double cost_total = cost->NumberField("total");
  ASSERT_GT(cost_total, 0.0);
  EXPECT_NEAR(cost->NumberField("transient") + cost->NumberField("reliable") +
                  cost->NumberField("recovery") + cost->NumberField("wasted_evicted"),
              cost_total, 1e-6 * cost_total);
  const obs::JsonValue* cost_shares = parsed.Find("cost_shares");
  ASSERT_NE(cost_shares, nullptr);
  EXPECT_NEAR(cost_shares->NumberField("transient") +
                  cost_shares->NumberField("reliable") +
                  cost_shares->NumberField("recovery") +
                  cost_shares->NumberField("wasted_evicted"),
              1.0, 1e-9);

  // Structural sections the CI gate and post-mortems read.
  const obs::JsonValue* clocks = parsed.Find("clocks");
  ASSERT_NE(clocks, nullptr);
  EXPECT_GT(clocks->NumberField("executed"), 0.0);
  EXPECT_NE(parsed.Find("stragglers"), nullptr);
  EXPECT_NE(parsed.Find("critical_path"), nullptr);
  EXPECT_NE(parsed.Find("recoveries"), nullptr);
  EXPECT_NE(parsed.Find("rollbacks"), nullptr);
  const obs::JsonValue* checks = parsed.Find("checks");
  ASSERT_NE(checks, nullptr);
  EXPECT_EQ(checks->NumberField("unattributed_clocks"), 0.0);
  EXPECT_EQ(checks->NumberField("ledger_gaps"), 0.0);
}

}  // namespace
}  // namespace proteus
