// Checkpoint-integrity property tests (PR 6 satellite): no corrupted
// frame is ever accepted, and a scrub finds 100% of injected damage.
//
//   * Every truncated prefix of a chunk frame is rejected cleanly.
//   * Every single-bit flip anywhere in a chunk frame is rejected (the
//     CRC32 catches all single-bit errors by construction).
//   * Randomized corruption campaigns against a populated store: each
//     injected fault is either found by Scrub() by name or the object it
//     hit was a manifest whose epoch ReadNewestValid() now skips — and
//     the bytes returned by ReadNewestValid() always equal bytes that
//     were legitimately committed.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/ps/checkpoint_store.h"

namespace proteus {
namespace {

std::vector<std::vector<std::uint8_t>> MakeBlobs(int shards, std::uint8_t salt) {
  std::vector<std::vector<std::uint8_t>> blobs;
  for (int s = 0; s < shards; ++s) {
    std::vector<std::uint8_t> blob;
    for (int i = 0; i < 48 + 16 * s; ++i) {
      blob.push_back(static_cast<std::uint8_t>(salt * 13 + s * 7 + i));
    }
    blobs.push_back(std::move(blob));
  }
  return blobs;
}

// One committed chunk object, fetched back off the device.
std::vector<std::uint8_t> OneChunkFrame() {
  MemDurableDevice device;
  CheckpointStore store(&device);
  EXPECT_TRUE(store.WriteBlobs(MakeBlobs(1, 5), {1}, 3).committed);
  for (const std::string& name : device.List()) {
    if (name.rfind("ck/obj/", 0) == 0) {
      return *device.Read(name);
    }
  }
  ADD_FAILURE() << "no chunk object written";
  return {};
}

TEST(CheckpointIntegrityProperty, EveryTruncatedPrefixRejected) {
  const std::vector<std::uint8_t> frame = OneChunkFrame();
  ASSERT_FALSE(frame.empty());
  ASSERT_TRUE(ParseChunkFrame(frame).has_value());
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(
        ParseChunkFrame(std::span<const std::uint8_t>(frame.data(), len)).has_value())
        << "prefix of " << len << " bytes parsed as a full frame";
  }
}

TEST(CheckpointIntegrityProperty, EverySingleBitFlipRejected) {
  const std::vector<std::uint8_t> frame = OneChunkFrame();
  ASSERT_FALSE(frame.empty());
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> flipped = frame;
      flipped[byte] = static_cast<std::uint8_t>(flipped[byte] ^ (1u << bit));
      EXPECT_FALSE(ParseChunkFrame(flipped).has_value())
          << "bit " << bit << " of byte " << byte << " accepted";
    }
  }
}

TEST(CheckpointIntegrityProperty, TrailingGarbageRejected) {
  std::vector<std::uint8_t> frame = OneChunkFrame();
  ASSERT_FALSE(frame.empty());
  frame.push_back(0x00);
  EXPECT_FALSE(ParseChunkFrame(frame).has_value());
}

TEST(CheckpointIntegrityProperty, ScrubFindsEveryInjectedCorruption) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    MemDurableDevice device;
    CheckpointStore store(&device, CheckpointStoreConfig{6});
    // Remember every committed state so loads can be checked byte-wise.
    std::map<std::uint64_t, std::vector<std::vector<std::uint8_t>>> committed;
    for (int e = 0; e < 5; ++e) {
      const auto blobs = MakeBlobs(3, static_cast<std::uint8_t>(seed * 16 + e));
      const std::uint64_t v = static_cast<std::uint64_t>(e + 1);
      const CheckpointWriteResult w =
          store.WriteBlobs(blobs, {v, v, v}, static_cast<Clock>(e * 2));
      ASSERT_TRUE(w.committed);
      committed[w.epoch] = blobs;
    }

    // Corrupt a few random objects: truncations and bit flips.
    Rng rng(seed);
    const std::vector<std::string> names = device.List();
    std::set<std::string> damaged;
    const int injections = 1 + static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < injections; ++i) {
      const std::string& name = names[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(names.size()) - 1))];
      if (damaged.count(name) > 0) {
        continue;
      }
      const auto bytes = device.Read(name);
      ASSERT_TRUE(bytes.has_value());
      if (rng.Bernoulli(0.5) && bytes->size() > 2) {
        ASSERT_TRUE(device.Truncate(name, bytes->size() / 2));
      } else {
        ASSERT_TRUE(device.FlipBit(
            name,
            static_cast<std::size_t>(
                rng.UniformInt(0, static_cast<std::int64_t>(bytes->size()) - 1)),
            static_cast<int>(rng.UniformInt(0, 7))));
      }
      damaged.insert(name);
    }

    // Scrub finds 100% of the injected damage, by name.
    const ScrubReport report = store.Scrub();
    const std::set<std::string> found(report.corrupt_objects.begin(),
                                      report.corrupt_objects.end());
    for (const std::string& name : damaged) {
      EXPECT_TRUE(found.count(name) > 0)
          << "seed " << seed << ": scrub missed injected corruption in " << name;
    }

    // Whatever ReadNewestValid returns must be bytes that were really
    // committed, never a damaged frame.
    const auto loaded = store.ReadNewestValid();
    if (loaded.has_value()) {
      const auto it = committed.find(loaded->epoch);
      ASSERT_TRUE(it != committed.end()) << "seed " << seed;
      EXPECT_EQ(loaded->shard_blobs, it->second)
          << "seed " << seed << ": loaded bytes differ from committed bytes";
    }
  }
}

TEST(CheckpointIntegrityProperty, CorruptNewestEpochFallsBackToOlder) {
  MemDurableDevice device;
  CheckpointStore store(&device, CheckpointStoreConfig{4});
  const auto old_blobs = MakeBlobs(2, 1);
  ASSERT_TRUE(store.WriteBlobs(old_blobs, {1, 1}, 2).committed);
  ASSERT_TRUE(store.WriteBlobs(MakeBlobs(2, 2), {2, 2}, 4).committed);

  // Damage the newest epoch's manifest: validation must skip it.
  std::string newest_manifest;
  for (const std::string& name : device.List()) {
    if (name.find("/MANIFEST") != std::string::npos && name > newest_manifest) {
      newest_manifest = name;
    }
  }
  ASSERT_FALSE(newest_manifest.empty());
  ASSERT_TRUE(device.FlipBit(newest_manifest, 6, 1));

  const auto loaded = store.ReadNewestValid();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 1u);
  EXPECT_EQ(loaded->shard_blobs, old_blobs);
  EXPECT_EQ(loaded->corrupt_epochs_skipped, 1);
}

}  // namespace
}  // namespace proteus
