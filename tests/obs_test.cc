#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace proteus {
namespace obs {
namespace {

TEST(MetricsRegistry, HandlesAreStableAndShared) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("rpc.messages.sent", {{"channel", "api"}});
  Counter* b = registry.GetCounter("rpc.messages.sent", {{"channel", "api"}});
  Counter* other = registry.GetCounter("rpc.messages.sent", {{"channel", "ctrl"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  a->Add(3);
  b->Increment();
  EXPECT_EQ(a->value(), 4u);
  EXPECT_EQ(other->value(), 0u);
  EXPECT_EQ(registry.series_count(), 2u);
}

TEST(MetricsRegistry, GaugeAndHistogram) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("agileml.backup_sync.lag_clocks");
  g->Set(3.0);
  EXPECT_EQ(g->value(), 3.0);
  Histogram* h = registry.GetHistogram("agileml.clock.duration_seconds", {1.0, 5.0});
  h->Observe(0.5);
  h->Observe(2.0);
  h->Observe(100.0);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 102.5);
  const std::vector<std::uint64_t> buckets = h->bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);  // Two bounds plus +inf overflow.
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
}

TEST(MetricsRegistry, ConcurrentUpdatesAreLossless) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c->value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsSnapshot, FindValueAndDiff) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Add(10);
  registry.GetGauge("a.level")->Set(2.5);
  const MetricsSnapshot before = registry.Snapshot();
  registry.GetCounter("a.count")->Add(5);
  registry.GetGauge("a.level")->Set(7.5);
  const MetricsSnapshot after = registry.Snapshot();

  EXPECT_EQ(before.Value("a.count"), 10.0);
  EXPECT_EQ(after.Value("a.count"), 15.0);
  EXPECT_EQ(after.Value("missing"), 0.0);
  EXPECT_EQ(after.Find("missing"), nullptr);

  const MetricsSnapshot diff = MetricsSnapshot::Diff(before, after);
  EXPECT_EQ(diff.Value("a.count"), 5.0);   // Counters subtract.
  EXPECT_EQ(diff.Value("a.level"), 7.5);   // Gauges take the after value.
}

TEST(MetricsSnapshot, TextAndCsvExport) {
  MetricsRegistry registry;
  registry.GetCounter("rpc.bytes.sent", {{"channel", "api"}, {"type", "read_param"}})->Add(64);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const std::string text = snapshot.ToText();
  EXPECT_NE(text.find("rpc.bytes.sent{channel=api,type=read_param} counter 64"),
            std::string::npos);
  const std::string csv = snapshot.ToCsv();
  EXPECT_NE(csv.find("name,labels,kind,value,count"), std::string::npos);
  EXPECT_NE(csv.find("rpc.bytes.sent"), std::string::npos);
}

TEST(Tracer, RecordsSpansAndInstants) {
  Tracer tracer;
  tracer.SpanAt(1.0, 0.5, "clock", "agileml", {{"clock", std::int64_t{7}}});
  tracer.InstantAt(1.25, "nodes.evict", "agileml", {{"count", std::int64_t{4}}});
  ASSERT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.events()[0].phase, TraceEvent::Phase::kSpan);
  EXPECT_EQ(tracer.events()[1].phase, TraceEvent::Phase::kInstant);
  EXPECT_DOUBLE_EQ(tracer.events()[0].dur, 0.5);
}

TEST(Tracer, ChromeJsonShapeAndDeterminism) {
  const auto record = [](Tracer& tracer) {
    tracer.SpanAt(0.0, 2.0, "clock", "agileml",
                  {{"stage", "stage3"}, {"bytes", std::int64_t{1024}}, {"stall", 0.25}});
    tracer.InstantAt(1.0, "fault.transient-wipeout", "chaos", {{"magnitude", std::int64_t{3}}});
    tracer.SpanAt(1.0, 0.25, "recovery", "chaos", {{"class", "transient-wipeout"}});
  };
  Tracer a;
  Tracer b;
  record(a);
  record(b);
  const std::string json = a.ToChromeJson();
  EXPECT_EQ(json, b.ToChromeJson());  // Same events => byte-identical.
  // Spans are complete events with microsecond timestamps; instants are
  // ph "i"; tracks get thread_name metadata.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2000000"), std::string::npos);
  EXPECT_NE(json.find("fault.transient-wipeout"), std::string::npos);
}

TEST(Tracer, SpanTotalFiltersByNameAndArg) {
  Tracer tracer;
  tracer.SpanAt(0.0, 1.0, "recovery", "chaos", {{"class", "zone-mass-eviction"}});
  tracer.SpanAt(2.0, 0.5, "recovery", "chaos", {{"class", "transient-wipeout"}});
  tracer.SpanAt(3.0, 4.0, "clock", "agileml");
  EXPECT_DOUBLE_EQ(tracer.SpanTotal("recovery"), 1.5);
  EXPECT_DOUBLE_EQ(tracer.SpanTotal("recovery", "class", "transient-wipeout"), 0.5);
  EXPECT_DOUBLE_EQ(tracer.SpanTotal("recovery", "class", "absent"), 0.0);
}

TEST(Tracer, BoundClockDrivesInstant) {
  double sim_now = 42.0;
  Tracer tracer([&sim_now] { return sim_now; });
  tracer.Instant("decision", "bidbrain");
  sim_now = 43.5;
  tracer.Instant("decision", "bidbrain");
  ASSERT_EQ(tracer.size(), 2u);
  EXPECT_DOUBLE_EQ(tracer.events()[0].ts, 42.0);
  EXPECT_DOUBLE_EQ(tracer.events()[1].ts, 43.5);
}

}  // namespace
}  // namespace obs
}  // namespace proteus
