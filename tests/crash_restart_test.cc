// Crash/restart driver tests: for every depth of the escalation ladder
// the post-recovery model digest must be byte-identical to the correct
// pre-crash reference, across many seeds, with zero auditor violations
// — and no injected corrupted frame is ever loaded.
#include <gtest/gtest.h>

#include <memory>

#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/chaos/crash_restart.h"

namespace proteus {
namespace {

class CrashRestartTest : public ::testing::Test {
 protected:
  CrashRestartTest() {
    RatingsConfig rc;
    rc.users = 200;
    rc.items = 100;
    rc.ratings = 5000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 4;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  CrashRestartConfig Config(CrashScenario scenario, std::uint64_t seed) const {
    CrashRestartConfig config;
    config.agileml.num_partitions = 8;
    config.agileml.data_blocks = 64;
    config.agileml.parallel_execution = false;
    config.agileml.backup_sync_every = 3;
    config.agileml.seed = seed;
    config.scenario = scenario;
    config.horizon = 20;
    config.checkpoint_every = 4;
    config.crash_at = 13;
    config.seed = seed;
    return config;
  }

  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_F(CrashRestartTest, BackupPromotionRestoresLastSyncBytes) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const CrashRestartResult result =
        RunCrashRestart(app_.get(), Config(CrashScenario::kBackupPromotion, seed));
    EXPECT_EQ(result.depth, RecoveryDepth::kBackupPromotion) << "seed " << seed;
    EXPECT_TRUE(result.digest_match)
        << "seed " << seed << ": promoted backup differs from last sync bytes";
    EXPECT_TRUE(result.violations.empty()) << "seed " << seed;
    // The crash landed one clock past the sync (crash_at=13, sync every
    // 3 clocks), so exactly that work is re-done.
    EXPECT_EQ(result.lost_clocks, 1) << "seed " << seed;
    EXPECT_EQ(result.restored_clock, 12) << "seed " << seed;
  }
}

TEST_F(CrashRestartTest, ActiveRebuildLeavesStateUntouched) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const CrashRestartResult result =
        RunCrashRestart(app_.get(), Config(CrashScenario::kActiveRebuild, seed));
    EXPECT_EQ(result.depth, RecoveryDepth::kActiveRebuild) << "seed " << seed;
    EXPECT_TRUE(result.digest_match)
        << "seed " << seed << ": active state changed during backup rebuild";
    EXPECT_EQ(result.lost_clocks, 0) << "seed " << seed;
    EXPECT_TRUE(result.violations.empty()) << "seed " << seed;
  }
}

TEST_F(CrashRestartTest, DurableRestoreSurvivesFullRestart) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const CrashRestartResult result =
        RunCrashRestart(app_.get(), Config(CrashScenario::kDurableRestore, seed));
    EXPECT_EQ(result.depth, RecoveryDepth::kDurableRestore) << "seed " << seed;
    EXPECT_TRUE(result.digest_match)
        << "seed " << seed << ": restarted state differs from committed epoch";
    EXPECT_EQ(result.corrupt_epochs_skipped, 0) << "seed " << seed;
    EXPECT_EQ(result.lost_clocks, 0) << "seed " << seed;  // Fresh-runtime restore.
    EXPECT_TRUE(result.violations.empty()) << "seed " << seed;
    // crash_at=13 with cadence 4: the newest epoch holds clock 12.
    EXPECT_EQ(result.restored_clock, 12) << "seed " << seed;
  }
}

TEST_F(CrashRestartTest, DurableRestoreSkipsExactlyTheCorruptedEpochs) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    CrashRestartConfig config = Config(CrashScenario::kDurableRestore, seed);
    config.corrupt_newest_epochs = 2;
    const CrashRestartResult result = RunCrashRestart(app_.get(), config);
    EXPECT_EQ(result.corrupt_frames_injected, 2) << "seed " << seed;
    EXPECT_EQ(result.corrupt_epochs_skipped, 2) << "seed " << seed;
    // The scrub finds every injected corruption.
    EXPECT_EQ(result.scrub_corruptions_found, 2u) << "seed " << seed;
    // A damaged frame is never loaded: the restore still matches a
    // committed epoch bit for bit — just an older one (clock 12 and 8
    // were corrupted; clock 4 survives).
    EXPECT_TRUE(result.digest_match) << "seed " << seed;
    EXPECT_EQ(result.restored_clock, 4) << "seed " << seed;
    EXPECT_TRUE(result.violations.empty()) << "seed " << seed;
  }
}

TEST_F(CrashRestartTest, SameSeedRunsAreDeterministic) {
  for (const CrashScenario scenario :
       {CrashScenario::kBackupPromotion, CrashScenario::kActiveRebuild,
        CrashScenario::kDurableRestore}) {
    const CrashRestartResult a = RunCrashRestart(app_.get(), Config(scenario, 42));
    const CrashRestartResult b = RunCrashRestart(app_.get(), Config(scenario, 42));
    EXPECT_EQ(a.post_recovery_digest, b.post_recovery_digest)
        << CrashScenarioName(scenario);
    EXPECT_EQ(a.expected_digest, b.expected_digest) << CrashScenarioName(scenario);
    EXPECT_EQ(a.final_clock, b.final_clock) << CrashScenarioName(scenario);
  }
}

}  // namespace
}  // namespace proteus
