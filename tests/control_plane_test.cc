// Control-plane cost claims (§3.2/§3.3): stage transitions and
// elasticity events must require only the small, bounded message counts
// the paper describes.
#include <gtest/gtest.h>

#include <memory>

#include "src/agileml/control_plane.h"
#include "src/agileml/runtime.h"
#include "src/apps/datasets.h"
#include "src/apps/mf.h"

namespace proteus {
namespace {

TEST(ControlPlaneLog, RecordsAndSummarizes) {
  ControlPlaneLog log;
  EXPECT_EQ(log.Total(), 0);
  EXPECT_EQ(log.Summary(), "none");
  log.Record(ControlMessage::kEvictionSignal, 3);
  log.Record(ControlMessage::kStageSwitch);
  EXPECT_EQ(log.Count(ControlMessage::kEvictionSignal), 3);
  EXPECT_EQ(log.Total(), 4);
  EXPECT_NE(log.Summary().find("eviction-signal=3"), std::string::npos);
  log.Reset();
  EXPECT_EQ(log.Total(), 0);
}

TEST(ControlPlaneLog, SummaryGoldenFormat) {
  // Chaos-run digests hash the exact Summary() string, so its format is
  // load-bearing: enum order, "name=count" pairs, ", " separators, and
  // zero-count entries omitted.
  ControlPlaneLog log;
  EXPECT_EQ(log.Summary(), "none");
  log.Record(ControlMessage::kRollbackNotice, 8);
  log.Record(ControlMessage::kDataAssignment, 3);
  log.Record(ControlMessage::kEvictionSignal);
  log.Record(ControlMessage::kStageSwitch, 2);
  EXPECT_EQ(log.Summary(),
            "data-assignment=3, eviction-signal=1, stage-switch=2, rollback-notice=8");
  log.Record(ControlMessage::kPartitionOwnership, 4);
  log.Record(ControlMessage::kEndOfLifeFlag, 5);
  log.Record(ControlMessage::kReadySignal, 6);
  EXPECT_EQ(log.Summary(),
            "data-assignment=3, partition-ownership=4, eviction-signal=1, "
            "end-of-life-flag=5, ready-signal=6, stage-switch=2, rollback-notice=8");
  log.Record(ControlMessage::kHeartbeat, 12);
  log.Record(ControlMessage::kSuspicionNotice);
  EXPECT_EQ(log.Summary(),
            "data-assignment=3, partition-ownership=4, eviction-signal=1, "
            "end-of-life-flag=5, ready-signal=6, stage-switch=2, rollback-notice=8, "
            "heartbeat=12, suspicion-notice=1");
  log.Reset();
  EXPECT_EQ(log.Summary(), "none");
}

TEST(ControlPlaneLog, NotificationTotalExcludesHeartbeats) {
  // Heartbeats are periodic background traffic, not elasticity
  // notifications; the paper's "bounded message count" claims are about
  // the latter, so NotificationTotal() must net heartbeats out.
  ControlPlaneLog log;
  EXPECT_EQ(log.NotificationTotal(), 0);
  log.Record(ControlMessage::kHeartbeat, 50);
  log.Record(ControlMessage::kStageSwitch);
  log.Record(ControlMessage::kSuspicionNotice, 2);
  EXPECT_EQ(log.Total(), 53);
  EXPECT_EQ(log.NotificationTotal(), 3);  // Suspicion notices DO count.
  log.Reset();
  EXPECT_EQ(log.NotificationTotal(), 0);
}

class ControlPlaneRuntimeTest : public ::testing::Test {
 protected:
  ControlPlaneRuntimeTest() {
    RatingsConfig rc;
    rc.users = 400;
    rc.items = 150;
    rc.ratings = 15000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 8;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  AgileMLConfig Config() const {
    AgileMLConfig config;
    config.num_partitions = 8;
    config.data_blocks = 64;
    config.parallel_execution = false;
    return config;
  }

  static std::vector<NodeInfo> Cluster(int reliable, int transient) {
    std::vector<NodeInfo> nodes;
    NodeId id = 0;
    for (int i = 0; i < reliable; ++i) {
      nodes.push_back({id++, Tier::kReliable, 8, kInvalidAllocation});
    }
    for (int i = 0; i < transient; ++i) {
      nodes.push_back({id++, Tier::kTransient, 8, kInvalidAllocation});
    }
    return nodes;
  }

  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_F(ControlPlaneRuntimeTest, SteadyStateSendsNoControlMessages) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(2, 6));
  runtime.ResetControlLog();
  runtime.RunClocks(5);
  EXPECT_EQ(runtime.control_log().Total(), 0)
      << "got: " << runtime.control_log().Summary();
}

TEST_F(ControlPlaneRuntimeTest, Stage2To3TransitionSendsBoundedMessages) {
  // §3.2: the stage 2 -> 3 transition "incurs zero run-time overhead, as
  // it involves just a single worker notification message". Verify the
  // message counts on a natural 2 -> 3 transition driven by growth.
  MatrixFactorizationApp app2(&data_, MfConfig{.rank = 8});
  AgileMLRuntime natural(&app2, Config(), Cluster(1, 12));  // Stage 2 (12:1).
  natural.RunClocks(2);
  natural.ResetControlLog();
  std::vector<NodeInfo> extra;
  for (NodeId id = 100; id < 108; ++id) {
    extra.push_back({id, Tier::kTransient, 8, kInvalidAllocation});
  }
  natural.AddNodes(extra);  // Pushes ratio to 20:1 -> stage 3.
  while (natural.PreparingCount() > 0) {
    natural.RunClock();
  }
  EXPECT_EQ(natural.stage(), Stage::kStage3);
  const ControlPlaneLog& log = natural.control_log();
  EXPECT_EQ(log.Count(ControlMessage::kStageSwitch), 1);
  // Data-assignment notices bounded by the worker count (each affected
  // worker gets one notification).
  EXPECT_LE(log.Count(ControlMessage::kDataAssignment),
            static_cast<std::int64_t>(natural.roles().worker_nodes.size()) + 1);
  // No rollback, no eviction signals on a planned scale-up.
  EXPECT_EQ(log.Count(ControlMessage::kRollbackNotice), 0);
  EXPECT_EQ(log.Count(ControlMessage::kEvictionSignal), 0);
}

TEST_F(ControlPlaneRuntimeTest, EvictionSignalsOnePerNodePlusEndOfLife) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(2, 6));  // Stage 2.
  runtime.RunClocks(3);
  runtime.ResetControlLog();
  std::vector<NodeId> transient;
  for (const auto& node : runtime.nodes()) {
    if (!node.reliable()) {
      transient.push_back(node.id);
    }
  }
  runtime.Evict(transient);  // Full eviction: 2/3 -> 1 transition.
  const ControlPlaneLog& log = runtime.control_log();
  EXPECT_EQ(log.Count(ControlMessage::kEvictionSignal),
            static_cast<std::int64_t>(transient.size()));
  // One end-of-life flag per partition pushed to its BackupPS.
  EXPECT_EQ(log.Count(ControlMessage::kEndOfLifeFlag), 8);
  EXPECT_EQ(log.Count(ControlMessage::kStageSwitch), 1);
}

TEST_F(ControlPlaneRuntimeTest, RollbackNotifiesEveryWorker) {
  AgileMLConfig config = Config();
  config.backup_sync_every = 4;
  AgileMLRuntime runtime(app_.get(), config, Cluster(2, 6));
  runtime.RunClocks(6);
  runtime.ResetControlLog();
  const NodeId active = *runtime.roles().active_ps_nodes.begin();
  const int lost = runtime.Fail({active});
  EXPECT_GT(lost, 0);
  EXPECT_EQ(runtime.control_log().Count(ControlMessage::kRollbackNotice), 8);
}

}  // namespace
}  // namespace proteus
