#include <gtest/gtest.h>

#include <map>

#include "src/agileml/data_assignment.h"
#include "src/common/rng.h"

namespace proteus {
namespace {

TEST(DataAssignment, BlockRangesPartitionTheInput) {
  DataAssignment da(1000, 7);
  std::int64_t covered = 0;
  for (int b = 0; b < 7; ++b) {
    const ItemRange r = da.BlockRange(b);
    covered += r.size();
    if (b > 0) {
      EXPECT_EQ(r.begin, da.BlockRange(b - 1).end);
    }
  }
  EXPECT_EQ(covered, 1000);
}

TEST(DataAssignment, InitialRebalanceIsBalanced) {
  DataAssignment da(1000, 16);
  da.Rebalance({1, 2, 3, 4});
  for (const NodeId n : {1, 2, 3, 4}) {
    EXPECT_EQ(da.BlocksOf(n).size(), 4u);
  }
  EXPECT_TRUE(da.OwnershipIsComplete());
}

TEST(DataAssignment, UnevenCountsDifferByAtMostOne) {
  DataAssignment da(1000, 16);
  da.Rebalance({1, 2, 3});
  std::size_t min = 100;
  std::size_t max = 0;
  for (const NodeId n : {1, 2, 3}) {
    min = std::min(min, da.BlocksOf(n).size());
    max = std::max(max, da.BlocksOf(n).size());
  }
  EXPECT_LE(max - min, 1u);
}

TEST(DataAssignment, GrowthMovesOnlyNecessaryBlocks) {
  DataAssignment da(1000, 16);
  da.Rebalance({1, 2});
  const auto before1 = da.BlocksOf(1);
  const auto moves = da.Rebalance({1, 2, 3, 4});
  // 8 blocks move to the two new nodes.
  EXPECT_EQ(moves.size(), 8u);
  for (const auto& m : moves) {
    EXPECT_TRUE(m.to == 3 || m.to == 4);
    EXPECT_TRUE(m.needs_load);  // New nodes had nothing loaded.
  }
  // Node 1 kept a subset of its old blocks.
  for (const int b : da.BlocksOf(1)) {
    EXPECT_NE(std::find(before1.begin(), before1.end(), b), before1.end());
  }
}

TEST(DataAssignment, PreviousOwnerTakesBackWithoutLoad) {
  DataAssignment da(1000, 16);
  da.Rebalance({1, 2});
  da.Rebalance({1, 2, 3, 4});  // 3 and 4 take blocks; 1 and 2 keep copies.
  da.DropNode(3);
  da.DropNode(4);
  const auto moves = da.Rebalance({1, 2});
  for (const auto& m : moves) {
    // Every returning block was previously owned (and still loaded) by
    // its recipient.
    EXPECT_FALSE(m.needs_load);
  }
  EXPECT_TRUE(da.OwnershipIsComplete());
}

TEST(DataAssignment, DropNodeOrphansItsBlocks) {
  DataAssignment da(1000, 8);
  da.Rebalance({1, 2});
  const auto orphans = da.DropNode(1);
  EXPECT_EQ(orphans.size(), 4u);
  EXPECT_FALSE(da.OwnershipIsComplete());
}

TEST(DataAssignment, RangesMergeAdjacentBlocks) {
  DataAssignment da(100, 4);
  da.Rebalance({1});
  const auto ranges = da.RangesOf(1);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].begin, 0);
  EXPECT_EQ(ranges[0].end, 100);
  EXPECT_EQ(da.ItemCountOf(1), 100);
}

// Property test: ownership stays complete and balanced through random
// add/drop sequences, and item counts always sum to the input size.
class DataAssignmentPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DataAssignmentPropertyTest, OwnershipConservedUnderChurn) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  DataAssignment da(10000, 64);
  std::vector<NodeId> members{0, 1};
  NodeId next_id = 2;
  da.Rebalance(members);
  for (int step = 0; step < 40; ++step) {
    if (members.size() <= 2 || rng.Bernoulli(0.55)) {
      members.push_back(next_id++);
    } else {
      const auto victim =
          static_cast<std::size_t>(rng.UniformInt(0, static_cast<int>(members.size()) - 1));
      da.DropNode(members[victim]);
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    da.Rebalance(members);
    ASSERT_TRUE(da.OwnershipIsComplete());
    std::int64_t total = 0;
    std::size_t min_blocks = 1000;
    std::size_t max_blocks = 0;
    for (const NodeId n : members) {
      total += da.ItemCountOf(n);
      min_blocks = std::min(min_blocks, da.BlocksOf(n).size());
      max_blocks = std::max(max_blocks, da.BlocksOf(n).size());
    }
    ASSERT_EQ(total, 10000);
    ASSERT_LE(max_blocks - min_blocks, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataAssignmentPropertyTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace proteus
