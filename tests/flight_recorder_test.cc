// FlightRecorder post-mortems: an auditor violation must auto-dump a
// ring snapshot whose causal chain walks from the violation event back
// through the clock that exposed it to the run's root — the acceptance
// bar for "a soak failure ships the evidence, not just a seed".
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/agileml/runtime.h"
#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/chaos/consistency_auditor.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"
#include "src/obs/ledger.h"

namespace proteus {
namespace {

class FlightRecorderTest : public ::testing::Test {
 protected:
  FlightRecorderTest() {
    RatingsConfig rc;
    rc.users = 200;
    rc.items = 100;
    rc.ratings = 6000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 4;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  AgileMLConfig Config() const {
    AgileMLConfig config;
    config.num_partitions = 8;
    config.data_blocks = 64;
    config.parallel_execution = false;
    return config;
  }

  static std::vector<NodeInfo> Cluster(int reliable, int transient) {
    std::vector<NodeInfo> nodes;
    NodeId id = 0;
    for (int i = 0; i < reliable; ++i) {
      nodes.push_back({id++, Tier::kReliable, 8, kInvalidAllocation});
    }
    for (int i = 0; i < transient; ++i) {
      nodes.push_back({id++, Tier::kTransient, 8, kInvalidAllocation});
    }
    return nodes;
  }

  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_F(FlightRecorderTest, AuditorViolationDumpsCausalChainToViolation) {
  obs::EventLedger ledger;
  obs::FlightRecorder recorder(&ledger, /*ring_capacity=*/64);
  const std::string dump_path =
      ::testing::TempDir() + "/flight_recorder_violation.json";
  recorder.SetDumpPath(dump_path);

  AgileMLRuntime runtime(app_.get(), Config(), Cluster(2, 2));
  runtime.SetLedger(&ledger);
  ConsistencyAuditor auditor(&runtime);
  auditor.SetLedger(&ledger, &recorder);

  const obs::EventId run_event = ledger.Open("run", "chaos", 0.0);
  runtime.RunClock();
  auditor.ObserveClock();
  ASSERT_TRUE(auditor.ok()) << auditor.Report();

  // Observing the same clock boundary twice means progress advanced by
  // zero since the last observation — the progress-accounting invariant
  // (no silent loss, no double count) must fire and auto-dump.
  auditor.ObserveClock();
  ASSERT_FALSE(auditor.ok());
  ledger.Close(run_event, runtime.total_time());

  std::string dump_json;
  ASSERT_TRUE(obs::ReadFileToString(dump_path, &dump_json));
  obs::JsonValue dump;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(dump_json, &dump, &error)) << error;

  EXPECT_NE(dump.StringField("reason").find("progress-accounting"),
            std::string::npos);

  // The chain must start at the audit.violation event and reach the
  // clock that exposed it (its causal parent), ending at a root.
  const obs::JsonValue* chain = dump.Find("chain");
  ASSERT_NE(chain, nullptr);
  ASSERT_GE(chain->items.size(), 2u);
  EXPECT_EQ(chain->items.front().StringField("kind"), "audit.violation");
  bool chain_has_clock = false;
  for (const auto& event : chain->items) {
    chain_has_clock |= event.StringField("kind") == "clock";
  }
  EXPECT_TRUE(chain_has_clock);
  EXPECT_EQ(chain->items.back().IntField("parent"), 0);
  EXPECT_EQ(static_cast<obs::EventId>(dump.IntField("anchor")),
            static_cast<obs::EventId>(chain->items.front().IntField("id")));

  // Component rings carry the recent window, including the violating
  // component's own events.
  const obs::JsonValue* components = dump.Find("components");
  ASSERT_NE(components, nullptr);
  const obs::JsonValue* chaos_ring = components->Find("chaos");
  ASSERT_NE(chaos_ring, nullptr);
  bool ring_has_violation = false;
  for (const auto& event : chaos_ring->items) {
    ring_has_violation |= event.StringField("kind") == "audit.violation";
  }
  EXPECT_TRUE(ring_has_violation);
  const obs::JsonValue* agileml_ring = components->Find("agileml");
  ASSERT_NE(agileml_ring, nullptr);
  EXPECT_FALSE(agileml_ring->items.empty());

  // Only the first violation dumps: the crime scene stays pristine.
  std::remove(dump_path.c_str());
  auditor.ObserveClock();
  std::string second_dump;
  EXPECT_FALSE(obs::ReadFileToString(dump_path, &second_dump));
}

TEST_F(FlightRecorderTest, RingEvictsOldestAndDumpToStringIsSelfContained) {
  obs::EventLedger ledger;
  obs::FlightRecorder recorder(&ledger, /*ring_capacity=*/4);
  const obs::EventId root = ledger.Open("run", "test", 0.0);
  for (int i = 0; i < 10; ++i) {
    ledger.Record("tick", "test", static_cast<double>(i),
                  {{"i", static_cast<std::int64_t>(i)}});
  }
  ledger.Close(root, 10.0);

  const std::string dump = recorder.DumpToString("manual", ledger.size());
  obs::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(dump, &parsed, &error)) << error;
  const obs::JsonValue* components = parsed.Find("components");
  ASSERT_NE(components, nullptr);
  const obs::JsonValue* ring = components->Find("test");
  ASSERT_NE(ring, nullptr);
  // Capacity 4: only the newest four "test" events survive, oldest first.
  ASSERT_EQ(ring->items.size(), 4u);
  for (std::size_t i = 1; i < ring->items.size(); ++i) {
    EXPECT_LT(ring->items[i - 1].IntField("id"), ring->items[i].IntField("id"));
  }
  EXPECT_EQ(ring->items.back().IntField("id"),
            static_cast<std::int64_t>(ledger.size()));

  // The chain for the last event reaches the root even though the root
  // was evicted from every ring long ago (chains walk the ledger).
  const obs::JsonValue* chain = parsed.Find("chain");
  ASSERT_NE(chain, nullptr);
  ASSERT_EQ(chain->items.size(), 2u);
  EXPECT_EQ(chain->items.back().StringField("kind"), "run");
}

}  // namespace
}  // namespace proteus
