#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "src/common/csv.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/common/types.h"

namespace proteus {
namespace {

TEST(Types, FormatDuration) {
  EXPECT_EQ(FormatDuration(5.0), "5.00s");
  EXPECT_EQ(FormatDuration(65.0), "1m05.0s");
  EXPECT_EQ(FormatDuration(3600.0 + 120 + 3), "1h02m03s");
  EXPECT_EQ(FormatDuration(-5.0), "-5.00s");
}

TEST(Types, FormatMoney) {
  EXPECT_EQ(FormatMoney(1.5), "$1.5000");
  EXPECT_EQ(FormatMoney(-0.25), "-$0.2500");
}

TEST(Rng, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(2);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // All values reachable.
}

TEST(Rng, DeterministicBySeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Rng, ZipfRangeAndSkew) {
  Rng rng(3);
  const std::int64_t n = 1000;
  std::vector<int> counts(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < 50000; ++i) {
    const auto v = rng.Zipf(n, 1.1);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, n);
    ++counts[static_cast<std::size_t>(v)];
  }
  // Head must dominate tail under a Zipf law.
  EXPECT_GT(counts[0], counts[100] * 5);
  EXPECT_GT(counts[0], 0);
}

TEST(Rng, ZipfDegenerate) {
  Rng rng(4);
  EXPECT_EQ(rng.Zipf(1, 1.0), 0);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Categorical({1.0, 9.0}) == 1) {
      ++hits;
    }
  }
  EXPECT_NEAR(hits / 10000.0, 0.9, 0.03);
}

TEST(Rng, CategoricalZeroWeightNeverPicked) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(rng.Categorical({1.0, 0.0, 1.0}), 1u);
  }
}

TEST(SampleStats, BasicMoments) {
  SampleStats s;
  s.AddAll({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
  EXPECT_DOUBLE_EQ(s.Median(), 2.5);
  EXPECT_NEAR(s.StdDev(), std::sqrt(1.25), 1e-12);
}

TEST(SampleStats, PercentileInterpolation) {
  SampleStats s;
  s.AddAll({0.0, 10.0});
  EXPECT_DOUBLE_EQ(s.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 10.0);
}

TEST(SampleStats, SingleSample) {
  SampleStats s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(37.0), 42.0);
  EXPECT_DOUBLE_EQ(s.Median(), 42.0);
}

TEST(SampleStats, EmptyOrderStatisticsReturnZero) {
  // Regression: benches print rows for schemes that completed no jobs;
  // the order statistics must return 0.0 rather than abort.
  const SampleStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Min(), 0.0);
  EXPECT_EQ(s.Max(), 0.0);
  EXPECT_EQ(s.Median(), 0.0);
  EXPECT_EQ(s.Percentile(0.0), 0.0);
  EXPECT_EQ(s.Percentile(99.0), 0.0);
}

TEST(Logging, ParseLogLevel) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("Info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("fatal"), LogLevel::kFatal);
  EXPECT_EQ(ParseLogLevel("2"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel(nullptr), std::nullopt);
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
}

TEST(RunningStats, MatchesSampleStats) {
  Rng rng(8);
  SampleStats sample;
  RunningStats running;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Normal(5.0, 2.0);
    sample.Add(v);
    running.Add(v);
  }
  EXPECT_NEAR(running.Mean(), sample.Mean(), 1e-9);
  EXPECT_NEAR(running.Variance(), sample.Variance(), 1e-9);
  EXPECT_DOUBLE_EQ(running.Min(), sample.Min());
  EXPECT_DOUBLE_EQ(running.Max(), sample.Max());
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "2.5"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| long-name"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Csv, RoundTrip) {
  CsvWriter writer({"a", "b"});
  writer.AddRow({"1", "x"});
  writer.AddRow({"2", "y"});
  const CsvTable table = ParseCsv(writer.Render());
  ASSERT_EQ(table.headers.size(), 2u);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][1], "y");
}

TEST(Csv, SkipsCommentsAndBlanks) {
  const CsvTable table = ParseCsv("# comment\n\na,b\n1,2\n");
  EXPECT_EQ(table.headers.size(), 2u);
  ASSERT_EQ(table.rows.size(), 1u);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

}  // namespace
}  // namespace proteus
