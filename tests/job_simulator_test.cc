#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/proteus/job_simulator.h"

namespace proteus {
namespace {

class JobSimulatorTest : public ::testing::Test {
 protected:
  JobSimulatorTest() : catalog_(InstanceTypeCatalog::Default()) {
    SyntheticTraceConfig config;
    config.spikes_per_day = 3.0;
    Rng rng(41);
    traces_ =
        TraceStore::GenerateSynthetic(catalog_, {"z0", "z1"}, 40 * kDay, config, rng);
    estimator_.Train(traces_, 0.0, 15 * kDay);
    sim_ = std::make_unique<JobSimulator>(&catalog_, &traces_, &estimator_);
    job_ = JobSpec::ForReferenceDuration(catalog_, "c4.2xlarge", 64, 2 * kHour, 0.95);
  }

  SchemeConfig Config() const {
    SchemeConfig config;
    config.bidbrain.max_spot_instances = 160;
    return config;
  }

  InstanceTypeCatalog catalog_;
  TraceStore traces_;
  EvictionEstimator estimator_;
  std::unique_ptr<JobSimulator> sim_;
  JobSpec job_;
};

TEST_F(JobSimulatorTest, OnDemandOnlyRunsExactlyReferenceDuration) {
  const JobResult result = sim_->Run(SchemeKind::kOnDemandOnly, job_, Config(), 16 * kDay);
  ASSERT_TRUE(result.completed);
  EXPECT_NEAR(result.runtime, 2 * kHour, 2.0);
  // 64 machines x 2h x $0.419, final hour fully used.
  EXPECT_NEAR(result.bill.cost, 64 * 2 * 0.419, 0.5);
  EXPECT_EQ(result.evictions, 0);
  EXPECT_NEAR(result.bill.on_demand_hours, 128.0, 0.1);
}

TEST_F(JobSimulatorTest, StandardCheckpointCompletesAndIsCheaperThanOnDemand) {
  const JobResult od = sim_->Run(SchemeKind::kOnDemandOnly, job_, Config(), 16 * kDay);
  const JobResult ck =
      sim_->Run(SchemeKind::kStandardCheckpoint, job_, Config(), 16 * kDay);
  ASSERT_TRUE(ck.completed);
  EXPECT_LT(ck.bill.cost, od.bill.cost);
  EXPECT_GT(ck.runtime, od.runtime);  // Checkpoint overhead slows it down.
}

TEST_F(JobSimulatorTest, StandardAgileMlBeatsCheckpointOnCost) {
  SampleStats ck_cost;
  SampleStats ag_cost;
  for (int i = 0; i < 12; ++i) {
    const SimTime start = (16 + i * 2) * kDay + i * 3 * kHour;
    ck_cost.Add(sim_->Run(SchemeKind::kStandardCheckpoint, job_, Config(), start).bill.cost);
    ag_cost.Add(sim_->Run(SchemeKind::kStandardAgileML, job_, Config(), start).bill.cost);
  }
  EXPECT_LT(ag_cost.Mean(), ck_cost.Mean());
}

TEST_F(JobSimulatorTest, ProteusCompletesAndBeatsOnDemand) {
  const JobResult od = sim_->Run(SchemeKind::kOnDemandOnly, job_, Config(), 16 * kDay);
  const JobResult pr = sim_->Run(SchemeKind::kProteus, job_, Config(), 16 * kDay);
  ASSERT_TRUE(pr.completed);
  EXPECT_LT(pr.bill.cost, od.bill.cost * 0.6);
  EXPECT_GT(pr.acquisitions, 0);
}

TEST_F(JobSimulatorTest, ProteusUsesOnDemandReliableTier) {
  const JobResult pr = sim_->Run(SchemeKind::kProteus, job_, Config(), 16 * kDay);
  EXPECT_GT(pr.bill.on_demand_hours, 0.0);
  EXPECT_GT(pr.bill.spot_paid_hours, 0.0);
}

TEST_F(JobSimulatorTest, CheckpointSchemeLosesWorkOnEvictions) {
  // Find a window with at least one eviction for the checkpoint scheme.
  for (int i = 0; i < 20; ++i) {
    const SimTime start = (16 + i) * kDay;
    const JobResult ck =
        sim_->Run(SchemeKind::kStandardCheckpoint, job_, Config(), start);
    if (ck.evictions > 0 && ck.completed) {
      // Wall time must exceed ideal work time (lost work + restarts).
      const double ideal = 2 * kHour / (1.0 - Config().checkpoint_overhead);
      EXPECT_GT(ck.runtime, ideal * 0.99);
      return;
    }
  }
  GTEST_SKIP() << "no eviction encountered in sampled windows";
}


TEST_F(JobSimulatorTest, FlintDiversificationSpreadsEvictionRisk) {
  SampleStats flint_cost;
  SampleStats flint_runtime;
  SampleStats ck_runtime;
  int flint_acqs = 0;
  for (int i = 0; i < 12; ++i) {
    const SimTime start = (16 + 2 * i) * kDay;
    const JobResult flint =
        sim_->Run(SchemeKind::kFlintDiversified, job_, Config(), start);
    const JobResult ck =
        sim_->Run(SchemeKind::kStandardCheckpoint, job_, Config(), start);
    ASSERT_TRUE(flint.completed);
    flint_cost.Add(flint.bill.cost);
    flint_runtime.Add(flint.runtime);
    ck_runtime.Add(ck.runtime);
    flint_acqs += flint.acquisitions;
  }
  // Diversification acquires from several markets per top-up.
  EXPECT_GT(flint_acqs, 12);
  // And it must not be catastrophically worse than single-market
  // checkpointing (the baselines are comparable by design).
  EXPECT_LT(flint_runtime.Mean(), ck_runtime.Mean() * 1.5);
}

TEST_F(JobSimulatorTest, SchemeNamesAreStable) {
  EXPECT_STREQ(SchemeName(SchemeKind::kProteus), "Proteus");
  EXPECT_STREQ(SchemeName(SchemeKind::kStandardCheckpoint), "Standard+Checkpoint");
  EXPECT_STREQ(SchemeName(SchemeKind::kFlintDiversified), "Flint-Diversified");
}

TEST_F(JobSimulatorTest, LongJobCompletes) {
  const JobSpec long_job =
      JobSpec::ForReferenceDuration(catalog_, "c4.2xlarge", 64, 20 * kHour, 0.95);
  const JobResult pr = sim_->Run(SchemeKind::kProteus, long_job, Config(), 16 * kDay);
  ASSERT_TRUE(pr.completed);
  EXPECT_GT(pr.work_done, long_job.total_work * 0.999);
}

}  // namespace
}  // namespace proteus
