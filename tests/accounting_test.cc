#include <gtest/gtest.h>

#include "src/proteus/accounting.h"

namespace proteus {
namespace {

class AccountingTest : public ::testing::Test {
 protected:
  AccountingTest() : catalog_(InstanceTypeCatalog::Default()) {
    traces_.Put({"z0", "c4.xlarge"},
                PriceSeries({{0.0, 0.05}, {90 * kMinute, 0.08}, {150 * kMinute, 1.0},
                             {160 * kMinute, 0.05}}));
    market_ = std::make_unique<SpotMarket>(catalog_, traces_);
  }

  InstanceTypeCatalog catalog_;
  TraceStore traces_;
  std::unique_ptr<SpotMarket> market_;
  const MarketKey key_{"z0", "c4.xlarge"};
};

TEST_F(AccountingTest, FinalPartialHourIsProRated) {
  const auto id = market_->RequestSpot(key_, 2, 2.0, 0.0);
  // Job ends at 1.5h: hour 0 full at 0.05, hour 1 half-used at 0.05
  // (price at hour start 1h is still 0.05; it changes at 1.5h).
  const JobBill bill = ComputeJobBill(*market_, *id, 1.5 * kHour);
  EXPECT_NEAR(bill.cost, 2 * 0.05 + 2 * 0.05 * 0.5, 1e-9);
  EXPECT_NEAR(bill.spot_paid_hours, 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(bill.free_hours, 0.0);
}

TEST_F(AccountingTest, EvictedHourIsFree) {
  // Bid 0.5: evicted when price hits 1.0 at t=150min.
  const auto id = market_->RequestSpot(key_, 2, 0.5, 0.0);
  market_->MarkEvicted(*id);
  const JobBill bill = ComputeJobBill(*market_, *id, 10 * kHour);
  // Hours 0 and 1 charged at their hour-start prices (0.05 both: the
  // 0.08 step lands mid-hour at 90min); hour 2 (evicted at 2.5h) free.
  EXPECT_NEAR(bill.cost, 2 * 0.05 + 2 * 0.05, 1e-9);
  EXPECT_NEAR(bill.free_hours, 2 * 0.5, 1e-9);
  EXPECT_NEAR(bill.spot_paid_hours, 4.0, 1e-9);
}

TEST_F(AccountingTest, OnDemandHoursTracked) {
  const AllocationId id = market_->RequestOnDemand(key_, 3, 0.0);
  market_->Terminate(id, 2.5 * kHour);
  const JobBill bill = ComputeJobBill(*market_, id, 2.5 * kHour);
  EXPECT_NEAR(bill.on_demand_hours, 3 * 2.5, 1e-9);
  EXPECT_NEAR(bill.cost, 0.209 * 3 * 2.5, 1e-6);  // Final hour pro-rated.
  EXPECT_DOUBLE_EQ(bill.spot_paid_hours, 0.0);
}

TEST_F(AccountingTest, AllocationAfterJobEndCostsNothing) {
  const auto id = market_->RequestSpot(key_, 1, 2.0, 2.0 * kHour);
  const JobBill bill = ComputeJobBill(*market_, *id, 1.0 * kHour);
  EXPECT_DOUBLE_EQ(bill.cost, 0.0);
  EXPECT_DOUBLE_EQ(bill.TotalHours(), 0.0);
}

TEST_F(AccountingTest, TotalAggregatesAllAllocations) {
  market_->RequestOnDemand(key_, 1, 0.0);
  market_->RequestSpot(key_, 1, 2.0, 0.0);
  const JobBill bill = ComputeTotalJobBill(*market_, 1.0 * kHour);
  EXPECT_NEAR(bill.cost, 0.209 + 0.05, 1e-9);
  EXPECT_NEAR(bill.TotalHours(), 2.0, 1e-9);
}

}  // namespace
}  // namespace proteus
