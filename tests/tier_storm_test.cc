// Tier-storm driver tests: a zero-warning mass revocation of the
// serverless tier — alone, crossing into the spot tier, overlapping a
// reliable backup-holder loss, or wiping both lower tiers mid-round —
// must recover to a model digest byte-identical to the depth's correct
// reference, with zero auditor violations (the TierGuard exposure bound
// is re-checked at every clock) and no warned-drain event ever issued
// for a serverless node.
#include <gtest/gtest.h>

#include <memory>

#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/chaos/tier_storm.h"

namespace proteus {
namespace {

class TierStormTest : public ::testing::Test {
 protected:
  TierStormTest() {
    RatingsConfig rc;
    rc.users = 200;
    rc.items = 100;
    rc.ratings = 5000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 4;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  TierStormConfig Config(TierStormScenario scenario, std::uint64_t seed) const {
    TierStormConfig config;
    config.agileml.num_partitions = 8;
    config.agileml.data_blocks = 64;
    config.agileml.parallel_execution = false;
    config.agileml.backup_sync_every = 3;
    config.agileml.seed = seed;
    config.scenario = scenario;
    config.horizon = 22;
    config.checkpoint_every = 4;
    config.storm_at = 9;
    config.initial_serverless = 6;
    config.seed = seed;
    return config;
  }

  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_F(TierStormTest, ServerlessWipeRollsBackToLastSyncBytes) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TierStormResult result =
        RunTierStorm(app_.get(), Config(TierStormScenario::kServerlessWipe, seed));
    EXPECT_EQ(result.storm_victims, 6) << "seed " << seed;
    // Every zero-warning loss goes through the detector — never a drain.
    EXPECT_EQ(result.confirmed_serverless, result.storm_victims)
        << "seed " << seed;
    EXPECT_EQ(result.depth, RecoveryDepth::kBackupPromotion) << "seed " << seed;
    EXPECT_TRUE(result.digest_match)
        << "seed " << seed
        << ": post-rollback digest differs from the last sync bytes";
    EXPECT_GE(result.lost_clocks, 1) << "seed " << seed;
    EXPECT_TRUE(result.violations.empty()) << "seed " << seed;
  }
}

TEST_F(TierStormTest, CrossTierStormConfirmsBothTiersInOneBatch) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TierStormResult result =
        RunTierStorm(app_.get(), Config(TierStormScenario::kCrossTierSpot, seed));
    EXPECT_EQ(result.storm_victims, 6) << "seed " << seed;
    EXPECT_EQ(result.confirmed_serverless, result.storm_victims)
        << "seed " << seed;
    EXPECT_EQ(result.spot_victims, 2) << "seed " << seed;
    EXPECT_TRUE(result.digest_match)
        << "seed " << seed
        << ": cross-tier rollback digest differs from the last sync bytes";
    EXPECT_TRUE(result.violations.empty()) << "seed " << seed;
  }
}

TEST_F(TierStormTest, BackupHolderOverlapLeavesActiveStateUntouched) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TierStormResult result = RunTierStorm(
        app_.get(), Config(TierStormScenario::kBackupHolderOverlap, seed));
    EXPECT_EQ(result.depth, RecoveryDepth::kActiveRebuild) << "seed " << seed;
    EXPECT_TRUE(result.digest_match)
        << "seed " << seed
        << ": active state changed during the mid-storm backup rebuild";
    // The pending serverless revocations are still confirmed afterwards.
    EXPECT_EQ(result.confirmed_serverless, result.storm_victims)
        << "seed " << seed;
    EXPECT_TRUE(result.violations.empty()) << "seed " << seed;
  }
}

TEST_F(TierStormTest, FullWipeRestoresCommittedEpochBytes) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const TierStormResult result =
        RunTierStorm(app_.get(), Config(TierStormScenario::kFullWipe, seed));
    EXPECT_EQ(result.depth, RecoveryDepth::kDurableRestore) << "seed " << seed;
    EXPECT_GT(result.durable_epoch, 0u) << "seed " << seed;
    EXPECT_TRUE(result.digest_match)
        << "seed " << seed
        << ": durable restore differs from the committed epoch bytes";
    // The whole tier went down with the blast, not via the detector.
    EXPECT_EQ(result.storm_victims, 6) << "seed " << seed;
    EXPECT_EQ(result.confirmed_serverless, 0) << "seed " << seed;
    EXPECT_TRUE(result.violations.empty()) << "seed " << seed;
  }
}

TEST_F(TierStormTest, SameSeedIsDeterministic) {
  for (const TierStormScenario scenario :
       {TierStormScenario::kServerlessWipe, TierStormScenario::kCrossTierSpot,
        TierStormScenario::kBackupHolderOverlap,
        TierStormScenario::kFullWipe}) {
    const TierStormResult a = RunTierStorm(app_.get(), Config(scenario, 7));
    const TierStormResult b = RunTierStorm(app_.get(), Config(scenario, 7));
    EXPECT_EQ(a.Digest(), b.Digest()) << TierStormScenarioName(scenario);
    EXPECT_EQ(a.post_recovery_digest, b.post_recovery_digest)
        << TierStormScenarioName(scenario);
  }
}

}  // namespace
}  // namespace proteus
