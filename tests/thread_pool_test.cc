#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

namespace proteus {
namespace {

TEST(ThreadPool, ParallelForRunsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

// Regression: ParallelFor used to rethrow on the first failed future
// while later tasks — which hold a reference to `fn` and the caller's
// captures — were still queued or running, so the unwind could destroy
// state out from under them and lose tasks. Now every task must run to
// completion before the exception surfaces, and the pool stays usable.
TEST(ThreadPool, ThrowingTaskNeitherWedgesPoolNorLosesTasks) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(200,
                                [&](std::size_t i) {
                                  ran.fetch_add(1);
                                  if (i == 3) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 200);

  std::atomic<int> again{0};
  pool.ParallelFor(50, [&](std::size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 50);
}

TEST(ThreadPool, FirstExceptionInIndexOrderWins) {
  ThreadPool pool(4);
  try {
    pool.ParallelFor(64, [&](std::size_t i) {
      if (i == 7 || i == 41) {
        throw std::runtime_error(std::to_string(i));
      }
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "7");
  }
}

TEST(ThreadPool, StressRepeatedParallelForWithFailures) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    const bool fails = round % 2 == 0;
    try {
      pool.ParallelFor(64, [&](std::size_t i) {
        ran.fetch_add(1);
        if (fails && i % 17 == 0) {
          throw std::runtime_error("flaky");
        }
      });
      EXPECT_FALSE(fails);
    } catch (const std::runtime_error&) {
      EXPECT_TRUE(fails);
    }
    ASSERT_EQ(ran.load(), 64) << "round " << round << " lost tasks";
  }
}

}  // namespace
}  // namespace proteus
