// EventLedger semantics: causal parents from the ambient context stack,
// explicit parents through state, chain walks, observer delivery, and
// byte-deterministic JSONL export.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/ledger.h"

namespace proteus {
namespace obs {
namespace {

TEST(EventLedger, AmbientContextParentsAndNesting) {
  EventLedger ledger;
  const EventId root = ledger.Record("boot", "test", 0.0);
  EXPECT_EQ(root, 1u);
  EXPECT_EQ(ledger.Get(root).parent, kNoEvent);

  const EventId run = ledger.Open("run", "test", 0.0);
  const EventId clock = ledger.Open("clock", "test", 1.0);
  const EventId push = ledger.Record("push", "test", 1.5, {{"bytes", std::int64_t{64}}});
  EXPECT_EQ(ledger.Get(run).parent, kNoEvent);
  EXPECT_EQ(ledger.Get(clock).parent, run);
  EXPECT_EQ(ledger.Get(push).parent, clock);
  EXPECT_EQ(ledger.current(), clock);

  ledger.Close(clock, 2.0, {{"gate", std::string("compute")}});
  EXPECT_EQ(ledger.current(), run);
  ledger.Close(run, 5.0);
  EXPECT_EQ(ledger.current(), kNoEvent);

  // Close fills duration and merges args onto the original event.
  const LedgerEvent closed = ledger.Get(clock);
  EXPECT_EQ(closed.dur, 2.0);
  bool saw_gate = false;
  for (const auto& [key, value] : closed.args) {
    saw_gate |= key == "gate";
  }
  EXPECT_TRUE(saw_gate);

  // Closing id 0 must be a no-op so instrumentation can run unguarded.
  ledger.Close(kNoEvent, 1.0);
  EXPECT_EQ(ledger.size(), 4u);
}

TEST(EventLedger, ExplicitParentAndChain) {
  EventLedger ledger;
  const EventId run = ledger.Open("run", "test", 0.0);
  const EventId send = ledger.Record("rpc.send.reliable", "rpc", 1.0);
  // A retransmit's cause is the original send, carried through the ARQ
  // window — not whatever region happens to be open later.
  const EventId retx = ledger.RecordWithParent("rpc.retransmit", "rpc", 3.0, send);
  EXPECT_EQ(ledger.Get(retx).parent, send);

  const std::vector<LedgerEvent> chain = ledger.Chain(retx);
  ASSERT_EQ(chain.size(), 3u);  // retransmit -> send -> run.
  EXPECT_EQ(chain[0].id, retx);
  EXPECT_EQ(chain[1].id, send);
  EXPECT_EQ(chain[2].id, run);
  ledger.Close(run, 4.0);

  // Chain of an unknown anchor is empty, not a crash.
  EXPECT_TRUE(ledger.Chain(999).empty());
}

TEST(EventLedger, ObserverSeesEveryRecordOnceAndJsonlIsStable) {
  EventLedger ledger;
  std::vector<EventId> seen;
  ledger.SetObserver([&seen](const LedgerEvent& event) { seen.push_back(event.id); });
  const EventId a = ledger.Open("run", "test", 0.0);
  ledger.Record("clock", "test", 1.0);
  ledger.Close(a, 2.0);  // Close must NOT re-notify.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], a);

  const std::string jsonl = ledger.ToJsonl();
  EXPECT_EQ(jsonl, ledger.ToJsonl());
  // One line per event, each a parseable JSON object with the schema
  // fields the analyzer keys on.
  std::vector<JsonValue> lines;
  std::string error;
  ASSERT_TRUE(ParseJsonLines(jsonl, &lines, &error)) << error;
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].IntField("id"), 1);
  EXPECT_EQ(lines[0].StringField("kind"), "run");
  EXPECT_EQ(lines[0].NumberField("dur"), 2.0);
  EXPECT_EQ(lines[1].IntField("parent"), 1);
}

TEST(EventLedger, IdsAreContiguousAppendOrder) {
  EventLedger ledger;
  for (int i = 0; i < 10; ++i) {
    ledger.Record("tick", "test", static_cast<double>(i));
  }
  const std::vector<LedgerEvent> events = ledger.Events();
  ASSERT_EQ(events.size(), 10u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, i + 1);
  }
  ledger.Clear();
  EXPECT_EQ(ledger.size(), 0u);
  EXPECT_EQ(ledger.Record("fresh", "test", 0.0), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace proteus
