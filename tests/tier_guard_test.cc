#include <gtest/gtest.h>

#include <vector>

#include "src/agileml/tier_guard.h"

namespace proteus {
namespace {

std::vector<NodeInfo> MakeNodes(int reliable, int transient, int serverless) {
  std::vector<NodeInfo> nodes;
  NodeId id = 0;
  for (int i = 0; i < reliable; ++i) {
    nodes.push_back({id++, Tier::kReliable});
  }
  for (int i = 0; i < transient; ++i) {
    nodes.push_back({id++, Tier::kTransient});
  }
  for (int i = 0; i < serverless; ++i) {
    nodes.push_back({id++, Tier::kServerless});
  }
  return nodes;
}

RoleAssignment Stage2Roles() {
  RoleAssignment roles;
  roles.stage = Stage::kStage2;
  return roles;
}

TEST(TierGuardTest, AdmissionHeadroomSolvesTheFractionBound) {
  TierGuardConfig config;
  config.enabled = true;
  config.max_worker_fraction = 0.5;
  TierGuard guard(config);
  // 4 non-serverless ready nodes, none exposed: up to 4 may join before
  // serverless reaches half the membership (4 of 8).
  TierCounts ready;
  ready.reliable = 2;
  ready.transient = 2;
  EXPECT_EQ(guard.AdmissionHeadroom(ready, /*pending=*/0), 4);
  // Two already preloading count against the same bound.
  EXPECT_EQ(guard.AdmissionHeadroom(ready, /*pending=*/2), 2);
  // Exactly at the bound: no headroom left.
  ready.serverless = 4;
  EXPECT_EQ(guard.AdmissionHeadroom(ready, /*pending=*/0), 0);
  // Over-exposed (e.g. after reliable churn): clamped to zero, never
  // negative.
  ready.reliable = 1;
  ready.transient = 0;
  EXPECT_EQ(guard.AdmissionHeadroom(ready, /*pending=*/0), 0);
}

TEST(TierGuardTest, AdmissionUnlimitedWhenDisabledOrUnbounded) {
  TierCounts ready;
  ready.reliable = 1;
  TierGuard disabled(TierGuardConfig{});
  EXPECT_GT(disabled.AdmissionHeadroom(ready, 0), 1 << 20);
  TierGuardConfig config;
  config.enabled = true;
  config.max_worker_fraction = 1.0;
  TierGuard unbounded(config);
  EXPECT_GT(unbounded.AdmissionHeadroom(ready, 0), 1 << 20);
}

TEST(TierGuardTest, ZeroPsExposureCheckedEvenWhenDisabled) {
  TierGuard guard(TierGuardConfig{});  // enabled = false.
  const std::vector<NodeInfo> nodes = MakeNodes(2, 0, 1);  // Serverless id 2.
  RoleAssignment roles = Stage2Roles();
  roles.server[0] = 0;
  roles.backup[0] = 2;  // Backup on the serverless node: forbidden.
  const TierGuardReport report = guard.Audit(nodes, roles, 5, 5);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.serverless_ps_roles, 1);
  EXPECT_NE(report.detail.find("parameter-server"), std::string::npos);
}

TEST(TierGuardTest, ServerlessActivePsAlsoViolates) {
  TierGuard guard(TierGuardConfig{});
  const std::vector<NodeInfo> nodes = MakeNodes(2, 0, 1);
  RoleAssignment roles = Stage2Roles();
  roles.active_ps_nodes.insert(2);
  EXPECT_FALSE(guard.Audit(nodes, roles, 0, 0).ok);
  RoleAssignment serving = Stage2Roles();
  serving.server[3] = 2;
  EXPECT_FALSE(guard.Audit(nodes, serving, 0, 0).ok);
}

TEST(TierGuardTest, WorkerFractionBoundEnforced) {
  TierGuardConfig config;
  config.enabled = true;
  config.max_worker_fraction = 0.5;
  TierGuard guard(config);
  const RoleAssignment roles = Stage2Roles();
  // Exactly at the bound (3 of 6): allowed.
  const TierGuardReport at_bound = guard.Audit(MakeNodes(2, 1, 3), roles, 0, 0);
  EXPECT_TRUE(at_bound.ok);
  EXPECT_DOUBLE_EQ(at_bound.worker_fraction, 0.5);
  // One more serverless node (4 of 7): violation.
  const TierGuardReport over = guard.Audit(MakeNodes(2, 1, 4), roles, 0, 0);
  EXPECT_FALSE(over.ok);
  EXPECT_NE(over.detail.find("fraction"), std::string::npos);
}

TEST(TierGuardTest, SyncLagBoundOnlyWhileExposed) {
  TierGuardConfig config;
  config.enabled = true;
  config.max_unsynced_clocks_exposed = 4;
  TierGuard guard(config);
  const RoleAssignment roles = Stage2Roles();
  const std::vector<NodeInfo> exposed = MakeNodes(2, 2, 2);
  // Lag 6 with serverless workers present: a zero-warning storm would
  // roll back more than the configured bound.
  const TierGuardReport stale = guard.Audit(exposed, roles, 10, 4);
  EXPECT_FALSE(stale.ok);
  EXPECT_EQ(stale.unsynced_clocks, 6);
  // The allowance for pending detector confirmations widens the bound.
  EXPECT_TRUE(guard.Audit(exposed, roles, 10, 4, /*extra_lag_allowance=*/3).ok);
  // Same lag with no serverless exposure: fine.
  EXPECT_TRUE(guard.Audit(MakeNodes(2, 4, 0), roles, 10, 4).ok);
  // Bound <= 0 disables the check.
  config.max_unsynced_clocks_exposed = 0;
  EXPECT_TRUE(TierGuard(config).Audit(exposed, roles, 10, 4).ok);
}

TEST(TierGuardTest, Stage1ReportsZeroLag) {
  TierGuardConfig config;
  config.enabled = true;
  TierGuard guard(config);
  RoleAssignment roles;  // Stage 1: no backups, lag is meaningless.
  const TierGuardReport report = guard.Audit(MakeNodes(2, 0, 1), roles, 10, 0);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.unsynced_clocks, 0);
}

}  // namespace
}  // namespace proteus
