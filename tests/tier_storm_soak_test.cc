// Tier-storm soak (ctest label: "soak"): the ISSUE 10 acceptance pin.
// For every seed in the battery, a run losing the entire serverless
// tier — including storms that cross into the spot tier and storms that
// wipe both lower tiers mid-round — recovers through the ladder to a
// model digest byte-identical to the correct reference for its depth,
// with zero warned-drain events attributed to serverless allocations
// (the runtime CHECK-fails on any) and the TierGuard exposure bound
// re-audited at every clock.
//
// Run alone with `ctest -L soak`; exclude with `ctest -LE soak`.
#include <gtest/gtest.h>

#include <memory>

#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/chaos/tier_storm.h"

namespace proteus {
namespace {

class TierStormSoakTest : public ::testing::Test {
 protected:
  TierStormSoakTest() {
    RatingsConfig rc;
    rc.users = 300;
    rc.items = 150;
    rc.ratings = 10000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 4;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  TierStormConfig Config(TierStormScenario scenario, std::uint64_t seed) const {
    TierStormConfig config;
    config.agileml.num_partitions = 8;
    config.agileml.data_blocks = 64;
    config.agileml.parallel_execution = false;
    config.agileml.backup_sync_every = 3;
    config.agileml.seed = seed;
    config.scenario = scenario;
    config.horizon = 24;
    config.checkpoint_every = 4;
    config.storm_at = 11;
    config.initial_serverless = 6;
    config.seed = seed;
    return config;
  }

  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_F(TierStormSoakTest, EveryScenarioByteIdenticalAcrossSeeds) {
  constexpr int kSeeds = 25;
  for (const TierStormScenario scenario :
       {TierStormScenario::kServerlessWipe, TierStormScenario::kCrossTierSpot,
        TierStormScenario::kBackupHolderOverlap,
        TierStormScenario::kFullWipe}) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const TierStormResult result =
          RunTierStorm(app_.get(), Config(scenario, seed));
      ASSERT_TRUE(result.digest_match)
          << TierStormScenarioName(scenario) << " seed " << seed
          << ": post-recovery digest differs from the correct reference";
      ASSERT_TRUE(result.violations.empty())
          << TierStormScenarioName(scenario) << " seed " << seed << ": "
          << result.violations.size() << " auditor violation(s), first: "
          << result.violations.front().invariant << " — "
          << result.violations.front().detail;
      ASSERT_EQ(result.storm_victims, 6)
          << TierStormScenarioName(scenario) << " seed " << seed;
    }
  }
}

TEST_F(TierStormSoakTest, DetectorConfirmsEveryZeroWarningLoss) {
  constexpr int kSeeds = 25;
  for (const TierStormScenario scenario :
       {TierStormScenario::kServerlessWipe,
        TierStormScenario::kCrossTierSpot}) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const TierStormResult result =
          RunTierStorm(app_.get(), Config(scenario, seed));
      ASSERT_EQ(result.confirmed_serverless, result.storm_victims)
          << TierStormScenarioName(scenario) << " seed " << seed
          << ": a zero-warning loss bypassed the detector path";
      ASSERT_EQ(result.depth, RecoveryDepth::kBackupPromotion)
          << TierStormScenarioName(scenario) << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace proteus
