// Regression guard for the paper's quantitative anchors (§6.3/§6.4).
// These are the headline reproduction results; if a change to the
// runtime, fabric, market, or policies moves them outside the bands
// below, the reproduction has regressed. Uses reduced scale relative to
// the benches so the suite stays fast; the bands are correspondingly
// loose.
#include <gtest/gtest.h>

#include <memory>

#include "src/agileml/runtime.h"
#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/common/stats.h"
#include "src/proteus/job_simulator.h"

namespace proteus {
namespace {

// --- AgileML stage anchors, at 1/2 bench scale (32 nodes) ---

class StageAnchorsTest : public ::testing::Test {
 protected:
  StageAnchorsTest() {
    RatingsConfig rc;
    rc.users = 15000;
    rc.items = 1000;
    rc.ratings = 100000;
    rc.item_zipf = 1.01;
    rc.seed = 1001;
    data_ = GenerateRatings(rc);
    mf_.rank = 512;
    mf_.objective_sample = 1000;
  }

  double Run(int reliable, int transient, Stage stage, std::optional<int> actives) {
    MatrixFactorizationApp app(&data_, mf_);
    AgileMLConfig config;
    config.num_partitions = 16;
    config.core_speed = 1.2e7;
    config.data_blocks = 512;
    config.parallel_execution = true;
    config.planner.forced_stage = stage;
    config.planner.forced_active_ps_count = actives;
    std::vector<NodeInfo> nodes;
    NodeId id = 0;
    for (int i = 0; i < reliable; ++i) {
      nodes.push_back({id++, Tier::kReliable, 8, kInvalidAllocation});
    }
    for (int i = 0; i < transient; ++i) {
      nodes.push_back({id++, Tier::kTransient, 8, kInvalidAllocation});
    }
    AgileMLRuntime runtime(&app, config, nodes);
    runtime.RunClocks(2);
    double total = 0.0;
    for (int i = 0; i < 3; ++i) {
      total += runtime.RunClock().duration;
    }
    return total / 3;
  }

  RatingsDataset data_;
  MfConfig mf_;
};

TEST_F(StageAnchorsTest, Stage1BottlenecksAtHighRatio) {
  const double traditional = Run(32, 0, Stage::kStage1, std::nullopt);
  const double skewed = Run(2, 30, Stage::kStage1, std::nullopt);
  // Paper: >85% slowdown when few reliable machines serve everyone.
  EXPECT_GT(skewed / traditional, 1.5);
}

TEST_F(StageAnchorsTest, Stage2RelievesTheBottleneck) {
  const double traditional = Run(32, 0, Stage::kStage1, std::nullopt);
  const double stage1 = Run(2, 30, Stage::kStage1, std::nullopt);
  const double stage2 = Run(2, 30, Stage::kStage2, 16);
  EXPECT_LT(stage2, stage1 * 0.8) << "ActivePSs must relieve the reliable tier";
  EXPECT_LT(stage2 / traditional, 1.5);
}

TEST_F(StageAnchorsTest, Stage3MatchesTraditionalAtExtremeRatio) {
  const double traditional = Run(32, 0, Stage::kStage1, std::nullopt);
  const double stage3 = Run(1, 31, Stage::kStage3, 16);
  EXPECT_LT(stage3 / traditional, 1.3);
  // And stage 2 with the straggling reliable worker is clearly worse.
  const double stage2 = Run(1, 31, Stage::kStage2, 16);
  EXPECT_GT(stage2 / stage3, 1.3);
}

// --- Cost-scheme ordering anchor (§6.3) ---

TEST(CostAnchorsTest, SchemeOrderingHolds) {
  const InstanceTypeCatalog catalog = InstanceTypeCatalog::Default();
  SyntheticTraceConfig trace_config;
  trace_config.spikes_per_day = 3.0;
  Rng rng(2016);
  const TraceStore traces = TraceStore::GenerateSynthetic(
      catalog, {"a", "b", "c", "d"}, 60 * kDay, trace_config, rng);
  EvictionEstimator estimator;
  estimator.Train(traces, 0.0, 30 * kDay);
  const JobSimulator sim(&catalog, &traces, &estimator);
  SchemeConfig config;
  config.bidbrain.max_spot_instances = 189;
  const JobSpec job = JobSpec::ForReferenceDuration(catalog, "c4.2xlarge", 64, 2 * kHour, 0.95);

  SampleStats od;
  SampleStats ck;
  SampleStats ag;
  SampleStats pr;
  Rng starts(7);
  for (int i = 0; i < 40; ++i) {
    const SimTime start = starts.Uniform(31 * kDay, 58 * kDay);
    od.Add(sim.Run(SchemeKind::kOnDemandOnly, job, config, start).bill.cost);
    ck.Add(sim.Run(SchemeKind::kStandardCheckpoint, job, config, start).bill.cost);
    ag.Add(sim.Run(SchemeKind::kStandardAgileML, job, config, start).bill.cost);
    pr.Add(sim.Run(SchemeKind::kProteus, job, config, start).bill.cost);
  }
  // Paper ordering: Proteus < Standard+AgileML < Standard+Checkpoint <<
  // on-demand, with Proteus at <= 25% of on-demand.
  EXPECT_LT(pr.Mean(), ag.Mean());
  EXPECT_LT(ag.Mean(), ck.Mean());
  EXPECT_LT(ck.Mean(), od.Mean() * 0.6);
  EXPECT_LT(pr.Mean(), od.Mean() * 0.25);
}

}  // namespace
}  // namespace proteus
