// Golden determinism test for sim-clock tracing: two chaos runs with the
// same seed must render byte-identical Chrome trace JSON, and the trace
// must carry the fault-injection instants and recovery spans the soak
// driver's per-class breakdown is built on.
#include <gtest/gtest.h>

#include <string>

#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/chaos/harness.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace proteus {
namespace {

ChaosConfig GoldenConfig(std::uint64_t seed, int model_shards = 1) {
  ChaosConfig config;
  config.agileml.num_partitions = 8;
  config.agileml.data_blocks = 64;
  config.agileml.parallel_execution = false;  // Required for determinism.
  config.agileml.backup_sync_every = 3;
  config.agileml.model.shards = model_shards;
  config.agileml.seed = seed;
  config.schedule.horizon = 20;
  config.schedule.events = 8;
  config.schedule.zones = 3;
  config.seed = seed;
  return config;
}

// One instrumented chaos run; returns the rendered trace JSON.
std::string TraceOneRun(MLApp* app, std::uint64_t seed, int model_shards = 1) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  ChaosHarness harness(app, GoldenConfig(seed, model_shards));
  harness.SetObservability(&tracer, &metrics);
  const ChaosRunResult result = harness.Run();
  EXPECT_TRUE(result.ok()) << harness.auditor().Report();
  return tracer.ToChromeJson();
}

TEST(ObsTraceGolden, SameSeedRunsRenderByteIdenticalJson) {
  RatingsConfig rc;
  rc.users = 200;
  rc.items = 100;
  rc.ratings = 6000;
  RatingsDataset data = GenerateRatings(rc);
  MfConfig mc;
  mc.rank = 4;
  MatrixFactorizationApp app(&data, mc);

  const std::string first = TraceOneRun(&app, /*seed=*/7);
  const std::string second = TraceOneRun(&app, /*seed=*/7);
  EXPECT_EQ(first, second);

  // A different seed must actually change the trace (the comparison
  // above is not vacuous).
  const std::string other = TraceOneRun(&app, /*seed=*/8);
  EXPECT_NE(first, other);

  // Structure: valid trace_event envelope with fault instants, recovery
  // spans, and the agileml clock spans they interleave with.
  EXPECT_EQ(first.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_EQ(first.back(), '\n');
  EXPECT_NE(first.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(first.find("\"name\":\"fault."), std::string::npos);
  EXPECT_NE(first.find("\"name\":\"recovery\""), std::string::npos);
  EXPECT_NE(first.find("\"name\":\"clock\""), std::string::npos);
  EXPECT_NE(first.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(first.find("\"ph\":\"i\""), std::string::npos);
}

TEST(ObsTraceGolden, ShardedModelChaosRunsStayDeterministic) {
  RatingsConfig rc;
  rc.users = 200;
  rc.items = 100;
  rc.ratings = 6000;
  RatingsDataset data = GenerateRatings(rc);
  MfConfig mc;
  mc.rank = 4;
  MatrixFactorizationApp app(&data, mc);

  // The lock-striped fast path under chaos: same seed, same shard count
  // => byte-identical traces (coalesced byte accounting and the striped
  // arena introduce no nondeterminism).
  const std::string first = TraceOneRun(&app, /*seed=*/7, /*model_shards=*/4);
  const std::string second = TraceOneRun(&app, /*seed=*/7, /*model_shards=*/4);
  EXPECT_EQ(first, second);

  // The engines account wire bytes differently (per-row framing vs
  // coalesced batches), so virtual timings — and hence traces — must
  // genuinely differ from the legacy run: the equality above is not
  // vacuously comparing the same code path.
  const std::string legacy = TraceOneRun(&app, /*seed=*/7, /*model_shards=*/1);
  EXPECT_NE(first, legacy);
}

}  // namespace
}  // namespace proteus
