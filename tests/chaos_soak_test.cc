// Chaos soak (ctest label: "soak"): hundreds of seeded adversarial
// schedules mixing all fault classes must complete with zero auditor
// violations, and same-seed runs must be bit-identical.
//
// Run alone with `ctest -L soak`; exclude with `ctest -LE soak`.
#include <gtest/gtest.h>

#include <memory>

#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/chaos/harness.h"

namespace proteus {
namespace {

class ChaosSoakTest : public ::testing::Test {
 protected:
  ChaosSoakTest() {
    RatingsConfig rc;
    rc.users = 300;
    rc.items = 150;
    rc.ratings = 10000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 4;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  ChaosConfig Config(std::uint64_t seed) const {
    ChaosConfig config;
    config.agileml.num_partitions = 8;
    config.agileml.data_blocks = 64;
    config.agileml.parallel_execution = false;
    config.agileml.backup_sync_every = 3;
    config.agileml.seed = seed;
    config.schedule.horizon = 30;
    config.schedule.events = kNumFaultClasses;  // Guarantees all classes.
    config.schedule.zones = 3;
    // A standing serverless enrollment gives kTierStorm events victims;
    // min_serverless replenishes the tier after each storm thins it.
    config.initial_serverless_allocations = 2;
    config.serverless_nodes_per_allocation = 2;
    config.min_serverless = 2;
    config.seed = seed;
    return config;
  }

  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_F(ChaosSoakTest, TwoHundredSchedulesZeroViolations) {
  constexpr int kSchedules = 200;
  int per_class_applied[kNumFaultClasses] = {};
  for (int s = 0; s < kSchedules; ++s) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(s);
    ChaosHarness harness(app_.get(), Config(seed));
    const ChaosRunResult result = harness.Run();
    ASSERT_TRUE(result.ok()) << "seed " << seed << ": " << harness.auditor().Report();
    ASSERT_EQ(result.clocks_run, 30) << "seed " << seed;
    ASSERT_EQ(result.final_clock + result.lost_clocks_total, result.clocks_run)
        << "seed " << seed << ": completed-clock conservation broken";
    for (int c = 0; c < kNumFaultClasses; ++c) {
      per_class_applied[c] += result.per_class[static_cast<std::size_t>(c)].events;
    }
  }
  // The soak only counts as "mixing all fault classes" if every class
  // actually fired many times across the corpus.
  for (int c = 0; c < kNumFaultClasses; ++c) {
    EXPECT_GE(per_class_applied[c], kSchedules / 4)
        << FaultClassName(static_cast<FaultClass>(c)) << " barely exercised";
  }
}

TEST_F(ChaosSoakTest, SameSeedRunsAreBitIdentical) {
  for (std::uint64_t seed : {7ULL, 1234ULL, 99991ULL}) {
    ChaosHarness a(app_.get(), Config(seed));
    ChaosHarness b(app_.get(), Config(seed));
    const ChaosRunResult ra = a.Run();
    const ChaosRunResult rb = b.Run();
    ASSERT_EQ(ra.Digest(), rb.Digest()) << "seed " << seed;
    ASSERT_EQ(ra.final_objective, rb.final_objective) << "seed " << seed;
    ASSERT_EQ(ra.violations.size(), rb.violations.size()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace proteus
