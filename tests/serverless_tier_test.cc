#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/market/serverless_tier.h"

namespace proteus {
namespace {

// A pool with no load, no diurnal swing, no bursts, and no storms: the
// only thing that can end an allocation is the burst cap (or the user).
ServerlessTierConfig Quiet() {
  ServerlessTierConfig config;
  config.capacity.total_slots = 64;
  config.capacity.base_load = 0.0;
  config.capacity.diurnal_amplitude = 0.0;
  config.capacity.bursts_per_day = 0.0;
  config.storms_per_day = 0.0;
  return config;
}

TEST(ServerlessTierTest, BurstCapEndsEvenUndisturbedAllocations) {
  ServerlessTier tier(Quiet());
  const auto id = tier.Request(4, 100.0);
  ASSERT_TRUE(id.has_value());
  const ServerlessAllocation& alloc = tier.Get(*id);
  EXPECT_DOUBLE_EQ(alloc.revocation_time, 100.0 + 45 * kMinute);
  EXPECT_EQ(alloc.revocation_cause, ServerlessRevocationCause::kBurstCap);
  EXPECT_EQ(tier.RunningCount(), 4);
  // The revocation lands at exactly the precomputed instant — there is
  // no warning interval anywhere in the tier's interface.
  tier.MarkRevoked(*id);
  EXPECT_EQ(tier.Get(*id).state, AllocationState::kEvicted);
  EXPECT_DOUBLE_EQ(tier.Get(*id).end, 100.0 + 45 * kMinute);
  EXPECT_EQ(tier.RunningCount(), 0);
}

TEST(ServerlessTierTest, PerSecondBillingNoMinimumCharge) {
  ServerlessTier tier(Quiet());
  const Money rate = tier.config().rate_per_slot_hour;
  // 90.5 seconds of use rounds up to 91 billed seconds.
  const auto a = tier.Request(2, 0.0);
  ASSERT_TRUE(a.has_value());
  tier.Terminate(*a, 90.5);
  EXPECT_NEAR(tier.Bill(*a, kDay), rate * 2 * (91.0 / 3600.0), 1e-12);
  // 3 seconds bills 3 seconds — no 10-minute minimum as in preemptible.
  const auto b = tier.Request(1, 0.0);
  ASSERT_TRUE(b.has_value());
  tier.Terminate(*b, 3.0);
  EXPECT_NEAR(tier.Bill(*b, kDay), rate * (3.0 / 3600.0), 1e-12);
}

TEST(ServerlessTierTest, NoRefundOnRevocation) {
  ServerlessTierConfig config = Quiet();
  config.max_burst = 10 * kMinute;
  ServerlessTier tier(config);
  const auto id = tier.Request(1, 0.0);
  ASSERT_TRUE(id.has_value());
  tier.MarkRevoked(*id);
  // The full 600 seconds that ran are billed; nothing is credited back
  // for the provider-side reclaim.
  EXPECT_NEAR(tier.Bill(*id, kDay),
              tier.config().rate_per_slot_hour * (600.0 / 3600.0), 1e-12);
}

TEST(ServerlessTierTest, TerminateAfterRevocationBecomesRevocation) {
  ServerlessTierConfig config = Quiet();
  config.max_burst = 10 * kMinute;
  ServerlessTier tier(config);
  const auto id = tier.Request(1, 0.0);
  ASSERT_TRUE(id.has_value());
  tier.Terminate(*id, kHour);  // The burst cap reclaimed it at 10 min.
  const ServerlessAllocation& alloc = tier.Get(*id);
  EXPECT_EQ(alloc.state, AllocationState::kEvicted);
  EXPECT_DOUBLE_EQ(alloc.end, 10 * kMinute);
  EXPECT_EQ(alloc.revocation_cause, ServerlessRevocationCause::kBurstCap);
}

TEST(ServerlessTierTest, UserTerminationClearsTheCause) {
  ServerlessTier tier(Quiet());
  const auto id = tier.Request(3, 0.0);
  ASSERT_TRUE(id.has_value());
  tier.Terminate(*id, 5 * kMinute);
  const ServerlessAllocation& alloc = tier.Get(*id);
  EXPECT_EQ(alloc.state, AllocationState::kTerminated);
  EXPECT_EQ(alloc.revocation_cause, ServerlessRevocationCause::kNone);
  // Billing stops at the termination instant even when queried later.
  EXPECT_NEAR(tier.Bill(*id, kDay),
              tier.config().rate_per_slot_hour * 3 * (300.0 / 3600.0), 1e-12);
}

TEST(ServerlessTierTest, RequestDeclinedWhenPoolSqueezed) {
  ServerlessTierConfig config = Quiet();
  config.capacity.total_slots = 8;
  ServerlessTier tier(config);
  const auto a = tier.Request(8, 0.0);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(tier.Request(1, 0.0).has_value());
  tier.Terminate(*a, kMinute);
  EXPECT_TRUE(tier.Request(8, 2 * kMinute).has_value());
}

TEST(ServerlessTierTest, StormDrawKeyedByAllocationNotByNeighbours) {
  ServerlessTierConfig config = Quiet();
  config.storms_per_day = 8.0;
  config.storm_victim_fraction = 0.9;
  config.max_burst = 8 * kHour;
  // Two tiers with the same seed: identical storm schedules, and the
  // same allocation id drawn at the same start time meets the same fate
  // regardless of how large its neighbours are.
  ServerlessTier a(config);
  ServerlessTier b(config);
  const int counts_a[] = {1, 1, 1};
  const int counts_b[] = {1, 5, 1};  // Different neighbour sizes.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(a.Request(counts_a[i], 0.0).has_value());
    ASSERT_TRUE(b.Request(counts_b[i], 0.0).has_value());
  }
  ASSERT_EQ(a.storms().size(), b.storms().size());
  for (std::size_t k = 0; k < a.storms().size(); ++k) {
    EXPECT_DOUBLE_EQ(a.storms()[k].at, b.storms()[k].at);
    EXPECT_DOUBLE_EQ(a.storms()[k].victim_fraction, b.storms()[k].victim_fraction);
  }
  int storm_victims = 0;
  for (AllocationId id = 0; id < 3; ++id) {
    EXPECT_DOUBLE_EQ(a.Get(id).revocation_time, b.Get(id).revocation_time);
    EXPECT_EQ(a.Get(id).revocation_cause, b.Get(id).revocation_cause);
    if (a.Get(id).revocation_cause == ServerlessRevocationCause::kStorm) {
      ++storm_victims;
    }
  }
  // At 0.9 victim fraction and ~16 storms in 48h, the 8-hour burst cap
  // should essentially never win the min.
  EXPECT_GE(storm_victims, 2);
}

TEST(ServerlessTierTest, CorrelatedStormRevokesManyAtOneInstant) {
  ServerlessTierConfig config = Quiet();
  config.storms_per_day = 4.0;
  config.storm_victim_fraction = 1.0;  // Jitter keeps draws >= 0.75.
  config.max_burst = config.horizon;
  ServerlessTier tier(config);
  constexpr int kAllocs = 20;
  for (int i = 0; i < kAllocs; ++i) {
    ASSERT_TRUE(tier.Request(1, 0.0).has_value());
  }
  std::map<SimTime, int> victims_at;
  for (const ServerlessAllocation& alloc : tier.allocations()) {
    if (alloc.revocation_cause == ServerlessRevocationCause::kStorm) {
      ++victims_at[alloc.revocation_time];
    }
  }
  ASSERT_FALSE(victims_at.empty());
  int peak = 0;
  SimTime peak_at = 0.0;
  for (const auto& [at, n] : victims_at) {
    if (n > peak) {
      peak = n;
      peak_at = at;
    }
  }
  // The mass revocation is correlated: a majority of the fleet vanishes
  // in one instant, and that instant is on the published storm schedule.
  EXPECT_GE(peak, kAllocs / 2);
  const bool on_schedule =
      std::any_of(tier.storms().begin(), tier.storms().end(),
                  [&](const StormEvent& s) { return s.at == peak_at; });
  EXPECT_TRUE(on_schedule);
}

TEST(ServerlessTierTest, CapacityCrossingSqueezesNewestClaimFirst) {
  ServerlessTierConfig config;
  config.storms_per_day = 0.0;
  config.max_burst = config.horizon;  // Capacity is the only hazard.
  ServerlessTier tier(config);
  const int at_start = tier.SlotsAt(0.0);
  ASSERT_GT(at_start, 1);
  const auto older = tier.Request(at_start - 1, 0.0);
  const auto newer = tier.Request(1, 0.0);
  ASSERT_TRUE(older.has_value());
  ASSERT_TRUE(newer.has_value());
  // LIFO claims: the newest allocation holds the highest level and is
  // squeezed out at the first dip below it.
  EXPECT_EQ(tier.Get(*newer).claimed_level, at_start);
  EXPECT_LT(tier.Get(*older).claimed_level, at_start);
  const std::optional<SimTime> squeeze =
      tier.capacity_trace().FirstTimeBelow(at_start, 0.0, config.horizon);
  ASSERT_TRUE(squeeze.has_value());  // Diurnal swing guarantees a dip.
  EXPECT_DOUBLE_EQ(tier.Get(*newer).revocation_time, *squeeze);
  EXPECT_EQ(tier.Get(*newer).revocation_cause, ServerlessRevocationCause::kCapacity);
  EXPECT_LE(tier.Get(*newer).revocation_time, tier.Get(*older).revocation_time);
}

TEST(ServerlessTierTest, CauseNamesAreStable) {
  EXPECT_STREQ(ServerlessRevocationCauseName(ServerlessRevocationCause::kNone), "none");
  EXPECT_STREQ(ServerlessRevocationCauseName(ServerlessRevocationCause::kBurstCap),
               "burst-cap");
  EXPECT_STREQ(ServerlessRevocationCauseName(ServerlessRevocationCause::kStorm), "storm");
  EXPECT_STREQ(ServerlessRevocationCauseName(ServerlessRevocationCause::kCapacity),
               "capacity");
}

}  // namespace
}  // namespace proteus
