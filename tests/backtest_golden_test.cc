// Golden determinism: the backtest engine's per-cell CSV must be
// byte-identical for the same seed regardless of how many worker
// threads run the cells, and across repeated runs.
#include <gtest/gtest.h>

#include "src/backtest/backtest_engine.h"
#include "src/market/trace_gen.h"

namespace proteus {
namespace {

using backtest::BacktestConfig;
using backtest::BacktestEngine;
using backtest::BacktestReport;

class BacktestGoldenTest : public ::testing::Test {
 protected:
  BacktestGoldenTest() {
    catalog_ = InstanceTypeCatalog::Default();
    SyntheticTraceConfig config;
    config.spikes_per_day = 4.0;
    Rng rng(17);
    traces_ = TraceStore::GenerateSynthetic(catalog_, {"z0", "z1"}, 8 * kDay, config, rng);
    estimator_.Train(traces_, 0.0, 4 * kDay);
  }

  std::string RunCsv(int threads) const {
    BacktestEngine engine(&catalog_, &traces_, &estimator_);
    BacktestConfig config;
    config.eval_begin = 4 * kDay;
    config.eval_end = 8 * kDay;
    config.windows = 4;
    config.window_duration = kHour;
    config.start_jitter = kHour;
    config.reference_count = 8;
    config.scheme.standard_target_vcpus = 64;
    config.scheme.bidbrain.max_spot_instances = 24;
    config.threads = threads;
    config.seed = 99;
    EXPECT_TRUE(engine.RegisterPolicySpec("on_demand", config.scheme));
    EXPECT_TRUE(engine.RegisterPolicySpec("fixed_delta:0.01", config.scheme));
    EXPECT_TRUE(engine.RegisterPolicySpec("bidbrain", config.scheme));
    EXPECT_TRUE(engine.RegisterPolicySpec("oracle", config.scheme));
    const BacktestReport report = engine.Run(config);
    EXPECT_EQ(report.threads_used, threads);
    return report.ToCsv();
  }

  InstanceTypeCatalog catalog_;
  TraceStore traces_;
  EvictionEstimator estimator_;
};

TEST_F(BacktestGoldenTest, CsvIsByteIdenticalAcrossThreadCounts) {
  const std::string one = RunCsv(1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, RunCsv(2));
  EXPECT_EQ(one, RunCsv(4));
  EXPECT_EQ(one, RunCsv(8));
}

TEST_F(BacktestGoldenTest, CsvIsStableAcrossRepeatedRuns) {
  EXPECT_EQ(RunCsv(3), RunCsv(3));
}

TEST_F(BacktestGoldenTest, CsvHasOneRowPerCellPlusHeader) {
  const std::string csv = RunCsv(2);
  std::size_t lines = 0;
  for (const char c : csv) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, 1u + 4u * 4u);  // Header + 4 policies x 4 windows.
}

}  // namespace
}  // namespace proteus
