#include <gtest/gtest.h>

#include "src/market/preemptible.h"

namespace proteus {
namespace {

class PreemptibleTest : public ::testing::Test {
 protected:
  PreemptibleTest() : catalog_(InstanceTypeCatalog::Default()) {}

  PreemptibleMarket Make(PreemptibleConfig config = {}) {
    return PreemptibleMarket(catalog_, config, 71);
  }

  InstanceTypeCatalog catalog_;
};

TEST_F(PreemptibleTest, FixedSeventyPercentDiscount) {
  PreemptibleMarket market = Make();
  EXPECT_NEAR(market.PricePerHour("c4.xlarge"), 0.209 * 0.3, 1e-9);
}

TEST_F(PreemptibleTest, RevocationWithin24Hours) {
  PreemptibleConfig config;
  config.revocations_per_hour = 1e-9;  // Hazard ~never fires.
  PreemptibleMarket market = Make(config);
  const AllocationId id = market.Request("c4.xlarge", 4, 100.0);
  const PreemptibleAllocation& alloc = market.Get(id);
  EXPECT_NEAR(alloc.revocation_time, 100.0 + 24 * kHour, 1.0);
}

TEST_F(PreemptibleTest, HazardDrawsAreFiniteAndVaried) {
  PreemptibleConfig config;
  config.revocations_per_hour = 0.2;  // MTTR 5 hours.
  PreemptibleMarket market = Make(config);
  double total = 0.0;
  for (int i = 0; i < 50; ++i) {
    const AllocationId id = market.Request("c4.xlarge", 1, 0.0);
    const SimDuration life = market.Get(id).revocation_time;
    EXPECT_GT(life, 0.0);
    EXPECT_LE(life, 24 * kHour + 1.0);
    total += life;
  }
  // Mean lifetime near min(Exp(5h), 24h) ~ 5h, certainly under the cap.
  EXPECT_LT(total / 50, 12 * kHour);
}

TEST_F(PreemptibleTest, ThirtySecondWarning) {
  PreemptibleMarket market = Make();
  const AllocationId id = market.Request("c4.xlarge", 1, 0.0);
  EXPECT_NEAR(market.WarningTime(id), market.Get(id).revocation_time - 30.0, 1e-9);
}

TEST_F(PreemptibleTest, WarningClampedToAllocationStart) {
  // A lifetime shorter than the warning window cannot warn before the
  // allocation exists: the warning instant clamps to the start.
  PreemptibleConfig config;
  config.revocations_per_hour = 1e-9;
  config.max_lifetime = 20 * kSecond;  // Under the 30s warning.
  PreemptibleMarket market = Make(config);
  const AllocationId id = market.Request("c4.xlarge", 1, 500.0);
  EXPECT_DOUBLE_EQ(market.Get(id).revocation_time, 520.0);
  EXPECT_DOUBLE_EQ(market.WarningTime(id), 500.0);
}

TEST_F(PreemptibleTest, RevocationInsideWarningWindowStillBillsMinimum) {
  // The entire 20s lifetime sits inside the 30s warning window; GCE
  // billing does not care — the 10-minute minimum applies regardless.
  PreemptibleConfig config;
  config.revocations_per_hour = 1e-9;
  config.max_lifetime = 20 * kSecond;
  PreemptibleMarket market = Make(config);
  const AllocationId id = market.Request("c4.xlarge", 1, 0.0);
  market.MarkRevoked(id);
  EXPECT_EQ(market.Get(id).state, AllocationState::kEvicted);
  EXPECT_DOUBLE_EQ(market.Get(id).end, 20.0);
  EXPECT_NEAR(market.Bill(id, kDay),
              market.PricePerHour("c4.xlarge") * (10.0 / 60.0), 1e-9);
}

TEST_F(PreemptibleTest, PerMinuteBillingWithTenMinuteMinimum) {
  PreemptibleConfig config;
  config.revocations_per_hour = 1e-9;
  PreemptibleMarket market = Make(config);
  const Money rate = market.PricePerHour("c4.xlarge");
  // 3 minutes of use: charged the 10-minute minimum.
  const AllocationId a = market.Request("c4.xlarge", 2, 0.0);
  market.Terminate(a, 3 * kMinute);
  EXPECT_NEAR(market.Bill(a, kDay), rate * 2 * (10.0 / 60.0), 1e-9);
  // 61.5 minutes: rounded up to 62.
  const AllocationId b = market.Request("c4.xlarge", 1, 0.0);
  market.Terminate(b, 61.5 * kMinute);
  EXPECT_NEAR(market.Bill(b, kDay), rate * (62.0 / 60.0), 1e-9);
}

TEST_F(PreemptibleTest, NoRefundOnRevocation) {
  PreemptibleConfig config;
  config.revocations_per_hour = 0.5;
  PreemptibleMarket market = Make(config);
  const AllocationId id = market.Request("c4.xlarge", 1, 0.0);
  market.MarkRevoked(id);
  const PreemptibleAllocation& alloc = market.Get(id);
  EXPECT_EQ(alloc.state, AllocationState::kEvicted);
  // Unlike EC2, the used time is still billed.
  EXPECT_GT(market.Bill(id, kDay), 0.0);
}

TEST_F(PreemptibleTest, TerminateAfterRevocationBecomesRevocation) {
  PreemptibleConfig config;
  config.revocations_per_hour = 10.0;  // Revokes within minutes.
  PreemptibleMarket market = Make(config);
  const AllocationId id = market.Request("c4.xlarge", 1, 0.0);
  market.Terminate(id, 30 * kHour);  // Long after the cap.
  EXPECT_EQ(market.Get(id).state, AllocationState::kEvicted);
}

TEST_F(PreemptibleTest, TotalBillAggregates) {
  PreemptibleConfig config;
  config.revocations_per_hour = 1e-9;
  PreemptibleMarket market = Make(config);
  market.Request("c4.xlarge", 1, 0.0);
  market.Request("c4.2xlarge", 1, 0.0);
  const Money total = market.TotalBill(kHour);
  EXPECT_NEAR(total,
              market.PricePerHour("c4.xlarge") + market.PricePerHour("c4.2xlarge"), 1e-9);
}

}  // namespace
}  // namespace proteus
