#include <gtest/gtest.h>

#include <memory>

#include "src/agileml/runtime.h"
#include "src/apps/datasets.h"
#include "src/apps/mf.h"

namespace proteus {
namespace {

// Shared fixture: a small MF problem and helpers to build clusters.
class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() {
    RatingsConfig rc;
    rc.users = 600;
    rc.items = 300;
    rc.ratings = 30000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 16;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  AgileMLConfig Config() const {
    AgileMLConfig config;
    config.num_partitions = 16;
    config.data_blocks = 64;
    config.parallel_execution = false;
    return config;
  }

  static std::vector<NodeInfo> Cluster(int reliable, int transient, NodeId first_id = 0) {
    std::vector<NodeInfo> nodes;
    NodeId id = first_id;
    for (int i = 0; i < reliable; ++i) {
      nodes.push_back({id++, Tier::kReliable, 8, kInvalidAllocation});
    }
    for (int i = 0; i < transient; ++i) {
      nodes.push_back({id++, Tier::kTransient, 8, kInvalidAllocation});
    }
    return nodes;
  }

  static std::vector<NodeId> TransientIds(const AgileMLRuntime& runtime) {
    std::vector<NodeId> ids;
    for (const auto& node : runtime.nodes()) {
      if (!node.reliable()) {
        ids.push_back(node.id);
      }
    }
    return ids;
  }

  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_F(RuntimeTest, StagePickedFromInitialRatio) {
  AgileMLRuntime s1(app_.get(), Config(), Cluster(4, 4));
  EXPECT_EQ(s1.stage(), Stage::kStage1);
  MatrixFactorizationApp app2(&data_, MfConfig{});
  AgileMLRuntime s2(&app2, Config(), Cluster(4, 12));
  EXPECT_EQ(s2.stage(), Stage::kStage2);
  MatrixFactorizationApp app3(&data_, MfConfig{});
  AgileMLRuntime s3(&app3, Config(), Cluster(1, 31));
  EXPECT_EQ(s3.stage(), Stage::kStage3);
}

TEST_F(RuntimeTest, ClockAdvancesAndTimeAccrues) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(2, 2));
  const IterationReport report = runtime.RunClock();
  EXPECT_EQ(report.clock, 1);
  EXPECT_GT(report.duration, 0.0);
  EXPECT_GT(report.max_compute, 0.0);
  EXPECT_DOUBLE_EQ(runtime.total_time(), report.duration);
}

TEST_F(RuntimeTest, AddedNodesPreloadThenJoin) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(4, 0));
  runtime.RunClocks(3);
  runtime.AddNodes(Cluster(0, 8, /*first_id=*/100));
  EXPECT_EQ(runtime.PreparingCount(), 8);
  EXPECT_EQ(runtime.roles().worker_nodes.size(), 4u);  // Not yet joined.
  // Run until they finish preloading and get incorporated.
  for (int i = 0; i < 50 && runtime.PreparingCount() > 0; ++i) {
    runtime.RunClock();
  }
  EXPECT_EQ(runtime.PreparingCount(), 0);
  EXPECT_EQ(runtime.roles().worker_nodes.size(), 12u);
  EXPECT_EQ(runtime.stage(), Stage::kStage2);  // 8:4 ratio.
}

TEST_F(RuntimeTest, IncorporationCausesNoDisruption) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(4, 0));
  runtime.RunClocks(3);
  const SimDuration before = runtime.RunClock().duration;
  runtime.AddNodes(Cluster(0, 8, 100));
  // Clocks while preparing must not slow down (background preload).
  for (int i = 0; i < 3; ++i) {
    EXPECT_LT(runtime.RunClock().duration, before * 1.25);
  }
}

TEST_F(RuntimeTest, SpeedupAfterIncorporation) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(4, 0));
  runtime.RunClocks(2);
  const SimDuration small_cluster = runtime.RunClock().duration;
  runtime.AddNodes(Cluster(0, 12, 100));
  for (int i = 0; i < 60 && runtime.PreparingCount() > 0; ++i) {
    runtime.RunClock();
  }
  runtime.RunClock();  // Let the transition settle.
  const SimDuration big_cluster = runtime.RunClock().duration;
  EXPECT_LT(big_cluster, small_cluster);
}

TEST_F(RuntimeTest, PartialEvictionKeepsAllProgress) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(4, 12));
  runtime.RunClocks(5);
  const Clock before = runtime.clock();
  const auto transient = TransientIds(runtime);
  runtime.Evict({transient[0], transient[1], transient[2]});
  EXPECT_EQ(runtime.clock(), before);  // Warned eviction loses nothing.
  EXPECT_EQ(runtime.lost_clocks_total(), 0);
  EXPECT_TRUE(runtime.data().OwnershipIsComplete());
  EXPECT_EQ(runtime.roles().worker_nodes.size(), 13u);
  const double obj_before = runtime.ComputeObjective();
  runtime.RunClocks(5);
  EXPECT_LT(runtime.ComputeObjective(), obj_before);
}

TEST_F(RuntimeTest, FullTransientEvictionFallsBackToStage1) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(4, 12));
  EXPECT_EQ(runtime.stage(), Stage::kStage2);
  runtime.RunClocks(4);
  runtime.Evict(TransientIds(runtime));
  EXPECT_EQ(runtime.stage(), Stage::kStage1);
  EXPECT_EQ(runtime.roles().worker_nodes.size(), 4u);
  EXPECT_EQ(runtime.lost_clocks_total(), 0);
  const double obj = runtime.ComputeObjective();
  runtime.RunClocks(4);
  EXPECT_LT(runtime.ComputeObjective(), obj);
}

TEST_F(RuntimeTest, EvictionBlipThenRecovery) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(4, 12));
  runtime.RunClocks(5);
  const SimDuration steady = runtime.RunClock().duration;
  const auto transient = TransientIds(runtime);
  runtime.Evict({transient[0], transient[1], transient[2], transient[3]});
  // The eviction-handling clock pays foreground migration traffic.
  const SimDuration blip = runtime.RunClock().duration;
  EXPECT_GT(blip, steady * 0.9);
  // Subsequent clocks settle near the smaller-cluster steady state.
  runtime.RunClock();
  const SimDuration settled = runtime.RunClock().duration;
  EXPECT_LT(settled, blip * 1.5);
}

TEST_F(RuntimeTest, ActivePsFailureRollsBackToLastSync) {
  AgileMLConfig config = Config();
  config.backup_sync_every = 4;  // Make lost work observable.
  AgileMLRuntime runtime(app_.get(), config, Cluster(4, 12));
  EXPECT_EQ(runtime.stage(), Stage::kStage2);
  runtime.RunClocks(4);  // Sync happens at clock 4.
  runtime.RunClocks(3);  // Clocks 5..7 unsynced.
  ASSERT_EQ(runtime.clock(), 7);
  // Fail an ActivePS host without warning.
  const NodeId active = *runtime.roles().active_ps_nodes.begin();
  const int lost = runtime.Fail({active});
  EXPECT_EQ(lost, 3);
  EXPECT_EQ(runtime.clock(), 4);  // Rolled back to the consistent clock.
  EXPECT_EQ(runtime.lost_clocks_total(), 3);
  // Training continues and still converges.
  const double obj = runtime.ComputeObjective();
  runtime.RunClocks(6);
  EXPECT_LT(runtime.ComputeObjective(), obj);
}

TEST_F(RuntimeTest, PlainWorkerFailureLosesNothing) {
  AgileMLConfig config = Config();
  config.backup_sync_every = 4;
  AgileMLRuntime runtime(app_.get(), config, Cluster(4, 12));
  runtime.RunClocks(6);
  // Find a transient worker that hosts no ActivePS.
  NodeId victim = kInvalidNode;
  for (const NodeId id : TransientIds(runtime)) {
    if (runtime.roles().active_ps_nodes.count(id) == 0) {
      victim = id;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidNode);
  const int lost = runtime.Fail({victim});
  EXPECT_EQ(lost, 0);
  EXPECT_EQ(runtime.clock(), 6);
}

TEST_F(RuntimeTest, CheckpointRestoresAfterReliableFailureInStage1) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(4, 4));
  ASSERT_EQ(runtime.stage(), Stage::kStage1);
  runtime.RunClocks(3);
  runtime.CheckpointReliable();
  runtime.RunClocks(2);
  const int lost = runtime.Fail({0});  // Node 0 is a reliable ParamServ.
  EXPECT_EQ(lost, 2);
  EXPECT_EQ(runtime.clock(), 3);
  const double obj = runtime.ComputeObjective();
  runtime.RunClocks(4);
  EXPECT_LT(runtime.ComputeObjective(), obj);
}

TEST_F(RuntimeTest, EvictingPreparingNodeIsHarmless) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(4, 0));
  runtime.RunClock();
  runtime.AddNodes(Cluster(0, 2, 100));
  EXPECT_EQ(runtime.PreparingCount(), 2);
  runtime.Evict({100, 101});
  EXPECT_EQ(runtime.PreparingCount(), 0);
  EXPECT_EQ(runtime.roles().worker_nodes.size(), 4u);
  runtime.RunClocks(2);  // Still healthy.
  EXPECT_EQ(runtime.clock(), 3);
}

TEST_F(RuntimeTest, ObjectiveDecreasesThroughStageTransitions) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(4, 0));
  runtime.RunClocks(3);
  const double obj1 = runtime.ComputeObjective();
  runtime.AddNodes(Cluster(0, 12, 100));  // Will trigger stage 2.
  for (int i = 0; i < 60 && runtime.PreparingCount() > 0; ++i) {
    runtime.RunClock();
  }
  runtime.RunClocks(4);
  const double obj2 = runtime.ComputeObjective();
  EXPECT_LT(obj2, obj1);
  EXPECT_EQ(runtime.stage(), Stage::kStage2);
  runtime.Evict(TransientIds(runtime));  // Back to stage 1.
  runtime.RunClocks(4);
  EXPECT_LT(runtime.ComputeObjective(), obj2);
}


TEST_F(RuntimeTest, BisectionBandwidthFloorsIterationTime) {
  AgileMLConfig fast = Config();
  AgileMLRuntime unconstrained(app_.get(), fast, Cluster(4, 12));
  const SimDuration free_net = unconstrained.RunClock().duration;

  MatrixFactorizationApp app2(&data_, MfConfig{.rank = 16});
  AgileMLConfig slow = Config();
  slow.bisection_bandwidth = 1e6;  // 8 Mbps core: brutally oversubscribed.
  AgileMLRuntime constrained(&app2, slow, Cluster(4, 12));
  const SimDuration capped_net = constrained.RunClock().duration;
  EXPECT_GT(capped_net, free_net * 2.0);
}

TEST_F(RuntimeTest, WorkerNodesOwnAllDataAtAllTimes) {
  AgileMLRuntime runtime(app_.get(), Config(), Cluster(4, 8));
  runtime.RunClocks(2);
  std::int64_t total = 0;
  for (const NodeId w : runtime.roles().worker_nodes) {
    total += runtime.data().ItemCountOf(w);
  }
  EXPECT_EQ(total, data_.size());
}

}  // namespace
}  // namespace proteus
