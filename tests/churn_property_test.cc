// Property tests: AgileML invariants must hold through arbitrary
// sequences of bulk additions, warned evictions, and unwarned failures —
// the paper's whole premise is surviving exactly this churn.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/agileml/runtime.h"
#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/chaos/consistency_auditor.h"
#include "src/common/rng.h"

namespace proteus {
namespace {

class ChurnPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  ChurnPropertyTest() {
    RatingsConfig rc;
    rc.users = 500;
    rc.items = 200;
    rc.ratings = 20000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 8;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  void CheckInvariants(const AgileMLRuntime& runtime) {
    // 1. Every partition has exactly one serving owner among ready nodes.
    const RoleAssignment& roles = runtime.roles();
    std::set<NodeId> ready_ids;
    for (const auto& node : runtime.ReadyNodes()) {
      ready_ids.insert(node.id);
    }
    ASSERT_EQ(roles.server.size(),
              static_cast<std::size_t>(runtime.config().num_partitions));
    for (const auto& [part, server] : roles.server) {
      ASSERT_TRUE(ready_ids.count(server) > 0)
          << "partition " << part << " served by non-ready node " << server;
    }
    // 2. In stages 2/3 every partition has a reliable backup owner.
    if (roles.UsesBackups()) {
      for (const auto& [part, backup] : roles.backup) {
        ASSERT_TRUE(ready_ids.count(backup) > 0);
      }
    }
    // 3. Worker nodes own all input data exactly once.
    ASSERT_TRUE(runtime.data().OwnershipIsComplete());
    std::int64_t total = 0;
    for (const NodeId w : roles.worker_nodes) {
      ASSERT_TRUE(ready_ids.count(w) > 0);
      total += runtime.data().ItemCountOf(w);
    }
    ASSERT_EQ(total, data_.size());
    // 4. The reliable tier is never empty.
    ASSERT_GE(runtime.ReadyTierCounts().reliable, 1);
  }

  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_P(ChurnPropertyTest, InvariantsSurviveRandomChurn) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  AgileMLConfig config;
  config.num_partitions = 16;
  config.data_blocks = 128;
  config.parallel_execution = false;
  config.backup_sync_every = static_cast<int>(rng.UniformInt(1, 4));

  std::vector<NodeInfo> initial;
  const int reliable = static_cast<int>(rng.UniformInt(1, 4));
  for (NodeId id = 0; id < reliable; ++id) {
    initial.push_back({id, Tier::kReliable, 8, kInvalidAllocation});
  }
  AgileMLRuntime runtime(app_.get(), config, initial);
  NodeId next_id = 1000;

  for (int step = 0; step < 25; ++step) {
    const double dice = rng.Uniform();
    std::vector<NodeId> transient_ids;
    for (const auto& node : runtime.ReadyNodes()) {
      if (!node.reliable()) {
        transient_ids.push_back(node.id);
      }
    }
    if (dice < 0.40 || transient_ids.empty()) {
      // Bulk addition of 1-12 transient nodes.
      std::vector<NodeInfo> added;
      const int count = static_cast<int>(rng.UniformInt(1, 12));
      for (int i = 0; i < count; ++i) {
        added.push_back({next_id++, Tier::kTransient, 8, kInvalidAllocation});
      }
      runtime.AddNodes(added);
    } else if (dice < 0.70) {
      // Warned eviction of a random transient subset (possibly all).
      rng.Shuffle(transient_ids);
      const auto count = static_cast<std::size_t>(
          rng.UniformInt(1, static_cast<std::int64_t>(transient_ids.size())));
      transient_ids.resize(count);
      runtime.Evict(transient_ids);
    } else if (dice < 0.85) {
      // Unwarned failure of 1-3 transient nodes.
      rng.Shuffle(transient_ids);
      const auto count = std::min<std::size_t>(
          transient_ids.size(), static_cast<std::size_t>(rng.UniformInt(1, 3)));
      transient_ids.resize(count);
      runtime.Fail(transient_ids);
    }
    // Run a few clocks; invariants must hold at every boundary.
    const int clocks = static_cast<int>(rng.UniformInt(1, 3));
    for (int c = 0; c < clocks; ++c) {
      runtime.RunClock();
      CheckInvariants(runtime);
    }
  }

  // After all that churn, training still works.
  const double before = runtime.ComputeObjective();
  runtime.RunClocks(8);
  EXPECT_LT(runtime.ComputeObjective(), before);
}

TEST_P(ChurnPropertyTest, InvariantsSurviveSilentFailuresUnderChurn) {
  // Same churn soup, but failures are UNANNOUNCED: nodes go silent and
  // only the heartbeat detector notices. Invariants (and the auditor's
  // detector bounds) must hold at every clock while suspicions ripen,
  // nodes are confirmed dead, and short hangs recover.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  AgileMLConfig config;
  config.num_partitions = 16;
  config.data_blocks = 128;
  config.parallel_execution = false;
  config.backup_sync_every = static_cast<int>(rng.UniformInt(1, 4));
  config.detector.enabled = true;
  config.detector.suspect_after = 1;
  config.detector.confirm_after = static_cast<int>(rng.UniformInt(2, 4));

  std::vector<NodeInfo> initial;
  const int reliable = static_cast<int>(rng.UniformInt(2, 4));
  for (NodeId id = 0; id < reliable; ++id) {
    initial.push_back({id, Tier::kReliable, 8, kInvalidAllocation});
  }
  for (NodeId id = 100; id < 104; ++id) {
    initial.push_back({id, Tier::kTransient, 8, kInvalidAllocation});
  }
  AgileMLRuntime runtime(app_.get(), config, initial);
  ConsistencyAuditor auditor(&runtime);
  NodeId next_id = 1000;
  int confirmed_total = 0;

  for (int step = 0; step < 25; ++step) {
    const double dice = rng.Uniform();
    std::vector<NodeId> healthy_transient;
    std::vector<NodeId> silenced;
    for (const auto& node : runtime.ReadyNodes()) {
      if (node.reliable()) {
        continue;
      }
      if (runtime.IsSilencedNode(node.id)) {
        silenced.push_back(node.id);
      } else {
        healthy_transient.push_back(node.id);
      }
    }
    if (dice < 0.35 || healthy_transient.empty()) {
      std::vector<NodeInfo> added;
      const int count = static_cast<int>(rng.UniformInt(1, 8));
      for (int i = 0; i < count; ++i) {
        added.push_back({next_id++, Tier::kTransient, 8, kInvalidAllocation});
      }
      runtime.AddNodes(added);
    } else if (dice < 0.70) {
      // Silent failure: cut heartbeats on 1-2 healthy transient nodes.
      rng.Shuffle(healthy_transient);
      const auto count = std::min<std::size_t>(
          healthy_transient.size(), static_cast<std::size_t>(rng.UniformInt(1, 2)));
      for (std::size_t i = 0; i < count; ++i) {
        runtime.SetNodeSilent(healthy_transient[i], true);
      }
    } else if (dice < 0.80 && !silenced.empty()) {
      // Short hang: one silenced node comes back (false-positive path).
      runtime.SetNodeSilent(silenced[static_cast<std::size_t>(rng.UniformInt(
                                0, static_cast<std::int64_t>(silenced.size()) - 1))],
                            false);
    } else if (!healthy_transient.empty()) {
      // Announced eviction still mixes in.
      rng.Shuffle(healthy_transient);
      runtime.Evict({healthy_transient[0]});
    }
    const int clocks = static_cast<int>(rng.UniformInt(1, 4));
    for (int c = 0; c < clocks; ++c) {
      const IterationReport report = runtime.RunClock();
      confirmed_total += static_cast<int>(report.confirmed_dead.size());
      auditor.ObserveClock();
      ASSERT_TRUE(auditor.ok()) << "seed " << GetParam() << " step " << step
                                << ":\n"
                                << auditor.Report();
      CheckInvariants(runtime);
    }
  }
  // The detector actually fired across the run (confirm_after <= 4 and
  // plenty of permanently silenced nodes guarantee confirmations).
  EXPECT_GT(confirmed_total + static_cast<int>(runtime.failure_detector().false_positives()), 0)
      << "churn never exercised the detector";

  // Convergence: silently losing nodes must not poison training.
  const double before = runtime.ComputeObjective();
  runtime.RunClocks(8);
  EXPECT_LT(runtime.ComputeObjective(), before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnPropertyTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace proteus
