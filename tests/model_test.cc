#include <gtest/gtest.h>

#include "src/ps/model.h"

namespace proteus {
namespace {

std::vector<TableSpec> TwoTables() {
  return {{0, 100, 4, 0.0F, 0.1F}, {1, 50, 8, 1.0F, 0.0F}};
}

TEST(ModelStore, LazyInitIsDeterministic) {
  ModelStore a(TwoTables(), 8, 7);
  ModelStore b(TwoTables(), 8, 7);
  std::vector<float> va;
  std::vector<float> vb;
  a.ReadRow(0, 42, va);
  b.ReadRow(0, 42, vb);
  EXPECT_EQ(va, vb);
  ASSERT_EQ(va.size(), 4u);
  for (float v : va) {
    EXPECT_LE(std::abs(v), 0.1F);
  }
}

TEST(ModelStore, LazyInitIndependentOfAccessOrder) {
  ModelStore a(TwoTables(), 8, 7);
  ModelStore b(TwoTables(), 8, 7);
  std::vector<float> tmp;
  b.ReadRow(0, 1, tmp);  // Touch another row first in b.
  std::vector<float> va;
  std::vector<float> vb;
  a.ReadRow(0, 42, va);
  b.ReadRow(0, 42, vb);
  EXPECT_EQ(va, vb);
}

TEST(ModelStore, JitterFreeTableInitsToValue) {
  ModelStore m(TwoTables(), 8, 7);
  std::vector<float> v;
  m.ReadRow(1, 3, v);
  ASSERT_EQ(v.size(), 8u);
  for (float x : v) {
    EXPECT_FLOAT_EQ(x, 1.0F);
  }
}

TEST(ModelStore, ApplyDeltaAccumulates) {
  ModelStore m(TwoTables(), 8, 7);
  const std::vector<float> delta{1.0F, 2.0F, 3.0F, 4.0F, 5.0F, 6.0F, 7.0F, 8.0F};
  m.ApplyDelta(1, 0, delta);
  m.ApplyDelta(1, 0, delta);
  std::vector<float> v;
  m.ReadRow(1, 0, v);
  EXPECT_FLOAT_EQ(v[0], 3.0F);  // 1.0 init + 2x1.0.
  EXPECT_FLOAT_EQ(v[7], 17.0F);
}

TEST(ModelStore, PartitionOfIsStableAndInRange) {
  ModelStore m(TwoTables(), 8, 7);
  for (std::int64_t r = 0; r < 100; ++r) {
    const PartitionId p = m.PartitionOf(0, r);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 8);
    EXPECT_EQ(p, m.PartitionOf(0, r));
  }
}

TEST(ModelStore, RowBytesIncludesOverhead) {
  ModelStore m(TwoTables(), 8, 7);
  EXPECT_EQ(m.RowBytes(0), 4 * sizeof(float) + kRowWireOverhead);
  EXPECT_EQ(m.ModelBytes(), 100 * m.RowBytes(0) + 50 * m.RowBytes(1));
}

TEST(ModelStore, SyncClearsDirtyAndReportsBytes) {
  ModelStore m(TwoTables(), 4, 7);
  m.EnableBackups();
  const std::vector<float> delta(4, 1.0F);
  m.ApplyDelta(0, 0, delta);
  const PartitionId p = m.PartitionOf(0, 0);
  EXPECT_EQ(m.DirtyBytes(p), m.RowBytes(0));
  EXPECT_EQ(m.SyncPartitionToBackup(p), m.RowBytes(0));
  EXPECT_EQ(m.DirtyBytes(p), 0u);
  EXPECT_EQ(m.SyncPartitionToBackup(p), 0u);  // Nothing dirty anymore.
}

TEST(ModelStore, RollbackRestoresBackupState) {
  ModelStore m(TwoTables(), 4, 7);
  std::vector<float> before;
  m.ReadRow(0, 5, before);
  m.EnableBackups();
  const std::vector<float> delta(4, 2.0F);
  m.ApplyDelta(0, 5, delta);
  m.RollbackPartitionToBackup(m.PartitionOf(0, 5));
  std::vector<float> after;
  m.ReadRow(0, 5, after);
  EXPECT_EQ(before, after);
}

TEST(ModelStore, RollbackKeepsSyncedChanges) {
  ModelStore m(TwoTables(), 4, 7);
  m.EnableBackups();
  const std::vector<float> delta(4, 2.0F);
  m.ApplyDelta(0, 5, delta);
  m.SyncPartitionToBackup(m.PartitionOf(0, 5));
  m.ApplyDelta(0, 5, delta);  // Unsynced second delta.
  m.RollbackAllToBackup();
  std::vector<float> v;
  m.ReadRow(0, 5, v);
  std::vector<float> fresh;
  ModelStore clean(TwoTables(), 4, 7);
  clean.ReadRow(0, 5, fresh);
  EXPECT_FLOAT_EQ(v[0], fresh[0] + 2.0F);  // First delta survived.
}

TEST(ModelStore, RollbackDropsRowsCreatedAfterSync) {
  ModelStore m(TwoTables(), 4, 7);
  m.EnableBackups();
  const std::vector<float> delta(4, 2.0F);
  m.ApplyDelta(0, 7, delta);  // Materializes after backup snapshot.
  m.RollbackAllToBackup();
  std::vector<float> v;
  m.ReadRow(0, 7, v);  // Lazy re-init must give the original value.
  ModelStore clean(TwoTables(), 4, 7);
  std::vector<float> fresh;
  clean.ReadRow(0, 7, fresh);
  EXPECT_EQ(v, fresh);
}

TEST(ModelStore, CheckpointRoundTrip) {
  ModelStore m(TwoTables(), 4, 7);
  const std::vector<float> delta(4, 3.0F);
  m.ApplyDelta(0, 1, delta);
  m.ApplyDelta(0, 2, delta);
  const auto blob = m.SerializeCheckpoint();
  const std::vector<float> more(4, 9.0F);
  m.ApplyDelta(0, 1, more);
  m.RestoreCheckpoint(blob);
  std::vector<float> v;
  m.ReadRow(0, 1, v);
  ModelStore expect(TwoTables(), 4, 7);
  std::vector<float> e;
  expect.ReadRow(0, 1, e);
  EXPECT_FLOAT_EQ(v[0], e[0] + 3.0F);
}

TEST(ModelStore, ForEachRowVisitsMaterializedRows) {
  ModelStore m(TwoTables(), 4, 7);
  std::vector<float> tmp;
  m.ReadRow(0, 1, tmp);
  m.ReadRow(0, 2, tmp);
  m.ReadRow(1, 0, tmp);
  int count = 0;
  m.ForEachRow(0, [&](std::int64_t, std::span<const float>) { ++count; });
  EXPECT_EQ(count, 2);
  EXPECT_EQ(m.MaterializedRows(), 3u);
}

TEST(ModelStore, PartitionBytesCountsMaterializedRows) {
  ModelStore m(TwoTables(), 1, 7);  // Single partition.
  std::vector<float> tmp;
  m.ReadRow(0, 1, tmp);
  m.ReadRow(1, 1, tmp);
  EXPECT_EQ(m.PartitionBytes(0), m.RowBytes(0) + m.RowBytes(1));
}

// --- Lock-striped fast-path invariants (ModelOptions::shards >= 2) ---
// Full cross-engine differentials live in tests/ps_differential_test.cc;
// these pin the fast path's own contracts.

ModelStore Striped(int shards, int num_partitions = 8) {
  ModelOptions options;
  options.shards = shards;
  return ModelStore(TwoTables(), num_partitions, 7, options);
}

TEST(ModelStore, ShardsClampToPartitionCount) {
  ModelStore m = Striped(/*shards=*/64, /*num_partitions=*/4);
  EXPECT_EQ(m.shards(), 4);
  for (PartitionId p = 0; p < 4; ++p) {
    EXPECT_EQ(m.ShardOfPartition(p), p % m.shards());
  }
}

TEST(ModelStore, StripedDirtyBytesUseCoalescedAccounting) {
  ModelStore m = Striped(4);
  m.EnableBackups();
  const std::vector<float> delta(4, 1.0F);
  m.ApplyDelta(0, 0, delta);
  const PartitionId p = m.PartitionOf(0, 0);
  // One dirty row: exactly the bytes of its coalesced payload, which is
  // far below the legacy per-row framing.
  EXPECT_EQ(m.DirtyBytes(p), m.EncodeDirtyRows(p).size());
  EXPECT_LT(m.DirtyBytes(p), m.RowBytes(0));
  EXPECT_EQ(m.SyncPartitionToBackup(p), m.EncodeDirtyRows(p).size());
  EXPECT_EQ(m.DirtyBytes(p), 0u);
}

TEST(ModelStore, StripedCheckpointMatchesLegacy) {
  ModelStore legacy(TwoTables(), 8, 7);
  ModelStore striped = Striped(4);
  const std::vector<float> d0(4, 0.5F);
  const std::vector<float> d1(8, -0.5F);
  for (std::int64_t r = 0; r < 100; ++r) {
    legacy.ApplyDelta(0, r, d0);
    striped.ApplyDelta(0, r, d0);
  }
  for (std::int64_t r = 0; r < 50; ++r) {
    legacy.ApplyDelta(1, r, d1);
    striped.ApplyDelta(1, r, d1);
  }
  EXPECT_EQ(striped.SerializeCheckpoint(), legacy.SerializeCheckpoint());
}

TEST(ModelStore, StripedRestoreInvalidatesBackup) {
  ModelStore m = Striped(4);
  m.EnableBackups();
  ASSERT_TRUE(m.backups_enabled());
  m.RestoreCheckpoint(m.SerializeCheckpoint());
  EXPECT_FALSE(m.backups_enabled());  // Caller must re-EnableBackups().
}

TEST(ModelStore, ShardStateReflectsRowPlacement) {
  ModelStore m = Striped(4);
  const std::vector<float> delta(4, 1.0F);
  // Table 0 rows land round-robin over partitions; partition p lives in
  // shard p % 4. Touch rows of one known partition only.
  std::int64_t row = -1;
  for (std::int64_t r = 0; r < 100; ++r) {
    if (m.PartitionOf(0, r) == 2) {
      row = r;
      break;
    }
  }
  ASSERT_GE(row, 0);
  m.ApplyDelta(0, row, delta);
  EXPECT_EQ(m.ShardStateOf(2).live_rows, 1u);
  EXPECT_EQ(m.ShardStateOf(3).live_rows, 0u);
  EXPECT_EQ(m.MaterializedRows(), 1u);
  // One populated shard out of four: imbalance is max/mean = 4.
  EXPECT_DOUBLE_EQ(m.ShardImbalance(), 4.0);
}

TEST(ModelStore, StripedRollbackRetiresArenaSlots) {
  ModelStore m = Striped(4);
  m.EnableBackups();
  const std::vector<float> delta(4, 2.0F);
  m.ApplyDelta(0, 7, delta);  // Materialized after the backup snapshot.
  ASSERT_EQ(m.MaterializedRows(), 1u);
  m.RollbackAllToBackup();
  EXPECT_EQ(m.MaterializedRows(), 0u);  // Slot retired, row dropped.
  std::vector<float> v;
  m.ReadRow(0, 7, v);  // Lazy re-init must give the pristine value.
  ModelStore clean(TwoTables(), 8, 7);
  std::vector<float> fresh;
  clean.ReadRow(0, 7, fresh);
  EXPECT_EQ(v, fresh);
  EXPECT_EQ(m.MaterializedRows(), 1u);  // Re-materialized cleanly.
}

}  // namespace
}  // namespace proteus
