// Unit tests for the chaos layer: seeded fault schedules, the Channel
// fault hook, the consistency auditor's detection power, and the chaos
// harness's per-fault-class behavior.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/chaos/consistency_auditor.h"
#include "src/chaos/fault_injector.h"
#include "src/chaos/harness.h"

namespace proteus {
namespace {

// --- FaultInjector ---

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultScheduleConfig config;
  FaultInjector a(42, config);
  FaultInjector b(42, config);
  ASSERT_EQ(a.schedule().size(), b.schedule().size());
  for (std::size_t i = 0; i < a.schedule().size(); ++i) {
    EXPECT_EQ(a.schedule()[i].cls, b.schedule()[i].cls);
    EXPECT_EQ(a.schedule()[i].at_clock, b.schedule()[i].at_clock);
    EXPECT_EQ(a.schedule()[i].magnitude, b.schedule()[i].magnitude);
  }
}

TEST(FaultInjectorTest, DifferentSeedsDiffer) {
  FaultScheduleConfig config;
  config.events = 12;
  FaultInjector a(1, config);
  FaultInjector b(2, config);
  bool differs = false;
  for (std::size_t i = 0; i < a.schedule().size(); ++i) {
    if (a.schedule()[i].cls != b.schedule()[i].cls ||
        a.schedule()[i].at_clock != b.schedule()[i].at_clock) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjectorTest, EnoughEventsCoverAllClasses) {
  FaultScheduleConfig config;
  config.events = kNumFaultClasses;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    FaultInjector injector(seed, config);
    std::set<FaultClass> seen;
    for (const FaultEvent& event : injector.schedule()) {
      seen.insert(event.cls);
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumFaultClasses))
        << "seed " << seed << " missed a fault class";
  }
}

TEST(FaultInjectorTest, EventsRespectHorizonMargins) {
  FaultScheduleConfig config;
  config.horizon = 30;
  config.events = 40;
  FaultInjector injector(7, config);
  Clock prev = 0;
  for (const FaultEvent& event : injector.schedule()) {
    EXPECT_GE(event.at_clock, 1);           // Clock 0 is fault-free start-up.
    EXPECT_LE(event.at_clock, 27);          // Last two clocks show recovery.
    EXPECT_GE(event.at_clock, prev);        // Sorted by firing boundary.
    prev = event.at_clock;
  }
  // EventsAt partitions the schedule.
  std::size_t total = 0;
  for (Clock c = 0; c < config.horizon; ++c) {
    total += injector.EventsAt(c).size();
  }
  EXPECT_EQ(total, injector.schedule().size());
}

// --- Channel fault hook ---

TEST(ChannelFaultTest, DropHookLosesMessagesAccountably) {
  Channel channel;
  channel.SetFaultHook(
      [](const Message&) { return ChannelFault{ChannelFault::Action::kDrop, 0}; });
  channel.Send(Message(ReadParamMsg{0, 1}));
  channel.Send(Message(ReadParamMsg{0, 2}));
  EXPECT_FALSE(channel.Poll().has_value());
  EXPECT_EQ(channel.messages_sent(), 2u);
  EXPECT_EQ(channel.messages_dropped(), 2u);
  EXPECT_EQ(channel.messages_delivered(), 0u);
  EXPECT_EQ(channel.pending(), 0u);
  // Conservation: sent == delivered + dropped + pending.
  EXPECT_EQ(channel.messages_sent(),
            channel.messages_delivered() + channel.messages_dropped() + channel.pending());
}

TEST(ChannelFaultTest, DelayedFrameIsOvertaken) {
  Channel channel;
  int calls = 0;
  channel.SetFaultHook([&calls](const Message&) {
    // Delay only the first message; later ones flow normally.
    ++calls;
    if (calls == 1) {
      return ChannelFault{ChannelFault::Action::kDelay, 1};
    }
    return ChannelFault{ChannelFault::Action::kDeliver, 0};
  });
  channel.Send(Message(ReadParamMsg{0, 111}));  // Held for 1 poll.
  channel.Send(Message(ReadParamMsg{0, 222}));
  // First poll: the delayed frame ages but cannot go; 222 overtakes it.
  auto first = channel.Poll();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(std::get<ReadParamMsg>(*first).row, 222);
  // The hold expired during the overtaking poll; 111 goes next.
  auto second = channel.Poll();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(std::get<ReadParamMsg>(*second).row, 111);
  EXPECT_EQ(channel.messages_delayed(), 1u);
  EXPECT_EQ(channel.messages_delivered(), 2u);
  EXPECT_EQ(channel.pending(), 0u);
}

TEST(ChannelFaultTest, ClearingHookRestoresNormalDelivery) {
  Channel channel;
  channel.SetFaultHook(
      [](const Message&) { return ChannelFault{ChannelFault::Action::kDrop, 0}; });
  channel.Send(Message(ReadParamMsg{0, 1}));
  channel.SetFaultHook(nullptr);
  channel.Send(Message(ReadParamMsg{0, 2}));
  auto got = channel.Poll();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(std::get<ReadParamMsg>(*got).row, 2);
}

TEST(ChannelFaultTest, InjectorHookIsDeterministic) {
  FaultScheduleConfig config;
  FaultInjector a(9, config);
  FaultInjector b(9, config);
  ChannelFaultHook hook_a = a.MakeChannelFaultHook(400);
  ChannelFaultHook hook_b = b.MakeChannelFaultHook(400);
  const Message msg(ReadParamMsg{0, 0});
  for (int i = 0; i < 200; ++i) {
    const ChannelFault fa = hook_a(msg);
    const ChannelFault fb = hook_b(msg);
    EXPECT_EQ(static_cast<int>(fa.action), static_cast<int>(fb.action));
    EXPECT_EQ(fa.delay_polls, fb.delay_polls);
  }
}

// --- ConsistencyAuditor ---

class AuditorTest : public ::testing::Test {
 protected:
  AuditorTest() {
    RatingsConfig rc;
    rc.users = 200;
    rc.items = 100;
    rc.ratings = 5000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 4;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  AgileMLConfig Config() const {
    AgileMLConfig config;
    config.num_partitions = 8;
    config.data_blocks = 32;
    config.parallel_execution = false;
    return config;
  }

  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_F(AuditorTest, CleanRunHasNoViolations) {
  std::vector<NodeInfo> nodes;
  for (NodeId id = 0; id < 2; ++id) {
    nodes.push_back({id, Tier::kReliable, 8, kInvalidAllocation});
  }
  for (NodeId id = 2; id < 6; ++id) {
    nodes.push_back({id, Tier::kTransient, 8, kInvalidAllocation});
  }
  AgileMLRuntime runtime(app_.get(), Config(), nodes);
  ConsistencyAuditor auditor(&runtime);
  for (int i = 0; i < 6; ++i) {
    runtime.RunClock();
    auditor.ObserveClock();
  }
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
  EXPECT_EQ(auditor.Report(), "no violations");
}

TEST_F(AuditorTest, DetectsMissingProgress) {
  std::vector<NodeInfo> nodes;
  nodes.push_back({0, Tier::kReliable, 8, kInvalidAllocation});
  AgileMLRuntime runtime(app_.get(), Config(), nodes);
  ConsistencyAuditor auditor(&runtime);
  runtime.RunClock();
  auditor.ObserveClock();
  ASSERT_TRUE(auditor.ok());
  // A second observation without an executed clock means the completed
  // count failed to advance — the auditor must flag it.
  auditor.ObserveClock();
  ASSERT_FALSE(auditor.ok());
  EXPECT_EQ(auditor.violations().back().invariant, "progress-accounting");
}

TEST_F(AuditorTest, ReportTruncatesLongViolationLists) {
  std::vector<NodeInfo> nodes;
  nodes.push_back({0, Tier::kReliable, 8, kInvalidAllocation});
  AgileMLRuntime runtime(app_.get(), Config(), nodes);
  ConsistencyAuditor auditor(&runtime);
  runtime.RunClock();
  auditor.ObserveClock();
  for (int i = 0; i < 5; ++i) {
    auditor.ObserveClock();  // Each adds a progress violation.
  }
  const std::string report = auditor.Report(/*max_items=*/2);
  EXPECT_NE(report.find("violation(s):"), std::string::npos);
  EXPECT_NE(report.find("and 3 more"), std::string::npos);
}

// --- ChaosHarness ---

class HarnessTest : public ::testing::Test {
 protected:
  HarnessTest() {
    RatingsConfig rc;
    rc.users = 300;
    rc.items = 150;
    rc.ratings = 10000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 4;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  ChaosConfig Config(std::uint64_t seed) const {
    ChaosConfig config;
    config.agileml.num_partitions = 8;
    config.agileml.data_blocks = 64;
    config.agileml.parallel_execution = false;
    config.agileml.backup_sync_every = 3;
    config.agileml.seed = seed;
    config.schedule.horizon = 30;
    config.schedule.events = 8;
    config.seed = seed;
    return config;
  }

  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_F(HarnessTest, FullScheduleRunsCleanly) {
  ChaosHarness harness(app_.get(), Config(3));
  const ChaosRunResult result = harness.Run();
  EXPECT_TRUE(result.ok()) << harness.auditor().Report();
  EXPECT_EQ(result.clocks_run, 30);
  // Completed-clock conservation at the end of the run.
  EXPECT_EQ(result.final_clock + result.lost_clocks_total, result.clocks_run);
  int applied = 0;
  for (const FaultClassStats& stats : result.per_class) {
    applied += stats.events;
  }
  EXPECT_GE(applied, 4) << "most scheduled events should find their preconditions";
  EXPECT_GT(result.virtual_time, 0.0);
  EXPECT_GT(result.control_sent, 0u);
}

TEST_F(HarnessTest, SameSeedSameDigest) {
  ChaosHarness a(app_.get(), Config(17));
  ChaosHarness b(app_.get(), Config(17));
  const ChaosRunResult ra = a.Run();
  const ChaosRunResult rb = b.Run();
  EXPECT_EQ(ra.Digest(), rb.Digest());
  EXPECT_EQ(ra.final_objective, rb.final_objective);
  EXPECT_EQ(ra.control_log_summary, rb.control_log_summary);
}

TEST_F(HarnessTest, DifferentSeedsDiverge) {
  ChaosHarness a(app_.get(), Config(5));
  ChaosHarness b(app_.get(), Config(6));
  EXPECT_NE(a.Run().Digest(), b.Run().Digest());
}

TEST_F(HarnessTest, TrainingStillConvergesUnderChaos) {
  ChaosConfig config = Config(11);
  config.schedule.horizon = 40;
  ChaosHarness harness(app_.get(), config);
  const double before = harness.runtime().ComputeObjective();
  const ChaosRunResult result = harness.Run();
  EXPECT_TRUE(result.ok()) << harness.auditor().Report();
  EXPECT_LT(result.final_objective, before)
      << "the model must still converge through the fault schedule";
}

}  // namespace
}  // namespace proteus
