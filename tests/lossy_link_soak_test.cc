// Lossy-link soak (ctest label: "soak"): across a corpus of seeds, the
// reliable transport must reproduce the fault-free model digest exactly
// — drops, reorders, duplicates, and blackhole windows all masked —
// with zero auditor violations, while the same faults over the raw
// channel keep diverging (proving the corpus is actually adversarial).
#include <gtest/gtest.h>

#include <memory>

#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/chaos/lossy_link.h"

namespace proteus {
namespace {

class LossyLinkSoakTest : public ::testing::Test {
 protected:
  LossyLinkSoakTest() {
    RatingsConfig rc;
    rc.users = 300;
    rc.items = 150;
    rc.ratings = 10000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 4;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  LossyLinkConfig Config(std::uint64_t seed) const {
    LossyLinkConfig config;
    config.agileml.num_partitions = 8;
    config.agileml.data_blocks = 64;
    config.agileml.parallel_execution = false;
    config.agileml.backup_sync_every = 3;
    config.agileml.seed = seed;
    config.horizon = 30;
    config.command_every = 2;
    config.seed = seed;
    return config;
  }

  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_F(LossyLinkSoakTest, ReliableDigestMatchesFaultFreeAcrossSeeds) {
  constexpr int kSeeds = 25;
  std::uint64_t total_retransmits = 0;
  std::uint64_t total_dup_suppressed = 0;
  int divergent_raw_runs = 0;
  for (int s = 0; s < kSeeds; ++s) {
    const std::uint64_t seed = 5000 + static_cast<std::uint64_t>(s);
    LossyLinkConfig clean = Config(seed);
    clean.reliable = false;
    const LossyLinkResult baseline = RunLossyLink(app_.get(), clean);
    ASSERT_TRUE(baseline.ok()) << "seed " << seed;

    LinkFaultProfile profile;
    profile.drop_permille = 200 + 25 * (s % 5);
    profile.delay_permille = 150;
    profile.dup_permille = 100 + 20 * (s % 3);
    profile.blackhole_every = 15 + s % 10;
    profile.blackhole_len = 2 + s % 2;

    LossyLinkConfig lossy = Config(seed);
    lossy.link = profile;
    lossy.reliable = true;
    const LossyLinkResult masked = RunLossyLink(app_.get(), lossy);
    ASSERT_TRUE(masked.ok()) << "seed " << seed;
    ASSERT_EQ(masked.model_digest, baseline.model_digest)
        << "seed " << seed << ": reliable transport failed to mask the link";
    ASSERT_EQ(masked.commands_applied, baseline.commands_applied) << "seed " << seed;
    total_retransmits += masked.retransmits;
    total_dup_suppressed += masked.dup_suppressed;

    LossyLinkConfig raw = Config(seed);
    raw.link = profile;
    raw.reliable = false;
    const LossyLinkResult unmasked = RunLossyLink(app_.get(), raw);
    ASSERT_TRUE(unmasked.ok()) << "seed " << seed;
    if (unmasked.model_digest != baseline.model_digest) {
      ++divergent_raw_runs;
    }
  }
  // The corpus only proves something if the faults had teeth.
  EXPECT_GT(total_retransmits, 0U);
  EXPECT_GT(total_dup_suppressed, 0U);
  EXPECT_GT(divergent_raw_runs, kSeeds / 2)
      << "faults too mild: raw runs mostly matched the baseline anyway";
}

}  // namespace
}  // namespace proteus
