#include <gtest/gtest.h>

#include "src/bidbrain/bidbrain.h"
#include "src/market/trace_gen.h"

namespace proteus {
namespace {

class BidBrainTest : public ::testing::Test {
 protected:
  BidBrainTest() : catalog_(InstanceTypeCatalog::Default()) {
    SyntheticTraceConfig config;
    config.spikes_per_day = 3.0;
    Rng rng(31);
    traces_ =
        TraceStore::GenerateSynthetic(catalog_, {"z0", "z1"}, 40 * kDay, config, rng);
    estimator_.Train(traces_, 0.0, 20 * kDay);  // Train on the first half.
  }

  BidBrain Make(BidBrainConfig config = {}) const {
    return BidBrain(&catalog_, &traces_, &estimator_, config);
  }

  static LiveAllocation OnDemand(const MarketKey& key, int count) {
    return {0, key, count, 0.0, /*on_demand=*/true, 0.0};
  }

  InstanceTypeCatalog catalog_;
  TraceStore traces_;
  EvictionEstimator estimator_;
};

TEST_F(BidBrainTest, BootstrapsFromOnDemandOnlyFootprint) {
  const BidBrain brain = Make();
  // On-demand produces no work, so cost-per-work is infinite and any
  // finite-cost spot allocation helps.
  const auto actions =
      brain.Decide(21 * kDay, {OnDemand({"z0", "c4.xlarge"}, 3)});
  ASSERT_FALSE(actions.empty());
  EXPECT_EQ(actions[0].kind, BidAction::Kind::kAcquire);
  EXPECT_GT(actions[0].count, 0);
  // The bid must be above the market price at decision time.
  EXPECT_GT(actions[0].bid, traces_.Get(actions[0].market).PriceAt(21 * kDay));
}

TEST_F(BidBrainTest, RespectsSpotInstanceCap) {
  BidBrainConfig config;
  config.max_spot_instances = 8;
  config.allocation_quantum = 16;
  const BidBrain brain = Make(config);
  std::vector<LiveAllocation> live{OnDemand({"z0", "c4.xlarge"}, 3)};
  live.push_back({1, {"z0", "c4.xlarge"}, 8, 0.3, false, 21 * kDay - kHour / 2});
  for (const auto& action : brain.Decide(21 * kDay, live)) {
    EXPECT_NE(action.kind, BidAction::Kind::kAcquire) << "cap exceeded";
  }
}

TEST_F(BidBrainTest, AcquiresAtMostQuantumPerDecision) {
  BidBrainConfig config;
  config.allocation_quantum = 4;
  const BidBrain brain = Make(config);
  const auto actions = brain.Decide(21 * kDay, {OnDemand({"z0", "c4.xlarge"}, 3)});
  ASSERT_FALSE(actions.empty());
  EXPECT_LE(actions[0].count, 4);
}

TEST_F(BidBrainTest, LargeResizeOverheadBlocksAcquisition) {
  // sigma (Eq. 2) penalizes every allocation's useful time when the
  // footprint changes; with a severe resize overhead, growing the
  // footprint hurts cost-per-work and BidBrain must hold steady.
  TraceStore store;
  store.Put({"z0", "c4.xlarge"}, PriceSeries({{0.0, 0.15}}));  // Flat, calm.
  EvictionEstimator est;
  est.Train(store, 0.0, 12 * kHour, 10 * kMinute);
  BidBrainConfig config;
  config.app.sigma = 45 * kMinute;  // Pathological resize cost.
  BidBrain brain(&catalog_, &store, &est, config);
  std::vector<LiveAllocation> live{OnDemand({"z0", "c4.xlarge"}, 3)};
  live.push_back({1, {"z0", "c4.xlarge"}, 12, 0.3, false, 0.0});
  int acquisitions = 0;
  for (const auto& action : brain.Decide(10 * kMinute, live)) {
    if (action.kind == BidAction::Kind::kAcquire) {
      ++acquisitions;
    }
  }
  EXPECT_EQ(acquisitions, 0);
}

TEST_F(BidBrainTest, RenewalTerminatesWhenPriceSpikes) {
  // Build a bespoke store where z0 spikes above on-demand right before
  // the allocation's billing hour ends, while z1 stays cheap.
  TraceStore store;
  store.Put({"z0", "c4.xlarge"},
            PriceSeries({{0.0, 0.05}, {0.9 * kHour, 0.35}}));  // Expensive now.
  store.Put({"z1", "c4.xlarge"}, PriceSeries({{0.0, 0.05}}));
  EvictionEstimator est;
  est.Train(store, 0.0, 0.0 + 12 * kHour, 10 * kMinute);
  BidBrain brain(&catalog_, &store, &est, BidBrainConfig{});
  std::vector<LiveAllocation> live{OnDemand({"z0", "c4.xlarge"}, 3)};
  // Spot allocation in z0 started at t=0; at t=58min its hour is ending
  // and z0 now costs 0.35/hr (above on-demand 0.209).
  live.push_back({1, {"z0", "c4.xlarge"}, 16, 0.5, false, 0.0});
  const auto actions = brain.Decide(58 * kMinute, live);
  bool terminated = false;
  for (const auto& action : actions) {
    if (action.kind == BidAction::Kind::kTerminate && action.target == 1) {
      terminated = true;
    }
  }
  EXPECT_TRUE(terminated);
}

TEST_F(BidBrainTest, NeverTerminatesOnDemand) {
  const BidBrain brain = Make();
  // On-demand allocation approaching its hour boundary.
  const auto actions =
      brain.Decide(59 * kMinute, {OnDemand({"z0", "c4.xlarge"}, 3)});
  for (const auto& action : actions) {
    EXPECT_NE(action.kind, BidAction::Kind::kTerminate);
  }
}

TEST_F(BidBrainTest, FootprintCostPerWorkFiniteWithSpot) {
  const BidBrain brain = Make();
  std::vector<LiveAllocation> live{OnDemand({"z0", "c4.xlarge"}, 3)};
  live.push_back({1, {"z0", "c4.xlarge"}, 8, 0.3, false, 21 * kDay});
  const double cpw = brain.FootprintCostPerWork(21 * kDay + kMinute, live);
  EXPECT_GT(cpw, 0.0);
  EXPECT_TRUE(std::isfinite(cpw));
}

}  // namespace
}  // namespace proteus
