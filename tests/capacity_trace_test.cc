#include <gtest/gtest.h>

#include "src/market/capacity_trace.h"

namespace proteus {
namespace {

TEST(CapacityTrace, StepSemantics) {
  const CapacityTrace trace({{0.0, 100}, {50.0, 40}, {120.0, 90}});
  EXPECT_EQ(trace.SlotsAt(0.0), 100);
  EXPECT_EQ(trace.SlotsAt(49.9), 100);
  EXPECT_EQ(trace.SlotsAt(50.0), 40);
  EXPECT_EQ(trace.SlotsAt(1000.0), 90);
}

TEST(CapacityTrace, MinSlotsOverWindow) {
  const CapacityTrace trace({{0.0, 100}, {50.0, 40}, {120.0, 90}});
  EXPECT_EQ(trace.MinSlots(0.0, 200.0), 40);
  EXPECT_EQ(trace.MinSlots(120.0, 200.0), 90);
}

TEST(CapacityTrace, FirstTimeBelowFindsSqueeze) {
  const CapacityTrace trace({{0.0, 100}, {50.0, 40}, {120.0, 90}});
  const auto t = trace.FirstTimeBelow(60, 0.0, 1000.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 50.0);
  EXPECT_FALSE(trace.FirstTimeBelow(30, 0.0, 1000.0).has_value());
  // Already below at the query instant.
  EXPECT_DOUBLE_EQ(*trace.FirstTimeBelow(60, 60.0, 1000.0), 60.0);
}

TEST(CapacityTrace, GeneratedTraceIsBounded) {
  CapacityTraceConfig config;
  Rng rng(61);
  const CapacityTrace trace = GenerateCapacityTrace(config, 7 * kDay, rng);
  ASSERT_FALSE(trace.empty());
  for (const auto& point : trace.points()) {
    EXPECT_GE(point.slots, 0);
    EXPECT_LE(point.slots, config.total_slots);
  }
}

TEST(CapacityTrace, DiurnalSwingSqueezesDaytime) {
  CapacityTraceConfig config;
  config.bursts_per_day = 0.0;  // Pure diurnal pattern.
  Rng rng(62);
  const CapacityTrace trace = GenerateCapacityTrace(config, 2 * kDay, rng);
  // Midnight (cos phase 0) has more slack than midday.
  EXPECT_GT(trace.SlotsAt(0.0), trace.SlotsAt(kDay / 2));
}

TEST(CapacityEvictionModel, BurstyClusterHasHigherBeta) {
  CapacityTraceConfig calm;
  calm.bursts_per_day = 0.5;
  CapacityTraceConfig busy;
  busy.bursts_per_day = 10.0;
  Rng rng1(63);
  Rng rng2(63);
  const CapacityTrace calm_trace = GenerateCapacityTrace(calm, 30 * kDay, rng1);
  const CapacityTrace busy_trace = GenerateCapacityTrace(busy, 30 * kDay, rng2);
  CapacityEvictionModel calm_model;
  CapacityEvictionModel busy_model;
  calm_model.Train(calm_trace, 0.0, 30 * kDay, /*allocation_slots=*/64);
  busy_model.Train(busy_trace, 0.0, 30 * kDay, /*allocation_slots=*/64);
  ASSERT_TRUE(calm_model.trained());
  ASSERT_TRUE(busy_model.trained());
  EXPECT_GT(busy_model.Estimate({"", ""}, 0.0).beta, calm_model.Estimate({"", ""}, 0.0).beta);
}

TEST(CapacityEvictionModel, BiggerAllocationsEvictMore) {
  CapacityTraceConfig config;
  Rng rng(64);
  const CapacityTrace trace = GenerateCapacityTrace(config, 30 * kDay, rng);
  CapacityEvictionModel small;
  CapacityEvictionModel large;
  small.Train(trace, 0.0, 30 * kDay, 16);
  large.Train(trace, 0.0, 30 * kDay, 128);
  EXPECT_GE(large.Estimate({"", ""}, 0.0).beta, small.Estimate({"", ""}, 0.0).beta);
}

TEST(PrivateClusterPriceStore, ConstantPricePerVcpu) {
  const InstanceTypeCatalog catalog = InstanceTypeCatalog::Default();
  const TraceStore store = MakePrivateClusterPriceStore(catalog, "dc1", 0.01, 30 * kDay);
  EXPECT_DOUBLE_EQ(store.Get({"dc1", "c4.xlarge"}).PriceAt(5 * kDay), 0.04);
  EXPECT_DOUBLE_EQ(store.Get({"dc1", "c4.2xlarge"}).PriceAt(29 * kDay), 0.08);
}

}  // namespace
}  // namespace proteus
