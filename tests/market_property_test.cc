// Property tests over randomized spot traces: billing invariants that
// must hold for every allocation regardless of market behaviour.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/market/spot_market.h"
#include "src/market/trace_gen.h"
#include "src/proteus/accounting.h"

namespace proteus {
namespace {

class MarketPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  MarketPropertyTest() : catalog_(InstanceTypeCatalog::Default()) {
    SyntheticTraceConfig config;
    config.spikes_per_day = 6.0;
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
    traces_ = TraceStore::GenerateSynthetic(catalog_, {"z0"}, 20 * kDay, config, rng);
    market_ = std::make_unique<SpotMarket>(catalog_, traces_);
  }

  InstanceTypeCatalog catalog_;
  TraceStore traces_;
  std::unique_ptr<SpotMarket> market_;
};

TEST_P(MarketPropertyTest, BillingInvariantsUnderRandomAllocations) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  const MarketKey key{"z0", "c4.xlarge"};
  const PriceSeries& series = traces_.Get(key);

  for (int trial = 0; trial < 40; ++trial) {
    const SimTime t0 = rng.Uniform(0.0, 15 * kDay);
    const Money price = series.PriceAt(t0);
    const Money bid = price + rng.Uniform(0.0, 0.3);
    const int count = static_cast<int>(rng.UniformInt(1, 8));
    const auto id = market_->RequestSpot(key, count, bid, t0);
    ASSERT_TRUE(id.has_value()) << "bid >= price must be granted";
    const Allocation& alloc = market_->Get(*id);

    // Eviction, if predicted, is strictly after the grant and is exactly
    // a bid crossing.
    if (alloc.eviction_time.has_value()) {
      ASSERT_GT(*alloc.eviction_time, t0);
      ASSERT_GT(series.PriceAt(*alloc.eviction_time), bid);
      // Warning precedes eviction by at most two minutes.
      const auto warning = market_->WarningTime(*id);
      ASSERT_TRUE(warning.has_value());
      ASSERT_LE(*warning, *alloc.eviction_time);
      ASSERT_GE(*warning, *alloc.eviction_time - kEvictionWarning);
    }

    // Bill monotonicity in as_of, and refund only when evicted.
    SimTime end;
    if (alloc.eviction_time.has_value() && rng.Bernoulli(0.5)) {
      market_->MarkEvicted(*id);
      end = *alloc.eviction_time;
    } else {
      end = t0 + rng.Uniform(0.1 * kHour, 5 * kHour);
      market_->Terminate(*id, end);
      end = market_->Get(*id).end;  // Terminate may resolve to eviction.
    }
    const BillingBreakdown early = market_->Bill(*id, t0 + 0.5 * kHour);
    const BillingBreakdown late = market_->Bill(*id, end + 10 * kHour);
    ASSERT_GE(late.charged + late.refunded, early.charged + early.refunded);
    ASSERT_GE(late.charged, 0.0);
    if (market_->Get(*id).state == AllocationState::kTerminated) {
      ASSERT_DOUBLE_EQ(late.refunded, 0.0);
      ASSERT_DOUBLE_EQ(late.free_hours, 0.0);
    } else {
      // Evicted: exactly the in-progress hour refunded.
      ASSERT_GT(late.free_hours, 0.0);
      ASSERT_LE(late.free_hours, static_cast<double>(count));
    }

    // Job-level accounting never exceeds the market's gross charge and
    // machine-hours are bounded by wall time x count.
    const JobBill job_bill = ComputeJobBill(*market_, *id, end + kHour);
    ASSERT_LE(job_bill.cost, late.charged + 1e-9);
    ASSERT_LE(job_bill.TotalHours(), (end - t0) / kHour * count + 1e-9);
  }
}

TEST_P(MarketPropertyTest, NeverGrantedBelowMarket) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7);
  const MarketKey key{"z0", "c4.2xlarge"};
  const PriceSeries& series = traces_.Get(key);
  for (int trial = 0; trial < 40; ++trial) {
    const SimTime t0 = rng.Uniform(0.0, 15 * kDay);
    const Money price = series.PriceAt(t0);
    if (price <= 0.002) {
      continue;
    }
    EXPECT_FALSE(market_->RequestSpot(key, 1, price - 0.001, t0).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarketPropertyTest, ::testing::Range(1, 7));

}  // namespace
}  // namespace proteus
