// Tests for the automated tuning components (the paper's stated future
// work): stage-threshold selection (§3.3) and phi/sigma/lambda profile
// estimation (§4.1).
#include <gtest/gtest.h>

#include <memory>

#include "src/agileml/threshold_tuner.h"
#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/proteus/profile_estimator.h"

namespace proteus {
namespace {

class TuningTest : public ::testing::Test {
 protected:
  TuningTest() {
    RatingsConfig rc;
    rc.users = 3000;
    rc.items = 400;
    rc.ratings = 30000;
    rc.item_zipf = 1.01;
    data_ = GenerateRatings(rc);
  }

  std::function<std::unique_ptr<MLApp>()> Factory() const {
    return [this] {
      MfConfig mc;
      mc.rank = 64;
      return std::make_unique<MatrixFactorizationApp>(&data_, mc);
    };
  }

  AgileMLConfig BaseConfig() const {
    AgileMLConfig config;
    config.num_partitions = 16;
    config.data_blocks = 256;
    config.core_speed = 4e6;
    config.parallel_execution = false;
    return config;
  }

  RatingsDataset data_;
};

TEST_F(TuningTest, TunerProducesOrderedThresholds) {
  ThresholdTunerConfig tc;
  tc.total_nodes = 32;
  tc.reliable_counts = {16, 8, 4, 2, 1};
  tc.warmup_clocks = 1;
  tc.measure_clocks = 2;
  ThresholdTuner tuner(Factory(), BaseConfig(), tc);
  const TunedThresholds tuned = tuner.Tune();
  ASSERT_EQ(tuned.probes.size(), 5u);
  EXPECT_GT(tuned.stage2_threshold, 0.0);
  EXPECT_GE(tuned.stage3_threshold, tuned.stage2_threshold);
  // Probes must be ordered by increasing ratio.
  for (std::size_t i = 1; i < tuned.probes.size(); ++i) {
    EXPECT_GT(tuned.probes[i].ratio, tuned.probes[i - 1].ratio);
  }
}

TEST_F(TuningTest, TunedThresholdsSelectSensibleStages) {
  ThresholdTunerConfig tc;
  tc.total_nodes = 32;
  tc.reliable_counts = {16, 8, 4, 2, 1};
  tc.warmup_clocks = 1;
  tc.measure_clocks = 2;
  ThresholdTuner tuner(Factory(), BaseConfig(), tc);
  const TunedThresholds tuned = tuner.Tune();
  // At low ratios stage 1 must win; at the top probed ratio stage 3 or 2.
  EXPECT_EQ(tuned.probes.front().Best(), Stage::kStage1);
  EXPECT_NE(tuned.probes.back().Best(), Stage::kStage1);
}

TEST_F(TuningTest, PhiIsAFractionOfIdeal) {
  ProfileEstimatorConfig pc;
  pc.base_nodes = 4;
  pc.scaled_nodes = 16;
  pc.warmup_clocks = 1;
  pc.measure_clocks = 2;
  ProfileEstimator estimator(Factory(), BaseConfig(), pc);
  const double phi = estimator.EstimatePhi();
  EXPECT_GT(phi, 0.3);
  EXPECT_LE(phi, 1.0);
}

TEST_F(TuningTest, SigmaSmallForBackgroundIncorporation) {
  ProfileEstimatorConfig pc;
  pc.base_nodes = 4;
  pc.scaled_nodes = 16;
  pc.churn_nodes = 4;
  pc.warmup_clocks = 1;
  pc.measure_clocks = 2;
  ProfileEstimator estimator(Factory(), BaseConfig(), pc);
  const SimDuration sigma = estimator.EstimateSigma();
  // AgileML incorporates in the background: overhead well under a minute.
  EXPECT_GE(sigma, 0.0);
  EXPECT_LT(sigma, 60.0);
}

TEST_F(TuningTest, LambdaReflectsEvictionBlip) {
  ProfileEstimatorConfig pc;
  pc.base_nodes = 4;
  pc.scaled_nodes = 16;
  pc.churn_nodes = 8;
  pc.warmup_clocks = 1;
  pc.measure_clocks = 2;
  ProfileEstimator estimator(Factory(), BaseConfig(), pc);
  const SimDuration lambda = estimator.EstimateLambda();
  EXPECT_GE(lambda, 0.0);
  EXPECT_LT(lambda, 120.0);  // Far cheaper than a checkpoint restart.
}

TEST_F(TuningTest, FullProfileAssembly) {
  ProfileEstimatorConfig pc;
  pc.base_nodes = 4;
  pc.scaled_nodes = 8;
  pc.churn_nodes = 2;
  pc.warmup_clocks = 1;
  pc.measure_clocks = 2;
  ProfileEstimator estimator(Factory(), BaseConfig(), pc);
  const AppProfile profile = estimator.Estimate();
  EXPECT_GT(profile.phi, 0.0);
  EXPECT_GE(profile.sigma, 0.0);
  EXPECT_GE(profile.lambda, 0.0);
}

}  // namespace
}  // namespace proteus
