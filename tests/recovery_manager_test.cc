// RecoveryManager tests: escalation-ladder classification, checkpoint
// cadence, durable-restore recovery, the lost-work <= checkpoint
// interval property, and the checkpoint metrics surfaced by the runtime
// and the store.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/agileml/recovery_manager.h"
#include "src/agileml/runtime.h"
#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/ps/checkpoint_store.h"

namespace proteus {
namespace {

class RecoveryManagerTest : public ::testing::Test {
 protected:
  RecoveryManagerTest() {
    RatingsConfig rc;
    rc.users = 200;
    rc.items = 100;
    rc.ratings = 5000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 4;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  AgileMLConfig Config(std::uint64_t seed = 1) const {
    AgileMLConfig config;
    config.num_partitions = 8;
    config.data_blocks = 64;
    config.parallel_execution = false;
    config.backup_sync_every = 2;
    config.seed = seed;
    return config;
  }

  static std::vector<NodeInfo> Nodes(int reliable, int transient) {
    std::vector<NodeInfo> nodes;
    NodeId id = 0;
    for (int i = 0; i < reliable; ++i) {
      nodes.push_back({id++, Tier::kReliable, 8, kInvalidAllocation});
    }
    for (int i = 0; i < transient; ++i) {
      nodes.push_back({id++, Tier::kTransient, 8, kInvalidAllocation});
    }
    return nodes;
  }

  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_F(RecoveryManagerTest, ClassifiesEveryRungOfTheLadder) {
  AgileMLRuntime runtime(app_.get(), Config(), Nodes(2, 8));
  MemDurableDevice device;
  CheckpointStore store(&device);
  RecoveryManager manager(&runtime, &store);
  runtime.RunClock();

  const RoleAssignment& roles = runtime.roles();
  ASSERT_TRUE(roles.UsesBackups());
  std::set<NodeId> servers;
  for (const auto& [partition, owner] : roles.server) {
    servers.insert(owner);
  }
  ASSERT_FALSE(servers.empty());
  const NodeId one_server = *servers.begin();
  const NodeId its_backup = roles.backup.at(
      roles.PartitionsServedBy(one_server).front());

  EXPECT_EQ(manager.Classify({}), RecoveryDepth::kNone);
  EXPECT_EQ(manager.Classify({one_server}), RecoveryDepth::kBackupPromotion);
  EXPECT_EQ(manager.Classify({its_backup}), RecoveryDepth::kActiveRebuild);
  EXPECT_EQ(manager.Classify({one_server, its_backup}),
            RecoveryDepth::kDurableRestore);
  // A node that holds no state classifies as no recovery needed.
  EXPECT_EQ(manager.Classify({9999}), RecoveryDepth::kNone);
}

TEST_F(RecoveryManagerTest, CadenceWritesDurableEpochs) {
  AgileMLRuntime runtime(app_.get(), Config(), Nodes(2, 4));
  MemDurableDevice device;
  CheckpointStore store(&device);
  RecoveryManager manager(&runtime, &store, RecoveryManagerConfig{3, 6});
  manager.ForceCheckpoint();
  for (int i = 0; i < 12; ++i) {
    runtime.RunClock();
    manager.OnClockBoundary();
  }
  // Start-up + every 3rd of 12 boundaries.
  EXPECT_EQ(manager.checkpoints_written(), 1u + 4u);
  EXPECT_EQ(manager.durable_commits(), 1u + 4u);
  EXPECT_EQ(store.epochs_committed(), 5u);
  EXPECT_EQ(manager.scrubs_run(), 2u);
  EXPECT_EQ(manager.scrub_corruptions_found(), 0u);
  const auto loaded = store.ReadNewestValid();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->clock, 12);
}

TEST_F(RecoveryManagerTest, DurableRestoreRecoversBothTierLoss) {
  AgileMLRuntime runtime(app_.get(), Config(), Nodes(2, 6));
  MemDurableDevice device;
  CheckpointStore store(&device);
  RecoveryManager manager(&runtime, &store, RecoveryManagerConfig{2, 0});
  manager.ForceCheckpoint();
  for (int i = 0; i < 6; ++i) {
    runtime.RunClock();
    manager.OnClockBoundary();
  }

  // Kill every ActivePS host plus a backup-holding reliable node; drop
  // the in-memory checkpoint (it lived on the dead reliable machine).
  const RoleAssignment& roles = runtime.roles();
  ASSERT_TRUE(roles.UsesBackups());
  std::set<NodeId> victims;
  for (const auto& [partition, owner] : roles.server) {
    victims.insert(owner);
  }
  victims.insert(roles.backup.begin()->second);
  runtime.DropCheckpoint();
  const RecoveryOutcome outcome =
      manager.Recover({victims.begin(), victims.end()});

  EXPECT_EQ(outcome.depth, RecoveryDepth::kDurableRestore);
  EXPECT_TRUE(outcome.used_durable);
  EXPECT_EQ(outcome.corrupt_epochs_skipped, 0);
  EXPECT_LE(outcome.lost_clocks, 2);  // Bounded by the cadence.
  EXPECT_EQ(manager.depth_counts()[3], 1);
  // Recovery re-armed the insurance immediately.
  EXPECT_TRUE(runtime.HasCheckpoint());

  // The job keeps training after the restore.
  const Clock before = runtime.clock();
  runtime.RunClock();
  EXPECT_EQ(runtime.clock(), before + 1);
}

// PR 6 satellite (b): across seeded fault points, the work lost to a
// both-tier failure never exceeds the checkpoint interval.
TEST_F(RecoveryManagerTest, LostWorkNeverExceedsCheckpointInterval) {
  constexpr int kInterval = 3;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    AgileMLRuntime runtime(app_.get(), Config(seed), Nodes(2, 6));
    MemDurableDevice device;
    CheckpointStore store(&device);
    RecoveryManager manager(&runtime, &store,
                            RecoveryManagerConfig{kInterval, 0});
    manager.ForceCheckpoint();
    Rng rng(seed * 77);
    const Clock crash_at = rng.UniformInt(2, 14);
    for (Clock boundary = 0; boundary < 16; ++boundary) {
      if (boundary == crash_at) {
        const RoleAssignment& roles = runtime.roles();
        if (roles.UsesBackups()) {
          std::set<NodeId> victims;
          for (const auto& [partition, owner] : roles.server) {
            victims.insert(owner);
          }
          victims.insert(roles.backup.begin()->second);
          runtime.DropCheckpoint();
          const RecoveryOutcome outcome =
              manager.Recover({victims.begin(), victims.end()});
          EXPECT_EQ(outcome.depth, RecoveryDepth::kDurableRestore)
              << "seed " << seed;
          EXPECT_LE(outcome.lost_clocks, kInterval)
              << "seed " << seed << ": lost more than the checkpoint interval";
          // The operator replaces the dead reliable machine.
          runtime.AddNodes({{static_cast<NodeId>(100 + seed), Tier::kReliable, 8,
                             kInvalidAllocation}});
        }
      }
      runtime.RunClock();
      manager.OnClockBoundary();
    }
  }
}

TEST_F(RecoveryManagerTest, CheckpointAndRecoveryMetricsSurface) {
  AgileMLRuntime runtime(app_.get(), Config(), Nodes(2, 6));
  MemDurableDevice device;
  CheckpointStore store(&device);
  RecoveryManager manager(&runtime, &store, RecoveryManagerConfig{2, 0});
  obs::MetricsRegistry metrics;
  runtime.SetObservability(nullptr, &metrics);
  manager.SetObservability(nullptr, &metrics);
  manager.ForceCheckpoint();
  for (int i = 0; i < 6; ++i) {
    runtime.RunClock();
    manager.OnClockBoundary();
  }
  const RoleAssignment& roles = runtime.roles();
  ASSERT_TRUE(roles.UsesBackups());
  std::set<NodeId> victims;
  for (const auto& [partition, owner] : roles.server) {
    victims.insert(owner);
  }
  victims.insert(roles.backup.begin()->second);
  runtime.DropCheckpoint();
  manager.Recover({victims.begin(), victims.end()});

  // Runtime-side totals and their metric mirrors.
  EXPECT_GT(runtime.checkpoint_bytes_written_total(), 0u);
  EXPECT_GT(runtime.checkpoint_bytes_restored_total(), 0u);
  EXPECT_EQ(metrics.GetCounter("agileml.checkpoint.bytes_written")->value(),
            runtime.checkpoint_bytes_written_total());
  EXPECT_EQ(metrics.GetCounter("agileml.checkpoint.bytes_restored")->value(),
            runtime.checkpoint_bytes_restored_total());
  EXPECT_EQ(metrics.GetCounter("agileml.checkpoint.restore_clocks_lost")->value(),
            static_cast<std::uint64_t>(runtime.restore_clocks_lost_total()));
  // Store-side traffic.
  EXPECT_GT(metrics.GetCounter("checkpoint.bytes_written")->value(), 0u);
  EXPECT_GT(metrics.GetCounter("checkpoint.bytes_restored")->value(), 0u);
  // Ladder accounting.
  EXPECT_EQ(metrics.GetCounter("recovery.events", {{"depth", "durable-restore"}})
                ->value(),
            1u);
  EXPECT_EQ(metrics.GetCounter("recovery.durable_restores")->value(), 1u);
  EXPECT_EQ(metrics.GetGauge("recovery.last_depth")->value(), 3.0);
}

}  // namespace
}  // namespace proteus
