// Soak-labeled long variant of tests/ps_stress_test.cc (the filename's
// "soak" gives it the ctest `soak` label; excluded from the default and
// TSan suites, run by the dedicated soak lane). Same invariants — no
// torn rows, monotonic shard versions, exact contended sums, consistent
// concurrent snapshots — at an order of magnitude more work, enough for
// TSan/ASan to see rare interleavings (arena growth racing readers,
// rollback racing batched applies).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/ps/model.h"

namespace proteus {
namespace {

constexpr int kCols = 16;

ModelStore MakeStore(int shards, std::int64_t rows) {
  ModelOptions options;
  options.shards = shards;
  return ModelStore({{0, rows, kCols, 0.0F, 0.0F}}, /*num_partitions=*/32,
                    /*seed=*/23, options);
}

void WriterLoop(ModelStore& store, std::int64_t begin, std::int64_t end, int iters) {
  std::vector<float> delta(kCols, 1.0F);
  std::vector<RowDelta> batch;
  for (int it = 0; it < iters; ++it) {
    if (it % 2 == 0) {
      for (std::int64_t r = begin; r < end; ++r) {
        store.ApplyDelta(0, r, delta);
      }
    } else {
      batch.clear();
      for (std::int64_t r = begin; r < end; ++r) {
        batch.push_back({0, r, std::span<const float>(delta)});
      }
      store.ApplyUpdates(batch);
    }
  }
}

TEST(PsStressSoakTest, LongMixedWorkloadStaysConsistent) {
  constexpr int kWriters = 8;
  constexpr int kIters = 400;
  constexpr std::int64_t kRowsPerWriter = 256;
  constexpr std::int64_t kContended = 256;
  constexpr std::int64_t kTotalRows = kWriters * kRowsPerWriter + kContended;
  ModelStore store = MakeStore(/*shards=*/8, kTotalRows);
  store.EnableBackups();

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<int> version_regressions{0};

  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) {
    readers.emplace_back([&, i] {
      std::vector<float> out;
      std::uint64_t x = 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(i);
      while (!stop.load(std::memory_order_relaxed)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        store.ReadRow(0, static_cast<std::int64_t>(x % kTotalRows), out);
        for (int c = 1; c < kCols; ++c) {
          if (out[static_cast<std::size_t>(c)] != out[0]) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  std::thread watcher([&] {
    std::vector<std::uint64_t> last(static_cast<std::size_t>(store.shards()), 0);
    while (!stop.load(std::memory_order_relaxed)) {
      for (int s = 0; s < store.shards(); ++s) {
        const std::uint64_t v = store.ShardVersion(s);
        if (v < last[static_cast<std::size_t>(s)]) {
          version_regressions.fetch_add(1, std::memory_order_relaxed);
        }
        last[static_cast<std::size_t>(s)] = v;
      }
    }
  });

  // Background sync pressure on every partition (stage-2 ActivePS load),
  // without rollbacks so the final sums stay exact.
  std::thread syncer([&] {
    int spin = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (PartitionId p = 0; p < store.num_partitions(); ++p) {
        store.SyncPartitionToBackup(p, /*at_clock=*/spin);
      }
      ++spin;
      std::this_thread::yield();
    }
  });

  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<std::uint8_t> blob = store.SerializeCheckpoint();
      ModelStore replica = MakeStore(8, kTotalRows);
      replica.RestoreCheckpoint(blob);
      replica.ForEachRow(0, [&](std::int64_t, std::span<const float> row) {
        for (std::size_t c = 1; c < row.size(); ++c) {
          if (row[c] != row[0]) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const std::int64_t begin = w * kRowsPerWriter;
      WriterLoop(store, begin, begin + kRowsPerWriter, kIters);
      WriterLoop(store, kWriters * kRowsPerWriter, kTotalRows, kIters);
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) {
    t.join();
  }
  watcher.join();
  syncer.join();
  snapshotter.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(version_regressions.load(), 0);
  std::vector<float> out;
  for (std::int64_t r = 0; r < kWriters * kRowsPerWriter; ++r) {
    store.ReadRow(0, r, out);
    ASSERT_EQ(out[0], static_cast<float>(kIters)) << "row " << r;
  }
  for (std::int64_t r = kWriters * kRowsPerWriter; r < kTotalRows; ++r) {
    store.ReadRow(0, r, out);
    ASSERT_EQ(out[0], static_cast<float>(kIters * kWriters)) << "row " << r;
  }
}

}  // namespace
}  // namespace proteus
