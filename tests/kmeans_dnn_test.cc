// Tests for the additional §3.2 applications: K-means and DNN.
#include <gtest/gtest.h>

#include "src/agileml/runtime.h"
#include "src/apps/datasets.h"
#include "src/apps/dnn.h"
#include "src/apps/kmeans.h"

namespace proteus {
namespace {

class ExtraAppsTest : public ::testing::Test {
 protected:
  ExtraAppsTest() {
    FeaturesConfig fc;
    fc.samples = 2048;
    fc.dim = 32;
    fc.classes = 8;
    fc.class_separation = 4.0;
    fc.noise = 0.5;
    data_ = GenerateFeatures(fc);
  }

  AgileMLConfig Config() const {
    AgileMLConfig config;
    config.num_partitions = 8;
    config.data_blocks = 32;
    config.parallel_execution = false;
    return config;
  }

  static std::vector<NodeInfo> Nodes(int n) {
    std::vector<NodeInfo> nodes;
    nodes.push_back({0, Tier::kReliable, 8, kInvalidAllocation});
    for (NodeId id = 1; id < n; ++id) {
      nodes.push_back({id, Tier::kTransient, 8, kInvalidAllocation});
    }
    return nodes;
  }

  FeaturesDataset data_;
};

TEST_F(ExtraAppsTest, KMeansObjectiveDrops) {
  KMeansConfig kc;
  kc.clusters = 8;
  KMeansApp app(&data_, kc);
  AgileMLRuntime runtime(&app, Config(), Nodes(1));
  const double before = runtime.ComputeObjective();
  runtime.RunClocks(8);
  EXPECT_LT(runtime.ComputeObjective(), before * 0.5)
      << "centers must move into the planted clusters";
}

TEST_F(ExtraAppsTest, KMeansWorksDistributed) {
  KMeansConfig kc;
  kc.clusters = 8;
  KMeansApp app(&data_, kc);
  AgileMLRuntime runtime(&app, Config(), Nodes(6));
  EXPECT_EQ(runtime.stage(), Stage::kStage2);
  const double before = runtime.ComputeObjective();
  runtime.RunClocks(8);
  EXPECT_LT(runtime.ComputeObjective(), before * 0.6);
}

TEST_F(ExtraAppsTest, KMeansSurvivesEviction) {
  KMeansConfig kc;
  kc.clusters = 8;
  KMeansApp app(&data_, kc);
  AgileMLRuntime runtime(&app, Config(), Nodes(6));
  runtime.RunClocks(4);
  std::vector<NodeId> evictees;
  for (const auto& node : runtime.nodes()) {
    if (!node.reliable() && evictees.size() < 3) {
      evictees.push_back(node.id);
    }
  }
  runtime.Evict(evictees);
  const double obj = runtime.ComputeObjective();
  runtime.RunClocks(4);
  EXPECT_LE(runtime.ComputeObjective(), obj * 1.05);
}

TEST_F(ExtraAppsTest, DnnCrossEntropyDrops) {
  DnnConfig dc;
  dc.hidden = 16;
  dc.learning_rate = 0.3;
  DnnApp app(&data_, dc);
  AgileMLConfig config = Config();
  config.minibatches_per_pass = 4;  // Four SGD steps per data pass.
  AgileMLRuntime runtime(&app, config, Nodes(1));
  const double before = runtime.ComputeObjective();
  runtime.RunClocks(48);  // Twelve passes.
  EXPECT_LT(runtime.ComputeObjective(), before * 0.8);
}

TEST_F(ExtraAppsTest, DnnWorksDistributedWithRollback) {
  DnnConfig dc;
  dc.hidden = 16;
  DnnApp app(&data_, dc);
  AgileMLConfig config = Config();
  config.backup_sync_every = 3;
  AgileMLRuntime runtime(&app, config, Nodes(6));
  runtime.RunClocks(8);
  const NodeId active = *runtime.roles().active_ps_nodes.begin();
  runtime.Fail({active});  // Unwarned: rollback recovery.
  const double obj = runtime.ComputeObjective();
  runtime.RunClocks(10);
  EXPECT_LT(runtime.ComputeObjective(), obj);
}

TEST_F(ExtraAppsTest, CostPerItemPositive) {
  KMeansApp kmeans(&data_, KMeansConfig{});
  DnnApp dnn(&data_, DnnConfig{});
  EXPECT_GT(kmeans.CostPerItem(), 0.0);
  EXPECT_GT(dnn.CostPerItem(), 0.0);
}

}  // namespace
}  // namespace proteus
