// Pins the shared JSON layer every observability export rides on: the
// one escaping helper (Tracer, EventLedger, MetricsSnapshot, and the
// analyzer all call it), Chrome counter events (ph "C"), the metrics
// JSON export, and the parser used by proteus_analyze.
#include <gtest/gtest.h>

#include <string>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace proteus {
namespace obs {
namespace {

TEST(JsonString, EscapesEveryHostileByte) {
  std::string out;
  AppendJsonString(out, "a\"b\\c\b\f\n\r\tz");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\b\\f\\n\\r\\tz\"");

  out.clear();
  AppendJsonString(out, std::string("nul\0byte", 8));
  EXPECT_EQ(out, "\"nul\\u0000byte\"");

  out.clear();
  AppendJsonString(out, "\x01\x1f");
  EXPECT_EQ(out, "\"\\u0001\\u001f\"");
}

TEST(JsonDouble, DeterministicAndFinite) {
  EXPECT_EQ(FormatJsonDouble(0.0), "0");
  EXPECT_EQ(FormatJsonDouble(1.5), "1.5");
  EXPECT_EQ(FormatJsonDouble(1.0 / 0.0), "0");   // Non-finite clamps.
  EXPECT_EQ(FormatJsonDouble(0.0 / 0.0), "0");
}

TEST(TracerJson, HostileStringsStayValidJson) {
  Tracer tracer;
  // Names, tracks, and args with every character class the escaper must
  // handle: quotes, backslashes, control bytes.
  tracer.InstantAt(1.0, "evil\"name\\", "tr\nack",
                   {{"detail", std::string("line1\nline2\t\"quoted\"")}});
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("evil\\\"name\\\\"), std::string::npos);
  EXPECT_NE(json.find("tr\\nack"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\t\\\"quoted\\\""), std::string::npos);
  // No raw newline may survive inside a string: every line of the
  // rendered trace must be a complete JSON fragment.
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &parsed, &error)) << error;
  const JsonValue* events = parsed.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // One thread-name metadata record for the track, then the instant.
  ASSERT_EQ(events->items.size(), 2u);
  EXPECT_EQ(events->items[0].StringField("ph"), "M");
  EXPECT_EQ(events->items[1].StringField("name"), "evil\"name\\");
}

TEST(TracerJson, CounterEventsRenderPhC) {
  Tracer tracer;
  tracer.CounterAt(0.5, "backup_lag_clocks", "agileml", 3.0);
  tracer.CounterAt(1.0, "backup_lag_clocks", "agileml", 0.0);
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // Counters carry their value as an arg and no duration.
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &parsed, &error)) << error;
  const JsonValue* events = parsed.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // One thread-name metadata record for the track, then the two samples.
  ASSERT_EQ(events->items.size(), 3u);
  const JsonValue& first = events->items[1];
  EXPECT_EQ(first.StringField("ph"), "C");
  EXPECT_EQ(first.Find("dur"), nullptr);
  const JsonValue* args = first.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->NumberField("value"), 3.0);
}

TEST(MetricsJson, ExportMatchesSnapshotOrderAndParses) {
  MetricsRegistry registry;
  registry.GetCounter("b.count", {{"zone", "us\"east"}})->Add(7);
  registry.GetGauge("a.level")->Set(2.5);
  registry.GetHistogram("c.hist", {1.0, 5.0})->Observe(2.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const std::string json = snapshot.ToJson();
  // Deterministic: same snapshot renders the same bytes, sorted like the
  // text/CSV exports.
  EXPECT_EQ(json, registry.Snapshot().ToJson());
  EXPECT_LT(json.find("a.level"), json.find("b.count"));
  EXPECT_LT(json.find("b.count"), json.find("c.hist"));

  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &parsed, &error)) << error;
  const JsonValue* metrics = parsed.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->items.size(), 3u);
  EXPECT_EQ(metrics->items[1].StringField("name"), "b.count");
  EXPECT_EQ(metrics->items[1].NumberField("value"), 7.0);
  const JsonValue* labels = metrics->items[1].Find("labels");
  ASSERT_NE(labels, nullptr);
  EXPECT_EQ(labels->StringField("zone"), "us\"east");
}

TEST(JsonParse, RoundTripsEscapesAndNumbers) {
  JsonValue value;
  std::string error;
  ASSERT_TRUE(ParseJson(
      R"({"s":"a\"\\\nA","n":-1.5e2,"b":true,"z":null,"arr":[1,2]})", &value, &error))
      << error;
  EXPECT_EQ(value.StringField("s"), "a\"\\\nA");
  EXPECT_EQ(value.NumberField("n"), -150.0);
  const JsonValue* arr = value.Find("arr");
  ASSERT_NE(arr, nullptr);
  EXPECT_EQ(arr->items.size(), 2u);

  EXPECT_FALSE(ParseJson("{\"unterminated\": \"", &value, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace obs
}  // namespace proteus
