#include <gtest/gtest.h>

#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/market/trace_gen.h"
#include "src/proteus/proteus_runtime.h"

namespace proteus {
namespace {

class ProteusRuntimeTest : public ::testing::Test {
 protected:
  ProteusRuntimeTest() : catalog_(InstanceTypeCatalog::Default()) {
    SyntheticTraceConfig trace_config;
    trace_config.spikes_per_day = 6.0;  // Lively market: evictions happen.
    Rng rng(51);
    traces_ = TraceStore::GenerateSynthetic(catalog_, {"z0", "z1"}, 20 * kDay, trace_config, rng);
    estimator_.Train(traces_, 0.0, 10 * kDay);

    RatingsConfig rc;
    rc.users = 800;
    rc.items = 300;
    rc.ratings = 40000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 16;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  ProteusConfig Config() const {
    ProteusConfig config;
    config.agileml.num_partitions = 16;
    config.agileml.data_blocks = 128;
    config.agileml.parallel_execution = false;
    // Long virtual clocks so market events interleave with training.
    config.agileml.core_speed = 2e3;
    config.bidbrain.max_spot_instances = 32;
    config.bidbrain.allocation_quantum = 8;
    config.on_demand_count = 2;
    return config;
  }

  InstanceTypeCatalog catalog_;
  TraceStore traces_;
  EvictionEstimator estimator_;
  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_F(ProteusRuntimeTest, StartsWithOnDemandReliableTier) {
  ProteusRuntime runtime(app_.get(), &catalog_, &traces_, &estimator_, Config(), 11 * kDay);
  const TierCounts counts = runtime.agileml().ReadyTierCounts();
  EXPECT_EQ(counts.reliable, 2);
  EXPECT_EQ(counts.transient, 0);
  // On-demand allocation exists and is running.
  EXPECT_EQ(runtime.market().allocations().size(), 1u);
  EXPECT_EQ(runtime.market().allocations()[0].kind, AllocationKind::kOnDemand);
}

TEST_F(ProteusRuntimeTest, AcquiresSpotCapacityAndTrains) {
  ProteusRuntime runtime(app_.get(), &catalog_, &traces_, &estimator_, Config(), 11 * kDay);
  const double before = runtime.agileml().ComputeObjective();
  const ProteusRunSummary summary = runtime.Train(20);
  EXPECT_GE(summary.clocks, 20);
  EXPECT_GT(summary.acquisitions, 0);
  EXPECT_LT(summary.final_objective, before) << "training must make progress";
  EXPECT_GT(summary.bill.cost, 0.0);
  EXPECT_GT(summary.bill.on_demand_hours, 0.0);
}

TEST_F(ProteusRuntimeTest, SurvivesEvictionsAndKeepsConverging) {
  // Find a window with eviction churn by running long enough.
  ProteusConfig config = Config();
  config.agileml.core_speed = 400.0;  // ~minutes-long clocks: many events.
  ProteusRuntime runtime(app_.get(), &catalog_, &traces_, &estimator_, config, 11 * kDay);
  const double initial = runtime.agileml().ComputeObjective();
  const ProteusRunSummary summary = runtime.Train(30);
  EXPECT_GE(summary.clocks, 30);
  // With spikes every ~4h and multi-minute clocks we expect market churn.
  EXPECT_GT(summary.evictions + summary.failures + summary.acquisitions, 1);
  EXPECT_LT(summary.final_objective, initial) << "objective better than init";
}

TEST_F(ProteusRuntimeTest, EffectiveFailuresTriggerRollback) {
  ProteusConfig config = Config();
  config.agileml.core_speed = 400.0;
  config.effective_failure_fraction = 1.0;  // Every eviction is unwarned.
  config.agileml.backup_sync_every = 3;
  ProteusRuntime runtime(app_.get(), &catalog_, &traces_, &estimator_, config, 11 * kDay);
  const ProteusRunSummary summary = runtime.Train(30);
  EXPECT_GE(summary.clocks, 30);
  if (summary.failures > 0) {
    EXPECT_EQ(summary.evictions, 0);
  }
  // Completed the requested clocks despite any rollbacks.
  EXPECT_GE(runtime.agileml().clock(), 30);
}


TEST_F(ProteusRuntimeTest, ChannelsCarryTheSection5Messages) {
  ProteusConfig config = Config();
  config.agileml.core_speed = 400.0;  // Long clocks: market events occur.
  ProteusRuntime runtime(app_.get(), &catalog_, &traces_, &estimator_, config, 11 * kDay);
  // Start-up registers the application characteristics (§5).
  EXPECT_GE(runtime.controller_channel().messages_sent(), 1u);
  const ProteusRunSummary summary = runtime.Train(25);
  // One cloud-API request per acquisition attempt; at least the granted
  // ones are present.
  EXPECT_GE(runtime.api_channel().messages_sent(),
            static_cast<std::uint64_t>(summary.acquisitions));
  // One grant per acquisition + one notice per eviction/failure + the
  // start-up registration.
  EXPECT_GE(runtime.controller_channel().messages_sent(),
            static_cast<std::uint64_t>(summary.acquisitions + summary.evictions +
                                       summary.failures + 1));
  EXPECT_GT(runtime.controller_channel().bytes_sent(), 0u);
}

TEST_F(ProteusRuntimeTest, StatusReflectsProgress) {
  ProteusRuntime runtime(app_.get(), &catalog_, &traces_, &estimator_, Config(), 11 * kDay);
  runtime.Train(5);
  const ProteusStatus status = runtime.Status();
  EXPECT_GE(status.clock, 5);
  EXPECT_GT(status.now, 11 * kDay);
  EXPECT_GT(status.virtual_time, 0.0);
  EXPECT_GE(status.cost_so_far, 0.0);
}

TEST_F(ProteusRuntimeTest, SummarySurfacesCheckpointTraffic) {
  ProteusConfig config = Config();
  config.checkpoint_every = 4;  // Stage-1 insurance cadence (§3.3).
  ProteusRuntime runtime(app_.get(), &catalog_, &traces_, &estimator_, config, 11 * kDay);
  const ProteusRunSummary summary = runtime.Train(12);
  EXPECT_GT(summary.checkpoint_bytes_written, 0u)
      << "periodic CheckpointReliable must serialize model bytes";
  EXPECT_EQ(summary.checkpoint_bytes_written,
            runtime.agileml().checkpoint_bytes_written_total());
  // Restores only happen on failures; when they do, the clocks they roll
  // back are a subset of all lost clocks.
  EXPECT_LE(summary.restore_clocks_lost, summary.lost_clocks);
  EXPECT_EQ(summary.checkpoint_bytes_restored,
            runtime.agileml().checkpoint_bytes_restored_total());
}

TEST_F(ProteusRuntimeTest, ObjectiveTraceRecorded) {
  ProteusConfig config = Config();
  config.objective_every = 5;
  ProteusRuntime runtime(app_.get(), &catalog_, &traces_, &estimator_, config, 11 * kDay);
  const ProteusRunSummary summary = runtime.Train(15);
  EXPECT_GE(summary.objective_trace.size(), 3u);
  EXPECT_LE(summary.objective_trace.back(), summary.objective_trace.front());
}

}  // namespace
}  // namespace proteus
