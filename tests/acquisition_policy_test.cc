#include "src/bidbrain/acquisition_policy.h"

#include <gtest/gtest.h>

#include "src/backtest/policies.h"
#include "src/bidbrain/bidbrain.h"

namespace proteus {
namespace {

using backtest::FixedDeltaSpotPolicy;
using backtest::KnownPolicySpecs;
using backtest::MakePolicyFactory;
using backtest::OnDemandOnlyPolicy;
using backtest::OracleNextPricePolicy;
using backtest::PolicyEnv;
using backtest::PolicyFactory;

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest() {
    catalog_ = InstanceTypeCatalog::Default();
    // Two hand-built markets on the same 8-vCPU type: "calm" stays cheap
    // then spikes late; "cheaper_now" is cheapest at t=0 but jumps at
    // t=600 and stays high.
    traces_.Put(calm_, PriceSeries({{0.0, 0.15}, {3000.0, 0.80}, {4000.0, 0.15}}));
    traces_.Put(cheap_now_, PriceSeries({{0.0, 0.10}, {600.0, 1.50}}));
  }

  LiveAllocation Spot(int count, const MarketKey& market) const {
    LiveAllocation alloc;
    alloc.id = 1;
    alloc.market = market;
    alloc.count = count;
    alloc.on_demand = false;
    return alloc;
  }

  InstanceTypeCatalog catalog_;
  TraceStore traces_;
  const MarketKey calm_{"calm", "c4.2xlarge"};
  const MarketKey cheap_now_{"cheaper_now", "c4.2xlarge"};
};

TEST_F(PolicyTest, OnDemandOnlyNeverActs) {
  const OnDemandOnlyPolicy policy;
  EXPECT_EQ(policy.name(), "on_demand");
  EXPECT_TRUE(policy.OnDemandDoesWork());
  EXPECT_TRUE(policy.Decide(0.0, {}).empty());
  EXPECT_TRUE(policy.Decide(1e6, {Spot(4, calm_)}).empty());
}

TEST_F(PolicyTest, FixedDeltaTopsUpOnCheapestMarket) {
  const FixedDeltaSpotPolicy policy(&catalog_, &traces_, 0.01, /*target_vcpus=*/64);
  const std::vector<BidAction> actions = policy.Decide(0.0, {});
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, BidAction::Kind::kAcquire);
  EXPECT_EQ(actions[0].market, cheap_now_);  // 0.10 beats 0.15 per vCPU.
  EXPECT_EQ(actions[0].count, 8);            // 64 vCPUs / 8 per instance.
  EXPECT_DOUBLE_EQ(actions[0].bid, 0.10 + 0.01);
}

TEST_F(PolicyTest, FixedDeltaIdleAtTarget) {
  const FixedDeltaSpotPolicy policy(&catalog_, &traces_, 0.01, 64);
  EXPECT_TRUE(policy.Decide(0.0, {Spot(8, calm_)}).empty());
}

TEST_F(PolicyTest, FixedDeltaCountsOnlySpotTowardTarget) {
  const FixedDeltaSpotPolicy policy(&catalog_, &traces_, 0.01, 64);
  LiveAllocation od = Spot(8, calm_);
  od.on_demand = true;
  // The reliable tier doesn't count: still a full 64-vCPU deficit.
  const std::vector<BidAction> actions = policy.Decide(0.0, {od});
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].count, 8);
}

TEST_F(PolicyTest, OracleAvoidsMarketThatIsAboutToSpike) {
  // At t=0 "cheaper_now" has the lower current price, but over the next
  // hours it averages far above "calm". Hindsight picks calm.
  const OracleNextPricePolicy policy(&catalog_, &traces_, 64, /*lookahead=*/2 * kHour);
  const std::vector<BidAction> actions = policy.Decide(0.0, {});
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].market, calm_);
  // Bids the lookahead maximum, so it cannot be evicted inside the
  // horizon (eviction requires price > bid, strictly).
  EXPECT_DOUBLE_EQ(actions[0].bid, 0.80);
}

TEST_F(PolicyTest, DecideIsPure) {
  const FixedDeltaSpotPolicy policy(&catalog_, &traces_, 0.05, 64);
  const auto a = policy.Decide(100.0, {});
  const auto b = policy.Decide(100.0, {});
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].market, b[0].market);
  EXPECT_DOUBLE_EQ(a[0].bid, b[0].bid);
  EXPECT_EQ(a[0].count, b[0].count);
}

TEST_F(PolicyTest, BidBrainImplementsThePolicySeam) {
  EvictionEstimator estimator;
  estimator.Train(traces_, 0.0, 2 * kHour, kMinute);
  const BidBrain brain(&catalog_, &traces_, &estimator, BidBrainConfig{});
  const AcquisitionPolicy& policy = brain;
  EXPECT_EQ(policy.name(), "bidbrain");
  EXPECT_FALSE(policy.OnDemandDoesWork());
}

TEST_F(PolicyTest, FactorySpecsRoundTrip) {
  EvictionEstimator estimator;
  estimator.Train(traces_, 0.0, 2 * kHour, kMinute);
  const PolicyEnv env{&catalog_, &traces_, &estimator};
  const SchemeConfig scheme;

  struct Case {
    const char* spec;
    const char* name;
  };
  const Case cases[] = {
      {"bidbrain", "bidbrain"},
      {"on_demand", "on_demand"},
      {"fixed_delta:0.01", "fixed_delta_0.0100"},
      {"oracle", "oracle"},
      {"oracle:4", "oracle"},
  };
  for (const Case& c : cases) {
    std::string error;
    const PolicyFactory factory = MakePolicyFactory(c.spec, env, scheme, &error);
    ASSERT_NE(factory, nullptr) << c.spec << ": " << error;
    EXPECT_EQ(factory()->name(), c.name);
  }
}

TEST_F(PolicyTest, FactoryRejectsBadSpecs) {
  EvictionEstimator estimator;
  const PolicyEnv env{&catalog_, &traces_, &estimator};
  const SchemeConfig scheme;
  for (const char* spec : {"nope", "fixed_delta:", "fixed_delta:abc", "fixed_delta:-1",
                           "oracle:", "oracle:-2"}) {
    std::string error;
    EXPECT_EQ(MakePolicyFactory(spec, env, scheme, &error), nullptr) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
  EXPECT_FALSE(KnownPolicySpecs().empty());
}

}  // namespace
}  // namespace proteus
