// Fleet-level properties of the multi-tenant cluster (DESIGN.md §14):
// the strategy-proofness headline (an adversary gains no useful
// machine-hours over its truthful twin under Karma, and does under
// greedy), round-by-round credit conservation, and the utilization gap
// between Karma and the static fair-share baseline.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/fleet.h"
#include "src/cluster/karma.h"

namespace proteus {
namespace cluster {
namespace {

class MultiTenantTest : public ::testing::Test {
 protected:
  MultiTenantTest() : catalog_(InstanceTypeCatalog::Default()) {
    SyntheticTraceConfig config;
    config.spikes_per_day = 3.0;
    Rng rng(81);
    traces_ = TraceStore::GenerateSynthetic(catalog_, {"z0"}, 40 * kDay, config, rng);
    estimator_.Train(traces_, 0.0, 15 * kDay);
    scheduler_ = std::make_unique<ClusterScheduler>(&catalog_, &traces_, &estimator_);
  }

  // Truthful twin vs over-reporting twin (same demand stream) plus
  // duty-cycled background tenants whose idle rounds create the donated
  // capacity the mechanisms divide differently.
  static std::vector<TenantSpec> Twins() {
    std::vector<TenantSpec> specs;
    TenantSpec honest;
    honest.name = "honest";
    honest.slot_hours = 1000.0;  // Never finishes: useful hours measure access.
    honest.max_slots = 12;
    honest.active_fraction = 0.5;
    honest.demand_seed = 7;
    specs.push_back(honest);
    TenantSpec adv = honest;
    adv.name = "adversary";
    adv.strategy = DemandStrategy::kAlwaysMax;
    adv.inflate_factor = 2.0;
    specs.push_back(adv);
    for (int i = 0; i < 4; ++i) {
      TenantSpec bg;
      bg.name = "bg" + std::to_string(i);
      bg.slot_hours = 700.0;
      bg.max_slots = 8;
      bg.active_fraction = 0.5;
      bg.demand_seed = 20 + static_cast<std::uint64_t>(i);
      specs.push_back(bg);
    }
    return specs;
  }

  FleetConfig Config(int capacity, int rounds) const {
    FleetConfig config;
    config.slot_market = {"z0", "c4.xlarge"};
    config.start = 16 * kDay;
    config.rounds = rounds;
    config.fixed_capacity = capacity;
    return config;
  }

  FleetResult Run(const std::vector<TenantSpec>& specs, const FleetConfig& config,
                  const std::string& mechanism) {
    const auto allocator = MakeAllocator(mechanism);
    return scheduler_->Run(specs, *allocator, config);
  }

  static double AdversaryDelta(const FleetResult& result) {
    return result.Find("adversary")->useful_hours - result.Find("honest")->useful_hours;
  }

  InstanceTypeCatalog catalog_;
  TraceStore traces_;
  EvictionEstimator estimator_;
  std::unique_ptr<ClusterScheduler> scheduler_;
};

TEST_F(MultiTenantTest, OverReportingGainsNothingUnderKarma) {
  const FleetConfig config = Config(18, 96);
  // Under Karma every borrowed slot costs a credit, so the inflated
  // report burns the adversary's balance on slots it cannot use: it
  // ends with no more useful hours than its truthful twin.
  EXPECT_LE(AdversaryDelta(Run(Twins(), config, "karma")), 1.0);
  // Greedy hands capacity to the loudest report: inflation pays, big.
  EXPECT_GT(AdversaryDelta(Run(Twins(), config, "greedy")), 100.0);
}

TEST_F(MultiTenantTest, CreditsConserveEveryRound) {
  const FleetResult result = Run(Twins(), Config(18, 96), "karma");
  ASSERT_EQ(result.rounds.size(), 96u);
  for (const RoundRecord& rec : result.rounds) {
    EXPECT_TRUE(rec.conservation_ok) << "round " << rec.round;
    EXPECT_GE(rec.escrow, 0) << "round " << rec.round;
    EXPECT_GE(rec.balances, 0) << "round " << rec.round;
  }
}

TEST_F(MultiTenantTest, KarmaRecyclesIdleCapacityFairShareWastes) {
  // Duty-cycled tenants leave half their static share idle; Karma lends
  // those slots out while static fair-share lets them go to waste.
  const FleetConfig config = Config(18, 48);
  const FleetResult karma = Run(Twins(), config, "karma");
  const FleetResult fair = Run(Twins(), config, "fair");
  EXPECT_GT(karma.mean_utilization, fair.mean_utilization + 0.1);
  // And the lending is fair over the long run, not a land grab.
  EXPECT_GT(karma.jain_long_term, 0.8);
}

TEST_F(MultiTenantTest, CsvCarriesEveryActiveTenantRound) {
  const FleetResult result = Run(Twins(), Config(18, 24), "karma");
  const std::string csv = result.ToCsv();
  EXPECT_NE(csv.find("round,time_h,capacity,tenant"), std::string::npos);
  EXPECT_NE(csv.find("adversary"), std::string::npos);
  EXPECT_NE(csv.find("always_max"), std::string::npos);
  // One row per (round, admitted tenant): 6 tenants, no arrivals/exits.
  std::size_t rows = 0;
  for (const char c : csv) {
    rows += c == '\n';
  }
  EXPECT_GE(rows, 24u * 6u);
  EXPECT_EQ(result.tenant_rounds.size(), 24u * 6u);
}

}  // namespace
}  // namespace cluster
}  // namespace proteus
