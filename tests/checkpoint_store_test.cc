// Unit tests for the durable CheckpointStore: the two-phase manifest
// commit, incremental shard reuse, retention/GC, crash-reopen recovery
// of the epoch cursor, fault-hook behavior of MemDurableDevice, and the
// file-backed device.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "src/ps/checkpoint_store.h"

namespace proteus {
namespace {

std::vector<std::vector<std::uint8_t>> MakeBlobs(int shards, std::uint8_t salt) {
  std::vector<std::vector<std::uint8_t>> blobs;
  for (int s = 0; s < shards; ++s) {
    std::vector<std::uint8_t> blob;
    for (int i = 0; i < 64 + 8 * s; ++i) {
      blob.push_back(static_cast<std::uint8_t>(salt + s * 31 + i));
    }
    blobs.push_back(std::move(blob));
  }
  return blobs;
}

TEST(CheckpointStoreTest, WriteAndReadBackRoundTrip) {
  MemDurableDevice device;
  CheckpointStore store(&device);
  const auto blobs = MakeBlobs(3, 7);
  const CheckpointWriteResult write = store.WriteBlobs(blobs, {1, 1, 1}, 5);
  ASSERT_TRUE(write.committed);
  EXPECT_EQ(write.epoch, 1u);
  EXPECT_EQ(write.chunks_written, 3);
  EXPECT_EQ(write.chunks_reused, 0);
  EXPECT_GT(write.bytes_written, 0u);

  const auto loaded = store.ReadNewestValid();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 1u);
  EXPECT_EQ(loaded->clock, 5);
  EXPECT_EQ(loaded->shard_blobs, blobs);
  EXPECT_EQ(loaded->corrupt_epochs_skipped, 0);
  EXPECT_EQ(loaded->torn_epochs_skipped, 0);
  EXPECT_TRUE(store.Scrub().clean());
}

TEST(CheckpointStoreTest, IncrementalWriteReusesUnchangedShards) {
  MemDurableDevice device;
  CheckpointStore store(&device);
  auto blobs = MakeBlobs(4, 3);
  ASSERT_TRUE(store.WriteBlobs(blobs, {1, 1, 1, 1}, 2).committed);

  blobs[2] = MakeBlobs(4, 99)[2];  // Only shard 2 changed.
  const CheckpointWriteResult second = store.WriteBlobs(blobs, {1, 1, 2, 1}, 4);
  ASSERT_TRUE(second.committed);
  EXPECT_EQ(second.chunks_written, 1);
  EXPECT_EQ(second.chunks_reused, 3);

  const auto loaded = store.ReadNewestValid();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 2u);
  EXPECT_EQ(loaded->shard_blobs, blobs);
}

TEST(CheckpointStoreTest, DroppedRenameLeavesPriorEpochRestorable) {
  MemDurableDevice device;
  CheckpointStore store(&device);
  const auto first = MakeBlobs(2, 1);
  ASSERT_TRUE(store.WriteBlobs(first, {1, 1}, 3).committed);

  device.ArmDropRename();  // The commit point never happens.
  const auto second = MakeBlobs(2, 50);
  const CheckpointWriteResult torn = store.WriteBlobs(second, {2, 2}, 6);
  EXPECT_FALSE(torn.committed);
  EXPECT_EQ(store.commit_aborts(), 1u);
  EXPECT_EQ(store.last_committed_epoch(), 1u);

  // The torn epoch is skipped (counted, never loaded); epoch 1 serves.
  const auto loaded = store.ReadNewestValid();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 1u);
  EXPECT_EQ(loaded->shard_blobs, first);
  EXPECT_EQ(loaded->torn_epochs_skipped, 1);
  EXPECT_EQ(store.Scrub().torn_epochs, 1);
  EXPECT_TRUE(store.Scrub().clean());
}

TEST(CheckpointStoreTest, TornChunkWriteAbortsCleanly) {
  MemDurableDevice device;
  CheckpointStore store(&device);
  ASSERT_TRUE(store.WriteBlobs(MakeBlobs(2, 1), {1, 1}, 3).committed);

  device.ArmTornWrite(0.5);  // The next chunk write tears mid-frame.
  const CheckpointWriteResult torn = store.WriteBlobs(MakeBlobs(2, 50), {2, 2}, 6);
  EXPECT_FALSE(torn.committed);
  EXPECT_EQ(store.commit_aborts(), 1u);
  // The partial object was rolled back: the device self-scrubs clean.
  EXPECT_TRUE(store.Scrub().clean());
  const auto loaded = store.ReadNewestValid();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 1u);
}

TEST(CheckpointStoreTest, RetentionGarbageCollectsOldEpochs) {
  MemDurableDevice device;
  CheckpointStore store(&device, CheckpointStoreConfig{2});
  for (int e = 0; e < 5; ++e) {
    const std::uint64_t v = static_cast<std::uint64_t>(e + 1);
    ASSERT_TRUE(store
                    .WriteBlobs(MakeBlobs(2, static_cast<std::uint8_t>(e)), {v, v},
                                static_cast<Clock>(e))
                    .committed);
  }
  // Only the 2 newest manifests survive, and no unreferenced chunks.
  int manifests = 0;
  for (const std::string& name : device.List()) {
    manifests += name.find("/MANIFEST") != std::string::npos;
  }
  EXPECT_EQ(manifests, 2);
  EXPECT_TRUE(store.Scrub().clean());
  const auto loaded = store.ReadNewestValid();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 5u);
}

TEST(CheckpointStoreTest, ReopenRecoversEpochCursorAndIncrementality) {
  MemDurableDevice device;
  auto blobs = MakeBlobs(3, 9);
  {
    CheckpointStore store(&device);
    ASSERT_TRUE(store.WriteBlobs(blobs, {5, 6, 7}, 10).committed);
    ASSERT_TRUE(store.WriteBlobs(blobs, {5, 6, 7}, 12).committed);
  }
  // A new store over the same device (process restart) must continue the
  // epoch sequence and still recognize unchanged shards.
  CheckpointStore reopened(&device);
  EXPECT_EQ(reopened.last_committed_epoch(), 2u);
  const CheckpointWriteResult next = reopened.WriteBlobs(blobs, {5, 6, 7}, 14);
  ASSERT_TRUE(next.committed);
  EXPECT_EQ(next.epoch, 3u);
  EXPECT_EQ(next.chunks_reused, 3);
  EXPECT_EQ(next.chunks_written, 0);
}

TEST(CheckpointStoreTest, CorruptReusedChunkIsRewrittenNotPropagated) {
  MemDurableDevice device;
  CheckpointStore store(&device);
  const auto blobs = MakeBlobs(2, 4);
  ASSERT_TRUE(store.WriteBlobs(blobs, {1, 1}, 2).committed);

  // Rot a chunk that the next epoch would reuse.
  std::string chunk;
  for (const std::string& name : device.List()) {
    if (name.rfind("ck/obj/", 0) == 0) {
      chunk = name;
      break;
    }
  }
  ASSERT_FALSE(chunk.empty());
  ASSERT_TRUE(device.FlipBit(chunk, 10, 2));

  // Same versions: a naive store would reference the rotten chunk
  // forever. Ours re-validates on reuse and rewrites it.
  const CheckpointWriteResult heal = store.WriteBlobs(blobs, {1, 1}, 4);
  ASSERT_TRUE(heal.committed);
  EXPECT_GE(heal.chunks_written, 1);
  const auto loaded = store.ReadNewestValid();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 2u);
  EXPECT_EQ(loaded->shard_blobs, blobs);
}

TEST(CheckpointStoreTest, FileDeviceEndToEndWithReopen) {
  const std::string root =
      (std::filesystem::path(::testing::TempDir()) / "proteus_ckpt_test").string();
  std::filesystem::remove_all(root);
  FileDurableDevice device(root);
  const auto blobs = MakeBlobs(3, 21);
  {
    CheckpointStore store(&device);
    ASSERT_TRUE(store.WriteBlobs(blobs, {1, 2, 3}, 7).committed);
    EXPECT_TRUE(store.Scrub().clean());
  }
  FileDurableDevice reopened_device(root);
  CheckpointStore reopened(&reopened_device);
  EXPECT_EQ(reopened.last_committed_epoch(), 1u);
  const auto loaded = reopened.ReadNewestValid();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->clock, 7);
  EXPECT_EQ(loaded->shard_blobs, blobs);
  std::filesystem::remove_all(root);
}

TEST(MemDurableDeviceTest, FaultHooksDisarmAfterOneShot) {
  MemDurableDevice device;
  const std::vector<std::uint8_t> payload(32, 0xAB);
  device.ArmTornWrite(0.5);
  EXPECT_FALSE(device.Write("a", payload));  // Torn: partial object stored.
  EXPECT_TRUE(device.Write("b", payload));   // Disarmed again.
  EXPECT_EQ(device.Read("b")->size(), payload.size());
  EXPECT_LT(device.Read("a")->size(), payload.size());

  device.ArmDropRename();
  EXPECT_FALSE(device.Rename("b", "c"));
  EXPECT_TRUE(device.Exists("b"));
  EXPECT_TRUE(device.Rename("b", "c"));
  EXPECT_TRUE(device.Exists("c"));
  EXPECT_FALSE(device.Exists("b"));
}

}  // namespace
}  // namespace proteus
