#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"

namespace proteus {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoTieBreakAtSameInstant) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(1.0, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(1.0, [&] { ++ran; });
  q.ScheduleAt(5.0, [&] { ++ran; });
  q.RunUntil(3.0);
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  SimTime fired = -1.0;
  q.ScheduleAt(2.0, [&] { q.ScheduleAfter(3.0, [&] { fired = q.now(); }); });
  q.RunAll();
  EXPECT_DOUBLE_EQ(fired, 5.0);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int ran = 0;
  const EventId id = q.ScheduleAt(1.0, [&] { ++ran; });
  q.ScheduleAt(2.0, [&] { ++ran; });
  EXPECT_TRUE(q.Cancel(id));
  q.RunAll();
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.ScheduleAt(1.0, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}


TEST(EventQueue, CancelAfterRunReturnsFalseAndKeepsCountsConsistent) {
  EventQueue q;
  const EventId id = q.ScheduleAt(1.0, [] {});
  q.RunAll();
  EXPECT_FALSE(q.Cancel(id));  // Already executed.
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, PendingCountTracksLifecycle) {
  EventQueue q;
  const EventId a = q.ScheduleAt(1.0, [] {});
  q.ScheduleAt(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  q.Step();
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      q.ScheduleAfter(1.0, recurse);
    }
  };
  q.ScheduleAt(0.0, recurse);
  q.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.Step());
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace proteus
