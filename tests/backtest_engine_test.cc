#include "src/backtest/backtest_engine.h"

#include <gtest/gtest.h>

#include <set>

#include "src/market/trace_gen.h"

namespace proteus {
namespace {

using backtest::BacktestConfig;
using backtest::BacktestEngine;
using backtest::BacktestPolicyAggregate;
using backtest::BacktestReport;

class BacktestEngineTest : public ::testing::Test {
 protected:
  BacktestEngineTest() {
    catalog_ = InstanceTypeCatalog::Default();
    SyntheticTraceConfig config;
    config.spikes_per_day = 4.0;
    Rng rng(11);
    traces_ = TraceStore::GenerateSynthetic(catalog_, {"z0", "z1"}, 10 * kDay, config, rng);
    estimator_.Train(traces_, 0.0, 5 * kDay);
  }

  BacktestConfig SmallConfig() const {
    BacktestConfig config;
    config.eval_begin = 5 * kDay;
    config.eval_end = 10 * kDay;
    config.windows = 4;
    config.window_duration = kHour;
    config.reference_count = 8;
    config.scheme.standard_target_vcpus = 64;
    config.scheme.bidbrain.max_spot_instances = 24;
    return config;
  }

  BacktestEngine MakeEngine() const {
    BacktestEngine engine(&catalog_, &traces_, &estimator_);
    EXPECT_TRUE(engine.RegisterPolicySpec("on_demand", SmallConfig().scheme));
    EXPECT_TRUE(engine.RegisterPolicySpec("fixed_delta:0.05", SmallConfig().scheme));
    EXPECT_TRUE(engine.RegisterPolicySpec("bidbrain", SmallConfig().scheme));
    return engine;
  }

  InstanceTypeCatalog catalog_;
  TraceStore traces_;
  EvictionEstimator estimator_;
};

TEST_F(BacktestEngineTest, CellSeedIsDeterministicAndWellSpread) {
  const std::uint64_t a = BacktestEngine::CellSeed(1, "p", "t", 0);
  EXPECT_EQ(a, BacktestEngine::CellSeed(1, "p", "t", 0));
  std::set<std::uint64_t> seeds;
  for (int w = 0; w < 16; ++w) {
    seeds.insert(BacktestEngine::CellSeed(1, "p", "t", w));
    seeds.insert(BacktestEngine::CellSeed(1, "q", "t", w));
    seeds.insert(BacktestEngine::CellSeed(2, "p", "t", w));
  }
  EXPECT_EQ(seeds.size(), 48u);  // No collisions across policy/seed/window.
}

TEST_F(BacktestEngineTest, EnumeratesPolicyMajorCells) {
  const BacktestEngine engine = MakeEngine();
  const BacktestReport report = engine.Run(SmallConfig());
  ASSERT_EQ(report.cells.size(), 3u * 4u);
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    EXPECT_EQ(report.cells[i].policy, engine.policy_names()[i / 4]);
    EXPECT_EQ(report.cells[i].window, static_cast<int>(i % 4));
  }
}

TEST_F(BacktestEngineTest, WindowGridSpreadsEvenlyToEvalEnd) {
  const BacktestEngine engine = MakeEngine();
  const BacktestConfig config = SmallConfig();
  const BacktestReport report = engine.Run(config);
  // stride 0: last window's job span [start, start + duration] ends at
  // eval_end; first starts at eval_begin.
  EXPECT_DOUBLE_EQ(report.cells[0].start, config.eval_begin);
  EXPECT_DOUBLE_EQ(report.cells[3].start + config.window_duration, config.eval_end);
}

TEST_F(BacktestEngineTest, ExplicitStartsOverrideTheGrid) {
  const BacktestEngine engine = MakeEngine();
  BacktestConfig config = SmallConfig();
  config.explicit_starts = {5.5 * kDay, 6.5 * kDay};
  const BacktestReport report = engine.Run(config);
  ASSERT_EQ(report.cells.size(), 3u * 2u);
  EXPECT_DOUBLE_EQ(report.cells[0].start, 5.5 * kDay);
  EXPECT_DOUBLE_EQ(report.cells[1].start, 6.5 * kDay);
}

TEST_F(BacktestEngineTest, AggregatesAndRanking) {
  const BacktestEngine engine = MakeEngine();
  const BacktestReport report = engine.Run(SmallConfig());
  ASSERT_EQ(report.aggregates.size(), 3u);
  // Registration order is preserved in aggregates.
  EXPECT_EQ(report.aggregates[0].policy, "on_demand");
  // The on-demand baseline normalizes to itself.
  const BacktestPolicyAggregate* od = report.Find("on_demand");
  ASSERT_NE(od, nullptr);
  EXPECT_EQ(od->cells, 4);
  EXPECT_EQ(od->completed, 4);
  EXPECT_DOUBLE_EQ(od->cost_vs_on_demand, 1.0);
  // Ranking is cheapest-first over the aggregates.
  ASSERT_EQ(report.ranking.size(), 3u);
  for (std::size_t i = 1; i < report.ranking.size(); ++i) {
    EXPECT_LE(report.aggregates[report.ranking[i - 1]].mean_cost,
              report.aggregates[report.ranking[i]].mean_cost);
  }
}

TEST_F(BacktestEngineTest, SpotPoliciesBeatOnDemandOnTheseTraces) {
  const BacktestEngine engine = MakeEngine();
  const BacktestReport report = engine.Run(SmallConfig());
  const BacktestPolicyAggregate* od = report.Find("on_demand");
  const BacktestPolicyAggregate* bb = report.Find("bidbrain");
  ASSERT_NE(od, nullptr);
  ASSERT_NE(bb, nullptr);
  ASSERT_GT(bb->completed, 0);
  EXPECT_LT(bb->mean_cost, od->mean_cost);
}

TEST_F(BacktestEngineTest, MetricsRecordedPerPolicy) {
  BacktestEngine engine = MakeEngine();
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  engine.SetObservability(&tracer, &metrics);
  const BacktestReport report = engine.Run(SmallConfig());
  const obs::MetricsSnapshot snapshot = metrics.Snapshot();
  for (const std::string& name : engine.policy_names()) {
    EXPECT_DOUBLE_EQ(snapshot.Value("backtest.cells", {{"policy", name}}), 4.0);
  }
  EXPECT_EQ(tracer.size(), report.cells.size());
}

TEST_F(BacktestEngineTest, JitterDrawsFromTheCellSeed) {
  const BacktestEngine engine = MakeEngine();
  BacktestConfig config = SmallConfig();
  config.start_jitter = kHour;
  const BacktestReport once = engine.Run(config);
  const BacktestReport twice = engine.Run(config);
  for (std::size_t i = 0; i < once.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(once.cells[i].start, twice.cells[i].start);
    EXPECT_GE(once.cells[i].start, SmallConfig().eval_begin);
  }
}

}  // namespace
}  // namespace proteus
