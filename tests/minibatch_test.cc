// Mini-batch clocks (§3.1 footnote 3): a clock of work may be a fraction
// of a data pass.
#include <gtest/gtest.h>

#include <memory>

#include "src/agileml/runtime.h"
#include "src/apps/datasets.h"
#include "src/apps/mf.h"

namespace proteus {
namespace {

class MinibatchTest : public ::testing::Test {
 protected:
  MinibatchTest() {
    RatingsConfig rc;
    rc.users = 400;
    rc.items = 100;
    rc.ratings = 20000;
    data_ = GenerateRatings(rc);
  }

  AgileMLConfig Config(int minibatches) const {
    AgileMLConfig config;
    config.num_partitions = 8;
    config.data_blocks = 32;
    config.parallel_execution = false;
    config.minibatches_per_pass = minibatches;
    return config;
  }

  static std::vector<NodeInfo> Nodes(int n) {
    std::vector<NodeInfo> nodes;
    nodes.push_back({0, Tier::kReliable, 8, kInvalidAllocation});
    for (NodeId id = 1; id < n; ++id) {
      nodes.push_back({id, Tier::kTransient, 8, kInvalidAllocation});
    }
    return nodes;
  }

  RatingsDataset data_;
};

TEST_F(MinibatchTest, MinibatchClockIsProportionallyCheaper) {
  MfConfig mc;
  mc.rank = 16;
  MatrixFactorizationApp full_app(&data_, mc);
  AgileMLRuntime full(&full_app, Config(1), Nodes(4));
  const double full_compute = full.RunClock().max_compute;

  MatrixFactorizationApp mini_app(&data_, mc);
  AgileMLRuntime mini(&mini_app, Config(4), Nodes(4));
  const double mini_compute = mini.RunClock().max_compute;
  EXPECT_NEAR(mini_compute, full_compute / 4.0, full_compute * 0.05);
}

TEST_F(MinibatchTest, KClocksCoverTheFullPass) {
  // With k mini-batches, k clocks must process every data item exactly
  // once: the model after k mini-clocks equals one full-pass clock run
  // with the same per-clock RNG... (update order differs, so compare
  // objective improvement instead of exact state).
  MfConfig mc;
  mc.rank = 16;
  MatrixFactorizationApp full_app(&data_, mc);
  AgileMLRuntime full(&full_app, Config(1), Nodes(4));
  full.RunClocks(3);

  MatrixFactorizationApp mini_app(&data_, mc);
  AgileMLRuntime mini(&mini_app, Config(4), Nodes(4));
  mini.RunClocks(12);  // Same number of data passes.

  const double full_obj = full.ComputeObjective();
  const double mini_obj = mini.ComputeObjective();
  EXPECT_NEAR(mini_obj, full_obj, full_obj * 0.25);
}

TEST_F(MinibatchTest, ConvergesWithMinibatches) {
  MfConfig mc;
  mc.rank = 16;
  mc.learning_rate = 0.05;
  MatrixFactorizationApp app(&data_, mc);
  AgileMLRuntime runtime(&app, Config(8), Nodes(4));
  const double before = runtime.ComputeObjective();
  runtime.RunClocks(80);  // Ten passes.
  EXPECT_LT(runtime.ComputeObjective(), before * 0.8);
}

TEST_F(MinibatchTest, ElasticityWorksMidPass) {
  MfConfig mc;
  mc.rank = 16;
  MatrixFactorizationApp app(&data_, mc);
  AgileMLRuntime runtime(&app, Config(4), Nodes(8));
  runtime.RunClocks(6);  // Mid-pass (6 % 4 != 0).
  std::vector<NodeId> evictees;
  for (const auto& node : runtime.nodes()) {
    if (!node.reliable() && evictees.size() < 3) {
      evictees.push_back(node.id);
    }
  }
  runtime.Evict(evictees);
  EXPECT_TRUE(runtime.data().OwnershipIsComplete());
  const double obj = runtime.ComputeObjective();
  runtime.RunClocks(8);
  EXPECT_LT(runtime.ComputeObjective(), obj);
}

}  // namespace
}  // namespace proteus
