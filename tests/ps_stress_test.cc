// Concurrency stress battery for the lock-striped ModelStore. Runs under
// the TSan preset/CI job (cmake --preset tsan) as well as the default
// and ASan builds. Invariants:
//   - no torn rows: writers add uniform-constant deltas to rows whose
//     init_jitter is 0, so EVERY consistent read of a row must see all
//     components equal — a mixed row means a reader saw a half-applied
//     update;
//   - atomicity of overlapping writes: after joining, each contended
//     row's value equals the exact sum of all constants applied to it
//     (float addition of identical constants is associative enough:
//     values are small integers, exactly representable);
//   - per-shard version counters are monotonic under concurrency;
//   - concurrent SerializeCheckpoint snapshots are internally consistent
//     (restoring one into a fresh store never yields a torn row).
// The soak-labeled long variant lives in tests/ps_stress_soak_test.cc.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/ps/model.h"

namespace proteus {
namespace {

constexpr int kCols = 8;

ModelStore MakeStore(int shards, std::int64_t rows) {
  ModelOptions options;
  options.shards = shards;
  // init_jitter = 0: every row starts with all components equal, and
  // uniform deltas keep them equal — the torn-row oracle.
  return ModelStore({{0, rows, kCols, 0.0F, 0.0F}}, /*num_partitions=*/16,
                    /*seed=*/11, options);
}

void ExpectUniformRow(std::span<const float> row, const char* what) {
  for (std::size_t c = 1; c < row.size(); ++c) {
    ASSERT_EQ(row[c], row[0]) << what << ": torn row (component " << c << ")";
  }
}

// Writers add `value` to every component of rows in [begin, end) for
// `iters` rounds, alternating the single-row and batched entry points.
void WriterLoop(ModelStore& store, std::int64_t begin, std::int64_t end, float value, int iters) {
  std::vector<float> delta(kCols, value);
  std::vector<RowDelta> batch;
  for (int it = 0; it < iters; ++it) {
    if (it % 2 == 0) {
      for (std::int64_t r = begin; r < end; ++r) {
        store.ApplyDelta(0, r, delta);
      }
    } else {
      batch.clear();
      for (std::int64_t r = begin; r < end; ++r) {
        batch.push_back({0, r, std::span<const float>(delta)});
      }
      store.ApplyUpdates(batch);
    }
  }
}

void RunStress(int shards, int writers, int iters, std::int64_t rows_per_writer) {
  const std::int64_t contended_rows = rows_per_writer;  // Shared tail range.
  const std::int64_t total_rows = writers * rows_per_writer + contended_rows;
  ModelStore store = MakeStore(shards, total_rows);

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<int> version_regressions{0};

  // Reader: point reads across the whole key space, checking for torn rows.
  std::thread reader([&] {
    std::vector<float> out;
    std::uint64_t x = 0x243F6A8885A308D3ULL;  // Local xorshift; no locks.
    while (!stop.load(std::memory_order_relaxed)) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      const std::int64_t r = static_cast<std::int64_t>(x % static_cast<std::uint64_t>(total_rows));
      store.ReadRow(0, r, out);
      for (int c = 1; c < kCols; ++c) {
        if (out[static_cast<std::size_t>(c)] != out[0]) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  // Version watcher: per-shard counters must never move backwards.
  std::thread watcher([&] {
    std::vector<std::uint64_t> last(static_cast<std::size_t>(store.shards()), 0);
    while (!stop.load(std::memory_order_relaxed)) {
      for (int s = 0; s < store.shards(); ++s) {
        const std::uint64_t v = store.ShardVersion(s);
        if (v < last[static_cast<std::size_t>(s)]) {
          version_regressions.fetch_add(1, std::memory_order_relaxed);
        }
        last[static_cast<std::size_t>(s)] = v;
      }
    }
  });

  // Snapshotter: full-model serialization racing the writers; each blob
  // must restore to a store with zero torn rows.
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<std::uint8_t> blob = store.SerializeCheckpoint();
      ModelStore replica = MakeStore(shards, total_rows);
      replica.RestoreCheckpoint(blob);
      replica.ForEachRow(0, [&](std::int64_t, std::span<const float> row) {
        for (std::size_t c = 1; c < row.size(); ++c) {
          if (row[c] != row[0]) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  for (int w = 0; w < writers; ++w) {
    // Disjoint range, plus everyone hammers the shared contended tail.
    threads.emplace_back([&, w] {
      const std::int64_t begin = w * rows_per_writer;
      WriterLoop(store, begin, begin + rows_per_writer, 1.0F, iters);
      WriterLoop(store, writers * rows_per_writer, total_rows, 1.0F, iters);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  watcher.join();
  snapshotter.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(version_regressions.load(), 0);

  // Exact final sums. Each disjoint row received `iters` adds of 1.0
  // from one writer; each contended row `iters` adds from every writer.
  std::vector<float> out;
  for (std::int64_t r = 0; r < writers * rows_per_writer; ++r) {
    store.ReadRow(0, r, out);
    ExpectUniformRow(out, "disjoint");
    ASSERT_EQ(out[0], static_cast<float>(iters)) << "row " << r;
  }
  for (std::int64_t r = writers * rows_per_writer; r < total_rows; ++r) {
    store.ReadRow(0, r, out);
    ExpectUniformRow(out, "contended");
    ASSERT_EQ(out[0], static_cast<float>(iters * writers)) << "row " << r;
  }
}

TEST(PsStressTest, StripedStoreSurvivesConcurrentWritersAndReaders) {
  RunStress(/*shards=*/4, /*writers=*/4, /*iters=*/60, /*rows_per_writer=*/64);
}

TEST(PsStressTest, ManyShardsManyWriters) {
  RunStress(/*shards=*/8, /*writers=*/8, /*iters=*/30, /*rows_per_writer=*/32);
}

TEST(PsStressTest, LegacyEngineSameInvariants) {
  RunStress(/*shards=*/1, /*writers=*/4, /*iters=*/40, /*rows_per_writer=*/48);
}

TEST(PsStressTest, ConcurrentBackupSyncAndRollbackKeepRowsUniform) {
  ModelStore store = MakeStore(/*shards=*/4, /*rows=*/256);
  store.EnableBackups();
  std::atomic<bool> stop{false};
  std::thread syncer([&] {
    int spin = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (PartitionId p = 0; p < store.num_partitions(); ++p) {
        store.SyncPartitionToBackup(p, /*at_clock=*/spin);
      }
      ++spin;
      if (spin % 3 == 0) {
        store.RollbackAllToBackup();
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&] { WriterLoop(store, 0, 256, 1.0F, 40); });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_relaxed);
  syncer.join();
  // Rollbacks discard arbitrary update subsets, so final values are not
  // predictable — but uniformity must hold, and the store must still be
  // serializable and restorable.
  std::vector<float> out;
  for (std::int64_t r = 0; r < 256; ++r) {
    store.ReadRow(0, r, out);
    ExpectUniformRow(out, "post-sync/rollback");
  }
  ModelStore replica = MakeStore(4, 256);
  replica.RestoreCheckpoint(store.SerializeCheckpoint());
  EXPECT_EQ(replica.SerializeCheckpoint(), store.SerializeCheckpoint());
}

}  // namespace
}  // namespace proteus
