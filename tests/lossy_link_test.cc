// Lossy-link end-to-end: with the reliable transport on, a control link
// that drops, reorders, duplicates, and blackholes frames produces a
// model byte-identical to the fault-free run; with the raw channel the
// same faults silently diverge the run. Either way the defensive
// controller keeps the auditor clean.
#include <gtest/gtest.h>

#include <memory>

#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/chaos/lossy_link.h"

namespace proteus {
namespace {

class LossyLinkTest : public ::testing::Test {
 protected:
  LossyLinkTest() {
    RatingsConfig rc;
    rc.users = 300;
    rc.items = 150;
    rc.ratings = 10000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 4;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  LossyLinkConfig Config(std::uint64_t seed) const {
    LossyLinkConfig config;
    config.agileml.num_partitions = 8;
    config.agileml.data_blocks = 64;
    config.agileml.parallel_execution = false;
    config.agileml.backup_sync_every = 3;
    config.agileml.seed = seed;
    config.horizon = 24;
    config.command_every = 2;
    config.seed = seed;
    return config;
  }

  static LinkFaultProfile Hostile() {
    LinkFaultProfile profile;
    profile.drop_permille = 250;
    profile.delay_permille = 200;
    profile.dup_permille = 150;
    profile.blackhole_every = 20;
    profile.blackhole_len = 3;
    return profile;
  }

  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_F(LossyLinkTest, ReliableTransportMasksHostileLink) {
  const std::uint64_t seed = 21;
  LossyLinkConfig clean = Config(seed);  // No faults, raw channel.
  clean.reliable = false;
  const LossyLinkResult baseline = RunLossyLink(app_.get(), clean);
  ASSERT_TRUE(baseline.ok()) << "baseline run must be violation-free";
  ASSERT_GT(baseline.commands_issued, 0);
  ASSERT_EQ(baseline.commands_applied, baseline.commands_issued);

  LossyLinkConfig lossy = Config(seed);
  lossy.link = Hostile();
  lossy.reliable = true;
  const LossyLinkResult masked = RunLossyLink(app_.get(), lossy);
  ASSERT_TRUE(masked.ok()) << "reliable run must be violation-free";
  // The transport really worked against real faults...
  EXPECT_GT(masked.link_dropped, 0U);
  EXPECT_GT(masked.retransmits, 0U);
  // ...and the training outcome is byte-identical to the clean run.
  EXPECT_EQ(masked.model_digest, baseline.model_digest);
  EXPECT_EQ(masked.final_clock, baseline.final_clock);
  EXPECT_EQ(masked.lost_clocks_total, baseline.lost_clocks_total);
  EXPECT_EQ(masked.commands_applied, baseline.commands_applied);
}

TEST_F(LossyLinkTest, RawChannelDivergesUnderTheSameFaults) {
  const std::uint64_t seed = 33;
  LossyLinkConfig clean = Config(seed);
  clean.reliable = false;
  const LossyLinkResult baseline = RunLossyLink(app_.get(), clean);

  LossyLinkConfig lossy = Config(seed);
  lossy.link = Hostile();
  lossy.reliable = false;
  const LossyLinkResult raw = RunLossyLink(app_.get(), lossy);
  // Defensive controller: no invariant breaks even as commands vanish.
  ASSERT_TRUE(raw.ok()) << "raw lossy run must still be violation-free";
  EXPECT_GT(raw.link_dropped, 0U);
  EXPECT_LT(raw.commands_applied, baseline.commands_applied)
      << "drops should have eaten commands";
  EXPECT_NE(raw.model_digest, baseline.model_digest)
      << "losing control messages must change the training outcome";
}

TEST_F(LossyLinkTest, DuplicatesAloneAreAbsorbedByIdempotentController) {
  // Pure duplication on a raw channel: order is preserved and nothing is
  // lost, so rejecting replays is enough to match the clean run exactly.
  const std::uint64_t seed = 5;
  LossyLinkConfig clean = Config(seed);
  clean.reliable = false;
  const LossyLinkResult baseline = RunLossyLink(app_.get(), clean);

  LossyLinkConfig dup = Config(seed);
  dup.link.dup_permille = 400;
  dup.reliable = false;
  const LossyLinkResult result = RunLossyLink(app_.get(), dup);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.link_duplicated, 0U);
  EXPECT_GT(result.commands_rejected, 0);
  EXPECT_EQ(result.model_digest, baseline.model_digest);
}

TEST_F(LossyLinkTest, SameSeedRunsAreBitIdentical) {
  LossyLinkConfig config = Config(77);
  config.link = Hostile();
  config.reliable = true;
  const LossyLinkResult a = RunLossyLink(app_.get(), config);
  const LossyLinkResult b = RunLossyLink(app_.get(), config);
  EXPECT_EQ(a.model_digest, b.model_digest);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.dup_suppressed, b.dup_suppressed);
  EXPECT_EQ(a.link_dropped, b.link_dropped);
  EXPECT_EQ(a.commands_applied, b.commands_applied);
}

}  // namespace
}  // namespace proteus
