// Fault-recovery paths of the full §5 integration:
//   - allocations revoked while every node is still preloading are
//     abandoned without touching roles, clocks, or data ownership;
//   - reliable-tier checkpoint/restore works under stage-3 operation
//     with concurrent transient churn from the live market.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/chaos/consistency_auditor.h"
#include "src/market/trace_gen.h"
#include "src/proteus/proteus_runtime.h"

namespace proteus {
namespace {

class ProteusFaultRecoveryTest : public ::testing::Test {
 protected:
  ProteusFaultRecoveryTest() : catalog_(InstanceTypeCatalog::Default()) {
    SyntheticTraceConfig trace_config;
    trace_config.spikes_per_day = 6.0;  // Lively market: evictions happen.
    Rng rng(51);
    traces_ =
        TraceStore::GenerateSynthetic(catalog_, {"z0", "z1"}, 20 * kDay, trace_config, rng);
    estimator_.Train(traces_, 0.0, 10 * kDay);

    RatingsConfig rc;
    rc.users = 800;
    rc.items = 300;
    rc.ratings = 40000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 16;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  ProteusConfig Config() const {
    ProteusConfig config;
    config.agileml.num_partitions = 16;
    config.agileml.data_blocks = 128;
    config.agileml.parallel_execution = false;
    config.agileml.core_speed = 400.0;  // Minutes-long clocks: market churn.
    config.bidbrain.max_spot_instances = 32;
    config.bidbrain.allocation_quantum = 8;
    config.on_demand_count = 2;
    return config;
  }

  InstanceTypeCatalog catalog_;
  TraceStore traces_;
  EvictionEstimator estimator_;
  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_F(ProteusFaultRecoveryTest, EvictionDuringPreloadAbandonsWithoutLoss) {
  ProteusConfig config = Config();
  // Storage so slow that spot nodes never finish preloading: every market
  // eviction catches the whole allocation in the preparing state.
  config.agileml.storage_bandwidth = 10.0;
  ProteusRuntime runtime(app_.get(), &catalog_, &traces_, &estimator_, config, 11 * kDay);
  ConsistencyAuditor auditor(&runtime.agileml());
  for (int i = 0; i < 40; ++i) {
    runtime.Step();
    auditor.ObserveClock();
  }
  EXPECT_TRUE(auditor.ok()) << auditor.Report();

  const ProteusStatus status = runtime.Status();
  EXPECT_GT(status.acquisitions, 0);
  // The market revoked allocations, but none had incorporated a node, so
  // they are aborted preloads — not evictions, not failures, no rollback.
  EXPECT_GT(status.aborted_preloads, 0)
      << "market produced no preload-window revocations in 40 clocks";
  EXPECT_EQ(status.evictions, 0);
  EXPECT_EQ(status.failures, 0);
  EXPECT_EQ(status.lost_clocks, 0);
  // Abandoned nodes fully leave the membership and bookkeeping.
  for (const NodeInfo& node : runtime.agileml().nodes()) {
    EXPECT_TRUE(runtime.agileml().IsReadyNode(node.id) ||
                runtime.agileml().IsPreparingNode(node.id));
  }
  // Only the reliable tier ever computed; data ownership stayed whole.
  EXPECT_TRUE(runtime.agileml().data().OwnershipIsComplete());
  EXPECT_EQ(runtime.agileml().ReadyTierCounts().reliable, 2);
}

TEST_F(ProteusFaultRecoveryTest, CheckpointRestoreUnderStage3Churn) {
  ProteusConfig config = Config();
  config.checkpoint_every = 4;
  config.agileml.backup_sync_every = 3;
  ProteusRuntime runtime(app_.get(), &catalog_, &traces_, &estimator_, config, 11 * kDay);
  ConsistencyAuditor auditor(&runtime.agileml());

  // Let the market scale the job up; 32 spot vs 2 on-demand crosses the
  // 15:1 stage-3 threshold.
  bool saw_stage3 = false;
  while (runtime.agileml().clock() < 12) {
    runtime.Step();
    auditor.ObserveClock();
    saw_stage3 = saw_stage3 || runtime.agileml().stage() == Stage::kStage3;
  }
  EXPECT_TRUE(saw_stage3) << "job never reached stage 3 at 16:1 capacity";
  AgileMLRuntime& agileml = runtime.mutable_agileml();
  ASSERT_TRUE(agileml.HasCheckpoint());

  // Step until the auto-checkpoint trails the clock, so a restore has
  // clocks to lose.
  while (agileml.clock() <= agileml.checkpoint_clock()) {
    runtime.Step();
    auditor.ObserveClock();
  }
  const Clock before_clock = agileml.clock();
  const int before_lost = agileml.lost_clocks_total();
  const std::int64_t notices_before =
      agileml.control_log().Count(ControlMessage::kRollbackNotice);
  const int lost = agileml.RestoreFromCheckpoint();
  EXPECT_EQ(lost, static_cast<int>(before_clock - agileml.checkpoint_clock()));
  EXPECT_GE(lost, 1);
  EXPECT_EQ(agileml.clock(), before_clock - lost);
  EXPECT_EQ(agileml.lost_clocks_total(), before_lost + lost);
  EXPECT_GT(agileml.control_log().Count(ControlMessage::kRollbackNotice), notices_before)
      << "restore must tell workers to restart from the checkpointed clock";
  // After a backup-stage restore the snapshot doubles as a full sync.
  EXPECT_EQ(agileml.last_sync_clock(), agileml.clock());

  // A reliable node dies while transients churn; stage 2/3 keeps the
  // backups on the survivor and training continues.
  std::vector<NodeId> reliable;
  for (const NodeInfo& node : agileml.ReadyNodes()) {
    if (node.reliable()) {
      reliable.push_back(node.id);
    }
  }
  ASSERT_GE(reliable.size(), 2u);
  agileml.Fail({reliable.front()});
  EXPECT_GE(agileml.ReadyTierCounts().reliable, 1);

  const Clock target = agileml.clock() + 8;
  while (runtime.agileml().clock() < target) {
    runtime.Step();
    auditor.ObserveClock();
  }
  EXPECT_TRUE(auditor.ok()) << auditor.Report();
  EXPECT_GE(runtime.Status().lost_clocks, lost);
}

TEST_F(ProteusFaultRecoveryTest, SilentFailuresAreDetectedAndCounted) {
  // Some missed-warning market evictions turn into SILENT failures: the
  // nodes stop heartbeating but are never announced. The heartbeat
  // detector must confirm them, roll back, and count them — the run must
  // finish as healthy as one with only announced failures.
  ProteusConfig config = Config();
  config.agileml.detector.enabled = true;
  config.agileml.detector.suspect_after = 1;
  config.agileml.detector.confirm_after = 3;
  config.effective_failure_fraction = 0.6;  // Warnings get missed often...
  config.silent_failure_fraction = 1.0;     // ...and every miss is silent.
  config.agileml.backup_sync_every = 3;
  ProteusRuntime runtime(app_.get(), &catalog_, &traces_, &estimator_, config, 11 * kDay);
  ConsistencyAuditor auditor(&runtime.agileml());
  for (int i = 0; i < 120; ++i) {
    runtime.Step();
    auditor.ObserveClock();
  }
  EXPECT_TRUE(auditor.ok()) << auditor.Report();

  const ProteusStatus status = runtime.Status();
  EXPECT_GT(status.acquisitions, 0);
  // The lively market produced missed-warning revocations; with
  // fraction=1.0 every one of them went through the silent path.
  EXPECT_GT(status.silent_failures, 0)
      << "no missed-warning eviction occurred in 120 clocks; market too calm";
  EXPECT_GE(status.failures, status.silent_failures);
  // Every silenced node is eventually confirmed and removed: nothing
  // stays silenced forever, and the detector counted each confirmation.
  // (Drain first: a failure in the last couple of steps may still be
  // ripening toward its confirm_after bound.)
  const AgileMLRuntime& agileml = runtime.agileml();
  const auto any_silenced = [&agileml] {
    for (const NodeInfo& node : agileml.nodes()) {
      if (agileml.IsSilencedNode(node.id)) {
        return true;
      }
    }
    return false;
  };
  for (int i = 0; i < 30 && any_silenced(); ++i) {
    runtime.Step();
    auditor.ObserveClock();
  }
  for (const NodeInfo& node : agileml.nodes()) {
    EXPECT_FALSE(agileml.IsSilencedNode(node.id))
        << "node " << node.id << " still silenced at end of run";
  }
  EXPECT_GE(agileml.failure_detector().confirmations(),
            static_cast<std::uint64_t>(status.silent_failures));
  // Silent failures cost work (rollback), but training survived.
  EXPECT_GT(status.lost_clocks, 0);
  EXPECT_TRUE(agileml.data().OwnershipIsComplete());
}

}  // namespace
}  // namespace proteus
