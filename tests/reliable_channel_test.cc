// ReliableChannel: in-order exactly-once delivery over an adversarial
// link, bounded in-flight window, and a deterministic retransmission
// schedule (same seed + same fault pattern => identical retransmit log
// and byte-identical trace JSON).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "src/chaos/fault_injector.h"
#include "src/obs/trace.h"
#include "src/rpc/channel.h"
#include "src/rpc/messages.h"
#include "src/rpc/reliable.h"

namespace proteus {
namespace {

constexpr double kDt = 0.01;

Message Tagged(std::int32_t i) {
  return Message(AllocationGrantMsg{i, {i, i + 1}, 8});
}

std::int32_t TagOf(const Message& message) {
  const auto* grant = std::get_if<AllocationGrantMsg>(&message);
  return grant != nullptr ? grant->allocation : -1;
}

// Sends `count` tagged messages through a ReliableChannel whose link
// channels carry `profile` faults, pumping to quiescence; returns the
// delivered tag sequence.
struct PumpResult {
  std::vector<std::int32_t> delivered;
  std::uint64_t retransmits = 0;
  std::uint64_t dup_suppressed = 0;
  std::vector<RetransmitRecord> log;
};

void PumpThrough(int count, const LinkFaultProfile& profile, std::uint64_t seed,
                 obs::Tracer* tracer, PumpResult* result_out) {
  Channel data;
  Channel ack;
  FaultScheduleConfig schedule;
  schedule.events = 0;
  FaultInjector injector(seed, schedule);
  data.SetFaultHook(injector.MakeLinkFaultHook(profile));
  ack.SetFaultHook(injector.MakeLinkFaultHook(profile));
  ReliableChannelConfig config;
  config.seed = seed;
  ReliableChannel reliable(&data, &ack, config);
  if (tracer != nullptr) {
    reliable.SetObservability(tracer, nullptr, "test");
  }

  PumpResult result;
  double now = 0.0;
  for (std::int32_t i = 0; i < count; ++i) {
    reliable.Send(Tagged(i), now);
  }
  int rounds = 0;
  while (!reliable.Quiescent()) {
    ASSERT_LT(rounds++, 200000) << "failed to reach quiescence";
    now += kDt;
    reliable.Tick(now);
    while (std::optional<Message> m = reliable.Receive(now)) {
      result.delivered.push_back(TagOf(*m));
    }
  }
  while (std::optional<Message> m = reliable.Receive(now)) {
    result.delivered.push_back(TagOf(*m));
  }
  result.retransmits = reliable.retransmits();
  result.dup_suppressed = reliable.dup_suppressed();
  result.log = reliable.retransmit_log();
  *result_out = std::move(result);
}

PumpResult Pump(int count, const LinkFaultProfile& profile, std::uint64_t seed,
                obs::Tracer* tracer = nullptr) {
  PumpResult result;
  PumpThrough(count, profile, seed, tracer, &result);
  return result;
}

TEST(ReliableChannelTest, CleanLinkDeliversInOrder) {
  const PumpResult r = Pump(50, LinkFaultProfile{}, 7);
  ASSERT_EQ(r.delivered.size(), 50U);
  for (std::int32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(r.delivered[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(r.retransmits, 0U);
  EXPECT_EQ(r.dup_suppressed, 0U);
}

TEST(ReliableChannelTest, DropsReordersAndDuplicatesAreMasked) {
  LinkFaultProfile profile;
  profile.drop_permille = 250;
  profile.delay_permille = 200;  // Delayed frames can be overtaken.
  profile.dup_permille = 200;
  for (std::uint64_t seed : {1ULL, 42ULL, 4242ULL}) {
    const PumpResult r = Pump(120, profile, seed);
    ASSERT_EQ(r.delivered.size(), 120U) << "seed " << seed;
    for (std::int32_t i = 0; i < 120; ++i) {
      ASSERT_EQ(r.delivered[static_cast<std::size_t>(i)], i)
          << "seed " << seed << ": out of order at " << i;
    }
    EXPECT_GT(r.retransmits, 0U) << "seed " << seed;
  }
}

TEST(ReliableChannelTest, BlackholeWindowsAreSurvived) {
  LinkFaultProfile profile;
  profile.blackhole_every = 10;
  profile.blackhole_len = 3;  // 30% of sends swallowed in bursts.
  const PumpResult r = Pump(80, profile, 3);
  ASSERT_EQ(r.delivered.size(), 80U);
  for (std::int32_t i = 0; i < 80; ++i) {
    ASSERT_EQ(r.delivered[static_cast<std::size_t>(i)], i);
  }
  EXPECT_GT(r.retransmits, 0U);
}

TEST(ReliableChannelTest, AckLossForcesRetransmitButNeverRedelivery) {
  Channel data;  // Clean data path.
  Channel ack;
  // Cumulative acks shrug off random loss (the next surviving ack covers
  // everything before it), so to force a timeout we must blackhole the
  // ack path outright for longer than the RTO.
  int acks_swallowed = 0;
  ack.SetFaultHook([&acks_swallowed](const Message&) {
    ChannelFault fault;
    if (acks_swallowed < 40) {
      ++acks_swallowed;
      fault.action = ChannelFault::Action::kDrop;
    }
    return fault;
  });
  ReliableChannel reliable(&data, &ack, {});

  double now = 0.0;
  for (std::int32_t i = 0; i < 60; ++i) {
    reliable.Send(Tagged(i), now);
  }
  std::vector<std::int32_t> delivered;
  int rounds = 0;
  while (!reliable.Quiescent() && rounds++ < 200000) {
    now += kDt;
    reliable.Tick(now);
    while (std::optional<Message> m = reliable.Receive(now)) {
      delivered.push_back(TagOf(*m));
    }
  }
  ASSERT_EQ(delivered.size(), 60U);  // Exactly once, despite lost acks.
  for (std::int32_t i = 0; i < 60; ++i) {
    ASSERT_EQ(delivered[static_cast<std::size_t>(i)], i);
  }
  EXPECT_GT(reliable.retransmits(), 0U);
  // Every retransmitted frame had already landed; the receiver must
  // have suppressed the copies.
  EXPECT_GT(reliable.dup_suppressed(), 0U);
}

TEST(ReliableChannelTest, WindowBoundsInFlight) {
  Channel data;
  Channel ack;
  ReliableChannelConfig config;
  config.window = 8;
  ReliableChannel reliable(&data, &ack, config);
  for (std::int32_t i = 0; i < 100; ++i) {
    reliable.Send(Tagged(i), 0.0);
    EXPECT_LE(reliable.in_flight(), 8U);
  }
  EXPECT_EQ(reliable.in_flight(), 8U);
  EXPECT_EQ(reliable.backlog(), 92U);
  // Draining acks opens the window for the backlog.
  double now = 0.0;
  int rounds = 0;
  std::size_t delivered = 0;
  while (!reliable.Quiescent() && rounds++ < 200000) {
    now += kDt;
    reliable.Tick(now);
    EXPECT_LE(reliable.in_flight(), 8U);
    while (reliable.Receive(now)) {
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 100U);
  EXPECT_EQ(reliable.backlog(), 0U);
}

TEST(ReliableChannelTest, RetransmitScheduleIsDeterministic) {
  LinkFaultProfile profile;
  profile.drop_permille = 300;
  profile.dup_permille = 150;
  profile.blackhole_every = 25;
  profile.blackhole_len = 2;
  for (std::uint64_t seed : {5ULL, 99ULL}) {
    obs::Tracer ta;
    obs::Tracer tb;
    const PumpResult a = Pump(100, profile, seed, &ta);
    const PumpResult b = Pump(100, profile, seed, &tb);
    ASSERT_EQ(a.log.size(), b.log.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.log.size(); ++i) {
      EXPECT_EQ(a.log[i].seq, b.log[i].seq) << "seed " << seed << " entry " << i;
      EXPECT_EQ(a.log[i].attempt, b.log[i].attempt) << "seed " << seed << " entry " << i;
      EXPECT_EQ(a.log[i].at, b.log[i].at) << "seed " << seed << " entry " << i;
    }
    EXPECT_EQ(a.retransmits, b.retransmits) << "seed " << seed;
    EXPECT_EQ(a.dup_suppressed, b.dup_suppressed) << "seed " << seed;
    // Same schedule => byte-identical trace (retransmit instants and
    // delivery spans included).
    EXPECT_EQ(ta.ToChromeJson(), tb.ToChromeJson()) << "seed " << seed;
    EXPECT_GT(a.log.size(), 0U) << "seed " << seed << ": schedule never retransmitted";
  }
}

TEST(ReliableChannelTest, DifferentSeedsDifferentJitter) {
  LinkFaultProfile profile;
  profile.drop_permille = 300;
  const PumpResult a = Pump(100, profile, 5);
  const PumpResult b = Pump(100, profile, 6);
  ASSERT_FALSE(a.log.empty());
  ASSERT_FALSE(b.log.empty());
  bool differs = a.log.size() != b.log.size();
  for (std::size_t i = 0; !differs && i < a.log.size(); ++i) {
    differs = a.log[i].seq != b.log[i].seq || a.log[i].at != b.log[i].at;
  }
  EXPECT_TRUE(differs);
}

TEST(ReliableChannelTest, NonReliableTrafficPassesThrough) {
  Channel data;
  Channel ack;
  ReliableChannel reliable(&data, &ack, {});
  data.Send(Message(WorkerReadyMsg{3, 4}));
  const std::optional<Message> m = reliable.Receive(0.0);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(std::holds_alternative<WorkerReadyMsg>(*m));
}

}  // namespace
}  // namespace proteus
