// Property tests for the Policy Lab's accounting invariants: whatever
// the acquisition policy does, the job bill must be exactly the sum of
// the per-allocation bills, and free compute can only come from evicted
// allocations (and never exceeds the hours those allocations ran).
#include <gtest/gtest.h>

#include "src/backtest/policies.h"
#include "src/market/trace_gen.h"
#include "src/proteus/job_simulator.h"

namespace proteus {
namespace {

using backtest::MakePolicyFactory;
using backtest::PolicyEnv;
using backtest::PolicyFactory;

class BacktestPropertyTest : public ::testing::Test {
 protected:
  BacktestPropertyTest() {
    catalog_ = InstanceTypeCatalog::Default();
    SyntheticTraceConfig config;
    config.spikes_per_day = 6.0;  // Busy markets: plenty of evictions.
    Rng rng(33);
    traces_ = TraceStore::GenerateSynthetic(catalog_, {"z0", "z1"}, 12 * kDay, config, rng);
    estimator_.Train(traces_, 0.0, 6 * kDay);
    scheme_.standard_target_vcpus = 64;
    scheme_.bidbrain.max_spot_instances = 24;
  }

  void CheckInvariants(const JobResult& result) {
    ASSERT_FALSE(result.allocation_bills.empty());
    // Total bill == sum of per-allocation bills, exactly: both sides are
    // accumulated in the same allocation order with the same operations.
    JobBill sum;
    for (const AllocationBillDetail& detail : result.allocation_bills) {
      sum.Accumulate(detail.bill);
      EXPECT_GE(detail.bill.cost, 0.0);
      EXPECT_GE(detail.bill.free_hours, 0.0);
      EXPECT_GE(detail.bill.on_demand_hours, 0.0);
      EXPECT_GE(detail.bill.spot_paid_hours, 0.0);
      if (!detail.evicted) {
        // Free compute exists only as an eviction refund.
        EXPECT_EQ(detail.bill.free_hours, 0.0);
      }
      EXPECT_LE(detail.bill.free_hours, detail.bill.TotalHours());
      if (detail.on_demand) {
        EXPECT_EQ(detail.bill.spot_paid_hours, 0.0);
        EXPECT_EQ(detail.bill.free_hours, 0.0);
      } else {
        EXPECT_EQ(detail.bill.on_demand_hours, 0.0);
      }
    }
    EXPECT_EQ(result.bill.cost, sum.cost);
    EXPECT_EQ(result.bill.on_demand_hours, sum.on_demand_hours);
    EXPECT_EQ(result.bill.spot_paid_hours, sum.spot_paid_hours);
    EXPECT_EQ(result.bill.free_hours, sum.free_hours);
    // Evicted-allocation hours bound the refunded hours.
    double evicted_hours = 0.0;
    for (const AllocationBillDetail& detail : result.allocation_bills) {
      if (detail.evicted) {
        evicted_hours += detail.bill.TotalHours();
      }
    }
    EXPECT_LE(result.bill.free_hours, evicted_hours + 1e-9);
  }

  InstanceTypeCatalog catalog_;
  TraceStore traces_;
  EvictionEstimator estimator_;
  SchemeConfig scheme_;
};

TEST_F(BacktestPropertyTest, InvariantsHoldForEveryPolicyAndStart) {
  const PolicyEnv env{&catalog_, &traces_, &estimator_};
  const JobSimulator sim(&catalog_, &traces_, &estimator_);
  const JobSpec job =
      JobSpec::ForReferenceDuration(catalog_, "c4.2xlarge", 8, 2 * kHour, 0.95);

  int evicted_allocations = 0;
  for (const char* spec : {"on_demand", "fixed_delta:0.001", "fixed_delta:0.1", "bidbrain",
                           "oracle:2"}) {
    std::string error;
    const PolicyFactory factory = MakePolicyFactory(spec, env, scheme_, &error);
    ASSERT_NE(factory, nullptr) << error;
    for (int w = 0; w < 6; ++w) {
      const SimTime start = 6 * kDay + w * 20 * kHour;
      const JobResult result = sim.Run(*factory(), job, scheme_, start);
      SCOPED_TRACE(std::string(spec) + " @ window " + std::to_string(w));
      CheckInvariants(result);
      for (const AllocationBillDetail& detail : result.allocation_bills) {
        evicted_allocations += detail.evicted ? 1 : 0;
      }
    }
  }
  // The sweep must actually exercise the refund path, or the free-hours
  // invariants above are vacuous.
  EXPECT_GT(evicted_allocations, 0);
}

TEST_F(BacktestPropertyTest, EvictionCountMatchesEvictedAllocations) {
  const PolicyEnv env{&catalog_, &traces_, &estimator_};
  const JobSimulator sim(&catalog_, &traces_, &estimator_);
  const JobSpec job =
      JobSpec::ForReferenceDuration(catalog_, "c4.2xlarge", 8, 2 * kHour, 0.95);
  std::string error;
  const PolicyFactory factory = MakePolicyFactory("fixed_delta:0.001", env, scheme_, &error);
  ASSERT_NE(factory, nullptr) << error;
  for (int w = 0; w < 6; ++w) {
    const JobResult result = sim.Run(*factory(), job, scheme_, 6 * kDay + w * 20 * kHour);
    int evicted = 0;
    for (const AllocationBillDetail& detail : result.allocation_bills) {
      evicted += detail.evicted ? 1 : 0;
    }
    EXPECT_EQ(result.evictions, evicted);
  }
}

}  // namespace
}  // namespace proteus
