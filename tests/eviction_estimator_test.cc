#include <gtest/gtest.h>

#include "src/bidbrain/eviction_estimator.h"
#include "src/market/trace_gen.h"

namespace proteus {
namespace {

class EvictionEstimatorTest : public ::testing::Test {
 protected:
  EvictionEstimatorTest() {
    const InstanceTypeCatalog catalog = InstanceTypeCatalog::Default();
    SyntheticTraceConfig config;
    config.spikes_per_day = 8.0;  // Frequent spikes -> measurable betas.
    Rng rng(21);
    traces_ = TraceStore::GenerateSynthetic(catalog, {"z0"}, 30 * kDay, config, rng);
    estimator_.Train(traces_, 0.0, 30 * kDay);
  }

  TraceStore traces_;
  EvictionEstimator estimator_;
  const MarketKey key_{"z0", "c4.xlarge"};
};

TEST_F(EvictionEstimatorTest, TrainedFlagSet) { EXPECT_TRUE(estimator_.trained()); }

TEST_F(EvictionEstimatorTest, BetaIsAProbability) {
  for (const Money delta : EvictionEstimator::DefaultDeltaGrid()) {
    const EvictionStats stats = estimator_.Estimate(key_, delta);
    EXPECT_GE(stats.beta, 0.0);
    EXPECT_LE(stats.beta, 1.0);
    EXPECT_GT(stats.samples, 100);
  }
}

TEST_F(EvictionEstimatorTest, BetaWeaklyDecreasesWithDelta) {
  // Bidding further above the market must not increase eviction risk.
  const EvictionStats tiny = estimator_.Estimate(key_, 0.0001);
  const EvictionStats large = estimator_.Estimate(key_, 0.4);
  EXPECT_GE(tiny.beta, large.beta);
}

TEST_F(EvictionEstimatorTest, MedianTimeToEvictionWithinHour) {
  const EvictionStats stats = estimator_.Estimate(key_, 0.001);
  EXPECT_GT(stats.median_time_to_eviction, 0.0);
  EXPECT_LE(stats.median_time_to_eviction, kHour);
}

TEST_F(EvictionEstimatorTest, UnknownMarketGetsPessimisticPrior) {
  const EvictionStats stats = estimator_.Estimate({"nowhere", "c4.xlarge"}, 0.001);
  EXPECT_GT(stats.beta, 0.0);
  EXPECT_EQ(stats.samples, 0);
}

TEST_F(EvictionEstimatorTest, ShortTrainingWindowIsNotSilentlyOptimistic) {
  // A training window shorter than one billing hour completes zero
  // samples for every grid point. The regression here: Estimate used to
  // report the stored beta = 0 ("never evicted") for such markets,
  // which is the most optimistic claim from the least evidence; it must
  // fall back to the pessimistic prior instead.
  EvictionEstimator est;
  est.Train(traces_, 0.0, 30 * kMinute);
  EXPECT_TRUE(est.trained());
  const EvictionStats stats = est.Estimate(key_, 0.001);
  EXPECT_EQ(stats.samples, 0);
  EXPECT_GT(stats.beta, 0.0);
  // And the prior still tapers with the delta.
  EXPECT_GE(stats.beta, est.Estimate(key_, 0.4).beta);
}

TEST_F(EvictionEstimatorTest, EmptySeriesFallsBackToPrior) {
  TraceStore store;
  store.Put({"z0", "c4.xlarge"}, PriceSeries());
  EvictionEstimator est;
  est.Train(store, 0.0, 30 * kDay);
  const EvictionStats stats = est.Estimate({"z0", "c4.xlarge"}, 0.001);
  EXPECT_EQ(stats.samples, 0);
  EXPECT_GT(stats.beta, 0.0);
}

TEST_F(EvictionEstimatorTest, SpikyMarketHasHigherBetaThanCalm) {
  const InstanceTypeCatalog catalog = InstanceTypeCatalog::Default();
  SyntheticTraceConfig calm;
  calm.spikes_per_day = 0.2;
  SyntheticTraceConfig spiky;
  spiky.spikes_per_day = 12.0;
  Rng rng1(5);
  Rng rng2(5);
  TraceStore store;
  store.Put({"calm", "c4.xlarge"},
            GenerateSyntheticTrace(catalog.Get("c4.xlarge"), 30 * kDay, calm, rng1));
  store.Put({"spiky", "c4.xlarge"},
            GenerateSyntheticTrace(catalog.Get("c4.xlarge"), 30 * kDay, spiky, rng2));
  EvictionEstimator est;
  est.Train(store, 0.0, 30 * kDay);
  EXPECT_GT(est.Estimate({"spiky", "c4.xlarge"}, 0.01).beta,
            est.Estimate({"calm", "c4.xlarge"}, 0.01).beta);
}

}  // namespace
}  // namespace proteus
