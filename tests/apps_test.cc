#include <gtest/gtest.h>

#include "src/agileml/runtime.h"
#include "src/apps/datasets.h"
#include "src/apps/lda.h"
#include "src/apps/mf.h"
#include "src/apps/mlr.h"

namespace proteus {
namespace {

AgileMLConfig SmallConfig() {
  AgileMLConfig config;
  config.num_partitions = 8;
  config.data_blocks = 32;
  config.parallel_execution = false;  // Deterministic for tests.
  return config;
}

std::vector<NodeInfo> OneReliableNode() {
  return {{0, Tier::kReliable, 8, kInvalidAllocation}};
}

TEST(Datasets, RatingsShapeAndDeterminism) {
  RatingsConfig config;
  config.users = 100;
  config.items = 50;
  config.ratings = 1000;
  const RatingsDataset a = GenerateRatings(config);
  const RatingsDataset b = GenerateRatings(config);
  ASSERT_EQ(a.size(), 1000);
  EXPECT_EQ(a.value, b.value);
  for (std::int64_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a.user[static_cast<std::size_t>(i)], 0);
    EXPECT_LT(a.user[static_cast<std::size_t>(i)], 100);
    EXPECT_GE(a.item[static_cast<std::size_t>(i)], 0);
    EXPECT_LT(a.item[static_cast<std::size_t>(i)], 50);
  }
}

TEST(Datasets, FeaturesShape) {
  FeaturesConfig config;
  config.samples = 64;
  config.dim = 16;
  config.classes = 4;
  const FeaturesDataset data = GenerateFeatures(config);
  EXPECT_EQ(data.size(), 64);
  EXPECT_EQ(data.x.size(), 64u * 16u);
  for (const auto label : data.label) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(Datasets, CorpusShape) {
  CorpusConfig config;
  config.docs = 50;
  config.vocab = 200;
  const CorpusDataset data = GenerateCorpus(config);
  EXPECT_EQ(data.num_docs(), 50);
  EXPECT_GT(data.num_tokens(), 50 * 8);
  for (const auto w : data.tokens) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 200);
  }
  for (std::int64_t d = 0; d < data.num_docs(); ++d) {
    EXPECT_LT(data.DocBegin(d), data.DocEnd(d));
  }
}

TEST(MatrixFactorization, ConvergesOnSingleNode) {
  RatingsConfig rc;
  rc.users = 500;
  rc.items = 200;
  rc.ratings = 20000;
  const RatingsDataset data = GenerateRatings(rc);
  MfConfig mc;
  mc.rank = 16;
  MatrixFactorizationApp app(&data, mc);
  AgileMLRuntime runtime(&app, SmallConfig(), OneReliableNode());
  const double before = runtime.ComputeObjective();
  runtime.RunClocks(15);
  const double after = runtime.ComputeObjective();
  EXPECT_LT(after, before * 0.7) << "RMSE should drop substantially";
}

TEST(MultinomialLogReg, ConvergesOnSingleNode) {
  FeaturesConfig fc;
  fc.samples = 512;
  fc.dim = 64;
  fc.classes = 8;
  const FeaturesDataset data = GenerateFeatures(fc);
  MultinomialLogRegApp app(&data, MlrConfig{});
  AgileMLRuntime runtime(&app, SmallConfig(), OneReliableNode());
  const double before = runtime.ComputeObjective();
  runtime.RunClocks(20);
  const double after = runtime.ComputeObjective();
  EXPECT_LT(after, before * 0.8) << "cross-entropy should drop";
}

TEST(Lda, ConvergesOnSingleNode) {
  CorpusConfig cc;
  cc.docs = 300;
  cc.vocab = 500;
  cc.true_topics = 8;
  const CorpusDataset data = GenerateCorpus(cc);
  LdaConfig lc;
  lc.topics = 16;
  LdaApp app(&data, lc);
  AgileMLRuntime runtime(&app, SmallConfig(), OneReliableNode());
  runtime.RunClock();  // First clock initializes topic assignments.
  const double before = runtime.ComputeObjective();
  runtime.RunClocks(15);
  const double after = runtime.ComputeObjective();
  EXPECT_LT(after, before) << "negative log-likelihood should drop";
}

TEST(MatrixFactorization, MultiNodeMatchesSingleNodeQuality) {
  RatingsConfig rc;
  rc.users = 500;
  rc.items = 200;
  rc.ratings = 20000;
  const RatingsDataset data = GenerateRatings(rc);
  MfConfig mc;
  mc.rank = 16;

  MatrixFactorizationApp single_app(&data, mc);
  AgileMLRuntime single(&single_app, SmallConfig(), OneReliableNode());
  single.RunClocks(12);

  MatrixFactorizationApp multi_app(&data, mc);
  std::vector<NodeInfo> nodes;
  nodes.push_back({0, Tier::kReliable, 8, kInvalidAllocation});
  for (NodeId id = 1; id < 8; ++id) {
    nodes.push_back({id, Tier::kTransient, 8, kInvalidAllocation});
  }
  AgileMLRuntime multi(&multi_app, SmallConfig(), nodes);
  multi.RunClocks(12);

  // Parallel training must reach a comparable objective.
  EXPECT_LT(multi.ComputeObjective(), single.ComputeObjective() * 1.5);
}

TEST(Apps, CostPerItemPositive) {
  RatingsConfig rc;
  rc.users = 10;
  rc.items = 10;
  rc.ratings = 10;
  const RatingsDataset ratings = GenerateRatings(rc);
  FeaturesConfig fc;
  fc.samples = 4;
  fc.dim = 8;
  fc.classes = 2;
  const FeaturesDataset features = GenerateFeatures(fc);
  CorpusConfig cc;
  cc.docs = 4;
  cc.vocab = 20;
  const CorpusDataset corpus = GenerateCorpus(cc);
  MatrixFactorizationApp mf(&ratings, MfConfig{});
  MultinomialLogRegApp mlr(&features, MlrConfig{});
  LdaApp lda(&corpus, LdaConfig{});
  EXPECT_GT(mf.CostPerItem(), 0.0);
  EXPECT_GT(mlr.CostPerItem(), 0.0);
  EXPECT_GT(lda.CostPerItem(), 0.0);
}

}  // namespace
}  // namespace proteus
