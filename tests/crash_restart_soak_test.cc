// Crash/restart soak (ctest label: "soak"): every recovery depth of the
// escalation ladder, across many seeds and corruption levels, must
// restore byte-identical state with zero auditor violations and never
// load an injected corrupted frame.
//
// Run alone with `ctest -L soak`; exclude with `ctest -LE soak`.
#include <gtest/gtest.h>

#include <memory>

#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/chaos/crash_restart.h"

namespace proteus {
namespace {

class CrashRestartSoakTest : public ::testing::Test {
 protected:
  CrashRestartSoakTest() {
    RatingsConfig rc;
    rc.users = 300;
    rc.items = 150;
    rc.ratings = 10000;
    data_ = GenerateRatings(rc);
    MfConfig mc;
    mc.rank = 4;
    app_ = std::make_unique<MatrixFactorizationApp>(&data_, mc);
  }

  CrashRestartConfig Config(CrashScenario scenario, std::uint64_t seed) const {
    CrashRestartConfig config;
    config.agileml.num_partitions = 8;
    config.agileml.data_blocks = 64;
    config.agileml.parallel_execution = false;
    config.agileml.backup_sync_every = 3;
    config.agileml.seed = seed;
    config.scenario = scenario;
    config.horizon = 24;
    config.checkpoint_every = 4;
    config.crash_at = 15;
    config.seed = seed;
    return config;
  }

  RatingsDataset data_;
  std::unique_ptr<MatrixFactorizationApp> app_;
};

TEST_F(CrashRestartSoakTest, EveryDepthByteIdenticalAcrossSeeds) {
  constexpr int kSeeds = 25;
  for (const CrashScenario scenario :
       {CrashScenario::kBackupPromotion, CrashScenario::kActiveRebuild,
        CrashScenario::kDurableRestore}) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const CrashRestartResult result =
          RunCrashRestart(app_.get(), Config(scenario, seed));
      ASSERT_TRUE(result.digest_match)
          << CrashScenarioName(scenario) << " seed " << seed
          << ": post-recovery digest differs from the pre-crash reference";
      ASSERT_TRUE(result.violations.empty())
          << CrashScenarioName(scenario) << " seed " << seed << ": "
          << result.violations.size() << " auditor violation(s), first: "
          << result.violations.front().invariant << " — "
          << result.violations.front().detail;
    }
  }
}

TEST_F(CrashRestartSoakTest, CorruptedEpochsAreAlwaysSkippedNeverLoaded) {
  constexpr int kSeeds = 15;
  for (int corrupt = 1; corrupt <= 3; ++corrupt) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      CrashRestartConfig config = Config(CrashScenario::kDurableRestore, seed);
      config.corrupt_newest_epochs = corrupt;
      const CrashRestartResult result = RunCrashRestart(app_.get(), config);
      ASSERT_EQ(result.corrupt_frames_injected, corrupt)
          << "seed " << seed << " corrupt " << corrupt;
      ASSERT_EQ(result.corrupt_epochs_skipped, corrupt)
          << "seed " << seed << " corrupt " << corrupt;
      ASSERT_EQ(result.scrub_corruptions_found,
                static_cast<std::uint64_t>(corrupt))
          << "seed " << seed << " corrupt " << corrupt;
      ASSERT_TRUE(result.digest_match)
          << "seed " << seed << " corrupt " << corrupt
          << ": loaded state does not match a committed epoch";
      ASSERT_TRUE(result.violations.empty())
          << "seed " << seed << " corrupt " << corrupt;
    }
  }
}

}  // namespace
}  // namespace proteus
