# Empty dependencies file for tab_straggler.
# This may be replaced when dependencies are built.
