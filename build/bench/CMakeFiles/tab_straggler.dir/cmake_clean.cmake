file(REMOVE_RECURSE
  "CMakeFiles/tab_straggler.dir/tab_straggler.cc.o"
  "CMakeFiles/tab_straggler.dir/tab_straggler.cc.o.d"
  "tab_straggler"
  "tab_straggler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_straggler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
