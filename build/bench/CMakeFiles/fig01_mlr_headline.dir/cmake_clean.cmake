file(REMOVE_RECURSE
  "CMakeFiles/fig01_mlr_headline.dir/fig01_mlr_headline.cc.o"
  "CMakeFiles/fig01_mlr_headline.dir/fig01_mlr_headline.cc.o.d"
  "fig01_mlr_headline"
  "fig01_mlr_headline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_mlr_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
