# Empty compiler generated dependencies file for fig01_mlr_headline.
# This may be replaced when dependencies are built.
