file(REMOVE_RECURSE
  "CMakeFiles/tab_job_queue.dir/tab_job_queue.cc.o"
  "CMakeFiles/tab_job_queue.dir/tab_job_queue.cc.o.d"
  "tab_job_queue"
  "tab_job_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_job_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
