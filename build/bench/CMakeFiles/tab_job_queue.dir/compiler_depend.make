# Empty compiler generated dependencies file for tab_job_queue.
# This may be replaced when dependencies are built.
