# Empty compiler generated dependencies file for fig16_elasticity.
# This may be replaced when dependencies are built.
