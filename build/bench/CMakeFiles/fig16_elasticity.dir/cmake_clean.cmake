file(REMOVE_RECURSE
  "CMakeFiles/fig16_elasticity.dir/fig16_elasticity.cc.o"
  "CMakeFiles/fig16_elasticity.dir/fig16_elasticity.cc.o.d"
  "fig16_elasticity"
  "fig16_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
