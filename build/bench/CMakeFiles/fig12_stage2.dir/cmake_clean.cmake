file(REMOVE_RECURSE
  "CMakeFiles/fig12_stage2.dir/fig12_stage2.cc.o"
  "CMakeFiles/fig12_stage2.dir/fig12_stage2.cc.o.d"
  "fig12_stage2"
  "fig12_stage2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_stage2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
