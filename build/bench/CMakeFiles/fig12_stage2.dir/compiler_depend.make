# Empty compiler generated dependencies file for fig12_stage2.
# This may be replaced when dependencies are built.
