# Empty dependencies file for tab_bid_delta_sweep.
# This may be replaced when dependencies are built.
