file(REMOVE_RECURSE
  "CMakeFiles/tab_bid_delta_sweep.dir/tab_bid_delta_sweep.cc.o"
  "CMakeFiles/tab_bid_delta_sweep.dir/tab_bid_delta_sweep.cc.o.d"
  "tab_bid_delta_sweep"
  "tab_bid_delta_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_bid_delta_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
