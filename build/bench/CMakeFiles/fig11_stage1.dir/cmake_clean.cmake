file(REMOVE_RECURSE
  "CMakeFiles/fig11_stage1.dir/fig11_stage1.cc.o"
  "CMakeFiles/fig11_stage1.dir/fig11_stage1.cc.o.d"
  "fig11_stage1"
  "fig11_stage1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_stage1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
