# Empty dependencies file for fig11_stage1.
# This may be replaced when dependencies are built.
