# Empty compiler generated dependencies file for fig13_stage3.
# This may be replaced when dependencies are built.
