file(REMOVE_RECURSE
  "CMakeFiles/fig13_stage3.dir/fig13_stage3.cc.o"
  "CMakeFiles/fig13_stage3.dir/fig13_stage3.cc.o.d"
  "fig13_stage3"
  "fig13_stage3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_stage3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
