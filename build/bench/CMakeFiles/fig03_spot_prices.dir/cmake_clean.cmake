file(REMOVE_RECURSE
  "CMakeFiles/fig03_spot_prices.dir/fig03_spot_prices.cc.o"
  "CMakeFiles/fig03_spot_prices.dir/fig03_spot_prices.cc.o.d"
  "fig03_spot_prices"
  "fig03_spot_prices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_spot_prices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
