# Empty dependencies file for fig03_spot_prices.
# This may be replaced when dependencies are built.
