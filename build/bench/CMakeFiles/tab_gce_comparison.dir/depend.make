# Empty dependencies file for tab_gce_comparison.
# This may be replaced when dependencies are built.
