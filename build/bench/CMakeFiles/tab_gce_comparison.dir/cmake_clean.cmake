file(REMOVE_RECURSE
  "CMakeFiles/tab_gce_comparison.dir/tab_gce_comparison.cc.o"
  "CMakeFiles/tab_gce_comparison.dir/tab_gce_comparison.cc.o.d"
  "tab_gce_comparison"
  "tab_gce_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_gce_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
