# Empty compiler generated dependencies file for tab_ratio_sweep.
# This may be replaced when dependencies are built.
