file(REMOVE_RECURSE
  "CMakeFiles/tab_ratio_sweep.dir/tab_ratio_sweep.cc.o"
  "CMakeFiles/tab_ratio_sweep.dir/tab_ratio_sweep.cc.o.d"
  "tab_ratio_sweep"
  "tab_ratio_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_ratio_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
