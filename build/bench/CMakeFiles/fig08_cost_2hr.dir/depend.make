# Empty dependencies file for fig08_cost_2hr.
# This may be replaced when dependencies are built.
