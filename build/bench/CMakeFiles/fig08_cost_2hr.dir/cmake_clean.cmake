file(REMOVE_RECURSE
  "CMakeFiles/fig08_cost_2hr.dir/fig08_cost_2hr.cc.o"
  "CMakeFiles/fig08_cost_2hr.dir/fig08_cost_2hr.cc.o.d"
  "fig08_cost_2hr"
  "fig08_cost_2hr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cost_2hr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
