# Empty compiler generated dependencies file for fig10_machine_hours.
# This may be replaced when dependencies are built.
