file(REMOVE_RECURSE
  "CMakeFiles/fig10_machine_hours.dir/fig10_machine_hours.cc.o"
  "CMakeFiles/fig10_machine_hours.dir/fig10_machine_hours.cc.o.d"
  "fig10_machine_hours"
  "fig10_machine_hours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_machine_hours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
