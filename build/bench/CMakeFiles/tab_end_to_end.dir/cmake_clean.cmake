file(REMOVE_RECURSE
  "CMakeFiles/tab_end_to_end.dir/tab_end_to_end.cc.o"
  "CMakeFiles/tab_end_to_end.dir/tab_end_to_end.cc.o.d"
  "tab_end_to_end"
  "tab_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
