# Empty dependencies file for tab_end_to_end.
# This may be replaced when dependencies are built.
