# Empty compiler generated dependencies file for tab_apps_consistency.
# This may be replaced when dependencies are built.
