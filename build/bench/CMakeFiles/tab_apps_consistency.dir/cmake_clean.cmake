file(REMOVE_RECURSE
  "CMakeFiles/tab_apps_consistency.dir/tab_apps_consistency.cc.o"
  "CMakeFiles/tab_apps_consistency.dir/tab_apps_consistency.cc.o.d"
  "tab_apps_consistency"
  "tab_apps_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_apps_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
