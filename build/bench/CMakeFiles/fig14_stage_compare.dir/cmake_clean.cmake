file(REMOVE_RECURSE
  "CMakeFiles/fig14_stage_compare.dir/fig14_stage_compare.cc.o"
  "CMakeFiles/fig14_stage_compare.dir/fig14_stage_compare.cc.o.d"
  "fig14_stage_compare"
  "fig14_stage_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_stage_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
