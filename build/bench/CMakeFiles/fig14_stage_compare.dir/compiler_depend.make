# Empty compiler generated dependencies file for fig14_stage_compare.
# This may be replaced when dependencies are built.
