file(REMOVE_RECURSE
  "CMakeFiles/fig09_cost_20hr.dir/fig09_cost_20hr.cc.o"
  "CMakeFiles/fig09_cost_20hr.dir/fig09_cost_20hr.cc.o.d"
  "fig09_cost_20hr"
  "fig09_cost_20hr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_cost_20hr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
