# Empty dependencies file for fig09_cost_20hr.
# This may be replaced when dependencies are built.
