# Empty compiler generated dependencies file for tab_private_cluster.
# This may be replaced when dependencies are built.
