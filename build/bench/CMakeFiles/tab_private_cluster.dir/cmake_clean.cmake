file(REMOVE_RECURSE
  "CMakeFiles/tab_private_cluster.dir/tab_private_cluster.cc.o"
  "CMakeFiles/tab_private_cluster.dir/tab_private_cluster.cc.o.d"
  "tab_private_cluster"
  "tab_private_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_private_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
