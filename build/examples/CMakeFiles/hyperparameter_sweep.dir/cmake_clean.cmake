file(REMOVE_RECURSE
  "CMakeFiles/hyperparameter_sweep.dir/hyperparameter_sweep.cpp.o"
  "CMakeFiles/hyperparameter_sweep.dir/hyperparameter_sweep.cpp.o.d"
  "hyperparameter_sweep"
  "hyperparameter_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperparameter_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
