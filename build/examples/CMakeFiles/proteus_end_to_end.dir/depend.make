# Empty dependencies file for proteus_end_to_end.
# This may be replaced when dependencies are built.
