file(REMOVE_RECURSE
  "CMakeFiles/proteus_end_to_end.dir/proteus_end_to_end.cpp.o"
  "CMakeFiles/proteus_end_to_end.dir/proteus_end_to_end.cpp.o.d"
  "proteus_end_to_end"
  "proteus_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
