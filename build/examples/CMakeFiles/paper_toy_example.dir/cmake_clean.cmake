file(REMOVE_RECURSE
  "CMakeFiles/paper_toy_example.dir/paper_toy_example.cpp.o"
  "CMakeFiles/paper_toy_example.dir/paper_toy_example.cpp.o.d"
  "paper_toy_example"
  "paper_toy_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_toy_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
