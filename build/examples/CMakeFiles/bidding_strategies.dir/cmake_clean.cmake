file(REMOVE_RECURSE
  "CMakeFiles/bidding_strategies.dir/bidding_strategies.cpp.o"
  "CMakeFiles/bidding_strategies.dir/bidding_strategies.cpp.o.d"
  "bidding_strategies"
  "bidding_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bidding_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
