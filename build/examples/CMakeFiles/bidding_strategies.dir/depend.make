# Empty dependencies file for bidding_strategies.
# This may be replaced when dependencies are built.
