file(REMOVE_RECURSE
  "libproteus_bidbrain.a"
)
