
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bidbrain/app_profile.cc" "src/bidbrain/CMakeFiles/proteus_bidbrain.dir/app_profile.cc.o" "gcc" "src/bidbrain/CMakeFiles/proteus_bidbrain.dir/app_profile.cc.o.d"
  "/root/repo/src/bidbrain/bidbrain.cc" "src/bidbrain/CMakeFiles/proteus_bidbrain.dir/bidbrain.cc.o" "gcc" "src/bidbrain/CMakeFiles/proteus_bidbrain.dir/bidbrain.cc.o.d"
  "/root/repo/src/bidbrain/cost_model.cc" "src/bidbrain/CMakeFiles/proteus_bidbrain.dir/cost_model.cc.o" "gcc" "src/bidbrain/CMakeFiles/proteus_bidbrain.dir/cost_model.cc.o.d"
  "/root/repo/src/bidbrain/eviction_estimator.cc" "src/bidbrain/CMakeFiles/proteus_bidbrain.dir/eviction_estimator.cc.o" "gcc" "src/bidbrain/CMakeFiles/proteus_bidbrain.dir/eviction_estimator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/market/CMakeFiles/proteus_market.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/proteus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/proteus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
