# Empty compiler generated dependencies file for proteus_bidbrain.
# This may be replaced when dependencies are built.
