file(REMOVE_RECURSE
  "CMakeFiles/proteus_bidbrain.dir/app_profile.cc.o"
  "CMakeFiles/proteus_bidbrain.dir/app_profile.cc.o.d"
  "CMakeFiles/proteus_bidbrain.dir/bidbrain.cc.o"
  "CMakeFiles/proteus_bidbrain.dir/bidbrain.cc.o.d"
  "CMakeFiles/proteus_bidbrain.dir/cost_model.cc.o"
  "CMakeFiles/proteus_bidbrain.dir/cost_model.cc.o.d"
  "CMakeFiles/proteus_bidbrain.dir/eviction_estimator.cc.o"
  "CMakeFiles/proteus_bidbrain.dir/eviction_estimator.cc.o.d"
  "libproteus_bidbrain.a"
  "libproteus_bidbrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_bidbrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
