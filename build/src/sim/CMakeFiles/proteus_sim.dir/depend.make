# Empty dependencies file for proteus_sim.
# This may be replaced when dependencies are built.
