file(REMOVE_RECURSE
  "libproteus_sim.a"
)
