file(REMOVE_RECURSE
  "libproteus_common.a"
)
