file(REMOVE_RECURSE
  "CMakeFiles/proteus_common.dir/csv.cc.o"
  "CMakeFiles/proteus_common.dir/csv.cc.o.d"
  "CMakeFiles/proteus_common.dir/logging.cc.o"
  "CMakeFiles/proteus_common.dir/logging.cc.o.d"
  "CMakeFiles/proteus_common.dir/rng.cc.o"
  "CMakeFiles/proteus_common.dir/rng.cc.o.d"
  "CMakeFiles/proteus_common.dir/stats.cc.o"
  "CMakeFiles/proteus_common.dir/stats.cc.o.d"
  "CMakeFiles/proteus_common.dir/table.cc.o"
  "CMakeFiles/proteus_common.dir/table.cc.o.d"
  "CMakeFiles/proteus_common.dir/thread_pool.cc.o"
  "CMakeFiles/proteus_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/proteus_common.dir/types.cc.o"
  "CMakeFiles/proteus_common.dir/types.cc.o.d"
  "libproteus_common.a"
  "libproteus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
