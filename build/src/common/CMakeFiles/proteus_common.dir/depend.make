# Empty dependencies file for proteus_common.
# This may be replaced when dependencies are built.
