file(REMOVE_RECURSE
  "CMakeFiles/proteus_proteus.dir/accounting.cc.o"
  "CMakeFiles/proteus_proteus.dir/accounting.cc.o.d"
  "CMakeFiles/proteus_proteus.dir/job_queue.cc.o"
  "CMakeFiles/proteus_proteus.dir/job_queue.cc.o.d"
  "CMakeFiles/proteus_proteus.dir/job_simulator.cc.o"
  "CMakeFiles/proteus_proteus.dir/job_simulator.cc.o.d"
  "CMakeFiles/proteus_proteus.dir/profile_estimator.cc.o"
  "CMakeFiles/proteus_proteus.dir/profile_estimator.cc.o.d"
  "CMakeFiles/proteus_proteus.dir/proteus_runtime.cc.o"
  "CMakeFiles/proteus_proteus.dir/proteus_runtime.cc.o.d"
  "libproteus_proteus.a"
  "libproteus_proteus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_proteus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
