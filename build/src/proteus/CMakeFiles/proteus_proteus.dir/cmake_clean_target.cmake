file(REMOVE_RECURSE
  "libproteus_proteus.a"
)
