# Empty dependencies file for proteus_proteus.
# This may be replaced when dependencies are built.
