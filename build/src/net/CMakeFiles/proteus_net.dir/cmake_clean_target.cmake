file(REMOVE_RECURSE
  "libproteus_net.a"
)
