# Empty compiler generated dependencies file for proteus_net.
# This may be replaced when dependencies are built.
