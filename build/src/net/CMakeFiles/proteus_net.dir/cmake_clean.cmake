file(REMOVE_RECURSE
  "CMakeFiles/proteus_net.dir/fabric.cc.o"
  "CMakeFiles/proteus_net.dir/fabric.cc.o.d"
  "libproteus_net.a"
  "libproteus_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
