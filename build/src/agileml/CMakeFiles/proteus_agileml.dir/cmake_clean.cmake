file(REMOVE_RECURSE
  "CMakeFiles/proteus_agileml.dir/cluster.cc.o"
  "CMakeFiles/proteus_agileml.dir/cluster.cc.o.d"
  "CMakeFiles/proteus_agileml.dir/control_plane.cc.o"
  "CMakeFiles/proteus_agileml.dir/control_plane.cc.o.d"
  "CMakeFiles/proteus_agileml.dir/data_assignment.cc.o"
  "CMakeFiles/proteus_agileml.dir/data_assignment.cc.o.d"
  "CMakeFiles/proteus_agileml.dir/roles.cc.o"
  "CMakeFiles/proteus_agileml.dir/roles.cc.o.d"
  "CMakeFiles/proteus_agileml.dir/runtime.cc.o"
  "CMakeFiles/proteus_agileml.dir/runtime.cc.o.d"
  "CMakeFiles/proteus_agileml.dir/threshold_tuner.cc.o"
  "CMakeFiles/proteus_agileml.dir/threshold_tuner.cc.o.d"
  "libproteus_agileml.a"
  "libproteus_agileml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_agileml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
