# Empty dependencies file for proteus_agileml.
# This may be replaced when dependencies are built.
