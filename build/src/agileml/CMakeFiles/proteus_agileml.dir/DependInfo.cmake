
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agileml/cluster.cc" "src/agileml/CMakeFiles/proteus_agileml.dir/cluster.cc.o" "gcc" "src/agileml/CMakeFiles/proteus_agileml.dir/cluster.cc.o.d"
  "/root/repo/src/agileml/control_plane.cc" "src/agileml/CMakeFiles/proteus_agileml.dir/control_plane.cc.o" "gcc" "src/agileml/CMakeFiles/proteus_agileml.dir/control_plane.cc.o.d"
  "/root/repo/src/agileml/data_assignment.cc" "src/agileml/CMakeFiles/proteus_agileml.dir/data_assignment.cc.o" "gcc" "src/agileml/CMakeFiles/proteus_agileml.dir/data_assignment.cc.o.d"
  "/root/repo/src/agileml/roles.cc" "src/agileml/CMakeFiles/proteus_agileml.dir/roles.cc.o" "gcc" "src/agileml/CMakeFiles/proteus_agileml.dir/roles.cc.o.d"
  "/root/repo/src/agileml/runtime.cc" "src/agileml/CMakeFiles/proteus_agileml.dir/runtime.cc.o" "gcc" "src/agileml/CMakeFiles/proteus_agileml.dir/runtime.cc.o.d"
  "/root/repo/src/agileml/threshold_tuner.cc" "src/agileml/CMakeFiles/proteus_agileml.dir/threshold_tuner.cc.o" "gcc" "src/agileml/CMakeFiles/proteus_agileml.dir/threshold_tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/proteus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/proteus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ps/CMakeFiles/proteus_ps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
