file(REMOVE_RECURSE
  "libproteus_agileml.a"
)
