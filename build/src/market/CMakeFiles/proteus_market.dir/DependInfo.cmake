
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/capacity_trace.cc" "src/market/CMakeFiles/proteus_market.dir/capacity_trace.cc.o" "gcc" "src/market/CMakeFiles/proteus_market.dir/capacity_trace.cc.o.d"
  "/root/repo/src/market/instance_type.cc" "src/market/CMakeFiles/proteus_market.dir/instance_type.cc.o" "gcc" "src/market/CMakeFiles/proteus_market.dir/instance_type.cc.o.d"
  "/root/repo/src/market/preemptible.cc" "src/market/CMakeFiles/proteus_market.dir/preemptible.cc.o" "gcc" "src/market/CMakeFiles/proteus_market.dir/preemptible.cc.o.d"
  "/root/repo/src/market/price_series.cc" "src/market/CMakeFiles/proteus_market.dir/price_series.cc.o" "gcc" "src/market/CMakeFiles/proteus_market.dir/price_series.cc.o.d"
  "/root/repo/src/market/spot_market.cc" "src/market/CMakeFiles/proteus_market.dir/spot_market.cc.o" "gcc" "src/market/CMakeFiles/proteus_market.dir/spot_market.cc.o.d"
  "/root/repo/src/market/trace_gen.cc" "src/market/CMakeFiles/proteus_market.dir/trace_gen.cc.o" "gcc" "src/market/CMakeFiles/proteus_market.dir/trace_gen.cc.o.d"
  "/root/repo/src/market/trace_store.cc" "src/market/CMakeFiles/proteus_market.dir/trace_store.cc.o" "gcc" "src/market/CMakeFiles/proteus_market.dir/trace_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/proteus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/proteus_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
