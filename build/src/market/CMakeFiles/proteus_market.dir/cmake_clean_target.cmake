file(REMOVE_RECURSE
  "libproteus_market.a"
)
