file(REMOVE_RECURSE
  "CMakeFiles/proteus_market.dir/capacity_trace.cc.o"
  "CMakeFiles/proteus_market.dir/capacity_trace.cc.o.d"
  "CMakeFiles/proteus_market.dir/instance_type.cc.o"
  "CMakeFiles/proteus_market.dir/instance_type.cc.o.d"
  "CMakeFiles/proteus_market.dir/preemptible.cc.o"
  "CMakeFiles/proteus_market.dir/preemptible.cc.o.d"
  "CMakeFiles/proteus_market.dir/price_series.cc.o"
  "CMakeFiles/proteus_market.dir/price_series.cc.o.d"
  "CMakeFiles/proteus_market.dir/spot_market.cc.o"
  "CMakeFiles/proteus_market.dir/spot_market.cc.o.d"
  "CMakeFiles/proteus_market.dir/trace_gen.cc.o"
  "CMakeFiles/proteus_market.dir/trace_gen.cc.o.d"
  "CMakeFiles/proteus_market.dir/trace_store.cc.o"
  "CMakeFiles/proteus_market.dir/trace_store.cc.o.d"
  "libproteus_market.a"
  "libproteus_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
