# Empty dependencies file for proteus_market.
# This may be replaced when dependencies are built.
