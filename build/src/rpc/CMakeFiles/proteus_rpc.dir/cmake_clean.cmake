file(REMOVE_RECURSE
  "CMakeFiles/proteus_rpc.dir/channel.cc.o"
  "CMakeFiles/proteus_rpc.dir/channel.cc.o.d"
  "CMakeFiles/proteus_rpc.dir/messages.cc.o"
  "CMakeFiles/proteus_rpc.dir/messages.cc.o.d"
  "CMakeFiles/proteus_rpc.dir/serializer.cc.o"
  "CMakeFiles/proteus_rpc.dir/serializer.cc.o.d"
  "libproteus_rpc.a"
  "libproteus_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
