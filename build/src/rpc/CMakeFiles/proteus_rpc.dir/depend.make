# Empty dependencies file for proteus_rpc.
# This may be replaced when dependencies are built.
