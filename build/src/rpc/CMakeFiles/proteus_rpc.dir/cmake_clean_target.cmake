file(REMOVE_RECURSE
  "libproteus_rpc.a"
)
