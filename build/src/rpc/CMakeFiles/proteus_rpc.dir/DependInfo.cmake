
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/channel.cc" "src/rpc/CMakeFiles/proteus_rpc.dir/channel.cc.o" "gcc" "src/rpc/CMakeFiles/proteus_rpc.dir/channel.cc.o.d"
  "/root/repo/src/rpc/messages.cc" "src/rpc/CMakeFiles/proteus_rpc.dir/messages.cc.o" "gcc" "src/rpc/CMakeFiles/proteus_rpc.dir/messages.cc.o.d"
  "/root/repo/src/rpc/serializer.cc" "src/rpc/CMakeFiles/proteus_rpc.dir/serializer.cc.o" "gcc" "src/rpc/CMakeFiles/proteus_rpc.dir/serializer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/proteus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
