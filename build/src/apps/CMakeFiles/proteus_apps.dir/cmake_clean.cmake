file(REMOVE_RECURSE
  "CMakeFiles/proteus_apps.dir/datasets.cc.o"
  "CMakeFiles/proteus_apps.dir/datasets.cc.o.d"
  "CMakeFiles/proteus_apps.dir/dnn.cc.o"
  "CMakeFiles/proteus_apps.dir/dnn.cc.o.d"
  "CMakeFiles/proteus_apps.dir/kmeans.cc.o"
  "CMakeFiles/proteus_apps.dir/kmeans.cc.o.d"
  "CMakeFiles/proteus_apps.dir/lda.cc.o"
  "CMakeFiles/proteus_apps.dir/lda.cc.o.d"
  "CMakeFiles/proteus_apps.dir/mf.cc.o"
  "CMakeFiles/proteus_apps.dir/mf.cc.o.d"
  "CMakeFiles/proteus_apps.dir/mlr.cc.o"
  "CMakeFiles/proteus_apps.dir/mlr.cc.o.d"
  "libproteus_apps.a"
  "libproteus_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
