file(REMOVE_RECURSE
  "libproteus_apps.a"
)
