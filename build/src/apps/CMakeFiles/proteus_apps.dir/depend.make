# Empty dependencies file for proteus_apps.
# This may be replaced when dependencies are built.
