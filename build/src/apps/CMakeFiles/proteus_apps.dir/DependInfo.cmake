
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/datasets.cc" "src/apps/CMakeFiles/proteus_apps.dir/datasets.cc.o" "gcc" "src/apps/CMakeFiles/proteus_apps.dir/datasets.cc.o.d"
  "/root/repo/src/apps/dnn.cc" "src/apps/CMakeFiles/proteus_apps.dir/dnn.cc.o" "gcc" "src/apps/CMakeFiles/proteus_apps.dir/dnn.cc.o.d"
  "/root/repo/src/apps/kmeans.cc" "src/apps/CMakeFiles/proteus_apps.dir/kmeans.cc.o" "gcc" "src/apps/CMakeFiles/proteus_apps.dir/kmeans.cc.o.d"
  "/root/repo/src/apps/lda.cc" "src/apps/CMakeFiles/proteus_apps.dir/lda.cc.o" "gcc" "src/apps/CMakeFiles/proteus_apps.dir/lda.cc.o.d"
  "/root/repo/src/apps/mf.cc" "src/apps/CMakeFiles/proteus_apps.dir/mf.cc.o" "gcc" "src/apps/CMakeFiles/proteus_apps.dir/mf.cc.o.d"
  "/root/repo/src/apps/mlr.cc" "src/apps/CMakeFiles/proteus_apps.dir/mlr.cc.o" "gcc" "src/apps/CMakeFiles/proteus_apps.dir/mlr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/agileml/CMakeFiles/proteus_agileml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/proteus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ps/CMakeFiles/proteus_ps.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/proteus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
