file(REMOVE_RECURSE
  "libproteus_ps.a"
)
