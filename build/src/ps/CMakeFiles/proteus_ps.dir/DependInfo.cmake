
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ps/access_tracker.cc" "src/ps/CMakeFiles/proteus_ps.dir/access_tracker.cc.o" "gcc" "src/ps/CMakeFiles/proteus_ps.dir/access_tracker.cc.o.d"
  "/root/repo/src/ps/clock_table.cc" "src/ps/CMakeFiles/proteus_ps.dir/clock_table.cc.o" "gcc" "src/ps/CMakeFiles/proteus_ps.dir/clock_table.cc.o.d"
  "/root/repo/src/ps/model.cc" "src/ps/CMakeFiles/proteus_ps.dir/model.cc.o" "gcc" "src/ps/CMakeFiles/proteus_ps.dir/model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/proteus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
