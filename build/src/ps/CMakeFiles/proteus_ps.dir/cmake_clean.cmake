file(REMOVE_RECURSE
  "CMakeFiles/proteus_ps.dir/access_tracker.cc.o"
  "CMakeFiles/proteus_ps.dir/access_tracker.cc.o.d"
  "CMakeFiles/proteus_ps.dir/clock_table.cc.o"
  "CMakeFiles/proteus_ps.dir/clock_table.cc.o.d"
  "CMakeFiles/proteus_ps.dir/model.cc.o"
  "CMakeFiles/proteus_ps.dir/model.cc.o.d"
  "libproteus_ps.a"
  "libproteus_ps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
