# Empty dependencies file for proteus_ps.
# This may be replaced when dependencies are built.
