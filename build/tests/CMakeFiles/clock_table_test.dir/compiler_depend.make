# Empty compiler generated dependencies file for clock_table_test.
# This may be replaced when dependencies are built.
