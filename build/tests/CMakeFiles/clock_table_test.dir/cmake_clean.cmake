file(REMOVE_RECURSE
  "CMakeFiles/clock_table_test.dir/clock_table_test.cc.o"
  "CMakeFiles/clock_table_test.dir/clock_table_test.cc.o.d"
  "clock_table_test"
  "clock_table_test.pdb"
  "clock_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
