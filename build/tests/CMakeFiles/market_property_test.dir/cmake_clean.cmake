file(REMOVE_RECURSE
  "CMakeFiles/market_property_test.dir/market_property_test.cc.o"
  "CMakeFiles/market_property_test.dir/market_property_test.cc.o.d"
  "market_property_test"
  "market_property_test.pdb"
  "market_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
