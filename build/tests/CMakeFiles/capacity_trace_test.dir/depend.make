# Empty dependencies file for capacity_trace_test.
# This may be replaced when dependencies are built.
