file(REMOVE_RECURSE
  "CMakeFiles/capacity_trace_test.dir/capacity_trace_test.cc.o"
  "CMakeFiles/capacity_trace_test.dir/capacity_trace_test.cc.o.d"
  "capacity_trace_test"
  "capacity_trace_test.pdb"
  "capacity_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
