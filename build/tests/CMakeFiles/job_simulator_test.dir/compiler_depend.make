# Empty compiler generated dependencies file for job_simulator_test.
# This may be replaced when dependencies are built.
