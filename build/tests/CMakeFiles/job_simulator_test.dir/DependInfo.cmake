
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/job_simulator_test.cc" "tests/CMakeFiles/job_simulator_test.dir/job_simulator_test.cc.o" "gcc" "tests/CMakeFiles/job_simulator_test.dir/job_simulator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proteus/CMakeFiles/proteus_proteus.dir/DependInfo.cmake"
  "/root/repo/build/src/bidbrain/CMakeFiles/proteus_bidbrain.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/proteus_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/agileml/CMakeFiles/proteus_agileml.dir/DependInfo.cmake"
  "/root/repo/build/src/ps/CMakeFiles/proteus_ps.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/proteus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/proteus_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/proteus_market.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/proteus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/proteus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
