file(REMOVE_RECURSE
  "CMakeFiles/bidbrain_test.dir/bidbrain_test.cc.o"
  "CMakeFiles/bidbrain_test.dir/bidbrain_test.cc.o.d"
  "bidbrain_test"
  "bidbrain_test.pdb"
  "bidbrain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bidbrain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
