# Empty dependencies file for bidbrain_test.
# This may be replaced when dependencies are built.
