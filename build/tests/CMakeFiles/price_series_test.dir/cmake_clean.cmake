file(REMOVE_RECURSE
  "CMakeFiles/price_series_test.dir/price_series_test.cc.o"
  "CMakeFiles/price_series_test.dir/price_series_test.cc.o.d"
  "price_series_test"
  "price_series_test.pdb"
  "price_series_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/price_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
