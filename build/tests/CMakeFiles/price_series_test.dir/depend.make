# Empty dependencies file for price_series_test.
# This may be replaced when dependencies are built.
