# Empty dependencies file for proteus_runtime_test.
# This may be replaced when dependencies are built.
