file(REMOVE_RECURSE
  "CMakeFiles/proteus_runtime_test.dir/proteus_runtime_test.cc.o"
  "CMakeFiles/proteus_runtime_test.dir/proteus_runtime_test.cc.o.d"
  "proteus_runtime_test"
  "proteus_runtime_test.pdb"
  "proteus_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proteus_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
