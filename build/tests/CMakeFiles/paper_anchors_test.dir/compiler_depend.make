# Empty compiler generated dependencies file for paper_anchors_test.
# This may be replaced when dependencies are built.
