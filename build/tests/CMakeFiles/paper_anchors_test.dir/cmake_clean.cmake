file(REMOVE_RECURSE
  "CMakeFiles/paper_anchors_test.dir/paper_anchors_test.cc.o"
  "CMakeFiles/paper_anchors_test.dir/paper_anchors_test.cc.o.d"
  "paper_anchors_test"
  "paper_anchors_test.pdb"
  "paper_anchors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_anchors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
