# Empty compiler generated dependencies file for reliable_churn_test.
# This may be replaced when dependencies are built.
