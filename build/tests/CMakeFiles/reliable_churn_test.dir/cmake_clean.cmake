file(REMOVE_RECURSE
  "CMakeFiles/reliable_churn_test.dir/reliable_churn_test.cc.o"
  "CMakeFiles/reliable_churn_test.dir/reliable_churn_test.cc.o.d"
  "reliable_churn_test"
  "reliable_churn_test.pdb"
  "reliable_churn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_churn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
