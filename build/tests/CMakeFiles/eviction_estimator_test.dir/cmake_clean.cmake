file(REMOVE_RECURSE
  "CMakeFiles/eviction_estimator_test.dir/eviction_estimator_test.cc.o"
  "CMakeFiles/eviction_estimator_test.dir/eviction_estimator_test.cc.o.d"
  "eviction_estimator_test"
  "eviction_estimator_test.pdb"
  "eviction_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eviction_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
