# Empty compiler generated dependencies file for eviction_estimator_test.
# This may be replaced when dependencies are built.
