# Empty dependencies file for data_assignment_test.
# This may be replaced when dependencies are built.
