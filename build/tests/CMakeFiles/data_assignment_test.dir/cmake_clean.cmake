file(REMOVE_RECURSE
  "CMakeFiles/data_assignment_test.dir/data_assignment_test.cc.o"
  "CMakeFiles/data_assignment_test.dir/data_assignment_test.cc.o.d"
  "data_assignment_test"
  "data_assignment_test.pdb"
  "data_assignment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_assignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
