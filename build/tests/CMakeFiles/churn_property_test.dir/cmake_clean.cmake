file(REMOVE_RECURSE
  "CMakeFiles/churn_property_test.dir/churn_property_test.cc.o"
  "CMakeFiles/churn_property_test.dir/churn_property_test.cc.o.d"
  "churn_property_test"
  "churn_property_test.pdb"
  "churn_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
