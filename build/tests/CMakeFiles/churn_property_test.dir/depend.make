# Empty dependencies file for churn_property_test.
# This may be replaced when dependencies are built.
