file(REMOVE_RECURSE
  "CMakeFiles/kmeans_dnn_test.dir/kmeans_dnn_test.cc.o"
  "CMakeFiles/kmeans_dnn_test.dir/kmeans_dnn_test.cc.o.d"
  "kmeans_dnn_test"
  "kmeans_dnn_test.pdb"
  "kmeans_dnn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans_dnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
