# Empty compiler generated dependencies file for kmeans_dnn_test.
# This may be replaced when dependencies are built.
