# Empty compiler generated dependencies file for job_queue_test.
# This may be replaced when dependencies are built.
