file(REMOVE_RECURSE
  "CMakeFiles/job_queue_test.dir/job_queue_test.cc.o"
  "CMakeFiles/job_queue_test.dir/job_queue_test.cc.o.d"
  "job_queue_test"
  "job_queue_test.pdb"
  "job_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
