# Empty compiler generated dependencies file for spot_market_test.
# This may be replaced when dependencies are built.
