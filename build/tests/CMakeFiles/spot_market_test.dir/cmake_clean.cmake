file(REMOVE_RECURSE
  "CMakeFiles/spot_market_test.dir/spot_market_test.cc.o"
  "CMakeFiles/spot_market_test.dir/spot_market_test.cc.o.d"
  "spot_market_test"
  "spot_market_test.pdb"
  "spot_market_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spot_market_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
