file(REMOVE_RECURSE
  "CMakeFiles/preemptible_test.dir/preemptible_test.cc.o"
  "CMakeFiles/preemptible_test.dir/preemptible_test.cc.o.d"
  "preemptible_test"
  "preemptible_test.pdb"
  "preemptible_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preemptible_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
