# Empty compiler generated dependencies file for preemptible_test.
# This may be replaced when dependencies are built.
