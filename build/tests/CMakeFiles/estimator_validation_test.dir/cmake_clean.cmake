file(REMOVE_RECURSE
  "CMakeFiles/estimator_validation_test.dir/estimator_validation_test.cc.o"
  "CMakeFiles/estimator_validation_test.dir/estimator_validation_test.cc.o.d"
  "estimator_validation_test"
  "estimator_validation_test.pdb"
  "estimator_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
