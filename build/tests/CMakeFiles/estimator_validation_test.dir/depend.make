# Empty dependencies file for estimator_validation_test.
# This may be replaced when dependencies are built.
