// Figure 15: AgileML strong scaling for LDA, 4 to 64 machines, against
// ideal scaling of the 4-machine traditional baseline.
//
// Configurations follow §6.5: 4 machines = traditional PS baseline;
// 8 machines = stage 1 with 4 reliable + 4 transient; 16/32/64 machines
// = stage 3 with 1 reliable + the rest transient.
#include <cstdio>

#include "bench/support.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

double Run(const LdaEnv& env, int reliable, int transient, std::optional<Stage> stage) {
  LdaApp app(&env.data, env.lda);
  AgileMLConfig config = ClusterAConfig(32);
  // The paper's NYTimes LDA run takes ~100s/iteration on 4 machines;
  // our synthetic corpus is far lighter per core, so emulate the paper's
  // compute density by slowing the virtual cores (the communication
  // pattern is unaffected).
  config.core_speed = 1.2e6;
  config.planner.forced_stage = stage;
  AgileMLRuntime runtime(&app, config, MakeCluster(reliable, transient));
  // First clock initializes topic assignments; exclude it from timing.
  return MeasureTimePerIter(runtime, /*warmup=*/3, /*iters=*/4);
}

void Main() {
  std::printf("=== Fig 15: AgileML strong scaling, LDA, 4-64 machines ===\n");
  const LdaEnv env = MakeLdaEnv();
  TextTable table({"machines", "configuration", "time/iter (s)", "ideal (s)", "efficiency"});

  const double base = Run(env, 4, 0, Stage::kStage1);
  struct Row {
    int machines;
    int reliable;
    int transient;
    std::optional<Stage> stage;
    const char* label;
  };
  const Row rows[] = {
      {4, 4, 0, Stage::kStage1, "traditional (baseline)"},
      {8, 4, 4, Stage::kStage1, "stage 1 (4 reliable + 4 transient)"},
      {16, 1, 15, Stage::kStage3, "stage 3 (1 reliable + 15 transient)"},
      {32, 1, 31, Stage::kStage3, "stage 3 (1 reliable + 31 transient)"},
      {64, 1, 63, Stage::kStage3, "stage 3 (1 reliable + 63 transient)"},
  };
  for (const Row& row : rows) {
    const double t = row.machines == 4 ? base : Run(env, row.reliable, row.transient, row.stage);
    const double ideal = base * 4.0 / row.machines;
    table.AddRow({std::to_string(row.machines), row.label, TextTable::Cell(t, 3),
                  TextTable::Cell(ideal, 3), TextTable::Cell(100.0 * ideal / t, 0) + "%"});
  }
  table.PrintAndMaybeExport("fig15_scalability");
  std::printf("(paper: AgileML scales near-ideal for LDA up to 64 machines)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
