// Chaos soak driver: runs many seeded adversarial fault schedules
// against AgileML and reports recovery overhead per fault class —
// clocks rolled back, pipeline stall seconds, and controller
// notifications — plus the auditor verdict and a determinism check
// (every schedule is re-run once with the same seed; digests must
// match).
//
// Usage: chaos_soak [schedules=50] [base_seed=1]
//                   [--trace_out=PATH] [--metrics_out=PATH]
//                   [--ledger_out=PATH] [--flight_out=PATH]
//
// With --trace_out the run emits a Chrome trace_event JSON (Perfetto)
// containing every fault-injection instant and the recovery spans that
// follow, and the report gains a per-fault-class recovery-time
// breakdown aggregated from those spans. Timestamps are the runtime's
// virtual clock, so two runs with the same seed produce byte-identical
// traces. --ledger_out adds the causal event ledger (JSONL) that
// proteus_analyze turns into critical-path and cost reports, and any
// failing exit (auditor violation, digest mismatch) dumps a
// FlightRecorder post-mortem to --flight_out (default
// flight_recorder.json).
#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/support.h"
#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/chaos/crash_restart.h"
#include "src/chaos/harness.h"
#include "src/chaos/lossy_link.h"
#include "src/chaos/tier_storm.h"

namespace proteus {
namespace {

ChaosConfig MakeConfig(std::uint64_t seed) {
  ChaosConfig config;
  config.agileml.num_partitions = 16;
  config.agileml.data_blocks = 128;
  config.agileml.parallel_execution = false;  // Required for determinism.
  // Leave room between active->backup syncs so mid-sync failures have
  // unsynced clocks at stake.
  config.agileml.backup_sync_every = 3;
  config.agileml.seed = seed;
  config.schedule.horizon = 40;
  config.schedule.events = 10;
  config.schedule.zones = 3;
  // An ultra-transient serverless worker pool so kTierStorm events have
  // victims; thinned capacity is replenished like BidBrain would.
  config.initial_serverless_allocations = 2;
  config.serverless_nodes_per_allocation = 2;
  config.min_serverless = 2;
  config.seed = seed;
  return config;
}

int RunLossyLinkSection(int schedules, std::uint64_t base_seed, MLApp* app);
int RunCrashRestartSection(int seeds, std::uint64_t base_seed, MLApp* app);
int RunTierStormSection(int seeds, std::uint64_t base_seed, MLApp* app);

int RunSoak(int schedules, std::uint64_t base_seed) {
  RatingsConfig rc;
  rc.users = 400;
  rc.items = 200;
  rc.ratings = 15000;
  RatingsDataset data = GenerateRatings(rc);
  MfConfig mc;
  mc.rank = 8;
  MatrixFactorizationApp app(&data, mc);

  FaultClassStats totals[kNumFaultClasses];
  std::size_t total_violations = 0;
  int digest_mismatches = 0;
  int total_clocks = 0;
  int total_lost = 0;
  std::array<long long, 4> depth_totals{};
  std::uint64_t durable_committed = 0;
  std::uint64_t durable_aborts = 0;
  long long corrupt_injected = 0;
  long long corrupt_skipped = 0;
  long long torn_armed = 0;
  std::uint64_t scrubs = 0;
  std::uint64_t scrub_found = 0;

  for (int s = 0; s < schedules; ++s) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(s);
    const ChaosConfig config = MakeConfig(seed);
    ChaosHarness harness(&app, config);
    // Only the primary run records into the session; instrumenting the
    // replay too would double every event in the trace.
    if (bench::ObsSession* session = bench::CurrentObsSession()) {
      session->Attach(harness);
    }
    const ChaosRunResult result = harness.Run();

    ChaosHarness replay(&app, config);
    const ChaosRunResult replayed = replay.Run();
    if (result.Digest() != replayed.Digest()) {
      ++digest_mismatches;
      std::fprintf(stderr, "seed %llu: digest mismatch (%llx vs %llx)\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(result.Digest()),
                   static_cast<unsigned long long>(replayed.Digest()));
    }
    if (!result.ok()) {
      std::fprintf(stderr, "seed %llu: %s\n", static_cast<unsigned long long>(seed),
                   harness.auditor().Report().c_str());
    }
    total_violations += result.violations.size();
    total_clocks += result.clocks_run;
    total_lost += result.lost_clocks_total;
    for (int c = 0; c < kNumFaultClasses; ++c) {
      const auto& stats = result.per_class[static_cast<std::size_t>(c)];
      totals[c].events += stats.events;
      totals[c].lost_clocks += stats.lost_clocks;
      totals[c].stall_seconds += stats.stall_seconds;
      totals[c].control_messages += stats.control_messages;
    }
    for (std::size_t d = 0; d < depth_totals.size(); ++d) {
      depth_totals[d] += result.recovery_depths[d];
    }
    durable_committed += result.durable_epochs_committed;
    durable_aborts += result.durable_commit_aborts;
    corrupt_injected += result.corrupt_frames_injected;
    corrupt_skipped += result.corrupt_epochs_skipped;
    torn_armed += result.torn_checkpoints_armed;
    scrubs += result.scrubs_run;
    scrub_found += result.scrub_corruptions_found;
  }

  std::printf("chaos soak: %d schedules x %lld-clock horizon, base seed %llu\n",
              schedules,
              static_cast<long long>(MakeConfig(base_seed).schedule.horizon),
              static_cast<unsigned long long>(base_seed));
  std::printf("%-22s %8s %12s %14s %10s\n", "fault class", "events", "lost clocks",
              "stall seconds", "ctrl msgs");
  for (int c = 0; c < kNumFaultClasses; ++c) {
    std::printf("%-22s %8d %12d %14.2f %10lld\n",
                FaultClassName(static_cast<FaultClass>(c)), totals[c].events,
                totals[c].lost_clocks, totals[c].stall_seconds,
                static_cast<long long>(totals[c].control_messages));
  }
  std::printf("total clocks executed:  %d (%d rolled back and re-done)\n", total_clocks,
              total_lost);
  std::printf("auditor violations:     %zu\n", total_violations);
  std::printf("determinism mismatches: %d\n", digest_mismatches);

  // Escalation-ladder breakdown (§3.3 tiered reliability): how deep each
  // recovery had to reach, and how the durable insurance behind rung 3
  // held up under injected corruption and torn commits.
  std::printf("\nrecovery-depth breakdown (escalation ladder):\n");
  std::printf("%-22s %8s\n", "depth", "events");
  for (std::size_t d = 0; d < depth_totals.size(); ++d) {
    std::printf("%-22s %8lld\n",
                RecoveryDepthName(static_cast<RecoveryDepth>(d)), depth_totals[d]);
  }
  std::printf("durable epochs committed: %llu (%llu commits aborted by torn writes; "
              "%lld torn-write faults armed)\n",
              static_cast<unsigned long long>(durable_committed),
              static_cast<unsigned long long>(durable_aborts), torn_armed);
  std::printf("corrupt frames injected:  %lld (%lld committed epochs skipped at "
              "restore time)\n",
              corrupt_injected, corrupt_skipped);
  std::printf("scrubs run:               %llu (found %llu corruptions)\n",
              static_cast<unsigned long long>(scrubs),
              static_cast<unsigned long long>(scrub_found));

  // Recovery-time breakdown from the trace spans: each recovery clock
  // following a fault carries one "recovery" span per contributing
  // class, so summing span durations attributes the stall time.
  if (bench::ObsSession* session = bench::CurrentObsSession()) {
    const obs::Tracer* tracer = session->tracer();
    if (tracer->SpanTotal("recovery") > 0.0) {
      std::printf("\nrecovery-time breakdown (from trace spans):\n");
      std::printf("%-22s %18s\n", "fault class", "recovery seconds");
      for (int c = 0; c < kNumFaultClasses; ++c) {
        const char* name = FaultClassName(static_cast<FaultClass>(c));
        std::printf("%-22s %18.2f\n", name, tracer->SpanTotal("recovery", "class", name));
      }
    }
  }
  const int chaos_rc = (total_violations == 0 && digest_mismatches == 0) ? 0 : 1;
  // The companion sections are comparatively cheap; cap them so huge
  // schedule counts stay dominated by the chaos sweep.
  const int crash_rc =
      RunCrashRestartSection(schedules < 10 ? schedules : 10, base_seed, &app);
  const int storm_rc =
      RunTierStormSection(schedules < 10 ? schedules : 10, base_seed, &app);
  const int lossy_rc =
      RunLossyLinkSection(schedules < 10 ? schedules : 10, base_seed, &app);
  if (chaos_rc != 0) {
    return chaos_rc;
  }
  if (crash_rc != 0) {
    return crash_rc;
  }
  return storm_rc != 0 ? storm_rc : lossy_rc;
}

// Crash/restart section: for every rung of the escalation ladder, crash
// mid-run at that depth and verify the recovered state is byte-identical
// to the correct reference (last sync, pre-crash state, or the newest
// committed durable epoch). Any digest mismatch or auditor violation
// fails the soak.
int RunCrashRestartSection(int seeds, std::uint64_t base_seed, MLApp* app) {
  int digest_mismatches = 0;
  std::size_t violations = 0;
  int runs = 0;
  int total_lost = 0;
  for (const CrashScenario scenario :
       {CrashScenario::kBackupPromotion, CrashScenario::kActiveRebuild,
        CrashScenario::kDurableRestore}) {
    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(s);
      CrashRestartConfig config;
      config.agileml.num_partitions = 16;
      config.agileml.data_blocks = 128;
      config.agileml.parallel_execution = false;
      config.agileml.backup_sync_every = 3;
      config.agileml.seed = seed;
      config.scenario = scenario;
      config.horizon = 24;
      config.checkpoint_every = 4;
      config.crash_at = 15;
      config.seed = seed;
      const CrashRestartResult result = RunCrashRestart(app, config);
      ++runs;
      total_lost += result.lost_clocks;
      if (!result.digest_match) {
        ++digest_mismatches;
        std::fprintf(stderr, "crash_restart %s seed %llu: digest mismatch\n",
                     CrashScenarioName(scenario),
                     static_cast<unsigned long long>(seed));
      }
      for (const auto& violation : result.violations) {
        ++violations;
        std::fprintf(stderr, "crash_restart %s seed %llu: %s — %s\n",
                     CrashScenarioName(scenario),
                     static_cast<unsigned long long>(seed),
                     violation.invariant.c_str(), violation.detail.c_str());
      }
    }
  }
  std::printf("\ncrash/restart ladder: %d runs (3 scenarios x %d seeds)\n", runs, seeds);
  std::printf("byte-identical recoveries: %d/%d\n", runs - digest_mismatches, runs);
  std::printf("clocks of work lost:       %d total\n", total_lost);
  std::printf("auditor violations:        %zu\n", violations);
  return (digest_mismatches == 0 && violations == 0) ? 0 : 1;
}

// Tier-storm section (ISSUE 10): zero-warning mass revocations of the
// serverless tier — alone, crossing into the spot tier, overlapping a
// reliable backup-holder loss, or wiping both lower tiers mid-round —
// each must recover to a byte-identical digest at its depth of the
// ladder, with the TierGuard exposure bound audited at every clock.
int RunTierStormSection(int seeds, std::uint64_t base_seed, MLApp* app) {
  constexpr TierStormScenario kScenarios[] = {
      TierStormScenario::kServerlessWipe, TierStormScenario::kCrossTierSpot,
      TierStormScenario::kBackupHolderOverlap, TierStormScenario::kFullWipe};
  int digest_mismatches = 0;
  std::size_t violations = 0;
  int runs = 0;
  std::array<long long, 4> depth_totals{};
  std::array<int, 4> depth_lost{};
  long long serverless_revoked = 0;
  for (const TierStormScenario scenario : kScenarios) {
    for (int s = 0; s < seeds; ++s) {
      const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(s);
      TierStormConfig config;
      config.agileml.num_partitions = 16;
      config.agileml.data_blocks = 128;
      config.agileml.parallel_execution = false;
      config.agileml.backup_sync_every = 3;
      config.agileml.seed = seed;
      config.scenario = scenario;
      config.horizon = 24;
      config.checkpoint_every = 4;
      config.storm_at = 11;
      config.seed = seed;
      const TierStormResult result = RunTierStorm(app, config);
      ++runs;
      const auto depth = static_cast<std::size_t>(result.depth);
      depth_totals[depth] += 1;
      depth_lost[depth] += result.lost_clocks;
      serverless_revoked += result.storm_victims;
      if (!result.digest_match) {
        ++digest_mismatches;
        std::fprintf(stderr, "tier_storm %s seed %llu: digest mismatch\n",
                     TierStormScenarioName(scenario),
                     static_cast<unsigned long long>(seed));
      }
      for (const auto& violation : result.violations) {
        ++violations;
        std::fprintf(stderr, "tier_storm %s seed %llu: %s — %s\n",
                     TierStormScenarioName(scenario),
                     static_cast<unsigned long long>(seed),
                     violation.invariant.c_str(), violation.detail.c_str());
      }
    }
  }
  std::printf("\ntier storms (zero-warning serverless evictions): %d runs "
              "(4 scenarios x %d seeds)\n", runs, seeds);
  std::printf("serverless nodes revoked:  %lld (all with zero warning; every loss\n"
              "                           detector-confirmed, never drained)\n",
              serverless_revoked);
  std::printf("byte-identical recoveries: %d/%d\n", runs - digest_mismatches, runs);
  std::printf("per-depth recovery breakdown:\n");
  std::printf("%-22s %8s %12s\n", "depth", "storms", "lost clocks");
  for (std::size_t d = 0; d < depth_totals.size(); ++d) {
    std::printf("%-22s %8lld %12d\n",
                RecoveryDepthName(static_cast<RecoveryDepth>(d)), depth_totals[d],
                depth_lost[d]);
  }
  std::printf("auditor violations:        %zu (TierGuard bound re-checked every clock)\n",
              violations);
  return (digest_mismatches == 0 && violations == 0) ? 0 : 1;
}

// Lossy control-link section: drives the same controller command stream
// over (a) a clean link, (b) a hostile link behind the reliable
// transport, and (c) the hostile link raw. Reports whether the reliable
// transport reproduced the clean digest and what it cost in
// retransmits.
int RunLossyLinkSection(int schedules, std::uint64_t base_seed,
                        MLApp* app) {
  LinkFaultProfile profile;
  profile.drop_permille = 250;
  profile.delay_permille = 150;
  profile.dup_permille = 150;
  profile.blackhole_every = 20;
  profile.blackhole_len = 3;

  int masked = 0;
  int raw_diverged = 0;
  std::size_t violations = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t dropped = 0;
  for (int s = 0; s < schedules; ++s) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(s);
    LossyLinkConfig config;
    config.agileml.num_partitions = 16;
    config.agileml.data_blocks = 128;
    config.agileml.parallel_execution = false;
    config.agileml.backup_sync_every = 3;
    config.agileml.seed = seed;
    config.horizon = 30;
    config.seed = seed;

    LossyLinkConfig clean = config;
    clean.reliable = false;
    const LossyLinkResult baseline = RunLossyLink(app, clean);

    LossyLinkConfig reliable = config;
    reliable.link = profile;
    reliable.reliable = true;
    const LossyLinkResult r = RunLossyLink(app, reliable);

    LossyLinkConfig raw = config;
    raw.link = profile;
    raw.reliable = false;
    const LossyLinkResult u = RunLossyLink(app, raw);

    masked += r.model_digest == baseline.model_digest ? 1 : 0;
    raw_diverged += u.model_digest != baseline.model_digest ? 1 : 0;
    violations += baseline.violations.size() + r.violations.size() + u.violations.size();
    retransmits += r.retransmits;
    dup_suppressed += r.dup_suppressed;
    dropped += r.link_dropped;
  }

  std::printf("\nlossy control link: %d seeds, drop %d%% / delay %d%% / dup %d%% "
              "/ blackhole %d-every-%d sends\n",
              schedules, profile.drop_permille / 10, profile.delay_permille / 10,
              profile.dup_permille / 10, profile.blackhole_len, profile.blackhole_every);
  std::printf("reliable transport masked the link: %d/%d runs (digest == fault-free)\n",
              masked, schedules);
  std::printf("raw channel diverged:               %d/%d runs\n", raw_diverged, schedules);
  std::printf("frames dropped by the link:         %llu (plus %llu duplicates suppressed)\n",
              static_cast<unsigned long long>(dropped),
              static_cast<unsigned long long>(dup_suppressed));
  std::printf("retransmits paid to mask them:      %llu\n",
              static_cast<unsigned long long>(retransmits));
  std::printf("auditor violations:                 %zu\n", violations);
  return (masked == schedules && violations == 0) ? 0 : 1;
}

}  // namespace
}  // namespace proteus

int main(int argc, char** argv) {
  // Strips the --*_out= observability flags before positional parsing.
  proteus::bench::ObsSession obs_session(argc, argv);
  const int schedules = argc > 1 ? std::atoi(argv[1]) : 50;
  const std::uint64_t base_seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  if (schedules <= 0) {
    std::fprintf(stderr, "usage: %s [schedules] [base_seed] [--trace_out=PATH] "
                         "[--metrics_out=PATH] [--ledger_out=PATH] "
                         "[--flight_out=PATH]\n", argv[0]);
    return 2;
  }
  const int rc = proteus::RunSoak(schedules, base_seed);
  if (rc != 0) {
    // Ship the evidence with the failure: the recent causal event
    // window plus the chain that led to the last recorded event.
    obs_session.DumpFlightRecorder("chaos_soak: failing exit code " + std::to_string(rc));
  }
  return rc;
}
