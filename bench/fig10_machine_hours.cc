// Figure 10: breakdown of machine-hours for 2-hour jobs into on-demand,
// paid spot, and free (spot hours refunded because AWS evicted the
// allocation before the end of its billing hour).
#include <cstdio>

#include "bench/support.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

void Main() {
  std::printf("=== Fig 10: machine-hours breakdown, 2-hour jobs ===\n");
  const MarketEnv env = MakeMarketEnv();
  const JobSimulator sim(&env.catalog, &env.traces, &env.estimator);
  const SchemeConfig config = PaperSchemeConfig();
  const SimDuration duration = 2 * kHour;
  const JobSpec job =
      JobSpec::ForReferenceDuration(env.catalog, "c4.2xlarge", 64, duration, 0.95);
  const std::vector<SimTime> starts = SampleStartTimes(env, 300, duration * 8, /*seed=*/97);

  const SchemeKind schemes[] = {SchemeKind::kOnDemandOnly, SchemeKind::kStandardCheckpoint,
                                SchemeKind::kProteus};
  SampleStats od_hours[3];
  SampleStats spot_hours[3];
  SampleStats free_hours[3];
  for (const SimTime start : starts) {
    for (int s = 0; s < 3; ++s) {
      const JobResult result = sim.Run(schemes[s], job, config, start);
      if (result.completed) {
        od_hours[s].Add(result.bill.on_demand_hours);
        spot_hours[s].Add(result.bill.spot_paid_hours);
        free_hours[s].Add(result.bill.free_hours);
      }
    }
  }

  TextTable table({"scheme", "on-demand (h)", "spot paid (h)", "free (h)", "free share"});
  for (int s = 0; s < 3; ++s) {
    const double total = od_hours[s].Mean() + spot_hours[s].Mean() + free_hours[s].Mean();
    table.AddRow({SchemeName(schemes[s]), TextTable::Cell(od_hours[s].Mean(), 1),
                  TextTable::Cell(spot_hours[s].Mean(), 1),
                  TextTable::Cell(free_hours[s].Mean(), 1),
                  TextTable::Cell(total > 0 ? 100.0 * free_hours[s].Mean() / total : 0.0, 0) +
                      "%"});
  }
  table.PrintAndMaybeExport("fig10_machine_hours");
  std::printf("(paper: ~32%% of Proteus' computing is free; on-demand-only has none)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
