// proteus_analyze: where did my run's time and money go?
//
// Ingests the observability artifacts a bench run wrote (causal event
// ledger, Chrome trace, metrics snapshot) and emits a deterministic
// machine-readable report: per-clock critical-path breakdown, straggler
// attribution, cost-of-reliability split (paper Fig 8/9), recovery
// post-mortems, and rollback/audit summaries. CI archives the report
// next to BENCH_micro_ops.json and fails on any unattributed clock
// stall or ledger gap (--check).
//
// Usage: proteus_analyze --ledger=PATH [--trace=PATH] [--metrics=PATH]
//                        [--out=PATH] [--check]
//                        [--rate_reliable=0.199] [--rate_transient=0.035]
//                        [--top=10]
//
// Only the ledger is required. Without --out the report prints to
// stdout. With --check the exit code is non-zero when any clock's time
// could not be fully attributed or the ledger has structural gaps —
// byte-identical inputs produce byte-identical reports, so the report
// doubles as a determinism fixture.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/support.h"
#include "src/obs/analyze/analyze.h"
#include "src/obs/json.h"

int main(int argc, char** argv) {
  using proteus::bench::TakeFlag;
  using proteus::bench::TakeSwitch;

  const std::string ledger_path = TakeFlag(argc, argv, "ledger");
  const std::string trace_path = TakeFlag(argc, argv, "trace");
  const std::string metrics_path = TakeFlag(argc, argv, "metrics");
  const std::string out_path = TakeFlag(argc, argv, "out");
  const std::string rate_reliable = TakeFlag(argc, argv, "rate_reliable");
  const std::string rate_transient = TakeFlag(argc, argv, "rate_transient");
  const std::string top = TakeFlag(argc, argv, "top");
  const bool check = TakeSwitch(argc, argv, "check");

  if (ledger_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --ledger=PATH [--trace=PATH] [--metrics=PATH] "
                 "[--out=PATH] [--check] [--rate_reliable=R] "
                 "[--rate_transient=R] [--top=N]\n",
                 argv[0]);
    return 2;
  }

  std::string ledger_jsonl;
  if (!proteus::obs::ReadFileToString(ledger_path, &ledger_jsonl)) {
    std::fprintf(stderr, "proteus_analyze: cannot read ledger %s\n", ledger_path.c_str());
    return 2;
  }
  std::string trace_json;
  if (!trace_path.empty() && !proteus::obs::ReadFileToString(trace_path, &trace_json)) {
    std::fprintf(stderr, "proteus_analyze: cannot read trace %s\n", trace_path.c_str());
    return 2;
  }
  std::string metrics_json;
  if (!metrics_path.empty() &&
      !proteus::obs::ReadFileToString(metrics_path, &metrics_json)) {
    std::fprintf(stderr, "proteus_analyze: cannot read metrics %s\n", metrics_path.c_str());
    return 2;
  }

  proteus::obs::analyze::AnalyzeOptions options;
  if (!rate_reliable.empty()) {
    options.rate_reliable_per_hour = std::strtod(rate_reliable.c_str(), nullptr);
  }
  if (!rate_transient.empty()) {
    options.rate_transient_per_hour = std::strtod(rate_transient.c_str(), nullptr);
  }
  if (!top.empty()) {
    options.critical_path_top = std::atoi(top.c_str());
  }

  const proteus::obs::analyze::AnalyzeResult result =
      proteus::obs::analyze::AnalyzeRun(ledger_jsonl, trace_json, metrics_json, options);
  if (!result.error.empty()) {
    std::fprintf(stderr, "proteus_analyze: %s\n", result.error.c_str());
    return 2;
  }

  if (out_path.empty()) {
    std::fputs(result.report_json.c_str(), stdout);
  } else if (proteus::obs::WriteStringToFile(out_path, result.report_json)) {
    std::fprintf(stderr, "report: wrote %zu bytes to %s\n", result.report_json.size(),
                 out_path.c_str());
  } else {
    std::fprintf(stderr, "proteus_analyze: cannot write %s\n", out_path.c_str());
    return 2;
  }

  if (result.unattributed_clocks > 0 || result.ledger_gaps > 0) {
    std::fprintf(stderr,
                 "proteus_analyze: %d unattributed clock(s), %d ledger gap(s)\n",
                 result.unattributed_clocks, result.ledger_gaps);
    if (check) {
      return 1;
    }
  }
  return 0;
}
