// Micro-benchmarks (google-benchmark) for the hot operations of the
// parameter-server substrate: row reads/updates, backup sync, checkpoint
// serialize/write/restore, fabric accounting, and cost-model evaluation.
//
// Two modes:
//   micro_ops [gbench flags]          normal google-benchmark run
//   micro_ops --bench_json=PATH       self-timed headline numbers only,
//                                     written as JSON (the CI artifact)
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/support.h"
#include "src/bidbrain/cost_model.h"
#include "src/ps/checkpoint_store.h"
#include "src/ps/model.h"
#include "src/rpc/messages.h"
#include "src/rpc/serializer.h"

namespace proteus {
namespace {

ModelStore MakeStore() {
  return ModelStore({{0, 10000, 128, 0.0F, 0.1F}}, 32, 7);
}

void BM_ModelReadRow(benchmark::State& state) {
  ModelStore store = MakeStore();
  std::vector<float> row;
  std::int64_t r = 0;
  for (auto _ : state) {
    store.ReadRow(0, r, row);
    benchmark::DoNotOptimize(row.data());
    r = (r + 1) % 10000;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 128 * 4);
}
BENCHMARK(BM_ModelReadRow);

void BM_ModelApplyDelta(benchmark::State& state) {
  ModelStore store = MakeStore();
  const std::vector<float> delta(128, 0.5F);
  std::int64_t r = 0;
  for (auto _ : state) {
    store.ApplyDelta(0, r, delta);
    r = (r + 1) % 10000;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 128 * 4);
}
BENCHMARK(BM_ModelApplyDelta);

void BM_BackupSync(benchmark::State& state) {
  ModelStore store = MakeStore();
  store.EnableBackups();
  const std::vector<float> delta(128, 0.5F);
  for (auto _ : state) {
    state.PauseTiming();
    for (std::int64_t r = 0; r < 1000; ++r) {
      store.ApplyDelta(0, r, delta);
    }
    state.ResumeTiming();
    for (PartitionId p = 0; p < 32; ++p) {
      benchmark::DoNotOptimize(store.SyncPartitionToBackup(p));
    }
  }
}
BENCHMARK(BM_BackupSync);

// --- The PS hot path end to end: apply a clock's worth of updates and
// serialize the resulting push traffic. Legacy = per-row ApplyDelta +
// per-row UpdateParamMsg frames (one allocation per row). Sharded =
// batched ApplyUpdates + one coalesced delta batch per shard (single
// allocation each). Arg(0) is ModelOptions::shards; the shards=1 run of
// BM_ApplySerializeSharded measures batching alone, shards=4 adds lock
// striping and coalesced framing — the tentpole's >= 2x claim.
constexpr int kHotRows = 4096;
constexpr int kHotCols = 64;

ModelStore MakeHotStore(int shards) {
  ModelOptions options;
  options.shards = shards;
  return ModelStore({{0, 10000, kHotCols, 0.0F, 0.1F}}, 32, 7, options);
}

void BM_ApplySerializeLegacy(benchmark::State& state) {
  ModelStore store = MakeHotStore(1);
  const std::vector<float> delta(kHotCols, 0.5F);
  for (auto _ : state) {
    std::uint64_t bytes = 0;
    for (std::int64_t r = 0; r < kHotRows; ++r) {
      store.ApplyDelta(0, r, delta);
      UpdateParamMsg msg;
      msg.table = 0;
      msg.row = r;
      msg.delta = delta;
      bytes += EncodeMessage(msg).size();
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kHotRows);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kHotRows * kHotCols * 4);
}
BENCHMARK(BM_ApplySerializeLegacy);

void BM_ApplySerializeSharded(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  ModelStore store = MakeHotStore(shards);
  const std::vector<float> delta(kHotCols, 0.5F);
  std::vector<RowDelta> batch;
  std::vector<DeltaRow> wire;
  batch.reserve(kHotRows);
  wire.reserve(kHotRows);
  for (std::int64_t r = 0; r < kHotRows; ++r) {
    batch.push_back({0, r, std::span<const float>(delta)});
    wire.push_back({MakeRowKey(0, r), std::span<const float>(delta)});
  }
  for (auto _ : state) {
    store.ApplyUpdates(batch);
    benchmark::DoNotOptimize(EncodeDeltaBatch(wire).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kHotRows);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kHotRows * kHotCols * 4);
}
BENCHMARK(BM_ApplySerializeSharded)->Arg(1)->Arg(4)->Arg(8);

// --- Durable checkpoint path (PR 6): serialize the model's shards,
// push them through the two-phase CheckpointStore commit, and restore
// them back. Bytes/sec is the headline; the store-write bench forces
// full (non-incremental) epochs so it measures frame+CRC+manifest cost,
// not the reuse fast path.

void PopulateStore(ModelStore& store) {
  const std::vector<float> delta(kHotCols, 0.5F);
  std::vector<RowDelta> batch;
  batch.reserve(kHotRows);
  for (std::int64_t r = 0; r < kHotRows; ++r) {
    batch.push_back({0, r, std::span<const float>(delta)});
  }
  store.ApplyUpdates(batch);
}

std::uint64_t CheckpointBytes(const ModelStore& store) {
  std::uint64_t bytes = 0;
  for (int s = 0; s < store.shards(); ++s) {
    bytes += store.SerializeShardCheckpoint(s).size();
  }
  return bytes;
}

void BM_CheckpointSerializeShards(benchmark::State& state) {
  ModelStore store = MakeHotStore(static_cast<int>(state.range(0)));
  PopulateStore(store);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    bytes = 0;
    for (int s = 0; s < store.shards(); ++s) {
      bytes += store.SerializeShardCheckpoint(s).size();
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CheckpointSerializeShards)->Arg(1)->Arg(8);

void BM_CheckpointStoreWrite(benchmark::State& state) {
  ModelStore store = MakeHotStore(static_cast<int>(state.range(0)));
  PopulateStore(store);
  std::vector<std::vector<std::uint8_t>> blobs;
  std::uint64_t bytes = 0;
  for (int s = 0; s < store.shards(); ++s) {
    blobs.push_back(store.SerializeShardCheckpoint(s));
    bytes += blobs.back().size();
  }
  const std::vector<std::uint64_t> force_full(blobs.size(), 0);
  MemDurableDevice device;
  CheckpointStore ck(&device);
  Clock clock = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ck.WriteBlobs(blobs, force_full, ++clock).committed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CheckpointStoreWrite)->Arg(1)->Arg(8);

void BM_CheckpointRestore(benchmark::State& state) {
  ModelStore store = MakeHotStore(static_cast<int>(state.range(0)));
  PopulateStore(store);
  MemDurableDevice device;
  CheckpointStore ck(&device);
  const CheckpointWriteResult written = ck.WriteCheckpoint(store, 1);
  for (auto _ : state) {
    const auto loaded = ck.ReadNewestValid();
    for (int s = 0; s < store.shards(); ++s) {
      store.RestoreShardCheckpoint(s, loaded->shard_blobs[static_cast<std::size_t>(s)]);
    }
    benchmark::DoNotOptimize(loaded->bytes_read);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(written.bytes_written));
}
BENCHMARK(BM_CheckpointRestore)->Arg(1)->Arg(8);

void BM_FabricRecordTransfer(benchmark::State& state) {
  Fabric fabric(1.25e8);
  for (NodeId n = 0; n < 64; ++n) {
    fabric.AddNode(n);
  }
  fabric.BeginRound();
  NodeId src = 0;
  for (auto _ : state) {
    fabric.RecordTransfer(src, (src + 1) % 64, 1024);
    src = (src + 1) % 64;
  }
}
BENCHMARK(BM_FabricRecordTransfer);

void BM_CostModelEvaluate(benchmark::State& state) {
  std::vector<AllocationPlan> plans;
  for (int i = 0; i < 8; ++i) {
    AllocationPlan plan;
    plan.market = {"z0", "c4.xlarge"};
    plan.count = 16;
    plan.hourly_price = 0.05 + 0.01 * i;
    plan.beta = 0.1 * i / 8.0;
    plan.omega = kHour;
    plan.work_per_hour = 4.0;
    plans.push_back(plan);
  }
  const AppProfile app;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CostModel::ExpectedCostPerWork(plans, app, true));
  }
}
BENCHMARK(BM_CostModelEvaluate);

void BM_MfProcessClock(benchmark::State& state) {
  RatingsConfig rc;
  rc.users = 2000;
  rc.items = 500;
  rc.ratings = 20000;
  const RatingsDataset data = GenerateRatings(rc);
  MfConfig mc;
  mc.rank = 64;
  MatrixFactorizationApp app(&data, mc);
  AgileMLConfig config;
  config.num_partitions = 8;
  config.parallel_execution = false;
  AgileMLRuntime runtime(&app, config, {{0, Tier::kReliable, 8, kInvalidAllocation}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.RunClock().duration);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * rc.ratings);
}
BENCHMARK(BM_MfProcessClock);

// --- --bench_json mode: the headline numbers CI tracks as an artifact.
// Self-timed (steady_clock) instead of going through google-benchmark so
// the output schema is ours and stays stable across benchmark-library
// upgrades.

double SecondsPerIter(const std::function<void()>& body) {
  using clock = std::chrono::steady_clock;
  body();  // Warm-up: touch lazily-materialized rows, fill caches.
  int iters = 0;
  const clock::time_point begin = clock::now();
  clock::time_point now = begin;
  // At least 3 iterations and ~200ms of wall time.
  while (iters < 3 || std::chrono::duration<double>(now - begin).count() < 0.2) {
    body();
    ++iters;
    now = clock::now();
  }
  return std::chrono::duration<double>(now - begin).count() / iters;
}

std::vector<bench::BenchJsonRow> RunJsonBenches() {
  std::vector<bench::BenchJsonRow> rows;

  // Legacy vs sharded apply+serialize: the tentpole rows/s comparison.
  {
    ModelStore store = MakeHotStore(1);
    const std::vector<float> delta(kHotCols, 0.5F);
    const double spi = SecondsPerIter([&] {
      std::uint64_t bytes = 0;
      for (std::int64_t r = 0; r < kHotRows; ++r) {
        store.ApplyDelta(0, r, delta);
        UpdateParamMsg msg;
        msg.table = 0;
        msg.row = r;
        msg.delta = delta;
        bytes += EncodeMessage(msg).size();
      }
      benchmark::DoNotOptimize(bytes);
    });
    rows.push_back({"apply_serialize_legacy", "rows_per_sec", kHotRows / spi, "rows/s"});
  }
  {
    ModelStore store = MakeHotStore(8);
    const std::vector<float> delta(kHotCols, 0.5F);
    std::vector<RowDelta> batch;
    std::vector<DeltaRow> wire;
    batch.reserve(kHotRows);
    wire.reserve(kHotRows);
    for (std::int64_t r = 0; r < kHotRows; ++r) {
      batch.push_back({0, r, std::span<const float>(delta)});
      wire.push_back({MakeRowKey(0, r), std::span<const float>(delta)});
    }
    const double spi = SecondsPerIter([&] {
      store.ApplyUpdates(batch);
      benchmark::DoNotOptimize(EncodeDeltaBatch(wire).size());
    });
    rows.push_back({"apply_serialize_sharded8", "rows_per_sec", kHotRows / spi, "rows/s"});
  }

  // Durable checkpoint path: serialize, store-write (full epochs through
  // the 2-phase commit), restore.
  {
    ModelStore store = MakeHotStore(8);
    PopulateStore(store);
    const double bytes = static_cast<double>(CheckpointBytes(store));
    const double spi = SecondsPerIter([&] {
      std::uint64_t total = 0;
      for (int s = 0; s < store.shards(); ++s) {
        total += store.SerializeShardCheckpoint(s).size();
      }
      benchmark::DoNotOptimize(total);
    });
    rows.push_back({"checkpoint_serialize", "mb_per_sec", bytes / spi / 1e6, "MB/s"});
  }
  {
    ModelStore store = MakeHotStore(8);
    PopulateStore(store);
    std::vector<std::vector<std::uint8_t>> blobs;
    double bytes = 0;
    for (int s = 0; s < store.shards(); ++s) {
      blobs.push_back(store.SerializeShardCheckpoint(s));
      bytes += static_cast<double>(blobs.back().size());
    }
    const std::vector<std::uint64_t> force_full(blobs.size(), 0);
    MemDurableDevice device;
    CheckpointStore ck(&device);
    Clock clock = 0;
    const double spi = SecondsPerIter([&] {
      benchmark::DoNotOptimize(ck.WriteBlobs(blobs, force_full, ++clock).committed);
    });
    rows.push_back({"checkpoint_store_write", "mb_per_sec", bytes / spi / 1e6, "MB/s"});
  }
  {
    ModelStore store = MakeHotStore(8);
    PopulateStore(store);
    MemDurableDevice device;
    CheckpointStore ck(&device);
    const CheckpointWriteResult written = ck.WriteCheckpoint(store, 1);
    const double bytes = static_cast<double>(written.bytes_written);
    const double spi = SecondsPerIter([&] {
      const auto loaded = ck.ReadNewestValid();
      for (int s = 0; s < store.shards(); ++s) {
        store.RestoreShardCheckpoint(s, loaded->shard_blobs[static_cast<std::size_t>(s)]);
      }
      benchmark::DoNotOptimize(loaded->bytes_read);
    });
    rows.push_back({"checkpoint_restore", "mb_per_sec", bytes / spi / 1e6, "MB/s"});
  }
  return rows;
}

int WriteMicroOpsJson(const std::string& path) {
  return bench::WriteBenchJson(path, "micro_ops", RunJsonBenches()) ? 0 : 1;
}

}  // namespace
}  // namespace proteus

int main(int argc, char** argv) {
  const std::string json_path = proteus::bench::TakeFlag(argc, argv, "bench_json");
  if (!json_path.empty()) {
    return proteus::WriteMicroOpsJson(json_path);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
