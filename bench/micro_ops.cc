// Micro-benchmarks (google-benchmark) for the hot operations of the
// parameter-server substrate: row reads/updates, backup sync, fabric
// accounting, and cost-model evaluation.
#include <benchmark/benchmark.h>

#include "bench/support.h"
#include "src/bidbrain/cost_model.h"
#include "src/ps/model.h"
#include "src/rpc/messages.h"
#include "src/rpc/serializer.h"

namespace proteus {
namespace {

ModelStore MakeStore() {
  return ModelStore({{0, 10000, 128, 0.0F, 0.1F}}, 32, 7);
}

void BM_ModelReadRow(benchmark::State& state) {
  ModelStore store = MakeStore();
  std::vector<float> row;
  std::int64_t r = 0;
  for (auto _ : state) {
    store.ReadRow(0, r, row);
    benchmark::DoNotOptimize(row.data());
    r = (r + 1) % 10000;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 128 * 4);
}
BENCHMARK(BM_ModelReadRow);

void BM_ModelApplyDelta(benchmark::State& state) {
  ModelStore store = MakeStore();
  const std::vector<float> delta(128, 0.5F);
  std::int64_t r = 0;
  for (auto _ : state) {
    store.ApplyDelta(0, r, delta);
    r = (r + 1) % 10000;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 128 * 4);
}
BENCHMARK(BM_ModelApplyDelta);

void BM_BackupSync(benchmark::State& state) {
  ModelStore store = MakeStore();
  store.EnableBackups();
  const std::vector<float> delta(128, 0.5F);
  for (auto _ : state) {
    state.PauseTiming();
    for (std::int64_t r = 0; r < 1000; ++r) {
      store.ApplyDelta(0, r, delta);
    }
    state.ResumeTiming();
    for (PartitionId p = 0; p < 32; ++p) {
      benchmark::DoNotOptimize(store.SyncPartitionToBackup(p));
    }
  }
}
BENCHMARK(BM_BackupSync);

// --- The PS hot path end to end: apply a clock's worth of updates and
// serialize the resulting push traffic. Legacy = per-row ApplyDelta +
// per-row UpdateParamMsg frames (one allocation per row). Sharded =
// batched ApplyUpdates + one coalesced delta batch per shard (single
// allocation each). Arg(0) is ModelOptions::shards; the shards=1 run of
// BM_ApplySerializeSharded measures batching alone, shards=4 adds lock
// striping and coalesced framing — the tentpole's >= 2x claim.
constexpr int kHotRows = 4096;
constexpr int kHotCols = 64;

ModelStore MakeHotStore(int shards) {
  ModelOptions options;
  options.shards = shards;
  return ModelStore({{0, 10000, kHotCols, 0.0F, 0.1F}}, 32, 7, options);
}

void BM_ApplySerializeLegacy(benchmark::State& state) {
  ModelStore store = MakeHotStore(1);
  const std::vector<float> delta(kHotCols, 0.5F);
  for (auto _ : state) {
    std::uint64_t bytes = 0;
    for (std::int64_t r = 0; r < kHotRows; ++r) {
      store.ApplyDelta(0, r, delta);
      UpdateParamMsg msg;
      msg.table = 0;
      msg.row = r;
      msg.delta = delta;
      bytes += EncodeMessage(msg).size();
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kHotRows);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kHotRows * kHotCols * 4);
}
BENCHMARK(BM_ApplySerializeLegacy);

void BM_ApplySerializeSharded(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  ModelStore store = MakeHotStore(shards);
  const std::vector<float> delta(kHotCols, 0.5F);
  std::vector<RowDelta> batch;
  std::vector<DeltaRow> wire;
  batch.reserve(kHotRows);
  wire.reserve(kHotRows);
  for (std::int64_t r = 0; r < kHotRows; ++r) {
    batch.push_back({0, r, std::span<const float>(delta)});
    wire.push_back({MakeRowKey(0, r), std::span<const float>(delta)});
  }
  for (auto _ : state) {
    store.ApplyUpdates(batch);
    benchmark::DoNotOptimize(EncodeDeltaBatch(wire).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kHotRows);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kHotRows * kHotCols * 4);
}
BENCHMARK(BM_ApplySerializeSharded)->Arg(1)->Arg(4)->Arg(8);

void BM_FabricRecordTransfer(benchmark::State& state) {
  Fabric fabric(1.25e8);
  for (NodeId n = 0; n < 64; ++n) {
    fabric.AddNode(n);
  }
  fabric.BeginRound();
  NodeId src = 0;
  for (auto _ : state) {
    fabric.RecordTransfer(src, (src + 1) % 64, 1024);
    src = (src + 1) % 64;
  }
}
BENCHMARK(BM_FabricRecordTransfer);

void BM_CostModelEvaluate(benchmark::State& state) {
  std::vector<AllocationPlan> plans;
  for (int i = 0; i < 8; ++i) {
    AllocationPlan plan;
    plan.market = {"z0", "c4.xlarge"};
    plan.count = 16;
    plan.hourly_price = 0.05 + 0.01 * i;
    plan.beta = 0.1 * i / 8.0;
    plan.omega = kHour;
    plan.work_per_hour = 4.0;
    plans.push_back(plan);
  }
  const AppProfile app;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CostModel::ExpectedCostPerWork(plans, app, true));
  }
}
BENCHMARK(BM_CostModelEvaluate);

void BM_MfProcessClock(benchmark::State& state) {
  RatingsConfig rc;
  rc.users = 2000;
  rc.items = 500;
  rc.ratings = 20000;
  const RatingsDataset data = GenerateRatings(rc);
  MfConfig mc;
  mc.rank = 64;
  MatrixFactorizationApp app(&data, mc);
  AgileMLConfig config;
  config.num_partitions = 8;
  config.parallel_execution = false;
  AgileMLRuntime runtime(&app, config, {{0, Tier::kReliable, 8, kInvalidAllocation}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime.RunClock().duration);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * rc.ratings);
}
BENCHMARK(BM_MfProcessClock);

}  // namespace
}  // namespace proteus

BENCHMARK_MAIN();
