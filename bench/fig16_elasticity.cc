// Figure 16: elasticity timeline. MF starts on 4 reliable machines; 60
// transient machines are added at iteration 11 (incorporated in the
// background) and evicted (with warning) at iteration 35.
//
// Paper shape: no disruption on addition (background preparation),
// immediate speedup once incorporated, a ~13% one-iteration blip on
// eviction, then a return to the 4-machine iteration time.
#include <cstdio>

#include "bench/support.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

void Main() {
  std::printf("=== Fig 16: bulk addition at iter 11, bulk eviction at iter 35 (MF) ===\n");
  const MfEnv env = MakeMfEnv();
  MatrixFactorizationApp app(&env.data, env.mf);
  AgileMLConfig config = ClusterAConfig(32);
  AgileMLRuntime runtime(&app, config, MakeCluster(4, 0));
  if (ObsSession* session = CurrentObsSession()) {
    session->Attach(runtime);
  }

  struct Sample {
    double duration;
    Stage stage;
    int workers;
    std::string event;
  };
  std::vector<Sample> samples;
  int prev_workers = 4;
  for (int iter = 1; iter <= 45; ++iter) {
    std::string event;
    if (iter == 11) {
      std::vector<NodeInfo> transient;
      for (NodeId id = 100; id < 160; ++id) {
        transient.push_back({id, Tier::kTransient, 8, kInvalidAllocation});
      }
      runtime.AddNodes(transient);
      event = "+60 transient requested (preloading)";
    }
    if (iter == 35) {
      std::vector<NodeId> evictees;
      for (const auto& node : runtime.nodes()) {
        if (!node.reliable()) {
          evictees.push_back(node.id);
        }
      }
      runtime.Evict(evictees);
      event = "eviction: -" + std::to_string(evictees.size()) + " transient";
    }
    const IterationReport report = runtime.RunClock();
    if (event.empty() && report.worker_nodes > prev_workers) {
      event = "transient nodes incorporated";
    }
    prev_workers = report.worker_nodes;
    samples.push_back({report.duration, report.stage, report.worker_nodes, event});
  }

  TextTable table({"iteration", "time (s)", "stage", "workers", "event"});
  for (std::size_t i = 0; i < samples.size(); ++i) {
    table.AddRow({std::to_string(i + 1), TextTable::Cell(samples[i].duration, 3),
                  StageName(samples[i].stage), std::to_string(samples[i].workers),
                  samples[i].event});
  }
  table.PrintAndMaybeExport("fig16_elasticity");

  const double before = samples[8].duration;
  const double during = samples[25].duration;
  const double blip = samples[34].duration;   // Iteration 35: eviction handling.
  const double after = samples[42].duration;
  std::printf("4-machine steady: %.3fs; 64-machine steady: %.3fs (speedup %.1fx)\n", before,
              during, before / during);
  std::printf("eviction blip: %.3fs vs post-eviction steady %.3fs (+%.0f%%)\n", blip, after,
              100.0 * (blip - after) / after);
  std::printf(
      "(paper: no disruption on add; ~13%% blip on eviction; returns to 4-machine speed)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
