// §6.3 ablation: fixed-bid-delta strategies vs BidBrain's adaptive
// choice. The paper reports that always bidding just above the market
// price (chasing free compute) increases runtime 3-4x and raises cost,
// while BidBrain's beta-aware bidding finds the happy medium.
//
// A thin front-end over the Policy Lab: each strategy is a BidBrain
// restricted to one delta, registered with the BacktestEngine and
// replayed over the same sampled start times.
#include <cstdio>
#include <memory>

#include "bench/support.h"
#include "src/backtest/backtest_engine.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

void Main() {
  std::printf("=== Bid-delta sweep: fixed deltas vs BidBrain's adaptive choice ===\n");
  const MarketEnv env = MakeMarketEnv();
  const SimDuration duration = 4 * kHour;

  struct Variant {
    const char* label;
    std::vector<Money> deltas;
  };
  const Variant variants[] = {
      {"fixed delta $0.0001 (chase free compute)", {0.0001}},
      {"fixed delta $0.01", {0.01}},
      {"fixed delta $0.10", {0.1}},
      {"fixed delta $0.40 (bid far above)", {0.4}},
      {"BidBrain (adaptive over full grid)", BidBrainConfig{}.bid_deltas},
  };

  backtest::BacktestEngine engine(&env.catalog, &env.traces, &env.estimator);
  if (ObsSession* obs = CurrentObsSession()) {
    engine.SetObservability(obs->tracer(), obs->metrics());
  }
  for (const Variant& variant : variants) {
    BidBrainConfig config = PaperSchemeConfig().bidbrain;
    config.bid_deltas = variant.deltas;
    engine.RegisterPolicy(
        [&env, config] {
          return std::make_unique<BidBrain>(&env.catalog, &env.traces, &env.estimator, config);
        },
        variant.label);
  }

  backtest::BacktestConfig config;
  config.explicit_starts = SampleStartTimes(env, 120, duration * 8, /*seed=*/95);
  config.window_duration = duration;
  config.reference_types = {"c4.2xlarge"};
  config.reference_count = 64;
  config.reference_phi = 0.95;
  config.scheme = PaperSchemeConfig();
  const backtest::BacktestReport report = engine.Run(config);

  TextTable table({"strategy", "avg cost ($)", "avg runtime (h)", "avg evictions",
                   "free share"});
  for (const backtest::BacktestPolicyAggregate& agg : report.aggregates) {
    table.AddRow({agg.policy, TextTable::Cell(agg.mean_cost, 2),
                  TextTable::Cell(agg.mean_runtime / kHour, 2),
                  TextTable::Cell(agg.mean_evictions, 1),
                  TextTable::Cell(100.0 * agg.mean_free_fraction, 0) + "%"});
  }
  table.PrintAndMaybeExport("tab_bid_delta_sweep");
  std::printf(
      "(paper: always bidding just above market -> 3-4x runtime and higher cost;\n"
      " BidBrain's eviction-aware choice finds the happy medium)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
