// §6.3 ablation: fixed-bid-delta strategies vs BidBrain's adaptive
// choice. The paper reports that always bidding just above the market
// price (chasing free compute) increases runtime 3-4x and raises cost,
// while BidBrain's beta-aware bidding finds the happy medium.
#include <cstdio>

#include "bench/support.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

void Main() {
  std::printf("=== Bid-delta sweep: fixed deltas vs BidBrain's adaptive choice ===\n");
  const MarketEnv env = MakeMarketEnv();
  const JobSimulator sim(&env.catalog, &env.traces, &env.estimator);
  const SimDuration duration = 4 * kHour;
  const JobSpec job =
      JobSpec::ForReferenceDuration(env.catalog, "c4.2xlarge", 64, duration, 0.95);
  const std::vector<SimTime> starts = SampleStartTimes(env, 120, duration * 8, /*seed=*/95);

  struct Variant {
    const char* label;
    std::vector<Money> deltas;
  };
  const Variant variants[] = {
      {"fixed delta $0.0001 (chase free compute)", {0.0001}},
      {"fixed delta $0.01", {0.01}},
      {"fixed delta $0.10", {0.1}},
      {"fixed delta $0.40 (bid far above)", {0.4}},
      {"BidBrain (adaptive over full grid)", BidBrainConfig{}.bid_deltas},
  };

  TextTable table({"strategy", "avg cost ($)", "avg runtime (h)", "avg evictions",
                   "free share"});
  for (const Variant& variant : variants) {
    SchemeConfig config = PaperSchemeConfig();
    config.bidbrain.bid_deltas = variant.deltas;
    SampleStats cost;
    SampleStats runtime;
    SampleStats evictions;
    SampleStats free_share;
    for (const SimTime start : starts) {
      const JobResult result = sim.Run(SchemeKind::kProteus, job, config, start);
      if (!result.completed) {
        continue;
      }
      cost.Add(result.bill.cost);
      runtime.Add(result.runtime);
      evictions.Add(result.evictions);
      const double total = result.bill.TotalHours();
      free_share.Add(total > 0 ? result.bill.free_hours / total : 0.0);
    }
    table.AddRow({variant.label, TextTable::Cell(cost.Mean(), 2),
                  TextTable::Cell(runtime.Mean() / kHour, 2),
                  TextTable::Cell(evictions.Mean(), 1),
                  TextTable::Cell(100.0 * free_share.Mean(), 0) + "%"});
  }
  table.PrintAndMaybeExport("tab_bid_delta_sweep");
  std::printf(
      "(paper: always bidding just above market -> 3-4x runtime and higher cost;\n"
      " BidBrain's eviction-aware choice finds the happy medium)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
