// Shared setup for the benchmark harness: paper-scale workloads,
// cluster builders, measurement helpers, and the spot-market environment
// used by the cost benches.
//
// Calibration: the AgileML benches emulate the paper's Cluster-A (64
//8-core machines, 1 Gbps NICs). Absolute seconds depend on the virtual
// core speed; the constants below are set so the relative anchors from
// the paper hold (see bench/tab_model_validation.cc):
//   - stage 1 with 4 ParamServs at 60:4 is slowed >85% vs traditional,
//   - stage 2 with 32 ActivePSs at 15:1 is ~18% slower than traditional,
//   - stage 3 at 63:1 roughly matches traditional.
#ifndef BENCH_SUPPORT_H_
#define BENCH_SUPPORT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/agileml/runtime.h"
#include "src/apps/datasets.h"
#include "src/apps/lda.h"
#include "src/apps/mf.h"
#include "src/apps/mlr.h"
#include "src/bidbrain/eviction_estimator.h"
#include "src/chaos/harness.h"
#include "src/market/spot_market.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/ledger.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/proteus/job_simulator.h"
#include "src/proteus/proteus_runtime.h"

namespace proteus {
namespace bench {

// Pops `--name=value` style flags out of argv; returns the value of the
// last occurrence (empty if absent). Positional arguments keep their
// relative order.
std::string TakeFlag(int& argc, char** argv, const char* name);

// Pops a bare `--name` switch out of argv; returns whether it was present.
bool TakeSwitch(int& argc, char** argv, const char* name);

// --- --bench_json artifacts ---
//
// Headline numbers CI tracks across runs. Benches that support
// `--bench_json=PATH` emit `{"schema": "proteus.<bench>.v1",
// "benchmarks": [{name, metric, value, unit}, ...]}` through this shared
// writer so every artifact parses the same way.
struct BenchJsonRow {
  std::string name;
  std::string metric;
  double value = 0.0;
  std::string unit;
};

// Writes the rows to `path` under `proteus.<schema>.v1` and echoes them
// to stdout. Returns false (and logs to stderr) on I/O failure.
bool WriteBenchJson(const std::string& path, const std::string& schema,
                    const std::vector<BenchJsonRow>& rows);

// --- Observability session (--trace_out= / --metrics_out= /
//     --ledger_out= / --flight_out=) ---
//
// Every bench accepts four optional flags:
//   --trace_out=PATH    Chrome trace_event JSON of the run, viewable in
//                       Perfetto (ui.perfetto.dev) or chrome://tracing.
//   --metrics_out=PATH  MetricsRegistry snapshot; a .csv suffix selects
//                       CSV, a .json suffix the JSON export, anything
//                       else the text exposition format.
//   --ledger_out=PATH   Causal event ledger as JSONL — the input
//                       proteus_analyze turns into critical-path and
//                       cost-attribution reports.
//   --flight_out=PATH   Where FlightRecorder post-mortems land (default
//                       flight_recorder.json) when an auditor violation
//                       or a PROTEUS_CHECK failure fires.
// The session owns the Tracer, MetricsRegistry, EventLedger, and
// FlightRecorder that instrumented runtimes record into, strips the
// flags it recognizes from argc/argv (positional-argument parsing stays
// untouched), and writes the requested artifacts when it goes out of
// scope. The recorder holds the fatal-log hook for the session's
// lifetime, so a CHECK failure anywhere dumps the recent event window.
class ObsSession {
 public:
  ObsSession(int& argc, char** argv);
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  obs::Tracer* tracer() { return &tracer_; }
  obs::MetricsRegistry* metrics() { return &metrics_; }
  obs::EventLedger* ledger() { return &ledger_; }
  obs::FlightRecorder* recorder() { return &recorder_; }
  bool enabled() const {
    return !trace_path_.empty() || !metrics_path_.empty() || !ledger_path_.empty();
  }

  // Wires a runtime into this session's sinks.
  void Attach(AgileMLRuntime& runtime) {
    runtime.SetObservability(&tracer_, &metrics_);
    runtime.SetLedger(&ledger_);
  }
  void Attach(ProteusRuntime& runtime) {
    runtime.SetObservability(&tracer_, &metrics_);
    runtime.SetLedger(&ledger_);
  }
  void Attach(ChaosHarness& harness) {
    harness.SetObservability(&tracer_, &metrics_);
    harness.SetLedger(&ledger_, &recorder_);
  }

  // Writes a FlightRecorder post-mortem to the configured --flight_out
  // path right now (used by benches on a failing exit).
  void DumpFlightRecorder(const std::string& reason);

  // Writes the requested artifacts now (idempotent; the destructor
  // calls it too).
  void Flush();

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::string ledger_path_;
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  obs::EventLedger ledger_;
  obs::FlightRecorder recorder_;
  bool flushed_ = false;
};

// The bench's ambient session: set while an ObsSession is alive (one per
// process), nullptr otherwise. Helpers that build runtimes internally
// (e.g. MeasureTimePerIter) attach through this.
ObsSession* CurrentObsSession();

// --- AgileML-side environment (Figs. 11-16) ---

struct MfEnv {
  RatingsDataset data;
  MfConfig mf;
};

// The MF workload standing in for Netflix-on-Cluster-A.
MfEnv MakeMfEnv();

struct LdaEnv {
  CorpusDataset data;
  LdaConfig lda;
};

// The LDA workload standing in for NYTimes (Fig. 15).
LdaEnv MakeLdaEnv();

// AgileML runtime config emulating Cluster-A.
AgileMLConfig ClusterAConfig(int num_partitions = 32);

// reliable then transient nodes, ids 0..n-1, 8 cores each.
std::vector<NodeInfo> MakeCluster(int reliable, int transient);

// Mean time-per-iteration after warm-up.
double MeasureTimePerIter(AgileMLRuntime& runtime, int warmup, int iters);

// --- Market-side environment (Figs. 1, 3, 8, 9, 10) ---

struct MarketEnv {
  InstanceTypeCatalog catalog;
  TraceStore traces;       // Full horizon.
  EvictionEstimator estimator;  // Trained on the first part of the horizon.
  SimTime eval_begin = 0;  // Evaluation windows start here.
  SimTime eval_end = 0;
};

// Four zones (like US-EAST-1), ~90 days of synthetic prices; estimator
// trained on the first 45 days, evaluation on the rest — mirroring the
// paper's train (Mar-Jun) / evaluate (Jun-Aug) split.
MarketEnv MakeMarketEnv(std::uint64_t seed = 2016);

// MarketEnv from a stored trace CSV (columns zone,type,time_sec,price,
// see TraceStore::ReadFile). Mirrors MakeMarketEnv's split: the
// estimator trains on the first half of the recorded horizon and the
// evaluation span is the second half. CHECK-fails on a missing/empty
// file.
MarketEnv MakeMarketEnvFromCsv(const std::string& path);

// Scheme config shared by the cost benches (Cluster-A-sized jobs).
SchemeConfig PaperSchemeConfig();

// Random job start times within the evaluation window.
std::vector<SimTime> SampleStartTimes(const MarketEnv& env, int count, SimDuration job_slack,
                                      std::uint64_t seed);

}  // namespace bench
}  // namespace proteus

#endif  // BENCH_SUPPORT_H_
