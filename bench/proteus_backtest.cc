// proteus_backtest: the Policy Lab CLI (DESIGN.md §9).
//
// Replays a set of acquisition policies over sliding windows of stored
// (or synthetic) spot-price traces and prints a ranked comparison:
//
//   proteus_backtest                              # synthetic 90-day market
//   proteus_backtest --trace_csv=bench/data/mini_trace.csv --windows=4
//   proteus_backtest --policies=bidbrain,oracle:4 --out=cells.csv
//
// Flags:
//   --policies=a,b,...     Policy specs (see --list_policies). Default:
//                          on_demand,fixed_delta:0.01,fixed_delta:0.10,
//                          bidbrain,oracle
//   --trace_csv=PATH       Load traces from CSV (zone,type,time_sec,price)
//                          instead of generating the synthetic market.
//   --types=a,b,...        Reference instance types (default c4.2xlarge).
//   --windows=N            Sliding windows over the eval span (default 6).
//   --window_hours=H       Window job duration (default 2).
//   --stride_hours=H       Window stride; 0 = spread evenly (default 0).
//   --jitter_hours=H       Per-cell start jitter (default 0).
//   --reference_count=N    Reference cluster size (default 64).
//   --threads=N            Worker threads; 0 = hardware (default 0).
//   --seed=N               Base seed for per-cell RNG (default 2016).
//   --out=PATH             Write the per-cell result CSV.
//   --list_policies        Print known policy specs and exit.
//   --emit_mini_trace=PATH Regenerate the bundled mini trace and exit.
//   --trace_out= / --metrics_out=  Standard observability sinks.
//
// Determinism: for a fixed seed the per-cell CSV is byte-identical at
// any --threads value (tests/backtest_golden_test.cc).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/support.h"
#include "src/backtest/backtest_engine.h"

namespace proteus {
namespace {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == sep) {
      if (!current.empty()) {
        parts.push_back(current);
      }
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) {
    parts.push_back(current);
  }
  return parts;
}

double FlagOr(const std::string& value, double fallback) {
  return value.empty() ? fallback : std::strtod(value.c_str(), nullptr);
}

int Main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);

  if (bench::TakeSwitch(argc, argv, "list_policies")) {
    std::printf("policy specs:\n");
    for (const std::string& spec : backtest::KnownPolicySpecs()) {
      std::printf("  %s\n", spec.c_str());
    }
    return 0;
  }

  const std::string emit = bench::TakeFlag(argc, argv, "emit_mini_trace");
  if (!emit.empty()) {
    // The bundled CI trace: 2 zones x the default catalog, 4 days at a
    // 15-minute step — big enough for 4+ two-hour windows on the eval
    // half, small enough to commit.
    SyntheticTraceConfig config;
    config.step = 15 * kMinute;
    config.spikes_per_day = 4.0;
    Rng rng(7);
    const TraceStore traces = TraceStore::GenerateSynthetic(
        InstanceTypeCatalog::Default(), {"us-east-1a", "us-east-1b"}, 4 * kDay, config, rng);
    if (!traces.WriteFile(emit)) {
      std::fprintf(stderr, "failed to write %s\n", emit.c_str());
      return 1;
    }
    std::printf("wrote mini trace (%zu markets) to %s\n", traces.Keys().size(), emit.c_str());
    return 0;
  }

  const std::string trace_csv = bench::TakeFlag(argc, argv, "trace_csv");
  const std::string policies_flag = bench::TakeFlag(argc, argv, "policies");
  const std::string types_flag = bench::TakeFlag(argc, argv, "types");
  const std::string out = bench::TakeFlag(argc, argv, "out");

  backtest::BacktestConfig config;
  config.windows = static_cast<int>(FlagOr(bench::TakeFlag(argc, argv, "windows"), 6));
  config.window_duration = FlagOr(bench::TakeFlag(argc, argv, "window_hours"), 2.0) * kHour;
  config.stride = FlagOr(bench::TakeFlag(argc, argv, "stride_hours"), 0.0) * kHour;
  config.start_jitter = FlagOr(bench::TakeFlag(argc, argv, "jitter_hours"), 0.0) * kHour;
  config.reference_count =
      static_cast<int>(FlagOr(bench::TakeFlag(argc, argv, "reference_count"), 64));
  config.threads = static_cast<int>(FlagOr(bench::TakeFlag(argc, argv, "threads"), 0));
  config.seed = static_cast<std::uint64_t>(FlagOr(bench::TakeFlag(argc, argv, "seed"), 2016));
  if (!types_flag.empty()) {
    config.reference_types = Split(types_flag, ',');
  }
  config.scheme = bench::PaperSchemeConfig();

  const bench::MarketEnv env =
      trace_csv.empty() ? bench::MakeMarketEnv() : bench::MakeMarketEnvFromCsv(trace_csv);
  config.eval_begin = env.eval_begin;
  config.eval_end = env.eval_end;

  backtest::BacktestEngine engine(&env.catalog, &env.traces, &env.estimator);
  engine.SetObservability(obs.tracer(), obs.metrics());

  std::vector<std::string> specs = Split(
      policies_flag.empty() ? "on_demand,fixed_delta:0.01,fixed_delta:0.10,bidbrain,oracle"
                            : policies_flag,
      ',');
  for (const std::string& spec : specs) {
    std::string error;
    if (!engine.RegisterPolicySpec(spec, config.scheme, &error)) {
      std::fprintf(stderr, "bad --policies entry: %s\n", error.c_str());
      return 2;
    }
  }

  std::printf("backtest: %zu policies x %zu types x %d windows over [%.1fh, %.1fh]\n",
              engine.policy_count(), config.reference_types.size(), config.windows,
              config.eval_begin / kHour, config.eval_end / kHour);

  const backtest::BacktestReport report = engine.Run(config);

  report.RankedTable().PrintAndMaybeExport("proteus_backtest");
  std::printf("%zu cells on %d threads in %.2fs wall\n", report.cells.size(),
              report.threads_used, report.wall_seconds);

  if (!out.empty()) {
    std::ofstream file(out);
    file << report.ToCsv();
    if (!file.good()) {
      std::fprintf(stderr, "failed to write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %zu cell rows to %s\n", report.cells.size(), out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace proteus

int main(int argc, char** argv) { return proteus::Main(argc, argv); }
