// Multi-tenant spot cluster (DESIGN.md §14): N jobs arbitrated over one
// shared market by a credit-based Karma allocator vs the static
// fair-share and greedy max-bid baselines.
//
// Scenario matrix: tenant count x adversarial fraction x allocator.
// Adversaries over-report demand (kAlwaysMax at 2x the scalability cap);
// the table shows how each mechanism trades utilization against short-
// and long-term fairness as adversaries multiply — and the twins
// sub-experiment pins the strategy-proofness headline: an adversary
// gains useful machine-hours over its truthful twin under greedy, and
// does not under Karma.
//
// Flags:
//   --threads=N       Demand fan-out threads (default 1). Output is
//                     byte-identical at any value — CI diffs the CSV of
//                     a 1-thread vs 4-thread run.
//   --out=PATH        Write the canonical scenario's per-round CSV.
//   --bench_json=PATH Emit the headline numbers as a CI artifact.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/support.h"
#include "src/cluster/fleet.h"
#include "src/common/logging.h"
#include "src/cluster/karma.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

using cluster::ClusterScheduler;
using cluster::DemandStrategy;
using cluster::FleetConfig;
using cluster::FleetResult;
using cluster::TenantSpec;

std::vector<TenantSpec> MakeTenants(int n, double adv_frac) {
  const int adversaries = static_cast<int>(n * adv_frac + 0.5);
  std::vector<TenantSpec> specs;
  for (int i = 0; i < n; ++i) {
    TenantSpec spec;
    const bool adv = i < adversaries;
    spec.name = (adv ? "adv" : "t") + std::to_string(i);
    // More work than the shared pool can serve in the horizon, so
    // scarcity (and the mechanism) is what differentiates outcomes.
    spec.slot_hours = 200.0 + 40.0 * (i % 4);
    spec.max_slots = 12;
    spec.active_fraction = 0.6;
    spec.demand_seed = 100 + static_cast<std::uint64_t>(i);
    if (adv) {
      spec.strategy = DemandStrategy::kAlwaysMax;
      spec.inflate_factor = 2.0;
    }
    specs.push_back(spec);
  }
  return specs;
}

FleetConfig MakeConfig(const MarketEnv& env, int n, int threads) {
  FleetConfig config;
  config.slot_market = {"us-east-1a", "c4.xlarge"};
  config.start = env.eval_begin;
  config.rounds = 48;
  config.fixed_capacity = 3 * n;  // Scarce: total cap demand is 12n.
  config.threads = threads;
  return config;
}

FleetResult RunScenario(const MarketEnv& env, const std::vector<TenantSpec>& specs,
                        const std::string& allocator_spec, const FleetConfig& config,
                        ObsSession& obs) {
  std::string error;
  const auto allocator = cluster::MakeAllocator(allocator_spec, &error);
  PROTEUS_CHECK(allocator != nullptr) << error;
  ClusterScheduler scheduler(&env.catalog, &env.traces, &env.estimator);
  scheduler.SetObservability(obs.tracer(), obs.metrics());
  scheduler.SetLedger(obs.ledger());
  return scheduler.Run(specs, *allocator, config);
}

// Adversary vs truthful twin (shared duty-cycle stream) against a
// backdrop of duty-cycled donors: the strategy-proofness experiment.
std::vector<TenantSpec> MakeTwinTenants() {
  std::vector<TenantSpec> specs;
  TenantSpec honest;
  honest.name = "honest";
  honest.slot_hours = 1000.0;  // Never finishes: useful hours measure access.
  honest.max_slots = 12;
  honest.active_fraction = 0.5;
  honest.demand_seed = 7;
  specs.push_back(honest);
  TenantSpec adv = honest;
  adv.name = "adversary";
  adv.strategy = DemandStrategy::kAlwaysMax;
  adv.inflate_factor = 2.0;  // Reports 24 slots every round.
  specs.push_back(adv);
  for (int i = 0; i < 4; ++i) {
    TenantSpec bg;
    bg.name = "bg" + std::to_string(i);
    bg.slot_hours = 700.0;
    bg.max_slots = 8;
    bg.active_fraction = 0.5;
    bg.demand_seed = 20 + static_cast<std::uint64_t>(i);
    specs.push_back(bg);
  }
  return specs;
}

// Useful machine-hours the adversary got beyond its truthful twin.
// Positive: inflating the report paid off. (A ratio degenerates when
// greedy starves the honest twin to zero hours.)
double AdversaryDelta(const FleetResult& result) {
  const cluster::TenantResult* adv = result.Find("adversary");
  const cluster::TenantResult* honest = result.Find("honest");
  PROTEUS_CHECK(adv != nullptr && honest != nullptr);
  return adv->useful_hours - honest->useful_hours;
}

int Main(int threads, const std::string& out_path, const std::string& json_path,
         ObsSession& obs) {
  std::printf("=== Multi-tenant cluster: Karma credits vs fair-share vs greedy ===\n");
  const MarketEnv env = MakeMarketEnv();
  const std::vector<std::string> allocators = {"karma", "fair", "greedy"};

  TextTable table({"tenants", "adv_frac", "allocator", "mean_util", "jain_long", "jain_short",
                   "useful_h", "cost_$", "preempt", "evict"});
  std::vector<BenchJsonRow> rows;
  for (const int n : {4, 8}) {
    for (const double adv_frac : {0.0, 0.25, 0.5}) {
      const std::vector<TenantSpec> specs = MakeTenants(n, adv_frac);
      const FleetConfig config = MakeConfig(env, n, threads);
      for (const std::string& alloc : allocators) {
        const FleetResult result = RunScenario(env, specs, alloc, config, obs);
        table.AddRow({std::to_string(n), TextTable::Cell(adv_frac, 2), result.allocator,
                      TextTable::Cell(result.mean_utilization, 3),
                      TextTable::Cell(result.jain_long_term, 3),
                      TextTable::Cell(result.jain_short_term, 3),
                      TextTable::Cell(result.total_useful_hours, 1),
                      TextTable::Cell(result.total_cost, 2),
                      std::to_string(result.preempted_slots), std::to_string(result.evictions)});
        const std::string tag = "n" + std::to_string(n) + "_adv" +
                                std::to_string(static_cast<int>(adv_frac * 100)) + "_" +
                                result.allocator;
        rows.push_back({tag + "_util", "mean_utilization", result.mean_utilization, "frac"});
        rows.push_back({tag + "_jain", "jain_long_term", result.jain_long_term, "index"});
        if (n == 8 && adv_frac == 0.25 && alloc == "karma" && !out_path.empty()) {
          FILE* f = std::fopen(out_path.c_str(), "w");
          PROTEUS_CHECK(f != nullptr) << "cannot open " << out_path;
          const std::string csv = result.ToCsv();
          std::fwrite(csv.data(), 1, csv.size(), f);
          std::fclose(f);
          std::printf("wrote %s (digest %016llx)\n", out_path.c_str(),
                      static_cast<unsigned long long>(result.Digest()));
        }
      }
    }
  }
  table.PrintAndMaybeExport("tab_multi_tenant");

  // Twins: does inflating your report pay?
  const std::vector<TenantSpec> twins = MakeTwinTenants();
  FleetConfig twin_config = MakeConfig(env, 6, threads);
  twin_config.rounds = 96;
  twin_config.fixed_capacity = 18;
  TextTable twin_table({"allocator", "adversary_useful_h", "honest_useful_h", "delta_h"});
  for (const std::string& alloc : allocators) {
    const FleetResult result = RunScenario(env, twins, alloc, twin_config, obs);
    const double delta = AdversaryDelta(result);
    twin_table.AddRow({result.allocator,
                       TextTable::Cell(result.Find("adversary")->useful_hours, 1),
                       TextTable::Cell(result.Find("honest")->useful_hours, 1),
                       TextTable::Cell(delta, 1)});
    rows.push_back({"twins_" + result.allocator + "_adversary_delta", "useful_hours_delta",
                    delta, "slot_h"});
  }
  twin_table.PrintAndMaybeExport("tab_multi_tenant_twins");
  std::printf(
      "(delta > 0: over-reporting wins useful machine-hours vs a truthful twin.\n"
      " Greedy rewards inflation; Karma makes every borrowed slot cost a credit,\n"
      " so inflated demand burns the adversary's balance on slots it cannot use)\n\n");

  if (!json_path.empty()) {
    return WriteBenchJson(json_path, "tab_multi_tenant", rows) ? 0 : 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  const std::string threads_flag = proteus::bench::TakeFlag(argc, argv, "threads");
  const std::string out_path = proteus::bench::TakeFlag(argc, argv, "out");
  const std::string json_path = proteus::bench::TakeFlag(argc, argv, "bench_json");
  const int threads = threads_flag.empty() ? 1 : std::atoi(threads_flag.c_str());
  proteus::bench::ObsSession obs_session(argc, argv);
  return proteus::bench::Main(threads < 0 ? 1 : threads, out_path, json_path, obs_session);
}
