// §2.2 extension: the same job on EC2-style spot markets (variable
// price, bidding, free-compute refunds, 2-minute warning) versus
// GCE-style preemptible instances (flat 70% discount, 30-second warning,
// 24-hour cap, per-minute billing, no refunds).
#include <cstdio>

#include "bench/support.h"
#include "src/backtest/backtest_engine.h"
#include "src/common/table.h"
#include "src/market/preemptible.h"

namespace proteus {
namespace bench {
namespace {

// GCE scheme: maintain a preemptible capacity target; on revocation,
// pause lambda and re-request. No bidding decisions to make.
struct GceOutcome {
  SimDuration runtime = 0.0;
  Money cost = 0.0;
  int revocations = 0;
};

GceOutcome RunGceJob(const InstanceTypeCatalog& catalog, const PreemptibleConfig& config,
                     std::uint64_t seed, int target_instances, const std::string& type,
                     WorkUnits total_work, const AppProfile& app) {
  PreemptibleMarket market(catalog, config, seed);
  const int vcpus = catalog.Get(type).vcpus;
  GceOutcome out;
  std::vector<AllocationId> live;
  WorkUnits done = 0.0;
  SimTime t = 0.0;
  SimTime paused_until = 0.0;
  const SimDuration step = kMinute;
  while (done < total_work && t < 10 * kDay) {
    // Handle revocations due now.
    for (auto it = live.begin(); it != live.end();) {
      if (market.Get(*it).revocation_time <= t) {
        market.MarkRevoked(*it);
        it = live.erase(it);
        ++out.revocations;
        paused_until = std::max(paused_until, t + app.lambda);
      } else {
        ++it;
      }
    }
    // Top up to the capacity target (always granted).
    int have = 0;
    for (const AllocationId id : live) {
      have += market.Get(id).count;
    }
    if (have < target_instances) {
      live.push_back(market.Request(type, target_instances - have, t));
      paused_until = std::max(paused_until, t + app.sigma);
    }
    if (t >= paused_until) {
      done += have * vcpus * app.phi * (step / kHour) / 8.0;  // Work in 8-vCPU-machine-hours.
    }
    t += step;
  }
  for (const AllocationId id : live) {
    if (market.Get(id).running()) {
      market.Terminate(id, t);
    }
  }
  out.runtime = t;
  out.cost = market.TotalBill(t);
  return out;
}

void Main() {
  std::printf("=== EC2 spot (Proteus) vs GCE preemptible: 2-hour job ===\n");
  const MarketEnv env = MakeMarketEnv();
  const SimDuration duration = 2 * kHour;
  const JobSpec job =
      JobSpec::ForReferenceDuration(env.catalog, "c4.2xlarge", 64, duration, 0.95);

  // EC2: on-demand baseline and Proteus, replayed over sampled trace
  // starts through the Policy Lab engine.
  backtest::BacktestEngine engine(&env.catalog, &env.traces, &env.estimator);
  if (ObsSession* obs = CurrentObsSession()) {
    engine.SetObservability(obs->tracer(), obs->metrics());
  }
  backtest::BacktestConfig config;
  config.explicit_starts = SampleStartTimes(env, 120, duration * 8, 94);
  config.window_duration = duration;
  config.reference_types = {"c4.2xlarge"};
  config.reference_count = 64;
  config.reference_phi = 0.95;
  config.scheme = PaperSchemeConfig();
  engine.RegisterPolicySpec("on_demand", config.scheme);
  engine.RegisterPolicySpec("bidbrain", config.scheme);
  const backtest::BacktestReport report = engine.Run(config);
  const backtest::BacktestPolicyAggregate& od = *report.Find("on_demand");
  const backtest::BacktestPolicyAggregate& pr = *report.Find("bidbrain");

  // GCE: 64 preemptible c4.2xlarge-equivalents, averaged over seeds.
  const AppProfile app = AgileMLProfile();
  PreemptibleConfig gce;
  gce.revocations_per_hour = 0.02;
  GceOutcome gce_sum{};
  constexpr int kSeeds = 120;
  for (int i = 0; i < kSeeds; ++i) {
    // total_work expressed in 8-vCPU machine-hours to match RunGceJob.
    const GceOutcome one = RunGceJob(env.catalog, gce, 1000 + i, 64, "c4.2xlarge",
                                     job.total_work / 8.0, app);
    gce_sum.cost += one.cost;
    gce_sum.runtime += one.runtime;
    gce_sum.revocations += one.revocations;
  }

  TextTable table({"platform / scheme", "avg cost ($)", "% of on-demand", "avg runtime (h)",
                   "avg revocations"});
  table.AddRow({"EC2 on-demand (64 machines)", TextTable::Cell(od.mean_cost, 2), "100%",
                TextTable::Cell(2.0, 2), "0"});
  table.AddRow({"EC2 spot + Proteus", TextTable::Cell(pr.mean_cost, 2),
                TextTable::Cell(100.0 * pr.mean_cost / od.mean_cost, 0) + "%",
                TextTable::Cell(pr.mean_runtime / kHour, 2),
                TextTable::Cell(pr.mean_evictions, 1)});
  table.AddRow({"GCE preemptible (flat -70%)", TextTable::Cell(gce_sum.cost / kSeeds, 2),
                TextTable::Cell(100.0 * (gce_sum.cost / kSeeds) / od.mean_cost, 0) + "%",
                TextTable::Cell(gce_sum.runtime / kSeeds / kHour, 2),
                TextTable::Cell(static_cast<double>(gce_sum.revocations) / kSeeds, 1)});
  table.PrintAndMaybeExport("tab_gce_comparison");
  std::printf(
      "(GCE's flat discount caps savings at 70%% and offers no free compute;\n"
      " EC2's market lets Proteus do better by exploiting price dips and refunds)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
