// Figure 13: AgileML stage 3 (no workers on the reliable machine) vs
// stage 2 (workers everywhere) at a 63:1 transient-to-reliable ratio,
// compared to the traditional all-reliable baseline. MF application.
//
// Paper shape: with workers on the lone reliable machine (stage 2) the
// BackupPS network load makes that worker a straggler; removing it
// (stage 3) matches traditional performance.
#include <cstdio>

#include "bench/support.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

double Run(const MfEnv& env, int reliable, int transient, Stage stage) {
  MatrixFactorizationApp app(&env.data, env.mf);
  AgileMLConfig config = ClusterAConfig(32);
  config.planner.forced_stage = stage;
  config.planner.forced_active_ps_count = 32;
  AgileMLRuntime runtime(&app, config, MakeCluster(reliable, transient));
  return MeasureTimePerIter(runtime, 2, 5);
}

void Main() {
  std::printf("=== Fig 13: stage 3 vs stage 2 at 63:1 (MF, 1 reliable + 63 transient) ===\n");
  const MfEnv env = MakeMfEnv();
  const double traditional = Run(env, 64, 0, Stage::kStage1);
  const double with_workers = Run(env, 1, 63, Stage::kStage2);
  const double without_workers = Run(env, 1, 63, Stage::kStage3);

  TextTable table({"config", "time/iter (s)", "vs traditional"});
  table.AddRow({"Workers on reliable (stage 2)", TextTable::Cell(with_workers, 3),
                TextTable::Cell(with_workers / traditional, 2) + "x"});
  table.AddRow({"No workers on reliable (stage 3)", TextTable::Cell(without_workers, 3),
                TextTable::Cell(without_workers / traditional, 2) + "x"});
  table.AddRow({"Traditional (all reliable)", TextTable::Cell(traditional, 3), "1.00x"});
  table.PrintAndMaybeExport("fig13_stage3");
  std::printf("(paper: stage 3 matches traditional at 63:1; stage 2 loses ~2x)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
