// Figure 14: stage 2 vs stage 3 on the same 8 reliable + 8 transient
// footprint (1:1 ratio). MF application, per-iteration time series.
//
// Paper shape: at low ratios stage 2 is clearly better — stage 3 throws
// away half the workers. (Complementary to Fig. 13: all three stages are
// needed.)
#include <cstdio>

#include "bench/support.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

std::vector<double> Series(const MfEnv& env, Stage stage, int iters) {
  MatrixFactorizationApp app(&env.data, env.mf);
  AgileMLConfig config = ClusterAConfig(32);
  config.planner.forced_stage = stage;
  AgileMLRuntime runtime(&app, config, MakeCluster(8, 8));
  if (ObsSession* session = CurrentObsSession()) {
    session->Attach(runtime);
  }
  std::vector<double> out;
  for (int i = 0; i < iters; ++i) {
    out.push_back(runtime.RunClock().duration);
  }
  return out;
}

void Main() {
  std::printf("=== Fig 14: stage 2 vs stage 3 at 1:1 (MF, 8 reliable + 8 transient) ===\n");
  const MfEnv env = MakeMfEnv();
  constexpr int kIters = 20;
  const std::vector<double> s2 = Series(env, Stage::kStage2, kIters);
  const std::vector<double> s3 = Series(env, Stage::kStage3, kIters);

  TextTable table({"iteration", "stage 2 (s)", "stage 3 (s)"});
  for (int i = 0; i < kIters; i += 2) {
    table.AddRow({std::to_string(i + 1), TextTable::Cell(s2[static_cast<std::size_t>(i)], 3),
                  TextTable::Cell(s3[static_cast<std::size_t>(i)], 3)});
  }
  table.PrintAndMaybeExport("fig14_stage_compare");
  double mean2 = 0.0;
  double mean3 = 0.0;
  for (int i = 2; i < kIters; ++i) {
    mean2 += s2[static_cast<std::size_t>(i)];
    mean3 += s3[static_cast<std::size_t>(i)];
  }
  mean2 /= kIters - 2;
  mean3 /= kIters - 2;
  std::printf("steady-state mean: stage2 %.3fs, stage3 %.3fs (stage2/stage3 = %.2fx)\n",
              mean2, mean3, mean2 / mean3);
  std::printf("(paper: stage 2 is better at low transient-to-reliable ratios)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
