// Three-tier sweep (ISSUE 10): cost and damage across the
// serverless-fraction x storm-rate x checkpoint-cadence grid.
//
// Each cell runs real MF training under live market management with a
// third ultra-transient serverless worker tier enrolled. Serverless
// slots are far cheaper than spot but give ZERO eviction warning and
// suffer correlated revocation storms; the sweep shows where the cheap
// tier pays for itself and where storm damage (silent losses, rolled
// back clocks) eats the savings — and how the active->backup sync
// cadence bounds that damage.
//
// Flags:
//   --bench_json=PATH Emit the headline numbers as a CI artifact.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/support.h"
#include "src/common/table.h"
#include "src/proteus/proteus_runtime.h"

namespace proteus {
namespace bench {
namespace {

struct Cell {
  int serverless_target = 0;  // Worker slots kept enrolled (0 = off).
  double storms_per_day = 0.0;
  int sync_every = 1;  // Active->backup checkpoint cadence, clocks.
};

struct CellResult {
  Cell cell;
  ProteusRunSummary summary;
};

std::string CellName(const Cell& cell) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "sls%d_storm%.0f_sync%d",
                cell.serverless_target, cell.storms_per_day, cell.sync_every);
  return buf;
}

int Main(const std::string& json_path) {
  std::printf("=== Tier sweep: serverless fraction x storm rate x sync cadence ===\n");
  const MarketEnv env = MakeMarketEnv();

  RatingsConfig rc;
  rc.users = 2000;
  rc.items = 400;
  rc.ratings = 60000;
  const RatingsDataset data = GenerateRatings(rc);
  MfConfig mc;
  mc.rank = 16;
  constexpr int kClocks = 24;

  // serverless_target 0 is the two-tier baseline: the storm rate is
  // moot there, so the grid only varies it where the tier is live.
  std::vector<Cell> cells;
  for (const int sync_every : {1, 4}) {
    cells.push_back({0, 12.0, sync_every});
  }
  for (const int target : {8, 16}) {
    for (const double storms : {12.0, 96.0}) {
      for (const int sync_every : {1, 4}) {
        cells.push_back({target, storms, sync_every});
      }
    }
  }

  std::vector<CellResult> results;
  for (const Cell& cell : cells) {
    MatrixFactorizationApp app(&data, mc);
    ProteusConfig config;
    config.agileml.num_partitions = 32;
    config.agileml.core_speed = 1.5e3;  // Minutes-long clocks.
    config.agileml.backup_sync_every = cell.sync_every;
    // Zero-warning losses are only observable through the detector.
    config.agileml.detector.enabled = true;
    config.agileml.detector.suspect_after = 1;
    config.agileml.detector.confirm_after = 3;
    config.bidbrain.max_spot_instances = 48;
    config.bidbrain.allocation_quantum = 16;
    config.on_demand_count = 3;
    config.serverless_target = cell.serverless_target;
    config.serverless_nodes_per_allocation = 4;
    config.serverless.storms_per_day = cell.storms_per_day;
    // The tier's capacity/storm timeline must span the market clock,
    // which starts deep into the eval window; a tight burst cap makes
    // even storm-free cells churn through zero-warning reclaims.
    config.serverless.horizon = env.eval_begin + 2 * kDay;
    config.serverless.max_burst = 12 * kMinute;
    ProteusRuntime runtime(&app, &env.catalog, &env.traces, &env.estimator,
                           config, env.eval_begin + kDay);
    if (ObsSession* session = CurrentObsSession()) {
      session->Attach(runtime);
    }
    results.push_back({cell, runtime.Train(kClocks)});
  }

  TextTable table({"cell", "runtime", "cost", "sls cost", "sls losses",
                   "silent", "lost clocks", "RMSE"});
  for (const CellResult& r : results) {
    table.AddRow({CellName(r.cell), FormatDuration(r.summary.runtime),
                  FormatMoney(r.summary.bill.cost),
                  FormatMoney(r.summary.tier_serverless.cost),
                  std::to_string(r.summary.tier_serverless.silent_losses),
                  std::to_string(r.summary.silent_failures),
                  std::to_string(r.summary.lost_clocks),
                  TextTable::Cell(r.summary.final_objective, 4)});
  }
  table.PrintAndMaybeExport("tab_tier_sweep");
  std::printf("(every serverless loss above is silent by construction — the tier\n"
              " has no warning window; a tighter sync cadence caps the clocks a\n"
              " storm can roll back)\n\n");

  if (!json_path.empty()) {
    std::vector<BenchJsonRow> rows;
    for (const CellResult& r : results) {
      const std::string name = CellName(r.cell);
      rows.push_back({name, "cost", r.summary.bill.cost, "usd"});
      rows.push_back({name, "serverless_cost", r.summary.tier_serverless.cost, "usd"});
      rows.push_back({name, "serverless_silent_losses",
                      static_cast<double>(r.summary.tier_serverless.silent_losses),
                      "count"});
      rows.push_back({name, "lost_clocks",
                      static_cast<double>(r.summary.lost_clocks), "count"});
      rows.push_back({name, "runtime", r.summary.runtime, "seconds"});
    }
    if (!WriteBenchJson(json_path, "tab_tier_sweep", rows)) {
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  const std::string json_path = proteus::bench::TakeFlag(argc, argv, "bench_json");
  proteus::bench::ObsSession obs_session(argc, argv);
  return proteus::bench::Main(json_path);
}
