// Straggler ablation: the root cause behind stage 3 (§3.2: "Workers
// colocated with BackupPSs ... were found to cause straggler effects").
// A BSP clock runs at the pace of the slowest worker, so one degraded
// node drags the whole cluster; removing its worker (what stage 3 does
// to reliable machines) restores full speed at a small compute loss.
#include <cstdio>

#include "bench/support.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

double Run(const MfEnv& env, double slow_node_speed, bool drop_slow_worker) {
  MatrixFactorizationApp app(&env.data, env.mf);
  AgileMLConfig config = ClusterAConfig(32);
  // 1 reliable + 31 transient; the reliable node may be slowed.
  std::vector<NodeInfo> nodes;
  nodes.push_back({0, Tier::kReliable, 8, kInvalidAllocation, slow_node_speed});
  for (NodeId id = 1; id < 32; ++id) {
    nodes.push_back({id, Tier::kTransient, 8, kInvalidAllocation, 1.0});
  }
  config.planner.forced_stage = drop_slow_worker ? Stage::kStage3 : Stage::kStage2;
  AgileMLRuntime runtime(&app, config, nodes);
  return MeasureTimePerIter(runtime, 2, 4);
}

void Main() {
  std::printf("=== Straggler ablation: one slow node in a 32-node cluster (MF) ===\n");
  const MfEnv env = MakeMfEnv();
  const double healthy = Run(env, 1.0, false);
  TextTable table({"slow-node speed", "with its worker (stage 2)",
                   "worker removed (stage 3)", "stage2 penalty"});
  for (const double speed : {1.0, 0.67, 0.5, 0.33, 0.25}) {
    const double with_worker = Run(env, speed, false);
    const double without = Run(env, speed, true);
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", 100.0 * speed);
    table.AddRow({label, TextTable::Cell(with_worker, 3) + "s",
                  TextTable::Cell(without, 3) + "s",
                  TextTable::Cell(with_worker / healthy, 2) + "x"});
  }
  table.PrintAndMaybeExport("tab_straggler");
  std::printf(
      "(a BSP clock runs at the slowest worker's pace; dropping the straggler's\n"
      " worker caps the damage at the lost compute share — stage 3's rationale)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
