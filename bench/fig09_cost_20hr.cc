// Figure 9: 20-hour jobs — same comparison as Fig. 8 for long-running
// ML work (hyperparameter-exploration-style job sequences).
#include <cstdio>

#include "bench/support.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

void Main() {
  std::printf("=== Fig 9: 20-hour jobs, cost and runtime vs on-demand (64 x c4.2xlarge) ===\n");
  const MarketEnv env = MakeMarketEnv();
  const JobSimulator sim(&env.catalog, &env.traces, &env.estimator);
  const SchemeConfig config = PaperSchemeConfig();
  const SimDuration duration = 20 * kHour;
  const JobSpec job =
      JobSpec::ForReferenceDuration(env.catalog, "c4.2xlarge", 64, duration, 0.95);
  const std::vector<SimTime> starts = SampleStartTimes(env, 120, duration * 4, /*seed=*/98);

  const SchemeKind schemes[] = {SchemeKind::kOnDemandOnly, SchemeKind::kStandardCheckpoint,
                                SchemeKind::kStandardAgileML, SchemeKind::kProteus};
  SampleStats cost[4];
  SampleStats runtime[4];
  SampleStats evictions[4];
  for (const SimTime start : starts) {
    for (int s = 0; s < 4; ++s) {
      const JobResult result = sim.Run(schemes[s], job, config, start);
      if (result.completed) {
        cost[s].Add(result.bill.cost);
        runtime[s].Add(result.runtime);
        evictions[s].Add(result.evictions);
      }
    }
  }

  const double od_cost = cost[0].Mean();
  TextTable table(
      {"scheme", "cost (% of on-demand)", "avg cost ($)", "avg runtime (h)", "avg evictions"});
  for (int s = 0; s < 4; ++s) {
    table.AddRow({SchemeName(schemes[s]),
                  TextTable::Cell(100.0 * cost[s].Mean() / od_cost, 1) + "%",
                  TextTable::Cell(cost[s].Mean(), 2),
                  TextTable::Cell(runtime[s].Mean() / kHour, 2),
                  TextTable::Cell(evictions[s].Mean(), 1)});
  }
  table.PrintAndMaybeExport("fig09_cost_20hr");
  std::printf(
      "(paper: same ordering as Fig 8 at 20h — Proteus ~15%% of on-demand,\n"
      " ~42-47%% cheaper and 32-43%% faster than Standard+Checkpoint)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
