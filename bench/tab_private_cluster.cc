// §7 extension: BidBrain retargeted to a private best-effort cluster.
//
// No auction: every slot costs the same flat chargeback rate, and
// revocations happen when business-critical load reclaims capacity. The
// cost-per-work framework still applies — expected work varies with the
// expected time to revocation (Eq. 2), which the CapacityEvictionModel
// estimates from observed capacity dynamics. This bench compares
// allocation-sizing policies: grabbing bigger best-effort chunks runs
// faster but gets revoked by load bursts more often.
#include <cstdio>

#include "bench/support.h"
#include "src/bidbrain/cost_model.h"
#include "src/common/table.h"
#include "src/market/capacity_trace.h"

namespace proteus {
namespace bench {
namespace {

struct Outcome {
  SimDuration runtime = 0.0;
  Money cost = 0.0;
  int revocations = 0;
  double avg_slots = 0.0;
  double predicted_beta = 0.0;
};

// Simulates one job on the best-effort tier: claim slots in chunks of
// `quantum`, lose LIFO chunks when capacity drops, pause lambda per
// revocation.
// The reliable tier (guaranteed-priority slots hosting BackupPSs) costs
// chargeback but produces no work, exactly like the on-demand tier in
// Fig. 6 — it is what growing the best-effort footprint amortizes.
constexpr int kReliableSlots = 24;

Outcome RunJob(const CapacityTrace& trace, const CapacityEvictionModel& model, int quantum,
               int max_slots, WorkUnits total_work, Money rate_per_slot_hour, SimTime start,
               const AppProfile& app) {
  Outcome out;
  out.predicted_beta = model.Estimate({"", ""}, 0.0).beta;
  std::vector<int> chunks;  // Claimed chunk sizes, LIFO on revocation.
  WorkUnits done = 0.0;
  SimTime t = start;
  SimTime paused_until = start;
  const SimDuration step = kMinute;
  double slot_seconds = 0.0;
  SimTime next_decision = start;

  while (done < total_work && t < start + 10 * kDay) {
    int claimed = 0;
    for (const int c : chunks) {
      claimed += c;
    }
    const int available = trace.SlotsAt(t);
    // The cluster reclaims capacity: drop most-recent chunks first.
    while (claimed > available && !chunks.empty()) {
      claimed -= chunks.back();
      chunks.pop_back();
      ++out.revocations;
      paused_until = std::max(paused_until, t + app.lambda);
    }
    // Growth decision every two minutes, if cost-per-work improves.
    if (t >= next_decision) {
      next_decision = t + 2 * kMinute;
      if (claimed + quantum <= std::min(available, max_slots)) {
        std::vector<AllocationPlan> current;
        AllocationPlan reliable;
        reliable.count = kReliableSlots;
        reliable.hourly_price = rate_per_slot_hour;
        reliable.beta = 0.0;
        reliable.work_per_hour = 0.0;  // Serving tier: W = 0 (Fig. 6).
        reliable.on_demand = true;
        current.push_back(reliable);
        if (claimed > 0) {
          AllocationPlan held;
          held.count = claimed;
          held.hourly_price = rate_per_slot_hour;
          held.beta = out.predicted_beta;
          held.work_per_hour = 1.0;
          current.push_back(held);
        }
        AllocationPlan cand;
        cand.count = quantum;
        cand.hourly_price = rate_per_slot_hour;
        cand.beta = out.predicted_beta;
        cand.work_per_hour = 1.0;
        std::vector<AllocationPlan> with = current;
        with.push_back(cand);
        const double cpw_with = CostModel::ExpectedCostPerWork(with, app, true);
        const double cpw_cur = CostModel::ExpectedCostPerWork(current, app, false);
        if (cpw_with < cpw_cur) {
          chunks.push_back(quantum);
          claimed += quantum;
          paused_until = std::max(paused_until, t + app.sigma);
        }
      }
    }
    // Accrue work and cost for this step.
    if (t >= paused_until) {
      done += claimed * app.phi * (step / kHour);
    }
    slot_seconds += claimed * step;
    out.cost += (claimed + kReliableSlots) * rate_per_slot_hour * (step / kHour);
    t += step;
  }
  out.runtime = t - start;
  out.avg_slots = slot_seconds / std::max(out.runtime, 1.0);
  return out;
}

void Main() {
  std::printf("=== Private best-effort cluster: allocation sizing under capacity churn ===\n");
  CapacityTraceConfig config;
  config.total_slots = 256;
  config.bursts_per_day = 6.0;
  Rng rng(77);
  const CapacityTrace trace = GenerateCapacityTrace(config, 60 * kDay, rng);

  const Money rate = 0.01;  // Flat $ per slot-hour chargeback.
  const WorkUnits total_work = 512.0;  // Slot-hours of work.
  const AppProfile app = AgileMLProfile();

  TextTable table({"chunk size", "predicted beta", "avg slots held", "runtime", "cost ($)",
                   "revocations"});
  for (const int quantum : {16, 48, 128}) {
    CapacityEvictionModel model;
    model.Train(trace, 0.0, 30 * kDay, quantum);  // Observe, then run later.
    Outcome sum{};
    constexpr int kStarts = 8;
    for (int i = 0; i < kStarts; ++i) {
      const Outcome one = RunJob(trace, model, quantum, 192, total_work, rate,
                                 (31 + 3 * i) * kDay, app);
      sum.runtime += one.runtime;
      sum.cost += one.cost;
      sum.revocations += one.revocations;
      sum.avg_slots += one.avg_slots;
      sum.predicted_beta = one.predicted_beta;
    }
    table.AddRow({std::to_string(quantum), TextTable::Cell(sum.predicted_beta, 2),
                  TextTable::Cell(sum.avg_slots / kStarts, 0),
                  FormatDuration(sum.runtime / kStarts),
                  TextTable::Cell(sum.cost / kStarts, 2),
                  TextTable::Cell(static_cast<double>(sum.revocations) / kStarts, 1)});
  }
  table.PrintAndMaybeExport("tab_private_cluster");
  std::printf(
      "(§7: with a constant price, expected work — driven by time-to-revocation\n"
      " observed from capacity dynamics — still differentiates allocation choices)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
