// Figure 11: AgileML stage 1 with 4-32 reliable machines (ParamServs)
// out of 64 total, compared to the traditional architecture where all 64
// machines are reliable and run ParamServs. MF application.
//
// Paper shape: negligible slowdown at 1:1 (32 ParamServs), severe
// slowdown at 15:1 (4 ParamServs) due to the network bottleneck into the
// few reliable machines.
#include <cstdio>

#include "bench/support.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

void Main() {
  std::printf("=== Fig 11: stage 1, time per iteration vs #ParamServs (MF, 64 nodes) ===\n");
  const MfEnv env = MakeMfEnv();
  TextTable table({"config", "reliable:transient", "time/iter (s)", "vs traditional"});

  double traditional = 0.0;
  struct Row {
    const char* label;
    int reliable;
  };
  const Row rows[] = {
      {"Traditional (all reliable)", 64},
      {"32 ParamServs", 32},
      {"16 ParamServs", 16},
      {"4 ParamServs", 4},
  };
  for (const Row& row : rows) {
    MatrixFactorizationApp app(&env.data, env.mf);
    AgileMLConfig config = ClusterAConfig(32);
    config.planner.forced_stage = Stage::kStage1;
    AgileMLRuntime runtime(&app, config, MakeCluster(row.reliable, 64 - row.reliable));
    const double t = MeasureTimePerIter(runtime, 2, 5);
    if (row.reliable == 64) {
      traditional = t;
    }
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%d:%d", row.reliable, 64 - row.reliable);
    table.AddRow({row.label, ratio, TextTable::Cell(t, 3),
                  TextTable::Cell(t / traditional, 2) + "x"});
  }
  table.PrintAndMaybeExport("fig11_stage1");
  std::printf("(paper: 32 ParamServs ~= traditional; 4 ParamServs slowed >85%%)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
