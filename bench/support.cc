#include "bench/support.h"

#include <cstdio>
#include <cstring>

#include "src/common/logging.h"

namespace proteus {
namespace bench {

std::string TakeFlag(int& argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  std::string value;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      value = argv[i] + prefix.size();
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return value;
}

bool TakeSwitch(int& argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  bool present = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      present = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return present;
}

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

ObsSession* g_session = nullptr;

}  // namespace

ObsSession* CurrentObsSession() { return g_session; }

ObsSession::ObsSession(int& argc, char** argv)
    : trace_path_(TakeFlag(argc, argv, "trace_out")),
      metrics_path_(TakeFlag(argc, argv, "metrics_out")),
      ledger_path_(TakeFlag(argc, argv, "ledger_out")),
      recorder_(&ledger_) {
  const std::string flight_path = TakeFlag(argc, argv, "flight_out");
  if (!flight_path.empty()) {
    recorder_.SetDumpPath(flight_path);
  }
  recorder_.InstallFatalHook();
  g_session = this;
}

ObsSession::~ObsSession() {
  Flush();
  g_session = nullptr;
}

void ObsSession::DumpFlightRecorder(const std::string& reason) {
  recorder_.Dump(reason);
}

void ObsSession::Flush() {
  if (flushed_) {
    return;
  }
  flushed_ = true;
  if (!trace_path_.empty()) {
    if (tracer_.WriteJson(trace_path_)) {
      std::fprintf(stderr, "trace: wrote %zu events to %s\n", tracer_.size(),
                   trace_path_.c_str());
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n", trace_path_.c_str());
    }
  }
  if (!metrics_path_.empty()) {
    const obs::MetricsSnapshot snapshot = metrics_.Snapshot();
    const bool ok = EndsWith(metrics_path_, ".csv")    ? snapshot.WriteCsv(metrics_path_)
                    : EndsWith(metrics_path_, ".json") ? snapshot.WriteJson(metrics_path_)
                                                       : snapshot.WriteText(metrics_path_);
    if (ok) {
      std::fprintf(stderr, "metrics: wrote %zu series to %s\n", snapshot.points.size(),
                   metrics_path_.c_str());
    } else {
      std::fprintf(stderr, "metrics: failed to write %s\n", metrics_path_.c_str());
    }
  }
  if (!ledger_path_.empty()) {
    if (ledger_.WriteJsonl(ledger_path_)) {
      std::fprintf(stderr, "ledger: wrote %zu events to %s\n", ledger_.size(),
                   ledger_path_.c_str());
    } else {
      std::fprintf(stderr, "ledger: failed to write %s\n", ledger_path_.c_str());
    }
  }
}

MfEnv MakeMfEnv() {
  MfEnv env;
  RatingsConfig rc;
  rc.users = 30000;
  rc.items = 2000;
  rc.ratings = 200000;
  rc.item_zipf = 1.01;  // Near-uniform item popularity: wide read sets.
  rc.sort_by_user = true;
  rc.seed = 1001;
  env.data = GenerateRatings(rc);
  env.mf.rank = 512;  // Standing in for the paper's rank-1000 Netflix run.
  env.mf.learning_rate = 0.01;
  env.mf.regularization = 0.02;
  env.mf.objective_sample = 20000;
  return env;
}

LdaEnv MakeLdaEnv() {
  LdaEnv env;
  CorpusConfig cc;
  cc.docs = 6000;
  cc.vocab = 8000;
  cc.true_topics = 20;
  cc.avg_doc_len = 120;
  cc.seed = 1002;
  env.data = GenerateCorpus(cc);
  env.lda.topics = 64;
  return env;
}

AgileMLConfig ClusterAConfig(int num_partitions) {
  AgileMLConfig config;
  config.num_partitions = num_partitions;
  config.staleness = 1;
  // Calibrated virtual core speed (cost units per core-second); see the
  // header comment and bench/tab_model_validation.cc.
  config.core_speed = 1.2e7;
  config.nic_bandwidth = 1.25e8;  // 1 Gbps, as measured in §6.1.
  config.storage_bandwidth = 6.25e7;
  config.barrier_overhead = 0.05;
  config.backup_sync_every = 1;
  config.data_blocks = 1024;
  config.bytes_per_item = 64.0;
  config.seed = 7;
  config.parallel_execution = true;
  return config;
}

std::vector<NodeInfo> MakeCluster(int reliable, int transient) {
  std::vector<NodeInfo> nodes;
  NodeId id = 0;
  for (int i = 0; i < reliable; ++i) {
    nodes.push_back({id++, Tier::kReliable, 8, kInvalidAllocation});
  }
  for (int i = 0; i < transient; ++i) {
    nodes.push_back({id++, Tier::kTransient, 8, kInvalidAllocation});
  }
  return nodes;
}

double MeasureTimePerIter(AgileMLRuntime& runtime, int warmup, int iters) {
  if (ObsSession* session = CurrentObsSession()) {
    session->Attach(runtime);
  }
  runtime.RunClocks(warmup);
  double total = 0.0;
  for (int i = 0; i < iters; ++i) {
    total += runtime.RunClock().duration;
  }
  return total / iters;
}

MarketEnv MakeMarketEnv(std::uint64_t seed) {
  MarketEnv env;
  env.catalog = InstanceTypeCatalog::Default();
  SyntheticTraceConfig config;
  config.spikes_per_day = 3.0;
  Rng rng(seed);
  env.traces = TraceStore::GenerateSynthetic(
      env.catalog, {"us-east-1a", "us-east-1b", "us-east-1c", "us-east-1d"}, 90 * kDay, config,
      rng);
  env.estimator.Train(env.traces, 0.0, 45 * kDay);
  env.eval_begin = 45 * kDay;
  env.eval_end = 90 * kDay;
  return env;
}

MarketEnv MakeMarketEnvFromCsv(const std::string& path) {
  MarketEnv env;
  env.catalog = InstanceTypeCatalog::Default();
  env.traces = TraceStore::ReadFile(path);
  PROTEUS_CHECK(!env.traces.empty()) << "no traces in " << path;
  SimTime begin = 0.0;
  SimTime end = 0.0;
  bool first = true;
  for (const MarketKey& key : env.traces.Keys()) {
    const PriceSeries& series = env.traces.Get(key);
    if (first || series.start_time() < begin) {
      begin = series.start_time();
    }
    if (first || series.end_time() > end) {
      end = series.end_time();
    }
    first = false;
  }
  PROTEUS_CHECK_GT(end, begin) << "degenerate trace horizon in " << path;
  const SimTime mid = begin + (end - begin) / 2;
  env.estimator.Train(env.traces, begin, mid);
  env.eval_begin = mid;
  env.eval_end = end;
  return env;
}

SchemeConfig PaperSchemeConfig() {
  SchemeConfig config;
  config.on_demand_count = 3;
  config.on_demand_type = "c4.xlarge";
  config.standard_target_vcpus = 64 * 8;  // Cluster-A capacity.
  config.bidbrain.max_spot_instances = 189;
  config.bidbrain.allocation_quantum = 16;
  return config;
}

bool WriteBenchJson(const std::string& path, const std::string& schema,
                    const std::vector<BenchJsonRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"schema\": \"proteus.%s.v1\",\n  \"benchmarks\": [\n", schema.c_str());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"metric\": \"%s\", \"value\": %.4f, "
                 "\"unit\": \"%s\"}%s\n",
                 rows[i].name.c_str(), rows[i].metric.c_str(), rows[i].value,
                 rows[i].unit.c_str(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  for (const BenchJsonRow& row : rows) {
    std::printf("%-34s %14.4f %s\n", row.name.c_str(), row.value, row.unit.c_str());
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

std::vector<SimTime> SampleStartTimes(const MarketEnv& env, int count, SimDuration job_slack,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SimTime> starts;
  starts.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    starts.push_back(rng.Uniform(env.eval_begin, env.eval_end - job_slack));
  }
  return starts;
}

}  // namespace bench
}  // namespace proteus
