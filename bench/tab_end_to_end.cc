// End-to-end validation: real training (actual MF arithmetic through the
// tiered parameter server) under live BidBrain management of a simulated
// spot market, versus the same training on a fixed all-on-demand
// cluster. This cross-checks the abstract cost simulations of Figs. 1
// and 8-9 with a run where the application is not abstracted away.
#include <cstdio>

#include "bench/support.h"
#include "src/common/table.h"
#include "src/proteus/proteus_runtime.h"

namespace proteus {
namespace bench {
namespace {

struct Outcome {
  SimDuration runtime;
  Money cost;
  double rmse;
  int evictions;
};

void Main() {
  std::printf("=== End-to-end: real MF training, Proteus vs all-on-demand ===\n");
  const MarketEnv env = MakeMarketEnv();

  RatingsConfig rc;
  rc.users = 4000;
  rc.items = 800;
  rc.ratings = 150000;
  const RatingsDataset data = GenerateRatings(rc);
  MfConfig mc;
  mc.rank = 32;
  constexpr int kClocks = 40;

  // Proteus: 3 on-demand + BidBrain-managed spot.
  Outcome proteus{};
  {
    MatrixFactorizationApp app(&data, mc);
    ProteusConfig config;
    config.agileml.num_partitions = 32;
    config.agileml.core_speed = 1.5e3;  // Minutes-long clocks.
    config.bidbrain.max_spot_instances = 64;
    config.bidbrain.allocation_quantum = 16;
    config.on_demand_count = 3;
    ProteusRuntime runtime(&app, &env.catalog, &env.traces, &env.estimator, config,
                           env.eval_begin + kDay);
    if (ObsSession* session = CurrentObsSession()) {
      session->Attach(runtime);
    }
    const ProteusRunSummary summary = runtime.Train(kClocks);
    proteus = {summary.runtime, summary.bill.cost, summary.final_objective,
               summary.evictions + summary.failures};
  }

  // Baseline: the same training on 32 on-demand c4.xlarge, no elasticity.
  Outcome od{};
  {
    MatrixFactorizationApp app(&data, mc);
    AgileMLConfig config;
    config.num_partitions = 32;
    config.core_speed = 1.5e3;
    std::vector<NodeInfo> nodes;
    for (NodeId id = 0; id < 32; ++id) {
      nodes.push_back({id, Tier::kReliable, 4, kInvalidAllocation});
    }
    AgileMLRuntime runtime(&app, config, nodes);
    if (ObsSession* session = CurrentObsSession()) {
      session->Attach(runtime);
    }
    const SimDuration time = runtime.RunClocks(kClocks);
    const Money price = env.catalog.Get("c4.xlarge").on_demand_price;
    od = {time, 32 * price * (time / kHour), runtime.ComputeObjective(), 0};
  }

  TextTable table({"configuration", "runtime", "cost", "final RMSE", "evictions"});
  table.AddRow({"All on-demand (32 x c4.xlarge)", FormatDuration(od.runtime),
                FormatMoney(od.cost), TextTable::Cell(od.rmse, 4), "0"});
  table.AddRow({"Proteus (3 on-demand + spot)", FormatDuration(proteus.runtime),
                FormatMoney(proteus.cost), TextTable::Cell(proteus.rmse, 4),
                std::to_string(proteus.evictions)});
  table.PrintAndMaybeExport("tab_end_to_end");
  std::printf("cost ratio: %.0f%% of on-demand for the same %d training clocks\n",
              100.0 * proteus.cost / od.cost, kClocks);
  std::printf("(cross-checks the trace-driven simulations with real training: Proteus\n"
              " should reach a comparable objective at a fraction of the cost)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
