// Figure 3: spot prices over time for two machine classes in one zone,
// against the (unchanging) on-demand price. The c4.xlarge series is
// doubled so all lines are priced per equal core count, as in the paper.
#include <cstdio>

#include "bench/support.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

void Main() {
  std::printf("=== Fig 3: spot prices over 6 days (zone us-east-1a) ===\n");
  const MarketEnv env = MakeMarketEnv();
  const PriceSeries& xlarge = env.traces.Get({"us-east-1a", "c4.xlarge"});
  const PriceSeries& x2large = env.traces.Get({"us-east-1a", "c4.2xlarge"});
  const Money od = env.catalog.Get("c4.2xlarge").on_demand_price;

  TextTable table({"day", "2 x c4.xlarge ($/h)", "c4.2xlarge ($/h)", "on-demand ($/h)"});
  const SimTime begin = env.eval_begin;
  for (int sample = 0; sample <= 24; ++sample) {
    const SimTime t = begin + sample * (6 * kDay / 24.0);
    char day[16];
    std::snprintf(day, sizeof(day), "%.2f", (t - begin) / kDay);
    table.AddRow({day, TextTable::Cell(2 * xlarge.PriceAt(t), 3),
                  TextTable::Cell(x2large.PriceAt(t), 3), TextTable::Cell(od, 3)});
  }
  table.PrintAndMaybeExport("fig03_spot_prices");

  const SimTime end = begin + 6 * kDay;
  std::printf("6-day window stats (c4.2xlarge): avg $%.3f, max $%.3f, on-demand $%.3f\n",
              x2large.AveragePrice(begin, end), x2large.MaxPrice(begin, end), od);
  std::printf("average discount vs on-demand: %.0f%% (paper cites 70-80%%)\n",
              100.0 * (1.0 - x2large.AveragePrice(begin, end) / od));
  std::printf("(paper shape: long quiet periods far below on-demand, sharp spikes above it)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
