// §5 / §6.3: sequences of ML jobs (e.g. hyperparameter exploration)
// share one Proteus footprint. Later jobs inherit warm capacity and the
// leftover minutes of billing hours the previous job already paid for —
// the basis of the paper's per-job accounting — and at queue drain, spot
// allocations are held to the end of their billing hours hoping AWS
// evicts them first (free final hour).
#include <cstdio>

#include "bench/support.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/proteus/job_queue.h"

namespace proteus {
namespace bench {
namespace {

int Main(const std::string& json_path) {
  std::printf("=== Job queue: shared footprint across a sequence of 2-hour jobs ===\n");
  const MarketEnv env = MakeMarketEnv();
  const JobQueueSimulator queue_sim(&env.catalog, &env.traces, &env.estimator);
  const JobSimulator single_sim(&env.catalog, &env.traces, &env.estimator);
  const SchemeConfig config = PaperSchemeConfig();
  const JobSpec job =
      JobSpec::ForReferenceDuration(env.catalog, "c4.2xlarge", 64, 2 * kHour, 0.95);

  constexpr int kJobs = 4;
  std::vector<QueuedJob> jobs;
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back({"job" + std::to_string(i), job});
  }

  SampleStats queued_per_job;
  SampleStats standalone_per_job;
  SampleStats first_runtime;
  SampleStats later_runtime;
  SampleStats refunds;
  // JSON mode is the CI artifact: fewer samples, stable headline numbers.
  const int samples = json_path.empty() ? 60 : 12;
  for (const SimTime start : SampleStartTimes(env, samples, kJobs * 6 * kHour, 93)) {
    const JobQueueResult q = queue_sim.Run(jobs, config, start);
    queued_per_job.Add(q.total_cost / kJobs);
    refunds.Add(q.shutdown_refunds);
    first_runtime.Add(q.jobs.front().runtime / kHour);
    for (std::size_t i = 1; i < q.jobs.size(); ++i) {
      later_runtime.Add(q.jobs[i].runtime / kHour);
    }
    // Same job run standalone (pays its own ramp-up and drain).
    standalone_per_job.Add(
        single_sim.Run(SchemeKind::kProteus, job, config, start).bill.cost);
  }

  TextTable table({"metric", "standalone", "queued (per job)"});
  table.AddRow({"avg cost per job ($)", TextTable::Cell(standalone_per_job.Mean(), 2),
                TextTable::Cell(queued_per_job.Mean(), 2)});
  table.AddRow({"avg runtime, first job (h)", "-", TextTable::Cell(first_runtime.Mean(), 2)});
  table.AddRow({"avg runtime, later jobs (h)", "-", TextTable::Cell(later_runtime.Mean(), 2)});
  table.AddRow({"avg shutdown eviction refunds ($)", "-", TextTable::Cell(refunds.Mean(), 2)});
  table.PrintAndMaybeExport("tab_job_queue");
  std::printf(
      "(later jobs start on a warm footprint; queue amortizes ramp-up and exploits\n"
      " already-paid billing hours — the rationale for the paper's accounting)\n\n");

  if (!json_path.empty()) {
    const std::vector<BenchJsonRow> rows = {
        {"cost_per_job_standalone", "dollars", standalone_per_job.Mean(), "$"},
        {"cost_per_job_queued", "dollars", queued_per_job.Mean(), "$"},
        {"runtime_first_job", "hours", first_runtime.Mean(), "h"},
        {"runtime_later_jobs", "hours", later_runtime.Mean(), "h"},
        {"shutdown_refunds", "dollars", refunds.Mean(), "$"},
    };
    return WriteBenchJson(json_path, "tab_job_queue", rows) ? 0 : 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  const std::string json_path = proteus::bench::TakeFlag(argc, argv, "bench_json");
  proteus::bench::ObsSession obs_session(argc, argv);
  return proteus::bench::Main(json_path);
}
