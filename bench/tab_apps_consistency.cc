// §6.4 consistency check: the paper reports the stage results only for
// MF, noting "results for the other applications and Cluster-B are
// consistent and omitted only due to space constraints." This table
// verifies that claim in our model for MLR and LDA at the key operating
// points: 1:1 (stage 1), 15:1 (stage 2), 63:1 (stage 3).
#include <cstdio>

#include "bench/support.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

struct AppRunner {
  const char* name;
  std::function<double(int reliable, int transient, Stage stage, std::optional<int> actives)>
      run;
};

void Main() {
  std::printf("=== Stage behaviour consistency across applications (vs traditional) ===\n");
  const MfEnv mf_env = MakeMfEnv();
  const LdaEnv lda_env = MakeLdaEnv();
  // MLR shaped like the paper's ImageNet-LLC run: a large dense weight
  // matrix (classes x dim) relative to the sample count, so parameter
  // traffic matters. MLR remains the most compute-bound of the three.
  FeaturesConfig fc;
  fc.samples = 4096;
  fc.dim = 2048;
  fc.classes = 512;
  const FeaturesDataset mlr_data = GenerateFeatures(fc);

  auto config_for = [](std::optional<Stage> stage, std::optional<int> actives) {
    AgileMLConfig config = ClusterAConfig(32);
    config.planner.forced_stage = stage;
    config.planner.forced_active_ps_count = actives;
    return config;
  };

  const std::vector<AppRunner> apps = {
      {"MF",
       [&](int r, int t, Stage s, std::optional<int> a) {
         MatrixFactorizationApp app(&mf_env.data, mf_env.mf);
         AgileMLRuntime runtime(&app, config_for(s, a), MakeCluster(r, t));
         return MeasureTimePerIter(runtime, 2, 3);
       }},
      {"MLR",
       [&](int r, int t, Stage s, std::optional<int> a) {
         MultinomialLogRegApp app(&mlr_data, MlrConfig{});
         AgileMLRuntime runtime(&app, config_for(s, a), MakeCluster(r, t));
         return MeasureTimePerIter(runtime, 2, 3);
       }},
      {"LDA",
       [&](int r, int t, Stage s, std::optional<int> a) {
         LdaApp app(&lda_env.data, lda_env.lda);
         AgileMLRuntime runtime(&app, config_for(s, a), MakeCluster(r, t));
         return MeasureTimePerIter(runtime, 3, 3);
       }},
  };

  TextTable table({"app", "stage1 @1:1", "stage1 @15:1", "stage2 @15:1", "stage3 @63:1"});
  for (const AppRunner& app : apps) {
    const double traditional = app.run(64, 0, Stage::kStage1, std::nullopt);
    const double s1_even = app.run(32, 32, Stage::kStage1, std::nullopt);
    const double s1_skew = app.run(4, 60, Stage::kStage1, std::nullopt);
    const double s2_skew = app.run(4, 60, Stage::kStage2, 32);
    const double s3_skew = app.run(1, 63, Stage::kStage3, 32);
    table.AddRow({app.name, TextTable::Cell(s1_even / traditional, 2) + "x",
                  TextTable::Cell(s1_skew / traditional, 2) + "x",
                  TextTable::Cell(s2_skew / traditional, 2) + "x",
                  TextTable::Cell(s3_skew / traditional, 2) + "x"});
  }
  table.PrintAndMaybeExport("tab_apps_consistency");
  std::printf(
      "(expected pattern: ~1x, >1x, ~1.0-1.3x, ~1x. The stage phenomena are\n"
      " architectural; their magnitude scales with each app's comm:compute\n"
      " ratio — strongest for MF, mildest for compute-bound MLR)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
