// Model-validation table (§6.4 anchors).
//
// Checks the simulation model against the paper's quantitative anchors:
//   - stage 1, 4 ParamServs, 60:4 -> MF slowed by over 85% (§3.2 Cons);
//   - stage 2, 32 ActivePSs, 15:1 -> ~18% slower than traditional;
//   - stage 3, 63:1               -> matches traditional.
// Prints measured ratios next to the paper's numbers.
#include <cstdio>

#include "bench/support.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

double RunConfig(const MfEnv& env, int reliable, int transient, std::optional<Stage> stage,
                 std::optional<int> actives, int partitions = 32) {
  MatrixFactorizationApp app(&env.data, env.mf);
  AgileMLConfig config = ClusterAConfig(partitions);
  config.planner.forced_stage = stage;
  config.planner.forced_active_ps_count = actives;
  AgileMLRuntime runtime(&app, config, MakeCluster(reliable, transient));
  return MeasureTimePerIter(runtime, /*warmup=*/2, /*iters=*/5);
}

void Main() {
  std::printf("=== Model validation: paper anchors (MF, 64-node Cluster-A) ===\n");
  const MfEnv env = MakeMfEnv();

  const double traditional = RunConfig(env, 64, 0, Stage::kStage1, std::nullopt);
  const double stage1_4ps = RunConfig(env, 4, 60, Stage::kStage1, std::nullopt);
  const double stage2_32a = RunConfig(env, 4, 60, Stage::kStage2, 32);
  const double stage3_63 = RunConfig(env, 1, 63, Stage::kStage3, 32);
  const double stage2_63 = RunConfig(env, 1, 63, Stage::kStage2, 32);

  TextTable table({"anchor", "paper", "measured"});
  table.AddRow({"stage1 4PS @60:4 vs traditional", ">1.85x",
                TextTable::Cell(stage1_4ps / traditional, 2) + "x"});
  table.AddRow({"stage2 32ActivePS @15:1 vs traditional", "~1.18x",
                TextTable::Cell(stage2_32a / traditional, 2) + "x"});
  table.AddRow({"stage3 @63:1 vs traditional", "~1.0x",
                TextTable::Cell(stage3_63 / traditional, 2) + "x"});
  table.AddRow({"stage2 @63:1 vs traditional (straggler)", ">=2x",
                TextTable::Cell(stage2_63 / traditional, 2) + "x"});
  table.AddRow({"traditional time/iter", "(abs. not comparable)",
                TextTable::Cell(traditional, 3) + "s"});
  table.PrintAndMaybeExport("tab_model_validation");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
