// §6.4 ablation: time-per-iteration of all three AgileML stages across
// transient-to-reliable ratios on a 64-node cluster (MF). Shows the
// stage crossovers that motivate the 1:1 and 15:1 thresholds.
#include <cstdio>

#include "bench/support.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

double Run(const MfEnv& env, int reliable, int transient, Stage stage) {
  MatrixFactorizationApp app(&env.data, env.mf);
  AgileMLConfig config = ClusterAConfig(32);
  config.planner.forced_stage = stage;
  AgileMLRuntime runtime(&app, config, MakeCluster(reliable, transient));
  return MeasureTimePerIter(runtime, 2, 4);
}

void Main() {
  std::printf("=== Ratio sweep: stages 1/2/3 across transient:reliable ratios (MF) ===\n");
  const MfEnv env = MakeMfEnv();
  TextTable table({"reliable:transient", "ratio", "stage1 (s)", "stage2 (s)", "stage3 (s)",
                   "best"});
  struct Shape {
    int reliable;
    int transient;
  };
  const Shape shapes[] = {{32, 32}, {16, 48}, {8, 56}, {4, 60}, {2, 62}, {1, 63}};
  for (const Shape& shape : shapes) {
    const double s1 = Run(env, shape.reliable, shape.transient, Stage::kStage1);
    const double s2 = Run(env, shape.reliable, shape.transient, Stage::kStage2);
    const double s3 = Run(env, shape.reliable, shape.transient, Stage::kStage3);
    const char* best = s1 <= s2 && s1 <= s3 ? "stage1" : (s2 <= s3 ? "stage2" : "stage3");
    char label[24];
    std::snprintf(label, sizeof(label), "%d:%d", shape.reliable, shape.transient);
    char ratio[24];
    std::snprintf(ratio, sizeof(ratio), "%.0f:1",
                  static_cast<double>(shape.transient) / shape.reliable);
    table.AddRow({label, ratio, TextTable::Cell(s1, 3), TextTable::Cell(s2, 3),
                  TextTable::Cell(s3, 3), best});
  }
  table.PrintAndMaybeExport("tab_ratio_sweep");
  std::printf(
      "(paper: stage 1 best at <=1:1, stage 2 from ~1:1 to ~15:1, stage 3 beyond —\n"
      " exact thresholds are not critical, §3.3)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
