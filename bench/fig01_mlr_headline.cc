// Figure 1: the headline result. The MLR application on Cluster-B
// (128 x c4.xlarge): all-on-demand vs Standard+Checkpoint vs Proteus
// (3 on-demand + up to 189 spot). Average cost (left axis in the paper)
// and runtime (right axis).
#include <cstdio>

#include "bench/support.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

// Small real MLR run under ProteusRuntime, attached to the observability
// session. The cost/runtime table above is produced by the abstract
// JobSimulator (which models work as phi/sigma/lambda and moves no real
// bytes); this probe populates the live-instrumentation metrics —
// push/pull byte counters, per-allocation cost gauges, rpc channel
// counters — for the same MLR-on-spot scenario without touching the
// reported numbers.
void RunInstrumentedProbe(const MarketEnv& env) {
  ObsSession* session = CurrentObsSession();
  if (session == nullptr) {
    return;
  }
  FeaturesConfig fc;
  fc.samples = 4096;
  fc.dim = 256;
  fc.classes = 16;
  const FeaturesDataset data = GenerateFeatures(fc);
  MlrConfig mc;
  mc.objective_sample = 1024;
  MultinomialLogRegApp app(&data, mc);
  ProteusConfig config;
  config.agileml.num_partitions = 16;
  config.agileml.data_blocks = 128;
  config.agileml.core_speed = 1.5e3;  // Minutes-long clocks: spans decisions.
  config.bidbrain.max_spot_instances = 32;
  config.bidbrain.allocation_quantum = 8;
  config.on_demand_count = 3;
  ProteusRuntime runtime(&app, &env.catalog, &env.traces, &env.estimator, config,
                         env.eval_begin + kDay);
  session->Attach(runtime);
  runtime.Train(12);
}

void Main() {
  std::printf("=== Fig 1: MLR headline — cost and runtime (128 x c4.xlarge reference) ===\n");
  const MarketEnv env = MakeMarketEnv();
  const JobSimulator sim(&env.catalog, &env.traces, &env.estimator);
  SchemeConfig config = PaperSchemeConfig();
  config.standard_target_vcpus = 128 * 4;  // Cluster-B capacity.
  config.bidbrain.max_spot_instances = 189;
  // ~4-hour MLR training job (§6.3).
  const SimDuration duration = 4 * kHour;
  const JobSpec job =
      JobSpec::ForReferenceDuration(env.catalog, "c4.xlarge", 128, duration, 0.95);
  const std::vector<SimTime> starts = SampleStartTimes(env, 200, duration * 6, /*seed=*/96);

  const SchemeKind schemes[] = {SchemeKind::kOnDemandOnly, SchemeKind::kStandardCheckpoint,
                                SchemeKind::kProteus};
  SampleStats cost[3];
  SampleStats runtime[3];
  for (const SimTime start : starts) {
    for (int s = 0; s < 3; ++s) {
      const JobResult result = sim.Run(schemes[s], job, config, start);
      if (result.completed) {
        cost[s].Add(result.bill.cost);
        runtime[s].Add(result.runtime);
      }
    }
  }

  TextTable table({"configuration", "avg cost ($)", "avg runtime (h)", "cost vs on-demand"});
  const char* labels[] = {"All on-demand (128)", "Standard + Checkpointing",
                          "Proteus (3 on-demand + <=189 spot)"};
  for (int s = 0; s < 3; ++s) {
    table.AddRow({labels[s], TextTable::Cell(cost[s].Mean(), 2),
                  TextTable::Cell(runtime[s].Mean() / kHour, 2),
                  TextTable::Cell(100.0 * cost[s].Mean() / cost[0].Mean(), 0) + "%"});
  }
  table.PrintAndMaybeExport("fig01_mlr_headline");
  std::printf(
      "(paper: Proteus cuts cost ~85%% vs all-on-demand and ~50%% vs\n"
      " Standard+Checkpointing, while also running faster)\n\n");
  RunInstrumentedProbe(env);
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
