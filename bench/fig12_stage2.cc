// Figure 12: AgileML stage 2 with 16/32/48 ActivePSs on a 64-node
// cluster (4 reliable + 60 transient), compared to stage 1 with the same
// ratio ("4 ParamServs") and to the traditional all-reliable baseline.
// MF application.
//
// Paper shape: 32 ActivePSs is the sweet spot (~18% over traditional at
// 15:1); stage 1 at this ratio is far worse.
#include <cstdio>

#include "bench/support.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

// 96 partitions divide evenly by 16/32/48 ActivePSs.
constexpr int kPartitions = 96;

double Run(const MfEnv& env, int reliable, int transient, Stage stage,
           std::optional<int> actives) {
  MatrixFactorizationApp app(&env.data, env.mf);
  AgileMLConfig config = ClusterAConfig(kPartitions);
  config.planner.forced_stage = stage;
  config.planner.forced_active_ps_count = actives;
  AgileMLRuntime runtime(&app, config, MakeCluster(reliable, transient));
  return MeasureTimePerIter(runtime, 2, 5);
}

void Main() {
  std::printf("=== Fig 12: stage 2 ActivePS count (MF, 4 reliable + 60 transient) ===\n");
  const MfEnv env = MakeMfEnv();
  TextTable table({"config", "time/iter (s)", "vs traditional"});

  const double traditional = Run(env, 64, 0, Stage::kStage1, std::nullopt);
  table.AddRow({"Traditional (all reliable)", TextTable::Cell(traditional, 3), "1.00x"});
  const double s1 = Run(env, 4, 60, Stage::kStage1, std::nullopt);
  table.AddRow({"4 ParamServs (stage 1)", TextTable::Cell(s1, 3),
                TextTable::Cell(s1 / traditional, 2) + "x"});
  for (const int actives : {16, 32, 48}) {
    const double t = Run(env, 4, 60, Stage::kStage2, actives);
    char label[40];
    std::snprintf(label, sizeof(label), "%d ActivePSs (stage 2)", actives);
    table.AddRow({label, TextTable::Cell(t, 3), TextTable::Cell(t / traditional, 2) + "x"});
  }
  table.PrintAndMaybeExport("fig12_stage2");
  std::printf("(paper: 32 ActivePSs ~18%% over traditional; stage 1 much worse at 15:1)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
