// Figure 8: 2-hour jobs — (a) average cost normalized to all-on-demand,
// (b) average runtime — for Standard+Checkpoint, Standard+AgileML, and
// Proteus, across random start times in the evaluation window of the
// spot traces (the paper averages 1000 starts per zone over Jun-Aug
// 2016; we sample the synthetic evaluation window).
#include <cstdio>

#include "bench/support.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace proteus {
namespace bench {
namespace {

void RunDuration(SimDuration duration, int samples) {
  const MarketEnv env = MakeMarketEnv();
  const JobSimulator sim(&env.catalog, &env.traces, &env.estimator);
  const SchemeConfig config = PaperSchemeConfig();
  const JobSpec job =
      JobSpec::ForReferenceDuration(env.catalog, "c4.2xlarge", 64, duration, 0.95);
  const std::vector<SimTime> starts =
      SampleStartTimes(env, samples, duration * 8, /*seed=*/99);

  const SchemeKind schemes[] = {SchemeKind::kOnDemandOnly, SchemeKind::kStandardCheckpoint,
                                SchemeKind::kFlintDiversified, SchemeKind::kStandardAgileML,
                                SchemeKind::kProteus};
  constexpr int kSchemes = 5;
  SampleStats cost[kSchemes];
  SampleStats runtime[kSchemes];
  for (const SimTime start : starts) {
    for (int s = 0; s < kSchemes; ++s) {
      const JobResult result = sim.Run(schemes[s], job, config, start);
      if (result.completed) {
        cost[s].Add(result.bill.cost);
        runtime[s].Add(result.runtime);
      }
    }
  }

  const double od_cost = cost[0].Mean();
  TextTable table({"scheme", "cost (% of on-demand)", "avg cost ($)", "avg runtime (h)"});
  for (int s = 0; s < kSchemes; ++s) {
    table.AddRow({SchemeName(schemes[s]),
                  TextTable::Cell(100.0 * cost[s].Mean() / od_cost, 1) + "%",
                  TextTable::Cell(cost[s].Mean(), 2),
                  TextTable::Cell(runtime[s].Mean() / kHour, 2)});
  }
  table.PrintAndMaybeExport("fig08_cost_2hr");
}

void Main() {
  std::printf("=== Fig 8: 2-hour jobs, cost and runtime vs on-demand (64 x c4.2xlarge) ===\n");
  RunDuration(2 * kHour, 400);
  std::printf(
      "(paper: Proteus ~15-17%% of on-demand cost, beats Standard+Checkpoint by 42-47%%\n"
      " on cost and 32-43%% on runtime; Standard+AgileML sits in between)\n\n");
}

}  // namespace
}  // namespace bench
}  // namespace proteus

int main(int argc, char** argv) {
  proteus::bench::ObsSession obs_session(argc, argv);
  proteus::bench::Main();
  return 0;
}
