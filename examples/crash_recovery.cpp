// Crash recovery end to end (DESIGN.md §12): train with the durable
// checkpoint insurance armed, lose both the ActivePS tier and the
// backup/checkpoint holders at once, recover through the escalation
// ladder — then simulate a full process restart and resume the same job
// from the newest committed epoch on disk.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/agileml/recovery_manager.h"
#include "src/agileml/runtime.h"
#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/ps/checkpoint_store.h"

using namespace proteus;

namespace {

AgileMLConfig MakeConfig() {
  AgileMLConfig config;
  config.num_partitions = 16;
  config.data_blocks = 128;
  config.backup_sync_every = 3;
  config.parallel_execution = false;
  return config;
}

std::vector<NodeInfo> MakeNodes() {
  std::vector<NodeInfo> nodes;
  NodeId id = 0;
  for (int i = 0; i < 2; ++i) {
    nodes.push_back({id++, Tier::kReliable, 8, kInvalidAllocation});
  }
  for (int i = 0; i < 6; ++i) {
    nodes.push_back({id++, Tier::kTransient, 8, kInvalidAllocation});
  }
  return nodes;
}

}  // namespace

int main() {
  RatingsConfig rc;
  rc.users = 1000;
  rc.items = 400;
  rc.ratings = 30000;
  const RatingsDataset data = GenerateRatings(rc);
  MfConfig mc;
  mc.rank = 8;
  MatrixFactorizationApp app(&data, mc);

  // Durable checkpoints live in a real directory; any filesystem (or an
  // object store behind the DurableDevice interface) works.
  const std::string ckpt_dir =
      (std::filesystem::temp_directory_path() / "proteus_crash_recovery_demo").string();
  std::filesystem::remove_all(ckpt_dir);

  // ---- Run 1: train with the insurance armed, then lose both tiers.
  {
    AgileMLRuntime runtime(&app, MakeConfig(), MakeNodes());
    FileDurableDevice device(ckpt_dir);
    CheckpointStore store(&device);
    RecoveryManager recovery(&runtime, &store, RecoveryManagerConfig{4, 0});
    recovery.ForceCheckpoint();  // Epoch 1: the starting state.

    for (int i = 0; i < 10; ++i) {
      runtime.RunClock();
      recovery.OnClockBoundary();  // Cadence: durable epoch every 4 clocks.
    }
    std::printf("trained to clock %lld; objective %.4f; durable epochs committed: %llu\n",
                static_cast<long long>(runtime.clock()), runtime.ComputeObjective(),
                static_cast<unsigned long long>(store.epochs_committed()));

    // Correlated wipeout: every ActivePS host dies *and* a reliable
    // machine holding the backup + in-memory checkpoint dies with them.
    const RoleAssignment& roles = runtime.roles();
    std::set<NodeId> victims;
    for (const auto& [partition, owner] : roles.server) {
      victims.insert(owner);
    }
    victims.insert(roles.backup.begin()->second);
    runtime.DropCheckpoint();  // The in-memory copy died with its holder.

    const RecoveryOutcome outcome = recovery.Recover({victims.begin(), victims.end()});
    std::printf("both tiers lost -> %s: restored clock %lld from durable epoch %llu "
                "(%d clocks of work redone)\n",
                RecoveryDepthName(outcome.depth),
                static_cast<long long>(outcome.restored_clock),
                static_cast<unsigned long long>(outcome.durable_epoch),
                outcome.lost_clocks);

    // The ladder re-armed itself: training continues immediately.
    runtime.RunClock();
    std::printf("training resumed; clock %lld\n", static_cast<long long>(runtime.clock()));
  }

  // ---- Run 2: the whole process died. Reopen the store from disk and
  // resume in a brand-new runtime.
  {
    FileDurableDevice device(ckpt_dir);
    CheckpointStore store(&device);
    const auto loaded = store.ReadNewestValid();
    if (!loaded.has_value()) {
      std::printf("no restorable epoch found\n");
      return 1;
    }
    std::printf("\nprocess restart: newest valid epoch %llu holds clock %lld "
                "(%d corrupt epoch(s) skipped)\n",
                static_cast<unsigned long long>(loaded->epoch),
                static_cast<long long>(loaded->clock), loaded->corrupt_epochs_skipped);

    AgileMLRuntime runtime(&app, MakeConfig(), MakeNodes());
    runtime.InstallCheckpoint(loaded->shard_blobs, loaded->clock);
    runtime.RestoreFromCheckpoint();
    RecoveryManager recovery(&runtime, &store, RecoveryManagerConfig{4, 0});
    recovery.ForceCheckpoint();  // Re-arm before training resumes.

    for (int i = 0; i < 5; ++i) {
      runtime.RunClock();
      recovery.OnClockBoundary();
    }
    std::printf("resumed to clock %lld; objective %.4f\n",
                static_cast<long long>(runtime.clock()), runtime.ComputeObjective());
  }

  std::filesystem::remove_all(ckpt_dir);
  return 0;
}
