// Hyperparameter exploration: the paper's motivating multi-job use case
// (§6.3 cites "the common practice of performing sequences of ML jobs
// for hyperparameter explorations"). A queue of training jobs shares one
// Proteus-managed footprint: later jobs start on warm, already-paid
// capacity, and at drain time spot allocations ride out their billing
// hours hoping for a free (evicted) final hour.
#include <cstdio>

#include "src/common/table.h"
#include "src/proteus/job_queue.h"

using namespace proteus;

int main() {
  const InstanceTypeCatalog catalog = InstanceTypeCatalog::Default();
  SyntheticTraceConfig trace_config;
  trace_config.spikes_per_day = 3.0;
  Rng rng(17);
  const TraceStore traces = TraceStore::GenerateSynthetic(
      catalog, {"zone-a", "zone-b", "zone-c"}, 60 * kDay, trace_config, rng);
  EvictionEstimator estimator;
  estimator.Train(traces, 0.0, 30 * kDay);

  // Five sweep points, each a 2-hour (64-machine-reference) training run.
  std::vector<QueuedJob> sweep;
  const double learning_rates[] = {0.3, 0.1, 0.03, 0.01, 0.003};
  for (const double lr : learning_rates) {
    char name[32];
    std::snprintf(name, sizeof(name), "lr=%.3f", lr);
    sweep.push_back(
        {name, JobSpec::ForReferenceDuration(catalog, "c4.2xlarge", 64, 2 * kHour, 0.95)});
  }

  SchemeConfig config;
  config.bidbrain.max_spot_instances = 128;
  const JobQueueSimulator sim(&catalog, &traces, &estimator);
  const JobQueueResult result = sim.Run(sweep, config, 35 * kDay);

  TextTable table({"sweep point", "completed", "runtime", "cost ($)", "evictions"});
  for (const auto& job : result.jobs) {
    table.AddRow({job.name, job.completed ? "yes" : "NO", FormatDuration(job.runtime),
                  TextTable::Cell(job.cost, 2), std::to_string(job.evictions)});
  }
  table.Print();
  std::printf("\ntotal billed: %s for %s of exploration (+%s refunded at drain)\n",
              FormatMoney(result.total_cost).c_str(), FormatDuration(result.makespan).c_str(),
              FormatMoney(result.shutdown_refunds).c_str());
  const Money od_equiv = 5 * 2 * 64 * catalog.Get("c4.2xlarge").on_demand_price;
  std::printf("the same sweep on 64 on-demand machines: %s (%.0fx more)\n",
              FormatMoney(od_equiv).c_str(), od_equiv / result.total_cost);
  return 0;
}
