// Spot-market explorer: generate (or load) price traces, train the
// eviction estimator, and inspect how bid deltas trade eviction risk
// against price — the inputs to BidBrain's policy (§4.1).
//
// Usage: spot_market_explorer [trace.csv]
//   Without an argument, synthesizes 60 days of traces for two zones.
//   With one, loads a CSV written by TraceStore::WriteFile.
#include <cstdio>

#include "src/bidbrain/eviction_estimator.h"
#include "src/common/table.h"
#include "src/market/spot_market.h"
#include "src/market/trace_gen.h"

using namespace proteus;

int main(int argc, char** argv) {
  const InstanceTypeCatalog catalog = InstanceTypeCatalog::Default();
  TraceStore traces;
  if (argc > 1) {
    traces = TraceStore::ReadFile(argv[1]);
    if (traces.empty()) {
      std::fprintf(stderr, "failed to load %s\n", argv[1]);
      return 1;
    }
    std::printf("loaded traces from %s\n", argv[1]);
  } else {
    SyntheticTraceConfig config;
    config.spikes_per_day = 3.0;
    Rng rng(2016);
    traces = TraceStore::GenerateSynthetic(catalog, {"zone-a", "zone-b"}, 60 * kDay, config, rng);
    std::printf("synthesized 60-day traces for 2 zones x %zu instance types\n",
                catalog.types().size());
  }

  // Market overview.
  TextTable overview({"market", "on-demand ($/h)", "avg spot ($/h)", "max spot", "discount"});
  for (const MarketKey& key : traces.Keys()) {
    const InstanceType* type = catalog.Find(key.instance_type);
    if (type == nullptr) {
      continue;
    }
    const PriceSeries& series = traces.Get(key);
    const Money avg = series.AveragePrice(series.start_time(), series.end_time());
    overview.AddRow({key.zone + "/" + key.instance_type,
                     TextTable::Cell(type->on_demand_price, 3), TextTable::Cell(avg, 3),
                     TextTable::Cell(series.MaxPrice(series.start_time(), series.end_time()), 3),
                     TextTable::Cell(100.0 * (1.0 - avg / type->on_demand_price), 0) + "%"});
  }
  overview.Print();

  // Eviction statistics per bid delta (first market).
  EvictionEstimator estimator;
  const PriceSeries& first = traces.Get(traces.Keys().front());
  estimator.Train(traces, first.start_time(), first.end_time());
  const MarketKey key = traces.Keys().front();
  std::printf("\neviction risk for %s/%s by bid delta:\n", key.zone.c_str(),
              key.instance_type.c_str());
  TextTable risk({"bid delta ($)", "P(evicted within hour)", "median time-to-eviction"});
  for (const Money delta : EvictionEstimator::DefaultDeltaGrid()) {
    const EvictionStats stats = estimator.Estimate(key, delta);
    risk.AddRow({TextTable::Cell(delta, 4), TextTable::Cell(stats.beta, 3),
                 FormatDuration(stats.median_time_to_eviction)});
  }
  risk.Print();

  // A worked billing example.
  SpotMarket market(catalog, traces);
  const SimTime t0 = first.start_time() + 5 * kDay;
  const Money price = market.PriceAt(key, t0);
  const auto id = market.RequestSpot(key, 4, price + 0.01, t0);
  if (id.has_value()) {
    const Allocation& alloc = market.Get(*id);
    std::printf("\nbid %s at $%.4f (market $%.4f): ", key.instance_type.c_str(), price + 0.01,
                price);
    if (alloc.eviction_time.has_value()) {
      std::printf("evicted after %s\n", FormatDuration(*alloc.eviction_time - t0).c_str());
      market.MarkEvicted(*id);
    } else {
      std::printf("never evicted within the trace\n");
      market.Terminate(*id, t0 + 3 * kHour);
    }
    const BillingBreakdown bill = market.Bill(*id, first.end_time());
    std::printf("billed %s, refunded %s (%.1f free machine-hours)\n",
                FormatMoney(bill.charged).c_str(), FormatMoney(bill.refunded).c_str(),
                bill.free_hours);
  }
  return 0;
}
