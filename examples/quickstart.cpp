// Quickstart: train matrix factorization on an elastic AgileML cluster.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/agileml/runtime.h"
#include "src/apps/datasets.h"
#include "src/apps/mf.h"

using namespace proteus;

int main() {
  // 1. Make (or load) training data: a sparse ratings matrix.
  RatingsConfig data_config;
  data_config.users = 2000;
  data_config.items = 500;
  data_config.ratings = 100000;
  const RatingsDataset data = GenerateRatings(data_config);

  // 2. Pick an application. MF, MLR and LDA ship with the library; your
  //    own app just implements the MLApp interface (see custom_app.cpp).
  MfConfig mf_config;
  mf_config.rank = 32;
  MatrixFactorizationApp app(&data, mf_config);

  // 3. Describe the cluster: reliable nodes keep the solution state
  //    safe, transient (spot) nodes do the bulk of the work.
  std::vector<NodeInfo> nodes;
  nodes.push_back({0, Tier::kReliable, 8, kInvalidAllocation});
  for (NodeId id = 1; id <= 7; ++id) {
    nodes.push_back({id, Tier::kTransient, 8, kInvalidAllocation});
  }

  // 4. Run. AgileML picks the right stage for the tier ratio (here 7:1
  //    -> stage 2: ActivePSs on transient nodes, BackupPSs on reliable).
  AgileMLConfig config;
  config.num_partitions = 16;
  AgileMLRuntime runtime(&app, config, nodes);
  std::printf("stage: %s, workers: %zu\n", StageName(runtime.stage()),
              runtime.roles().worker_nodes.size());

  for (int iter = 1; iter <= 10; ++iter) {
    const IterationReport report = runtime.RunClock();
    std::printf("iter %2d: %.3fs (virtual), RMSE %.4f\n", iter, report.duration,
                runtime.ComputeObjective());
  }
  std::printf("total virtual time: %.2fs\n", runtime.total_time());
  return 0;
}
