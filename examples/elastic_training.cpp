// Elasticity demo: bulk addition, warned eviction, and unwarned failure
// in the middle of training — the scenarios AgileML is built for (§3.3).
#include <cstdio>

#include "src/agileml/runtime.h"
#include "src/apps/datasets.h"
#include "src/apps/mf.h"

using namespace proteus;

namespace {

void Report(const AgileMLRuntime& runtime, const IterationReport& r, const char* note) {
  std::printf("clock %3lld | %-6s | %2d workers | %.3fs | RMSE %.4f %s\n",
              static_cast<long long>(r.clock), StageName(r.stage), r.worker_nodes, r.duration,
              runtime.ComputeObjective(), note);
}

}  // namespace

int main() {
  RatingsConfig data_config;
  data_config.users = 3000;
  data_config.items = 600;
  data_config.ratings = 120000;
  const RatingsDataset data = GenerateRatings(data_config);
  MfConfig mf_config;
  mf_config.rank = 32;
  MatrixFactorizationApp app(&data, mf_config);

  AgileMLConfig config;
  config.num_partitions = 16;
  config.backup_sync_every = 3;  // Sync every 3 clocks: failures lose work.
  std::vector<NodeInfo> nodes;
  for (NodeId id = 0; id < 4; ++id) {
    nodes.push_back({id, Tier::kReliable, 8, kInvalidAllocation});
  }
  AgileMLRuntime runtime(&app, config, nodes);

  std::printf("-- 4 reliable machines --\n");
  for (int i = 0; i < 4; ++i) {
    Report(runtime, runtime.RunClock(), "");
  }

  std::printf("-- spot market grants 12 transient machines (background preload) --\n");
  std::vector<NodeInfo> spot;
  for (NodeId id = 100; id < 112; ++id) {
    spot.push_back({id, Tier::kTransient, 8, kInvalidAllocation});
  }
  runtime.AddNodes(spot);
  while (runtime.PreparingCount() > 0) {
    Report(runtime, runtime.RunClock(), "(preloading)");
  }
  for (int i = 0; i < 4; ++i) {
    Report(runtime, runtime.RunClock(), "");
  }

  std::printf("-- 2-minute warning: 6 transient machines evicted --\n");
  std::vector<NodeId> evictees;
  for (const auto& node : runtime.nodes()) {
    if (!node.reliable() && evictees.size() < 6) {
      evictees.push_back(node.id);
    }
  }
  runtime.Evict(evictees);
  // Run up to just past a backup sync so the next failure has unsynced
  // work to lose.
  while (runtime.clock() % config.backup_sync_every != 2) {
    Report(runtime, runtime.RunClock(), "");
  }

  std::printf("-- an ActivePS host fails without warning --\n");
  const NodeId victim = *runtime.roles().active_ps_nodes.begin();
  const int lost = runtime.Fail({victim});
  std::printf("rolled back %d clocks to the last backup-consistent state\n", lost);
  for (int i = 0; i < 4; ++i) {
    Report(runtime, runtime.RunClock(), "");
  }

  std::printf("lost clocks overall: %d; final RMSE %.4f\n", runtime.lost_clocks_total(),
              runtime.ComputeObjective());
  return 0;
}
