// The paper's running toy example (Figs. 5 and 6), executed for real:
//
//   Phase 1: one on-demand machine (BackupPS, c4.xlarge @ $0.2) plus an
//            allocation [1] of 2 spot m4.xlarge @ $0.1 doing the work.
//   Phase 2: BidBrain adds allocation [2]: 2 spot c4.xlarge @ $0.05 —
//            raising instantaneous spend but lowering expected
//            cost-per-work by amortizing the work-free on-demand node.
//   Phase 3: allocation [1] is evicted; the survivors take over its
//            input data (previous-owner preloading: no reload).
//
// Prints the expected cost-per-work blocks of Fig. 6 next to the live
// AgileML cluster state transitions of Fig. 5.
#include <cstdio>

#include "src/agileml/runtime.h"
#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/bidbrain/cost_model.h"
#include "src/common/table.h"

using namespace proteus;

namespace {

AllocationPlan Plan(const char* type, int count, Money price, double beta, WorkUnits work,
                    bool on_demand = false) {
  AllocationPlan plan;
  plan.market = {"toy", type};
  plan.count = count;
  plan.hourly_price = price;
  plan.beta = beta;
  plan.omega = kHour;
  plan.work_per_hour = work;
  plan.on_demand = on_demand;
  return plan;
}

void PrintPhase(const char* name, const std::vector<AllocationPlan>& plans,
                const AppProfile& app) {
  std::printf("%s: E[cost] = %s, E[work] = %.2f, E[cost/work] = %.4f\n", name,
              FormatMoney(CostModel::ExpectedCost(plans)).c_str(),
              CostModel::ExpectedWork(plans, app, false),
              CostModel::ExpectedCostPerWork(plans, app, false));
}

}  // namespace

int main() {
  std::printf("--- Fig. 6: expected cost per unit work across the three phases ---\n");
  AppProfile app;
  app.phi = 1.0;
  app.sigma = 0.0;
  app.lambda = 0.0;
  const auto od = Plan("c4.xlarge", 1, 0.2, 0.0, /*work=*/0.0, /*on_demand=*/true);
  const auto spot1 = Plan("m4.xlarge", 2, 0.1, 0.25, /*work=*/1.0);
  const auto spot2 = Plan("c4.xlarge", 2, 0.05, 0.25, /*work=*/1.0);
  PrintPhase("phase 1 (od + [1])      ", {od, spot1}, app);
  PrintPhase("phase 2 (od + [1] + [2])", {od, spot1, spot2}, app);
  PrintPhase("phase 3 (od + [2])      ", {od, spot2}, app);

  std::printf("\n--- Fig. 5: the same transitions on a live AgileML cluster ---\n");
  RatingsConfig rc;
  rc.users = 400;
  rc.items = 100;
  rc.ratings = 40000;  // "40 pieces of input data", scaled.
  const RatingsDataset data = GenerateRatings(rc);
  MfConfig mc;
  mc.rank = 16;
  MatrixFactorizationApp mf(&data, mc);
  AgileMLConfig config;
  config.num_partitions = 2;  // "ActivePS state part1 / part2".
  config.data_blocks = 40;
  AgileMLRuntime runtime(&mf, config,
                         {{0, Tier::kReliable, 4, kInvalidAllocation},   // Machine 0.
                          {1, Tier::kTransient, 4, kInvalidAllocation},  // Allocation [1].
                          {2, Tier::kTransient, 4, kInvalidAllocation}});

  auto show = [&](const char* phase) {
    std::printf("%s: stage=%s, workers:", phase, StageName(runtime.stage()));
    for (const NodeId w : runtime.roles().worker_nodes) {
      std::printf(" m%d(%lld items)", w, static_cast<long long>(runtime.data().ItemCountOf(w)));
    }
    std::printf("\n");
  };
  runtime.RunClocks(2);
  show("phase 1");

  // "Add 2 more spot instances" (allocation [2], machines 3 and 4).
  runtime.AddNodes({{3, Tier::kTransient, 4, kInvalidAllocation},
                    {4, Tier::kTransient, 4, kInvalidAllocation}});
  while (runtime.PreparingCount() > 0) {
    runtime.RunClock();
  }
  runtime.RunClock();
  show("phase 2");

  // "2 instances evicted" — allocation [1] (machines 1 and 2) goes away;
  // the survivors take over its input data with minimal delay.
  runtime.Evict({1, 2});
  runtime.RunClock();
  show("phase 3");
  std::printf("no clocks lost: %s\n", runtime.lost_clocks_total() == 0 ? "true" : "false");
  return 0;
}
