// Writing your own application against the AgileML API: ridge
// regression via mini-batch SGD in ~60 lines. The only requirements are
// vector-valued parameter rows with additive updates and stateless
// per-item processing (§3.1).
#include <cstdio>
#include <vector>

#include "src/agileml/runtime.h"
#include "src/common/rng.h"

using namespace proteus;

namespace {

// y = w* . x + noise; we learn w (a single parameter row).
class RidgeRegressionApp : public MLApp {
 public:
  static constexpr int kTableW = 0;

  RidgeRegressionApp(int dim, std::int64_t samples, std::uint64_t seed) : dim_(dim) {
    Rng rng(seed);
    std::vector<float> truth(static_cast<std::size_t>(dim));
    for (auto& v : truth) {
      v = static_cast<float>(rng.Normal(0.0, 1.0));
    }
    x_.resize(static_cast<std::size_t>(samples) * dim);
    y_.resize(static_cast<std::size_t>(samples));
    for (std::int64_t s = 0; s < samples; ++s) {
      double dot = 0.0;
      for (int d = 0; d < dim; ++d) {
        const auto v = static_cast<float>(rng.Normal(0.0, 1.0));
        x_[static_cast<std::size_t>(s) * dim + d] = v;
        dot += v * truth[static_cast<std::size_t>(d)];
      }
      y_[static_cast<std::size_t>(s)] = static_cast<float>(dot + rng.Normal(0.0, 0.05));
    }
  }

  std::string Name() const override { return "ridge"; }

  ModelInit DefineModel() const override {
    return {{TableSpec{kTableW, 1, dim_, 0.0F, 0.01F}}};
  }

  std::int64_t NumItems() const override {
    return static_cast<std::int64_t>(y_.size());
  }

  double CostPerItem() const override { return 4.0 * dim_; }

  void ProcessRange(WorkerContext& ctx, std::int64_t begin, std::int64_t end) override {
    // Read w once per clock (the worker-side cache coalesces it anyway),
    // accumulate the mini-batch gradient, push one additive update.
    std::vector<float> w;
    ctx.ReadInto(kTableW, 0, w);
    std::vector<float> grad(static_cast<std::size_t>(dim_), 0.0F);
    for (std::int64_t s = begin; s < end; ++s) {
      const float* x = &x_[static_cast<std::size_t>(s) * dim_];
      double pred = 0.0;
      for (int d = 0; d < dim_; ++d) {
        pred += w[static_cast<std::size_t>(d)] * x[d];
      }
      const auto err = static_cast<float>(pred - y_[static_cast<std::size_t>(s)]);
      for (int d = 0; d < dim_; ++d) {
        grad[static_cast<std::size_t>(d)] += err * x[d];
      }
    }
    const auto scale = static_cast<float>(-0.1 / static_cast<double>(end - begin));
    for (int d = 0; d < dim_; ++d) {
      grad[static_cast<std::size_t>(d)] =
          scale * grad[static_cast<std::size_t>(d)] - 1e-4F * w[static_cast<std::size_t>(d)];
    }
    ctx.Update(kTableW, 0, grad);
  }

  double ComputeObjective(const ModelStore& model) const override {
    std::vector<float> w;
    model.ReadRow(kTableW, 0, w);
    double mse = 0.0;
    const std::int64_t n = NumItems();
    for (std::int64_t s = 0; s < n; ++s) {
      const float* x = &x_[static_cast<std::size_t>(s) * dim_];
      double pred = 0.0;
      for (int d = 0; d < dim_; ++d) {
        pred += w[static_cast<std::size_t>(d)] * x[d];
      }
      const double err = pred - y_[static_cast<std::size_t>(s)];
      mse += err * err;
    }
    return mse / static_cast<double>(n);
  }

 private:
  int dim_;
  std::vector<float> x_;
  std::vector<float> y_;
};

}  // namespace

int main() {
  RidgeRegressionApp app(/*dim=*/64, /*samples=*/20000, /*seed=*/5);
  std::vector<NodeInfo> nodes;
  nodes.push_back({0, Tier::kReliable, 8, kInvalidAllocation});
  for (NodeId id = 1; id < 4; ++id) {
    nodes.push_back({id, Tier::kTransient, 8, kInvalidAllocation});
  }
  AgileMLConfig config;
  config.num_partitions = 4;
  AgileMLRuntime runtime(&app, config, nodes);
  for (int iter = 1; iter <= 12; ++iter) {
    runtime.RunClock();
    if (iter % 3 == 0) {
      std::printf("iter %2d: MSE %.5f\n", iter, runtime.ComputeObjective());
    }
  }
  return 0;
}
