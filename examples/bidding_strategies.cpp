// End-to-end scheme comparison for one job: all-on-demand vs
// checkpoint/restart on spot vs AgileML elasticity vs full Proteus
// (AgileML + BidBrain) — a miniature of the paper's §6.3 evaluation.
#include <cstdio>

#include "src/common/table.h"
#include "src/proteus/job_simulator.h"

using namespace proteus;

int main() {
  // Build the market world: 4 zones, 90 days; train the eviction
  // estimator on the first half, evaluate on the second.
  const InstanceTypeCatalog catalog = InstanceTypeCatalog::Default();
  SyntheticTraceConfig trace_config;
  trace_config.spikes_per_day = 3.0;
  Rng rng(7);
  const TraceStore traces = TraceStore::GenerateSynthetic(
      catalog, {"zone-a", "zone-b", "zone-c", "zone-d"}, 90 * kDay, trace_config, rng);
  EvictionEstimator estimator;
  estimator.Train(traces, 0.0, 45 * kDay);

  // A 4-hour job on a 64-machine reference cluster.
  const JobSpec job = JobSpec::ForReferenceDuration(catalog, "c4.2xlarge", 64, 4 * kHour, 0.95);
  SchemeConfig config;
  config.bidbrain.max_spot_instances = 160;

  const JobSimulator sim(&catalog, &traces, &estimator);

  TextTable table({"scheme", "avg cost", "avg runtime", "evictions", "free hours"});
  for (const SchemeKind scheme :
       {SchemeKind::kOnDemandOnly, SchemeKind::kStandardCheckpoint,
        SchemeKind::kStandardAgileML, SchemeKind::kProteus}) {
    Money cost = 0.0;
    SimDuration runtime = 0.0;
    int evictions = 0;
    double free_hours = 0.0;
    constexpr int kStarts = 10;
    for (int i = 0; i < kStarts; ++i) {
      const JobResult result = sim.Run(scheme, job, config, (50 + 3 * i) * kDay);
      cost += result.bill.cost;
      runtime += result.runtime;
      evictions += result.evictions;
      free_hours += result.bill.free_hours;
    }
    table.AddRow({SchemeName(scheme), FormatMoney(cost / kStarts),
                  FormatDuration(runtime / kStarts),
                  TextTable::Cell(static_cast<double>(evictions) / kStarts, 1),
                  TextTable::Cell(free_hours / kStarts, 1)});
  }
  table.Print();
  std::printf("\nProteus = AgileML elasticity + BidBrain bidding; both matter (§6.3).\n");
  return 0;
}
