// Full Proteus, end to end: a real MF training run whose cluster is
// managed live by BidBrain against a simulated spot market — machines
// arrive when cheap capacity appears, leave on 2-minute warnings, and
// the model keeps converging throughout (§5, Fig. 7).
#include <cstdio>

#include "src/apps/datasets.h"
#include "src/apps/mf.h"
#include "src/market/trace_gen.h"
#include "src/proteus/proteus_runtime.h"

using namespace proteus;

int main() {
  // World: 2 zones, 30 days of spot prices; estimator trained on the
  // first half.
  const InstanceTypeCatalog catalog = InstanceTypeCatalog::Default();
  SyntheticTraceConfig trace_config;
  trace_config.spikes_per_day = 6.0;
  Rng rng(33);
  const TraceStore traces =
      TraceStore::GenerateSynthetic(catalog, {"zone-a", "zone-b"}, 30 * kDay, trace_config, rng);
  EvictionEstimator estimator;
  estimator.Train(traces, 0.0, 15 * kDay);

  // Application: matrix factorization.
  RatingsConfig rc;
  rc.users = 2000;
  rc.items = 500;
  rc.ratings = 100000;
  const RatingsDataset data = GenerateRatings(rc);
  MfConfig mc;
  mc.rank = 32;
  MatrixFactorizationApp app(&data, mc);

  ProteusConfig config;
  config.agileml.num_partitions = 16;
  config.agileml.core_speed = 1e3;  // Minutes-long clocks: market events bite.
  config.bidbrain.max_spot_instances = 32;
  config.bidbrain.allocation_quantum = 8;
  config.on_demand_count = 2;
  ProteusRuntime runtime(&app, &catalog, &traces, &estimator, config, 16 * kDay);

  std::printf("%6s %10s %6s %10s %10s %8s\n", "clock", "elapsed", "spot", "evictions",
              "cost ($)", "RMSE");
  for (int step = 0; step < 8; ++step) {
    runtime.Train(/*clocks=*/5 * (step + 1));  // Train up to this clock.
    const ProteusStatus s = runtime.Status();
    std::printf("%6lld %10s %6d %10d %10.2f %8.4f\n", static_cast<long long>(s.clock),
                FormatDuration(s.now - 16 * kDay).c_str(), s.transient_nodes,
                s.evictions + s.failures, s.cost_so_far, runtime.agileml().ComputeObjective());
  }

  const ProteusStatus final_status = runtime.Status();
  std::printf("\nfinal: %d acquisitions, %d evictions, %d effective failures, "
              "%d clocks lost to rollback\n",
              final_status.acquisitions, final_status.evictions, final_status.failures,
              final_status.lost_clocks);
  return 0;
}
