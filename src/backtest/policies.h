// Baseline acquisition policies for the Policy Lab (DESIGN.md §9).
//
// Each policy implements the AcquisitionPolicy seam extracted from
// BidBrain so the backtest engine can replay it over historical
// spot-price traces with the exact event loop the paper's scheme uses:
//
//  - OnDemandOnlyPolicy:    the all-on-demand reference (§6.3's
//                           baseline). Never touches the spot market.
//  - FixedDeltaSpotPolicy:  the "standard" strategy family: keep a fixed
//                           vCPU capacity target topped up on the
//                           currently cheapest market, always bidding
//                           (current price + delta). delta -> 0 chases
//                           free compute; large delta approximates
//                           bid-the-on-demand-price.
//  - OracleNextPricePolicy: hindsight upper bound. Reads the future
//                           price path (which no real policy can),
//                           places capacity on the market whose coming
//                           prices are cheapest, and bids the maximum
//                           upcoming price over its lookahead so it is
//                           never evicted inside that horizon. This
//                           bounds what eviction-free informed bidding
//                           could achieve; it does not model the even
//                           stronger oracle that engineers refunds.
#ifndef SRC_BACKTEST_POLICIES_H_
#define SRC_BACKTEST_POLICIES_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/bidbrain/acquisition_policy.h"
#include "src/bidbrain/eviction_estimator.h"
#include "src/market/instance_type.h"
#include "src/market/trace_store.h"
#include "src/proteus/job_simulator.h"

namespace proteus {
namespace backtest {

class OnDemandOnlyPolicy : public AcquisitionPolicy {
 public:
  std::string name() const override { return "on_demand"; }
  std::vector<BidAction> Decide(SimTime now,
                                const std::vector<LiveAllocation>& live) const override;
  bool OnDemandDoesWork() const override { return true; }
};

class FixedDeltaSpotPolicy : public AcquisitionPolicy {
 public:
  FixedDeltaSpotPolicy(const InstanceTypeCatalog* catalog, const TraceStore* prices,
                       Money bid_delta, int target_vcpus);

  std::string name() const override;
  std::vector<BidAction> Decide(SimTime now,
                                const std::vector<LiveAllocation>& live) const override;

  Money bid_delta() const { return bid_delta_; }

 private:
  const InstanceTypeCatalog* catalog_;
  const TraceStore* prices_;
  Money bid_delta_;
  int target_vcpus_;
};

class OracleNextPricePolicy : public AcquisitionPolicy {
 public:
  OracleNextPricePolicy(const InstanceTypeCatalog* catalog, const TraceStore* prices,
                        int target_vcpus, SimDuration lookahead = 8 * kHour);

  std::string name() const override { return "oracle"; }
  std::vector<BidAction> Decide(SimTime now,
                                const std::vector<LiveAllocation>& live) const override;

 private:
  const InstanceTypeCatalog* catalog_;
  const TraceStore* prices_;
  int target_vcpus_;
  SimDuration lookahead_;
};

// --- Policy spec registry ---
//
// Cheap textual construction for the CLI and benches. Supported specs:
//   "bidbrain"              BidBrain with scheme.bidbrain's config.
//   "on_demand"             OnDemandOnlyPolicy.
//   "fixed_delta:<delta>"   FixedDeltaSpotPolicy at the given $ delta,
//                           targeting scheme.standard_target_vcpus.
//   "oracle[:<hours>]"      OracleNextPricePolicy with an optional
//                           lookahead (default 8h).

struct PolicyEnv {
  const InstanceTypeCatalog* catalog = nullptr;
  const TraceStore* traces = nullptr;
  const EvictionModel* estimator = nullptr;
};

using PolicyFactory = std::function<std::unique_ptr<AcquisitionPolicy>()>;

// Returns a factory for `spec`, or nullptr (with *error set when error
// is non-null) for an unrecognized/ill-formed spec. The factory captures
// the PolicyEnv pointers by value; they must outlive every instance.
PolicyFactory MakePolicyFactory(const std::string& spec, const PolicyEnv& env,
                                const SchemeConfig& scheme, std::string* error = nullptr);

// The spec strings MakePolicyFactory understands, for --list_policies.
std::vector<std::string> KnownPolicySpecs();

}  // namespace backtest
}  // namespace proteus

#endif  // SRC_BACKTEST_POLICIES_H_
