#include "src/backtest/backtest_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <thread>

#include "src/common/csv.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"

namespace proteus {
namespace backtest {

namespace {

std::uint64_t Fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::string Fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace

std::uint64_t BacktestEngine::CellSeed(std::uint64_t base, const std::string& policy,
                                       const std::string& instance_type, int window) {
  std::uint64_t h = 0xCBF29CE484222325ULL ^ base;
  h = Fnv1a(h, policy.data(), policy.size());
  h = Fnv1a(h, instance_type.data(), instance_type.size());
  const std::uint64_t w = static_cast<std::uint64_t>(window);
  h = Fnv1a(h, &w, sizeof(w));
  return SplitMix64(h);
}

BacktestEngine::BacktestEngine(const InstanceTypeCatalog* catalog, const TraceStore* traces,
                               const EvictionModel* estimator)
    : catalog_(catalog), traces_(traces), estimator_(estimator) {
  PROTEUS_CHECK(catalog_ != nullptr);
  PROTEUS_CHECK(traces_ != nullptr);
  PROTEUS_CHECK(estimator_ != nullptr);
}

void BacktestEngine::SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
}

void BacktestEngine::RegisterPolicy(PolicyFactory factory, std::string label) {
  PROTEUS_CHECK(factory != nullptr);
  std::string name = label.empty() ? factory()->name() : std::move(label);
  PROTEUS_CHECK(name.find(',') == std::string::npos)
      << "policy name must be CSV-safe: " << name;
  PROTEUS_CHECK(name.find('\n') == std::string::npos);
  policies_.push_back(std::move(factory));
  names_.push_back(std::move(name));
}

bool BacktestEngine::RegisterPolicySpec(const std::string& spec, const SchemeConfig& scheme,
                                        std::string* error, std::string label) {
  PolicyEnv env{catalog_, traces_, estimator_};
  PolicyFactory factory = MakePolicyFactory(spec, env, scheme, error);
  if (factory == nullptr) {
    return false;
  }
  RegisterPolicy(std::move(factory), std::move(label));
  return true;
}

BacktestReport BacktestEngine::Run(const BacktestConfig& config) const {
  PROTEUS_CHECK(!policies_.empty()) << "register at least one policy";
  PROTEUS_CHECK(!config.reference_types.empty());

  // --- Window grid ---
  std::vector<SimTime> window_starts = config.explicit_starts;
  if (window_starts.empty()) {
    PROTEUS_CHECK_GT(config.windows, 0);
    const SimDuration span = config.eval_end - config.eval_begin;
    PROTEUS_CHECK_GE(span, config.window_duration)
        << "evaluation span shorter than one window";
    SimDuration stride = config.stride;
    if (stride <= 0.0) {
      stride = config.windows > 1 ? (span - config.window_duration) / (config.windows - 1) : 0.0;
    }
    for (int w = 0; w < config.windows; ++w) {
      window_starts.push_back(config.eval_begin + w * stride);
    }
  }

  // --- Cell plan (policy-major, then type, then window) ---
  struct CellPlan {
    std::size_t policy = 0;
    std::size_t type = 0;
    int window = 0;
    SimTime window_start = 0.0;
    std::uint64_t seed = 0;
  };
  std::vector<CellPlan> plan;
  plan.reserve(policies_.size() * config.reference_types.size() * window_starts.size());
  for (std::size_t p = 0; p < policies_.size(); ++p) {
    for (std::size_t ty = 0; ty < config.reference_types.size(); ++ty) {
      for (std::size_t w = 0; w < window_starts.size(); ++w) {
        CellPlan cell;
        cell.policy = p;
        cell.type = ty;
        cell.window = static_cast<int>(w);
        cell.window_start = window_starts[w];
        cell.seed = CellSeed(config.seed, names_[p], config.reference_types[ty], cell.window);
        plan.push_back(cell);
      }
    }
  }

  // Job specs per reference type (shared across cells).
  std::vector<JobSpec> specs;
  specs.reserve(config.reference_types.size());
  for (const std::string& type : config.reference_types) {
    specs.push_back(JobSpec::ForReferenceDuration(*catalog_, type, config.reference_count,
                                                  config.window_duration,
                                                  config.reference_phi));
  }

  BacktestReport report;
  report.cells.resize(plan.size());
  const unsigned hw = std::thread::hardware_concurrency();
  report.threads_used =
      config.threads > 0 ? config.threads : static_cast<int>(hw > 0 ? hw : 1);

  // --- Parallel fan-out: each cell writes only its own slot ---
  const JobSimulator sim(catalog_, traces_, estimator_);
  const auto wall_begin = std::chrono::steady_clock::now();
  {
    ThreadPool pool(static_cast<std::size_t>(report.threads_used));
    pool.ParallelFor(plan.size(), [&](std::size_t i) {
      const CellPlan& cell = plan[i];
      const std::unique_ptr<AcquisitionPolicy> policy = policies_[cell.policy]();
      Rng rng(cell.seed);
      SimTime start = cell.window_start;
      if (config.start_jitter > 0.0) {
        start += rng.Uniform(0.0, config.start_jitter);
      }
      const JobResult run = sim.Run(*policy, specs[cell.type], config.scheme, start);

      BacktestCellResult& out = report.cells[i];
      out.policy = names_[cell.policy];
      out.instance_type = config.reference_types[cell.type];
      out.window = cell.window;
      out.start = start;
      out.cell_seed = cell.seed;
      out.completed = run.completed;
      out.cost = run.bill.cost;
      out.work = run.work_done;
      out.cost_per_work = run.work_done > 0.0 ? run.bill.cost / run.work_done : 0.0;
      out.runtime = run.runtime;
      out.evictions = run.evictions;
      out.acquisitions = run.acquisitions;
      out.on_demand_hours = run.bill.on_demand_hours;
      out.spot_paid_hours = run.bill.spot_paid_hours;
      out.free_hours = run.bill.free_hours;
      out.machine_hours = run.bill.TotalHours();
      out.free_fraction = out.machine_hours > 0.0 ? out.free_hours / out.machine_hours : 0.0;
    });
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_begin).count();

  // --- Aggregates (registration order; means over completed cells) ---
  report.aggregates.resize(policies_.size());
  for (std::size_t p = 0; p < policies_.size(); ++p) {
    report.aggregates[p].policy = names_[p];
  }
  for (std::size_t i = 0; i < plan.size(); ++i) {
    BacktestPolicyAggregate& agg = report.aggregates[plan[i].policy];
    const BacktestCellResult& cell = report.cells[i];
    ++agg.cells;
    agg.total_machine_hours += cell.machine_hours;
    if (!cell.completed) {
      continue;
    }
    ++agg.completed;
    agg.mean_cost += cell.cost;
    agg.mean_runtime += cell.runtime;
    agg.mean_evictions += cell.evictions;
    agg.mean_acquisitions += cell.acquisitions;
    agg.mean_cost_per_work += cell.cost_per_work;
    agg.mean_free_fraction += cell.free_fraction;
  }
  const AcquisitionPolicy* baseline = nullptr;
  std::size_t baseline_index = 0;
  std::vector<std::unique_ptr<AcquisitionPolicy>> probes;
  for (std::size_t p = 0; p < policies_.size(); ++p) {
    BacktestPolicyAggregate& agg = report.aggregates[p];
    if (agg.completed > 0) {
      agg.mean_cost /= agg.completed;
      agg.mean_runtime /= agg.completed;
      agg.mean_evictions /= agg.completed;
      agg.mean_acquisitions /= agg.completed;
      agg.mean_cost_per_work /= agg.completed;
      agg.mean_free_fraction /= agg.completed;
    }
    probes.push_back(policies_[p]());
    if (baseline == nullptr && probes.back()->OnDemandDoesWork()) {
      baseline = probes.back().get();
      baseline_index = p;
    }
  }
  if (baseline != nullptr && report.aggregates[baseline_index].mean_cost > 0.0) {
    const double base_cost = report.aggregates[baseline_index].mean_cost;
    for (BacktestPolicyAggregate& agg : report.aggregates) {
      agg.cost_vs_on_demand = agg.completed > 0 ? agg.mean_cost / base_cost : 0.0;
    }
  }

  // Ranking: cheapest completed mean cost first; policies with no
  // completed cells sink to the bottom.
  report.ranking.resize(report.aggregates.size());
  std::iota(report.ranking.begin(), report.ranking.end(), 0u);
  std::stable_sort(report.ranking.begin(), report.ranking.end(),
                   [&](std::size_t a, std::size_t b) {
                     const auto& aa = report.aggregates[a];
                     const auto& bb = report.aggregates[b];
                     if ((aa.completed > 0) != (bb.completed > 0)) {
                       return aa.completed > 0;
                     }
                     return aa.mean_cost < bb.mean_cost;
                   });

  // --- Observability (deterministic: after the join, in cell order) ---
  if (metrics_ != nullptr) {
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
      const BacktestCellResult& cell = report.cells[i];
      const obs::Labels labels = {{"policy", cell.policy}};
      metrics_->GetCounter("backtest.cells", labels)->Increment();
      if (!cell.completed) {
        metrics_->GetCounter("backtest.cells.incomplete", labels)->Increment();
      }
      metrics_
          ->GetHistogram("backtest.cell.cost",
                         {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0}, labels)
          ->Observe(cell.cost);
    }
    for (const BacktestPolicyAggregate& agg : report.aggregates) {
      const obs::Labels labels = {{"policy", agg.policy}};
      metrics_->GetGauge("backtest.policy.mean_cost", labels)->Set(agg.mean_cost);
      metrics_->GetGauge("backtest.policy.mean_cost_per_work", labels)
          ->Set(agg.mean_cost_per_work);
      metrics_->GetGauge("backtest.policy.free_fraction", labels)->Set(agg.mean_free_fraction);
      metrics_->GetGauge("backtest.policy.machine_hours", labels)->Set(agg.total_machine_hours);
    }
  }
  if (tracer_ != nullptr) {
    for (const BacktestCellResult& cell : report.cells) {
      tracer_->InstantAt(cell.start, "cell", "backtest",
                         {{"policy", cell.policy},
                          {"window", static_cast<std::int64_t>(cell.window)},
                          {"type", cell.instance_type},
                          {"cost", cell.cost},
                          {"E_A", cell.cost_per_work},
                          {"completed", static_cast<std::int64_t>(cell.completed ? 1 : 0)}});
    }
  }
  return report;
}

std::string BacktestReport::ToCsv() const {
  CsvWriter csv({"policy", "instance_type", "window", "start_hours", "cell_seed", "completed",
                 "cost", "work", "cost_per_work", "runtime_hours", "evictions", "acquisitions",
                 "machine_hours", "on_demand_hours", "spot_paid_hours", "free_hours",
                 "free_fraction"});
  for (const BacktestCellResult& cell : cells) {
    csv.AddRow({cell.policy, cell.instance_type, std::to_string(cell.window),
                Fixed(cell.start / kHour, 6), std::to_string(cell.cell_seed),
                cell.completed ? "1" : "0", Fixed(cell.cost, 6), Fixed(cell.work, 4),
                Fixed(cell.cost_per_work, 8), Fixed(cell.runtime / kHour, 6),
                std::to_string(cell.evictions), std::to_string(cell.acquisitions),
                Fixed(cell.machine_hours, 4), Fixed(cell.on_demand_hours, 4),
                Fixed(cell.spot_paid_hours, 4), Fixed(cell.free_hours, 4),
                Fixed(cell.free_fraction, 6)});
  }
  return csv.Render();
}

TextTable BacktestReport::RankedTable() const {
  TextTable table({"rank", "policy", "avg cost ($)", "vs on-demand", "avg E_A ($/work)",
                   "avg runtime (h)", "avg evictions", "free share", "machine-hours",
                   "cells"});
  int rank = 1;
  for (const std::size_t index : ranking) {
    const BacktestPolicyAggregate& agg = aggregates[index];
    table.AddRow({std::to_string(rank++), agg.policy, TextTable::Cell(agg.mean_cost, 2),
                  agg.cost_vs_on_demand > 0.0
                      ? TextTable::Cell(100.0 * agg.cost_vs_on_demand, 0) + "%"
                      : std::string("-"),
                  TextTable::Cell(agg.mean_cost_per_work, 4),
                  TextTable::Cell(agg.mean_runtime / kHour, 2),
                  TextTable::Cell(agg.mean_evictions, 1),
                  TextTable::Cell(100.0 * agg.mean_free_fraction, 0) + "%",
                  TextTable::Cell(agg.total_machine_hours, 1),
                  std::to_string(agg.completed) + "/" + std::to_string(agg.cells)});
  }
  return table;
}

const BacktestPolicyAggregate* BacktestReport::Find(const std::string& policy) const {
  for (const BacktestPolicyAggregate& agg : aggregates) {
    if (agg.policy == policy) {
      return &agg;
    }
  }
  return nullptr;
}

}  // namespace backtest
}  // namespace proteus
