#include "src/backtest/policies.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "src/bidbrain/bidbrain.h"
#include "src/bidbrain/tier_policy.h"
#include "src/common/logging.h"

namespace proteus {
namespace backtest {

namespace {

int LiveSpotVcpus(const InstanceTypeCatalog& catalog, const std::vector<LiveAllocation>& live) {
  int vcpus = 0;
  for (const LiveAllocation& alloc : live) {
    if (alloc.on_demand) {
      continue;
    }
    const InstanceType* type = catalog.Find(alloc.market.instance_type);
    if (type != nullptr) {
      vcpus += alloc.count * type->vcpus;
    }
  }
  return vcpus;
}

}  // namespace

std::vector<BidAction> OnDemandOnlyPolicy::Decide(SimTime /*now*/,
                                                  const std::vector<LiveAllocation>& /*live*/)
    const {
  return {};
}

FixedDeltaSpotPolicy::FixedDeltaSpotPolicy(const InstanceTypeCatalog* catalog,
                                           const TraceStore* prices, Money bid_delta,
                                           int target_vcpus)
    : catalog_(catalog), prices_(prices), bid_delta_(bid_delta), target_vcpus_(target_vcpus) {
  PROTEUS_CHECK(catalog_ != nullptr);
  PROTEUS_CHECK(prices_ != nullptr);
  PROTEUS_CHECK_GE(bid_delta_, 0.0);
  PROTEUS_CHECK_GT(target_vcpus_, 0);
}

std::string FixedDeltaSpotPolicy::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "fixed_delta_%.4f", bid_delta_);
  return buf;
}

std::vector<BidAction> FixedDeltaSpotPolicy::Decide(
    SimTime now, const std::vector<LiveAllocation>& live) const {
  const int deficit = target_vcpus_ - LiveSpotVcpus(*catalog_, live);
  if (deficit <= 0) {
    return {};
  }
  // Cheapest market by price per vCPU right now.
  const MarketKey* best = nullptr;
  double best_ppc = std::numeric_limits<double>::infinity();
  Money best_price = 0.0;
  const std::vector<MarketKey> markets = prices_->Keys();
  for (const MarketKey& key : markets) {
    const InstanceType* type = catalog_->Find(key.instance_type);
    if (type == nullptr) {
      continue;
    }
    const Money price = prices_->Get(key).PriceAt(now);
    const double ppc = price / type->vcpus;
    if (ppc < best_ppc) {
      best_ppc = ppc;
      best = &key;
      best_price = price;
    }
  }
  if (best == nullptr) {
    return {};
  }
  const InstanceType& type = catalog_->Get(best->instance_type);
  const int count = (deficit + type.vcpus - 1) / type.vcpus;
  return {{BidAction::Kind::kAcquire, *best, count, best_price + bid_delta_,
           kInvalidAllocation}};
}

OracleNextPricePolicy::OracleNextPricePolicy(const InstanceTypeCatalog* catalog,
                                             const TraceStore* prices, int target_vcpus,
                                             SimDuration lookahead)
    : catalog_(catalog), prices_(prices), target_vcpus_(target_vcpus), lookahead_(lookahead) {
  PROTEUS_CHECK(catalog_ != nullptr);
  PROTEUS_CHECK(prices_ != nullptr);
  PROTEUS_CHECK_GT(target_vcpus_, 0);
  PROTEUS_CHECK_GT(lookahead_, 0.0);
}

std::vector<BidAction> OracleNextPricePolicy::Decide(
    SimTime now, const std::vector<LiveAllocation>& live) const {
  const int deficit = target_vcpus_ - LiveSpotVcpus(*catalog_, live);
  if (deficit <= 0) {
    return {};
  }
  // Hindsight market choice: rank by the time-weighted average of the
  // prices actually coming over the lookahead (hour starts are what get
  // billed, so the average tracks the true cost of staying put).
  const MarketKey* best = nullptr;
  double best_appc = std::numeric_limits<double>::infinity();
  const std::vector<MarketKey> markets = prices_->Keys();
  for (const MarketKey& key : markets) {
    const InstanceType* type = catalog_->Find(key.instance_type);
    if (type == nullptr) {
      continue;
    }
    const double avg = prices_->Get(key).AveragePrice(now, now + lookahead_);
    const double appc = avg / type->vcpus;
    if (appc < best_appc) {
      best_appc = appc;
      best = &key;
    }
  }
  if (best == nullptr) {
    return {};
  }
  const InstanceType& type = catalog_->Get(best->instance_type);
  const PriceSeries& series = prices_->Get(*best);
  // Eviction requires price > bid (strict), so bidding the lookahead
  // maximum guarantees survival through the horizon.
  const Money bid = series.MaxPrice(now, now + lookahead_);
  if (series.PriceAt(now) > bid) {
    return {};  // Defensive; cannot happen for a max over [now, ...].
  }
  const int count = (deficit + type.vcpus - 1) / type.vcpus;
  return {{BidAction::Kind::kAcquire, *best, count, bid, kInvalidAllocation}};
}

PolicyFactory MakePolicyFactory(const std::string& spec, const PolicyEnv& env,
                                const SchemeConfig& scheme, std::string* error) {
  PROTEUS_CHECK(env.catalog != nullptr);
  PROTEUS_CHECK(env.traces != nullptr);
  auto fail = [&](const std::string& message) -> PolicyFactory {
    if (error != nullptr) {
      *error = message;
    }
    return nullptr;
  };

  if (spec == "bidbrain") {
    if (env.estimator == nullptr) {
      return fail("bidbrain policy needs a trained EvictionModel in PolicyEnv");
    }
    const BidBrainConfig config = scheme.bidbrain;
    return [env, config] {
      return std::make_unique<BidBrain>(env.catalog, env.traces, env.estimator, config);
    };
  }
  if (spec == "on_demand") {
    return [] { return std::make_unique<OnDemandOnlyPolicy>(); };
  }
  const std::string fixed_prefix = "fixed_delta:";
  if (spec.rfind(fixed_prefix, 0) == 0) {
    char* end = nullptr;
    const std::string arg = spec.substr(fixed_prefix.size());
    const double delta = std::strtod(arg.c_str(), &end);
    if (arg.empty() || end == nullptr || *end != '\0' || delta < 0.0) {
      return fail("bad fixed_delta spec '" + spec + "' (want fixed_delta:<dollars>)");
    }
    const int target = scheme.standard_target_vcpus;
    return [env, delta, target] {
      return std::make_unique<FixedDeltaSpotPolicy>(env.catalog, env.traces, delta, target);
    };
  }
  if (spec == "oracle" || spec.rfind("oracle:", 0) == 0) {
    SimDuration lookahead = 8 * kHour;
    if (spec != "oracle") {
      char* end = nullptr;
      const std::string arg = spec.substr(7);
      const double hours = std::strtod(arg.c_str(), &end);
      if (arg.empty() || end == nullptr || *end != '\0' || hours <= 0.0) {
        return fail("bad oracle spec '" + spec + "' (want oracle[:<lookahead hours>])");
      }
      lookahead = hours * kHour;
    }
    const int target = scheme.standard_target_vcpus;
    return [env, target, lookahead] {
      return std::make_unique<OracleNextPricePolicy>(env.catalog, env.traces, target, lookahead);
    };
  }
  if (spec == "tiered" || spec.rfind("tiered:", 0) == 0) {
    if (env.estimator == nullptr) {
      return fail("tiered policy needs a trained EvictionModel in PolicyEnv");
    }
    TieredPolicyConfig config;
    config.target_vcpus = scheme.standard_target_vcpus;
    config.reliable_type = scheme.on_demand_type;
    if (spec != "tiered") {
      char* end = nullptr;
      const std::string arg = spec.substr(7);
      const double beta = std::strtod(arg.c_str(), &end);
      if (arg.empty() || end == nullptr || *end != '\0' || beta < 0.0 || beta > 1.0) {
        return fail("bad tiered spec '" + spec + "' (want tiered[:<serverless beta in [0,1]>])");
      }
      config.serverless_beta = beta;
    }
    return [env, config] {
      return std::make_unique<TieredAcquisitionPolicy>(env.catalog, env.traces, env.estimator,
                                                       config);
    };
  }
  return fail("unknown policy spec '" + spec + "'");
}

std::vector<std::string> KnownPolicySpecs() {
  return {"bidbrain", "on_demand", "fixed_delta:<dollars>", "oracle[:<lookahead hours>]",
          "tiered[:<serverless beta>]"};
}

}  // namespace backtest
}  // namespace proteus
