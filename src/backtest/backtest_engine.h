// BacktestEngine: parallel what-if replay of acquisition policies over
// stored spot-price traces (DESIGN.md §9).
//
// The engine enumerates (policy x reference-instance-type x window)
// cells. Each cell runs JobSimulator's policy-driven event loop — the
// exact loop the paper's kProteus scheme uses — over one sliding window
// of the traces, and produces a per-cell row of cost / work / E_A /
// evictions / free-compute / machine-hours. Cells fan out across a
// ThreadPool.
//
// Determinism rules:
//  - every cell owns a seed derived from (config.seed, policy name,
//    instance type, window index) via a fixed FNV-1a/splitmix mix, so a
//    cell's result does not depend on which thread ran it or on the
//    thread count;
//  - results land in a pre-sized vector slot per cell, so report order
//    is the enumeration order, never completion order;
//  - all aggregate and CSV output derives from those slots; same seed =>
//    byte-identical CSV at any --threads value (tests/backtest_golden_
//    test.cc holds this).
#ifndef SRC_BACKTEST_BACKTEST_ENGINE_H_
#define SRC_BACKTEST_BACKTEST_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/backtest/policies.h"
#include "src/common/table.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/proteus/job_simulator.h"

namespace proteus {
namespace backtest {

struct BacktestConfig {
  // Evaluation span; windows slide over it. Ignored when explicit_starts
  // is set.
  SimTime eval_begin = 0.0;
  SimTime eval_end = 0.0;
  int windows = 8;
  // Each window's job is sized to keep the reference cluster busy for
  // this long (JobSpec::ForReferenceDuration); runs may finish earlier
  // or later depending on the policy.
  SimDuration window_duration = 2 * kHour;
  // Gap between consecutive window starts; 0 spreads the windows evenly
  // so the last one ends at eval_end.
  SimDuration stride = 0.0;
  // Explicit window starts (overrides the sliding grid when non-empty).
  std::vector<SimTime> explicit_starts;
  // Each cell's job start is its window start plus Uniform(0, jitter)
  // drawn from the cell's own seeded Rng.
  SimDuration start_jitter = 0.0;

  // Variant axis: one cell column per reference instance type.
  std::vector<std::string> reference_types = {"c4.2xlarge"};
  int reference_count = 64;
  double reference_phi = 0.95;

  // Scheme knobs shared by every cell (BidBrain config, profiles,
  // capacity targets, decision cadence).
  SchemeConfig scheme;

  std::uint64_t seed = 2016;
  // Worker threads for the fan-out; 0 = hardware concurrency.
  int threads = 0;
};

struct BacktestCellResult {
  std::string policy;
  std::string instance_type;
  int window = 0;
  SimTime start = 0.0;  // Actual job start (window start + jitter).
  std::uint64_t cell_seed = 0;
  bool completed = false;
  Money cost = 0.0;
  WorkUnits work = 0.0;
  double cost_per_work = 0.0;  // E_A realized: cost / work (0 if no work).
  SimDuration runtime = 0.0;
  int evictions = 0;
  int acquisitions = 0;
  double machine_hours = 0.0;
  double on_demand_hours = 0.0;
  double spot_paid_hours = 0.0;
  double free_hours = 0.0;
  double free_fraction = 0.0;  // free_hours / total machine-hours.
};

struct BacktestPolicyAggregate {
  std::string policy;
  int cells = 0;
  int completed = 0;
  // Means over completed cells (matching the cost benches' convention).
  double mean_cost = 0.0;
  double mean_runtime = 0.0;
  double mean_evictions = 0.0;
  double mean_acquisitions = 0.0;
  double mean_cost_per_work = 0.0;
  double mean_free_fraction = 0.0;
  double total_machine_hours = 0.0;
  // mean_cost / on-demand baseline's mean_cost; 0 when no baseline
  // policy (one with OnDemandDoesWork()) is registered.
  double cost_vs_on_demand = 0.0;
};

struct BacktestReport {
  std::vector<BacktestCellResult> cells;            // Enumeration order.
  std::vector<BacktestPolicyAggregate> aggregates;  // Registration order.
  std::vector<std::size_t> ranking;  // Indices into aggregates, cheapest first.
  int threads_used = 0;
  double wall_seconds = 0.0;

  // Per-cell rows; byte-identical for same seed at any thread count.
  std::string ToCsv() const;
  // Ranked policy comparison as a printable table.
  TextTable RankedTable() const;

  const BacktestPolicyAggregate* Find(const std::string& policy) const;
};

class BacktestEngine {
 public:
  BacktestEngine(const InstanceTypeCatalog* catalog, const TraceStore* traces,
                 const EvictionModel* estimator);

  // Optional sinks: per-cell instants land on the "backtest" track and
  // per-policy counters/histograms/gauges in the registry. Recorded
  // after the parallel section, in enumeration order, so observability
  // output is deterministic too.
  void SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  // Registers a policy. `label` overrides the instance's name() in
  // reports (empty keeps it). The factory is invoked once per cell, on
  // the worker thread running that cell; it must be thread-safe and the
  // data it captures must stay alive for every Run().
  void RegisterPolicy(PolicyFactory factory, std::string label = "");
  // Registers via textual spec (see policies.h). Returns false and sets
  // *error on a bad spec.
  bool RegisterPolicySpec(const std::string& spec, const SchemeConfig& scheme,
                          std::string* error = nullptr, std::string label = "");

  std::size_t policy_count() const { return policies_.size(); }
  const std::vector<std::string>& policy_names() const { return names_; }

  BacktestReport Run(const BacktestConfig& config) const;

  // The deterministic per-cell seed mix (exposed for tests).
  static std::uint64_t CellSeed(std::uint64_t base, const std::string& policy,
                                const std::string& instance_type, int window);

 private:
  const InstanceTypeCatalog* catalog_;
  const TraceStore* traces_;
  const EvictionModel* estimator_;
  std::vector<PolicyFactory> policies_;
  std::vector<std::string> names_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace backtest
}  // namespace proteus

#endif  // SRC_BACKTEST_BACKTEST_ENGINE_H_
