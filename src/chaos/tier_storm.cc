#include "src/chaos/tier_storm.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "src/common/logging.h"

namespace proteus {

namespace {

std::uint64_t Fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xFF)) * 0x100000001B3ULL;
  }
  return h;
}

// Canonical solution-state fingerprint: every shard's checkpoint blob
// plus the clock (same definition as the crash/restart driver).
// Lost-clock accounting is deliberately excluded — it legitimately
// differs across a storm while the model bytes must not.
std::uint64_t StateDigest(const AgileMLRuntime& runtime) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (int s = 0; s < runtime.model().shards(); ++s) {
    for (const std::uint8_t byte : runtime.model().SerializeShardCheckpoint(s)) {
      h = (h ^ byte) * 0x100000001B3ULL;
    }
  }
  return Fnv1a(h, static_cast<std::uint64_t>(runtime.clock()));
}

std::vector<NodeInfo> InitialNodes(const TierStormConfig& config) {
  std::vector<NodeInfo> nodes;
  NodeId id = 0;
  for (int i = 0; i < config.initial_reliable; ++i) {
    nodes.push_back({id++, Tier::kReliable, 8, kInvalidAllocation});
  }
  for (int a = 0; a < config.initial_transient_allocations; ++a) {
    for (int i = 0; i < config.nodes_per_allocation; ++i) {
      nodes.push_back({id++, Tier::kTransient, 8, static_cast<AllocationId>(a)});
    }
  }
  // The serverless tier: burstable worker-only slots in one allocation.
  const AllocationId serverless_alloc =
      static_cast<AllocationId>(config.initial_transient_allocations);
  for (int i = 0; i < config.initial_serverless; ++i) {
    nodes.push_back({id++, Tier::kServerless, 2, serverless_alloc});
  }
  return nodes;
}

class TierStormDriver {
 public:
  TierStormDriver(MLApp* app, const TierStormConfig& config,
                  obs::Tracer* tracer, obs::MetricsRegistry* metrics)
      : app_(app), config_(config), tracer_(tracer), metrics_(metrics) {
    PROTEUS_CHECK(app_ != nullptr);
    PROTEUS_CHECK_GE(config_.initial_reliable, 2)
        << "storm scenarios need a reliable survivor";
    PROTEUS_CHECK_GE(config_.initial_serverless, 1);
    PROTEUS_CHECK_GE(config_.storm_at, 1);
    // The last boundaries are left for the detector to confirm the storm
    // (and, for kFullWipe, for the cross-tier hit one boundary later).
    PROTEUS_CHECK_LT(config_.storm_at + 3, config_.horizon);

    // Zero warning means only the heartbeat detector can notice the
    // storm: it is always armed here, as in production.
    if (!config_.agileml.detector.enabled) {
      config_.agileml.detector.enabled = true;
      config_.agileml.detector.suspect_after = 1;
      config_.agileml.detector.confirm_after = 3;
    }
    // The TierGuard audits exposure at every clock; give it a bound the
    // initial composition satisfies so any breach is a real violation.
    if (!config_.agileml.tier_guard.enabled) {
      config_.agileml.tier_guard.enabled = true;
      config_.agileml.tier_guard.max_worker_fraction = 0.5;
      config_.agileml.tier_guard.max_unsynced_clocks_exposed =
          std::max(4, config_.agileml.backup_sync_every);
    }

    result_.scenario = config_.scenario;
    runtime_ = std::make_unique<AgileMLRuntime>(app_, config_.agileml,
                                                InitialNodes(config_));
    auditor_ = std::make_unique<ConsistencyAuditor>(runtime_.get());
    store_ = std::make_unique<CheckpointStore>(
        &device_, CheckpointStoreConfig{config_.durable_retain});
    recovery_ = std::make_unique<RecoveryManager>(
        runtime_.get(), store_.get(),
        RecoveryManagerConfig{config_.checkpoint_every, /*scrub_every=*/0});
    if (tracer_ != nullptr || metrics_ != nullptr) {
      runtime_->SetObservability(tracer_, metrics_);
      auditor_->SetObservability(tracer_, metrics_);
      recovery_->SetObservability(tracer_, metrics_);
    }
    // Start-up insurance, as in production: a committed durable epoch
    // exists before the first clock runs.
    recovery_->ForceCheckpoint();
    RecordEpochDigest();
  }

  TierStormResult Run() {
    for (Clock boundary = 0; boundary < config_.horizon; ++boundary) {
      if (boundary == config_.storm_at) {
        Storm();
      }
      if (config_.scenario == TierStormScenario::kFullWipe &&
          boundary == config_.storm_at + 1) {
        // The cross-tier hit lands one boundary later, while every
        // serverless revocation is still awaiting detector confirmation:
        // the storm is genuinely mid-round.
        FullWipe();
      }
      const IterationReport report = runtime_->RunClock();
      for (const NodeId id : report.confirmed_dead) {
        if (storm_victims_.count(id) > 0) {
          ++result_.confirmed_serverless;
        }
      }
      // Detector-confirmed storms roll back to the last active->backup
      // sync at the end of the confirming clock; the digest is checked
      // at that exact instant, before anything else runs.
      if (awaiting_confirm_ && !report.confirmed_dead.empty()) {
        awaiting_confirm_ = false;
        result_.depth = RecoveryDepth::kBackupPromotion;
        result_.post_recovery_digest = StateDigest(*runtime_);
        result_.digest_match =
            result_.post_recovery_digest == result_.expected_digest;
      }
      auditor_->ObserveClock();
      recovery_->OnClockBoundary();
      RecordEpochDigest();
      // The BackupPS copy equals the active state at the moment of the
      // last sync; that digest is the storm's rollback reference.
      if (runtime_->roles().UsesBackups() &&
          runtime_->clock() == runtime_->last_sync_clock()) {
        sync_digest_ = StateDigest(*runtime_);
        has_sync_digest_ = true;
      }
    }
    result_.lost_clocks = runtime_->lost_clocks_total();
    result_.final_clock = runtime_->clock();
    for (const AuditViolation& v : auditor_->violations()) {
      result_.violations.push_back(v);
    }
    return result_;
  }

 private:
  // Commits are keyed by epoch; remember the state digest at each commit
  // so a durable restore can be checked byte for byte.
  void RecordEpochDigest() {
    const std::uint64_t epoch = store_->last_committed_epoch();
    if (epoch != 0 && epoch_digests_.find(epoch) == epoch_digests_.end()) {
      epoch_digests_[epoch] = StateDigest(*runtime_);
    }
  }

  // Revokes every ready serverless node in the same instant — data and
  // control plane dead at once, no notice of any kind. The nodes stay in
  // the membership until the detector confirms them; no Evict() (warned
  // drain) is ever issued for them, and the runtime CHECK-fails if one
  // were.
  void RevokeServerlessTier() {
    std::vector<NodeId> victims;
    for (const NodeInfo& node : runtime_->nodes()) {
      if (node.serverless() && runtime_->IsReadyNode(node.id)) {
        victims.push_back(node.id);
      }
    }
    PROTEUS_CHECK(!victims.empty())
        << "storm fired with no ready serverless nodes";
    for (const NodeId id : victims) {
      runtime_->SetNodeRevoked(id);
      storm_victims_.insert(id);
      ++result_.storm_victims;
    }
  }

  void Storm() {
    switch (config_.scenario) {
      case TierStormScenario::kServerlessWipe: {
        PROTEUS_CHECK(has_sync_digest_)
            << "storm fired before the first active->backup sync";
        RevokeServerlessTier();
        result_.expected_digest = sync_digest_;
        awaiting_confirm_ = true;
        break;
      }
      case TierStormScenario::kCrossTierSpot: {
        PROTEUS_CHECK(has_sync_digest_)
            << "storm fired before the first active->backup sync";
        RevokeServerlessTier();
        // The storm crosses tiers: ActivePS-hosting spot nodes go
        // silently dark in the same instant (blackhole — heartbeats
        // stop, no notice). One detector batch confirms both tiers.
        const RoleAssignment& roles = runtime_->roles();
        std::vector<NodeId> spot;
        for (const NodeInfo& node : runtime_->ReadyNodes()) {
          if (node.tier == Tier::kTransient) {
            spot.push_back(node.id);
          }
        }
        std::stable_sort(spot.begin(), spot.end(),
                         [&roles](NodeId a, NodeId b) {
                           int held_a = 0;
                           int held_b = 0;
                           for (const auto& [partition, owner] : roles.server) {
                             held_a += owner == a;
                             held_b += owner == b;
                           }
                           return held_a > held_b;
                         });
        const std::size_t count = std::min<std::size_t>(2, spot.size());
        for (std::size_t i = 0; i < count; ++i) {
          runtime_->SetNodeSilent(spot[i], true);
          ++result_.spot_victims;
        }
        result_.expected_digest = sync_digest_;
        awaiting_confirm_ = true;
        break;
      }
      case TierStormScenario::kBackupHolderOverlap: {
        // The serverless wipe overlaps a reliable pure-backup holder
        // dying. The backup is rebuilt from the active copy (depth 2):
        // the active state never moves, so recovery must leave the
        // digest bit-for-bit where it was immediately before the crash —
        // even with every serverless revocation still unconfirmed.
        RevokeServerlessTier();
        const RoleAssignment& roles = runtime_->roles();
        PROTEUS_CHECK(roles.UsesBackups())
            << "backup-overlap scenario needs stage 2/3 at the storm point";
        std::set<NodeId> servers;
        for (const auto& [partition, owner] : roles.server) {
          servers.insert(owner);
        }
        NodeId victim = kInvalidNode;
        for (const auto& [partition, owner] : roles.backup) {
          if (servers.count(owner) == 0 &&
              (victim == kInvalidNode || owner < victim)) {
            victim = owner;
          }
        }
        PROTEUS_CHECK(victim != kInvalidNode)
            << "no pure-backup holder to kill at the storm point";
        result_.expected_digest = StateDigest(*runtime_);
        const RecoveryOutcome outcome = recovery_->Recover({victim});
        result_.depth = outcome.depth;
        result_.post_recovery_digest = StateDigest(*runtime_);
        result_.digest_match =
            result_.post_recovery_digest == result_.expected_digest;
        break;
      }
      case TierStormScenario::kFullWipe:
        // First hit: the whole serverless tier, zero warning. The
        // cross-tier event follows one boundary later (see Run()).
        RevokeServerlessTier();
        break;
    }
  }

  // The storm's second front: every spot node AND the reliable nodes
  // holding active/backup state die together with the still-unconfirmed
  // serverless tier. The in-memory checkpoint lived on the dead reliable
  // machines, so recovery must come from the durable store.
  void FullWipe() {
    std::vector<NodeId> reliable;
    std::vector<NodeId> victims;
    for (const NodeInfo& node : runtime_->nodes()) {
      if (node.reliable()) {
        reliable.push_back(node.id);
      } else if (node.tier == Tier::kTransient) {
        victims.push_back(node.id);
      }
    }
    PROTEUS_CHECK_GE(reliable.size(), 2u)
        << "full-wipe scenario needs a reliable survivor";
    // The pending serverless revocations are part of the same blast.
    victims.insert(victims.end(), storm_victims_.begin(), storm_victims_.end());
    // Reliable victims carrying the most solution state die first, so
    // the wipeout reaches the bottom of the escalation ladder.
    const RoleAssignment& roles = runtime_->roles();
    std::stable_sort(reliable.begin(), reliable.end(),
                     [&roles](NodeId a, NodeId b) {
                       int held_a = 0;
                       int held_b = 0;
                       for (const auto& [partition, owner] : roles.server) {
                         held_a += owner == a;
                         held_b += owner == b;
                       }
                       for (const auto& [partition, owner] : roles.backup) {
                         held_a += owner == a;
                         held_b += owner == b;
                       }
                       return held_a > held_b;
                     });
    victims.insert(victims.end(), reliable.begin(), reliable.end() - 1);
    PROTEUS_CHECK(recovery_->Classify(victims) == RecoveryDepth::kDurableRestore)
        << "full wipe did not reach the durable tier";
    runtime_->DropCheckpoint();
    const RecoveryOutcome outcome = recovery_->Recover(victims);
    result_.depth = outcome.depth;
    result_.durable_epoch = outcome.durable_epoch;
    const auto it = epoch_digests_.find(outcome.durable_epoch);
    PROTEUS_CHECK(it != epoch_digests_.end())
        << "restored epoch " << outcome.durable_epoch
        << " was never committed by this run";
    result_.expected_digest = it->second;
    result_.post_recovery_digest = StateDigest(*runtime_);
    result_.digest_match =
        result_.post_recovery_digest == result_.expected_digest;
    // The operator replaces one dead on-demand machine; it preloads and
    // rejoins like any addition. The spot and serverless tiers stay gone.
    runtime_->AddNodes(
        {{next_node_id_++, Tier::kReliable, 8, kInvalidAllocation}});
  }

  MLApp* app_;
  TierStormConfig config_;
  obs::Tracer* tracer_;
  obs::MetricsRegistry* metrics_;

  MemDurableDevice device_;
  std::unique_ptr<AgileMLRuntime> runtime_;
  std::unique_ptr<ConsistencyAuditor> auditor_;
  std::unique_ptr<CheckpointStore> store_;
  std::unique_ptr<RecoveryManager> recovery_;

  std::map<std::uint64_t, std::uint64_t> epoch_digests_;
  std::uint64_t sync_digest_ = 0;
  bool has_sync_digest_ = false;
  bool awaiting_confirm_ = false;
  std::set<NodeId> storm_victims_;
  NodeId next_node_id_ = 10000;  // Replacement ids, clear of the initial range.

  TierStormResult result_;
};

}  // namespace

const char* TierStormScenarioName(TierStormScenario scenario) {
  switch (scenario) {
    case TierStormScenario::kServerlessWipe:
      return "serverless-wipe";
    case TierStormScenario::kCrossTierSpot:
      return "cross-tier-spot";
    case TierStormScenario::kBackupHolderOverlap:
      return "backup-holder-overlap";
    case TierStormScenario::kFullWipe:
      return "full-wipe";
  }
  return "?";
}

std::uint64_t TierStormResult::Digest() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = Fnv1a(h, static_cast<std::uint64_t>(scenario));
  h = Fnv1a(h, static_cast<std::uint64_t>(depth));
  h = Fnv1a(h, expected_digest);
  h = Fnv1a(h, post_recovery_digest);
  h = Fnv1a(h, static_cast<std::uint64_t>(digest_match));
  h = Fnv1a(h, static_cast<std::uint64_t>(storm_victims));
  h = Fnv1a(h, static_cast<std::uint64_t>(confirmed_serverless));
  h = Fnv1a(h, static_cast<std::uint64_t>(spot_victims));
  h = Fnv1a(h, static_cast<std::uint64_t>(lost_clocks));
  h = Fnv1a(h, durable_epoch);
  h = Fnv1a(h, static_cast<std::uint64_t>(final_clock));
  h = Fnv1a(h, static_cast<std::uint64_t>(violations.size()));
  return h;
}

TierStormResult RunTierStorm(MLApp* app, const TierStormConfig& config,
                             obs::Tracer* tracer,
                             obs::MetricsRegistry* metrics) {
  TierStormDriver driver(app, config, tracer, metrics);
  return driver.Run();
}

}  // namespace proteus
