#include "src/chaos/consistency_auditor.h"

#include <map>
#include <set>
#include <sstream>

#include "src/common/logging.h"

namespace proteus {

ConsistencyAuditor::ConsistencyAuditor(const AgileMLRuntime* runtime)
    : runtime_(runtime) {
  PROTEUS_CHECK(runtime_ != nullptr);
}

void ConsistencyAuditor::SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
}

void ConsistencyAuditor::SetLedger(obs::EventLedger* ledger, obs::FlightRecorder* recorder) {
  ledger_ = ledger;
  recorder_ = recorder;
}

void ConsistencyAuditor::Add(const std::string& invariant, const std::string& detail) {
  violations_.push_back({invariant, detail, runtime_->clock()});
  if (metrics_ != nullptr) {
    metrics_->GetCounter("chaos.audit.violations", {{"invariant", invariant}})->Increment();
  }
  if (tracer_ != nullptr) {
    tracer_->InstantAt(runtime_->total_time(), "audit.violation", "chaos",
                       {{"invariant", invariant},
                        {"detail", detail},
                        {"clock", static_cast<std::int64_t>(runtime_->clock())}});
  }
  if (ledger_ != nullptr) {
    // Parent to the clock whose boundary exposed the invariant break —
    // the causal chain then leads from the violation to the offending
    // clock (and through it to the fault/rollback that set it up).
    const obs::EventId violation = ledger_->RecordWithParent(
        "audit.violation", "chaos", runtime_->total_time(),
        runtime_->last_clock_event(),
        {{"invariant", invariant},
         {"detail", detail},
         {"clock", static_cast<std::int64_t>(runtime_->clock())}});
    if (recorder_ != nullptr && !dumped_) {
      dumped_ = true;
      recorder_->Dump("audit.violation: " + invariant + ": " + detail, violation);
    }
  }
}

void ConsistencyAuditor::ObserveClock() {
  CheckServingOwnership();
  CheckStaleness();
  CheckDataCoverage();
  CheckBackupLag();
  CheckProgressAccounting();
  CheckMembership();
  CheckDetector();
  CheckTierGuard();
  prev_clock_ = runtime_->clock();
  prev_lost_ = runtime_->lost_clocks_total();
  prev_credited_ = runtime_->restore_clocks_credited_total();
  has_prev_ = true;
}

void ConsistencyAuditor::CheckServingOwnership() {
  const RoleAssignment& roles = runtime_->roles();
  std::set<NodeId> ready;
  std::set<NodeId> reliable;
  for (const NodeInfo& node : runtime_->ReadyNodes()) {
    ready.insert(node.id);
    if (node.reliable()) {
      reliable.insert(node.id);
    }
  }
  const int parts = runtime_->config().num_partitions;
  if (roles.server.size() != static_cast<std::size_t>(parts)) {
    std::ostringstream out;
    out << "server map covers " << roles.server.size() << " of " << parts
        << " partitions";
    Add("serving-ownership", out.str());
  }
  for (const auto& [part, server] : roles.server) {
    if (ready.count(server) == 0) {
      std::ostringstream out;
      out << "partition " << part << " served by non-ready node " << server;
      Add("serving-ownership", out.str());
    }
    if (!roles.UsesBackups() && reliable.count(server) == 0) {
      std::ostringstream out;
      out << "stage-1 partition " << part << " served by transient node " << server;
      Add("serving-ownership", out.str());
    }
  }
  if (roles.UsesBackups()) {
    if (roles.backup.size() != static_cast<std::size_t>(parts)) {
      std::ostringstream out;
      out << "backup map covers " << roles.backup.size() << " of " << parts
          << " partitions";
      Add("serving-ownership", out.str());
    }
    for (const auto& [part, backup] : roles.backup) {
      if (reliable.count(backup) == 0) {
        std::ostringstream out;
        out << "partition " << part << " backed by non-reliable or non-ready node "
            << backup;
        Add("serving-ownership", out.str());
      }
    }
  }
}

void ConsistencyAuditor::CheckStaleness() {
  const ClockTable& table = runtime_->clock_table();
  const Clock min_clock = table.MinClock();
  for (const NodeId worker : runtime_->roles().worker_nodes) {
    if (!table.HasWorkerNode(worker)) {
      std::ostringstream out;
      out << "worker " << worker << " missing from the clock table";
      Add("ssp-staleness", out.str());
      continue;
    }
    const Clock c = table.ClockOf(worker);
    if (c - min_clock > table.staleness()) {
      std::ostringstream out;
      out << "worker " << worker << " at clock " << c << " exceeds staleness bound "
          << table.staleness() << " over min " << min_clock;
      Add("ssp-staleness", out.str());
    }
    if (c > runtime_->clock()) {
      std::ostringstream out;
      out << "worker " << worker << " at clock " << c << " ahead of global clock "
          << runtime_->clock();
      Add("ssp-staleness", out.str());
    }
  }
}

void ConsistencyAuditor::CheckDataCoverage() {
  const DataAssignment& data = runtime_->data();
  const std::set<NodeId>& workers = runtime_->roles().worker_nodes;
  if (!data.OwnershipIsComplete()) {
    Add("data-coverage", "some input block has no live owner");
  }
  for (int block = 0; block < data.num_blocks(); ++block) {
    const NodeId owner = data.OwnerOf(block);
    if (owner != kInvalidNode && workers.count(owner) == 0) {
      std::ostringstream out;
      out << "block " << block << " owned by non-worker node " << owner;
      Add("data-coverage", out.str());
    }
  }
  std::int64_t total = 0;
  for (const NodeId w : workers) {
    total += data.ItemCountOf(w);
  }
  if (total != data.num_items()) {
    std::ostringstream out;
    out << "workers cover " << total << " of " << data.num_items() << " items";
    Add("data-coverage", out.str());
  }
}

void ConsistencyAuditor::CheckBackupLag() {
  if (!runtime_->roles().UsesBackups()) {
    return;
  }
  // While zero-warning revocations await detector confirmation, backup
  // syncs are suppressed (they would capture clocks missing the revoked
  // nodes' updates); the bound widens by the confirm window.
  Clock allowed = runtime_->config().backup_sync_every;
  if (runtime_->RevokedCount() > 0) {
    allowed += runtime_->config().detector.confirm_after;
  }
  const Clock lag = runtime_->clock() - runtime_->last_sync_clock();
  if (lag < 0 || lag > allowed) {
    std::ostringstream out;
    out << "backup lag " << lag << " outside [0, " << allowed << "]";
    Add("backup-lag", out.str());
  }
}

void ConsistencyAuditor::CheckProgressAccounting() {
  const Clock completed = runtime_->clock() + runtime_->lost_clocks_total();
  if (!has_prev_) {
    return;
  }
  // The counter may only decrease by the clocks a forward restore (a
  // durable epoch newer than the last backup sync) credited back; any
  // larger drop is a reset or double-credit.
  const int credited =
      runtime_->restore_clocks_credited_total() - prev_credited_;
  if (runtime_->lost_clocks_total() < prev_lost_ - std::max(0, credited)) {
    std::ostringstream out;
    out << "lost-clock counter went backwards: " << prev_lost_ << " -> "
        << runtime_->lost_clocks_total() << " (forward-restore credit "
        << credited << ")";
    Add("progress-accounting", out.str());
  }
  // Rollbacks move clocks from `clock` to `lost`; one RunClock adds one.
  const Clock prev_completed = prev_clock_ + prev_lost_;
  if (completed != prev_completed + 1) {
    std::ostringstream out;
    out << "completed-clock count moved " << prev_completed << " -> " << completed
        << " across one executed clock (expected +1): silent loss or double count";
    Add("progress-accounting", out.str());
  }
}

void ConsistencyAuditor::CheckMembership() {
  const std::size_t ready = runtime_->ReadyNodes().size();
  const std::size_t preparing = static_cast<std::size_t>(runtime_->PreparingCount());
  const std::size_t all = runtime_->nodes().size();
  if (ready + preparing != all) {
    std::ostringstream out;
    out << ready << " ready + " << preparing << " preparing != " << all << " nodes";
    Add("membership", out.str());
  }
  if (runtime_->ReadyTierCounts().reliable < 1) {
    Add("membership", "reliable tier is empty");
  }
}

void ConsistencyAuditor::CheckDetector() {
  const FailureDetector& detector = runtime_->failure_detector();
  if (!detector.config().enabled) {
    return;
  }
  // The lease table must track exactly the ready set: a ready node the
  // detector has forgotten can die without anyone noticing, and a
  // tracked ghost would eventually be "confirmed dead" and Fail()ed.
  std::set<NodeId> ready;
  for (const NodeInfo& node : runtime_->ReadyNodes()) {
    ready.insert(node.id);
  }
  for (const NodeId node : detector.Tracked()) {
    if (ready.erase(node) == 0) {
      std::ostringstream out;
      out << "detector tracks non-ready node " << node;
      Add("detector-bound", out.str());
    }
  }
  for (const NodeId node : ready) {
    std::ostringstream out;
    out << "ready node " << node << " untracked by the detector";
    Add("detector-bound", out.str());
  }
  // Suspected nodes must resolve (recover or be confirmed) within the
  // configured bound: the runtime polls every clock, so any survivor's
  // missed count stays strictly below confirm_after.
  for (const NodeId node : detector.Suspected()) {
    const std::int64_t missed = runtime_->clock() - detector.LastHeartbeat(node);
    if (missed >= detector.config().confirm_after) {
      std::ostringstream out;
      out << "node " << node << " suspected for " << missed
          << " clocks, past the confirm bound " << detector.config().confirm_after;
      Add("detector-bound", out.str());
    }
  }
}

void ConsistencyAuditor::CheckTierGuard() {
  const TierGuardReport report = runtime_->AuditTierGuard();
  if (!report.ok) {
    Add("tier-guard", report.detail);
  }
}

void ConsistencyAuditor::ObserveChannel(const Channel& channel, const std::string& name) {
  const std::uint64_t accounted = channel.messages_delivered() +
                                  channel.messages_dropped() +
                                  static_cast<std::uint64_t>(channel.pending()) -
                                  channel.messages_duplicated();
  if (channel.messages_sent() != accounted) {
    std::ostringstream out;
    out << "channel " << name << ": sent " << channel.messages_sent()
        << " != delivered " << channel.messages_delivered() << " + dropped "
        << channel.messages_dropped() << " + pending " << channel.pending()
        << " - duplicated " << channel.messages_duplicated();
    Add("channel-conservation", out.str());
  }
}

std::string ConsistencyAuditor::Report(std::size_t max_items) const {
  if (violations_.empty()) {
    return "no violations";
  }
  std::ostringstream out;
  out << violations_.size() << " violation(s):";
  for (std::size_t i = 0; i < violations_.size() && i < max_items; ++i) {
    const AuditViolation& v = violations_[i];
    out << "\n  [clock " << v.clock << "] " << v.invariant << ": " << v.detail;
  }
  if (violations_.size() > max_items) {
    out << "\n  ... and " << (violations_.size() - max_items) << " more";
  }
  return out.str();
}

}  // namespace proteus
