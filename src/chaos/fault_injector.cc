#include "src/chaos/fault_injector.h"

#include <algorithm>
#include <memory>

#include "src/common/logging.h"

namespace proteus {

const char* FaultClassName(FaultClass cls) {
  switch (cls) {
    case FaultClass::kZoneMassEviction:
      return "zone-mass-eviction";
    case FaultClass::kPreparingEviction:
      return "preparing-eviction";
    case FaultClass::kMidSyncFailure:
      return "mid-sync-failure";
    case FaultClass::kReliableFailure:
      return "reliable-failure";
    case FaultClass::kTransientWipeout:
      return "transient-wipeout";
    case FaultClass::kControlPlaneChaos:
      return "control-plane-chaos";
    case FaultClass::kSilentHang:
      return "silent-hang";
    case FaultClass::kBlackhole:
      return "blackhole";
    case FaultClass::kDuplicate:
      return "duplicate";
    case FaultClass::kCorrelatedWipeout:
      return "correlated-wipeout";
    case FaultClass::kCheckpointCorruption:
      return "checkpoint-corruption";
    case FaultClass::kTornCheckpoint:
      return "torn-checkpoint";
    case FaultClass::kTierStorm:
      return "tier-storm";
  }
  return "?";
}

FaultInjector::FaultInjector(std::uint64_t seed, FaultScheduleConfig config)
    : config_(config), rng_(seed), seed_(seed) {
  PROTEUS_CHECK_GE(config_.horizon, 4);
  PROTEUS_CHECK_GE(config_.events, 0);
  PROTEUS_CHECK_GE(config_.zones, 1);
  // The first kNumFaultClasses events cycle through a shuffled
  // permutation of the classes so every schedule with >= kNumFaultClasses
  // events mixes all of them; the rest are drawn uniformly.
  std::vector<FaultClass> classes;
  for (int c = 0; c < kNumFaultClasses; ++c) {
    classes.push_back(static_cast<FaultClass>(c));
  }
  rng_.Shuffle(classes);
  for (int i = 0; i < config_.events; ++i) {
    FaultEvent event;
    event.cls = i < kNumFaultClasses
                    ? classes[static_cast<std::size_t>(i)]
                    : static_cast<FaultClass>(rng_.UniformInt(0, kNumFaultClasses - 1));
    // Leave the first clock fault-free (start-up) and the last two for
    // recovery to be observable.
    event.at_clock = rng_.UniformInt(1, config_.horizon - 3);
    switch (event.cls) {
      case FaultClass::kZoneMassEviction:
        event.magnitude = static_cast<int>(rng_.UniformInt(0, config_.zones - 1));
        break;
      case FaultClass::kPreparingEviction:
      case FaultClass::kMidSyncFailure:
        event.magnitude = static_cast<int>(rng_.UniformInt(1, 3));
        break;
      case FaultClass::kControlPlaneChaos:
        event.magnitude = static_cast<int>(rng_.UniformInt(50, 300));  // Permille.
        break;
      case FaultClass::kSilentHang:
        // Hang duration in clocks. Short hangs recover before the
        // detector's confirm bound (false-positive bait); long ones are
        // indistinguishable from death and get rolled back.
        event.magnitude = static_cast<int>(rng_.UniformInt(1, 5));
        break;
      case FaultClass::kBlackhole:
        event.magnitude = static_cast<int>(rng_.UniformInt(1, 2));  // Victims.
        break;
      case FaultClass::kDuplicate:
        event.magnitude = static_cast<int>(rng_.UniformInt(100, 400));  // Permille.
        break;
      case FaultClass::kCorrelatedWipeout:
        // Reliable victims taken alongside the full transient wipeout.
        event.magnitude = static_cast<int>(rng_.UniformInt(1, 2));
        break;
      case FaultClass::kCheckpointCorruption:
        // Corruption kind: 0 = bit flip, 1 = truncation, 2 = chunk
        // deleted under a committed manifest (stale manifest).
        event.magnitude = static_cast<int>(rng_.UniformInt(0, 2));
        break;
      case FaultClass::kTornCheckpoint:
        // 0 = torn chunk write, 1 = manifest rename never commits.
        event.magnitude = static_cast<int>(rng_.UniformInt(0, 1));
        break;
      case FaultClass::kTierStorm:
        // Victim permille of the serverless tier; >= 1000 wipes the
        // whole tier. A second die inside the harness decides whether
        // the storm also crosses into the spot tier.
        event.magnitude = static_cast<int>(rng_.UniformInt(400, 1000));
        break;
      case FaultClass::kReliableFailure:
      case FaultClass::kTransientWipeout:
        event.magnitude = 1;
        break;
    }
    schedule_.push_back(event);
  }
  std::stable_sort(schedule_.begin(), schedule_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_clock < b.at_clock;
                   });
}

std::vector<FaultEvent> FaultInjector::EventsAt(Clock clock) const {
  std::vector<FaultEvent> due;
  for (const FaultEvent& event : schedule_) {
    if (event.at_clock == clock) {
      due.push_back(event);
    }
  }
  return due;
}

ChannelFaultHook FaultInjector::MakeChannelFaultHook(int drop_permille) {
  LinkFaultProfile profile;
  profile.drop_permille = drop_permille;
  profile.delay_permille = drop_permille;
  return MakeLinkFaultHook(profile);
}

ChannelFaultHook FaultInjector::MakeLinkFaultHook(const LinkFaultProfile& profile) {
  // Bands are stacked on one uniform die per message; the total loss
  // probability is capped so the link stays usable.
  const double drop = std::clamp(profile.drop_permille / 1000.0, 0.0, 0.9);
  const double delay =
      std::clamp(profile.delay_permille / 1000.0, 0.0, std::max(0.0, 0.9 - drop));
  const double dup = std::clamp(profile.dup_permille / 1000.0, 0.0, 1.0 - drop - delay);
  const int copies_max = std::max(2, profile.dup_copies_max);
  const int bh_every = std::max(0, profile.blackhole_every);
  const int bh_len = std::max(0, profile.blackhole_len);
  // Each hook gets an independent deterministic stream so installing a
  // new hook mid-run does not disturb the injector's own draws.
  auto hook_rng = std::make_shared<Rng>(seed_ ^ (0xC4A05F1ULL + static_cast<std::uint64_t>(
                                                                    ++hooks_made_) *
                                                                    0x9E3779B97F4A7C15ULL));
  auto message_index = std::make_shared<std::uint64_t>(0);
  return [hook_rng, message_index, drop, delay, dup, copies_max, bh_every,
          bh_len](const Message&) -> ChannelFault {
    const std::uint64_t index = (*message_index)++;
    // The die is rolled unconditionally so the downstream schedule does
    // not depend on whether a blackhole window swallowed this message.
    const double dice = hook_rng->Uniform();
    if (bh_every > 0 && bh_len > 0 &&
        index % static_cast<std::uint64_t>(bh_every) <
            static_cast<std::uint64_t>(bh_len)) {
      return {ChannelFault::Action::kDrop, 0, 0};
    }
    if (dice < drop) {
      return {ChannelFault::Action::kDrop, 0, 0};
    }
    if (dice < drop + delay) {
      return {ChannelFault::Action::kDelay,
              static_cast<int>(hook_rng->UniformInt(1, 4)), 0};
    }
    if (dice < drop + delay + dup) {
      return {ChannelFault::Action::kDuplicate, 0,
              static_cast<int>(hook_rng->UniformInt(2, copies_max))};
    }
    return {ChannelFault::Action::kDeliver, 0, 0};
  };
}

}  // namespace proteus
