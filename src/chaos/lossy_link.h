// Lossy-link elasticity driver (ISSUE 5): proves end to end that the
// reliable transport masks an adversarial control link.
//
// A seeded command generator plays BidBrain: it issues allocation
// grants and eviction notices on a schedule that depends only on the
// seed (never on what was delivered). The commands travel over a
// Channel pair whose fault hook may drop, delay (reorder), duplicate,
// or blackhole frames. A defensive controller on the far side applies
// commands to an AgileMLRuntime strictly on delivery: duplicate or
// replayed grants are rejected, eviction notices are filtered to nodes
// it actually knows about.
//
// With `reliable = true` the link is wrapped in a ReliableChannel and
// pumped to quiescence at every clock boundary, so every command lands
// at the boundary it was issued — the run's model digest is
// byte-identical to a fault-free run with the same seed, and the
// ConsistencyAuditor stays clean. With `reliable = false` the same
// faults silently eat commands and the digest diverges; that contrast
// is the whole point (lossy_link_test pins both directions).
#ifndef SRC_CHAOS_LOSSY_LINK_H_
#define SRC_CHAOS_LOSSY_LINK_H_

#include <cstdint>
#include <vector>

#include "src/agileml/runtime.h"
#include "src/chaos/consistency_auditor.h"
#include "src/chaos/fault_injector.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace proteus {

struct LossyLinkConfig {
  AgileMLConfig agileml;
  // Fault profile installed on both link directions (data and acks).
  // All-zero bands leave the link clean (the fault-free baseline).
  LinkFaultProfile link;
  // Wrap the command link in a ReliableChannel.
  bool reliable = true;
  int horizon = 40;        // Clocks to run.
  int command_every = 2;   // Issue one command every this many clocks.
  int initial_reliable = 2;
  int initial_transient_allocations = 2;
  int nodes_per_allocation = 4;
  // Pump-round bound per boundary before giving up (a reliable link
  // that cannot reach quiescence within this many rounds is a bug).
  int max_pump_rounds = 10000;
  std::uint64_t seed = 1;
};

struct LossyLinkResult {
  Clock final_clock = 0;
  int lost_clocks_total = 0;
  // FNV-1a over every model shard's canonical checkpoint blob, the
  // final clock, and the lost-clock count. Equal digests mean equal
  // training state.
  std::uint64_t model_digest = 0;
  int commands_issued = 0;
  int commands_applied = 0;
  int commands_rejected = 0;  // Duplicates / unknown targets, dropped defensively.
  // Link-level accounting (data direction).
  std::uint64_t link_dropped = 0;
  std::uint64_t link_duplicated = 0;
  std::uint64_t link_delayed = 0;
  // Transport accounting (zero when reliable = false).
  std::uint64_t retransmits = 0;
  std::uint64_t dup_suppressed = 0;
  std::vector<AuditViolation> violations;

  bool ok() const { return violations.empty(); }
};

// Runs the full scenario against `app` (must outlive the call);
// deterministic in config.seed. Optional observability sinks receive
// the runtime/transport/auditor streams.
LossyLinkResult RunLossyLink(MLApp* app, const LossyLinkConfig& config,
                             obs::Tracer* tracer = nullptr,
                             obs::MetricsRegistry* metrics = nullptr);

}  // namespace proteus

#endif  // SRC_CHAOS_LOSSY_LINK_H_
