// Deterministic chaos fault-injection for the elasticity paths.
//
// Proteus's value proposition is surviving hostile churn: warned bulk
// evictions, missed warnings ("effective failures", §3.3), reliable-node
// loss, and total transient wipeouts. The seeded FaultInjector turns
// those into composable adversarial schedules: given a seed it produces
// the same sequence of fault events every time, so a failing soak run
// can be replayed exactly. Nine fault classes are generated:
//
//   kZoneMassEviction   correlated warned eviction of every allocation
//                       in one zone (spot price spike takes the zone)
//   kPreparingEviction  a new allocation is revoked while its nodes are
//                       still preloading input data (never incorporated)
//   kMidSyncFailure     a missed warning lands between active->backup
//                       syncs, forcing rollback of unsynced clocks
//   kReliableFailure    a reliable node dies; in stage 1 this forces
//                       RestoreFromCheckpoint (§3.3 insurance)
//   kTransientWipeout   every transient node vanishes at once, forcing
//                       the stage-3 -> stage-1 fallback
//   kControlPlaneChaos  control-plane messages are dropped/delayed via
//                       the Channel fault hook
//   kSilentHang         a node's control plane hangs without any
//                       announcement: heartbeats stop while compute
//                       keeps running, then the node recovers a few
//                       clocks later (detector false-positive bait)
//   kBlackhole          a node's control plane goes permanently dark —
//                       the unannounced spot termination; only the
//                       failure detector can notice
//   kDuplicate          the control channel delivers extra copies of
//                       messages (duplication, on top of drop/delay)
//
// Three durability-tier classes complete the set (PR 6):
//
//   kCorrelatedWipeout     a correlated bulk eviction takes every
//                          transient node AND reliable node(s) holding
//                          the backup/checkpoint state: both tiers lost
//                          at once, only the durable checkpoint survives
//   kCheckpointCorruption  bit rot on the durable device: a stored
//                          checkpoint chunk or manifest is bit-flipped,
//                          truncated, or deleted out from under its
//                          manifest (stale-manifest corruption)
//   kTornCheckpoint        a crash during the next durable checkpoint
//                          write: either the chunk write tears or the
//                          manifest rename never commits
//
// One ultra-transient-tier class completes the set (PR 10):
//
//   kTierStorm             a correlated serverless eviction storm: a
//                          fraction (possibly all) of the zero-warning
//                          serverless nodes vanish in the same instant
//                          with NO notice of any kind — no drain, no
//                          warning window — optionally taking transient
//                          spot nodes with it (the storm that crosses
//                          tiers). Only the failure detector notices.
//
// A schedule with >= kNumFaultClasses events is guaranteed to contain
// every class at least once (the first kNumFaultClasses draws cycle
// through a shuffled permutation of the classes).
#ifndef SRC_CHAOS_FAULT_INJECTOR_H_
#define SRC_CHAOS_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/ps/clock_table.h"
#include "src/rpc/channel.h"

namespace proteus {

enum class FaultClass : int {
  kZoneMassEviction = 0,
  kPreparingEviction = 1,
  kMidSyncFailure = 2,
  kReliableFailure = 3,
  kTransientWipeout = 4,
  kControlPlaneChaos = 5,
  kSilentHang = 6,
  kBlackhole = 7,
  kDuplicate = 8,
  kCorrelatedWipeout = 9,
  kCheckpointCorruption = 10,
  kTornCheckpoint = 11,
  kTierStorm = 12,
};

inline constexpr int kNumFaultClasses = 13;

const char* FaultClassName(FaultClass cls);

struct FaultEvent {
  FaultClass cls = FaultClass::kZoneMassEviction;
  Clock at_clock = 0;  // Fires at the boundary before this clock runs.
  // Class-specific knob: zone index (mass eviction), node count
  // (preparing eviction / mid-sync failure / blackhole), drop intensity
  // permille (control-plane chaos), duplication permille (duplicate),
  // or hang duration in clocks (silent hang).
  int magnitude = 1;
};

struct FaultScheduleConfig {
  Clock horizon = 40;  // Clocks the schedule spans.
  // Fault events to generate (>= kNumFaultClasses covers all classes).
  int events = 8;
  int zones = 3;       // Zones allocations are spread over.
};

// Lossy-link profile for a control channel: every Send() rolls one die
// and lands in the drop / delay / duplicate band (in that order), and
// message-index-based blackhole windows drop everything for
// `blackhole_len` consecutive sends every `blackhole_every` (0 =
// disabled). One die per message keeps the schedule replayable and
// independent of which bands are enabled.
struct LinkFaultProfile {
  int drop_permille = 0;
  int delay_permille = 0;
  int dup_permille = 0;
  int dup_copies_max = 3;  // Duplicates deliver 2..dup_copies_max copies.
  int blackhole_every = 0;
  int blackhole_len = 0;
};

class FaultInjector {
 public:
  FaultInjector(std::uint64_t seed, FaultScheduleConfig config);

  const FaultScheduleConfig& config() const { return config_; }
  const std::vector<FaultEvent>& schedule() const { return schedule_; }

  // Events scheduled to fire at the boundary before `clock` runs.
  std::vector<FaultEvent> EventsAt(Clock clock) const;

  // Builds a deterministic drop/delay fault hook for a control channel.
  // `drop_permille` of messages are lost and an equal share delayed by
  // 1-4 polls; the hook owns its own Rng stream derived from the seed.
  ChannelFaultHook MakeChannelFaultHook(int drop_permille);

  // General lossy-link hook: drop + delay + duplicate bands plus
  // periodic blackhole windows, per LinkFaultProfile. Same independent
  // per-hook Rng stream scheme as MakeChannelFaultHook.
  ChannelFaultHook MakeLinkFaultHook(const LinkFaultProfile& profile);

  // Seeded stream for the harness's victim-picking decisions.
  Rng& rng() { return rng_; }

 private:
  FaultScheduleConfig config_;
  Rng rng_;
  std::uint64_t seed_;
  int hooks_made_ = 0;
  std::vector<FaultEvent> schedule_;
};

}  // namespace proteus

#endif  // SRC_CHAOS_FAULT_INJECTOR_H_
