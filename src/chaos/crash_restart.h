// Crash/restart recovery driver (PR 6): proves, for every depth of the
// escalation ladder, that recovery restores the exact bytes the ladder
// promises — not merely "a plausible model".
//
// A seeded run trains to a crash point, takes the scenario's failure,
// recovers, and compares model digests:
//
//   kBackupPromotion  every ActivePS host dies unwarned; the BackupPS
//                     copy is promoted. The post-recovery digest must
//                     equal the digest captured at the last
//                     active->backup sync (the rollback target).
//   kActiveRebuild    a reliable node holding only BackupPS state dies;
//                     the backup is rebuilt from the active copy. The
//                     active state never moved, so the post-recovery
//                     digest must equal the digest taken immediately
//                     before the crash.
//   kDurableRestore   both tiers die at once and the process restarts
//                     from scratch: the runtime and auditor are torn
//                     down, a *new* CheckpointStore reopens the same
//                     durable device (recovering its epoch cursor), and
//                     a fresh runtime restores the newest valid epoch.
//                     The post-recovery digest must equal the digest
//                     recorded when that epoch was committed. Optionally
//                     the newest N epochs are corrupted first; recovery
//                     must skip exactly those and never load a damaged
//                     frame.
//
// Digests cover the canonical per-shard checkpoint serialization plus
// the clock (lost-clock accounting intentionally excluded: it differs
// across the crash by design). Everything is deterministic in the seed.
#ifndef SRC_CHAOS_CRASH_RESTART_H_
#define SRC_CHAOS_CRASH_RESTART_H_

#include <cstdint>
#include <vector>

#include "src/agileml/recovery_manager.h"
#include "src/agileml/runtime.h"
#include "src/chaos/consistency_auditor.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ps/checkpoint_store.h"

namespace proteus {

enum class CrashScenario : int {
  kBackupPromotion = 0,
  kActiveRebuild = 1,
  kDurableRestore = 2,
};

const char* CrashScenarioName(CrashScenario scenario);

struct CrashRestartConfig {
  AgileMLConfig agileml;
  CrashScenario scenario = CrashScenario::kDurableRestore;
  int horizon = 24;         // Clocks to run end to end.
  int checkpoint_every = 4;  // Durable checkpoint cadence (boundaries).
  Clock crash_at = 13;      // Boundary at which the crash fires.
  // kDurableRestore only: corrupt the newest N committed epochs before
  // the restart (one bit flip in each epoch's manifest). Recovery must
  // skip exactly these and land on the newest intact epoch.
  int corrupt_newest_epochs = 0;
  int initial_reliable = 2;
  int initial_transient_allocations = 2;
  int nodes_per_allocation = 4;
  // Retain enough epochs that corruption never exhausts the store.
  int durable_retain = 8;
  std::uint64_t seed = 1;
};

struct CrashRestartResult {
  RecoveryDepth depth = RecoveryDepth::kNone;
  std::uint64_t expected_digest = 0;       // Reference state for the depth.
  std::uint64_t post_recovery_digest = 0;  // Taken right after recovery.
  bool digest_match = false;
  Clock restored_clock = 0;
  int lost_clocks = 0;
  std::uint64_t durable_epoch = 0;  // Epoch restored (depth 3 only).
  int corrupt_epochs_skipped = 0;
  int corrupt_frames_injected = 0;
  // Scrub result taken right after the depth-3 restart: every injected
  // corruption must be found.
  std::uint64_t scrub_corruptions_found = 0;
  Clock final_clock = 0;
  std::vector<AuditViolation> violations;  // Both runtime generations.

  bool ok() const { return digest_match && violations.empty(); }
};

// Runs the scenario against `app` (must outlive the call); deterministic
// in config.seed.
CrashRestartResult RunCrashRestart(MLApp* app, const CrashRestartConfig& config,
                                   obs::Tracer* tracer = nullptr,
                                   obs::MetricsRegistry* metrics = nullptr);

}  // namespace proteus

#endif  // SRC_CHAOS_CRASH_RESTART_H_
