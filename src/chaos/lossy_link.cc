#include "src/chaos/lossy_link.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <variant>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/rpc/channel.h"
#include "src/rpc/messages.h"
#include "src/rpc/reliable.h"

namespace proteus {

namespace {

// Virtual seconds advanced per pump round; several rounds fit inside
// one initial_rto, so retransmissions fire within a boundary's pump.
constexpr double kPumpDt = 0.01;

std::uint64_t Fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xFF)) * 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t ModelDigest(const AgileMLRuntime& runtime) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (int s = 0; s < runtime.model().shards(); ++s) {
    for (const std::uint8_t byte : runtime.model().SerializeShardCheckpoint(s)) {
      h = (h ^ byte) * 0x100000001B3ULL;
    }
  }
  h = Fnv1a(h, static_cast<std::uint64_t>(runtime.clock()));
  h = Fnv1a(h, static_cast<std::uint64_t>(runtime.lost_clocks_total()));
  return h;
}

bool ProfileIsActive(const LinkFaultProfile& profile) {
  return profile.drop_permille > 0 || profile.delay_permille > 0 ||
         profile.dup_permille > 0 ||
         (profile.blackhole_every > 0 && profile.blackhole_len > 0);
}

class LossyLinkDriver {
 public:
  LossyLinkDriver(MLApp* app, const LossyLinkConfig& config, obs::Tracer* tracer,
                  obs::MetricsRegistry* metrics)
      : config_(config),
        gen_rng_(config.seed ^ 0xB1DB7A1ELL) {
    PROTEUS_CHECK(app != nullptr);
    PROTEUS_CHECK_GE(config_.initial_reliable, 1);
    PROTEUS_CHECK_GE(config_.nodes_per_allocation, 1);
    PROTEUS_CHECK_GE(config_.horizon, 1);

    // Initial membership joins out of band (job start predates the
    // link); the generator and controller start in agreement on it.
    std::vector<NodeInfo> nodes;
    for (int i = 0; i < config_.initial_reliable; ++i) {
      nodes.push_back({next_node_++, Tier::kReliable, 8, kInvalidAllocation});
    }
    for (int a = 0; a < config_.initial_transient_allocations; ++a) {
      const AllocationId id = next_allocation_++;
      std::vector<std::int32_t> ids;
      for (int i = 0; i < config_.nodes_per_allocation; ++i) {
        const NodeId node = next_node_++;
        ids.push_back(node);
        nodes.push_back({node, Tier::kTransient, 8, id});
        live_nodes_.insert(node);
      }
      intended_[id] = ids;
      seen_allocations_.insert(id);
    }
    runtime_ = std::make_unique<AgileMLRuntime>(app, config_.agileml, nodes);
    auditor_ = std::make_unique<ConsistencyAuditor>(runtime_.get());

    if (ProfileIsActive(config_.link)) {
      // Hook-minting injector; its schedule is unused (events = 0).
      FaultScheduleConfig schedule;
      schedule.events = 0;
      hook_source_ = std::make_unique<FaultInjector>(config_.seed, schedule);
      data_channel_.SetFaultHook(hook_source_->MakeLinkFaultHook(config_.link));
      ack_channel_.SetFaultHook(hook_source_->MakeLinkFaultHook(config_.link));
    }
    if (config_.reliable) {
      ReliableChannelConfig rc;
      rc.seed = config_.seed;
      reliable_ = std::make_unique<ReliableChannel>(&data_channel_, &ack_channel_, rc);
    }
    if (tracer != nullptr || metrics != nullptr) {
      runtime_->SetObservability(tracer, metrics);
      auditor_->SetObservability(tracer, metrics);
      data_channel_.SetObservability(metrics, "lossy-link");
      if (reliable_ != nullptr) {
        reliable_->SetObservability(tracer, metrics, "lossy-link");
      }
    }
  }

  LossyLinkResult Run() {
    for (Clock boundary = 0; boundary < config_.horizon; ++boundary) {
      if (config_.command_every > 0 && boundary > 0 &&
          boundary % config_.command_every == 0) {
        IssueCommand();
      }
      PumpLink();
      runtime_->RunClock();
      auditor_->ObserveChannel(data_channel_, "lossy-link.data");
      auditor_->ObserveChannel(ack_channel_, "lossy-link.ack");
      auditor_->ObserveClock();
    }

    result_.final_clock = runtime_->clock();
    result_.lost_clocks_total = runtime_->lost_clocks_total();
    result_.model_digest = ModelDigest(*runtime_);
    result_.link_dropped = data_channel_.messages_dropped();
    result_.link_duplicated = data_channel_.messages_duplicated();
    result_.link_delayed = data_channel_.messages_delayed();
    if (reliable_ != nullptr) {
      result_.retransmits = reliable_->retransmits();
      result_.dup_suppressed = reliable_->dup_suppressed();
    }
    result_.violations = auditor_->violations();
    return result_;
  }

 private:
  // BidBrain's side. Grant/evict decisions depend only on the seed and
  // the generator's own bookkeeping — never on deliveries — so every
  // transport variant sees the identical command stream.
  void IssueCommand() {
    ++result_.commands_issued;
    const bool grant = intended_.size() <= 1 || gen_rng_.Bernoulli(0.5);
    if (grant) {
      const AllocationId id = next_allocation_++;
      std::vector<std::int32_t> ids;
      for (int i = 0; i < config_.nodes_per_allocation; ++i) {
        ids.push_back(next_node_++);
      }
      intended_[id] = ids;
      Dispatch(Message(AllocationGrantMsg{id, ids, 8}));
    } else {
      // Revoke the oldest allocation; a quarter of revocations miss
      // their warning (unannounced failure -> rollback on delivery).
      const auto it = intended_.begin();
      const bool warned = !gen_rng_.Bernoulli(0.25);
      Dispatch(Message(
          EvictionNoticeMsg{it->first, it->second, warned ? 2 * kMinute : 0.0}));
      intended_.erase(it);
    }
  }

  void Dispatch(const Message& message) {
    if (reliable_ != nullptr) {
      reliable_->Send(message, link_now_);
    } else {
      data_channel_.Send(message);
    }
  }

  // Moves this boundary's traffic across the link. Reliable mode pumps
  // to quiescence, so every command issued so far is applied before the
  // clock runs — delivery timing is decoupled from the fault pattern.
  // Raw mode polls a fixed number of times and applies whatever
  // survived; drops are simply gone.
  void PumpLink() {
    if (reliable_ != nullptr) {
      int rounds = 0;
      while (!reliable_->Quiescent()) {
        PROTEUS_CHECK_LT(rounds++, config_.max_pump_rounds)
            << "reliable link failed to reach quiescence";
        link_now_ += kPumpDt;
        reliable_->Tick(link_now_);
        while (std::optional<Message> m = reliable_->Receive(link_now_)) {
          ApplyCommand(*m);
        }
      }
      while (std::optional<Message> m = reliable_->Receive(link_now_)) {
        ApplyCommand(*m);
      }
    } else {
      for (int i = 0; i < 6; ++i) {
        while (std::optional<Message> m = data_channel_.Poll()) {
          ApplyCommand(*m);
        }
      }
    }
  }

  // The controller's side: apply on delivery, defensively. Duplicate or
  // replayed grants are rejected wholesale; eviction notices act only
  // on nodes this controller actually admitted (a notice for a grant
  // that never arrived must not invent members).
  void ApplyCommand(const Message& message) {
    if (const auto* grant = std::get_if<AllocationGrantMsg>(&message)) {
      if (!seen_allocations_.insert(grant->allocation).second) {
        ++result_.commands_rejected;
        return;
      }
      std::vector<NodeInfo> nodes;
      for (const std::int32_t id : grant->node_ids) {
        nodes.push_back({static_cast<NodeId>(id), Tier::kTransient,
                         grant->vcpus_per_node, grant->allocation});
        live_nodes_.insert(static_cast<NodeId>(id));
      }
      runtime_->AddNodes(nodes);
      ++result_.commands_applied;
      return;
    }
    if (const auto* notice = std::get_if<EvictionNoticeMsg>(&message)) {
      std::vector<NodeId> victims;
      for (const std::int32_t id : notice->node_ids) {
        if (live_nodes_.erase(static_cast<NodeId>(id)) > 0) {
          victims.push_back(static_cast<NodeId>(id));
        }
      }
      if (victims.empty()) {
        ++result_.commands_rejected;
        return;
      }
      if (notice->warning_seconds > 0) {
        runtime_->Evict(victims);
      } else {
        runtime_->Fail(victims);
      }
      ++result_.commands_applied;
      return;
    }
    ++result_.commands_rejected;  // Unexpected type on the command link.
  }

  LossyLinkConfig config_;
  Rng gen_rng_;
  std::unique_ptr<AgileMLRuntime> runtime_;
  std::unique_ptr<ConsistencyAuditor> auditor_;
  std::unique_ptr<FaultInjector> hook_source_;
  Channel data_channel_;
  Channel ack_channel_;
  std::unique_ptr<ReliableChannel> reliable_;
  double link_now_ = 0.0;

  // Generator bookkeeping (sender side).
  AllocationId next_allocation_ = 0;
  NodeId next_node_ = 0;
  std::map<AllocationId, std::vector<std::int32_t>> intended_;

  // Controller bookkeeping (receiver side).
  std::set<AllocationId> seen_allocations_;
  std::set<NodeId> live_nodes_;

  LossyLinkResult result_;
};

}  // namespace

LossyLinkResult RunLossyLink(MLApp* app, const LossyLinkConfig& config,
                             obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  LossyLinkDriver driver(app, config, tracer, metrics);
  return driver.Run();
}

}  // namespace proteus
