#include "src/chaos/harness.h"

#include <algorithm>
#include <bit>

#include "src/common/logging.h"

namespace proteus {

namespace {

std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
}

std::uint64_t HashDouble(double v) { return std::bit_cast<std::uint64_t>(v); }

std::uint64_t HashString(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001B3ULL;
  }
  return h;
}

// Initial membership: reliable nodes first, then transient nodes grouped
// into allocations of `nodes_per_allocation`, all incorporated at
// start-up (input data loads before training begins, like the paper's
// job start). The harness constructor mirrors this grouping into its
// allocation table.
std::vector<NodeInfo> InitialNodes(const ChaosConfig& config) {
  std::vector<NodeInfo> nodes;
  NodeId id = 0;
  for (int i = 0; i < config.initial_reliable; ++i) {
    nodes.push_back({id++, Tier::kReliable, 8, kInvalidAllocation});
  }
  for (int a = 0; a < config.initial_transient_allocations; ++a) {
    for (int i = 0; i < config.nodes_per_allocation; ++i) {
      nodes.push_back({id++, Tier::kTransient, 8, static_cast<AllocationId>(a)});
    }
  }
  for (int a = 0; a < config.initial_serverless_allocations; ++a) {
    const AllocationId alloc =
        static_cast<AllocationId>(config.initial_transient_allocations + a);
    for (int i = 0; i < config.serverless_nodes_per_allocation; ++i) {
      nodes.push_back({id++, Tier::kServerless, 2, alloc});
    }
  }
  return nodes;
}

// The silent-hang and blackhole fault classes are only observable
// through the heartbeat detector, so chaos runs always arm it.
ChaosConfig NormalizeConfig(ChaosConfig config) {
  if (!config.agileml.detector.enabled) {
    config.agileml.detector.enabled = true;
    config.agileml.detector.suspect_after = 1;
    config.agileml.detector.confirm_after = 3;
  }
  return config;
}

}  // namespace

std::uint64_t ChaosRunResult::Digest() const {
  std::uint64_t h = 0;
  h = HashCombine(h, static_cast<std::uint64_t>(final_clock));
  h = HashCombine(h, static_cast<std::uint64_t>(clocks_run));
  h = HashCombine(h, static_cast<std::uint64_t>(lost_clocks_total));
  h = HashCombine(h, HashDouble(virtual_time));
  h = HashCombine(h, HashDouble(final_objective));
  for (const FaultClassStats& s : per_class) {
    h = HashCombine(h, static_cast<std::uint64_t>(s.events));
    h = HashCombine(h, static_cast<std::uint64_t>(s.lost_clocks));
    h = HashCombine(h, HashDouble(s.stall_seconds));
    h = HashCombine(h, static_cast<std::uint64_t>(s.control_messages));
  }
  h = HashCombine(h, static_cast<std::uint64_t>(violations.size()));
  h = HashCombine(h, control_sent);
  h = HashCombine(h, control_delivered);
  h = HashCombine(h, control_dropped);
  h = HashCombine(h, control_pending);
  h = HashCombine(h, control_duplicated);
  h = HashCombine(h, HashString(control_log_summary));
  h = HashCombine(h, detector_suspicions);
  h = HashCombine(h, detector_confirmed_dead);
  h = HashCombine(h, detector_false_positives);
  for (const int depth_count : recovery_depths) {
    h = HashCombine(h, static_cast<std::uint64_t>(depth_count));
  }
  h = HashCombine(h, durable_epochs_committed);
  h = HashCombine(h, durable_commit_aborts);
  h = HashCombine(h, static_cast<std::uint64_t>(corrupt_frames_injected));
  h = HashCombine(h, static_cast<std::uint64_t>(corrupt_epochs_skipped));
  h = HashCombine(h, static_cast<std::uint64_t>(torn_checkpoints_armed));
  h = HashCombine(h, scrubs_run);
  h = HashCombine(h, scrub_corruptions_found);
  h = HashCombine(h, serverless_nodes_revoked);
  return h;
}

ChaosHarness::ChaosHarness(MLApp* app, ChaosConfig config)
    : app_(app),
      config_(NormalizeConfig(std::move(config))),
      injector_(config_.seed, config_.schedule),
      runtime_(std::make_unique<AgileMLRuntime>(app_, config_.agileml,
                                                InitialNodes(config_))),
      auditor_(runtime_.get()) {
  PROTEUS_CHECK_GE(config_.initial_reliable, 1);
  PROTEUS_CHECK_GE(config_.nodes_per_allocation, 1);
  // Mirror the initial grouping into the allocation table.
  NodeId id = static_cast<NodeId>(config_.initial_reliable);
  for (int a = 0; a < config_.initial_transient_allocations; ++a) {
    ChaosAllocation alloc;
    alloc.zone = a % config_.schedule.zones;
    for (int i = 0; i < config_.nodes_per_allocation; ++i) {
      alloc.nodes.push_back(id++);
    }
    allocations_[next_allocation_++] = std::move(alloc);
  }
  for (int a = 0; a < config_.initial_serverless_allocations; ++a) {
    ChaosAllocation alloc;
    alloc.serverless = true;
    for (int i = 0; i < config_.serverless_nodes_per_allocation; ++i) {
      alloc.nodes.push_back(id++);
    }
    allocations_[next_allocation_++] = std::move(alloc);
  }
  next_node_ = id;
  store_ = std::make_unique<CheckpointStore>(
      &device_, CheckpointStoreConfig{config_.durable_retain});
  recovery_ = std::make_unique<RecoveryManager>(
      runtime_.get(), store_.get(),
      RecoveryManagerConfig{config_.checkpoint_every, config_.scrub_every});
  // Start-up insurance: a checkpoint always exists (in memory and as a
  // committed durable epoch), so a stage-1 reliable failure can restore
  // rather than lose the solution state and a correlated both-tier loss
  // is survivable from the first clock on.
  recovery_->ForceCheckpoint();
}

ChaosHarness::~ChaosHarness() = default;

void ChaosHarness::SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  fault_counters_ = {};
  if (metrics != nullptr) {
    for (int i = 0; i < kNumFaultClasses; ++i) {
      const FaultClass cls = static_cast<FaultClass>(i);
      fault_counters_[static_cast<std::size_t>(i)] =
          metrics->GetCounter("chaos.faults", {{"class", FaultClassName(cls)}});
    }
  }
  runtime_->SetObservability(tracer, metrics);
  control_channel_.SetObservability(metrics, "controller");
  auditor_.SetObservability(tracer, metrics);
  recovery_->SetObservability(tracer, metrics);
}

void ChaosHarness::SetLedger(obs::EventLedger* ledger, obs::FlightRecorder* recorder) {
  ledger_ = ledger;
  runtime_->SetLedger(ledger);
  control_channel_.SetLedger(ledger, "controller");
  auditor_.SetLedger(ledger, recorder);
  recovery_->SetLedger(ledger);
}

std::vector<NodeId> ChaosHarness::ReadyTransientIds() const {
  std::vector<NodeId> out;
  for (const NodeInfo& node : runtime_->ReadyNodes()) {
    if (node.tier == Tier::kTransient) {
      out.push_back(node.id);
    }
  }
  return out;
}

std::vector<NodeId> ChaosHarness::AllTransientIds() const {
  std::vector<NodeId> out;
  for (const NodeInfo& node : runtime_->nodes()) {
    if (node.tier == Tier::kTransient) {
      out.push_back(node.id);
    }
  }
  return out;
}

std::vector<NodeId> ChaosHarness::ReadyServerlessIds() const {
  std::vector<NodeId> out;
  for (const NodeInfo& node : runtime_->ReadyNodes()) {
    if (node.serverless()) {
      out.push_back(node.id);
    }
  }
  return out;
}

void ChaosHarness::SendEvictionNotice(AllocationId id, const std::vector<NodeId>& nodes,
                                      bool warned) {
  control_channel_.Send(Message(EvictionNoticeMsg{
      id, nodes, warned ? 2 * kMinute : 0.0}));
}

AllocationId ChaosHarness::AddAllocation(int zone, int count) {
  const AllocationId id = next_allocation_++;
  ChaosAllocation alloc;
  alloc.zone = zone;
  std::vector<NodeInfo> nodes;
  for (int i = 0; i < count; ++i) {
    const NodeId node = next_node_++;
    alloc.nodes.push_back(node);
    nodes.push_back({node, Tier::kTransient, 8, id});
  }
  control_channel_.Send(Message(AllocationGrantMsg{id, alloc.nodes, 8}));
  runtime_->AddNodes(nodes);
  allocations_[id] = std::move(alloc);
  return id;
}

AllocationId ChaosHarness::AddServerlessAllocation(int count) {
  const AllocationId id = next_allocation_++;
  ChaosAllocation alloc;
  alloc.serverless = true;
  std::vector<NodeInfo> nodes;
  for (int i = 0; i < count; ++i) {
    const NodeId node = next_node_++;
    alloc.nodes.push_back(node);
    nodes.push_back({node, Tier::kServerless, 2, id});
  }
  control_channel_.Send(Message(AllocationGrantMsg{id, alloc.nodes, 2}));
  runtime_->AddNodes(nodes);
  allocations_[id] = std::move(alloc);
  return id;
}

void ChaosHarness::ClearTransientAllocations() {
  for (auto it = allocations_.begin(); it != allocations_.end();) {
    it = it->second.serverless ? ++it : allocations_.erase(it);
  }
}

void ChaosHarness::ForgetNodes(const std::vector<NodeId>& nodes) {
  for (auto it = allocations_.begin(); it != allocations_.end();) {
    auto& held = it->second.nodes;
    held.erase(std::remove_if(held.begin(), held.end(),
                              [&nodes](NodeId id) {
                                return std::find(nodes.begin(), nodes.end(), id) !=
                                       nodes.end();
                              }),
               held.end());
    it = held.empty() ? allocations_.erase(it) : ++it;
  }
}

bool ChaosHarness::Apply(const FaultEvent& event) {
  switch (event.cls) {
    case FaultClass::kZoneMassEviction: {
      // Every allocation in one zone is revoked at once (a price spike
      // clears the zone). Fall back to the busiest zone if the drawn
      // one is empty.
      if (allocations_.empty()) {
        return false;
      }
      int zone = event.magnitude % config_.schedule.zones;
      std::vector<AllocationId> victims;
      for (const auto& [id, alloc] : allocations_) {
        if (!alloc.serverless && alloc.zone == zone) {
          victims.push_back(id);
        }
      }
      if (victims.empty()) {
        std::map<int, int> per_zone;
        for (const auto& [id, alloc] : allocations_) {
          if (!alloc.serverless) {
            ++per_zone[alloc.zone];
          }
        }
        if (per_zone.empty()) {
          return false;  // Only serverless allocations left; no zones.
        }
        zone = per_zone.begin()->first;
        for (const auto& [z, n] : per_zone) {
          if (n > per_zone[zone]) {
            zone = z;
          }
        }
        for (const auto& [id, alloc] : allocations_) {
          if (!alloc.serverless && alloc.zone == zone) {
            victims.push_back(id);
          }
        }
      }
      std::vector<NodeId> all_nodes;
      for (const AllocationId id : victims) {
        const auto& alloc = allocations_.at(id);
        SendEvictionNotice(id, alloc.nodes, /*warned=*/true);
        all_nodes.insert(all_nodes.end(), alloc.nodes.begin(), alloc.nodes.end());
      }
      runtime_->Evict(all_nodes);  // Correlated: one simultaneous revocation.
      ForgetNodes(all_nodes);
      return true;
    }
    case FaultClass::kPreparingEviction: {
      // A fresh allocation is granted, then revoked mid-preload: half
      // immediately (guaranteed still preparing), half at the next
      // boundary (preparing or just-incorporated — both must be safe).
      const int count = event.magnitude + 1;  // >= 2, so both halves exist.
      const int zone =
          static_cast<int>(injector_.rng().UniformInt(0, config_.schedule.zones - 1));
      const AllocationId id = AddAllocation(zone, count);
      auto& alloc = allocations_.at(id);
      const std::vector<NodeId> now(alloc.nodes.begin(),
                                    alloc.nodes.begin() + count / 2);
      SendEvictionNotice(id, now, /*warned=*/true);
      runtime_->Evict(now);
      ForgetNodes(now);
      pending_preload_evictions_.push_back(id);
      return true;
    }
    case FaultClass::kMidSyncFailure: {
      // A missed warning must land between active->backup syncs so
      // unsynced clocks are really at stake; defer until then.
      if (!runtime_->roles().UsesBackups() ||
          runtime_->clock() == runtime_->last_sync_clock()) {
        return false;
      }
      std::vector<NodeId> ready = ReadyTransientIds();
      if (ready.empty()) {
        return false;
      }
      // Prefer ActivePS hosts: their loss is what forces the rollback.
      std::stable_sort(ready.begin(), ready.end(), [this](NodeId a, NodeId b) {
        const auto& actives = runtime_->roles().active_ps_nodes;
        return actives.count(a) > actives.count(b);
      });
      const std::size_t count =
          std::min<std::size_t>(ready.size(), static_cast<std::size_t>(event.magnitude));
      std::vector<NodeId> victims(ready.begin(),
                                  ready.begin() + static_cast<std::ptrdiff_t>(count));
      SendEvictionNotice(kInvalidAllocation, victims, /*warned=*/false);
      runtime_->Fail(victims);
      ForgetNodes(victims);
      return true;
    }
    case FaultClass::kReliableFailure: {
      std::vector<NodeId> reliable;
      for (const NodeInfo& node : runtime_->ReadyNodes()) {
        if (node.reliable()) {
          reliable.push_back(node.id);
        }
      }
      if (reliable.size() < 2) {
        return false;  // The reliable tier must never empty out.
      }
      const NodeId victim = reliable[static_cast<std::size_t>(
          injector_.rng().UniformInt(0, static_cast<std::int64_t>(reliable.size()) - 1))];
      runtime_->Fail({victim});
      // The operator replaces the on-demand machine; it preloads and
      // rejoins like any addition.
      runtime_->AddNodes({{next_node_++, Tier::kReliable, 8, kInvalidAllocation}});
      return true;
    }
    case FaultClass::kTransientWipeout: {
      const std::vector<NodeId> all = AllTransientIds();
      if (all.empty()) {
        return false;
      }
      for (const auto& [id, alloc] : allocations_) {
        if (!alloc.serverless) {
          SendEvictionNotice(id, alloc.nodes, /*warned=*/false);
        }
      }
      // Half the wipeouts are warned (graceful stage fallback), half are
      // simultaneous unwarned failures (rollback under total loss).
      if (injector_.rng().Bernoulli(0.5)) {
        runtime_->Evict(all);
      } else {
        runtime_->Fail(all);
      }
      ClearTransientAllocations();
      pending_preload_evictions_.clear();
      return true;
    }
    case FaultClass::kControlPlaneChaos: {
      control_channel_.SetFaultHook(injector_.MakeChannelFaultHook(event.magnitude));
      return true;
    }
    case FaultClass::kSilentHang: {
      // One ready transient node stops heartbeating but keeps computing
      // (a gray failure: the control plane is cut, the data plane is
      // not). It resumes after `magnitude` clocks — short hangs recover
      // as counted false positives, long ones get confirmed dead first.
      std::vector<NodeId> ready = ReadyTransientIds();
      ready.erase(std::remove_if(ready.begin(), ready.end(),
                                 [this](NodeId id) {
                                   return silenced_cause_.count(id) > 0;
                                 }),
                  ready.end());
      if (ready.empty()) {
        return false;
      }
      // Prefer ActivePS hosts: a confirmed death there forces a rollback.
      std::stable_sort(ready.begin(), ready.end(), [this](NodeId a, NodeId b) {
        const auto& actives = runtime_->roles().active_ps_nodes;
        return actives.count(a) > actives.count(b);
      });
      const NodeId victim = ready.front();
      runtime_->SetNodeSilent(victim, true);
      silenced_cause_[victim] = FaultClass::kSilentHang;
      silent_resume_[victim] = boundary_ + event.magnitude;
      return true;
    }
    case FaultClass::kBlackhole: {
      // Up to `magnitude` ready transient nodes fall off the network for
      // good — no eviction notice, no Fail() call, no resume. Only the
      // detector ever learns about them.
      std::vector<NodeId> ready = ReadyTransientIds();
      ready.erase(std::remove_if(ready.begin(), ready.end(),
                                 [this](NodeId id) {
                                   return silenced_cause_.count(id) > 0;
                                 }),
                  ready.end());
      if (ready.empty()) {
        return false;
      }
      std::stable_sort(ready.begin(), ready.end(), [this](NodeId a, NodeId b) {
        const auto& actives = runtime_->roles().active_ps_nodes;
        return actives.count(a) > actives.count(b);
      });
      const std::size_t count =
          std::min<std::size_t>(ready.size(), static_cast<std::size_t>(event.magnitude));
      for (std::size_t i = 0; i < count; ++i) {
        runtime_->SetNodeSilent(ready[i], true);
        silenced_cause_[ready[i]] = FaultClass::kBlackhole;
      }
      return true;
    }
    case FaultClass::kDuplicate: {
      // The control link starts cloning frames; conservation must hold
      // net of the extra copies and the controller must stay idempotent.
      LinkFaultProfile profile;
      profile.dup_permille = event.magnitude;
      control_channel_.SetFaultHook(injector_.MakeLinkFaultHook(profile));
      return true;
    }
    case FaultClass::kCorrelatedWipeout: {
      // A market-wide clearing event: every transient node vanishes AND
      // `magnitude` reliable node(s) — preferring the ones serving or
      // backing partitions — die with them. When that takes out both
      // copies of some partition only the durable tier can recover, so
      // the event waits until a committed epoch validates (a corrupted
      // store self-heals at the next cadence write).
      std::vector<NodeId> reliable;
      for (const NodeInfo& node : runtime_->ReadyNodes()) {
        if (node.reliable()) {
          reliable.push_back(node.id);
        }
      }
      if (reliable.size() < 2) {
        return false;  // The reliable tier must never empty out.
      }
      std::vector<NodeId> victims = AllTransientIds();
      if (victims.empty()) {
        return false;
      }
      if (!store_->ReadNewestValid().has_value()) {
        return false;
      }
      // Reliable victims carry the most solution state first, so the
      // wipeout reaches the bottom of the escalation ladder whenever the
      // role map allows it.
      const RoleAssignment& roles = runtime_->roles();
      std::stable_sort(reliable.begin(), reliable.end(),
                       [&roles](NodeId a, NodeId b) {
                         int held_a = 0;
                         int held_b = 0;
                         for (const auto& [partition, owner] : roles.server) {
                           held_a += owner == a;
                           held_b += owner == b;
                         }
                         for (const auto& [partition, owner] : roles.backup) {
                           held_a += owner == a;
                           held_b += owner == b;
                         }
                         return held_a > held_b;
                       });
      const std::size_t reliable_victims = std::min<std::size_t>(
          static_cast<std::size_t>(std::max(1, event.magnitude)),
          reliable.size() - 1);
      victims.insert(victims.end(), reliable.begin(),
                     reliable.begin() + static_cast<std::ptrdiff_t>(reliable_victims));
      for (const auto& [id, alloc] : allocations_) {
        if (!alloc.serverless) {
          SendEvictionNotice(id, alloc.nodes, /*warned=*/false);
        }
      }
      SendEvictionNotice(kInvalidAllocation,
                         {reliable.begin(),
                          reliable.begin() + static_cast<std::ptrdiff_t>(reliable_victims)},
                         /*warned=*/false);
      // The dead reliable machines held the in-memory checkpoint: when
      // the active+backup pair is gone too, recovery must come from the
      // durable device, not from RAM.
      if (recovery_->Classify(victims) == RecoveryDepth::kDurableRestore) {
        runtime_->DropCheckpoint();
      }
      const RecoveryOutcome outcome = recovery_->Recover(victims);
      corrupt_epochs_skipped_ += outcome.corrupt_epochs_skipped;
      control_channel_.Send(Message(RecoveryNoticeMsg{
          static_cast<std::int32_t>(outcome.depth),
          static_cast<std::int64_t>(outcome.restored_clock),
          static_cast<std::int32_t>(outcome.lost_clocks), outcome.durable_epoch}));
      ForgetNodes(victims);
      ClearTransientAllocations();
      pending_preload_evictions_.clear();
      // The operator replaces the dead on-demand machines; they preload
      // and rejoin like any addition.
      std::vector<NodeInfo> replacements;
      for (std::size_t i = 0; i < reliable_victims; ++i) {
        replacements.push_back({next_node_++, Tier::kReliable, 8, kInvalidAllocation});
      }
      runtime_->AddNodes(replacements);
      return true;
    }
    case FaultClass::kCheckpointCorruption: {
      // Bit rot on the durable device: one stored checkpoint object is
      // flipped, truncated, or (kind 2) a chunk is deleted out from
      // under its committed manifest. Validation must refuse to load the
      // damaged epoch and Scrub must count the damage.
      std::vector<std::string> objects;
      for (const std::string& name : device_.List()) {
        if (name.rfind("ck/", 0) == 0) {
          objects.push_back(name);
        }
      }
      const int kind = event.magnitude % 3;
      if (kind == 2) {
        objects.erase(std::remove_if(objects.begin(), objects.end(),
                                     [](const std::string& name) {
                                       return name.rfind("ck/obj/", 0) != 0;
                                     }),
                      objects.end());
      }
      if (objects.empty()) {
        return false;
      }
      const std::string name = objects[static_cast<std::size_t>(injector_.rng().UniformInt(
          0, static_cast<std::int64_t>(objects.size()) - 1))];
      bool injected = false;
      switch (kind) {
        case 0: {
          const auto bytes = device_.Read(name);
          if (!bytes || bytes->empty()) {
            return false;
          }
          injected = device_.FlipBit(
              name,
              static_cast<std::size_t>(injector_.rng().UniformInt(
                  0, static_cast<std::int64_t>(bytes->size()) - 1)),
              static_cast<int>(injector_.rng().UniformInt(0, 7)));
          break;
        }
        case 1: {
          const auto bytes = device_.Read(name);
          if (!bytes || bytes->size() < 2) {
            return false;
          }
          injected = device_.Truncate(name, bytes->size() / 2);
          break;
        }
        default:
          injected = device_.Delete(name);
          break;
      }
      if (injected) {
        ++corrupt_frames_injected_;
      }
      return injected;
    }
    case FaultClass::kTornCheckpoint: {
      // Crash inside the next durable checkpoint write: either a chunk
      // write tears mid-frame (the store aborts the epoch) or the
      // manifest rename — the commit point — never happens (the epoch is
      // left torn: tmp manifest only, skipped by every reader).
      if (event.magnitude % 2 == 0) {
        device_.ArmTornWrite(0.5);
      } else {
        device_.ArmDropRename();
      }
      ++torn_checkpoints_armed_;
      return true;
    }
    case FaultClass::kTierStorm: {
      // Correlated serverless eviction storm: `magnitude` permille of
      // the ready serverless tier vanishes in the same instant with no
      // notice of any kind — no warning window, no drain, no Fail()
      // call. The victims' control AND data planes die together
      // (SetNodeRevoked); only the failure detector ever learns. A
      // second die decides whether the storm crosses tiers and takes
      // ready spot node(s) down with it, equally unannounced.
      std::vector<NodeId> ready = ReadyServerlessIds();
      ready.erase(std::remove_if(ready.begin(), ready.end(),
                                 [this](NodeId id) {
                                   return silenced_cause_.count(id) > 0;
                                 }),
                  ready.end());
      if (ready.empty()) {
        return false;
      }
      injector_.rng().Shuffle(ready);
      const int permille = std::min(event.magnitude, 1000);
      const std::size_t count = std::min(
          ready.size(),
          std::max<std::size_t>(
              1, (ready.size() * static_cast<std::size_t>(permille) + 999) / 1000));
      for (std::size_t i = 0; i < count; ++i) {
        runtime_->SetNodeRevoked(ready[i]);
        silenced_cause_[ready[i]] = FaultClass::kTierStorm;
        ++serverless_nodes_revoked_;
      }
      if (injector_.rng().Bernoulli(0.5)) {
        // The storm crosses into the spot tier: up to two ready spot
        // nodes — preferring ActivePS hosts for maximum damage — go
        // permanently dark alongside the serverless victims.
        std::vector<NodeId> spot = ReadyTransientIds();
        spot.erase(std::remove_if(spot.begin(), spot.end(),
                                  [this](NodeId id) {
                                    return silenced_cause_.count(id) > 0;
                                  }),
                   spot.end());
        std::stable_sort(spot.begin(), spot.end(), [this](NodeId a, NodeId b) {
          const auto& actives = runtime_->roles().active_ps_nodes;
          return actives.count(a) > actives.count(b);
        });
        const std::size_t spot_victims = std::min<std::size_t>(spot.size(), 2);
        for (std::size_t i = 0; i < spot_victims; ++i) {
          runtime_->SetNodeSilent(spot[i], true);
          silenced_cause_[spot[i]] = FaultClass::kTierStorm;
        }
      }
      return true;
    }
  }
  return false;
}

ChaosRunResult ChaosHarness::Run() {
  ChaosRunResult result;
  obs::EventId run_event = obs::kNoEvent;
  const SimDuration run_start = runtime_->total_time();
  if (ledger_ != nullptr) {
    run_event = ledger_->Open(
        "run", "chaos", run_start,
        {{"seed", static_cast<std::int64_t>(config_.seed)},
         {"horizon", static_cast<std::int64_t>(config_.schedule.horizon)}});
  }
  for (Clock boundary = 0; boundary < config_.schedule.horizon; ++boundary) {
    boundary_ = boundary;
    // Detector-driven rollbacks happened inside the previous RunClock;
    // their forced transfers stall this clock, so the class carries over
    // into this boundary's stall attribution.
    std::vector<FaultClass> applied = std::move(carryover_classes_);
    carryover_classes_.clear();

    // Silent-hang victims whose hang has elapsed resume heartbeating —
    // unless the detector already confirmed them dead (handled below) or
    // an overlapping fault removed them (SetNodeSilent(false) is then a
    // harmless no-op).
    for (auto it = silent_resume_.begin(); it != silent_resume_.end();) {
      if (it->second <= boundary) {
        runtime_->SetNodeSilent(it->first, false);
        silenced_cause_.erase(it->first);
        it = silent_resume_.erase(it);
      } else {
        ++it;
      }
    }

    // Revocations registered by a preparing-eviction event land now,
    // while (typically) the nodes are still preloading.
    if (!pending_preload_evictions_.empty()) {
      const int lost_before = runtime_->lost_clocks_total();
      const std::int64_t ctrl_before = runtime_->control_log().Total();
      for (const AllocationId id : pending_preload_evictions_) {
        auto it = allocations_.find(id);
        if (it == allocations_.end() || it->second.nodes.empty()) {
          continue;  // Already removed by an overlapping fault.
        }
        const std::vector<NodeId> nodes = it->second.nodes;
        SendEvictionNotice(id, nodes, /*warned=*/true);
        runtime_->Evict(nodes);
        ForgetNodes(nodes);
      }
      pending_preload_evictions_.clear();
      auto& stats = result.per_class[static_cast<std::size_t>(
          FaultClass::kPreparingEviction)];
      stats.lost_clocks += runtime_->lost_clocks_total() - lost_before;
      stats.control_messages += runtime_->control_log().Total() - ctrl_before;
      applied.push_back(FaultClass::kPreparingEviction);
      if (tracer_ != nullptr) {
        tracer_->InstantAt(runtime_->total_time(), "fault.preparing_eviction", "chaos",
                           {{"phase", "revoke"},
                            {"boundary", static_cast<std::int64_t>(boundary)}});
      }
    }

    std::vector<FaultEvent> due = std::move(deferred_);
    deferred_.clear();
    for (const FaultEvent& event : injector_.EventsAt(boundary)) {
      due.push_back(event);
    }
    for (const FaultEvent& event : due) {
      const int lost_before = runtime_->lost_clocks_total();
      const std::int64_t ctrl_before = runtime_->control_log().Total();
      obs::EventId fault_event = obs::kNoEvent;
      if (ledger_ != nullptr) {
        // Open before Apply: whatever the fault forces — evictions,
        // rollbacks, recovery-ladder steps — records as its children.
        fault_event = ledger_->Open(
            "fault", "chaos", runtime_->total_time(),
            {{"class", std::string(FaultClassName(event.cls))},
             {"magnitude", static_cast<std::int64_t>(event.magnitude)},
             {"boundary", static_cast<std::int64_t>(boundary)}});
      }
      if (!Apply(event)) {
        if (ledger_ != nullptr) {
          ledger_->Close(fault_event, 0.0,
                         {{"applied", static_cast<std::int64_t>(0)}});
        }
        deferred_.push_back(event);
        continue;
      }
      auto& stats = result.per_class[static_cast<std::size_t>(event.cls)];
      ++stats.events;
      stats.lost_clocks += runtime_->lost_clocks_total() - lost_before;
      stats.control_messages += runtime_->control_log().Total() - ctrl_before;
      applied.push_back(event.cls);
      if (obs::Counter* c = fault_counters_[static_cast<std::size_t>(event.cls)]) {
        c->Increment();
      }
      if (tracer_ != nullptr) {
        tracer_->InstantAt(
            runtime_->total_time(),
            std::string("fault.") + FaultClassName(event.cls), "chaos",
            {{"magnitude", static_cast<std::int64_t>(event.magnitude)},
             {"boundary", static_cast<std::int64_t>(boundary)},
             {"lost_clocks",
              static_cast<std::int64_t>(runtime_->lost_clocks_total() - lost_before)}});
      }
      if (ledger_ != nullptr) {
        ledger_->Close(
            fault_event, 0.0,
            {{"applied", static_cast<std::int64_t>(1)},
             {"lost_clocks",
              static_cast<std::int64_t>(runtime_->lost_clocks_total() - lost_before)}});
      }
    }

    // BidBrain's next decision point: replenish lost capacity.
    const int transient_count = static_cast<int>(AllTransientIds().size());
    if (transient_count < config_.min_transient) {
      const int zone =
          static_cast<int>(injector_.rng().UniformInt(0, config_.schedule.zones - 1));
      AddAllocation(zone, config_.nodes_per_allocation);
    }
    if (config_.min_serverless > 0) {
      // Revoked nodes are walking dead — still members until the
      // detector confirms, but not capacity.
      int serverless_count = 0;
      for (const NodeInfo& node : runtime_->nodes()) {
        if (node.serverless() && !runtime_->IsRevokedNode(node.id)) {
          ++serverless_count;
        }
      }
      if (serverless_count < config_.min_serverless) {
        AddServerlessAllocation(config_.serverless_nodes_per_allocation);
      }
    }

    const int lost_before_clock = runtime_->lost_clocks_total();
    const std::int64_t notices_before_clock =
        runtime_->control_log().NotificationTotal();
    const IterationReport report = runtime_->RunClock();
    ++result.clocks_run;

    if (!report.confirmed_dead.empty()) {
      // The detector confirmed silent nodes dead inside RunClock and the
      // runtime already rolled back / recovered. Attribute the rollback
      // and the suspicion notices to the fault class that silenced each
      // victim; the recovery stall lands on the next clock (carryover).
      const int lost_delta = runtime_->lost_clocks_total() - lost_before_clock;
      const std::int64_t notice_delta =
          runtime_->control_log().NotificationTotal() - notices_before_clock;
      std::vector<FaultClass> causes;
      for (const NodeId node : report.confirmed_dead) {
        const auto it = silenced_cause_.find(node);
        causes.push_back(it != silenced_cause_.end() ? it->second
                                                     : FaultClass::kBlackhole);
        silenced_cause_.erase(node);
        silent_resume_.erase(node);
      }
      // One RunClock performs at most one rollback, so the whole delta
      // goes to the first victim's class; every class still shares the
      // next clock's stall.
      auto& first_stats = result.per_class[static_cast<std::size_t>(causes.front())];
      first_stats.lost_clocks += lost_delta;
      first_stats.control_messages += notice_delta;
      for (const FaultClass cause : causes) {
        carryover_classes_.push_back(cause);
      }
      ForgetNodes(report.confirmed_dead);
      if (tracer_ != nullptr) {
        tracer_->InstantAt(
            runtime_->total_time(), "fault.confirmed_dead", "chaos",
            {{"victims", static_cast<std::int64_t>(report.confirmed_dead.size())},
             {"lost_clocks", static_cast<std::int64_t>(lost_delta)},
             {"boundary", static_cast<std::int64_t>(boundary)}});
      }
    }

    if (!applied.empty()) {
      // Forced-transfer stall of the recovery clock, split across the
      // fault classes that caused it.
      const SimDuration share = report.stall / static_cast<double>(applied.size());
      const SimDuration clock_start = runtime_->total_time() - report.duration;
      for (const FaultClass cls : applied) {
        result.per_class[static_cast<std::size_t>(cls)].stall_seconds += share;
        if (tracer_ != nullptr) {
          // One recovery span per contributing fault class; chaos_soak
          // aggregates these into the per-class recovery breakdown.
          tracer_->SpanAt(clock_start, share, "recovery", "chaos",
                          {{"class", FaultClassName(cls)},
                           {"stall_share", share},
                           {"clock", static_cast<std::int64_t>(report.clock)}});
        }
      }
    }

    // Checkpoint cadence and periodic durable scrubbing live in the
    // recovery manager; every in-memory checkpoint is mirrored as a
    // durable epoch on the simulated device.
    recovery_->OnClockBoundary();

    // The controller drains its inbox; delayed frames age one poll each.
    for (int i = 0; i < 4; ++i) {
      control_channel_.Poll();
    }
    auditor_.ObserveChannel(control_channel_, "controller");
    auditor_.ObserveClock();
  }

  result.final_clock = runtime_->clock();
  result.lost_clocks_total = runtime_->lost_clocks_total();
  result.virtual_time = runtime_->total_time();
  if (ledger_ != nullptr) {
    ledger_->Close(run_event, runtime_->total_time() - run_start,
                   {{"clocks_run", static_cast<std::int64_t>(result.clocks_run)},
                    {"final_clock", static_cast<std::int64_t>(result.final_clock)},
                    {"lost_clocks", static_cast<std::int64_t>(result.lost_clocks_total)}});
  }
  result.final_objective = runtime_->ComputeObjective();
  result.violations = auditor_.violations();
  result.control_sent = control_channel_.messages_sent();
  result.control_delivered = control_channel_.messages_delivered();
  result.control_dropped = control_channel_.messages_dropped();
  result.control_pending = control_channel_.pending();
  result.control_duplicated = control_channel_.messages_duplicated();
  result.control_log_summary = runtime_->control_log().Summary();
  const FailureDetector& detector = runtime_->failure_detector();
  result.detector_suspicions = detector.suspicions();
  result.detector_confirmed_dead = detector.confirmations();
  result.detector_false_positives = detector.false_positives();
  result.recovery_depths = recovery_->depth_counts();
  result.durable_epochs_committed = store_->epochs_committed();
  result.durable_commit_aborts = store_->commit_aborts();
  result.corrupt_frames_injected = corrupt_frames_injected_;
  result.corrupt_epochs_skipped = corrupt_epochs_skipped_;
  result.torn_checkpoints_armed = torn_checkpoints_armed_;
  result.scrubs_run = recovery_->scrubs_run();
  result.scrub_corruptions_found = recovery_->scrub_corruptions_found();
  result.serverless_nodes_revoked = serverless_nodes_revoked_;
  return result;
}

}  // namespace proteus
