// Runtime consistency auditing for chaos runs.
//
// After every clock the auditor re-derives the system's core invariants
// from the runtime's introspection surface and records a violation for
// each one that fails. A chaos soak passes only if the violation list is
// empty; every future elasticity change must survive this gate.
//
// Invariants checked (paper anchor in parentheses):
//   1. Serving ownership: every partition has exactly one serving owner,
//      and that owner is a ready node of the right tier for the stage
//      (§3.2 role placement).
//   2. SSP staleness: no worker's clock is more than `staleness` ahead
//      of the slowest worker, nor ahead of the global clock (§3 fn. 6).
//   3. Data coverage: every input block has exactly one live owner, the
//      owners are exactly the worker nodes, and per-worker item counts
//      sum to the full input set (§3.3, Fig. 5).
//   4. Backup lag: in stages 2/3 the BackupPS copy is never more than
//      backup_sync_every clocks behind the active state (§3.3).
//   5. Progress accounting: completed clocks net of declared rollbacks
//      (clock() + lost_clocks_total()) is monotone and advances by
//      exactly one per executed clock — no silent loss, no double count.
//   6. Membership: ready and preparing sets partition the node list and
//      the reliable tier is never empty (§4.2).
//   7. Channel conservation (optional, per channel): every message sent
//      is delivered, dropped, or still pending, net of fault-injected
//      duplicate copies (sent == delivered + dropped + pending -
//      duplicated_extras) — the fault hook may lose or clone messages,
//      but never unaccountably.
//   8. Detector bound (when the failure detector is enabled): the
//      detector tracks exactly the ready set, and every suspected node
//      either recovers (lease renewed) or is confirmed dead and rolled
//      back within confirm_after clocks — no node lingers suspected past
//      the configured bound.
//   9. Tier guard: no serverless node ever holds a parameter-server
//      role, the serverless worker fraction stays within the configured
//      exposure bound, and (stages 2/3) the backup-sync lag stays
//      bounded while serverless workers are exposed — the TierGuard
//      invariants re-checked every clock (zero-warning tier, PR 10).
#ifndef SRC_CHAOS_CONSISTENCY_AUDITOR_H_
#define SRC_CHAOS_CONSISTENCY_AUDITOR_H_

#include <string>
#include <vector>

#include "src/agileml/runtime.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/ledger.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rpc/channel.h"

namespace proteus {

struct AuditViolation {
  std::string invariant;  // Short name, e.g. "serving-ownership".
  std::string detail;
  Clock clock = 0;  // Runtime clock when the violation was observed.
};

class ConsistencyAuditor {
 public:
  explicit ConsistencyAuditor(const AgileMLRuntime* runtime);

  // Every recorded violation additionally bumps a
  // chaos.audit.violations{invariant=...} counter and drops an
  // "audit.violation" instant on the "chaos" track at the runtime's
  // current virtual time. Either pointer may be nullptr.
  void SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  // Attaches the causal event ledger (and, optionally, a flight
  // recorder). Every violation records an "audit.violation" ledger
  // event parented to the clock that exposed it, and the *first*
  // violation triggers one recorder dump so the post-mortem carries the
  // pristine crime scene. Either pointer may be nullptr.
  void SetLedger(obs::EventLedger* ledger, obs::FlightRecorder* recorder);

  // Call exactly once after every RunClock(). Elasticity operations
  // (Evict/Fail/AddNodes/checkpoint/restore) may happen freely between
  // calls; the invariants must hold at every clock boundary regardless.
  void ObserveClock();

  // Conservation check for a control channel (callable any time).
  void ObserveChannel(const Channel& channel, const std::string& name);

  const std::vector<AuditViolation>& violations() const { return violations_; }
  bool ok() const { return violations_.empty(); }

  // Human-readable digest of up to `max_items` violations.
  std::string Report(std::size_t max_items = 10) const;

 private:
  void Add(const std::string& invariant, const std::string& detail);

  void CheckServingOwnership();
  void CheckStaleness();
  void CheckDataCoverage();
  void CheckBackupLag();
  void CheckProgressAccounting();
  void CheckMembership();
  void CheckDetector();
  void CheckTierGuard();

  const AgileMLRuntime* runtime_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::EventLedger* ledger_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  bool dumped_ = false;  // One auto-dump per run: the first violation.
  std::vector<AuditViolation> violations_;
  bool has_prev_ = false;
  Clock prev_clock_ = 0;
  int prev_lost_ = 0;
  int prev_credited_ = 0;
};

}  // namespace proteus

#endif  // SRC_CHAOS_CONSISTENCY_AUDITOR_H_
