#include "src/chaos/crash_restart.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "src/common/logging.h"

namespace proteus {

namespace {

std::uint64_t Fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xFF)) * 0x100000001B3ULL;
  }
  return h;
}

// Canonical solution-state fingerprint: every shard's checkpoint blob
// plus the clock. Lost-clock accounting is deliberately excluded — it
// legitimately differs across a crash while the model bytes must not.
std::uint64_t StateDigest(const AgileMLRuntime& runtime) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (int s = 0; s < runtime.model().shards(); ++s) {
    for (const std::uint8_t byte : runtime.model().SerializeShardCheckpoint(s)) {
      h = (h ^ byte) * 0x100000001B3ULL;
    }
  }
  return Fnv1a(h, static_cast<std::uint64_t>(runtime.clock()));
}

std::vector<NodeInfo> InitialNodes(const CrashRestartConfig& config) {
  std::vector<NodeInfo> nodes;
  NodeId id = 0;
  for (int i = 0; i < config.initial_reliable; ++i) {
    nodes.push_back({id++, Tier::kReliable, 8, kInvalidAllocation});
  }
  for (int a = 0; a < config.initial_transient_allocations; ++a) {
    for (int i = 0; i < config.nodes_per_allocation; ++i) {
      nodes.push_back({id++, Tier::kTransient, 8, static_cast<AllocationId>(a)});
    }
  }
  return nodes;
}

class CrashRestartDriver {
 public:
  CrashRestartDriver(MLApp* app, const CrashRestartConfig& config,
                     obs::Tracer* tracer, obs::MetricsRegistry* metrics)
      : app_(app), config_(config), tracer_(tracer), metrics_(metrics) {
    PROTEUS_CHECK(app_ != nullptr);
    PROTEUS_CHECK_GE(config_.initial_reliable, 2)
        << "crash scenarios need a reliable survivor";
    PROTEUS_CHECK_GE(config_.horizon, 2);
    PROTEUS_CHECK_GE(config_.crash_at, 1);
    PROTEUS_CHECK_LT(config_.crash_at, config_.horizon);

    runtime_ = std::make_unique<AgileMLRuntime>(app_, config_.agileml,
                                                InitialNodes(config_));
    auditor_ = std::make_unique<ConsistencyAuditor>(runtime_.get());
    store_ = std::make_unique<CheckpointStore>(
        &device_, CheckpointStoreConfig{config_.durable_retain});
    recovery_ = std::make_unique<RecoveryManager>(
        runtime_.get(), store_.get(),
        RecoveryManagerConfig{config_.checkpoint_every, /*scrub_every=*/0});
    AttachObservability();
    // Start-up insurance, as in production: a committed durable epoch
    // exists before the first clock runs.
    recovery_->ForceCheckpoint();
    RecordEpochDigest();
  }

  CrashRestartResult Run() {
    for (Clock boundary = 0; boundary < config_.horizon; ++boundary) {
      if (boundary == config_.crash_at) {
        Crash();
      }
      runtime_->RunClock();
      auditor_->ObserveClock();
      recovery_->OnClockBoundary();
      RecordEpochDigest();
      // The BackupPS copy equals the active state at the moment of the
      // last sync; that digest is the depth-1 rollback reference.
      if (runtime_->roles().UsesBackups() &&
          runtime_->clock() == runtime_->last_sync_clock()) {
        sync_digest_ = StateDigest(*runtime_);
        has_sync_digest_ = true;
      }
    }
    result_.final_clock = runtime_->clock();
    for (const AuditViolation& v : auditor_->violations()) {
      result_.violations.push_back(v);
    }
    return result_;
  }

 private:
  void AttachObservability() {
    if (tracer_ == nullptr && metrics_ == nullptr) {
      return;
    }
    runtime_->SetObservability(tracer_, metrics_);
    auditor_->SetObservability(tracer_, metrics_);
    recovery_->SetObservability(tracer_, metrics_);
  }

  // Commits are keyed by epoch; remember the state digest at each commit
  // so a later durable restore can be checked byte for byte.
  void RecordEpochDigest() {
    const std::uint64_t epoch = store_->last_committed_epoch();
    if (epoch != 0 && epoch_digests_.find(epoch) == epoch_digests_.end()) {
      epoch_digests_[epoch] = StateDigest(*runtime_);
    }
  }

  void Crash() {
    switch (config_.scenario) {
      case CrashScenario::kBackupPromotion:
        CrashActiveTier();
        break;
      case CrashScenario::kActiveRebuild:
        CrashBackupHolder();
        break;
      case CrashScenario::kDurableRestore:
        CrashBothTiersAndRestart();
        break;
    }
  }

  // Every ActivePS host dies unwarned. The BackupPS copy is promoted;
  // the restored state must be the bytes of the last active->backup
  // sync, nothing newer and nothing older.
  void CrashActiveTier() {
    const RoleAssignment& roles = runtime_->roles();
    PROTEUS_CHECK(roles.UsesBackups())
        << "backup-promotion scenario needs stage 2/3 at the crash point";
    PROTEUS_CHECK(has_sync_digest_);
    std::set<NodeId> victims;
    for (const auto& [partition, owner] : roles.server) {
      victims.insert(owner);
    }
    result_.expected_digest = sync_digest_;
    const RecoveryOutcome outcome =
        recovery_->Recover({victims.begin(), victims.end()});
    FinishInProcessRecovery(outcome);
  }

  // One reliable node holding only BackupPS replicas dies. The active
  // copy never moved, so recovery must leave the state bit-for-bit where
  // it was immediately before the crash.
  void CrashBackupHolder() {
    const RoleAssignment& roles = runtime_->roles();
    PROTEUS_CHECK(roles.UsesBackups())
        << "active-rebuild scenario needs stage 2/3 at the crash point";
    std::set<NodeId> servers;
    for (const auto& [partition, owner] : roles.server) {
      servers.insert(owner);
    }
    NodeId victim = kInvalidNode;
    for (const auto& [partition, owner] : roles.backup) {
      if (servers.count(owner) == 0 && (victim == kInvalidNode || owner < victim)) {
        victim = owner;
      }
    }
    PROTEUS_CHECK(victim != kInvalidNode)
        << "no pure-backup holder to kill at the crash point";
    result_.expected_digest = StateDigest(*runtime_);
    const RecoveryOutcome outcome = recovery_->Recover({victim});
    FinishInProcessRecovery(outcome);
  }

  void FinishInProcessRecovery(const RecoveryOutcome& outcome) {
    result_.depth = outcome.depth;
    result_.restored_clock = outcome.restored_clock;
    result_.lost_clocks = outcome.lost_clocks;
    result_.post_recovery_digest = StateDigest(*runtime_);
    result_.digest_match =
        result_.post_recovery_digest == result_.expected_digest;
  }

  // Both tiers die at once and the process goes with them: tear down the
  // runtime, auditor, store and recovery manager, then restart — a new
  // CheckpointStore reopens the surviving device (recovering its epoch
  // cursor from the manifests alone) and a fresh runtime restores the
  // newest valid epoch. Optionally the newest N epochs were corrupted:
  // restart must skip exactly those, and a scrub must find every
  // injected fault.
  void CrashBothTiersAndRestart() {
    std::vector<std::string> manifests;
    for (const std::string& name : device_.List()) {
      if (name.rfind("ck/ep/", 0) == 0 &&
          name.size() >= 9 && name.compare(name.size() - 9, 9, "/MANIFEST") == 0) {
        manifests.push_back(name);
      }
    }
    std::sort(manifests.begin(), manifests.end());  // Epoch order (zero-padded).
    const int corrupt = std::min<int>(config_.corrupt_newest_epochs,
                                      static_cast<int>(manifests.size()) - 1);
    for (int i = 0; i < corrupt; ++i) {
      const std::string& name = manifests[manifests.size() - 1 - static_cast<std::size_t>(i)];
      const auto bytes = device_.Read(name);
      PROTEUS_CHECK(bytes.has_value());
      PROTEUS_CHECK(device_.FlipBit(name, bytes->size() / 2, 3));
      ++result_.corrupt_frames_injected;
    }

    for (const AuditViolation& v : auditor_->violations()) {
      result_.violations.push_back(v);
    }
    recovery_.reset();
    auditor_.reset();
    runtime_.reset();
    store_.reset();

    // --- restart ---
    store_ = std::make_unique<CheckpointStore>(
        &device_, CheckpointStoreConfig{config_.durable_retain});
    const auto loaded = store_->ReadNewestValid();
    PROTEUS_CHECK(loaded.has_value()) << "no valid durable epoch to restart from";
    result_.depth = RecoveryDepth::kDurableRestore;
    result_.durable_epoch = loaded->epoch;
    result_.corrupt_epochs_skipped = loaded->corrupt_epochs_skipped;
    const auto it = epoch_digests_.find(loaded->epoch);
    PROTEUS_CHECK(it != epoch_digests_.end())
        << "restored epoch " << loaded->epoch << " was never committed by this run";
    result_.expected_digest = it->second;

    // The scrub must see every injected corruption — before new commits
    // garbage-collect the damaged epochs.
    const ScrubReport scrub = store_->Scrub();
    result_.scrub_corruptions_found = scrub.corrupt_objects.size();

    runtime_ = std::make_unique<AgileMLRuntime>(app_, config_.agileml,
                                                InitialNodes(config_));
    auditor_ = std::make_unique<ConsistencyAuditor>(runtime_.get());
    recovery_ = std::make_unique<RecoveryManager>(
        runtime_.get(), store_.get(),
        RecoveryManagerConfig{config_.checkpoint_every, /*scrub_every=*/0});
    AttachObservability();
    runtime_->InstallCheckpoint(
        std::vector<std::vector<std::uint8_t>>(loaded->shard_blobs), loaded->clock);
    result_.lost_clocks = runtime_->RestoreFromCheckpoint();
    result_.restored_clock = runtime_->clock();
    result_.post_recovery_digest = StateDigest(*runtime_);
    result_.digest_match =
        result_.post_recovery_digest == result_.expected_digest;
    // Re-arm insurance for the resumed run.
    recovery_->ForceCheckpoint();
    RecordEpochDigest();
  }

  MLApp* app_;
  CrashRestartConfig config_;
  obs::Tracer* tracer_;
  obs::MetricsRegistry* metrics_;

  MemDurableDevice device_;
  std::unique_ptr<AgileMLRuntime> runtime_;
  std::unique_ptr<ConsistencyAuditor> auditor_;
  std::unique_ptr<CheckpointStore> store_;
  std::unique_ptr<RecoveryManager> recovery_;

  std::map<std::uint64_t, std::uint64_t> epoch_digests_;
  std::uint64_t sync_digest_ = 0;
  bool has_sync_digest_ = false;

  CrashRestartResult result_;
};

}  // namespace

const char* CrashScenarioName(CrashScenario scenario) {
  switch (scenario) {
    case CrashScenario::kBackupPromotion:
      return "backup-promotion";
    case CrashScenario::kActiveRebuild:
      return "active-rebuild";
    case CrashScenario::kDurableRestore:
      return "durable-restore";
  }
  return "?";
}

CrashRestartResult RunCrashRestart(MLApp* app, const CrashRestartConfig& config,
                                   obs::Tracer* tracer,
                                   obs::MetricsRegistry* metrics) {
  CrashRestartDriver driver(app, config, tracer, metrics);
  return driver.Run();
}

}  // namespace proteus
