// Eviction-storm survival driver (ISSUE 10): proves that zero-warning
// mass revocations of the ultra-transient serverless tier recover to
// byte-identical state at every depth of the recovery ladder.
//
// A seeded run trains a three-tier cluster (reliable + spot + serverless
// workers) to a storm point, fires a correlated zero-warning revocation,
// and compares model digests against the depth's correct reference:
//
//   kServerlessWipe     every ready serverless node is revoked in the
//                       same instant with no notice of any kind. The
//                       failure detector confirms the deaths a few
//                       clocks later and the runtime rolls back to the
//                       last active->backup sync — which, thanks to
//                       sync suppression while revocations pend, always
//                       predates the storm. The post-rollback digest
//                       must equal the digest captured at that sync.
//   kCrossTierSpot      the same serverless wipe, plus the storm
//                       crosses tiers: ActivePS-hosting spot nodes go
//                       silently dark in the same instant. One detector
//                       batch confirms both tiers; same sync-digest pin.
//   kBackupHolderOverlap  the serverless wipe overlaps a reliable
//                       pure-backup holder dying (depth 2: the backup
//                       is rebuilt from the active copy). The active
//                       state never moves, so the digest immediately
//                       after recovery must equal the digest
//                       immediately before the crash.
//   kFullWipe           the storm revokes the entire serverless tier
//                       mid-round; one boundary later — with the
//                       revocations still unconfirmed — a correlated
//                       event takes every spot node AND the reliable
//                       state holders (depth 3). The in-memory
//                       checkpoint dies with them; recovery must come
//                       from the durable store, and the restored digest
//                       must equal the digest recorded when that epoch
//                       committed.
//
// Throughout every scenario the ConsistencyAuditor re-checks all nine
// invariants (including the TierGuard exposure bounds) at every clock
// boundary, and no serverless loss ever takes a warned-drain path: the
// runtime CHECK-fails on Evict() of a revoked node, and the driver
// never sends a serverless eviction notice. Everything is deterministic
// in the seed.
#ifndef SRC_CHAOS_TIER_STORM_H_
#define SRC_CHAOS_TIER_STORM_H_

#include <cstdint>
#include <vector>

#include "src/agileml/recovery_manager.h"
#include "src/agileml/runtime.h"
#include "src/chaos/consistency_auditor.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ps/checkpoint_store.h"

namespace proteus {

enum class TierStormScenario : int {
  kServerlessWipe = 0,
  kCrossTierSpot = 1,
  kBackupHolderOverlap = 2,
  kFullWipe = 3,
};

const char* TierStormScenarioName(TierStormScenario scenario);

struct TierStormConfig {
  AgileMLConfig agileml;
  TierStormScenario scenario = TierStormScenario::kServerlessWipe;
  int horizon = 22;          // Clocks to run end to end.
  int checkpoint_every = 4;  // Durable checkpoint cadence (boundaries).
  Clock storm_at = 9;        // Boundary at which the storm fires.
  int initial_reliable = 2;
  int initial_transient_allocations = 2;
  int nodes_per_allocation = 4;
  int initial_serverless = 6;  // Serverless worker slots, one allocation.
  int durable_retain = 8;
  std::uint64_t seed = 1;
};

struct TierStormResult {
  TierStormScenario scenario = TierStormScenario::kServerlessWipe;
  RecoveryDepth depth = RecoveryDepth::kNone;
  std::uint64_t expected_digest = 0;       // Correct reference for the depth.
  std::uint64_t post_recovery_digest = 0;  // Taken right after recovery.
  bool digest_match = false;
  int storm_victims = 0;      // Serverless nodes revoked with zero warning.
  int confirmed_serverless = 0;  // Subset the detector confirmed dead.
  int spot_victims = 0;       // Spot nodes the storm took with it.
  int lost_clocks = 0;        // Total clocks rolled back across the run.
  std::uint64_t durable_epoch = 0;  // Epoch restored (kFullWipe only).
  Clock final_clock = 0;
  std::vector<AuditViolation> violations;

  bool ok() const { return digest_match && violations.empty(); }
  // Order-sensitive fingerprint for determinism pins.
  std::uint64_t Digest() const;
};

// Runs the scenario against `app` (must outlive the call); deterministic
// in config.seed.
TierStormResult RunTierStorm(MLApp* app, const TierStormConfig& config,
                             obs::Tracer* tracer = nullptr,
                             obs::MetricsRegistry* metrics = nullptr);

}  // namespace proteus

#endif  // SRC_CHAOS_TIER_STORM_H_
