// Chaos soak harness: drives an AgileMLRuntime through a seeded
// adversarial fault schedule, audits every clock boundary, and reports
// recovery overhead per fault class.
//
// The harness plays the part of the market plus elasticity controller:
// it groups transient nodes into zone-tagged allocations (the unit spot
// revocation acts on), applies the FaultInjector's schedule against the
// runtime, mirrors every grant/notice onto a control channel whose fault
// hook may drop or delay frames, replenishes capacity after losses (as
// BidBrain would at its next decision point), and checkpoints the
// reliable tier periodically so stage-1 failures are survivable.
//
// Everything is deterministic in the seed: two runs with the same seed
// and config produce bit-identical results (Digest() compares them).
#ifndef SRC_CHAOS_HARNESS_H_
#define SRC_CHAOS_HARNESS_H_

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/agileml/recovery_manager.h"
#include "src/agileml/runtime.h"
#include "src/chaos/consistency_auditor.h"
#include "src/chaos/fault_injector.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/ledger.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ps/checkpoint_store.h"
#include "src/rpc/channel.h"

namespace proteus {

struct ChaosConfig {
  AgileMLConfig agileml;
  FaultScheduleConfig schedule;
  int initial_reliable = 2;
  int initial_transient_allocations = 2;
  int nodes_per_allocation = 4;
  // Replenish (as BidBrain would) when ready+preparing transient nodes
  // drop below this.
  int min_transient = 4;
  // Ultra-transient serverless tier (zero eviction warning, PR 10).
  // Serverless allocations hold worker-only burstable slots; the
  // kTierStorm fault class revokes them with no notice of any kind.
  // Thinned capacity is replenished back toward `min_serverless`.
  int initial_serverless_allocations = 0;
  int serverless_nodes_per_allocation = 2;
  int min_serverless = 0;
  // Checkpoint the reliable tier every this many clock boundaries (also
  // once at start-up, so a stage-1 reliable failure is always
  // survivable). Every in-memory checkpoint is mirrored to the durable
  // device through the RecoveryManager.
  int checkpoint_every = 5;
  // Durable epochs retained before garbage collection.
  int durable_retain = 3;
  // Scrub the durable store every this many boundaries (0 = never).
  int scrub_every = 4;
  std::uint64_t seed = 1;
};
// Note: the harness always arms the runtime's failure detector (the
// silent-hang and blackhole fault classes are only observable through
// it); a disabled agileml.detector is enabled with suspect_after=1,
// confirm_after=3.

// Recovery overhead attributed to one fault class across a run.
struct FaultClassStats {
  int events = 0;             // Events of this class actually applied.
  int lost_clocks = 0;        // Clocks rolled back by this class.
  SimDuration stall_seconds = 0.0;  // Forced-transfer stalls it caused.
  std::int64_t control_messages = 0;  // Controller notifications it drove.
};

struct ChaosRunResult {
  Clock final_clock = 0;
  int clocks_run = 0;  // RunClock() invocations (>= final_clock with rollbacks).
  int lost_clocks_total = 0;
  SimDuration virtual_time = 0.0;
  double final_objective = 0.0;
  std::array<FaultClassStats, kNumFaultClasses> per_class{};
  std::vector<AuditViolation> violations;
  // Control-channel accounting (the §5 BidBrain -> controller link).
  std::uint64_t control_sent = 0;
  std::uint64_t control_delivered = 0;
  std::uint64_t control_dropped = 0;
  std::uint64_t control_pending = 0;
  std::uint64_t control_duplicated = 0;  // Fault-injected extra copies.
  std::string control_log_summary;
  // Failure-detector accounting (silent hangs / blackholes).
  std::uint64_t detector_suspicions = 0;
  std::uint64_t detector_confirmed_dead = 0;
  std::uint64_t detector_false_positives = 0;
  // Durability-tier accounting (PR 6): recovery events per escalation
  // depth (indexed by RecoveryDepth), durable checkpoint traffic, and
  // corruption bookkeeping. An injected corruption is only ever visible
  // as a skipped epoch or a scrub hit — never as loaded state.
  std::array<int, 4> recovery_depths{};
  std::uint64_t durable_epochs_committed = 0;
  std::uint64_t durable_commit_aborts = 0;
  int corrupt_frames_injected = 0;
  int corrupt_epochs_skipped = 0;
  int torn_checkpoints_armed = 0;
  std::uint64_t scrubs_run = 0;
  std::uint64_t scrub_corruptions_found = 0;
  // Ultra-transient-tier accounting (PR 10): serverless nodes revoked
  // with zero warning by tier storms (all of them silent by definition).
  std::uint64_t serverless_nodes_revoked = 0;

  bool ok() const { return violations.empty(); }
  // Order-sensitive fingerprint of every numeric field; equal digests
  // across two runs with the same seed certify determinism.
  std::uint64_t Digest() const;
};

class ChaosHarness {
 public:
  // The app must outlive the harness. Model state lives inside the
  // harness's runtime, so one app can serve many sequential runs.
  ChaosHarness(MLApp* app, ChaosConfig config);
  ~ChaosHarness();

  ChaosHarness(const ChaosHarness&) = delete;
  ChaosHarness& operator=(const ChaosHarness&) = delete;

  // Attaches the whole chaos stack to an observability sink: every
  // applied fault drops a "fault.<class>" instant on the "chaos" track,
  // the recovery clock that follows gets a "recovery" span carrying its
  // fault class and stall share, the auditor reports violations, and the
  // call forwards to the runtime and the control channel. Timestamps are
  // the runtime's virtual time, so same-seed traces are bit-identical.
  void SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  // Attaches the causal event ledger (and optional flight recorder) to
  // the whole chaos stack: Run() becomes a "run" causal region, every
  // applied fault a "fault" region whose rollbacks/recoveries are its
  // children, and auditor violations auto-dump the recorder. The ledger
  // never feeds ChaosRunResult::Digest(), so chaos determinism digests
  // are unchanged. Either pointer may be nullptr.
  void SetLedger(obs::EventLedger* ledger, obs::FlightRecorder* recorder);

  // Executes the full schedule; returns the run report.
  ChaosRunResult Run();

  const AgileMLRuntime& runtime() const { return *runtime_; }
  const FaultInjector& injector() const { return injector_; }
  const ConsistencyAuditor& auditor() const { return auditor_; }
  const Channel& control_channel() const { return control_channel_; }
  const RecoveryManager& recovery() const { return *recovery_; }
  const CheckpointStore& store() const { return *store_; }
  MemDurableDevice& device() { return device_; }

 private:
  struct ChaosAllocation {
    int zone = 0;
    bool serverless = false;  // Serverless allocations have no zone.
    std::vector<NodeId> nodes;
  };

  // Applies one fault event; returns false if preconditions are not met
  // yet (the event is retried at the next clock boundary).
  bool Apply(const FaultEvent& event);

  AllocationId AddAllocation(int zone, int count);
  AllocationId AddServerlessAllocation(int count);
  // Removes the given nodes from allocation bookkeeping.
  void ForgetNodes(const std::vector<NodeId>& nodes);
  // Drops every spot allocation from bookkeeping; serverless ones stay.
  void ClearTransientAllocations();
  std::vector<NodeId> ReadyTransientIds() const;   // Spot only.
  std::vector<NodeId> AllTransientIds() const;     // Spot, ready + preparing.
  std::vector<NodeId> ReadyServerlessIds() const;
  void SendEvictionNotice(AllocationId id, const std::vector<NodeId>& nodes,
                          bool warned);

  MLApp* app_;
  ChaosConfig config_;
  FaultInjector injector_;
  std::unique_ptr<AgileMLRuntime> runtime_;
  ConsistencyAuditor auditor_;
  Channel control_channel_;
  // Durable tier: an in-memory simulated device (with fault hooks the
  // checkpoint-corruption classes use) under a versioned store, driven
  // by the RecoveryManager's cadence and escalation ladder.
  MemDurableDevice device_;
  std::unique_ptr<CheckpointStore> store_;
  std::unique_ptr<RecoveryManager> recovery_;
  int corrupt_frames_injected_ = 0;
  int torn_checkpoints_armed_ = 0;
  int corrupt_epochs_skipped_ = 0;
  std::uint64_t serverless_nodes_revoked_ = 0;

  std::map<AllocationId, ChaosAllocation> allocations_;
  AllocationId next_allocation_ = 0;
  NodeId next_node_ = 0;
  std::vector<FaultEvent> deferred_;
  // Allocations added by a preparing-eviction event, to be revoked at
  // the next clock boundary (mid-preload).
  std::vector<AllocationId> pending_preload_evictions_;
  // Boundary currently being processed (so Apply can schedule resumes).
  Clock boundary_ = 0;
  // Silent-hang victims and the boundary at which they resume
  // heartbeating (if still alive); blackholed nodes never appear here.
  std::map<NodeId, Clock> silent_resume_;
  // Which fault class silenced each node, for loss attribution when the
  // detector confirms it dead.
  std::map<NodeId, FaultClass> silenced_cause_;
  // Fault classes whose detector-driven rollback happened inside the
  // previous RunClock: their forced transfers stall the next clock, so
  // the stall share is attributed there.
  std::vector<FaultClass> carryover_classes_;

  // Observability sinks (optional) and per-class fault counters.
  obs::Tracer* tracer_ = nullptr;
  obs::EventLedger* ledger_ = nullptr;
  std::array<obs::Counter*, kNumFaultClasses> fault_counters_{};
};

}  // namespace proteus

#endif  // SRC_CHAOS_HARNESS_H_
