#include "src/apps/mf.h"

#include <cmath>

#include "src/common/logging.h"

namespace proteus {

MatrixFactorizationApp::MatrixFactorizationApp(const RatingsDataset* data, MfConfig config)
    : data_(data), config_(config) {
  PROTEUS_CHECK(data != nullptr);
  PROTEUS_CHECK_GT(config.rank, 0);
}

ModelInit MatrixFactorizationApp::DefineModel() const {
  ModelInit init;
  init.tables.push_back(
      {kTableL, data_->config.users, config_.rank, 0.0F, config_.init_jitter});
  init.tables.push_back(
      {kTableR, data_->config.items, config_.rank, 0.0F, config_.init_jitter});
  return init;
}

double MatrixFactorizationApp::CostPerItem() const {
  // Dot product + two gradient rows: ~8 flops per rank component.
  return 8.0 * static_cast<double>(config_.rank);
}

void MatrixFactorizationApp::ProcessRange(WorkerContext& ctx, std::int64_t begin,
                                          std::int64_t end) {
  const auto lr = static_cast<float>(config_.learning_rate);
  const auto reg = static_cast<float>(config_.regularization);
  const int rank = config_.rank;
  std::vector<float> lrow;
  std::vector<float> rrow;
  std::vector<float> ldelta(static_cast<std::size_t>(rank));
  std::vector<float> rdelta(static_cast<std::size_t>(rank));
  for (std::int64_t n = begin; n < end; ++n) {
    const std::int64_t u = data_->user[static_cast<std::size_t>(n)];
    const std::int64_t i = data_->item[static_cast<std::size_t>(n)];
    const float v = data_->value[static_cast<std::size_t>(n)];
    ctx.ReadInto(kTableL, u, lrow);
    ctx.ReadInto(kTableR, i, rrow);
    float pred = 0.0F;
    for (int k = 0; k < rank; ++k) {
      pred += lrow[static_cast<std::size_t>(k)] * rrow[static_cast<std::size_t>(k)];
    }
    const float err = v - pred;
    for (int k = 0; k < rank; ++k) {
      const float l = lrow[static_cast<std::size_t>(k)];
      const float r = rrow[static_cast<std::size_t>(k)];
      ldelta[static_cast<std::size_t>(k)] = lr * (err * r - reg * l);
      rdelta[static_cast<std::size_t>(k)] = lr * (err * l - reg * r);
    }
    ctx.Update(kTableL, u, ldelta);
    ctx.Update(kTableR, i, rdelta);
  }
}

double MatrixFactorizationApp::ComputeObjective(const ModelStore& model) const {
  const std::int64_t sample = std::min(config_.objective_sample, data_->size());
  PROTEUS_CHECK_GT(sample, 0);
  std::vector<float> lrow;
  std::vector<float> rrow;
  double sq_err = 0.0;
  for (std::int64_t n = 0; n < sample; ++n) {
    model.ReadRow(kTableL, data_->user[static_cast<std::size_t>(n)], lrow);
    model.ReadRow(kTableR, data_->item[static_cast<std::size_t>(n)], rrow);
    double pred = 0.0;
    for (int k = 0; k < config_.rank; ++k) {
      pred += static_cast<double>(lrow[static_cast<std::size_t>(k)]) *
              static_cast<double>(rrow[static_cast<std::size_t>(k)]);
    }
    const double err = static_cast<double>(data_->value[static_cast<std::size_t>(n)]) - pred;
    sq_err += err * err;
  }
  return std::sqrt(sq_err / static_cast<double>(sample));
}

}  // namespace proteus
