#include "src/apps/dnn.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace proteus {

namespace {
void Softmax(std::vector<double>& logits) {
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  double total = 0.0;
  for (double& l : logits) {
    l = std::exp(l - max_logit);
    total += l;
  }
  for (double& l : logits) {
    l /= total;
  }
}
}  // namespace

DnnApp::DnnApp(const FeaturesDataset* data, DnnConfig config) : data_(data), config_(config) {
  PROTEUS_CHECK(data != nullptr);
  PROTEUS_CHECK_GT(config.hidden, 0);
}

ModelInit DnnApp::DefineModel() const {
  ModelInit init;
  init.tables.push_back({kTableW1, static_cast<std::int64_t>(config_.hidden),
                         data_->config.dim, 0.0F, config_.init_jitter});
  init.tables.push_back({kTableW2, static_cast<std::int64_t>(data_->config.classes),
                         config_.hidden, 0.0F, config_.init_jitter});
  return init;
}

double DnnApp::CostPerItem() const {
  // Forward + backward over both layers.
  return 6.0 * (static_cast<double>(config_.hidden) * data_->config.dim +
                static_cast<double>(data_->config.classes) * config_.hidden);
}

DnnApp::Weights DnnApp::Fetch(
    const std::function<void(int, std::int64_t, std::vector<float>&)>& read) const {
  const int dim = data_->config.dim;
  const int classes = data_->config.classes;
  Weights w;
  w.w1.resize(static_cast<std::size_t>(config_.hidden) * dim);
  w.w2.resize(static_cast<std::size_t>(classes) * config_.hidden);
  std::vector<float> row;
  for (int h = 0; h < config_.hidden; ++h) {
    read(kTableW1, h, row);
    std::copy(row.begin(), row.end(), w.w1.begin() + static_cast<std::size_t>(h) * dim);
  }
  for (int c = 0; c < classes; ++c) {
    read(kTableW2, c, row);
    std::copy(row.begin(), row.end(),
              w.w2.begin() + static_cast<std::size_t>(c) * config_.hidden);
  }
  return w;
}

void DnnApp::ProcessRange(WorkerContext& ctx, std::int64_t begin, std::int64_t end) {
  if (end <= begin) {
    return;
  }
  const int dim = data_->config.dim;
  const int classes = data_->config.classes;
  const int hidden = config_.hidden;
  const auto batch = static_cast<double>(end - begin);

  const Weights w = Fetch([&ctx](int table, std::int64_t row, std::vector<float>& out) {
    ctx.ReadInto(table, row, out);
  });
  std::vector<float> g1(w.w1.size(), 0.0F);
  std::vector<float> g2(w.w2.size(), 0.0F);
  std::vector<double> act(static_cast<std::size_t>(hidden));
  std::vector<double> logits(static_cast<std::size_t>(classes));
  std::vector<double> hidden_grad(static_cast<std::size_t>(hidden));

  for (std::int64_t n = begin; n < end; ++n) {
    const float* x = data_->Sample(n);
    const std::int32_t y = data_->label[static_cast<std::size_t>(n)];
    // Forward.
    for (int h = 0; h < hidden; ++h) {
      const float* w1h = &w.w1[static_cast<std::size_t>(h) * dim];
      double z = 0.0;
      for (int j = 0; j < dim; ++j) {
        z += static_cast<double>(w1h[j]) * x[j];
      }
      act[static_cast<std::size_t>(h)] = z > 0.0 ? z : 0.0;  // ReLU.
    }
    for (int c = 0; c < classes; ++c) {
      const float* w2c = &w.w2[static_cast<std::size_t>(c) * hidden];
      double z = 0.0;
      for (int h = 0; h < hidden; ++h) {
        z += static_cast<double>(w2c[h]) * act[static_cast<std::size_t>(h)];
      }
      logits[static_cast<std::size_t>(c)] = z;
    }
    Softmax(logits);
    // Backward.
    std::fill(hidden_grad.begin(), hidden_grad.end(), 0.0);
    for (int c = 0; c < classes; ++c) {
      const double coeff = logits[static_cast<std::size_t>(c)] - (c == y ? 1.0 : 0.0);
      float* g2c = &g2[static_cast<std::size_t>(c) * hidden];
      const float* w2c = &w.w2[static_cast<std::size_t>(c) * hidden];
      for (int h = 0; h < hidden; ++h) {
        g2c[h] += static_cast<float>(coeff * act[static_cast<std::size_t>(h)]);
        hidden_grad[static_cast<std::size_t>(h)] += coeff * static_cast<double>(w2c[h]);
      }
    }
    for (int h = 0; h < hidden; ++h) {
      if (act[static_cast<std::size_t>(h)] <= 0.0) {
        continue;  // ReLU gate.
      }
      float* g1h = &g1[static_cast<std::size_t>(h) * dim];
      const auto coeff = static_cast<float>(hidden_grad[static_cast<std::size_t>(h)]);
      for (int j = 0; j < dim; ++j) {
        g1h[j] += coeff * x[j];
      }
    }
  }

  // One coalesced additive update per row.
  const auto lr = static_cast<float>(config_.learning_rate);
  const auto reg = static_cast<float>(config_.regularization);
  std::vector<float> delta;
  delta.resize(static_cast<std::size_t>(dim));
  for (int h = 0; h < hidden; ++h) {
    const float* g1h = &g1[static_cast<std::size_t>(h) * dim];
    const float* w1h = &w.w1[static_cast<std::size_t>(h) * dim];
    for (int j = 0; j < dim; ++j) {
      delta[static_cast<std::size_t>(j)] =
          -lr * (g1h[j] / static_cast<float>(batch) + reg * w1h[j]);
    }
    ctx.Update(kTableW1, h, delta);
  }
  delta.resize(static_cast<std::size_t>(hidden));
  for (int c = 0; c < classes; ++c) {
    const float* g2c = &g2[static_cast<std::size_t>(c) * hidden];
    const float* w2c = &w.w2[static_cast<std::size_t>(c) * hidden];
    for (int h = 0; h < hidden; ++h) {
      delta[static_cast<std::size_t>(h)] =
          -lr * (g2c[h] / static_cast<float>(batch) + reg * w2c[h]);
    }
    ctx.Update(kTableW2, c, delta);
  }
}

double DnnApp::SampleLoss(const Weights& w, std::int64_t index) const {
  const int dim = data_->config.dim;
  const int classes = data_->config.classes;
  const int hidden = config_.hidden;
  const float* x = data_->Sample(index);
  std::vector<double> act(static_cast<std::size_t>(hidden));
  for (int h = 0; h < hidden; ++h) {
    const float* w1h = &w.w1[static_cast<std::size_t>(h) * dim];
    double z = 0.0;
    for (int j = 0; j < dim; ++j) {
      z += static_cast<double>(w1h[j]) * x[j];
    }
    act[static_cast<std::size_t>(h)] = z > 0.0 ? z : 0.0;
  }
  std::vector<double> logits(static_cast<std::size_t>(classes));
  for (int c = 0; c < classes; ++c) {
    const float* w2c = &w.w2[static_cast<std::size_t>(c) * hidden];
    double z = 0.0;
    for (int h = 0; h < hidden; ++h) {
      z += static_cast<double>(w2c[h]) * act[static_cast<std::size_t>(h)];
    }
    logits[static_cast<std::size_t>(c)] = z;
  }
  Softmax(logits);
  const std::int32_t y = data_->label[static_cast<std::size_t>(index)];
  return -std::log(std::max(logits[static_cast<std::size_t>(y)], 1e-12));
}

double DnnApp::ComputeObjective(const ModelStore& model) const {
  const std::int64_t sample = std::min(config_.objective_sample, data_->size());
  PROTEUS_CHECK_GT(sample, 0);
  const Weights w = Fetch([&model](int table, std::int64_t row, std::vector<float>& out) {
    model.ReadRow(table, row, out);
  });
  double loss = 0.0;
  for (std::int64_t n = 0; n < sample; ++n) {
    loss += SampleLoss(w, n);
  }
  return loss / static_cast<double>(sample);
}

}  // namespace proteus
