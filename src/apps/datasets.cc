#include "src/apps/datasets.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace proteus {

RatingsDataset GenerateRatings(const RatingsConfig& config) {
  PROTEUS_CHECK_GT(config.users, 0);
  PROTEUS_CHECK_GT(config.items, 0);
  PROTEUS_CHECK_GT(config.ratings, 0);
  Rng rng(config.seed);
  RatingsDataset data;
  data.config = config;
  data.user.reserve(static_cast<std::size_t>(config.ratings));
  data.item.reserve(static_cast<std::size_t>(config.ratings));
  data.value.reserve(static_cast<std::size_t>(config.ratings));

  // Planted factors: entries ~ N(0, 1/sqrt(true_rank)) so that planted
  // ratings have unit-order variance.
  const double scale = 1.0 / std::sqrt(static_cast<double>(config.true_rank));
  std::vector<float> lstar(static_cast<std::size_t>(config.users * config.true_rank));
  std::vector<float> rstar(static_cast<std::size_t>(config.items * config.true_rank));
  for (auto& v : lstar) {
    v = static_cast<float>(rng.Normal(0.0, scale));
  }
  for (auto& v : rstar) {
    v = static_cast<float>(rng.Normal(0.0, scale));
  }

  for (std::int64_t n = 0; n < config.ratings; ++n) {
    const auto u = static_cast<std::int32_t>(rng.UniformInt(0, config.users - 1));
    const auto i = static_cast<std::int32_t>(rng.Zipf(config.items, config.item_zipf));
    double dot = 0.0;
    for (int k = 0; k < config.true_rank; ++k) {
      dot += static_cast<double>(
                 lstar[static_cast<std::size_t>(u) * config.true_rank + k]) *
             static_cast<double>(rstar[static_cast<std::size_t>(i) * config.true_rank + k]);
    }
    data.user.push_back(u);
    data.item.push_back(i);
    data.value.push_back(static_cast<float>(dot + rng.Normal(0.0, config.noise)));
  }
  if (config.sort_by_user) {
    std::vector<std::size_t> order(static_cast<std::size_t>(config.ratings));
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::stable_sort(order.begin(), order.end(), [&data](std::size_t a, std::size_t b) {
      return data.user[a] < data.user[b];
    });
    RatingsDataset sorted;
    sorted.config = data.config;
    sorted.user.reserve(order.size());
    sorted.item.reserve(order.size());
    sorted.value.reserve(order.size());
    for (const std::size_t i : order) {
      sorted.user.push_back(data.user[i]);
      sorted.item.push_back(data.item[i]);
      sorted.value.push_back(data.value[i]);
    }
    return sorted;
  }
  return data;
}

FeaturesDataset GenerateFeatures(const FeaturesConfig& config) {
  PROTEUS_CHECK_GT(config.samples, 0);
  PROTEUS_CHECK_GT(config.dim, 0);
  PROTEUS_CHECK_GT(config.classes, 1);
  Rng rng(config.seed);
  FeaturesDataset data;
  data.config = config;
  data.x.resize(static_cast<std::size_t>(config.samples) * config.dim);
  data.label.resize(static_cast<std::size_t>(config.samples));

  // Class centers: sparse random directions scaled by the separation.
  std::vector<float> centers(static_cast<std::size_t>(config.classes) * config.dim, 0.0F);
  const int active_dims = std::max(4, config.dim / 16);
  for (int c = 0; c < config.classes; ++c) {
    for (int a = 0; a < active_dims; ++a) {
      const auto d = static_cast<std::size_t>(rng.UniformInt(0, config.dim - 1));
      centers[static_cast<std::size_t>(c) * config.dim + d] = static_cast<float>(
          rng.Normal(0.0, config.class_separation / std::sqrt(active_dims)));
    }
  }

  for (std::int64_t s = 0; s < config.samples; ++s) {
    const auto y = static_cast<std::int32_t>(rng.UniformInt(0, config.classes - 1));
    data.label[static_cast<std::size_t>(s)] = y;
    float* row = &data.x[static_cast<std::size_t>(s) * config.dim];
    const float* center = &centers[static_cast<std::size_t>(y) * config.dim];
    for (int d = 0; d < config.dim; ++d) {
      row[d] = center[d] + static_cast<float>(rng.Normal(0.0, config.noise));
    }
  }
  return data;
}

CorpusDataset GenerateCorpus(const CorpusConfig& config) {
  PROTEUS_CHECK_GT(config.docs, 0);
  PROTEUS_CHECK_GT(config.vocab, 0);
  PROTEUS_CHECK_GT(config.true_topics, 1);
  Rng rng(config.seed);
  CorpusDataset data;
  data.config = config;
  data.doc_offsets.push_back(0);

  // Each planted topic owns a contiguous slice of the vocabulary plus a
  // Zipf tail over the full vocabulary (word co-occurrence structure).
  const std::int64_t slice = config.vocab / config.true_topics;
  for (std::int64_t d = 0; d < config.docs; ++d) {
    const int len = std::max<int>(
        8, static_cast<int>(rng.ExponentialMean(static_cast<double>(config.avg_doc_len))));
    // Documents mix 1-3 topics.
    const int num_doc_topics = static_cast<int>(rng.UniformInt(1, 3));
    std::vector<int> doc_topics;
    for (int i = 0; i < num_doc_topics; ++i) {
      doc_topics.push_back(static_cast<int>(rng.UniformInt(0, config.true_topics - 1)));
    }
    for (int t = 0; t < len; ++t) {
      const int topic = doc_topics[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(doc_topics.size()) - 1))];
      std::int64_t word = 0;
      if (rng.Bernoulli(0.85)) {
        // In-topic word, Zipf-distributed within the topic's slice.
        const std::int64_t offset = rng.Zipf(std::max<std::int64_t>(1, slice), config.word_zipf);
        word = topic * slice + offset;
      } else {
        // Background word over the whole vocabulary.
        word = rng.Zipf(config.vocab, config.word_zipf);
      }
      data.tokens.push_back(static_cast<std::int32_t>(std::min(word, config.vocab - 1)));
    }
    data.doc_offsets.push_back(static_cast<std::int64_t>(data.tokens.size()));
  }
  return data;
}

}  // namespace proteus
