// Synthetic dataset generators shaped like the paper's evaluation inputs.
//
// Substitution note (DESIGN.md §2): the paper trains on Netflix (sparse
// ratings), ImageNet-LLC (dense features), and NYTimes (bag-of-words).
// We generate scaled-down synthetic datasets with matching structure:
//  - ratings: low-rank-plus-noise values, Zipf item popularity;
//  - features: Gaussian class clusters in dense feature space;
//  - corpus: documents drawn from topic mixtures over a Zipf vocabulary.
// What the systems experiments depend on — parameter-access patterns,
// model sizes, and decreasing training objectives — is preserved.
#ifndef SRC_APPS_DATASETS_H_
#define SRC_APPS_DATASETS_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace proteus {

// --- Sparse ratings (MF / collaborative filtering) ---

struct RatingsConfig {
  std::int64_t users = 20000;
  std::int64_t items = 2000;
  std::int64_t ratings = 500000;
  int true_rank = 8;       // Rank of the planted low-rank structure.
  double noise = 0.1;      // Additive Gaussian noise on ratings.
  double item_zipf = 1.1;  // Item-popularity skew.
  // Sort ratings by user id. Real MF deployments partition training data
  // by user so each worker owns a contiguous user range (its L rows stay
  // node-local); this is also what gives the paper's communication
  // pattern its shape.
  bool sort_by_user = true;
  std::uint64_t seed = 42;
};

struct RatingsDataset {
  RatingsConfig config;
  std::vector<std::int32_t> user;  // Parallel arrays, one entry per rating.
  std::vector<std::int32_t> item;
  std::vector<float> value;

  std::int64_t size() const { return static_cast<std::int64_t>(value.size()); }
};

RatingsDataset GenerateRatings(const RatingsConfig& config);

// --- Dense labeled features (MLR / classification) ---

struct FeaturesConfig {
  std::int64_t samples = 8192;
  int dim = 1024;
  int classes = 64;
  double class_separation = 2.0;  // Distance between class centers.
  double noise = 1.0;
  std::uint64_t seed = 43;
};

struct FeaturesDataset {
  FeaturesConfig config;
  std::vector<float> x;            // Row-major samples x dim.
  std::vector<std::int32_t> label;

  std::int64_t size() const { return static_cast<std::int64_t>(label.size()); }
  const float* Sample(std::int64_t i) const { return &x[static_cast<std::size_t>(i) * config.dim]; }
};

FeaturesDataset GenerateFeatures(const FeaturesConfig& config);

// --- Bag-of-words corpus (LDA / topic modeling) ---

struct CorpusConfig {
  std::int64_t docs = 4000;
  std::int64_t vocab = 4000;
  int true_topics = 16;     // Planted topics used for generation.
  int avg_doc_len = 100;
  double word_zipf = 1.05;  // Within-topic word-frequency skew.
  std::uint64_t seed = 44;
};

struct CorpusDataset {
  CorpusConfig config;
  std::vector<std::int32_t> tokens;       // Word ids, all docs concatenated.
  std::vector<std::int64_t> doc_offsets;  // docs+1 offsets into tokens.

  std::int64_t num_docs() const { return static_cast<std::int64_t>(doc_offsets.size()) - 1; }
  std::int64_t num_tokens() const { return static_cast<std::int64_t>(tokens.size()); }
  std::int64_t DocBegin(std::int64_t d) const { return doc_offsets[static_cast<std::size_t>(d)]; }
  std::int64_t DocEnd(std::int64_t d) const {
    return doc_offsets[static_cast<std::size_t>(d) + 1];
  }
};

CorpusDataset GenerateCorpus(const CorpusConfig& config);

}  // namespace proteus

#endif  // SRC_APPS_DATASETS_H_
