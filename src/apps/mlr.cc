#include "src/apps/mlr.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace proteus {

MultinomialLogRegApp::MultinomialLogRegApp(const FeaturesDataset* data, MlrConfig config)
    : data_(data), config_(config) {
  PROTEUS_CHECK(data != nullptr);
}

ModelInit MultinomialLogRegApp::DefineModel() const {
  ModelInit init;
  init.tables.push_back({kTableW, static_cast<std::int64_t>(data_->config.classes),
                         data_->config.dim, 0.0F, config_.init_jitter});
  return init;
}

double MultinomialLogRegApp::CostPerItem() const {
  // K dot products + K gradient accumulations over dim components.
  return 3.0 * static_cast<double>(data_->config.classes) *
         static_cast<double>(data_->config.dim);
}

namespace {
// Computes softmax probabilities in place from logits.
void SoftmaxInPlace(std::vector<double>& logits) {
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  double total = 0.0;
  for (double& l : logits) {
    l = std::exp(l - max_logit);
    total += l;
  }
  for (double& l : logits) {
    l /= total;
  }
}
}  // namespace

void MultinomialLogRegApp::ProcessRange(WorkerContext& ctx, std::int64_t begin,
                                        std::int64_t end) {
  const int classes = data_->config.classes;
  const int dim = data_->config.dim;
  const auto batch = static_cast<double>(end - begin);
  if (batch <= 0) {
    return;
  }
  // Fetch the full weight matrix once (one read per row per clock).
  std::vector<float> w(static_cast<std::size_t>(classes) * dim);
  std::vector<float> row;
  for (int c = 0; c < classes; ++c) {
    ctx.ReadInto(kTableW, c, row);
    std::copy(row.begin(), row.end(), w.begin() + static_cast<std::size_t>(c) * dim);
  }
  std::vector<float> grad(static_cast<std::size_t>(classes) * dim, 0.0F);
  std::vector<double> logits(static_cast<std::size_t>(classes));

  for (std::int64_t n = begin; n < end; ++n) {
    const float* x = data_->Sample(n);
    const std::int32_t y = data_->label[static_cast<std::size_t>(n)];
    for (int c = 0; c < classes; ++c) {
      const float* wc = &w[static_cast<std::size_t>(c) * dim];
      double dot = 0.0;
      for (int d = 0; d < dim; ++d) {
        dot += static_cast<double>(wc[d]) * static_cast<double>(x[d]);
      }
      logits[static_cast<std::size_t>(c)] = dot;
    }
    SoftmaxInPlace(logits);
    for (int c = 0; c < classes; ++c) {
      const auto coeff = static_cast<float>(logits[static_cast<std::size_t>(c)] -
                                            (c == y ? 1.0 : 0.0));
      float* gc = &grad[static_cast<std::size_t>(c) * dim];
      for (int d = 0; d < dim; ++d) {
        gc[d] += coeff * x[d];
      }
    }
  }

  // One coalesced update per weight row: -lr * (grad/batch + reg * w).
  const auto lr = static_cast<float>(config_.learning_rate);
  const auto reg = static_cast<float>(config_.regularization);
  std::vector<float> delta(static_cast<std::size_t>(dim));
  for (int c = 0; c < classes; ++c) {
    const float* gc = &grad[static_cast<std::size_t>(c) * dim];
    const float* wc = &w[static_cast<std::size_t>(c) * dim];
    for (int d = 0; d < dim; ++d) {
      delta[static_cast<std::size_t>(d)] =
          -lr * (gc[d] / static_cast<float>(batch) + reg * wc[d]);
    }
    ctx.Update(kTableW, c, delta);
  }
}

double MultinomialLogRegApp::ComputeObjective(const ModelStore& model) const {
  const std::int64_t sample = std::min(config_.objective_sample, data_->size());
  PROTEUS_CHECK_GT(sample, 0);
  const int classes = data_->config.classes;
  const int dim = data_->config.dim;
  std::vector<float> w(static_cast<std::size_t>(classes) * dim);
  std::vector<float> row;
  for (int c = 0; c < classes; ++c) {
    model.ReadRow(kTableW, c, row);
    std::copy(row.begin(), row.end(), w.begin() + static_cast<std::size_t>(c) * dim);
  }
  std::vector<double> logits(static_cast<std::size_t>(classes));
  double loss = 0.0;
  for (std::int64_t n = 0; n < sample; ++n) {
    const float* x = data_->Sample(n);
    for (int c = 0; c < classes; ++c) {
      const float* wc = &w[static_cast<std::size_t>(c) * dim];
      double dot = 0.0;
      for (int d = 0; d < dim; ++d) {
        dot += static_cast<double>(wc[d]) * static_cast<double>(x[d]);
      }
      logits[static_cast<std::size_t>(c)] = dot;
    }
    SoftmaxInPlace(logits);
    const std::int32_t y = data_->label[static_cast<std::size_t>(n)];
    loss += -std::log(std::max(logits[static_cast<std::size_t>(y)], 1e-12));
  }
  return loss / static_cast<double>(sample);
}

}  // namespace proteus
