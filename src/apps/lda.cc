#include "src/apps/lda.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/common/logging.h"

namespace proteus {

LdaApp::LdaApp(const CorpusDataset* data, LdaConfig config) : data_(data), config_(config) {
  PROTEUS_CHECK(data != nullptr);
  PROTEUS_CHECK_GT(config.topics, 1);
  z_.assign(static_cast<std::size_t>(data->num_tokens()), -1);
  doc_initialized_.assign(static_cast<std::size_t>(data->num_docs()), 0);
}

ModelInit LdaApp::DefineModel() const {
  ModelInit init;
  init.tables.push_back({kTableWordTopic, data_->config.vocab, config_.topics, 0.0F, 0.0F});
  init.tables.push_back({kTableTotals, 1, config_.topics, 0.0F, 0.0F});
  return init;
}

double LdaApp::CostPerItem() const {
  // One Gibbs sweep over an average-length document: ~6 ops per
  // (token, topic) pair.
  return 6.0 * static_cast<double>(data_->config.avg_doc_len) *
         static_cast<double>(config_.topics);
}

void LdaApp::InitDoc(WorkerContext& ctx, std::int64_t doc) {
  const int topics = config_.topics;
  std::vector<float> totals_delta(static_cast<std::size_t>(topics), 0.0F);
  std::unordered_map<std::int32_t, std::vector<float>> word_delta;
  for (std::int64_t t = data_->DocBegin(doc); t < data_->DocEnd(doc); ++t) {
    const auto k = static_cast<std::int32_t>(ctx.rng().UniformInt(0, topics - 1));
    z_[static_cast<std::size_t>(t)] = k;
    const std::int32_t w = data_->tokens[static_cast<std::size_t>(t)];
    auto [it, inserted] = word_delta.try_emplace(w);
    if (inserted) {
      it->second.assign(static_cast<std::size_t>(topics), 0.0F);
    }
    it->second[static_cast<std::size_t>(k)] += 1.0F;
    totals_delta[static_cast<std::size_t>(k)] += 1.0F;
  }
  for (const auto& [w, delta] : word_delta) {
    ctx.Update(kTableWordTopic, w, delta);
  }
  ctx.Update(kTableTotals, 0, totals_delta);
  doc_initialized_[static_cast<std::size_t>(doc)] = 1;
}

void LdaApp::ProcessRange(WorkerContext& ctx, std::int64_t begin, std::int64_t end) {
  const int topics = config_.topics;
  const double alpha = config_.alpha;
  const double beta = config_.beta;
  const double vbeta = static_cast<double>(data_->config.vocab) * beta;

  // Worker-side cache for this clock: word rows fetched once, totals
  // fetched once, all updates coalesced into one delta per row.
  std::unordered_map<std::int32_t, std::vector<float>> word_cache;
  std::unordered_map<std::int32_t, std::vector<float>> word_delta;
  std::vector<float> totals;
  ctx.ReadInto(kTableTotals, 0, totals);
  std::vector<float> totals_delta(static_cast<std::size_t>(topics), 0.0F);
  std::vector<double> prob(static_cast<std::size_t>(topics));
  std::vector<double> doc_hist(static_cast<std::size_t>(topics));

  auto word_row = [&](std::int32_t w) -> std::vector<float>& {
    auto it = word_cache.find(w);
    if (it == word_cache.end()) {
      std::vector<float> row;
      ctx.ReadInto(kTableWordTopic, w, row);
      it = word_cache.emplace(w, std::move(row)).first;
    }
    return it->second;
  };
  auto delta_row = [&](std::int32_t w) -> std::vector<float>& {
    auto [it, inserted] = word_delta.try_emplace(w);
    if (inserted) {
      it->second.assign(static_cast<std::size_t>(topics), 0.0F);
    }
    return it->second;
  };

  for (std::int64_t doc = begin; doc < end; ++doc) {
    if (doc_initialized_[static_cast<std::size_t>(doc)] == 0) {
      InitDoc(ctx, doc);
      continue;
    }
    // Rebuild the document-topic histogram from z.
    std::fill(doc_hist.begin(), doc_hist.end(), 0.0);
    for (std::int64_t t = data_->DocBegin(doc); t < data_->DocEnd(doc); ++t) {
      doc_hist[static_cast<std::size_t>(z_[static_cast<std::size_t>(t)])] += 1.0;
    }
    for (std::int64_t t = data_->DocBegin(doc); t < data_->DocEnd(doc); ++t) {
      const std::int32_t w = data_->tokens[static_cast<std::size_t>(t)];
      const auto old_k = z_[static_cast<std::size_t>(t)];
      std::vector<float>& wrow = word_row(w);
      std::vector<float>& wdelta = delta_row(w);
      // Remove the token from its current topic.
      doc_hist[static_cast<std::size_t>(old_k)] -= 1.0;
      wrow[static_cast<std::size_t>(old_k)] -= 1.0F;
      wdelta[static_cast<std::size_t>(old_k)] -= 1.0F;
      totals[static_cast<std::size_t>(old_k)] -= 1.0F;
      totals_delta[static_cast<std::size_t>(old_k)] -= 1.0F;
      // Collapsed Gibbs conditional.
      for (int k = 0; k < topics; ++k) {
        const double ndk = std::max(0.0, doc_hist[static_cast<std::size_t>(k)]);
        const double nwk =
            std::max(0.0, static_cast<double>(wrow[static_cast<std::size_t>(k)]));
        const double nk =
            std::max(0.0, static_cast<double>(totals[static_cast<std::size_t>(k)]));
        prob[static_cast<std::size_t>(k)] = (ndk + alpha) * (nwk + beta) / (nk + vbeta);
      }
      const auto new_k = static_cast<std::int32_t>(ctx.rng().Categorical(prob));
      // Add it back under the sampled topic.
      z_[static_cast<std::size_t>(t)] = new_k;
      doc_hist[static_cast<std::size_t>(new_k)] += 1.0;
      wrow[static_cast<std::size_t>(new_k)] += 1.0F;
      wdelta[static_cast<std::size_t>(new_k)] += 1.0F;
      totals[static_cast<std::size_t>(new_k)] += 1.0F;
      totals_delta[static_cast<std::size_t>(new_k)] += 1.0F;
    }
  }

  for (const auto& [w, delta] : word_delta) {
    ctx.Update(kTableWordTopic, w, delta);
  }
  ctx.Update(kTableTotals, 0, totals_delta);
}

double LdaApp::ComputeObjective(const ModelStore& model) const {
  const std::int64_t sample = std::min(config_.objective_sample_docs, data_->num_docs());
  PROTEUS_CHECK_GT(sample, 0);
  const int topics = config_.topics;
  const double alpha = config_.alpha;
  const double beta = config_.beta;
  const double vbeta = static_cast<double>(data_->config.vocab) * beta;

  std::vector<float> totals;
  model.ReadRow(kTableTotals, 0, totals);
  std::vector<float> wrow;
  std::vector<double> doc_hist(static_cast<std::size_t>(topics));
  double loglik = 0.0;
  std::int64_t tokens = 0;
  for (std::int64_t doc = 0; doc < sample; ++doc) {
    if (doc_initialized_[static_cast<std::size_t>(doc)] == 0) {
      continue;
    }
    std::fill(doc_hist.begin(), doc_hist.end(), 0.0);
    const double len = static_cast<double>(data_->DocEnd(doc) - data_->DocBegin(doc));
    for (std::int64_t t = data_->DocBegin(doc); t < data_->DocEnd(doc); ++t) {
      doc_hist[static_cast<std::size_t>(z_[static_cast<std::size_t>(t)])] += 1.0;
    }
    for (std::int64_t t = data_->DocBegin(doc); t < data_->DocEnd(doc); ++t) {
      const std::int32_t w = data_->tokens[static_cast<std::size_t>(t)];
      model.ReadRow(kTableWordTopic, w, wrow);
      double p = 0.0;
      for (int k = 0; k < topics; ++k) {
        const double theta =
            (std::max(0.0, doc_hist[static_cast<std::size_t>(k)]) + alpha) /
            (len + static_cast<double>(topics) * alpha);
        const double phi =
            (std::max(0.0, static_cast<double>(wrow[static_cast<std::size_t>(k)])) + beta) /
            (std::max(0.0, static_cast<double>(totals[static_cast<std::size_t>(k)])) + vbeta);
        p += theta * phi;
      }
      loglik += std::log(std::max(p, 1e-12));
      ++tokens;
    }
  }
  if (tokens == 0) {
    return std::log(static_cast<double>(data_->config.vocab));  // Uniform baseline.
  }
  return -loglik / static_cast<double>(tokens);
}

}  // namespace proteus
