// A small feed-forward neural network classifier (DNN — named in §3.2 as
// a stateless-worker application; MLR "is often the last layer of deep
// learning models", §6.2).
//
// Two layers: hidden = relu(W1 x), logits = W2 hidden, trained with
// mini-batch SGD. Both weight matrices live in the parameter server as
// row vectors (W1: one row per hidden unit, W2: one row per class), and
// each worker fetches them once per clock and pushes one coalesced
// additive gradient update per row — the same access pattern a real
// PS-based DNN exhibits.
#ifndef SRC_APPS_DNN_H_
#define SRC_APPS_DNN_H_

#include <functional>

#include "src/agileml/app.h"
#include "src/apps/datasets.h"

namespace proteus {

struct DnnConfig {
  int hidden = 64;
  double learning_rate = 0.05;
  double regularization = 1e-4;
  float init_jitter = 0.05F;
  std::int64_t objective_sample = 2048;
};

class DnnApp : public MLApp {
 public:
  static constexpr int kTableW1 = 0;  // hidden x dim.
  static constexpr int kTableW2 = 1;  // classes x hidden.

  DnnApp(const FeaturesDataset* data, DnnConfig config);

  std::string Name() const override { return "dnn"; }
  ModelInit DefineModel() const override;
  std::int64_t NumItems() const override { return data_->size(); }
  double CostPerItem() const override;
  void ProcessRange(WorkerContext& ctx, std::int64_t begin, std::int64_t end) override;
  // Mean cross-entropy over a fixed sample (lower is better).
  double ComputeObjective(const ModelStore& model) const override;

 private:
  struct Weights {
    std::vector<float> w1;  // Row-major hidden x dim.
    std::vector<float> w2;  // Row-major classes x hidden.
  };
  Weights Fetch(const std::function<void(int, std::int64_t, std::vector<float>&)>& read) const;
  double SampleLoss(const Weights& w, std::int64_t index) const;

  const FeaturesDataset* data_;
  DnnConfig config_;
};

}  // namespace proteus

#endif  // SRC_APPS_DNN_H_
