// Multinomial Logistic Regression via SGD (§6.2): softmax classification
// where the K per-class weight vectors live in the parameter server and
// every gradient step updates the full model. Like a real worker-side
// library, each ProcessRange reads the K weight rows once per clock,
// accumulates the mini-batch gradient locally, and write-back-coalesces
// one update per row.
#ifndef SRC_APPS_MLR_H_
#define SRC_APPS_MLR_H_

#include "src/agileml/app.h"
#include "src/apps/datasets.h"

namespace proteus {

struct MlrConfig {
  double learning_rate = 0.05;
  double regularization = 1e-4;
  float init_jitter = 0.01F;
  std::int64_t objective_sample = 2048;
};

class MultinomialLogRegApp : public MLApp {
 public:
  static constexpr int kTableW = 0;  // classes x dim weight matrix.

  MultinomialLogRegApp(const FeaturesDataset* data, MlrConfig config);

  std::string Name() const override { return "mlr"; }
  ModelInit DefineModel() const override;
  std::int64_t NumItems() const override { return data_->size(); }
  double CostPerItem() const override;
  void ProcessRange(WorkerContext& ctx, std::int64_t begin, std::int64_t end) override;
  // Mean cross-entropy over a fixed sample (lower is better).
  double ComputeObjective(const ModelStore& model) const override;

 private:
  const FeaturesDataset* data_;
  MlrConfig config_;
};

}  // namespace proteus

#endif  // SRC_APPS_MLR_H_
