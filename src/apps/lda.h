// Latent Dirichlet Allocation via collapsed Gibbs sampling (§6.2). One
// input item = one document. The shared state in the parameter server is
// the word-topic count matrix plus the per-topic totals row; per-token
// topic assignments (z) ride with the input data, and per-document topic
// histograms are recomputed from z on each visit, keeping workers
// stateless in the paper's sense.
//
// Note on recovery: after a rollback the PS counts revert while z does
// not, so counts and assignments may disagree by a few updates. Collapsed
// Gibbs is robust to this (counts are clamped non-negative in the
// sampling distribution) and re-converges; the same slack exists in any
// bounded-staleness LDA.
#ifndef SRC_APPS_LDA_H_
#define SRC_APPS_LDA_H_

#include <vector>

#include "src/agileml/app.h"
#include "src/apps/datasets.h"

namespace proteus {

struct LdaConfig {
  int topics = 64;
  double alpha = 0.1;  // Document-topic smoothing.
  double beta = 0.01;  // Topic-word smoothing.
  std::int64_t objective_sample_docs = 256;
};

class LdaApp : public MLApp {
 public:
  static constexpr int kTableWordTopic = 0;  // vocab x topics counts.
  static constexpr int kTableTotals = 1;     // 1 x topics totals.

  LdaApp(const CorpusDataset* data, LdaConfig config);

  std::string Name() const override { return "lda"; }
  ModelInit DefineModel() const override;
  std::int64_t NumItems() const override { return data_->num_docs(); }
  double CostPerItem() const override;
  void ProcessRange(WorkerContext& ctx, std::int64_t begin, std::int64_t end) override;
  // Negative mean per-token log-likelihood (lower is better).
  double ComputeObjective(const ModelStore& model) const override;

 private:
  void InitDoc(WorkerContext& ctx, std::int64_t doc);

  const CorpusDataset* data_;
  LdaConfig config_;
  // Per-token topic assignments; documents are disjoint across worker
  // nodes, so concurrent access never overlaps.
  std::vector<std::int32_t> z_;
  std::vector<char> doc_initialized_;
};

}  // namespace proteus

#endif  // SRC_APPS_LDA_H_
