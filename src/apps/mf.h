// Matrix Factorization via SGD (§6.2): factors a sparse ratings matrix X
// into L x R. One input item = one observed rating; processing it
// updates the corresponding row of L and row (column of X) of R by the
// gradient, exactly as in the paper's MF implementation.
#ifndef SRC_APPS_MF_H_
#define SRC_APPS_MF_H_

#include <memory>

#include "src/agileml/app.h"
#include "src/apps/datasets.h"

namespace proteus {

struct MfConfig {
  int rank = 64;                // Factorization rank (paper: 1000 / 100).
  double learning_rate = 0.02;
  double regularization = 0.02;
  float init_jitter = 0.05F;    // Parameter init range.
  // Fraction of ratings used for the RMSE objective sample.
  std::int64_t objective_sample = 50000;
};

class MatrixFactorizationApp : public MLApp {
 public:
  // Table ids for the two factor matrices.
  static constexpr int kTableL = 0;
  static constexpr int kTableR = 1;

  MatrixFactorizationApp(const RatingsDataset* data, MfConfig config);

  std::string Name() const override { return "mf"; }
  ModelInit DefineModel() const override;
  std::int64_t NumItems() const override { return data_->size(); }
  double CostPerItem() const override;
  void ProcessRange(WorkerContext& ctx, std::int64_t begin, std::int64_t end) override;
  // Root-mean-square error over a fixed rating sample (lower is better).
  double ComputeObjective(const ModelStore& model) const override;

  const MfConfig& config() const { return config_; }

 private:
  const RatingsDataset* data_;
  MfConfig config_;
};

}  // namespace proteus

#endif  // SRC_APPS_MF_H_
