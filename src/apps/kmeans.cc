#include "src/apps/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace proteus {

KMeansApp::KMeansApp(const FeaturesDataset* data, KMeansConfig config)
    : data_(data), config_(config) {
  PROTEUS_CHECK(data != nullptr);
  PROTEUS_CHECK_GT(config.clusters, 1);
}

ModelInit KMeansApp::DefineModel() const {
  ModelInit init;
  // Centers initialize with small jitter so they separate; the count
  // component starts at 0 (jitter on it is harmless noise < 1).
  init.tables.push_back({kTableCentroids, static_cast<std::int64_t>(config_.clusters),
                         dim() + 1, 0.0F, 0.5F});
  return init;
}

double KMeansApp::CostPerItem() const {
  // Distance to every centroid plus one center update.
  return 3.0 * static_cast<double>(config_.clusters) * dim();
}

void KMeansApp::ProcessRange(WorkerContext& ctx, std::int64_t begin, std::int64_t end) {
  const int k = config_.clusters;
  const int d = dim();
  // Fetch all centroids once per clock (worker-side cache behaviour).
  std::vector<std::vector<float>> centers(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) {
    ctx.ReadInto(kTableCentroids, c, centers[static_cast<std::size_t>(c)]);
  }
  // Local deltas, coalesced into one update per centroid row.
  std::vector<std::vector<float>> delta(
      static_cast<std::size_t>(k), std::vector<float>(static_cast<std::size_t>(d) + 1, 0.0F));

  for (std::int64_t i = begin; i < end; ++i) {
    const float* x = data_->Sample(i);
    int best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (int c = 0; c < k; ++c) {
      const std::vector<float>& center = centers[static_cast<std::size_t>(c)];
      double dist = 0.0;
      for (int j = 0; j < d; ++j) {
        const double diff = static_cast<double>(x[j]) -
                            static_cast<double>(center[static_cast<std::size_t>(j)]);
        dist += diff * diff;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    std::vector<float>& center = centers[static_cast<std::size_t>(best)];
    std::vector<float>& dc = delta[static_cast<std::size_t>(best)];
    const double count = std::max(0.0, static_cast<double>(center[static_cast<std::size_t>(d)]));
    const double rate = std::max(1.0 / (count + 1.0), config_.min_rate);
    for (int j = 0; j < d; ++j) {
      const auto step = static_cast<float>(
          rate * (static_cast<double>(x[j]) -
                  static_cast<double>(center[static_cast<std::size_t>(j)])));
      center[static_cast<std::size_t>(j)] += step;  // Keep the local view current.
      dc[static_cast<std::size_t>(j)] += step;
    }
    center[static_cast<std::size_t>(d)] += 1.0F;
    dc[static_cast<std::size_t>(d)] += 1.0F;
  }

  for (int c = 0; c < k; ++c) {
    ctx.Update(kTableCentroids, c, delta[static_cast<std::size_t>(c)]);
  }
}

double KMeansApp::ComputeObjective(const ModelStore& model) const {
  const std::int64_t sample = std::min(config_.objective_sample, data_->size());
  PROTEUS_CHECK_GT(sample, 0);
  const int k = config_.clusters;
  const int d = dim();
  std::vector<std::vector<float>> centers(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) {
    model.ReadRow(kTableCentroids, c, centers[static_cast<std::size_t>(c)]);
  }
  double total = 0.0;
  for (std::int64_t i = 0; i < sample; ++i) {
    const float* x = data_->Sample(i);
    double best = std::numeric_limits<double>::infinity();
    for (int c = 0; c < k; ++c) {
      const std::vector<float>& center = centers[static_cast<std::size_t>(c)];
      double dist = 0.0;
      for (int j = 0; j < d; ++j) {
        const double diff = static_cast<double>(x[j]) -
                            static_cast<double>(center[static_cast<std::size_t>(j)]);
        dist += diff * diff;
      }
      best = std::min(best, dist);
    }
    total += best;
  }
  return total / static_cast<double>(sample);
}

}  // namespace proteus
