// K-means clustering (named in §3.2 as a stateless-worker application).
//
// Mini-batch k-means (Sculley 2010) maps cleanly onto the additive
// parameter-server model: each centroid row stores its running mean plus
// an assignment counter, and each worker pushes per-centroid deltas
// center += (x - center) / (n + 1), n += 1 — commutative and
// associative in the PS's aggregation sense to first order, and robust
// to bounded staleness like the paper's other apps.
#ifndef SRC_APPS_KMEANS_H_
#define SRC_APPS_KMEANS_H_

#include "src/agileml/app.h"
#include "src/apps/datasets.h"

namespace proteus {

struct KMeansConfig {
  int clusters = 16;
  // Learning-rate floor: the per-assignment rate is
  // max(1 / (count + 1), min_rate) so late updates still move centers.
  double min_rate = 1e-4;
  std::int64_t objective_sample = 4096;
};

class KMeansApp : public MLApp {
 public:
  // Centroid table: `clusters` rows of [mean(dim floats), count].
  static constexpr int kTableCentroids = 0;

  KMeansApp(const FeaturesDataset* data, KMeansConfig config);

  std::string Name() const override { return "kmeans"; }
  ModelInit DefineModel() const override;
  std::int64_t NumItems() const override { return data_->size(); }
  double CostPerItem() const override;
  void ProcessRange(WorkerContext& ctx, std::int64_t begin, std::int64_t end) override;
  // Mean within-cluster squared distance over a sample (lower is better).
  double ComputeObjective(const ModelStore& model) const override;

 private:
  int dim() const { return data_->config.dim; }

  const FeaturesDataset* data_;
  KMeansConfig config_;
};

}  // namespace proteus

#endif  // SRC_APPS_KMEANS_H_
