#include "src/common/csv.h"

#include <fstream>
#include <sstream>

#include "src/common/logging.h"

namespace proteus {

CsvWriter::CsvWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  PROTEUS_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(cells);
}

std::string CsvWriter::Render() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) {
        out << ",";
      }
      out << cells[i];
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return out.str();
}

bool CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    PROTEUS_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  f << Render();
  return static_cast<bool>(f);
}

namespace {
std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  cells.push_back(cell);
  return cells;
}
}  // namespace

CsvTable ParseCsv(const std::string& text) {
  CsvTable table;
  std::istringstream in(text);
  std::string line;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    auto cells = SplitLine(line);
    if (!have_header) {
      table.headers = std::move(cells);
      have_header = true;
    } else {
      table.rows.push_back(std::move(cells));
    }
  }
  return table;
}

CsvTable ReadCsvFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    return {};
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseCsv(buf.str());
}

}  // namespace proteus
