#include "src/common/crc32.h"

#include <array>

namespace proteus {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

std::uint32_t Crc32Init() { return 0xFFFFFFFFu; }

std::uint32_t Crc32Update(std::uint32_t crc, std::span<const std::uint8_t> data) {
  for (std::uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

std::uint32_t Crc32Final(std::uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

std::uint32_t Crc32(std::span<const std::uint8_t> data) {
  return Crc32Final(Crc32Update(Crc32Init(), data));
}

}  // namespace proteus
