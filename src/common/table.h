// Plain-text table rendering for benchmark output. Benches print paper
// figures/tables as aligned rows, so results are directly comparable to
// the paper.
#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace proteus {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Row cells; number must match the header count.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Cell(double value, int precision = 2);
  static std::string Cell(const std::string& value) { return value; }

  // Renders the table with aligned columns and a separator line.
  std::string Render() const;

  // Renders and writes to stdout.
  void Print() const;

  // Writes the table as CSV. Returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

  // Print(), plus — when the PROTEUS_RESULTS_DIR environment variable is
  // set — a CSV copy at $PROTEUS_RESULTS_DIR/<name>.csv so benchmark
  // tables can be collected for plotting.
  void PrintAndMaybeExport(const std::string& name) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace proteus

#endif  // SRC_COMMON_TABLE_H_
