// Minimal leveled logger. Not thread-safe per line beyond what stdio gives,
// which is fine: log lines are short and writes are atomic-ish on Linux.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>

namespace proteus {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Process-wide minimum level; messages below it are discarded. The
// initial level comes from the PROTEUS_LOG_LEVEL environment variable,
// read once at first use (see ParseLogLevel for accepted spellings;
// unset or unparsable falls back to kInfo). SetLogLevel overrides it.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses a level name ("debug", "info", "warning"/"warn", "error",
// "fatal"; case-insensitive) or a numeric value 0-4. Returns nullopt
// for anything else (including nullptr).
std::optional<LogLevel> ParseLogLevel(const char* value);

// Invoked once, after a fatal message is printed and before abort().
// Lets crash tooling (the obs::FlightRecorder) persist a post-mortem of
// the run that tripped a PROTEUS_CHECK/DCHECK. The hook must be
// async-signal-unsafe-tolerant only in the sense that it runs on the
// failing thread during normal control flow (not from a signal
// handler); re-entrant fatals while the hook runs skip it. Pass nullptr
// to uninstall.
void SetFatalHook(void (*hook)(const char* message, void* arg), void* arg);

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define PROTEUS_LOG(level)                                                               \
  ::proteus::log_internal::LogMessage(::proteus::LogLevel::k##level, __FILE__, __LINE__) \
      .stream()

// CHECK macros abort on violation. Used for internal invariants, not for
// recoverable errors.
#define PROTEUS_CHECK(cond)                                        \
  if (!(cond)) PROTEUS_LOG(Fatal) << "CHECK failed: " #cond << " "

// Debug-only CHECK: compiled out (condition unevaluated) when NDEBUG is
// defined. For invariants too expensive or too strict for release runs.
#ifdef NDEBUG
#define PROTEUS_DCHECK(cond) \
  if (false) PROTEUS_LOG(Fatal) << "DCHECK failed: " #cond << " "
#else
#define PROTEUS_DCHECK(cond) PROTEUS_CHECK(cond)
#endif

#define PROTEUS_CHECK_GE(a, b) PROTEUS_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define PROTEUS_CHECK_GT(a, b) PROTEUS_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define PROTEUS_CHECK_LE(a, b) PROTEUS_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define PROTEUS_CHECK_LT(a, b) PROTEUS_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define PROTEUS_CHECK_EQ(a, b) PROTEUS_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define PROTEUS_CHECK_NE(a, b) PROTEUS_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "

}  // namespace proteus

#endif  // SRC_COMMON_LOGGING_H_
