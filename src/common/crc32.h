// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for framing
// durable checkpoint chunks and manifests. Table-driven, no
// dependencies; the incremental form lets callers checksum a frame
// while streaming it.
#ifndef SRC_COMMON_CRC32_H_
#define SRC_COMMON_CRC32_H_

#include <cstdint>
#include <span>

namespace proteus {

// One-shot CRC-32 of `data`. Matches zlib's crc32(): Crc32 of "123456789"
// is 0xCBF43926.
std::uint32_t Crc32(std::span<const std::uint8_t> data);

// Incremental form: feed the previous return value back as `crc` (start
// from Crc32Init()) and finish with Crc32Final().
std::uint32_t Crc32Init();
std::uint32_t Crc32Update(std::uint32_t crc, std::span<const std::uint8_t> data);
std::uint32_t Crc32Final(std::uint32_t crc);

}  // namespace proteus

#endif  // SRC_COMMON_CRC32_H_
