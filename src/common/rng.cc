#include "src/common/rng.h"

#include <cmath>

#include "src/common/logging.h"

namespace proteus {

std::int64_t Rng::Zipf(std::int64_t n, double exponent) {
  PROTEUS_CHECK_GT(n, 0);
  PROTEUS_CHECK_GT(exponent, 0.0);
  if (n == 1) {
    return 0;
  }
  // Rejection-inversion sampling (Hörmann & Derflinger 1996) for the Zipf
  // distribution on {1..n}; returns the value minus one (zero-based index).
  const double s = exponent;
  auto h = [s](double x) {
    // H(x) = integral of t^-s dt (antiderivative, up to a constant).
    if (s == 1.0) {
      return std::log(x);
    }
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double y) {
    if (s == 1.0) {
      return std::exp(y);
    }
    return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double h_half = h(1.5);
  const double h_n = h(static_cast<double>(n) + 0.5);
  const double scale = h_half - 1.0;  // h(1.5) - p(1), where p(1) = 1^-s = 1.
  for (;;) {
    const double u = scale + Uniform() * (h_n - scale);
    const double x = h_inv(u);
    auto k = static_cast<std::int64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n) {
      k = n;
    }
    // Accept if u >= H(k + 1/2) - k^-s, i.e. u falls under the histogram bar.
    if (u >= h(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -s)) {
      return k - 1;
    }
  }
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  PROTEUS_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    total += w;
  }
  PROTEUS_CHECK_GT(total, 0.0);
  double target = Uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

}  // namespace proteus
