#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace proteus {

void SampleStats::Add(double value) {
  samples_.push_back(value);
  sorted_valid_ = false;
}

void SampleStats::AddAll(const std::vector<double>& values) {
  samples_.insert(samples_.end(), values.begin(), values.end());
  sorted_valid_ = false;
}

double SampleStats::Sum() const {
  double total = 0.0;
  for (double v : samples_) {
    total += v;
  }
  return total;
}

double SampleStats::Mean() const {
  PROTEUS_CHECK(!samples_.empty());
  return Sum() / static_cast<double>(samples_.size());
}

double SampleStats::Variance() const {
  PROTEUS_CHECK(!samples_.empty());
  const double mean = Mean();
  double accum = 0.0;
  for (double v : samples_) {
    accum += (v - mean) * (v - mean);
  }
  return accum / static_cast<double>(samples_.size());
}

double SampleStats::StdDev() const { return std::sqrt(Variance()); }

double SampleStats::Min() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::Max() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::Median() const { return Percentile(50.0); }

double SampleStats::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  PROTEUS_CHECK_GE(p, 0.0);
  PROTEUS_CHECK_LE(p, 100.0);
  EnsureSorted();
  if (sorted_.size() == 1) {
    return sorted_[0];
  }
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void SampleStats::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

void RunningStats::Add(double value) {
  if (n_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++n_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (value - mean_);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

}  // namespace proteus
