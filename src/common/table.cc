#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/common/csv.h"
#include "src/common/logging.h"

namespace proteus {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  PROTEUS_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void TextTable::Print() const { std::fputs(Render().c_str(), stdout); }

bool TextTable::WriteCsv(const std::string& path) const {
  CsvWriter writer(headers_);
  for (const auto& row : rows_) {
    writer.AddRow(row);
  }
  return writer.WriteFile(path);
}

void TextTable::PrintAndMaybeExport(const std::string& name) const {
  Print();
  const char* dir = std::getenv("PROTEUS_RESULTS_DIR");
  if (dir != nullptr && *dir != '\0') {
    const std::string path = std::string(dir) + "/" + name + ".csv";
    if (WriteCsv(path)) {
      std::printf("[results exported to %s]\n", path.c_str());
    }
  }
}

}  // namespace proteus
