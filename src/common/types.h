// Core scalar types shared across the Proteus codebase.
#ifndef SRC_COMMON_TYPES_H_
#define SRC_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace proteus {

// Simulated wall-clock time, in seconds since simulation start.
using SimTime = double;

// Durations, also in seconds.
using SimDuration = double;

// Dollar amounts. Double precision is ample for the magnitudes involved
// (micro-dollar granularity over multi-thousand-dollar budgets).
using Money = double;

// Abstract "work units". One work unit == one vCPU-hour of the reference
// instance class at perfect scaling (the paper's nu is expressed per core).
using WorkUnits = double;

constexpr SimDuration kSecond = 1.0;
constexpr SimDuration kMinute = 60.0;
constexpr SimDuration kHour = 3600.0;
constexpr SimDuration kDay = 24 * kHour;

// Identifiers. 32 bits keeps structs compact; simulations never approach
// the limit.
using NodeId = std::int32_t;
using PartitionId = std::int32_t;
using AllocationId = std::int32_t;
using WorkerId = std::int32_t;

constexpr NodeId kInvalidNode = -1;
constexpr PartitionId kInvalidPartition = -1;
constexpr AllocationId kInvalidAllocation = -1;

// Formats seconds as "1h23m45s" for logs and tables.
std::string FormatDuration(SimDuration seconds);

// Formats dollars as "$12.34".
std::string FormatMoney(Money dollars);

}  // namespace proteus

#endif  // SRC_COMMON_TYPES_H_
