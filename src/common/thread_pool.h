// Fixed-size thread pool. AgileML's runtime uses it to run worker-node
// compute in parallel when executing real training.
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace proteus {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; returns a future for completion/err propagation.
  std::future<void> Submit(std::function<void()> task);

  // Runs fn(i) for i in [0, n) across the pool and waits for all. When
  // tasks throw, every task still runs to completion before the first
  // exception (in index order) is rethrown here; the pool stays usable.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t size() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

}  // namespace proteus

#endif  // SRC_COMMON_THREAD_POOL_H_
