#include "src/common/types.h"

#include <cmath>
#include <cstdio>

namespace proteus {

std::string FormatDuration(SimDuration seconds) {
  char buf[64];
  const bool negative = seconds < 0;
  double s = std::fabs(seconds);
  const int hours = static_cast<int>(s / 3600);
  s -= hours * 3600.0;
  const int minutes = static_cast<int>(s / 60);
  s -= minutes * 60.0;
  if (hours > 0) {
    std::snprintf(buf, sizeof(buf), "%s%dh%02dm%02.0fs", negative ? "-" : "", hours, minutes, s);
  } else if (minutes > 0) {
    std::snprintf(buf, sizeof(buf), "%s%dm%04.1fs", negative ? "-" : "", minutes, s);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.2fs", negative ? "-" : "", s);
  }
  return buf;
}

std::string FormatMoney(Money dollars) {
  char buf[64];
  if (dollars < 0) {
    std::snprintf(buf, sizeof(buf), "-$%.4f", -dollars);
  } else {
    std::snprintf(buf, sizeof(buf), "$%.4f", dollars);
  }
  return buf;
}

}  // namespace proteus
