// Deterministic random-number helper. Every stochastic component in the
// codebase takes an explicit Rng (or a seed) so simulations are reproducible.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace proteus {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Exponential with the given mean (not rate).
  double ExponentialMean(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  // Zipf-distributed integer in [0, n). Uses rejection-inversion
  // (Hörmann & Derflinger), exact and O(1) amortized.
  std::int64_t Zipf(std::int64_t n, double exponent);

  // Samples an index proportionally to the (non-negative) weights.
  std::size_t Categorical(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Derives an independent child generator; useful for giving each worker
  // thread its own stream.
  Rng Fork() { return Rng(engine_() ^ 0xD1B54A32D192ED03ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace proteus

#endif  // SRC_COMMON_RNG_H_
