// Small descriptive-statistics helpers used by benches and BidBrain's
// trace analysis.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace proteus {

// Accumulates samples and answers summary queries. Percentile queries sort
// a copy lazily; suitable for the sample counts we deal with (<= millions).
class SampleStats {
 public:
  void Add(double value);
  void AddAll(const std::vector<double>& values);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Sum() const;
  double Mean() const;      // CHECK-fails on an empty sample set.
  double Variance() const;  // Population variance; CHECK-fails when empty.
  double StdDev() const;
  // Order statistics return 0.0 on an empty sample set (benches can
  // print a row for a scheme that completed no jobs without aborting).
  double Min() const;
  double Max() const;
  double Median() const;
  // p in [0, 100]; linear interpolation between order statistics.
  // Returns 0.0 when empty.
  double Percentile(double p) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Online mean/variance via Welford's algorithm, for streaming contexts
// where storing samples would be wasteful.
class RunningStats {
 public:
  void Add(double value);

  std::size_t count() const { return n_; }
  double Mean() const { return n_ > 0 ? mean_ : 0.0; }
  double Variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
  double StdDev() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace proteus

#endif  // SRC_COMMON_STATS_H_
