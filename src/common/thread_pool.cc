#include "src/common/thread_pool.h"

#include <exception>

#include "src/common/logging.h"

namespace proteus {

ThreadPool::ThreadPool(std::size_t num_threads) {
  PROTEUS_CHECK_GT(num_threads, 0u);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    PROTEUS_CHECK(!shutdown_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  // Drain every future before surfacing any failure. Rethrowing on the
  // first bad future would unwind while later tasks still hold a
  // reference to `fn` (and whatever the caller captured in it), leaving
  // them to run against destroyed state. The first exception wins;
  // later ones are swallowed after their tasks finish.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (first_error == nullptr) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace proteus
