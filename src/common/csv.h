// Tiny CSV reader/writer used for persisting spot-market traces and bench
// outputs. Handles only the subset we emit: no quoting, comma separator,
// '#' comment lines.
#ifndef SRC_COMMON_CSV_H_
#define SRC_COMMON_CSV_H_

#include <string>
#include <vector>

namespace proteus {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void AddRow(const std::vector<std::string>& cells);

  std::string Render() const;
  // Returns false (and logs) on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

struct CsvTable {
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

// Parses CSV text. First non-comment line is the header.
CsvTable ParseCsv(const std::string& text);

// Reads and parses a CSV file. Returns empty table if the file is missing.
CsvTable ReadCsvFile(const std::string& path);

}  // namespace proteus

#endif  // SRC_COMMON_CSV_H_
