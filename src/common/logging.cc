#include "src/common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace proteus {

namespace {

// The PROTEUS_LOG_LEVEL environment variable is consulted exactly once,
// at the first logging call (or Set/GetLogLevel), so tests can set it
// before any logging happens; later SetLogLevel calls override it.
std::atomic<int>& MinLevel() {
  static std::atomic<int> level{static_cast<int>(
      ParseLogLevel(std::getenv("PROTEUS_LOG_LEVEL")).value_or(LogLevel::kInfo))};
  return level;
}

std::atomic<void (*)(const char*, void*)> g_fatal_hook{nullptr};
std::atomic<void*> g_fatal_hook_arg{nullptr};
std::atomic<bool> g_in_fatal_hook{false};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { MinLevel().store(static_cast<int>(level)); }

void SetFatalHook(void (*hook)(const char* message, void* arg), void* arg) {
  g_fatal_hook_arg.store(arg);
  g_fatal_hook.store(hook);
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(MinLevel().load()); }

std::optional<LogLevel> ParseLogLevel(const char* value) {
  if (value == nullptr || *value == '\0') {
    return std::nullopt;
  }
  std::string lower;
  for (const char* p = value; *p != '\0'; ++p) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn" || lower == "2") return LogLevel::kWarning;
  if (lower == "error" || lower == "3") return LogLevel::kError;
  if (lower == "fatal" || lower == "4") return LogLevel::kFatal;
  return std::nullopt;
}

namespace log_internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Strip directories for brevity.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= MinLevel().load() || level_ == LogLevel::kFatal) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    auto* hook = g_fatal_hook.load();
    if (hook != nullptr && !g_in_fatal_hook.exchange(true)) {
      hook(stream_.str().c_str(), g_fatal_hook_arg.load());
    }
    std::abort();
  }
}

}  // namespace log_internal
}  // namespace proteus
