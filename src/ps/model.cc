#include "src/ps/model.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "src/common/logging.h"
#include "src/rpc/serializer.h"

namespace proteus {

namespace {
// SplitMix64: cheap deterministic hash for per-row init jitter.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ModelStore::ModelStore(std::vector<TableSpec> tables, int num_partitions, std::uint64_t seed,
                       ModelOptions options)
    : tables_(std::move(tables)), num_partitions_(num_partitions), seed_(seed),
      options_(options) {
  PROTEUS_CHECK_GT(num_partitions_, 0);
  PROTEUS_CHECK(!tables_.empty());
  PROTEUS_CHECK_GT(options_.shards, 0);
  options_.shards = std::min(options_.shards, num_partitions_);
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    PROTEUS_CHECK_EQ(tables_[i].table_id, static_cast<int>(i)) << "table ids must be 0..n-1";
    PROTEUS_CHECK_GT(tables_[i].rows, 0);
    PROTEUS_CHECK_GT(tables_[i].cols, 0);
  }
  if (fast()) {
    const int locals = (num_partitions_ + options_.shards - 1) / options_.shards;
    shards_.reserve(static_cast<std::size_t>(options_.shards));
    for (int i = 0; i < options_.shards; ++i) {
      auto shard = std::make_unique<Shard>();
      shard->dirty.resize(static_cast<std::size_t>(locals));
      shards_.push_back(std::move(shard));
    }
  } else {
    partitions_.reserve(static_cast<std::size_t>(num_partitions_));
    for (int i = 0; i < num_partitions_; ++i) {
      partitions_.push_back(std::make_unique<Partition>());
    }
  }
}

const TableSpec& ModelStore::table(int table_id) const {
  PROTEUS_CHECK_GE(table_id, 0);
  PROTEUS_CHECK_LT(static_cast<std::size_t>(table_id), tables_.size());
  return tables_[static_cast<std::size_t>(table_id)];
}

PartitionId ModelStore::PartitionOf(int table, std::int64_t row) const {
  PROTEUS_CHECK_GE(row, 0);
  PROTEUS_CHECK_LT(row, this->table(table).rows);
  // Round-robin keeps partitions balanced for both contiguous and
  // power-law access patterns.
  return static_cast<PartitionId>((static_cast<std::uint64_t>(row) +
                                   static_cast<std::uint64_t>(table)) %
                                  static_cast<std::uint64_t>(num_partitions_));
}

std::size_t ModelStore::RowBytes(int table) const {
  return static_cast<std::size_t>(this->table(table).cols) * sizeof(float) + kRowWireOverhead;
}

std::uint64_t ModelStore::ModelBytes() const {
  std::uint64_t total = 0;
  for (const auto& t : tables_) {
    total += static_cast<std::uint64_t>(t.rows) * RowBytes(t.table_id);
  }
  return total;
}

ModelStore::Partition& ModelStore::PartitionFor(int table, std::int64_t row) {
  return *partitions_[static_cast<std::size_t>(PartitionOf(table, row))];
}

const ModelStore::Partition& ModelStore::PartitionFor(int table, std::int64_t row) const {
  return *partitions_[static_cast<std::size_t>(PartitionOf(table, row))];
}

float ModelStore::InitValueFor(RowKey key, int component) const {
  const TableSpec& spec = table(TableOfKey(key));
  if (spec.init_jitter == 0.0F) {
    return spec.init_value;
  }
  const std::uint64_t h = Mix64(seed_ ^ Mix64(key ^ (static_cast<std::uint64_t>(component) << 1)));
  const double unit = static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);  // [0,1)
  return spec.init_value + spec.init_jitter * static_cast<float>(2.0 * unit - 1.0);
}

std::vector<float>& ModelStore::RowLocked(Partition& p, int table, std::int64_t row) const {
  const RowKey key = MakeRowKey(table, row);
  auto it = p.state.find(key);
  if (it == p.state.end()) {
    const int cols = this->table(table).cols;
    std::vector<float> value(static_cast<std::size_t>(cols));
    for (int c = 0; c < cols; ++c) {
      value[static_cast<std::size_t>(c)] = InitValueFor(key, c);
    }
    it = p.state.emplace(key, std::move(value)).first;
  }
  return it->second;
}

std::uint32_t ModelStore::SlotLocked(Shard& s, RowKey key, int cols) const {
  auto it = s.index.find(key);
  if (it != s.index.end()) {
    return it->second;
  }
  const std::uint32_t idx = static_cast<std::uint32_t>(s.slots.size());
  Slot slot;
  slot.key = key;
  slot.offset = s.values.size();
  slot.cols = static_cast<std::uint32_t>(cols);
  s.slots.push_back(slot);
  s.values.resize(s.values.size() + static_cast<std::size_t>(cols));
  s.backup_values.resize(s.values.size());
  float* v = s.values.data() + slot.offset;
  for (int c = 0; c < cols; ++c) {
    v[c] = InitValueFor(key, c);
  }
  s.index.emplace(key, idx);
  ++s.live_rows;
  return idx;
}

void ModelStore::ReadRow(int table, std::int64_t row, std::vector<float>& out) const {
  if (fast()) {
    const PartitionId part = PartitionOf(table, row);
    auto& s = const_cast<Shard&>(*shards_[static_cast<std::size_t>(ShardOfPartition(part))]);
    std::lock_guard<std::mutex> lock(s.mu);
    const Slot& slot = s.slots[SlotLocked(s, MakeRowKey(table, row), this->table(table).cols)];
    const float* v = s.values.data() + slot.offset;
    out.assign(v, v + slot.cols);
    return;
  }
  auto& p = const_cast<Partition&>(PartitionFor(table, row));
  std::lock_guard<std::mutex> lock(p.mu);
  const std::vector<float>& value = RowLocked(p, table, row);
  out.assign(value.begin(), value.end());
}

void ModelStore::ApplyDelta(int table, std::int64_t row, std::span<const float> delta) {
  if (fast()) {
    const PartitionId part = PartitionOf(table, row);
    Shard& s = *shards_[static_cast<std::size_t>(ShardOfPartition(part))];
    std::lock_guard<std::mutex> lock(s.mu);
    const RowKey key = MakeRowKey(table, row);
    const Slot& slot = s.slots[SlotLocked(s, key, this->table(table).cols)];
    PROTEUS_CHECK_EQ(delta.size(), static_cast<std::size_t>(slot.cols));
    float* v = s.values.data() + slot.offset;
    for (std::uint32_t c = 0; c < slot.cols; ++c) {
      v[c] += delta[c];
    }
    s.dirty[static_cast<std::size_t>(LocalPartition(part))].insert(key);
    s.version.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Partition& p = PartitionFor(table, row);
  std::lock_guard<std::mutex> lock(p.mu);
  std::vector<float>& value = RowLocked(p, table, row);
  PROTEUS_CHECK_EQ(delta.size(), value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    value[i] += delta[i];
  }
  p.dirty.insert(MakeRowKey(table, row));
  legacy_version_.fetch_add(1, std::memory_order_relaxed);
}

void ModelStore::ApplyUpdates(std::span<const RowDelta> deltas) {
  if (!fast()) {
    for (const RowDelta& d : deltas) {
      ApplyDelta(d.table, d.row, d.values);
    }
    return;
  }
  // Bucket rows by owning shard so each shard lock is taken exactly once
  // and rows land in input order within a shard.
  std::vector<std::vector<std::uint32_t>> by_shard(
      static_cast<std::size_t>(options_.shards));
  std::vector<PartitionId> parts(deltas.size());
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    parts[i] = PartitionOf(deltas[i].table, deltas[i].row);
    by_shard[static_cast<std::size_t>(ShardOfPartition(parts[i]))].push_back(
        static_cast<std::uint32_t>(i));
  }
  for (int sh = 0; sh < options_.shards; ++sh) {
    const auto& idxs = by_shard[static_cast<std::size_t>(sh)];
    if (idxs.empty()) {
      continue;
    }
    const std::uint64_t t0 = metrics_ != nullptr ? NowNanos() : 0;
    Shard& s = *shards_[static_cast<std::size_t>(sh)];
    {
      std::lock_guard<std::mutex> lock(s.mu);
      for (const std::uint32_t i : idxs) {
        const RowDelta& d = deltas[i];
        const RowKey key = MakeRowKey(d.table, d.row);
        const Slot& slot = s.slots[SlotLocked(s, key, this->table(d.table).cols)];
        PROTEUS_CHECK_EQ(d.values.size(), static_cast<std::size_t>(slot.cols));
        float* v = s.values.data() + slot.offset;
        const float* dv = d.values.data();
        for (std::uint32_t c = 0; c < slot.cols; ++c) {
          v[c] += dv[c];
        }
        s.dirty[static_cast<std::size_t>(LocalPartition(parts[i]))].insert(key);
      }
      s.version.fetch_add(idxs.size(), std::memory_order_relaxed);
    }
    if (metrics_ != nullptr) {
      apply_nanos_[static_cast<std::size_t>(sh)]->Add(NowNanos() - t0);
      apply_rows_[static_cast<std::size_t>(sh)]->Add(idxs.size());
    }
  }
}

void ModelStore::SetRow(int table, std::int64_t row, std::span<const float> value) {
  if (fast()) {
    const PartitionId part = PartitionOf(table, row);
    Shard& s = *shards_[static_cast<std::size_t>(ShardOfPartition(part))];
    std::lock_guard<std::mutex> lock(s.mu);
    const RowKey key = MakeRowKey(table, row);
    const Slot& slot = s.slots[SlotLocked(s, key, this->table(table).cols)];
    PROTEUS_CHECK_EQ(value.size(), static_cast<std::size_t>(slot.cols));
    std::copy(value.begin(), value.end(), s.values.begin() + static_cast<std::ptrdiff_t>(slot.offset));
    s.dirty[static_cast<std::size_t>(LocalPartition(part))].insert(key);
    s.version.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Partition& p = PartitionFor(table, row);
  std::lock_guard<std::mutex> lock(p.mu);
  std::vector<float>& stored = RowLocked(p, table, row);
  PROTEUS_CHECK_EQ(value.size(), stored.size());
  std::copy(value.begin(), value.end(), stored.begin());
  p.dirty.insert(MakeRowKey(table, row));
  legacy_version_.fetch_add(1, std::memory_order_relaxed);
}

void ModelStore::EnableBackups() {
  if (fast()) {
    for (auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      s->backup_values = s->values;
      for (Slot& slot : s->slots) {
        slot.in_backup = slot.live;
      }
      for (auto& d : s->dirty) {
        d.clear();
      }
      s->version.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    for (auto& p : partitions_) {
      std::lock_guard<std::mutex> lock(p->mu);
      p->backup = p->state;
      p->dirty.clear();
    }
    legacy_version_.fetch_add(1, std::memory_order_relaxed);
  }
  backups_enabled_ = true;
}

std::vector<RowKey> ModelStore::SortedDirtyLocked(
    const std::unordered_set<RowKey>& dirty) const {
  std::vector<RowKey> keys(dirty.begin(), dirty.end());
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::uint64_t ModelStore::CoalescedBytes(const std::vector<RowKey>& sorted_keys) const {
  if (sorted_keys.empty()) {
    return 0;
  }
  std::vector<std::uint32_t> cols;
  cols.reserve(sorted_keys.size());
  for (const RowKey key : sorted_keys) {
    cols.push_back(static_cast<std::uint32_t>(table(TableOfKey(key)).cols));
  }
  return DeltaBatchEncodedBytes(sorted_keys, cols);
}

std::uint64_t ModelStore::DirtyBytes(PartitionId part) const {
  if (fast()) {
    const Shard& s = *shards_[static_cast<std::size_t>(ShardOfPartition(part))];
    std::lock_guard<std::mutex> lock(s.mu);
    return CoalescedBytes(SortedDirtyLocked(s.dirty[static_cast<std::size_t>(LocalPartition(part))]));
  }
  const Partition& p = *partitions_[static_cast<std::size_t>(part)];
  std::lock_guard<std::mutex> lock(p.mu);
  std::uint64_t bytes = 0;
  for (RowKey key : p.dirty) {
    bytes += RowBytes(TableOfKey(key));
  }
  return bytes;
}

std::uint64_t ModelStore::SyncPartitionToBackup(PartitionId part, Clock at_clock) {
  PROTEUS_CHECK(backups_enabled_);
  if (fast()) {
    Shard& s = *shards_[static_cast<std::size_t>(ShardOfPartition(part))];
    std::lock_guard<std::mutex> lock(s.mu);
    auto& dirty = s.dirty[static_cast<std::size_t>(LocalPartition(part))];
    const std::vector<RowKey> keys = SortedDirtyLocked(dirty);
    for (const RowKey key : keys) {
      Slot& slot = s.slots[s.index.at(key)];
      std::memcpy(s.backup_values.data() + slot.offset, s.values.data() + slot.offset,
                  static_cast<std::size_t>(slot.cols) * sizeof(float));
      slot.in_backup = true;
    }
    dirty.clear();
    if (at_clock >= 0) {
      s.last_sync_clock = at_clock;
    }
    s.version.fetch_add(1, std::memory_order_relaxed);
    return CoalescedBytes(keys);
  }
  Partition& p = *partitions_[static_cast<std::size_t>(part)];
  std::lock_guard<std::mutex> lock(p.mu);
  std::uint64_t bytes = 0;
  for (RowKey key : p.dirty) {
    p.backup[key] = p.state.at(key);
    bytes += RowBytes(TableOfKey(key));
  }
  p.dirty.clear();
  if (at_clock >= 0) {
    legacy_sync_clock_ = at_clock;
  }
  legacy_version_.fetch_add(1, std::memory_order_relaxed);
  return bytes;
}

std::vector<std::uint8_t> ModelStore::EncodeDirtyRows(PartitionId part) const {
  std::vector<DeltaRow> rows;
  if (fast()) {
    const Shard& s = *shards_[static_cast<std::size_t>(ShardOfPartition(part))];
    std::lock_guard<std::mutex> lock(s.mu);
    const std::vector<RowKey> keys =
        SortedDirtyLocked(s.dirty[static_cast<std::size_t>(LocalPartition(part))]);
    rows.reserve(keys.size());
    for (const RowKey key : keys) {
      const Slot& slot = s.slots[s.index.at(key)];
      rows.push_back({key, std::span<const float>(s.values.data() + slot.offset, slot.cols)});
    }
    return EncodeDeltaBatch(rows);
  }
  const Partition& p = *partitions_[static_cast<std::size_t>(part)];
  std::lock_guard<std::mutex> lock(p.mu);
  const std::vector<RowKey> keys = SortedDirtyLocked(p.dirty);
  rows.reserve(keys.size());
  for (const RowKey key : keys) {
    const std::vector<float>& value = p.state.at(key);
    rows.push_back({key, std::span<const float>(value)});
  }
  return EncodeDeltaBatch(rows);
}

void ModelStore::RollbackPartitionToBackup(PartitionId part) {
  PROTEUS_CHECK(backups_enabled_);
  if (fast()) {
    Shard& s = *shards_[static_cast<std::size_t>(ShardOfPartition(part))];
    std::lock_guard<std::mutex> lock(s.mu);
    auto& dirty = s.dirty[static_cast<std::size_t>(LocalPartition(part))];
    for (const RowKey key : dirty) {
      const std::uint32_t idx = s.index.at(key);
      Slot& slot = s.slots[idx];
      if (slot.in_backup) {
        std::memcpy(s.values.data() + slot.offset, s.backup_values.data() + slot.offset,
                    static_cast<std::size_t>(slot.cols) * sizeof(float));
      } else {
        // Row materialized after the last sync; drop it — lazy init will
        // recreate the identical initial value on next read. The arena
        // slot is retired (append-only storage is never compacted).
        slot.live = false;
        s.index.erase(key);
        --s.live_rows;
      }
    }
    dirty.clear();
    s.version.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Partition& p = *partitions_[static_cast<std::size_t>(part)];
  std::lock_guard<std::mutex> lock(p.mu);
  for (RowKey key : p.dirty) {
    auto it = p.backup.find(key);
    if (it != p.backup.end()) {
      p.state[key] = it->second;
    } else {
      // Row materialized after the last sync; drop it — lazy init will
      // recreate the identical initial value on next read.
      p.state.erase(key);
    }
  }
  p.dirty.clear();
  legacy_version_.fetch_add(1, std::memory_order_relaxed);
}

void ModelStore::RollbackAllToBackup() {
  for (int i = 0; i < num_partitions_; ++i) {
    RollbackPartitionToBackup(i);
  }
}

std::uint64_t ModelStore::PartitionBytes(PartitionId part) const {
  if (fast()) {
    const Shard& s = *shards_[static_cast<std::size_t>(ShardOfPartition(part))];
    std::lock_guard<std::mutex> lock(s.mu);
    std::vector<RowKey> keys;
    for (const auto& [key, idx] : s.index) {
      if (PartitionOf(TableOfKey(key), RowOfKey(key)) == part) {
        keys.push_back(key);
      }
    }
    std::sort(keys.begin(), keys.end());
    return CoalescedBytes(keys);
  }
  const Partition& p = *partitions_[static_cast<std::size_t>(part)];
  std::lock_guard<std::mutex> lock(p.mu);
  std::uint64_t bytes = 0;
  for (const auto& [key, unused] : p.state) {
    bytes += RowBytes(TableOfKey(key));
  }
  return bytes;
}

void ModelStore::AppendPartitionCheckpoint(PartitionId part,
                                           std::vector<std::uint8_t>& blob) const {
  auto append = [&blob](const void* data, std::size_t n) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    blob.insert(blob.end(), bytes, bytes + n);
  };
  auto append_row = [&append](RowKey key, const float* v, std::uint32_t cols) {
    append(&key, sizeof(key));
    append(&cols, sizeof(cols));
    append(v, static_cast<std::size_t>(cols) * sizeof(float));
  };
  if (fast()) {
    const Shard& s = *shards_[static_cast<std::size_t>(ShardOfPartition(part))];
    std::lock_guard<std::mutex> lock(s.mu);
    std::vector<RowKey> keys;
    for (const auto& [key, idx] : s.index) {
      if (PartitionOf(TableOfKey(key), RowOfKey(key)) == part) {
        keys.push_back(key);
      }
    }
    std::sort(keys.begin(), keys.end());
    for (const RowKey key : keys) {
      const Slot& slot = s.slots[s.index.at(key)];
      append_row(key, s.values.data() + slot.offset, slot.cols);
    }
    return;
  }
  const Partition& p = *partitions_[static_cast<std::size_t>(part)];
  std::lock_guard<std::mutex> lock(p.mu);
  std::vector<RowKey> keys;
  keys.reserve(p.state.size());
  for (const auto& [key, unused] : p.state) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  for (const RowKey key : keys) {
    const std::vector<float>& value = p.state.at(key);
    append_row(key, value.data(), static_cast<std::uint32_t>(value.size()));
  }
}

std::vector<std::uint8_t> ModelStore::SerializeCheckpoint() const {
  std::vector<std::uint8_t> blob;
  for (PartitionId p = 0; p < num_partitions_; ++p) {
    AppendPartitionCheckpoint(p, blob);
  }
  return blob;
}

std::vector<std::uint8_t> ModelStore::SerializeShardCheckpoint(int shard) const {
  PROTEUS_CHECK_GE(shard, 0);
  PROTEUS_CHECK_LT(shard, options_.shards);
  std::vector<std::uint8_t> blob;
  for (PartitionId p = shard; p < num_partitions_; p += options_.shards) {
    AppendPartitionCheckpoint(p, blob);
  }
  return blob;
}

void ModelStore::RestoreCheckpoint(const std::vector<std::uint8_t>& blob) {
  if (fast()) {
    for (int s = 0; s < options_.shards; ++s) {
      RestoreShardCheckpoint(s, std::span<const std::uint8_t>());
    }
  } else {
    for (auto& p : partitions_) {
      std::lock_guard<std::mutex> lock(p->mu);
      p->state.clear();
      p->backup.clear();  // Restore invalidates the backup copy.
      p->dirty.clear();
    }
    legacy_version_.fetch_add(1, std::memory_order_relaxed);
  }
  backups_enabled_ = false;
  std::size_t offset = 0;
  auto read = [&](void* out, std::size_t n) {
    PROTEUS_CHECK_LE(offset + n, blob.size());
    std::memcpy(out, blob.data() + offset, n);
    offset += n;
  };
  while (offset < blob.size()) {
    RowKey key = 0;
    std::uint32_t n = 0;
    read(&key, sizeof(key));
    read(&n, sizeof(n));
    std::vector<float> value(n);
    read(value.data(), n * sizeof(float));
    const int tbl = TableOfKey(key);
    const std::int64_t row = RowOfKey(key);
    if (fast()) {
      const PartitionId part = PartitionOf(tbl, row);
      Shard& s = *shards_[static_cast<std::size_t>(ShardOfPartition(part))];
      std::lock_guard<std::mutex> lock(s.mu);
      const Slot& slot = s.slots[SlotLocked(s, key, static_cast<int>(n))];
      std::copy(value.begin(), value.end(),
                s.values.begin() + static_cast<std::ptrdiff_t>(slot.offset));
    } else {
      Partition& p = PartitionFor(tbl, row);
      std::lock_guard<std::mutex> lock(p.mu);
      p.state[key] = std::move(value);
    }
  }
}

void ModelStore::RestoreShardCheckpoint(int shard, std::span<const std::uint8_t> blob) {
  PROTEUS_CHECK_GE(shard, 0);
  PROTEUS_CHECK_LT(shard, options_.shards);
  if (!fast()) {
    // Single shard == the whole store; reuse the full restore (which also
    // invalidates the backup).
    RestoreCheckpoint(std::vector<std::uint8_t>(blob.begin(), blob.end()));
    return;
  }
  Shard& s = *shards_[static_cast<std::size_t>(shard)];
  std::lock_guard<std::mutex> lock(s.mu);
  s.values.clear();
  s.backup_values.clear();
  s.index.clear();
  s.slots.clear();
  for (auto& d : s.dirty) {
    d.clear();
  }
  s.live_rows = 0;
  std::size_t offset = 0;
  auto read = [&](void* out, std::size_t n) {
    PROTEUS_CHECK_LE(offset + n, blob.size());
    std::memcpy(out, blob.data() + offset, n);
    offset += n;
  };
  while (offset < blob.size()) {
    RowKey key = 0;
    std::uint32_t n = 0;
    read(&key, sizeof(key));
    read(&n, sizeof(n));
    const PartitionId part = PartitionOf(TableOfKey(key), RowOfKey(key));
    PROTEUS_CHECK_EQ(ShardOfPartition(part), shard) << "row " << key << " not owned by shard";
    const Slot& slot = s.slots[SlotLocked(s, key, static_cast<int>(n))];
    read(s.values.data() + slot.offset, static_cast<std::size_t>(n) * sizeof(float));
  }
  s.version.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t ModelStore::ShardVersion(int shard) const {
  PROTEUS_CHECK_GE(shard, 0);
  PROTEUS_CHECK_LT(shard, options_.shards);
  if (!fast()) {
    return legacy_version_.load(std::memory_order_relaxed);
  }
  return shards_[static_cast<std::size_t>(shard)]->version.load(std::memory_order_relaxed);
}

ShardState ModelStore::ShardStateOf(int shard) const {
  PROTEUS_CHECK_GE(shard, 0);
  PROTEUS_CHECK_LT(shard, options_.shards);
  ShardState state;
  if (!fast()) {
    state.version = legacy_version_.load(std::memory_order_relaxed);
    state.last_sync_clock = legacy_sync_clock_;
    state.live_rows = MaterializedRows();
    return state;
  }
  const Shard& s = *shards_[static_cast<std::size_t>(shard)];
  std::lock_guard<std::mutex> lock(s.mu);
  state.version = s.version.load(std::memory_order_relaxed);
  state.last_sync_clock = s.last_sync_clock;
  state.live_rows = s.live_rows;
  return state;
}

double ModelStore::ShardImbalance() const {
  if (!fast()) {
    return 1.0;
  }
  std::size_t max_rows = 0;
  std::size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    max_rows = std::max(max_rows, s->live_rows);
    total += s->live_rows;
  }
  if (total == 0) {
    return 1.0;
  }
  const double mean = static_cast<double>(total) / static_cast<double>(options_.shards);
  return static_cast<double>(max_rows) / mean;
}

void ModelStore::SetObservability(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  apply_nanos_.clear();
  apply_rows_.clear();
  shard_rows_.clear();
  imbalance_gauge_ = nullptr;
  if (metrics_ == nullptr) {
    return;
  }
  for (int s = 0; s < options_.shards; ++s) {
    const obs::Labels labels = {{"shard", std::to_string(s)}};
    apply_nanos_.push_back(metrics_->GetCounter("ps.apply.nanos", labels));
    apply_rows_.push_back(metrics_->GetCounter("ps.apply.rows", labels));
    shard_rows_.push_back(metrics_->GetGauge("ps.shard.rows", labels));
  }
  imbalance_gauge_ = metrics_->GetGauge("ps.shard.imbalance");
}

void ModelStore::UpdateShardGauges() {
  if (metrics_ == nullptr) {
    return;
  }
  if (fast()) {
    for (int s = 0; s < options_.shards; ++s) {
      std::lock_guard<std::mutex> lock(shards_[static_cast<std::size_t>(s)]->mu);
      shard_rows_[static_cast<std::size_t>(s)]->Set(
          static_cast<double>(shards_[static_cast<std::size_t>(s)]->live_rows));
    }
  } else {
    shard_rows_[0]->Set(static_cast<double>(MaterializedRows()));
  }
  imbalance_gauge_->Set(ShardImbalance());
}

void ModelStore::ForEachRow(
    int table, const std::function<void(std::int64_t, std::span<const float>)>& fn) const {
  if (fast()) {
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      for (const Slot& slot : s->slots) {
        if (slot.live && TableOfKey(slot.key) == table) {
          fn(RowOfKey(slot.key),
             std::span<const float>(s->values.data() + slot.offset, slot.cols));
        }
      }
    }
    return;
  }
  for (const auto& p : partitions_) {
    std::lock_guard<std::mutex> lock(p->mu);
    for (const auto& [key, value] : p->state) {
      if (TableOfKey(key) == table) {
        fn(RowOfKey(key), std::span<const float>(value));
      }
    }
  }
}

std::size_t ModelStore::MaterializedRows() const {
  if (fast()) {
    std::size_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      total += s->live_rows;
    }
    return total;
  }
  std::size_t total = 0;
  for (const auto& p : partitions_) {
    std::lock_guard<std::mutex> lock(p->mu);
    total += p->state.size();
  }
  return total;
}

}  // namespace proteus
