#include "src/ps/model.h"

#include <cstring>

#include "src/common/logging.h"

namespace proteus {

namespace {
// SplitMix64: cheap deterministic hash for per-row init jitter.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

ModelStore::ModelStore(std::vector<TableSpec> tables, int num_partitions, std::uint64_t seed)
    : tables_(std::move(tables)), num_partitions_(num_partitions), seed_(seed) {
  PROTEUS_CHECK_GT(num_partitions_, 0);
  PROTEUS_CHECK(!tables_.empty());
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    PROTEUS_CHECK_EQ(tables_[i].table_id, static_cast<int>(i)) << "table ids must be 0..n-1";
    PROTEUS_CHECK_GT(tables_[i].rows, 0);
    PROTEUS_CHECK_GT(tables_[i].cols, 0);
  }
  partitions_.reserve(static_cast<std::size_t>(num_partitions_));
  for (int i = 0; i < num_partitions_; ++i) {
    partitions_.push_back(std::make_unique<Partition>());
  }
}

const TableSpec& ModelStore::table(int table_id) const {
  PROTEUS_CHECK_GE(table_id, 0);
  PROTEUS_CHECK_LT(static_cast<std::size_t>(table_id), tables_.size());
  return tables_[static_cast<std::size_t>(table_id)];
}

PartitionId ModelStore::PartitionOf(int table, std::int64_t row) const {
  PROTEUS_CHECK_GE(row, 0);
  PROTEUS_CHECK_LT(row, this->table(table).rows);
  // Round-robin keeps partitions balanced for both contiguous and
  // power-law access patterns.
  return static_cast<PartitionId>((static_cast<std::uint64_t>(row) +
                                   static_cast<std::uint64_t>(table)) %
                                  static_cast<std::uint64_t>(num_partitions_));
}

std::size_t ModelStore::RowBytes(int table) const {
  return static_cast<std::size_t>(this->table(table).cols) * sizeof(float) + kRowWireOverhead;
}

std::uint64_t ModelStore::ModelBytes() const {
  std::uint64_t total = 0;
  for (const auto& t : tables_) {
    total += static_cast<std::uint64_t>(t.rows) * RowBytes(t.table_id);
  }
  return total;
}

ModelStore::Partition& ModelStore::PartitionFor(int table, std::int64_t row) {
  return *partitions_[static_cast<std::size_t>(PartitionOf(table, row))];
}

const ModelStore::Partition& ModelStore::PartitionFor(int table, std::int64_t row) const {
  return *partitions_[static_cast<std::size_t>(PartitionOf(table, row))];
}

float ModelStore::InitValueFor(RowKey key, int component) const {
  const TableSpec& spec = table(TableOfKey(key));
  if (spec.init_jitter == 0.0F) {
    return spec.init_value;
  }
  const std::uint64_t h = Mix64(seed_ ^ Mix64(key ^ (static_cast<std::uint64_t>(component) << 1)));
  const double unit = static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);  // [0,1)
  return spec.init_value + spec.init_jitter * static_cast<float>(2.0 * unit - 1.0);
}

std::vector<float>& ModelStore::RowLocked(Partition& p, int table, std::int64_t row) const {
  const RowKey key = MakeRowKey(table, row);
  auto it = p.state.find(key);
  if (it == p.state.end()) {
    const int cols = this->table(table).cols;
    std::vector<float> value(static_cast<std::size_t>(cols));
    for (int c = 0; c < cols; ++c) {
      value[static_cast<std::size_t>(c)] = InitValueFor(key, c);
    }
    it = p.state.emplace(key, std::move(value)).first;
  }
  return it->second;
}

void ModelStore::ReadRow(int table, std::int64_t row, std::vector<float>& out) const {
  auto& p = const_cast<Partition&>(PartitionFor(table, row));
  std::lock_guard<std::mutex> lock(p.mu);
  const std::vector<float>& value = RowLocked(p, table, row);
  out.assign(value.begin(), value.end());
}

void ModelStore::ApplyDelta(int table, std::int64_t row, std::span<const float> delta) {
  Partition& p = PartitionFor(table, row);
  std::lock_guard<std::mutex> lock(p.mu);
  std::vector<float>& value = RowLocked(p, table, row);
  PROTEUS_CHECK_EQ(delta.size(), value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    value[i] += delta[i];
  }
  p.dirty.insert(MakeRowKey(table, row));
}

void ModelStore::SetRow(int table, std::int64_t row, std::span<const float> value) {
  Partition& p = PartitionFor(table, row);
  std::lock_guard<std::mutex> lock(p.mu);
  std::vector<float>& stored = RowLocked(p, table, row);
  PROTEUS_CHECK_EQ(value.size(), stored.size());
  std::copy(value.begin(), value.end(), stored.begin());
  p.dirty.insert(MakeRowKey(table, row));
}

void ModelStore::EnableBackups() {
  for (auto& p : partitions_) {
    std::lock_guard<std::mutex> lock(p->mu);
    p->backup = p->state;
    p->dirty.clear();
  }
  backups_enabled_ = true;
}

std::uint64_t ModelStore::DirtyBytes(PartitionId part) const {
  const Partition& p = *partitions_[static_cast<std::size_t>(part)];
  std::lock_guard<std::mutex> lock(p.mu);
  std::uint64_t bytes = 0;
  for (RowKey key : p.dirty) {
    bytes += RowBytes(TableOfKey(key));
  }
  return bytes;
}

std::uint64_t ModelStore::SyncPartitionToBackup(PartitionId part) {
  PROTEUS_CHECK(backups_enabled_);
  Partition& p = *partitions_[static_cast<std::size_t>(part)];
  std::lock_guard<std::mutex> lock(p.mu);
  std::uint64_t bytes = 0;
  for (RowKey key : p.dirty) {
    p.backup[key] = p.state.at(key);
    bytes += RowBytes(TableOfKey(key));
  }
  p.dirty.clear();
  return bytes;
}

void ModelStore::RollbackPartitionToBackup(PartitionId part) {
  PROTEUS_CHECK(backups_enabled_);
  Partition& p = *partitions_[static_cast<std::size_t>(part)];
  std::lock_guard<std::mutex> lock(p.mu);
  for (RowKey key : p.dirty) {
    auto it = p.backup.find(key);
    if (it != p.backup.end()) {
      p.state[key] = it->second;
    } else {
      // Row materialized after the last sync; drop it — lazy init will
      // recreate the identical initial value on next read.
      p.state.erase(key);
    }
  }
  p.dirty.clear();
}

void ModelStore::RollbackAllToBackup() {
  for (int i = 0; i < num_partitions_; ++i) {
    RollbackPartitionToBackup(i);
  }
}

std::uint64_t ModelStore::PartitionBytes(PartitionId part) const {
  const Partition& p = *partitions_[static_cast<std::size_t>(part)];
  std::lock_guard<std::mutex> lock(p.mu);
  std::uint64_t bytes = 0;
  for (const auto& [key, unused] : p.state) {
    bytes += RowBytes(TableOfKey(key));
  }
  return bytes;
}

std::vector<std::uint8_t> ModelStore::SerializeCheckpoint() const {
  std::vector<std::uint8_t> blob;
  auto append = [&blob](const void* data, std::size_t n) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    blob.insert(blob.end(), bytes, bytes + n);
  };
  for (const auto& p : partitions_) {
    std::lock_guard<std::mutex> lock(p->mu);
    for (const auto& [key, value] : p->state) {
      append(&key, sizeof(key));
      const std::uint32_t n = static_cast<std::uint32_t>(value.size());
      append(&n, sizeof(n));
      append(value.data(), value.size() * sizeof(float));
    }
  }
  return blob;
}

void ModelStore::RestoreCheckpoint(const std::vector<std::uint8_t>& blob) {
  for (auto& p : partitions_) {
    std::lock_guard<std::mutex> lock(p->mu);
    p->state.clear();
    p->dirty.clear();
  }
  std::size_t offset = 0;
  auto read = [&](void* out, std::size_t n) {
    PROTEUS_CHECK_LE(offset + n, blob.size());
    std::memcpy(out, blob.data() + offset, n);
    offset += n;
  };
  while (offset < blob.size()) {
    RowKey key = 0;
    std::uint32_t n = 0;
    read(&key, sizeof(key));
    read(&n, sizeof(n));
    std::vector<float> value(n);
    read(value.data(), n * sizeof(float));
    const int tbl = TableOfKey(key);
    const std::int64_t row = RowOfKey(key);
    Partition& p = PartitionFor(tbl, row);
    std::lock_guard<std::mutex> lock(p.mu);
    p.state[key] = std::move(value);
  }
}

void ModelStore::ForEachRow(
    int table, const std::function<void(std::int64_t, std::span<const float>)>& fn) const {
  for (const auto& p : partitions_) {
    std::lock_guard<std::mutex> lock(p->mu);
    for (const auto& [key, value] : p->state) {
      if (TableOfKey(key) == table) {
        fn(RowOfKey(key), std::span<const float>(value));
      }
    }
  }
}

std::size_t ModelStore::MaterializedRows() const {
  std::size_t total = 0;
  for (const auto& p : partitions_) {
    std::lock_guard<std::mutex> lock(p->mu);
    total += p->state.size();
  }
  return total;
}

}  // namespace proteus
