#include "src/ps/clock_table.h"

#include <algorithm>

#include "src/common/logging.h"

namespace proteus {

ClockTable::ClockTable(int staleness) : staleness_(staleness) {
  PROTEUS_CHECK_GE(staleness, 0);
}

void ClockTable::AddWorkerNode(NodeId node) {
  PROTEUS_CHECK(clocks_.find(node) == clocks_.end());
  // A new worker joins at the current minimum so it does not drag the
  // consistent state backwards.
  clocks_[node] = MinClock();
}

void ClockTable::RemoveWorkerNode(NodeId node) {
  auto it = clocks_.find(node);
  PROTEUS_CHECK(it != clocks_.end());
  clocks_.erase(it);
}

bool ClockTable::HasWorkerNode(NodeId node) const { return clocks_.find(node) != clocks_.end(); }

void ClockTable::AdvanceTo(NodeId node, Clock clock) {
  auto it = clocks_.find(node);
  PROTEUS_CHECK(it != clocks_.end()) << "unknown worker node " << node;
  PROTEUS_CHECK_GE(clock, it->second);
  it->second = clock;
}

Clock ClockTable::ClockOf(NodeId node) const {
  auto it = clocks_.find(node);
  PROTEUS_CHECK(it != clocks_.end()) << "unknown worker node " << node;
  return it->second;
}

Clock ClockTable::MinClock() const {
  if (clocks_.empty()) {
    return 0;
  }
  Clock min = clocks_.begin()->second;
  for (const auto& [unused, c] : clocks_) {
    min = std::min(min, c);
  }
  return min;
}

bool ClockTable::CanAdvance(NodeId node) const {
  return ClockOf(node) - MinClock() <= staleness_;
}

std::uint64_t ClockTable::Digest() const {
  // FNV-1a over the sorted (node, clock) stream; std::map iteration is
  // already sorted, so equal tables hash identically.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  mix(static_cast<std::uint64_t>(staleness_));
  for (const auto& [node, clock] : clocks_) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)));
    mix(static_cast<std::uint64_t>(clock));
  }
  return h;
}

}  // namespace proteus
