#include "src/ps/clock_table.h"

#include <algorithm>

#include "src/common/logging.h"

namespace proteus {

ClockTable::ClockTable(int staleness) : staleness_(staleness) {
  PROTEUS_CHECK_GE(staleness, 0);
}

void ClockTable::AddWorkerNode(NodeId node) {
  PROTEUS_CHECK(clocks_.find(node) == clocks_.end());
  // A new worker joins at the current minimum so it does not drag the
  // consistent state backwards.
  clocks_[node] = MinClock();
}

void ClockTable::RemoveWorkerNode(NodeId node) {
  auto it = clocks_.find(node);
  PROTEUS_CHECK(it != clocks_.end());
  clocks_.erase(it);
}

bool ClockTable::HasWorkerNode(NodeId node) const { return clocks_.find(node) != clocks_.end(); }

void ClockTable::AdvanceTo(NodeId node, Clock clock) {
  auto it = clocks_.find(node);
  PROTEUS_CHECK(it != clocks_.end()) << "unknown worker node " << node;
  PROTEUS_CHECK_GE(clock, it->second);
  it->second = clock;
}

Clock ClockTable::ClockOf(NodeId node) const {
  auto it = clocks_.find(node);
  PROTEUS_CHECK(it != clocks_.end()) << "unknown worker node " << node;
  return it->second;
}

Clock ClockTable::MinClock() const {
  if (clocks_.empty()) {
    return 0;
  }
  Clock min = clocks_.begin()->second;
  for (const auto& [unused, c] : clocks_) {
    min = std::min(min, c);
  }
  return min;
}

bool ClockTable::CanAdvance(NodeId node) const {
  return ClockOf(node) - MinClock() <= staleness_;
}

}  // namespace proteus
