// Partitioned parameter storage: the value plane of the parameter server.
//
// The solution state is a set of tables of float-vector rows (the paper's
// value type: vectors with component-wise add as the aggregation
// function). Rows are assigned round-robin to a fixed number of
// partitions chosen at start-up (§3.3: N partitions, ownership moves but
// shards are never re-split). This class owns:
//   - the authoritative state (what ActivePSs / ParamServs serve),
//   - an optional backup copy (what BackupPSs hold in stages 2/3),
//   - per-partition dirty tracking: the set of rows changed since the
//     last active->backup sync. This is the paper's "aggregate of the
//     delta applied ... since the last time they applied their state to
//     the BackupPSs", which makes rollback cheap.
//
// Thread-safety: every operation takes the owning partition's mutex.
// Row vectors are never resized after creation.
#ifndef SRC_PS_MODEL_H_
#define SRC_PS_MODEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"

namespace proteus {

struct TableSpec {
  int table_id = 0;
  std::int64_t rows = 0;
  int cols = 0;
  // Rows are lazily materialized as init_value plus a deterministic
  // per-row jitter in [-init_jitter, +init_jitter].
  float init_value = 0.0F;
  float init_jitter = 0.0F;
};

using RowKey = std::uint64_t;

constexpr RowKey MakeRowKey(int table, std::int64_t row) {
  return (static_cast<RowKey>(static_cast<std::uint32_t>(table)) << 40) |
         static_cast<RowKey>(row);
}
constexpr int TableOfKey(RowKey key) { return static_cast<int>(key >> 40); }
constexpr std::int64_t RowOfKey(RowKey key) {
  return static_cast<std::int64_t>(key & ((1ULL << 40) - 1));
}

// Serialization overhead per row on the wire (key + length + framing).
inline constexpr std::size_t kRowWireOverhead = 16;

class ModelStore {
 public:
  ModelStore(std::vector<TableSpec> tables, int num_partitions, std::uint64_t seed);

  int num_partitions() const { return num_partitions_; }
  const std::vector<TableSpec>& tables() const { return tables_; }
  const TableSpec& table(int table_id) const;

  PartitionId PartitionOf(int table, std::int64_t row) const;
  std::size_t RowBytes(int table) const;  // Wire size of one row.
  // Total wire size of the full model (all rows of all tables).
  std::uint64_t ModelBytes() const;

  // Copies the row's current value into `out` (resized to cols).
  void ReadRow(int table, std::int64_t row, std::vector<float>& out) const;
  // Component-wise add; marks the row dirty.
  void ApplyDelta(int table, std::int64_t row, std::span<const float> delta);
  // Overwrites the row (used by tests and recovery paths).
  void SetRow(int table, std::int64_t row, std::span<const float> value);

  // --- Backup machinery (stages 2 and 3) ---
  // Snapshots current state as the backup copy and clears dirty sets.
  void EnableBackups();
  bool backups_enabled() const { return backups_enabled_; }
  // Wire bytes that a sync of partition p would transfer right now.
  std::uint64_t DirtyBytes(PartitionId p) const;
  // Copies dirty rows of partition p into the backup; returns wire bytes.
  std::uint64_t SyncPartitionToBackup(PartitionId p);
  // Reverts partition p's state to the backup copy (discarding deltas
  // applied since the last sync). Rows created after the last sync are
  // dropped; lazy init will recreate them identically.
  void RollbackPartitionToBackup(PartitionId p);
  void RollbackAllToBackup();
  // Wire bytes of all current rows of partition p (for state migration).
  std::uint64_t PartitionBytes(PartitionId p) const;

  // --- Checkpointing (stage-1 reliable-machine insurance, §3.3) ---
  // Serializes the full authoritative state.
  std::vector<std::uint8_t> SerializeCheckpoint() const;
  void RestoreCheckpoint(const std::vector<std::uint8_t>& blob);

  // Sequential iteration over materialized rows of a table (objective
  // computation). Not thread-safe against concurrent writers.
  void ForEachRow(int table,
                  const std::function<void(std::int64_t, std::span<const float>)>& fn) const;

  // Materialized row count across all tables (rows touched so far).
  std::size_t MaterializedRows() const;

 private:
  struct Partition {
    mutable std::mutex mu;
    std::unordered_map<RowKey, std::vector<float>> state;
    std::unordered_map<RowKey, std::vector<float>> backup;
    std::unordered_set<RowKey> dirty;
  };

  Partition& PartitionFor(int table, std::int64_t row);
  const Partition& PartitionFor(int table, std::int64_t row) const;
  // Materializes the row if absent. Caller must hold the partition mutex.
  std::vector<float>& RowLocked(Partition& p, int table, std::int64_t row) const;
  float InitValueFor(RowKey key, int component) const;

  std::vector<TableSpec> tables_;
  int num_partitions_;
  std::uint64_t seed_;
  bool backups_enabled_ = false;
  std::vector<std::unique_ptr<Partition>> partitions_;
};

}  // namespace proteus

#endif  // SRC_PS_MODEL_H_
