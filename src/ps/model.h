// Partitioned parameter storage: the value plane of the parameter server.
//
// The solution state is a set of tables of float-vector rows (the paper's
// value type: vectors with component-wise add as the aggregation
// function). Rows are assigned round-robin to a fixed number of
// partitions chosen at start-up (§3.3: N partitions, ownership moves but
// shards are never re-split). This class owns:
//   - the authoritative state (what ActivePSs / ParamServs serve),
//   - an optional backup copy (what BackupPSs hold in stages 2/3),
//   - per-partition dirty tracking: the set of rows changed since the
//     last active->backup sync. This is the paper's "aggregate of the
//     delta applied ... since the last time they applied their state to
//     the BackupPSs", which makes rollback cheap.
//
// Two storage engines sit behind the same interface, selected by
// ModelOptions::shards:
//   - shards == 1 (default): the legacy path — one hash map + mutex per
//     partition, per-row wire accounting. Kept verbatim so the
//     differential tests (tests/ps_differential_test.cc) can pin the
//     fast path against it bit for bit.
//   - shards >= 2: the lock-striped fast path — partitions are grouped
//     into `shards` stripes (partition p lives wholly in shard
//     p % shards, so partition-granular elasticity re-assignment never
//     splits a shard's row set). Each shard holds one mutex, a
//     contiguous append-only float arena (SIMD-friendly batched
//     ApplyUpdates), per-shard version/sync-clock metadata, and
//     delta-sync accounting in the coalesced varint wire format
//     (EncodeDeltaBatch in src/rpc/serializer.h).
//
// Checkpoints are canonical (partitions ascending, rows sorted by key
// within a partition), so the two engines produce bit-identical bytes
// for identical state. RestoreCheckpoint / RestoreShardCheckpoint
// invalidate the backup copy on both paths; callers that use backups
// must EnableBackups() afterwards (AgileMLRuntime does).
//
// Thread-safety: every operation takes the owning partition's (legacy)
// or shard's (fast path) mutex. Row vectors are never resized after
// creation. Per-shard versions are readable lock-free.
#ifndef SRC_PS_MODEL_H_
#define SRC_PS_MODEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"
#include "src/obs/metrics.h"
#include "src/ps/clock_table.h"  // For the Clock alias.

namespace proteus {

struct TableSpec {
  int table_id = 0;
  std::int64_t rows = 0;
  int cols = 0;
  // Rows are lazily materialized as init_value plus a deterministic
  // per-row jitter in [-init_jitter, +init_jitter].
  float init_value = 0.0F;
  float init_jitter = 0.0F;
};

// Storage-engine knobs (see the header comment for semantics).
struct ModelOptions {
  // Lock stripes. 1 = legacy per-partition hash-map path; >= 2 = the
  // contiguous-arena striped fast path. Clamped to num_partitions.
  int shards = 1;
};

using RowKey = std::uint64_t;

constexpr RowKey MakeRowKey(int table, std::int64_t row) {
  return (static_cast<RowKey>(static_cast<std::uint32_t>(table)) << 40) |
         static_cast<RowKey>(row);
}
constexpr int TableOfKey(RowKey key) { return static_cast<int>(key >> 40); }
constexpr std::int64_t RowOfKey(RowKey key) {
  return static_cast<std::int64_t>(key & ((1ULL << 40) - 1));
}

// Serialization overhead per row on the wire with legacy per-row framing
// (key + length + framing). The fast path replaces this with coalesced
// varint batches.
inline constexpr std::size_t kRowWireOverhead = 16;

// One row update for the batched apply path. `values` must stay alive
// for the duration of the ApplyUpdates call.
struct RowDelta {
  int table = 0;
  std::int64_t row = 0;
  std::span<const float> values;
};

// Point-in-time metadata of one shard (fast path; the legacy path
// reports everything under shard 0).
struct ShardState {
  std::uint64_t version = 0;    // Bumps on every state mutation.
  Clock last_sync_clock = -1;   // Last SyncPartitionToBackup(p, clock) here.
  std::size_t live_rows = 0;    // Materialized, non-dropped rows.
};

class ModelStore {
 public:
  ModelStore(std::vector<TableSpec> tables, int num_partitions, std::uint64_t seed)
      : ModelStore(std::move(tables), num_partitions, seed, ModelOptions{}) {}
  ModelStore(std::vector<TableSpec> tables, int num_partitions, std::uint64_t seed,
             ModelOptions options);

  int num_partitions() const { return num_partitions_; }
  int shards() const { return options_.shards; }
  int ShardOfPartition(PartitionId p) const { return static_cast<int>(p) % options_.shards; }
  const std::vector<TableSpec>& tables() const { return tables_; }
  const TableSpec& table(int table_id) const;

  PartitionId PartitionOf(int table, std::int64_t row) const;
  std::size_t RowBytes(int table) const;  // Legacy wire size of one row.
  // Total wire size of the full model (all rows of all tables).
  std::uint64_t ModelBytes() const;

  // Copies the row's current value into `out` (resized to cols).
  void ReadRow(int table, std::int64_t row, std::vector<float>& out) const;
  // Component-wise add; marks the row dirty.
  void ApplyDelta(int table, std::int64_t row, std::span<const float> delta);
  // Batched component-wise add: each shard's lock is taken once for the
  // whole batch and rows are applied in input order within a shard. On
  // the legacy path this degenerates to per-row ApplyDelta calls, which
  // is exactly the baseline the micro_ops bench compares against.
  void ApplyUpdates(std::span<const RowDelta> deltas);
  // Overwrites the row (used by tests and recovery paths).
  void SetRow(int table, std::int64_t row, std::span<const float> value);

  // --- Backup machinery (stages 2 and 3) ---
  // Snapshots current state as the backup copy and clears dirty sets.
  void EnableBackups();
  bool backups_enabled() const { return backups_enabled_; }
  // Wire bytes that a sync of partition p would transfer right now:
  // per-row framing on the legacy path, one coalesced delta batch on the
  // fast path (0 when nothing is dirty on either path).
  std::uint64_t DirtyBytes(PartitionId p) const;
  // Copies dirty rows of partition p into the backup; returns the wire
  // bytes (same accounting as DirtyBytes). `at_clock >= 0` records the
  // sync clock in the owning shard's metadata.
  std::uint64_t SyncPartitionToBackup(PartitionId p, Clock at_clock = -1);
  // The exact coalesced wire payload a sync of partition p would send:
  // the dirty rows' current values as one delta batch, rows in key
  // order. Byte-identical across storage engines for identical state.
  std::vector<std::uint8_t> EncodeDirtyRows(PartitionId p) const;
  // Reverts partition p's state to the backup copy (discarding deltas
  // applied since the last sync). Rows created after the last sync are
  // dropped; lazy init will recreate them identically.
  void RollbackPartitionToBackup(PartitionId p);
  void RollbackAllToBackup();
  // Wire bytes of all current rows of partition p (for state migration).
  std::uint64_t PartitionBytes(PartitionId p) const;

  // --- Checkpointing (stage-1 reliable-machine insurance, §3.3) ---
  // Serializes the full authoritative state in canonical order
  // (partitions ascending, rows sorted by key within each partition);
  // identical state yields identical bytes on both storage engines.
  std::vector<std::uint8_t> SerializeCheckpoint() const;
  // Canonical bytes of one shard's partitions (ascending), enabling
  // shard-granular snapshot/restore.
  std::vector<std::uint8_t> SerializeShardCheckpoint(int shard) const;
  // Both restores invalidate the backup copy; re-EnableBackups() after.
  void RestoreCheckpoint(const std::vector<std::uint8_t>& blob);
  // Clears and reloads exactly the given shard's partitions. Rows in the
  // blob must belong to the shard.
  void RestoreShardCheckpoint(int shard, std::span<const std::uint8_t> blob);

  // --- Per-shard metadata and observability ---
  // Lock-free monotonic mutation counter of one shard.
  std::uint64_t ShardVersion(int shard) const;
  ShardState ShardStateOf(int shard) const;
  // max/mean live rows across shards (1.0 = perfectly balanced; 1.0 when
  // the store is empty).
  double ShardImbalance() const;
  // Registers ps.apply.* counters and ps.shard.* gauges (per-shard
  // labels). Pass nullptr to detach. Not thread-safe against concurrent
  // mutators; attach before use like the runtime does.
  void SetObservability(obs::MetricsRegistry* metrics);
  // Refreshes ps.shard.rows / ps.shard.imbalance gauges (no-op when
  // detached). The runtime calls this once per clock.
  void UpdateShardGauges();

  // Sequential iteration over materialized rows of a table (objective
  // computation). Not thread-safe against concurrent writers.
  void ForEachRow(int table,
                  const std::function<void(std::int64_t, std::span<const float>)>& fn) const;

  // Materialized row count across all tables (rows touched so far).
  std::size_t MaterializedRows() const;

 private:
  // --- Legacy engine (shards == 1) ---
  struct Partition {
    mutable std::mutex mu;
    std::unordered_map<RowKey, std::vector<float>> state;
    std::unordered_map<RowKey, std::vector<float>> backup;
    std::unordered_set<RowKey> dirty;
  };

  // --- Striped engine (shards >= 2) ---
  struct Slot {
    RowKey key = 0;
    std::size_t offset = 0;     // Into values/backup_values, in floats.
    std::uint32_t cols = 0;
    bool live = true;           // False after a rollback dropped the row.
    bool in_backup = false;     // backup_values holds a valid copy.
  };
  struct Shard {
    mutable std::mutex mu;
    std::vector<float> values;         // Contiguous append-only arena.
    std::vector<float> backup_values;  // Parallel arena, same offsets.
    std::unordered_map<RowKey, std::uint32_t> index;  // key -> slot (live only).
    std::vector<Slot> slots;
    // Dirty row sets, one per local partition (local index p / shards).
    std::vector<std::unordered_set<RowKey>> dirty;
    std::atomic<std::uint64_t> version{0};
    Clock last_sync_clock = -1;
    std::size_t live_rows = 0;
  };

  bool fast() const { return options_.shards > 1; }
  int LocalPartition(PartitionId p) const { return static_cast<int>(p) / options_.shards; }

  Partition& PartitionFor(int table, std::int64_t row);
  const Partition& PartitionFor(int table, std::int64_t row) const;
  // Materializes the row if absent. Caller must hold the partition mutex.
  std::vector<float>& RowLocked(Partition& p, int table, std::int64_t row) const;
  // Fast path: materializes the row if absent and returns its slot
  // index. Caller must hold the shard mutex.
  std::uint32_t SlotLocked(Shard& s, RowKey key, int cols) const;
  float InitValueFor(RowKey key, int component) const;
  // Sorted dirty keys of partition p. Caller must hold the lock.
  std::vector<RowKey> SortedDirtyLocked(const std::unordered_set<RowKey>& dirty) const;
  // Coalesced wire bytes of a sorted key set (0 when empty).
  std::uint64_t CoalescedBytes(const std::vector<RowKey>& sorted_keys) const;
  // Canonical per-partition row serialization shared by both engines
  // (locks the owning partition/shard internally).
  void AppendPartitionCheckpoint(PartitionId p, std::vector<std::uint8_t>& blob) const;

  std::vector<TableSpec> tables_;
  int num_partitions_;
  std::uint64_t seed_;
  ModelOptions options_;
  bool backups_enabled_ = false;
  std::vector<std::unique_ptr<Partition>> partitions_;  // Legacy engine.
  std::vector<std::unique_ptr<Shard>> shards_;          // Striped engine.
  // Legacy-path metadata, reported as shard 0 by ShardStateOf.
  std::atomic<std::uint64_t> legacy_version_{0};
  Clock legacy_sync_clock_ = -1;

  // Cached observability handles (see SetObservability).
  obs::MetricsRegistry* metrics_ = nullptr;
  std::vector<obs::Counter*> apply_nanos_;  // Per shard.
  std::vector<obs::Counter*> apply_rows_;   // Per shard.
  std::vector<obs::Gauge*> shard_rows_;     // Per shard.
  obs::Gauge* imbalance_gauge_ = nullptr;
};

}  // namespace proteus

#endif  // SRC_PS_MODEL_H_
