// Per-node, per-iteration record of which parameter rows a node's workers
// read and updated. The AgileML runtime converts these sets into wire
// bytes: the worker-side library caches reads within a clock and
// write-back-coalesces updates (§2.1), so each distinct row costs one
// fetch and one flush per clock regardless of how many times workers on
// the node touch it.
#ifndef SRC_PS_ACCESS_TRACKER_H_
#define SRC_PS_ACCESS_TRACKER_H_

#include <cstdint>
#include <unordered_set>

#include "src/ps/model.h"

namespace proteus {

class AccessTracker {
 public:
  void Clear();

  // Returns true the first time the row is read this clock (a cache miss).
  bool RecordRead(int table, std::int64_t row);
  // Returns true the first time the row is updated this clock.
  bool RecordUpdate(int table, std::int64_t row);

  const std::unordered_set<RowKey>& reads() const { return reads_; }
  const std::unordered_set<RowKey>& updates() const { return updates_; }

  std::uint64_t total_read_ops() const { return total_read_ops_; }
  std::uint64_t total_update_ops() const { return total_update_ops_; }
  // Cache hit rate over reads this clock.
  double ReadHitRate() const;

 private:
  std::unordered_set<RowKey> reads_;
  std::unordered_set<RowKey> updates_;
  std::uint64_t total_read_ops_ = 0;
  std::uint64_t total_update_ops_ = 0;
};

}  // namespace proteus

#endif  // SRC_PS_ACCESS_TRACKER_H_
