#include "src/ps/access_tracker.h"

namespace proteus {

void AccessTracker::Clear() {
  reads_.clear();
  updates_.clear();
  total_read_ops_ = 0;
  total_update_ops_ = 0;
}

bool AccessTracker::RecordRead(int table, std::int64_t row) {
  ++total_read_ops_;
  return reads_.insert(MakeRowKey(table, row)).second;
}

bool AccessTracker::RecordUpdate(int table, std::int64_t row) {
  ++total_update_ops_;
  return updates_.insert(MakeRowKey(table, row)).second;
}

double AccessTracker::ReadHitRate() const {
  if (total_read_ops_ == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(reads_.size()) / static_cast<double>(total_read_ops_);
}

}  // namespace proteus
