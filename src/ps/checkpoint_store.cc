#include "src/ps/checkpoint_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <utility>

#include "src/common/crc32.h"
#include "src/common/logging.h"
#include "src/rpc/serializer.h"

namespace proteus {
namespace {

constexpr std::uint32_t kChunkMagic = 0x314B4350u;     // 'PCK1' little-endian.
constexpr std::uint32_t kManifestMagic = 0x31464D50u;  // 'PMF1'.
constexpr std::uint8_t kFormatVersion = 1;
constexpr std::uint64_t kMaxShards = 1u << 16;

std::string ChunkName(int shard, std::uint64_t version) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "ck/obj/s%04d-v%020llu", shard,
                static_cast<unsigned long long>(version));
  return buf;
}

std::string EpochDir(std::uint64_t epoch) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "ck/ep/%010llu", static_cast<unsigned long long>(epoch));
  return buf;
}

std::string ManifestName(std::uint64_t epoch) { return EpochDir(epoch) + "/MANIFEST"; }
std::string TempManifestName(std::uint64_t epoch) { return EpochDir(epoch) + "/MANIFEST.tmp"; }

// "ck/ep/<digits>/MANIFEST[.tmp]" -> epoch; nullopt for other names.
std::optional<std::uint64_t> EpochOfName(const std::string& name, bool* is_tmp) {
  constexpr char kPrefix[] = "ck/ep/";
  if (name.rfind(kPrefix, 0) != 0) return std::nullopt;
  const std::size_t slash = name.find('/', sizeof(kPrefix) - 1);
  if (slash == std::string::npos) return std::nullopt;
  const std::string digits = name.substr(sizeof(kPrefix) - 1, slash - (sizeof(kPrefix) - 1));
  if (digits.empty()) return std::nullopt;
  std::uint64_t epoch = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    epoch = epoch * 10 + static_cast<std::uint64_t>(c - '0');
  }
  const std::string rest = name.substr(slash + 1);
  if (rest == "MANIFEST") {
    if (is_tmp != nullptr) *is_tmp = false;
    return epoch;
  }
  if (rest == "MANIFEST.tmp") {
    if (is_tmp != nullptr) *is_tmp = true;
    return epoch;
  }
  return std::nullopt;
}

// Trailing-CRC check shared by both frame kinds: the last 4 bytes must
// be the CRC-32 of everything before them.
bool TrailerValid(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < sizeof(std::uint32_t)) return false;
  const std::span<const std::uint8_t> body = bytes.first(bytes.size() - sizeof(std::uint32_t));
  std::uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + body.size(), sizeof(stored));
  return Crc32(body) == stored;
}

struct ManifestEntry {
  int shard = 0;
  std::uint64_t shard_version = 0;
  std::string chunk_name;
  std::uint64_t chunk_bytes = 0;
  std::uint32_t chunk_crc = 0;
};

struct ParsedManifest {
  std::uint64_t epoch = 0;
  Clock clock = 0;
  std::vector<ManifestEntry> entries;
};

std::optional<ParsedManifest> ParseManifestFrame(std::span<const std::uint8_t> bytes) {
  if (!TrailerValid(bytes)) return std::nullopt;
  WireReader reader(bytes.first(bytes.size() - sizeof(std::uint32_t)));
  const auto magic = reader.U32();
  const auto version = reader.U8();
  if (!magic || *magic != kManifestMagic) return std::nullopt;
  if (!version || *version != kFormatVersion) return std::nullopt;
  ParsedManifest manifest;
  const auto epoch = reader.VarU64();
  const auto clock = reader.VarU64();
  const auto count = reader.VarU64();
  if (!epoch || !clock || !count) return std::nullopt;
  if (*count == 0 || *count > kMaxShards) return std::nullopt;
  manifest.epoch = *epoch;
  manifest.clock = static_cast<Clock>(*clock);
  manifest.entries.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    ManifestEntry entry;
    const auto shard = reader.VarU64();
    const auto shard_version = reader.VarU64();
    const auto name = reader.Str();
    const auto chunk_bytes = reader.VarU64();
    const auto chunk_crc = reader.U32();
    if (!shard || !shard_version || !name || !chunk_bytes || !chunk_crc) return std::nullopt;
    if (*shard >= kMaxShards) return std::nullopt;
    entry.shard = static_cast<int>(*shard);
    entry.shard_version = *shard_version;
    entry.chunk_name = *name;
    entry.chunk_bytes = *chunk_bytes;
    entry.chunk_crc = *chunk_crc;
    manifest.entries.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) return std::nullopt;
  return manifest;
}

std::vector<std::uint8_t> EncodeChunkFrame(int shard, std::uint64_t shard_version, Clock clock,
                                           std::span<const std::uint8_t> payload) {
  WireWriter writer;
  writer.Reserve(payload.size() + 32);
  writer.U32(kChunkMagic);
  writer.U8(kFormatVersion);
  writer.VarU64(static_cast<std::uint64_t>(shard));
  writer.VarU64(shard_version);
  writer.VarU64(static_cast<std::uint64_t>(clock));
  writer.Blob(payload);
  writer.U32(Crc32(writer.bytes()));
  return writer.Take();
}

std::vector<std::uint8_t> EncodeManifestFrame(const ParsedManifest& manifest) {
  WireWriter writer;
  writer.U32(kManifestMagic);
  writer.U8(kFormatVersion);
  writer.VarU64(manifest.epoch);
  writer.VarU64(static_cast<std::uint64_t>(manifest.clock));
  writer.VarU64(manifest.entries.size());
  for (const ManifestEntry& entry : manifest.entries) {
    writer.VarU64(static_cast<std::uint64_t>(entry.shard));
    writer.VarU64(entry.shard_version);
    writer.Str(entry.chunk_name);
    writer.VarU64(entry.chunk_bytes);
    writer.U32(entry.chunk_crc);
  }
  writer.U32(Crc32(writer.bytes()));
  return writer.Take();
}

// Full validation of one committed epoch: manifest frame, then every
// referenced chunk's existence, size, object CRC, and frame contents.
// On success fills `out` (if non-null) with the shard payloads.
bool ValidateEpoch(const DurableDevice& device, const ParsedManifest& manifest,
                   LoadedCheckpoint* out) {
  std::vector<std::vector<std::uint8_t>> blobs(manifest.entries.size());
  std::vector<bool> seen(manifest.entries.size(), false);
  std::uint64_t bytes_read = 0;
  for (const ManifestEntry& entry : manifest.entries) {
    if (entry.shard < 0 || static_cast<std::size_t>(entry.shard) >= manifest.entries.size() ||
        seen[static_cast<std::size_t>(entry.shard)]) {
      return false;  // Shards must be exactly 0..N-1, once each.
    }
    const auto object = device.Read(entry.chunk_name);
    if (!object) return false;
    if (object->size() != entry.chunk_bytes) return false;
    if (Crc32(*object) != entry.chunk_crc) return false;
    auto chunk = ParseChunkFrame(*object);
    if (!chunk) return false;
    if (chunk->shard != entry.shard || chunk->shard_version != entry.shard_version) return false;
    // A reused chunk was written at an earlier clock; it must never be
    // from the future relative to its manifest.
    if (chunk->clock > manifest.clock) return false;
    bytes_read += object->size();
    seen[static_cast<std::size_t>(entry.shard)] = true;
    blobs[static_cast<std::size_t>(entry.shard)] = std::move(chunk->payload);
  }
  if (out != nullptr) {
    out->epoch = manifest.epoch;
    out->clock = manifest.clock;
    out->shard_blobs = std::move(blobs);
    out->bytes_read = bytes_read;
  }
  return true;
}

}  // namespace

std::optional<ParsedChunk> ParseChunkFrame(std::span<const std::uint8_t> bytes) {
  if (!TrailerValid(bytes)) return std::nullopt;
  WireReader reader(bytes.first(bytes.size() - sizeof(std::uint32_t)));
  const auto magic = reader.U32();
  const auto version = reader.U8();
  if (!magic || *magic != kChunkMagic) return std::nullopt;
  if (!version || *version != kFormatVersion) return std::nullopt;
  const auto shard = reader.VarU64();
  const auto shard_version = reader.VarU64();
  const auto clock = reader.VarU64();
  auto payload = reader.Blob();
  if (!shard || !shard_version || !clock || !payload) return std::nullopt;
  if (*shard >= kMaxShards) return std::nullopt;
  if (!reader.AtEnd()) return std::nullopt;
  ParsedChunk chunk;
  chunk.shard = static_cast<int>(*shard);
  chunk.shard_version = *shard_version;
  chunk.clock = static_cast<Clock>(*clock);
  chunk.payload = std::move(*payload);
  return chunk;
}

// --- MemDurableDevice ---

bool MemDurableDevice::Write(const std::string& name, std::span<const std::uint8_t> bytes) {
  if (torn_write_armed_) {
    torn_write_armed_ = false;
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(bytes.size()) * torn_keep_fraction_);
    objects_[name].assign(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    bytes_written_total_ += keep;
    return false;
  }
  objects_[name].assign(bytes.begin(), bytes.end());
  bytes_written_total_ += bytes.size();
  return true;
}

std::optional<std::vector<std::uint8_t>> MemDurableDevice::Read(const std::string& name) const {
  const auto it = objects_.find(name);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

bool MemDurableDevice::Delete(const std::string& name) { return objects_.erase(name) > 0; }

bool MemDurableDevice::Rename(const std::string& from, const std::string& to) {
  if (drop_rename_armed_) {
    drop_rename_armed_ = false;
    return false;
  }
  const auto it = objects_.find(from);
  if (it == objects_.end()) return false;
  objects_[to] = std::move(it->second);
  objects_.erase(from);
  return true;
}

std::vector<std::string> MemDurableDevice::List() const {
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& [name, bytes] : objects_) names.push_back(name);
  return names;  // std::map iteration is already sorted.
}

void MemDurableDevice::ArmTornWrite(double keep_fraction) {
  torn_write_armed_ = true;
  torn_keep_fraction_ = std::clamp(keep_fraction, 0.0, 1.0);
}

void MemDurableDevice::ArmDropRename() { drop_rename_armed_ = true; }

bool MemDurableDevice::FlipBit(const std::string& name, std::size_t byte_index, int bit) {
  const auto it = objects_.find(name);
  if (it == objects_.end() || byte_index >= it->second.size()) return false;
  it->second[byte_index] ^= static_cast<std::uint8_t>(1u << (bit & 7));
  return true;
}

bool MemDurableDevice::Truncate(const std::string& name, std::size_t new_size) {
  const auto it = objects_.find(name);
  if (it == objects_.end() || new_size >= it->second.size()) return false;
  it->second.resize(new_size);
  return true;
}

std::uint64_t MemDurableDevice::bytes_stored() const {
  std::uint64_t total = 0;
  for (const auto& [name, bytes] : objects_) total += bytes.size();
  return total;
}

// --- FileDurableDevice ---

FileDurableDevice::FileDurableDevice(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
}

std::string FileDurableDevice::Path(const std::string& name) const { return root_ + "/" + name; }

bool FileDurableDevice::Write(const std::string& name, std::span<const std::uint8_t> bytes) {
  const std::filesystem::path path = Path(name);
  std::error_code ec;
  std::filesystem::create_directories(path.parent_path(), ec);
  const std::filesystem::path tmp = path.string() + ".wr";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) return false;
  }
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

std::optional<std::vector<std::uint8_t>> FileDurableDevice::Read(const std::string& name) const {
  std::ifstream in(Path(name), std::ios::binary);
  if (!in) return std::nullopt;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

bool FileDurableDevice::Delete(const std::string& name) {
  std::error_code ec;
  return std::filesystem::remove(Path(name), ec) && !ec;
}

bool FileDurableDevice::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  std::filesystem::rename(Path(from), Path(to), ec);
  return !ec;
}

std::vector<std::string> FileDurableDevice::List() const {
  std::vector<std::string> names;
  std::error_code ec;
  const std::filesystem::path root(root_);
  for (auto it = std::filesystem::recursive_directory_iterator(root, ec);
       !ec && it != std::filesystem::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string rel = std::filesystem::relative(it->path(), root, ec).generic_string();
    if (!ec && !rel.empty()) names.push_back(rel);
  }
  std::sort(names.begin(), names.end());
  return names;
}

// --- CheckpointStore ---

CheckpointStore::CheckpointStore(DurableDevice* device, CheckpointStoreConfig config)
    : device_(device), config_(config) {
  PROTEUS_CHECK(device_ != nullptr);
  PROTEUS_CHECK(config_.retain_epochs >= 1);
  // Recover the epoch cursor from whatever is already on the device, so
  // a store reopened after a crash keeps appending instead of colliding
  // with (or hiding behind) existing epochs.
  for (const std::string& name : device_->List()) {
    bool is_tmp = false;
    const auto epoch = EpochOfName(name, &is_tmp);
    if (!epoch) continue;
    next_epoch_ = std::max(next_epoch_, *epoch + 1);
    if (!is_tmp) last_committed_epoch_ = std::max(last_committed_epoch_, *epoch);
  }
  if (last_committed_epoch_ != 0) {
    const auto bytes = device_->Read(ManifestName(last_committed_epoch_));
    if (bytes) {
      if (const auto manifest = ParseManifestFrame(*bytes)) {
        for (const ManifestEntry& entry : manifest->entries) {
          committed_versions_[entry.shard] = entry.shard_version;
        }
      }
    }
  }
}

void CheckpointStore::SetObservability(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) {
    bytes_written_counter_ = nullptr;
    bytes_restored_counter_ = nullptr;
    chunks_written_counter_ = nullptr;
    chunks_reused_counter_ = nullptr;
    epochs_committed_counter_ = nullptr;
    commit_aborts_counter_ = nullptr;
    corrupt_epochs_counter_ = nullptr;
    scrub_corrupt_counter_ = nullptr;
    return;
  }
  bytes_written_counter_ = metrics_->GetCounter("checkpoint.bytes_written");
  bytes_restored_counter_ = metrics_->GetCounter("checkpoint.bytes_restored");
  chunks_written_counter_ = metrics_->GetCounter("checkpoint.chunks_written");
  chunks_reused_counter_ = metrics_->GetCounter("checkpoint.chunks_reused");
  epochs_committed_counter_ = metrics_->GetCounter("checkpoint.epochs_committed");
  commit_aborts_counter_ = metrics_->GetCounter("checkpoint.commit_aborts");
  corrupt_epochs_counter_ = metrics_->GetCounter("checkpoint.corrupt_epochs_skipped");
  scrub_corrupt_counter_ = metrics_->GetCounter("checkpoint.scrub_corruptions_found");
}

CheckpointWriteResult CheckpointStore::WriteCheckpoint(const ModelStore& model, Clock clock) {
  const int shards = model.shards();
  std::vector<std::vector<std::uint8_t>> blobs;
  std::vector<std::uint64_t> versions;
  blobs.reserve(static_cast<std::size_t>(shards));
  versions.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    // Capture the version *before* serializing: if a concurrent mutation
    // races the snapshot, the pessimistic order at worst rewrites an
    // unchanged shard next epoch, never reuses a stale one.
    versions.push_back(model.ShardVersion(s));
    blobs.push_back(model.SerializeShardCheckpoint(s));
  }
  return WriteInternal(blobs, versions, clock);
}

CheckpointWriteResult CheckpointStore::WriteBlobs(
    const std::vector<std::vector<std::uint8_t>>& blobs,
    const std::vector<std::uint64_t>& shard_versions, Clock clock) {
  PROTEUS_CHECK(blobs.size() == shard_versions.size());
  return WriteInternal(blobs, shard_versions, clock);
}

CheckpointWriteResult CheckpointStore::WriteInternal(
    const std::vector<std::vector<std::uint8_t>>& blobs,
    const std::vector<std::uint64_t>& shard_versions, Clock clock) {
  PROTEUS_CHECK(!blobs.empty());
  CheckpointWriteResult result;
  result.epoch = next_epoch_++;
  result.clock = clock;

  ParsedManifest manifest;
  manifest.epoch = result.epoch;
  manifest.clock = clock;
  bool aborted = false;
  for (std::size_t s = 0; s < blobs.size(); ++s) {
    const int shard = static_cast<int>(s);
    const std::uint64_t version = shard_versions[s];
    const std::string name = ChunkName(shard, version);
    const auto committed = committed_versions_.find(shard);
    // Reuse requires the stored chunk to still self-validate: bit rot on
    // a shared chunk would otherwise propagate into every future epoch
    // that references it. A corrupt chunk is simply rewritten, so the
    // next committed epoch self-heals the store.
    std::optional<std::vector<std::uint8_t>> existing;
    if (committed != committed_versions_.end() && committed->second == version) {
      existing = device_->Read(name);
      if (existing && !ParseChunkFrame(*existing)) {
        existing.reset();
      }
    }
    std::uint64_t chunk_bytes = 0;
    std::uint32_t chunk_crc = 0;
    if (existing) {
      chunk_bytes = existing->size();
      chunk_crc = Crc32(*existing);
      ++result.chunks_reused;
    } else {
      const std::vector<std::uint8_t> frame = EncodeChunkFrame(shard, version, clock, blobs[s]);
      if (!device_->Write(name, frame)) {
        // The store survived the device fault, so it rolls the aborted
        // epoch back: the torn chunk must not shadow a future write.
        device_->Delete(name);
        aborted = true;
        break;
      }
      chunk_bytes = frame.size();
      chunk_crc = Crc32(frame);
      result.bytes_written += frame.size();
      ++result.chunks_written;
    }
    manifest.entries.push_back(
        {shard, version, name, chunk_bytes, chunk_crc});
  }

  if (!aborted) {
    const std::vector<std::uint8_t> frame = EncodeManifestFrame(manifest);
    if (!device_->Write(TempManifestName(result.epoch), frame)) {
      aborted = true;
    } else if (!device_->Rename(TempManifestName(result.epoch), ManifestName(result.epoch))) {
      aborted = true;  // Crash between phase 1 and the commit point.
    } else {
      result.bytes_written += frame.size();
      result.committed = true;
    }
  }

  if (result.committed) {
    last_committed_epoch_ = result.epoch;
    ++epochs_committed_;
    for (const ManifestEntry& entry : manifest.entries) {
      committed_versions_[entry.shard] = entry.shard_version;
    }
    CollectGarbage();
    if (metrics_ != nullptr) {
      bytes_written_counter_->Add(result.bytes_written);
      chunks_written_counter_->Add(static_cast<std::uint64_t>(result.chunks_written));
      chunks_reused_counter_->Add(static_cast<std::uint64_t>(result.chunks_reused));
      epochs_committed_counter_->Increment();
    }
  } else {
    ++commit_aborts_;
    if (metrics_ != nullptr) commit_aborts_counter_->Increment();
  }
  return result;
}

std::optional<LoadedCheckpoint> CheckpointStore::ReadNewestValid() const {
  // Collect epochs newest-first; a tmp-only epoch is torn, a committed
  // manifest that fails validation is corrupt — both skipped.
  std::map<std::uint64_t, bool> has_manifest;  // epoch -> committed manifest present.
  for (const std::string& name : device_->List()) {
    bool is_tmp = false;
    const auto epoch = EpochOfName(name, &is_tmp);
    if (!epoch) continue;
    auto [it, inserted] = has_manifest.emplace(*epoch, !is_tmp);
    if (!inserted && !is_tmp) it->second = true;
  }
  int corrupt_skipped = 0;
  int torn_skipped = 0;
  for (auto it = has_manifest.rbegin(); it != has_manifest.rend(); ++it) {
    if (!it->second) {
      ++torn_skipped;
      continue;
    }
    const auto bytes = device_->Read(ManifestName(it->first));
    if (bytes) {
      const auto manifest = ParseManifestFrame(*bytes);
      if (manifest && manifest->epoch == it->first) {
        LoadedCheckpoint loaded;
        if (ValidateEpoch(*device_, *manifest, &loaded)) {
          loaded.bytes_read += bytes->size();
          loaded.corrupt_epochs_skipped = corrupt_skipped;
          loaded.torn_epochs_skipped = torn_skipped;
          if (metrics_ != nullptr) {
            bytes_restored_counter_->Add(loaded.bytes_read);
            corrupt_epochs_counter_->Add(static_cast<std::uint64_t>(corrupt_skipped));
          }
          return loaded;
        }
      }
    }
    ++corrupt_skipped;
  }
  if (metrics_ != nullptr) corrupt_epochs_counter_->Add(static_cast<std::uint64_t>(corrupt_skipped));
  return std::nullopt;
}

ScrubReport CheckpointStore::Scrub() const {
  ScrubReport report;
  std::set<std::uint64_t> committed;
  std::set<std::uint64_t> tmp_only;
  std::vector<std::string> chunk_names;
  for (const std::string& name : device_->List()) {
    bool is_tmp = false;
    if (const auto epoch = EpochOfName(name, &is_tmp)) {
      if (is_tmp) {
        tmp_only.insert(*epoch);
      } else {
        committed.insert(*epoch);
      }
      continue;
    }
    if (name.rfind("ck/obj/", 0) == 0) chunk_names.push_back(name);
  }
  for (std::uint64_t epoch : tmp_only) {
    if (committed.count(epoch) == 0) ++report.torn_epochs;
  }
  report.epochs_committed = static_cast<int>(committed.size());
  // Every chunk must self-validate regardless of which manifests still
  // reference it.
  for (const std::string& name : chunk_names) {
    ++report.frames_checked;
    const auto bytes = device_->Read(name);
    if (!bytes || !ParseChunkFrame(*bytes)) report.corrupt_objects.push_back(name);
  }
  // Every committed manifest must parse and its epoch must fully
  // validate (existence + size + CRC of each referenced chunk).
  for (std::uint64_t epoch : committed) {
    ++report.frames_checked;
    const std::string name = ManifestName(epoch);
    const auto bytes = device_->Read(name);
    const auto manifest = bytes ? ParseManifestFrame(*bytes) : std::nullopt;
    if (!manifest || manifest->epoch != epoch || !ValidateEpoch(*device_, *manifest, nullptr)) {
      report.corrupt_objects.push_back(name);
    }
  }
  if (metrics_ != nullptr) {
    scrub_corrupt_counter_->Add(report.corrupt_objects.size());
  }
  return report;
}

void CheckpointStore::CollectGarbage() {
  // Keep the newest retain_epochs committed manifests; delete older
  // manifests, any leftover tmp files below the retention floor, and
  // every chunk no retained (and readable) manifest references.
  std::vector<std::uint64_t> committed;
  std::vector<std::pair<std::uint64_t, std::string>> tmp_files;
  std::vector<std::string> chunk_names;
  for (const std::string& name : device_->List()) {
    bool is_tmp = false;
    if (const auto epoch = EpochOfName(name, &is_tmp)) {
      if (is_tmp) {
        tmp_files.emplace_back(*epoch, name);
      } else {
        committed.push_back(*epoch);
      }
      continue;
    }
    if (name.rfind("ck/obj/", 0) == 0) chunk_names.push_back(name);
  }
  std::sort(committed.begin(), committed.end());
  if (committed.size() <= static_cast<std::size_t>(config_.retain_epochs)) {
    // Still collect tmp leftovers from epochs older than the newest
    // committed one (dead torn commits).
    for (const auto& [epoch, name] : tmp_files) {
      if (epoch < last_committed_epoch_) device_->Delete(name);
    }
    return;
  }
  const std::uint64_t floor =
      committed[committed.size() - static_cast<std::size_t>(config_.retain_epochs)];
  std::set<std::string> referenced;
  for (std::uint64_t epoch : committed) {
    if (epoch < floor) {
      device_->Delete(ManifestName(epoch));
      continue;
    }
    const auto bytes = device_->Read(ManifestName(epoch));
    const auto manifest = bytes ? ParseManifestFrame(*bytes) : std::nullopt;
    if (manifest) {
      for (const ManifestEntry& entry : manifest->entries) referenced.insert(entry.chunk_name);
    }
  }
  for (const auto& [epoch, name] : tmp_files) {
    if (epoch < last_committed_epoch_) device_->Delete(name);
  }
  for (const std::string& name : chunk_names) {
    if (referenced.count(name) == 0) device_->Delete(name);
  }
}

}  // namespace proteus
