// Durable checkpoint tier (stage-1 insurance made real, §3.3).
//
// The in-memory checkpoints AgileML keeps on reliable nodes die with
// those nodes; when a correlated spot-market crash takes every transient
// node *and* the reliable tier, the only recovery source left is a
// snapshot on durable storage. CheckpointStore is that layer: versioned
// epochs of per-shard CRC32-framed chunks under an atomically-committed
// manifest, written to a pluggable DurableDevice that is allowed to be
// hostile (torn writes, bit rot, truncation, lost commits).
//
// Object layout on the device
//
//   ck/obj/s<shard>-v<version>      one chunk: framed shard blob
//   ck/ep/<epoch10>/MANIFEST        committed epoch manifest
//   ck/ep/<epoch10>/MANIFEST.tmp    phase-1 of the manifest commit
//
// Chunk frame (all multi-byte scalars via the rpc wire format):
//
//   u32   magic 'PCK1'
//   u8    format version (1)
//   var   shard index
//   var   shard version (ModelStore::ShardVersion at serialize time)
//   var   checkpoint clock
//   blob  payload = ModelStore::SerializeShardCheckpoint(shard)
//   u32   CRC-32 of every preceding byte
//
// Manifest frame:
//
//   u32   magic 'PMF1'
//   u8    format version (1)
//   var   epoch
//   var   clock
//   var   shard count N
//   N x { var shard, var shard_version, str chunk_name,
//         var chunk_bytes, u32 chunk_crc }
//   u32   CRC-32 of every preceding byte
//
// chunk_crc is the CRC-32 of the *entire chunk object*, so a reader can
// reject a swapped or stale chunk without parsing it.
//
// Commit protocol (two-phase): write every new chunk, write
// MANIFEST.tmp, then Rename() it to MANIFEST. The rename is the commit
// point — a crash before it leaves a torn epoch that readers skip
// because no committed manifest exists. Writes are incremental: a shard
// whose ShardVersion is unchanged since the last committed epoch reuses
// its chunk by name instead of rewriting the bytes.
//
// Validation is paranoid by design: ReadNewestValid() walks epochs
// newest-first and accepts the first one whose manifest parses, whose
// CRC matches, whose every chunk exists with the manifest's size and
// CRC, and whose frames all self-validate. Anything less is skipped and
// counted, never loaded. Scrub() applies the same checks to every
// object on the device.
#ifndef SRC_PS_CHECKPOINT_STORE_H_
#define SRC_PS_CHECKPOINT_STORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/obs/metrics.h"
#include "src/ps/model.h"

namespace proteus {

// Minimal durable-storage contract. Names are flat strings ('/' is only
// a naming convention); Write replaces, Rename is atomic (the commit
// primitive), List returns all names sorted. Any call may fail — the
// store treats failure as "the process crashed here".
class DurableDevice {
 public:
  virtual ~DurableDevice() = default;

  virtual bool Write(const std::string& name, std::span<const std::uint8_t> bytes) = 0;
  virtual std::optional<std::vector<std::uint8_t>> Read(const std::string& name) const = 0;
  virtual bool Delete(const std::string& name) = 0;
  virtual bool Rename(const std::string& from, const std::string& to) = 0;
  virtual std::vector<std::string> List() const = 0;

  bool Exists(const std::string& name) const { return Read(name).has_value(); }
};

// In-memory device for simulation and tests, with the fault hooks the
// chaos harness needs: armed one-shot crash faults (torn write, dropped
// rename) and direct corruption of stored objects.
class MemDurableDevice : public DurableDevice {
 public:
  bool Write(const std::string& name, std::span<const std::uint8_t> bytes) override;
  std::optional<std::vector<std::uint8_t>> Read(const std::string& name) const override;
  bool Delete(const std::string& name) override;
  bool Rename(const std::string& from, const std::string& to) override;
  std::vector<std::string> List() const override;

  // The next Write persists only the first `keep_fraction` of its bytes
  // and reports failure — a crash mid-write leaving a torn frame.
  void ArmTornWrite(double keep_fraction = 0.5);
  // The next Rename does nothing and reports failure — a crash after
  // phase 1 but before the commit point, leaving MANIFEST.tmp behind.
  void ArmDropRename();

  // Bit rot / hostile-storage injection. All return false if `name` is
  // absent (or the offset is out of range).
  bool FlipBit(const std::string& name, std::size_t byte_index, int bit);
  bool Truncate(const std::string& name, std::size_t new_size);

  std::size_t object_count() const { return objects_.size(); }
  std::uint64_t bytes_stored() const;
  std::uint64_t bytes_written_total() const { return bytes_written_total_; }

 private:
  std::map<std::string, std::vector<std::uint8_t>> objects_;
  std::uint64_t bytes_written_total_ = 0;
  bool torn_write_armed_ = false;
  double torn_keep_fraction_ = 0.5;
  bool drop_rename_armed_ = false;
};

// File-backed device rooted at a directory; chunk/manifest names map to
// files ('/' to subdirectories). Writes go through a temp file + rename
// so the device itself never exposes a half-written object except when
// the process genuinely dies mid-write.
class FileDurableDevice : public DurableDevice {
 public:
  explicit FileDurableDevice(std::string root);

  bool Write(const std::string& name, std::span<const std::uint8_t> bytes) override;
  std::optional<std::vector<std::uint8_t>> Read(const std::string& name) const override;
  bool Delete(const std::string& name) override;
  bool Rename(const std::string& from, const std::string& to) override;
  std::vector<std::string> List() const override;

  const std::string& root() const { return root_; }

 private:
  std::string Path(const std::string& name) const;
  std::string root_;
};

struct CheckpointStoreConfig {
  // Committed epochs kept before GC reclaims manifests and any chunks
  // no retained manifest references.
  int retain_epochs = 3;
};

struct CheckpointWriteResult {
  bool committed = false;  // False when a device fault aborted the 2PC.
  std::uint64_t epoch = 0;
  Clock clock = 0;
  std::uint64_t bytes_written = 0;  // Chunk + manifest bytes persisted.
  int chunks_written = 0;
  int chunks_reused = 0;  // Incremental hits (shard version unchanged).
};

struct LoadedCheckpoint {
  std::uint64_t epoch = 0;
  Clock clock = 0;
  std::vector<std::vector<std::uint8_t>> shard_blobs;
  std::uint64_t bytes_read = 0;
  // Committed-looking epochs rejected before this one validated.
  int corrupt_epochs_skipped = 0;
  // Epochs with only a MANIFEST.tmp (crash before the commit point).
  int torn_epochs_skipped = 0;
};

struct ScrubReport {
  int epochs_committed = 0;  // Manifests present (valid or not).
  int torn_epochs = 0;       // MANIFEST.tmp with no committed manifest.
  int frames_checked = 0;    // Manifest + chunk frames fully validated.
  std::vector<std::string> corrupt_objects;  // Failed CRC or structure.

  bool clean() const { return corrupt_objects.empty(); }
};

class CheckpointStore {
 public:
  explicit CheckpointStore(DurableDevice* device, CheckpointStoreConfig config = {});

  // Registers checkpoint.* metrics; nullptr detaches.
  void SetObservability(obs::MetricsRegistry* metrics);

  // Serializes changed shards, writes them + a manifest, commits via
  // rename, then GCs epochs beyond the retention window. Unchanged
  // shards (same ShardVersion as the last committed epoch) are
  // referenced by name without rewriting.
  CheckpointWriteResult WriteCheckpoint(const ModelStore& model, Clock clock);

  // Same protocol for pre-serialized blobs (a runtime's in-memory
  // checkpoint mirrored out). `shard_versions` keys incrementality;
  // pass all-zero to force full writes.
  CheckpointWriteResult WriteBlobs(const std::vector<std::vector<std::uint8_t>>& blobs,
                                   const std::vector<std::uint64_t>& shard_versions,
                                   Clock clock);

  // Newest epoch that passes full validation; corrupt or torn epochs
  // are skipped (and counted in the result), never loaded.
  std::optional<LoadedCheckpoint> ReadNewestValid() const;

  // Validates every object on the device (manifests, chunks, torn
  // epochs). A corruption injected anywhere surfaces here.
  ScrubReport Scrub() const;

  std::uint64_t epochs_committed() const { return epochs_committed_; }
  std::uint64_t last_committed_epoch() const { return last_committed_epoch_; }
  std::uint64_t commit_aborts() const { return commit_aborts_; }
  const CheckpointStoreConfig& config() const { return config_; }
  DurableDevice* device() { return device_; }

 private:
  CheckpointWriteResult WriteInternal(
      const std::vector<std::vector<std::uint8_t>>& blobs,
      const std::vector<std::uint64_t>& shard_versions, Clock clock);
  void CollectGarbage();

  DurableDevice* device_;
  CheckpointStoreConfig config_;

  std::uint64_t next_epoch_ = 1;
  std::uint64_t last_committed_epoch_ = 0;
  std::uint64_t epochs_committed_ = 0;
  std::uint64_t commit_aborts_ = 0;
  // shard -> version captured at the last *committed* epoch; the
  // incremental-reuse key. Torn commits must not update this, or a
  // later epoch would reference a chunk that was never fully written.
  std::map<int, std::uint64_t> committed_versions_;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* bytes_written_counter_ = nullptr;
  obs::Counter* bytes_restored_counter_ = nullptr;
  obs::Counter* chunks_written_counter_ = nullptr;
  obs::Counter* chunks_reused_counter_ = nullptr;
  obs::Counter* epochs_committed_counter_ = nullptr;
  obs::Counter* commit_aborts_counter_ = nullptr;
  obs::Counter* corrupt_epochs_counter_ = nullptr;
  obs::Counter* scrub_corrupt_counter_ = nullptr;
};

// Exposed for tests: full validation of a single chunk object. Returns
// nullopt unless the frame parses and its CRC matches.
struct ParsedChunk {
  int shard = 0;
  std::uint64_t shard_version = 0;
  Clock clock = 0;
  std::vector<std::uint8_t> payload;
};
std::optional<ParsedChunk> ParseChunkFrame(std::span<const std::uint8_t> bytes);

}  // namespace proteus

#endif  // SRC_PS_CHECKPOINT_STORE_H_
