// Stale-Synchronous-Parallel clock bookkeeping (§3, footnote 6). Workers
// advance per-node clocks; the minimum clock across live workers defines
// the "latest common iteration", which is the consistent state that
// active->backup syncs capture and that rollback recovery restores to.
#ifndef SRC_PS_CLOCK_TABLE_H_
#define SRC_PS_CLOCK_TABLE_H_

#include <cstdint>
#include <map>

#include "src/common/types.h"

namespace proteus {

using Clock = std::int64_t;

class ClockTable {
 public:
  explicit ClockTable(int staleness = 0);

  int staleness() const { return staleness_; }

  void AddWorkerNode(NodeId node);
  void RemoveWorkerNode(NodeId node);
  bool HasWorkerNode(NodeId node) const;
  std::size_t NumWorkerNodes() const { return clocks_.size(); }

  void AdvanceTo(NodeId node, Clock clock);
  Clock ClockOf(NodeId node) const;

  // Minimum clock across live worker nodes (0 when empty).
  Clock MinClock() const;

  // SSP admission rule: a worker at `worker_clock` may proceed past a
  // barrier iff worker_clock - MinClock() <= staleness.
  bool CanAdvance(NodeId node) const;

  // The full (node -> clock) map, for differential comparison and digests.
  const std::map<NodeId, Clock>& clocks() const { return clocks_; }

  // Order-insensitive-stable digest of (staleness, membership, clocks):
  // equal tables produce equal digests. For cheap cross-run equality
  // assertions in tests.
  std::uint64_t Digest() const;

 private:
  int staleness_;
  std::map<NodeId, Clock> clocks_;
};

}  // namespace proteus

#endif  // SRC_PS_CLOCK_TABLE_H_
