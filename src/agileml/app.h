// The public API an ML application implements to train with AgileML.
//
// Mirrors the paper's programming model (§2.1, §3.1): the application
// defines its parameter tables (vector-valued rows with component-wise
// add aggregation), partitions its input data by item index, and provides
// a ProcessRange that adjusts parameters through simple read-param /
// update-param calls. Workers are stateless: all shared state lives in
// the parameter server, which is what makes bulk revocation survivable.
#ifndef SRC_AGILEML_APP_H_
#define SRC_AGILEML_APP_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/ps/access_tracker.h"
#include "src/ps/clock_table.h"
#include "src/ps/model.h"

namespace proteus {

// Handle through which application worker code reads and updates model
// parameters. Reads are cached and updates write-back-coalesced per
// clock, which the runtime turns into network bytes; the arithmetic is
// applied to the authoritative store immediately.
class WorkerContext {
 public:
  WorkerContext(NodeId node, ModelStore* model, AccessTracker* tracker, Rng rng)
      : node_(node), model_(model), tracker_(tracker), rng_(rng) {}

  // Returns the current row value. The span is valid until the next Read
  // on this context.
  std::span<const float> Read(int table, std::int64_t row) {
    tracker_->RecordRead(table, row);
    model_->ReadRow(table, row, scratch_);
    return scratch_;
  }

  // Reads into a caller-owned buffer, for apps that need two rows live.
  void ReadInto(int table, std::int64_t row, std::vector<float>& out) {
    tracker_->RecordRead(table, row);
    model_->ReadRow(table, row, out);
  }

  // Applies a component-wise additive delta.
  void Update(int table, std::int64_t row, std::span<const float> delta) {
    tracker_->RecordUpdate(table, row);
    model_->ApplyDelta(table, row, delta);
  }

  NodeId node() const { return node_; }
  Rng& rng() { return rng_; }

 private:
  NodeId node_;
  ModelStore* model_;
  AccessTracker* tracker_;
  Rng rng_;
  std::vector<float> scratch_;
};

struct ModelInit {
  std::vector<TableSpec> tables;
};

// Interface implemented by MF, MLR, LDA (src/apps) and by user apps.
class MLApp {
 public:
  virtual ~MLApp() = default;

  virtual std::string Name() const = 0;

  // Declares the parameter tables.
  virtual ModelInit DefineModel() const = 0;

  // Number of input data items; the runtime partitions [0, NumItems())
  // among worker nodes.
  virtual std::int64_t NumItems() const = 0;

  // Abstract compute cost to process one item, in cost units. The
  // runtime divides by (cores x core_speed) to get virtual compute time.
  virtual double CostPerItem() const = 0;

  // Processes items [begin, end) for one clock. Must touch parameters
  // only through ctx.
  virtual void ProcessRange(WorkerContext& ctx, std::int64_t begin, std::int64_t end) = 0;

  // Goodness-of-solution objective (lower is better for losses; apps
  // document their convention). Used to verify convergence.
  virtual double ComputeObjective(const ModelStore& model) const = 0;
};

}  // namespace proteus

#endif  // SRC_AGILEML_APP_H_
