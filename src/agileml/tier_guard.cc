#include "src/agileml/tier_guard.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace proteus {

int TierGuard::AdmissionHeadroom(const TierCounts& ready, int pending) const {
  if (!config_.enabled) {
    return std::numeric_limits<int>::max() / 2;
  }
  // Solve for the largest s such that
  //   (serverless + pending + s) / (total + pending + s) <= max_fraction.
  const double f = config_.max_worker_fraction;
  if (f >= 1.0) {
    return std::numeric_limits<int>::max() / 2;
  }
  const double exposed = static_cast<double>(ready.serverless + pending);
  const double others = static_cast<double>(ready.reliable + ready.transient);
  // exposed + s <= f * (others + exposed + s)  =>  s <= (f*others - (1-f)*exposed) / (1-f).
  const double s = (f * others - (1.0 - f) * exposed) / (1.0 - f);
  return std::max(0, static_cast<int>(std::floor(s)));
}

TierGuardReport TierGuard::Audit(const std::vector<NodeInfo>& ready_nodes,
                                 const RoleAssignment& roles, Clock clock,
                                 Clock last_sync_clock, int extra_lag_allowance) const {
  TierGuardReport report;
  const TierCounts counts = CountTiers(ready_nodes);
  report.worker_fraction =
      counts.total() > 0
          ? static_cast<double>(counts.serverless) / static_cast<double>(counts.total())
          : 0.0;
  report.unsynced_clocks =
      roles.UsesBackups() ? static_cast<int>(clock - last_sync_clock) : 0;

  // Invariant 1 (always on): zero parameter-server exposure.
  for (const auto& node : ready_nodes) {
    if (!node.serverless()) {
      continue;
    }
    bool holds_ps = roles.active_ps_nodes.count(node.id) > 0;
    for (const auto& [part, owner] : roles.server) {
      holds_ps = holds_ps || owner == node.id;
    }
    for (const auto& [part, owner] : roles.backup) {
      holds_ps = holds_ps || owner == node.id;
    }
    if (holds_ps) {
      ++report.serverless_ps_roles;
    }
  }
  if (report.serverless_ps_roles > 0) {
    report.ok = false;
    std::ostringstream oss;
    oss << report.serverless_ps_roles
        << " serverless node(s) hold parameter-server roles (must be zero)";
    report.detail = oss.str();
    return report;
  }

  if (!config_.enabled) {
    return report;
  }

  // Invariant 2: bounded worker exposure. A strict epsilon absorbs
  // floating-point noise at the exact bound.
  if (report.worker_fraction > config_.max_worker_fraction + 1e-9) {
    report.ok = false;
    std::ostringstream oss;
    oss << "serverless worker fraction " << report.worker_fraction << " exceeds bound "
        << config_.max_worker_fraction << " (" << counts.serverless << "/" << counts.total()
        << " ready nodes)";
    report.detail = oss.str();
    return report;
  }

  // Invariant 3: bounded un-checkpointed work while exposed.
  const int lag_bound = config_.max_unsynced_clocks_exposed + extra_lag_allowance;
  if (counts.serverless > 0 && config_.max_unsynced_clocks_exposed > 0 &&
      report.unsynced_clocks > lag_bound) {
    report.ok = false;
    std::ostringstream oss;
    oss << "backup-sync lag " << report.unsynced_clocks << " clocks exceeds bound "
        << lag_bound << " while " << counts.serverless
        << " serverless worker(s) are exposed";
    report.detail = oss.str();
  }
  return report;
}

}  // namespace proteus
