#include "src/agileml/threshold_tuner.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/common/logging.h"

namespace proteus {

Stage ThresholdProbeResult::Best() const {
  if (stage1_time <= stage2_time && stage1_time <= stage3_time) {
    return Stage::kStage1;
  }
  return stage2_time <= stage3_time ? Stage::kStage2 : Stage::kStage3;
}

ThresholdTuner::ThresholdTuner(std::function<std::unique_ptr<MLApp>()> app_factory,
                               AgileMLConfig base_config, ThresholdTunerConfig tuner_config)
    : app_factory_(std::move(app_factory)),
      base_config_(base_config),
      tuner_config_(tuner_config) {
  PROTEUS_CHECK(app_factory_ != nullptr);
  PROTEUS_CHECK(!tuner_config_.reliable_counts.empty());
}

double ThresholdTuner::Probe(MLApp* app, int reliable, int transient, Stage stage) {
  AgileMLConfig config = base_config_;
  config.planner.forced_stage = stage;
  std::vector<NodeInfo> nodes;
  NodeId id = 0;
  for (int i = 0; i < reliable; ++i) {
    nodes.push_back({id++, Tier::kReliable, tuner_config_.cores_per_node, kInvalidAllocation});
  }
  for (int i = 0; i < transient; ++i) {
    nodes.push_back({id++, Tier::kTransient, tuner_config_.cores_per_node, kInvalidAllocation});
  }
  AgileMLRuntime runtime(app, config, nodes);
  runtime.RunClocks(tuner_config_.warmup_clocks);
  double total = 0.0;
  for (int i = 0; i < tuner_config_.measure_clocks; ++i) {
    total += runtime.RunClock().duration;
  }
  return total / tuner_config_.measure_clocks;
}

TunedThresholds ThresholdTuner::Tune() {
  TunedThresholds result;
  std::vector<int> reliable_counts = tuner_config_.reliable_counts;
  // Probe from low ratios to high so crossings are found in order.
  std::sort(reliable_counts.rbegin(), reliable_counts.rend());

  for (const int reliable : reliable_counts) {
    const int transient = tuner_config_.total_nodes - reliable;
    if (transient <= 0) {
      continue;
    }
    ThresholdProbeResult probe;
    probe.ratio = static_cast<double>(transient) / reliable;
    for (const Stage stage : {Stage::kStage1, Stage::kStage2, Stage::kStage3}) {
      const std::unique_ptr<MLApp> app = app_factory_();
      const double t = Probe(app.get(), reliable, transient, stage);
      switch (stage) {
        case Stage::kStage1:
          probe.stage1_time = t;
          break;
        case Stage::kStage2:
          probe.stage2_time = t;
          break;
        case Stage::kStage3:
          probe.stage3_time = t;
          break;
      }
    }
    result.probes.push_back(probe);
  }

  // Thresholds: geometric midpoint between the last ratio where the
  // lower stage wins and the first where the higher stage wins.
  auto crossing = [&](auto wins_lower) {
    double below = 0.0;
    double above = 0.0;
    for (const auto& probe : result.probes) {
      if (wins_lower(probe)) {
        below = probe.ratio;
      } else if (above == 0.0 && probe.ratio > below) {
        above = probe.ratio;
      }
    }
    if (above == 0.0) {
      return below;  // Never crossed in the probed range.
    }
    return std::sqrt(std::max(below, 1e-3) * above);
  };
  result.stage2_threshold =
      crossing([](const ThresholdProbeResult& p) { return p.Best() == Stage::kStage1; });
  result.stage3_threshold =
      crossing([](const ThresholdProbeResult& p) { return p.Best() != Stage::kStage3; });
  result.stage3_threshold = std::max(result.stage3_threshold, result.stage2_threshold);
  return result;
}

}  // namespace proteus
