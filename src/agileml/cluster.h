// Node and tier definitions for AgileML's tiered-reliability cluster view.
#ifndef SRC_AGILEML_CLUSTER_H_
#define SRC_AGILEML_CLUSTER_H_

#include <string>
#include <vector>

#include "src/common/types.h"

namespace proteus {

// Reliability tiers (§3): reliable nodes (e.g. EC2 on-demand) hold durable
// solution state; transient nodes (e.g. spot) may be revoked in bulk but
// come with a short eviction warning; serverless nodes (burstable
// function-style capacity) are ultra-transient — revocable at any instant
// with *zero* warning, so they may never hold parameter-server state.
enum class Tier {
  kReliable,
  kTransient,
  kServerless,
};

inline const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kReliable:
      return "reliable";
    case Tier::kTransient:
      return "transient";
    case Tier::kServerless:
      return "serverless";
  }
  return "?";
}

struct NodeInfo {
  NodeId id = kInvalidNode;
  Tier tier = Tier::kTransient;
  int cores = 8;  // c4.2xlarge-like default.
  // Which market allocation the node belongs to (kInvalidAllocation for
  // nodes not managed by BidBrain, e.g. in stand-alone AgileML runs).
  AllocationId allocation = kInvalidAllocation;
  // Relative compute speed (1.0 = nominal). Values below 1 model
  // stragglers — degraded VMs, noisy neighbours, or nodes whose NIC
  // load steals compute, as the reliable workers in stage 2 do (§3.2).
  double speed = 1.0;

  bool reliable() const { return tier == Tier::kReliable; }
  bool serverless() const { return tier == Tier::kServerless; }
};

// Convenience counters over a membership list.
struct TierCounts {
  int reliable = 0;
  int transient = 0;
  int serverless = 0;

  int total() const { return reliable + transient + serverless; }
  // Transient-to-reliable ratio; infinity when no reliable nodes.
  // Serverless nodes are excluded: they can never host ActivePSs, so
  // they must not push the stage decision (§3.3 ratio thresholds are
  // about where parameter state can live, not raw worker count).
  double Ratio() const;
};

TierCounts CountTiers(const std::vector<NodeInfo>& nodes);

}  // namespace proteus

#endif  // SRC_AGILEML_CLUSTER_H_
