// Automated stage-threshold selection (§3.3: "future work can automate
// the threshold selection process for any given cluster").
//
// The tuner runs short probe executions of the application at several
// transient:reliable ratios on the target cluster size, measuring each
// stage's time-per-iteration, and derives the ratio thresholds at which
// stage 2 and stage 3 become the best modality. The thresholds feed
// RolePlannerConfig; §6.4 notes that exact values are not critical, so
// probes are short.
#ifndef SRC_AGILEML_THRESHOLD_TUNER_H_
#define SRC_AGILEML_THRESHOLD_TUNER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/agileml/app.h"
#include "src/agileml/runtime.h"

namespace proteus {

struct ThresholdProbeResult {
  double ratio = 0.0;  // transient / reliable.
  double stage1_time = 0.0;
  double stage2_time = 0.0;
  double stage3_time = 0.0;

  Stage Best() const;
};

struct TunedThresholds {
  // Ratios above which stage 2 / stage 3 win; directly usable as
  // RolePlannerConfig::stage2_threshold / stage3_threshold.
  double stage2_threshold = 1.0;
  double stage3_threshold = 15.0;
  std::vector<ThresholdProbeResult> probes;
};

struct ThresholdTunerConfig {
  int total_nodes = 64;
  int cores_per_node = 8;
  // Reliable counts probed (ratios derived as (total-r)/r).
  std::vector<int> reliable_counts = {32, 16, 8, 4, 2, 1};
  int warmup_clocks = 1;
  int measure_clocks = 3;
};

class ThresholdTuner {
 public:
  // app_factory must return a fresh MLApp per probe (probes mutate model
  // state). base_config supplies the cluster model (core speed, NIC, ...).
  ThresholdTuner(std::function<std::unique_ptr<MLApp>()> app_factory, AgileMLConfig base_config,
                 ThresholdTunerConfig tuner_config);

  TunedThresholds Tune();

 private:
  double Probe(MLApp* app, int reliable, int transient, Stage stage);

  std::function<std::unique_ptr<MLApp>()> app_factory_;
  AgileMLConfig base_config_;
  ThresholdTunerConfig tuner_config_;
};

}  // namespace proteus

#endif  // SRC_AGILEML_THRESHOLD_TUNER_H_
