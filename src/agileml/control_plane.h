// Control-plane message accounting.
//
// The paper argues its transitions are cheap partly by counting control
// messages — e.g. moving between stages 2 and 3 "involves just a single
// worker notification message" (§3.2). This log records every
// controller-to-node notification the runtime issues, so tests and
// benches can verify those claims, and so the ZMQ-style wiring of a real
// deployment (§5) has a defined message inventory.
#ifndef SRC_AGILEML_CONTROL_PLANE_H_
#define SRC_AGILEML_CONTROL_PLANE_H_

#include <array>
#include <cstdint>
#include <string>

namespace proteus {

enum class ControlMessage : int {
  kDataAssignment = 0,     // Worker told to change its input-data set.
  kPartitionOwnership = 1, // Partition ownership / redirection notice.
  kEvictionSignal = 2,     // Controller -> node: cease operation.
  kEndOfLifeFlag = 3,      // ActivePS -> BackupPS final-update marker.
  kReadySignal = 4,        // New node -> controller: data loaded.
  kStageSwitch = 5,        // Broadcast: stage transition.
  kRollbackNotice = 6,     // Worker told to restart from a past clock.
  kHeartbeat = 7,          // Node -> controller: lease renewal.
  kSuspicionNotice = 8,    // Controller broadcast: node under suspicion.
  kRecoveryNotice = 9,     // Broadcast: state recovered from the durable tier.
};

inline constexpr int kNumControlMessages = 10;

const char* ControlMessageName(ControlMessage type);

class ControlPlaneLog {
 public:
  void Record(ControlMessage type, std::int64_t count = 1);
  void Reset();

  std::int64_t Count(ControlMessage type) const;
  std::int64_t Total() const;
  // Total minus heartbeats: the paper's "transitions are cheap"
  // message-count claims concern notifications, and periodic lease
  // renewals would otherwise swamp them when the detector is enabled.
  std::int64_t NotificationTotal() const;

  std::string Summary() const;

 private:
  std::array<std::int64_t, kNumControlMessages> counts_{};
};

}  // namespace proteus

#endif  // SRC_AGILEML_CONTROL_PLANE_H_
