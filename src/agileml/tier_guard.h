// TierGuard: placement invariants for the ultra-transient (serverless)
// tier.
//
// Serverless capacity vanishes with zero warning, so AgileML may expose
// only a bounded slice of the computation to it. The guard enforces two
// hard invariants and one configurable bound:
//
//   1. Zero parameter-server exposure (hard): no serverless node ever
//      serves a partition, holds a backup, or hosts an ActivePS. The
//      RolePlanner guarantees this by construction; the guard re-checks
//      it every clock so a planner regression is caught immediately.
//   2. Bounded worker exposure: at most max_worker_fraction of ready
//      worker nodes may be serverless. Losing the whole tier then still
//      leaves enough workers to re-do the rolled-back clocks.
//   3. Bounded un-checkpointed work while exposed: whenever serverless
//      workers are present in stages 2/3, the backup-sync lag (clocks of
//      work a zero-warning storm would taint and force a rollback of)
//      must stay within max_unsynced_clocks_exposed.
//
// The ConsistencyAuditor runs Audit() at every clock boundary; the
// ProteusRuntime uses AdmissionHeadroom() to clamp serverless
// acquisitions before nodes ever join.
#ifndef SRC_AGILEML_TIER_GUARD_H_
#define SRC_AGILEML_TIER_GUARD_H_

#include <string>
#include <vector>

#include "src/agileml/cluster.h"
#include "src/agileml/roles.h"
#include "src/ps/clock_table.h"

namespace proteus {

struct TierGuardConfig {
  bool enabled = false;
  // Max fraction of ready worker-capable nodes that may be serverless.
  double max_worker_fraction = 0.5;
  // Max clocks since the last active->backup sync while serverless
  // workers are exposed (stages 2/3). <= 0 disables the bound.
  int max_unsynced_clocks_exposed = 4;
};

struct TierGuardReport {
  bool ok = true;
  std::string detail;  // First violated invariant, empty when ok.
  double worker_fraction = 0.0;     // Serverless share of ready nodes.
  int serverless_ps_roles = 0;      // Must always be zero.
  int unsynced_clocks = 0;          // clock - last_sync_clock.
};

class TierGuard {
 public:
  explicit TierGuard(TierGuardConfig config) : config_(config) {}

  // How many more serverless nodes may join given the current ready
  // membership (`pending` = serverless nodes already preloading).
  // Unlimited (a large value) when the guard is disabled.
  int AdmissionHeadroom(const TierCounts& ready, int pending) const;

  // Checks all invariants against the current placement. The zero-PS
  // invariant is checked even when the guard is disabled (it is a
  // correctness property, not a tunable). `extra_lag_allowance` widens
  // the sync-lag bound while zero-warning revocations await detector
  // confirmation (backup syncs are suppressed then to avoid capturing
  // tainted clocks).
  TierGuardReport Audit(const std::vector<NodeInfo>& ready_nodes, const RoleAssignment& roles,
                        Clock clock, Clock last_sync_clock,
                        int extra_lag_allowance = 0) const;

  const TierGuardConfig& config() const { return config_; }

 private:
  TierGuardConfig config_;
};

}  // namespace proteus

#endif  // SRC_AGILEML_TIER_GUARD_H_
