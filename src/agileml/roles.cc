#include "src/agileml/roles.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace proteus {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kStage1:
      return "stage1";
    case Stage::kStage2:
      return "stage2";
    case Stage::kStage3:
      return "stage3";
  }
  return "?";
}

std::vector<PartitionId> RoleAssignment::PartitionsServedBy(NodeId node) const {
  std::vector<PartitionId> out;
  for (const auto& [part, owner] : server) {
    if (owner == node) {
      out.push_back(part);
    }
  }
  return out;
}

std::vector<NodeId> RoleAssignment::ServerByPartition(int num_partitions) const {
  std::vector<NodeId> out(static_cast<std::size_t>(num_partitions), kInvalidNode);
  for (const auto& [part, owner] : server) {
    if (part >= 0 && part < num_partitions) {
      out[static_cast<std::size_t>(part)] = owner;
    }
  }
  return out;
}

Stage RolePlanner::PickStage(const TierCounts& counts) const {
  if (config_.forced_stage.has_value()) {
    return *config_.forced_stage;
  }
  if (counts.transient == 0) {
    return Stage::kStage1;
  }
  const double ratio = counts.Ratio();
  if (ratio > config_.stage3_threshold) {
    return Stage::kStage3;
  }
  if (ratio > config_.stage2_threshold) {
    return Stage::kStage2;
  }
  return Stage::kStage1;
}

namespace {

// Distributes partitions over `pool`, keeping a partition on its current
// owner when that owner is in the pool, and balancing counts otherwise.
std::map<PartitionId, NodeId> PlacePartitions(int num_partitions,
                                              const std::vector<NodeId>& pool,
                                              const std::map<PartitionId, NodeId>* previous) {
  PROTEUS_CHECK(!pool.empty());
  std::map<PartitionId, NodeId> placement;
  std::map<NodeId, int> load;
  for (const NodeId n : pool) {
    load[n] = 0;
  }
  const int cap = (num_partitions + static_cast<int>(pool.size()) - 1) /
                  static_cast<int>(pool.size());
  std::vector<PartitionId> orphans;
  for (PartitionId p = 0; p < num_partitions; ++p) {
    NodeId keep = kInvalidNode;
    if (previous != nullptr) {
      auto it = previous->find(p);
      if (it != previous->end() && load.count(it->second) > 0 && load[it->second] < cap) {
        keep = it->second;
      }
    }
    if (keep != kInvalidNode) {
      placement[p] = keep;
      ++load[keep];
    } else {
      orphans.push_back(p);
    }
  }
  for (const PartitionId p : orphans) {
    // Least-loaded node, ties broken by id for determinism.
    NodeId best = pool.front();
    for (const NodeId n : pool) {
      if (load[n] < load[best]) {
        best = n;
      }
    }
    placement[p] = best;
    ++load[best];
  }
  return placement;
}

}  // namespace

RoleAssignment RolePlanner::Plan(const std::vector<NodeInfo>& nodes, int num_partitions,
                                 const RoleAssignment* previous) const {
  PROTEUS_CHECK(!nodes.empty());
  PROTEUS_CHECK_GT(num_partitions, 0);
  const TierCounts counts = CountTiers(nodes);
  RoleAssignment roles;
  roles.stage = PickStage(counts);
  if (roles.stage != Stage::kStage1 && counts.transient == 0) {
    // Cannot host ActivePSs without transient nodes; fall back.
    roles.stage = Stage::kStage1;
  }
  if (roles.stage == Stage::kStage1 && counts.reliable == 0) {
    PROTEUS_LOG(Fatal) << "stage 1 requires at least one reliable node";
  }

  // Serverless nodes are tracked separately: they are workers only.
  // Ultra-transient capacity vanishes with zero warning, so it can never
  // host an ActivePS (or any parameter-server state).
  std::vector<NodeId> reliable;
  std::vector<NodeId> transient;
  std::vector<NodeId> serverless;
  for (const auto& node : nodes) {
    (node.reliable() ? reliable : node.serverless() ? serverless : transient)
        .push_back(node.id);
  }

  if (roles.stage == Stage::kStage1) {
    // ParamServs sharded across all reliable nodes; workers everywhere.
    roles.server = PlacePartitions(num_partitions, reliable,
                                   previous != nullptr ? &previous->server : nullptr);
    for (const auto& node : nodes) {
      roles.worker_nodes.insert(node.id);
    }
    return roles;
  }

  // Stages 2/3: pick ActivePS hosts among transient nodes. Membership
  // list order is join order, so preferring earlier entries implements
  // "the longest running transient resources" (§3.3). Previous hosts are
  // kept for stability.
  int want_actives = config_.forced_active_ps_count.has_value()
                         ? *config_.forced_active_ps_count
                         : static_cast<int>(std::lround(config_.active_ps_fraction *
                                                        static_cast<double>(counts.transient)));
  want_actives = std::clamp(want_actives, 1, counts.transient);
  want_actives = std::min(want_actives, num_partitions);

  std::vector<NodeId> actives;
  if (previous != nullptr) {
    for (const NodeId n : transient) {
      if (previous->active_ps_nodes.count(n) > 0 &&
          static_cast<int>(actives.size()) < want_actives) {
        actives.push_back(n);
      }
    }
  }
  for (const NodeId n : transient) {
    if (static_cast<int>(actives.size()) >= want_actives) {
      break;
    }
    if (std::find(actives.begin(), actives.end(), n) == actives.end()) {
      actives.push_back(n);
    }
  }
  roles.active_ps_nodes.insert(actives.begin(), actives.end());

  roles.server =
      PlacePartitions(num_partitions, actives, previous != nullptr ? &previous->server : nullptr);
  roles.backup = PlacePartitions(num_partitions, reliable,
                                 previous != nullptr ? &previous->backup : nullptr);

  for (const NodeId n : transient) {
    roles.worker_nodes.insert(n);
  }
  for (const NodeId n : serverless) {
    roles.worker_nodes.insert(n);
  }
  if (roles.stage == Stage::kStage2) {
    for (const NodeId n : reliable) {
      roles.worker_nodes.insert(n);
    }
  }
  return roles;
}

}  // namespace proteus
