#include "src/agileml/cluster.h"

#include <limits>

namespace proteus {

double TierCounts::Ratio() const {
  if (reliable == 0) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(transient) / static_cast<double>(reliable);
}

TierCounts CountTiers(const std::vector<NodeInfo>& nodes) {
  TierCounts counts;
  for (const auto& node : nodes) {
    switch (node.tier) {
      case Tier::kReliable:
        ++counts.reliable;
        break;
      case Tier::kTransient:
        ++counts.transient;
        break;
      case Tier::kServerless:
        ++counts.serverless;
        break;
    }
  }
  return counts;
}

}  // namespace proteus
