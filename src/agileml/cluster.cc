#include "src/agileml/cluster.h"

#include <limits>

namespace proteus {

double TierCounts::Ratio() const {
  if (reliable == 0) {
    return std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(transient) / static_cast<double>(reliable);
}

TierCounts CountTiers(const std::vector<NodeInfo>& nodes) {
  TierCounts counts;
  for (const auto& node : nodes) {
    if (node.reliable()) {
      ++counts.reliable;
    } else {
      ++counts.transient;
    }
  }
  return counts;
}

}  // namespace proteus
