#include "src/agileml/runtime.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "src/common/logging.h"
#include "src/rpc/serializer.h"

namespace proteus {

namespace {
std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
}
}  // namespace

AgileMLRuntime::AgileMLRuntime(MLApp* app, AgileMLConfig config,
                               const std::vector<NodeInfo>& initial_nodes)
    : app_(app),
      config_(config),
      model_(app->DefineModel().tables, config.num_partitions, config.seed, config.model),
      fabric_(config.nic_bandwidth),
      data_(app->NumItems(), config.data_blocks),
      planner_(config.planner),
      clocks_(config.staleness),
      detector_(config.detector),
      guard_(config.tier_guard) {
  PROTEUS_CHECK(app_ != nullptr);
  PROTEUS_CHECK(!initial_nodes.empty());
  if (config_.parallel_execution) {
    const std::size_t hw = std::max(2u, std::thread::hardware_concurrency());
    pool_ = std::make_unique<ThreadPool>(hw);
  }
  for (const auto& node : initial_nodes) {
    PROTEUS_CHECK_GE(node.id, 0);
    PROTEUS_CHECK(!fabric_.HasNode(node.id)) << "duplicate node id " << node.id;
    nodes_.push_back(node);
    fabric_.AddNode(node.id);
    ready_.insert(node.id);
    if (config_.detector.enabled) {
      detector_.Register(node.id, clock_);
    }
  }
  // Initial placement: data is loaded during start-up, before the first
  // clock, so nothing is charged to iteration time.
  roles_ = planner_.Plan(ReadyNodes(), config_.num_partitions, nullptr);
  if (roles_.UsesBackups()) {
    model_.EnableBackups();
  }
  std::vector<NodeId> workers(roles_.worker_nodes.begin(), roles_.worker_nodes.end());
  data_.Rebalance(workers);
  RebuildClockTable();
}

AgileMLRuntime::~AgileMLRuntime() = default;

void AgileMLRuntime::SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  model_.SetObservability(metrics);
  if (metrics_ == nullptr) {
    pull_bytes_counter_ = push_bytes_counter_ = backup_sync_bytes_counter_ = nullptr;
    stage_transition_counter_ = rollback_clocks_counter_ = stall_seconds_counter_ = nullptr;
    push_coalesced_saved_counter_ = nullptr;
    checkpoint_bytes_written_counter_ = checkpoint_bytes_restored_counter_ = nullptr;
    restore_clocks_lost_counter_ = nullptr;
    backup_lag_gauge_ = worker_nodes_gauge_ = nullptr;
    detector_suspicions_counter_ = detector_confirmed_counter_ = nullptr;
    detector_false_positives_counter_ = nullptr;
    detector_latency_gauge_ = nullptr;
    clock_duration_hist_ = nullptr;
    return;
  }
  pull_bytes_counter_ = metrics_->GetCounter("agileml.pull.bytes");
  push_bytes_counter_ = metrics_->GetCounter("agileml.push.bytes");
  push_coalesced_saved_counter_ = metrics_->GetCounter("agileml.push.coalesced_saved_bytes");
  backup_sync_bytes_counter_ = metrics_->GetCounter("agileml.backup_sync.bytes");
  stage_transition_counter_ = metrics_->GetCounter("agileml.stage.transitions");
  rollback_clocks_counter_ = metrics_->GetCounter("agileml.rollback.lost_clocks");
  stall_seconds_counter_ = metrics_->GetCounter("agileml.stall.microseconds");
  checkpoint_bytes_written_counter_ = metrics_->GetCounter("agileml.checkpoint.bytes_written");
  checkpoint_bytes_restored_counter_ = metrics_->GetCounter("agileml.checkpoint.bytes_restored");
  restore_clocks_lost_counter_ = metrics_->GetCounter("agileml.checkpoint.restore_clocks_lost");
  backup_lag_gauge_ = metrics_->GetGauge("agileml.backup_sync.lag_clocks");
  worker_nodes_gauge_ = metrics_->GetGauge("agileml.workers");
  detector_suspicions_counter_ = metrics_->GetCounter("agileml.detector.suspicions");
  detector_confirmed_counter_ = metrics_->GetCounter("agileml.detector.confirmed_dead");
  detector_false_positives_counter_ =
      metrics_->GetCounter("agileml.detector.false_positives");
  detector_latency_gauge_ = metrics_->GetGauge("agileml.detector.detection_latency_clocks");
  clock_duration_hist_ = metrics_->GetHistogram(
      "agileml.clock.duration_seconds",
      {0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 60.0, 120.0, 300.0});
}

void AgileMLRuntime::SetLedger(obs::EventLedger* ledger) { ledger_ = ledger; }

const NodeInfo& AgileMLRuntime::Node(NodeId id) const {
  for (const auto& node : nodes_) {
    if (node.id == id) {
      return node;
    }
  }
  PROTEUS_LOG(Fatal) << "unknown node " << id;
  __builtin_unreachable();
}

std::vector<NodeInfo> AgileMLRuntime::ReadyNodes() const {
  std::vector<NodeInfo> out;
  for (const auto& node : nodes_) {
    if (IsReady(node.id)) {
      out.push_back(node);
    }
  }
  return out;
}

TierCounts AgileMLRuntime::ReadyTierCounts() const { return CountTiers(ReadyNodes()); }

double AgileMLRuntime::ComputeObjective() const { return app_->ComputeObjective(model_); }

void AgileMLRuntime::RebuildClockTable() {
  clocks_ = ClockTable(config_.staleness);
  for (const NodeId w : roles_.worker_nodes) {
    clocks_.AddWorkerNode(w);
    clocks_.AdvanceTo(w, clock_);
  }
}

void AgileMLRuntime::TransitionRoles(const std::set<NodeId>& leaving, bool forced) {
  const std::vector<NodeInfo> members = ReadyNodes();
  PROTEUS_CHECK(!members.empty()) << "cluster has no ready nodes left";
  RoleAssignment next = planner_.Plan(members, config_.num_partitions, &roles_);
  const TrafficClass cls = forced ? TrafficClass::kForeground : TrafficClass::kBackground;

  const bool had_backups = roles_.UsesBackups();
  const bool will_have_backups = next.UsesBackups();

  if (!had_backups && will_have_backups) {
    // Stage 1 -> 2: snapshot current state as the backup copy. The
    // backup owners are reliable nodes that held the state as ParamServs,
    // so creating the backup costs no wire traffic. The snapshot is by
    // construction a complete active->backup sync as of this clock —
    // without advancing last_sync_clock_ here, a failure right after the
    // transition would roll back past state the backups actually hold.
    model_.EnableBackups();
    last_sync_clock_ = clock_;
    last_sync_bytes_.clear();
  }
  if (roles_.stage != next.stage && !roles_.server.empty()) {
    control_log_.Record(ControlMessage::kStageSwitch);
    if (stage_transition_counter_ != nullptr) {
      stage_transition_counter_->Increment();
    }
    if (tracer_ != nullptr) {
      // Zero-duration span: role moves are instantaneous in virtual time;
      // their cost lands in the next clock's stall (recovery.stall span).
      tracer_->SpanAt(total_time_, 0.0, "stage.transition", "agileml",
                      {{"from", std::string(StageName(roles_.stage))},
                       {"to", std::string(StageName(next.stage))},
                       {"clock", static_cast<std::int64_t>(clock_)},
                       {"forced", static_cast<std::int64_t>(forced ? 1 : 0)}});
    }
    if (ledger_ != nullptr) {
      ledger_->Record("stage.transition", "agileml", total_time_,
                      {{"from", std::string(StageName(roles_.stage))},
                       {"to", std::string(StageName(next.stage))},
                       {"clock", static_cast<std::int64_t>(clock_)},
                       {"forced", static_cast<std::int64_t>(forced ? 1 : 0)}});
    }
  }
  if (had_backups && !will_have_backups) {
    // Stage 2/3 -> 1: end-of-life push — every serving node streams its
    // aggregated dirty deltas to the BackupPS, which then takes over as a
    // ParamServ (§3.3 "Evictions"). Leaving nodes are still alive during
    // the warning window, so they can push.
    for (PartitionId p = 0; p < config_.num_partitions; ++p) {
      // Flush both the unsynced dirty rows and the in-flight tail of the
      // asynchronous background stream.
      const std::uint64_t bytes = model_.SyncPartitionToBackup(p, clock_) + last_sync_bytes_[p];
      const NodeId src = roles_.server.at(p);
      const NodeId dst = roles_.backup.at(p);
      queued_.push_back({leaving.count(src) > 0 ? kInvalidNode : src, dst, bytes, cls, forced});
      control_log_.Record(ControlMessage::kEndOfLifeFlag);
    }
    last_sync_bytes_.clear();
    last_sync_clock_ = clock_;
  }

  // Serving-state migration.
  for (PartitionId p = 0; p < config_.num_partitions; ++p) {
    const NodeId new_server = next.server.at(p);
    auto old_it = roles_.server.find(p);
    if (old_it == roles_.server.end()) {
      continue;  // Initial placement, state materializes in place.
    }
    const NodeId old_server = old_it->second;
    if (old_server == new_server) {
      continue;
    }
    // Pick a transfer source: the old server if it is still around (ready
    // or in its warning window), otherwise the partition's backup.
    NodeId src = kInvalidNode;
    std::uint64_t bytes = model_.PartitionBytes(p);
    if (IsReady(old_server)) {
      src = old_server;
    } else if (leaving.count(old_server) > 0) {
      // Warned eviction: the departing node pushes directly to the new
      // owner; we charge only the receiver (the sender is on its way out
      // and its egress gates nothing).
      src = kInvalidNode;
    } else {
      auto backup_it = roles_.backup.find(p);
      if (backup_it != roles_.backup.end() && IsReady(backup_it->second)) {
        src = backup_it->second;
      }
    }
    if (src == new_server) {
      continue;  // Receiver already holds a replica (it was the backup).
    }
    // If the new server is the partition's backup owner and backups are
    // in sync, the state is already local.
    if (had_backups) {
      auto backup_it = roles_.backup.find(p);
      if (backup_it != roles_.backup.end() && backup_it->second == new_server &&
          !will_have_backups) {
        continue;  // Handled by the end-of-life push above.
      }
    }
    queued_.push_back({src, new_server, bytes, cls, forced});
    // Workers are pointed at the new partition owner (§3.3).
    control_log_.Record(ControlMessage::kPartitionOwnership);
  }

  // Backup-ownership migration (reliable membership changed).
  if (will_have_backups && had_backups) {
    for (PartitionId p = 0; p < config_.num_partitions; ++p) {
      const NodeId new_backup = next.backup.at(p);
      auto old_it = roles_.backup.find(p);
      if (old_it == roles_.backup.end() || old_it->second == new_backup) {
        continue;
      }
      const NodeId old_backup = old_it->second;
      const NodeId src = IsReady(old_backup) ? old_backup : next.server.at(p);
      if (src == new_backup) {
        continue;
      }
      queued_.push_back({src, new_backup, model_.PartitionBytes(p), cls, forced});
    }
  }

  roles_ = std::move(next);
}

void AgileMLRuntime::RebalanceData(bool forced) {
  std::vector<NodeId> workers;
  for (const auto& node : nodes_) {  // Preserve join order.
    if (roles_.worker_nodes.count(node.id) > 0) {
      workers.push_back(node.id);
    }
  }
  PROTEUS_CHECK(!workers.empty());
  const std::vector<BlockMove> moves = data_.Rebalance(workers);
  std::set<NodeId> notified;
  for (const auto& move : moves) {
    if (move.to != kInvalidNode) {
      notified.insert(move.to);
    }
    if (move.from != kInvalidNode) {
      notified.insert(move.from);
    }
  }
  control_log_.Record(ControlMessage::kDataAssignment,
                      static_cast<std::int64_t>(notified.size()));
  const TrafficClass cls = forced ? TrafficClass::kForeground : TrafficClass::kBackground;
  for (const auto& move : moves) {
    if (!move.needs_load) {
      continue;  // Previous owner took over: data already in memory.
    }
    const auto bytes =
        static_cast<std::uint64_t>(data_.BlockBytes(move.block, config_.bytes_per_item));
    queued_.push_back({kInvalidNode, move.to, bytes, cls, forced});
  }
}

void AgileMLRuntime::AddNodes(const std::vector<NodeInfo>& new_nodes) {
  const std::size_t current_workers = std::max<std::size_t>(1, roles_.worker_nodes.size());
  for (const auto& node : new_nodes) {
    PROTEUS_CHECK_GE(node.id, 0);
    PROTEUS_CHECK(!fabric_.HasNode(node.id)) << "duplicate node id " << node.id;
    nodes_.push_back(node);
    fabric_.AddNode(node.id);
    // Preload estimate: a new node loads about twice its working share
    // (Fig. 5: loads 1/2 of the data, works on 1/4).
    const double share = static_cast<double>(app_->NumItems()) /
                         static_cast<double>(current_workers + new_nodes.size());
    preparing_[node.id] = static_cast<std::uint64_t>(2.0 * share * config_.bytes_per_item);
  }
  if (tracer_ != nullptr && !new_nodes.empty()) {
    tracer_->InstantAt(total_time_, "nodes.add", "agileml",
                       {{"count", static_cast<std::int64_t>(new_nodes.size())},
                        {"clock", static_cast<std::int64_t>(clock_)}});
  }
  if (ledger_ != nullptr && !new_nodes.empty()) {
    ledger_->Record("nodes.add", "agileml", total_time_,
                    {{"count", static_cast<std::int64_t>(new_nodes.size())},
                     {"clock", static_cast<std::int64_t>(clock_)}});
  }
}

void AgileMLRuntime::IncorporateReady() {
  std::vector<NodeId> newly;
  for (auto it = preparing_.begin(); it != preparing_.end();) {
    if (it->second == 0) {
      newly.push_back(it->first);
      it = preparing_.erase(it);
    } else {
      ++it;
    }
  }
  if (newly.empty()) {
    return;
  }
  for (const NodeId id : newly) {
    ready_.insert(id);
    control_log_.Record(ControlMessage::kReadySignal);
    if (config_.detector.enabled) {
      detector_.Register(id, clock_);
    }
  }
  TransitionRoles(/*leaving=*/{}, /*forced=*/false);
  // New nodes preloaded their data during the preparing phase; mark their
  // assigned blocks loaded without charging again.
  std::vector<NodeId> workers;
  for (const auto& node : nodes_) {
    if (roles_.worker_nodes.count(node.id) > 0) {
      workers.push_back(node.id);
    }
  }
  const std::vector<BlockMove> moves = data_.Rebalance(workers);
  for (const auto& move : moves) {
    const bool prepaid = std::find(newly.begin(), newly.end(), move.to) != newly.end();
    if (!move.needs_load || prepaid) {
      continue;
    }
    const auto bytes =
        static_cast<std::uint64_t>(data_.BlockBytes(move.block, config_.bytes_per_item));
    queued_.push_back({kInvalidNode, move.to, bytes, TrafficClass::kBackground, false});
  }
  RebuildClockTable();
  if (tracer_ != nullptr) {
    tracer_->InstantAt(total_time_, "nodes.incorporate", "agileml",
                       {{"count", static_cast<std::int64_t>(newly.size())},
                        {"stage", std::string(StageName(roles_.stage))},
                        {"clock", static_cast<std::int64_t>(clock_)}});
  }
  if (ledger_ != nullptr) {
    ledger_->Record("nodes.incorporate", "agileml", total_time_,
                    {{"count", static_cast<std::int64_t>(newly.size())},
                     {"stage", std::string(StageName(roles_.stage))},
                     {"clock", static_cast<std::int64_t>(clock_)}});
  }
  PROTEUS_LOG(Debug) << "incorporated " << newly.size() << " nodes; stage "
                     << StageName(roles_.stage);
}

void AgileMLRuntime::Evict(const std::vector<NodeId>& node_ids) {
  std::set<NodeId> leaving;
  for (const NodeId id : node_ids) {
    if (preparing_.erase(id) > 0) {
      // Node was still preloading; it simply disappears.
      fabric_.RemoveNode(id);
      nodes_.erase(std::remove_if(nodes_.begin(), nodes_.end(),
                                  [id](const NodeInfo& n) { return n.id == id; }),
                   nodes_.end());
      continue;
    }
    PROTEUS_CHECK(IsReady(id)) << "evicting unknown node " << id;
    PROTEUS_CHECK(revoked_.count(id) == 0)
        << "warned drain of zero-warning node " << id
        << "; revoked nodes go through the detector-confirmed Fail path only";
    leaving.insert(id);
    ready_.erase(id);
    silenced_.erase(id);
    detector_.Unregister(id);
    control_log_.Record(ControlMessage::kEvictionSignal);
  }
  if (leaving.empty()) {
    return;
  }
  if (tracer_ != nullptr) {
    tracer_->InstantAt(total_time_, "nodes.evict", "agileml",
                       {{"count", static_cast<std::int64_t>(leaving.size())},
                        {"clock", static_cast<std::int64_t>(clock_)}});
  }
  if (ledger_ != nullptr) {
    ledger_->Record("nodes.evict", "agileml", total_time_,
                    {{"count", static_cast<std::int64_t>(leaving.size())},
                     {"clock", static_cast<std::int64_t>(clock_)}});
  }
  TransitionRoles(leaving, /*forced=*/true);
  for (const NodeId id : leaving) {
    data_.DropNode(id);
  }
  RebalanceData(/*forced=*/true);
  for (const NodeId id : leaving) {
    fabric_.RemoveNode(id);
    nodes_.erase(std::remove_if(nodes_.begin(), nodes_.end(),
                                [id](const NodeInfo& n) { return n.id == id; }),
                 nodes_.end());
  }
  RebuildClockTable();
}

int AgileMLRuntime::Fail(const std::vector<NodeId>& node_ids) {
  return FailInternal(node_ids, /*durable_restore=*/false);
}

int AgileMLRuntime::FailWithDurableRestore(const std::vector<NodeId>& node_ids) {
  return FailInternal(node_ids, /*durable_restore=*/true);
}

int AgileMLRuntime::FailInternal(const std::vector<NodeId>& node_ids, bool durable_restore) {
  std::set<NodeId> dead;
  bool lost_server_state = false;
  bool lost_reliable_ps = false;
  bool revoked_victim = false;
  for (const NodeId id : node_ids) {
    if (preparing_.erase(id) > 0) {
      fabric_.RemoveNode(id);
      nodes_.erase(std::remove_if(nodes_.begin(), nodes_.end(),
                                  [id](const NodeInfo& n) { return n.id == id; }),
                   nodes_.end());
      continue;
    }
    PROTEUS_CHECK(IsReady(id)) << "failing unknown node " << id;
    dead.insert(id);
    ready_.erase(id);
    silenced_.erase(id);
    if (revoked_.erase(id) > 0) {
      revoked_victim = true;
    }
    detector_.Unregister(id);
    for (const auto& [part, server] : roles_.server) {
      if (server == id) {
        if (roles_.UsesBackups()) {
          lost_server_state = true;
        } else {
          lost_reliable_ps = true;
        }
        break;
      }
    }
  }
  if (dead.empty()) {
    return 0;
  }
  // Taint rollback: a zero-warning (revoked) victim stopped contributing
  // the instant it was revoked, so every clock completed since then is
  // missing its updates. Roll back to the last backup sync even when the
  // victims were pure workers — the backup copy is the newest state
  // guaranteed untainted.
  if (revoked_victim && roles_.UsesBackups()) {
    lost_server_state = true;
  }
  if (tracer_ != nullptr) {
    tracer_->InstantAt(total_time_, "nodes.fail", "agileml",
                       {{"count", static_cast<std::int64_t>(dead.size())},
                        {"clock", static_cast<std::int64_t>(clock_)}});
  }
  obs::EventId fail_event = obs::kNoEvent;
  if (ledger_ != nullptr) {
    fail_event = ledger_->Record(
        "nodes.fail", "agileml", total_time_,
        {{"count", static_cast<std::int64_t>(dead.size())},
         {"clock", static_cast<std::int64_t>(clock_)},
         {"lost_server_state", static_cast<std::int64_t>(lost_server_state ? 1 : 0)},
         {"lost_reliable_ps", static_cast<std::int64_t>(lost_reliable_ps ? 1 : 0)}});
  }

  int lost_clocks = 0;
  [[maybe_unused]] const std::int64_t rollback_notices_before =
      control_log_.Count(ControlMessage::kRollbackNotice);
  if (durable_restore) {
    // Correlated loss of both tiers: neither the ActivePS rows on the
    // dead transients nor the backup/rollback copy on the dead reliable
    // node(s) survive, so the backup-rollback path below would recover
    // from state that no longer exists. The caller has installed the
    // newest valid durable checkpoint; restore from it instead.
    PROTEUS_CHECK(checkpoint_.has_value())
        << "durable-restore failure with no checkpoint installed";
    lost_clocks = RestoreFromCheckpoint();
    control_log_.Record(ControlMessage::kRecoveryNotice,
                        static_cast<std::int64_t>(roles_.worker_nodes.size()));
  } else if (lost_server_state) {
    // §3.3 "Failures": BackupPS state is the new solution state; all
    // workers re-do the clocks since the last active->backup sync.
    lost_clocks = static_cast<int>(clock_ - last_sync_clock_);
    model_.RollbackAllToBackup();
    clock_ = last_sync_clock_;
    // Leases renewed at the discarded clocks would defer detection of
    // nodes that die during the re-executed window.
    detector_.RewindTo(clock_);
    lost_clocks_total_ += lost_clocks;
    if (lost_clocks > 0) {
      control_log_.Record(ControlMessage::kRollbackNotice,
                          static_cast<std::int64_t>(roles_.worker_nodes.size()));
    }
    if (rollback_clocks_counter_ != nullptr) {
      rollback_clocks_counter_->Add(static_cast<std::uint64_t>(lost_clocks));
    }
    if (tracer_ != nullptr) {
      tracer_->SpanAt(total_time_, 0.0, "rollback", "agileml",
                      {{"kind", std::string("backup")},
                       {"lost_clocks", static_cast<std::int64_t>(lost_clocks)},
                       {"to_clock", static_cast<std::int64_t>(clock_)},
                       {"failed_nodes", static_cast<std::int64_t>(dead.size())}});
    }
    if (ledger_ != nullptr) {
      // Causal parent is the failure that forced the rollback, not the
      // ambient region — analysis can tell fault-driven rollbacks apart.
      ledger_->RecordWithParent(
          "rollback", "agileml", total_time_, fail_event,
          {{"kind", std::string("backup")},
           {"lost_clocks", static_cast<std::int64_t>(lost_clocks)},
           {"to_clock", static_cast<std::int64_t>(clock_)},
           {"failed_nodes", static_cast<std::int64_t>(dead.size())}});
    }
  } else if (lost_reliable_ps) {
    // A reliable ParamServ died in stage 1: only a checkpoint can save
    // the solution state.
    PROTEUS_CHECK(checkpoint_.has_value())
        << "reliable ParamServ failed with no checkpoint; solution state lost";
    lost_clocks = RestoreFromCheckpoint();
  }
  // Every Fail() path that discards completed clocks must have told the
  // workers to restart from a past clock.
  PROTEUS_DCHECK(lost_clocks == 0 ||
                 control_log_.Count(ControlMessage::kRollbackNotice) >
                     rollback_notices_before)
      << "Fail() lost " << lost_clocks << " clocks without a rollback notice";

  TransitionRoles(/*leaving=*/{}, /*forced=*/true);
  for (const NodeId id : dead) {
    data_.DropNode(id);
  }
  RebalanceData(/*forced=*/true);
  for (const NodeId id : dead) {
    fabric_.RemoveNode(id);
    nodes_.erase(std::remove_if(nodes_.begin(), nodes_.end(),
                                [id](const NodeInfo& n) { return n.id == id; }),
                 nodes_.end());
  }
  RebuildClockTable();
  return lost_clocks;
}

void AgileMLRuntime::SetNodeSilent(NodeId id, bool silent) {
  if (!silent) {
    silenced_.erase(id);
    return;
  }
  PROTEUS_CHECK(IsReady(id)) << "silencing unknown node " << id;
  silenced_.insert(id);
}

void AgileMLRuntime::SetNodeRevoked(NodeId id) {
  PROTEUS_CHECK(IsReady(id)) << "revoking unknown node " << id;
  revoked_.insert(id);
  silenced_.insert(id);  // Heartbeats stop the same instant.
  if (ledger_ != nullptr) {
    ledger_->Record("nodes.revoked", "agileml", total_time_,
                    {{"node", static_cast<std::int64_t>(id)},
                     {"clock", static_cast<std::int64_t>(clock_)}});
  }
}

TierGuardReport AgileMLRuntime::AuditTierGuard() const {
  const int extra = revoked_.empty() ? 0 : config_.detector.confirm_after;
  return guard_.Audit(ReadyNodes(), roles_, clock_, last_sync_clock_, extra);
}

void AgileMLRuntime::CheckpointReliable() {
  // Shard-granular snapshot: each stripe serializes independently, so a
  // future partial restore touches only the stripes it needs.
  std::vector<std::vector<std::uint8_t>> blobs;
  blobs.reserve(static_cast<std::size_t>(model_.shards()));
  for (int s = 0; s < model_.shards(); ++s) {
    blobs.push_back(model_.SerializeShardCheckpoint(s));
  }
  std::uint64_t checkpoint_bytes = 0;
  for (const auto& blob : blobs) {
    checkpoint_bytes += blob.size();
  }
  checkpoint_bytes_written_total_ += checkpoint_bytes;
  if (checkpoint_bytes_written_counter_ != nullptr) {
    checkpoint_bytes_written_counter_->Add(checkpoint_bytes);
  }
  checkpoint_ = Checkpoint{std::move(blobs), clock_};
  if (ledger_ != nullptr) {
    ledger_->Record("checkpoint", "agileml", total_time_,
                    {{"clock", static_cast<std::int64_t>(clock_)},
                     {"bytes", static_cast<std::int64_t>(checkpoint_bytes)}});
  }
  // Charge the checkpoint write: each reliable node holding solution
  // state streams its share to durable storage in the background. In
  // stage 3 reliable nodes have no foreground role, so this is free —
  // the paper's "checkpointing ... has no overhead" observation.
  const auto& owners = roles_.UsesBackups() ? roles_.backup : roles_.server;
  for (PartitionId p = 0; p < config_.num_partitions; ++p) {
    auto it = owners.find(p);
    if (it != owners.end() && IsReady(it->second)) {
      queued_.push_back({it->second, kInvalidNode, model_.PartitionBytes(p),
                         TrafficClass::kBackground, false});
    }
  }
}

int AgileMLRuntime::RestoreFromCheckpoint() {
  PROTEUS_CHECK(checkpoint_.has_value());
  PROTEUS_CHECK_EQ(static_cast<int>(checkpoint_->shard_blobs.size()), model_.shards());
  std::uint64_t restored_bytes = 0;
  for (int s = 0; s < model_.shards(); ++s) {
    restored_bytes += checkpoint_->shard_blobs[static_cast<std::size_t>(s)].size();
    model_.RestoreShardCheckpoint(s, checkpoint_->shard_blobs[static_cast<std::size_t>(s)]);
  }
  // delta > 0 is an ordinary rollback. delta < 0 is a *forward* restore:
  // the snapshot holds clocks a prior rollback declared lost (e.g. a
  // durable epoch newer than the last backup sync), so the jump credits
  // them back against lost_clocks_total_ — the completed-clock counter
  // (clock + lost) stays put either way. The credit clamps at zero for a
  // restart driver installing a snapshot into a fresh runtime, where the
  // jump recovers work this runtime never counted as lost.
  const int delta = static_cast<int>(clock_ - checkpoint_->clock);
  const int lost = std::max(0, delta);
  clock_ = checkpoint_->clock;
  detector_.RewindTo(clock_);
  checkpoint_bytes_restored_total_ += restored_bytes;
  restore_clocks_lost_total_ += lost;
  if (checkpoint_bytes_restored_counter_ != nullptr) {
    checkpoint_bytes_restored_counter_->Add(restored_bytes);
  }
  if (restore_clocks_lost_counter_ != nullptr) {
    restore_clocks_lost_counter_->Add(static_cast<std::uint64_t>(lost));
  }
  if (roles_.UsesBackups()) {
    // Re-snapshot: backups were also stale. The snapshot doubles as a
    // complete sync at the restored clock.
    model_.EnableBackups();
    last_sync_clock_ = clock_;
    last_sync_bytes_.clear();
  } else {
    last_sync_clock_ = std::min(last_sync_clock_, clock_);
  }
  restore_clocks_credited_total_ +=
      lost_clocks_total_ - std::max(0, lost_clocks_total_ + delta) + lost;
  lost_clocks_total_ = std::max(0, lost_clocks_total_ + delta);
  if (lost > 0) {
    // Workers restart from the checkpointed clock.
    control_log_.Record(ControlMessage::kRollbackNotice,
                        static_cast<std::int64_t>(roles_.worker_nodes.size()));
  }
  if (rollback_clocks_counter_ != nullptr) {
    rollback_clocks_counter_->Add(static_cast<std::uint64_t>(lost));
  }
  if (tracer_ != nullptr) {
    tracer_->SpanAt(total_time_, 0.0, "rollback", "agileml",
                    {{"kind", std::string("checkpoint")},
                     {"lost_clocks", static_cast<std::int64_t>(lost)},
                     {"to_clock", static_cast<std::int64_t>(clock_)}});
  }
  if (ledger_ != nullptr) {
    ledger_->Record("rollback", "agileml", total_time_,
                    {{"kind", std::string("checkpoint")},
                     {"lost_clocks", static_cast<std::int64_t>(lost)},
                     {"to_clock", static_cast<std::int64_t>(clock_)},
                     {"bytes_restored", static_cast<std::int64_t>(restored_bytes)}});
  }
  // Worker clocks must follow the runtime clock backwards, or the next
  // RunClock would violate ClockTable's monotonic-advance invariant.
  // (Fail() rebuilds again after membership settles; that is idempotent.)
  RebuildClockTable();
  return lost;
}

void AgileMLRuntime::InstallCheckpoint(std::vector<std::vector<std::uint8_t>> shard_blobs,
                                       Clock clock) {
  PROTEUS_CHECK_EQ(static_cast<int>(shard_blobs.size()), model_.shards())
      << "installed checkpoint shard count does not match the model";
  checkpoint_ = Checkpoint{std::move(shard_blobs), clock};
}

void AgileMLRuntime::DropCheckpoint() { checkpoint_.reset(); }

SimDuration AgileMLRuntime::ChargeQueuedTransfers() {
  // Stall transfers (eviction/failure handling) halt the training
  // pipeline until the state lands; they contribute serialized time
  // bounded by the most-loaded endpoint's NIC.
  std::map<NodeId, std::uint64_t> stall_bytes;
  for (const auto& t : queued_) {
    const bool src_ok = t.src != kInvalidNode && fabric_.HasNode(t.src);
    const bool dst_ok = t.dst != kInvalidNode && fabric_.HasNode(t.dst);
    if (t.stall) {
      if (src_ok) {
        stall_bytes[t.src] += t.bytes;
      }
      if (dst_ok) {
        stall_bytes[t.dst] += t.bytes;
      }
      continue;
    }
    if (src_ok && dst_ok) {
      fabric_.RecordTransfer(t.src, t.dst, t.bytes, t.cls);
    } else if (dst_ok) {
      fabric_.RecordExternalIngress(t.dst, t.bytes, t.cls);
    } else if (src_ok) {
      fabric_.RecordExternalEgress(t.src, t.bytes, t.cls);
    }
    // Both endpoints gone: the transfer is moot.
  }
  queued_.clear();
  std::uint64_t worst = 0;
  for (const auto& [node, bytes] : stall_bytes) {
    worst = std::max(worst, bytes);
  }
  return static_cast<SimDuration>(worst) / config_.nic_bandwidth;
}

void AgileMLRuntime::SyncAllToBackups(TrafficClass cls) {
  std::uint64_t total_bytes = 0;
  for (PartitionId p = 0; p < config_.num_partitions; ++p) {
    // The stream captures state as of the clock that just finished
    // (clock_ + 1 when called from RunClock's end-of-clock hook).
    const std::uint64_t bytes = model_.SyncPartitionToBackup(p, clock_ + 1);
    last_sync_bytes_[p] = bytes;
    if (bytes == 0) {
      continue;
    }
    total_bytes += bytes;
    const NodeId src = roles_.server.at(p);
    const NodeId dst = roles_.backup.at(p);
    if (fabric_.HasNode(src) && fabric_.HasNode(dst)) {
      fabric_.RecordTransfer(src, dst, bytes, cls);
    }
  }
  if (backup_sync_bytes_counter_ != nullptr) {
    backup_sync_bytes_counter_->Add(total_bytes);
  }
}

IterationReport AgileMLRuntime::RunClock() {
  const SimDuration clock_start = total_time_;
  // Open the clock's causal region first: everything recorded until the
  // matching Close (comm accounting, backup syncs, detector verdicts,
  // detector-driven failure handling) is a child of this clock.
  obs::EventId clock_event = obs::kNoEvent;
  if (ledger_ != nullptr) {
    clock_event = ledger_->Open("clock", "agileml", clock_start,
                                {{"clock", static_cast<std::int64_t>(clock_)}});
    last_clock_event_ = clock_event;
  }
  fabric_.BeginRound();
  const SimDuration stall = ChargeQueuedTransfers();

  // Preparing nodes absorb input data from storage in the background.
  const auto chunk = static_cast<std::uint64_t>(config_.storage_bandwidth *
                                                std::max(last_duration_, 0.5));
  for (auto& [id, remaining] : preparing_) {
    const std::uint64_t used = std::min(remaining, chunk);
    fabric_.RecordExternalIngress(id, used, TrafficClass::kBackground);
    remaining -= used;
  }

  // --- Worker execution (real arithmetic, virtual compute time) ---
  std::vector<NodeId> workers(roles_.worker_nodes.begin(), roles_.worker_nodes.end());
  std::map<NodeId, AccessTracker> trackers;
  for (const NodeId w : workers) {
    trackers[w];  // Pre-create: no rehash during the parallel section.
  }
  const int minibatches = std::max(1, config_.minibatches_per_pass);
  const int phase = static_cast<int>(clock_ % minibatches);
  auto clock_slice = [&](const ItemRange& range) {
    // The phase-th 1/k slice of the range; k consecutive clocks cover it.
    ItemRange slice;
    slice.begin = range.begin + range.size() * phase / minibatches;
    slice.end = range.begin + range.size() * (phase + 1) / minibatches;
    return slice;
  };
  auto run_node = [&](const NodeId w) {
    AccessTracker& tracker = trackers[w];
    tracker.Clear();
    if (revoked_.count(w) > 0) {
      return;  // Revoked with zero warning: the node executes nothing.
    }
    const std::uint64_t stream =
        HashCombine(config_.seed, HashCombine(static_cast<std::uint64_t>(w),
                                              static_cast<std::uint64_t>(clock_)));
    WorkerContext ctx(w, &model_, &tracker, Rng(stream));
    for (const ItemRange& range : data_.RangesOf(w)) {
      const ItemRange slice = clock_slice(range);
      if (slice.size() > 0) {
        app_->ProcessRange(ctx, slice.begin, slice.end);
      }
    }
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(workers.size(), [&](std::size_t i) { run_node(workers[i]); });
  } else {
    for (const NodeId w : workers) {
      run_node(w);
    }
  }

  // --- Communication accounting ---
  // Reads: server egress -> worker ingress; updates: worker egress ->
  // server ingress. Distinct rows per clock thanks to the worker-side
  // cache (write-back coalescing).
  std::uint64_t pull_bytes = 0;  // Server -> worker (parameter reads).
  std::uint64_t push_bytes = 0;  // Worker -> server (update write-backs).
  std::uint64_t push_saved_bytes = 0;  // Legacy framing minus coalesced.
  const std::vector<NodeId> server_of = roles_.ServerByPartition(config_.num_partitions);
  for (const NodeId w : workers) {
    const AccessTracker& tracker = trackers[w];
    for (const RowKey key : tracker.reads()) {
      const int table = TableOfKey(key);
      const PartitionId p = model_.PartitionOf(table, RowOfKey(key));
      const std::uint64_t bytes = model_.RowBytes(table);
      pull_bytes += bytes;
      fabric_.RecordTransfer(server_of[static_cast<std::size_t>(p)], w, bytes,
                             TrafficClass::kForeground);
    }
    if (model_.shards() > 1) {
      // Sharded fast path: the worker cache drains as one coalesced delta
      // batch per destination server (varint row-ids, single frame)
      // instead of per-row UpdateParamMsg framing.
      std::map<NodeId, std::vector<RowKey>> batch_keys;
      std::uint64_t legacy_bytes = 0;
      for (const RowKey key : tracker.updates()) {
        const int table = TableOfKey(key);
        const PartitionId p = model_.PartitionOf(table, RowOfKey(key));
        batch_keys[server_of[static_cast<std::size_t>(p)]].push_back(key);
        legacy_bytes += model_.RowBytes(table);
      }
      std::vector<std::uint32_t> cols;
      std::uint64_t coalesced_bytes = 0;
      for (auto& [server, keys] : batch_keys) {
        std::sort(keys.begin(), keys.end());
        cols.clear();
        cols.reserve(keys.size());
        for (const RowKey key : keys) {
          cols.push_back(static_cast<std::uint32_t>(model_.table(TableOfKey(key)).cols));
        }
        const std::uint64_t bytes = DeltaBatchEncodedBytes(keys, cols);
        coalesced_bytes += bytes;
        fabric_.RecordTransfer(w, server, bytes, TrafficClass::kForeground);
      }
      push_bytes += coalesced_bytes;
      push_saved_bytes += legacy_bytes - std::min(legacy_bytes, coalesced_bytes);
    } else {
      for (const RowKey key : tracker.updates()) {
        const int table = TableOfKey(key);
        const PartitionId p = model_.PartitionOf(table, RowOfKey(key));
        const std::uint64_t bytes = model_.RowBytes(table);
        push_bytes += bytes;
        fabric_.RecordTransfer(w, server_of[static_cast<std::size_t>(p)], bytes,
                               TrafficClass::kForeground);
      }
    }
  }
  if (pull_bytes_counter_ != nullptr) {
    pull_bytes_counter_->Add(pull_bytes);
  }
  if (push_bytes_counter_ != nullptr) {
    push_bytes_counter_->Add(push_bytes);
  }
  if (push_coalesced_saved_counter_ != nullptr) {
    push_coalesced_saved_counter_->Add(push_saved_bytes);
  }
  if (ledger_ != nullptr) {
    ledger_->Record("pull", "agileml", clock_start,
                    {{"bytes", static_cast<std::int64_t>(pull_bytes)}});
    ledger_->Record("push", "agileml", clock_start,
                    {{"bytes", static_cast<std::int64_t>(push_bytes)},
                     {"coalesced_saved", static_cast<std::int64_t>(push_saved_bytes)}});
  }

  // --- Active -> Backup streaming (stages 2/3) ---
  // Suppressed while any revoked node is unconfirmed: a zero-warning
  // victim never reaches the clock barrier, so clocks completed since
  // the revocation are missing its updates (tainted) and must not be
  // captured as the rollback target.
  if (roles_.UsesBackups() && revoked_.empty() &&
      (clock_ + 1) % config_.backup_sync_every == 0) {
    SyncAllToBackups(TrafficClass::kBackground);
    last_sync_clock_ = clock_ + 1;
    if (ledger_ != nullptr) {
      ledger_->Record("backup.sync", "agileml", clock_start,
                      {{"synced_clock", static_cast<std::int64_t>(clock_ + 1)}});
    }
  }

  // --- Virtual timing ---
  IterationReport report;
  const double cost_per_item = app_->CostPerItem();
  SimDuration gate_compute = 0.0;  // Gating node's own compute / comm.
  SimDuration gate_comm = 0.0;
  std::int64_t ready_reliable = 0;
  std::int64_t ready_transient = 0;
  std::int64_t ready_serverless = 0;
  for (const auto& node : nodes_) {
    if (!IsReady(node.id)) {
      continue;
    }
    if (node.reliable()) {
      ++ready_reliable;
    } else if (node.serverless()) {
      ++ready_serverless;
    } else {
      ++ready_transient;
    }
    SimDuration compute = 0.0;
    if (roles_.worker_nodes.count(node.id) > 0 && revoked_.count(node.id) == 0) {
      double items = 0.0;
      for (const ItemRange& range : data_.RangesOf(node.id)) {
        items += static_cast<double>(clock_slice(range).size());
      }
      compute = items * cost_per_item /
                (static_cast<double>(node.cores) * node.speed * config_.core_speed);
    }
    const SimDuration comm = fabric_.RoundCommTime(node.id);
    const SimDuration total = std::max(compute, comm) +
                              (1.0 - config_.comm_compute_overlap) * std::min(compute, comm);
    report.max_compute = std::max(report.max_compute, compute);
    report.max_comm = std::max(report.max_comm, comm);
    if (total > report.bottleneck_time) {
      report.bottleneck_time = total;
      report.bottleneck_node = node.id;
      gate_compute = compute;
      gate_comm = comm;
    }
  }
  bool gated_by_compute = gate_compute >= gate_comm;
  if (config_.bisection_bandwidth > 0.0) {
    const SimDuration fabric_floor =
        static_cast<SimDuration>(fabric_.RoundTotalBytes()) / config_.bisection_bandwidth;
    if (fabric_floor > report.bottleneck_time) {
      report.bottleneck_time = fabric_floor;
      gated_by_compute = false;  // The core switch, not any node, gates.
    }
  }
  // Serialized split of the critical path: the gating resource counts in
  // full, the other contributes only its non-overlapped residue; any
  // bisection-floor excess is transport. The two sides reassemble into
  // bottleneck_time exactly — the analyzer's 100%-attribution invariant.
  {
    const double residue = 1.0 - config_.comm_compute_overlap;
    SimDuration compute_part = gated_by_compute ? gate_compute : residue * gate_compute;
    compute_part = std::min(compute_part, report.bottleneck_time);
    report.critical_compute = compute_part;
    report.critical_transport = report.bottleneck_time - compute_part;
  }
  report.duration = report.bottleneck_time + config_.barrier_overhead + stall;
  report.stall = stall;
  report.total_bytes = fabric_.RoundTotalBytes();
  report.stage = roles_.stage;
  report.worker_nodes = static_cast<int>(workers.size());

  ++clock_;
  for (const NodeId w : workers) {
    if (clocks_.HasWorkerNode(w)) {
      clocks_.AdvanceTo(w, clock_);
    }
  }
  report.clock = clock_;
  total_time_ += report.duration;
  last_duration_ = report.duration;

  if (clock_duration_hist_ != nullptr) {
    clock_duration_hist_->Observe(report.duration);
  }
  if (stall_seconds_counter_ != nullptr && stall > 0.0) {
    stall_seconds_counter_->Add(static_cast<std::uint64_t>(stall * 1e6));
  }
  const double backup_lag_clocks =
      roles_.UsesBackups() ? static_cast<double>(clock_ - last_sync_clock_) : 0.0;
  if (backup_lag_gauge_ != nullptr) {
    backup_lag_gauge_->Set(backup_lag_clocks);
  }
  if (worker_nodes_gauge_ != nullptr) {
    worker_nodes_gauge_->Set(static_cast<double>(report.worker_nodes));
  }
  if (tracer_ != nullptr) {
    tracer_->CounterAt(total_time_, "backup_lag_clocks", "agileml", backup_lag_clocks);
    tracer_->CounterAt(total_time_, "worker_nodes", "agileml",
                       static_cast<double>(report.worker_nodes));
  }
  model_.UpdateShardGauges();
  if (tracer_ != nullptr) {
    if (stall > 0.0) {
      // Forced (eviction/failure-handling) transfers serialized ahead of
      // this clock: the per-clock share of recovery time.
      tracer_->SpanAt(clock_start, stall, "recovery.stall", "agileml",
                      {{"clock", static_cast<std::int64_t>(clock_)}});
    }
    tracer_->SpanAt(clock_start, report.duration, "clock", "agileml",
                    {{"clock", static_cast<std::int64_t>(clock_)},
                     {"stage", std::string(StageName(report.stage))},
                     {"workers", static_cast<std::int64_t>(report.worker_nodes)},
                     {"bytes", static_cast<std::int64_t>(report.total_bytes)},
                     {"pull_bytes", static_cast<std::int64_t>(pull_bytes)},
                     {"push_bytes", static_cast<std::int64_t>(push_bytes)},
                     {"stall", report.stall}});
  }

  // --- Heartbeat / lease failure detection ---
  // Runs after the clock has fully advanced, so a detector-driven
  // rollback keeps the progress-accounting invariant: clock_ + lost
  // advances by exactly one per RunClock, with the rollback delta moved
  // to the lost side.
  if (config_.detector.enabled) {
    std::int64_t beats = 0;
    for (const NodeId id : ready_) {
      if (silenced_.count(id) > 0) {
        continue;  // Gray-failed: control plane cut, no lease renewal.
      }
      if (detector_.Heartbeat(id, clock_)) {
        // The node was under suspicion and came back: a false positive.
        if (detector_false_positives_counter_ != nullptr) {
          detector_false_positives_counter_->Increment();
        }
        if (tracer_ != nullptr) {
          tracer_->InstantAt(total_time_, "detector.recovered", "agileml",
                             {{"node", static_cast<std::int64_t>(id)},
                              {"clock", static_cast<std::int64_t>(clock_)}});
        }
        if (ledger_ != nullptr) {
          ledger_->Record("detector.recovered", "agileml", total_time_,
                          {{"node", static_cast<std::int64_t>(id)},
                           {"clock", static_cast<std::int64_t>(clock_)}});
        }
      }
      ++beats;
    }
    if (beats > 0) {
      control_log_.Record(ControlMessage::kHeartbeat, beats);
      if (ledger_ != nullptr) {
        ledger_->Record("heartbeat", "agileml", total_time_, {{"beats", beats}});
      }
    }
    const FailureDetectorReport fd = detector_.Poll(clock_);
    for (const NodeId id : fd.newly_suspected) {
      control_log_.Record(ControlMessage::kSuspicionNotice);
      if (detector_suspicions_counter_ != nullptr) {
        detector_suspicions_counter_->Increment();
        if (tracer_ != nullptr) {
          tracer_->CounterAt(total_time_, "detector_suspicions", "agileml",
                             static_cast<double>(detector_suspicions_counter_->value()));
        }
      }
      if (tracer_ != nullptr) {
        tracer_->InstantAt(total_time_, "detector.suspected", "agileml",
                           {{"node", static_cast<std::int64_t>(id)},
                            {"clock", static_cast<std::int64_t>(clock_)}});
      }
      if (ledger_ != nullptr) {
        ledger_->Record("detector.suspected", "agileml", total_time_,
                        {{"node", static_cast<std::int64_t>(id)},
                         {"clock", static_cast<std::int64_t>(clock_)}});
      }
    }
    if (!fd.confirmed_dead.empty()) {
      // The latency gauge reports the batch maximum: when many nodes are
      // confirmed in the same clock (an eviction storm), per-death Set()
      // calls would leave whichever node happened to be last — the gauge
      // must reflect the slowest confirmation of the batch.
      double batch_latency = 0.0;
      for (const ConfirmedDeath& death : fd.confirmed_dead) {
        report.confirmed_dead.push_back(death.node);
        silenced_.erase(death.node);
        batch_latency = std::max(batch_latency, static_cast<double>(death.missed_clocks));
        if (detector_confirmed_counter_ != nullptr) {
          detector_confirmed_counter_->Increment();
        }
        if (tracer_ != nullptr) {
          tracer_->InstantAt(total_time_, "detector.confirmed_dead", "agileml",
                             {{"node", static_cast<std::int64_t>(death.node)},
                              {"missed_clocks", death.missed_clocks},
                              {"clock", static_cast<std::int64_t>(clock_)}});
        }
        if (ledger_ != nullptr) {
          ledger_->Record("detector.confirmed_dead", "agileml", total_time_,
                          {{"node", static_cast<std::int64_t>(death.node)},
                           {"missed_clocks", death.missed_clocks},
                           {"clock", static_cast<std::int64_t>(clock_)}});
        }
      }
      if (detector_latency_gauge_ != nullptr) {
        detector_latency_gauge_->Set(batch_latency);
      }
      Fail(report.confirmed_dead);
    }
  }

  IncorporateReady();
  if (ledger_ != nullptr && clock_event != obs::kNoEvent) {
    ledger_->Close(clock_event, report.duration,
                   {{"stage", std::string(StageName(report.stage))},
                    {"workers", static_cast<std::int64_t>(report.worker_nodes)},
                    {"reliable_nodes", ready_reliable},
                    {"transient_nodes", ready_transient},
                    {"serverless_nodes", ready_serverless},
                    {"t_compute", report.critical_compute},
                    {"t_transport", report.critical_transport},
                    {"stall", report.stall},
                    {"barrier", config_.barrier_overhead},
                    {"gate", std::string(gated_by_compute ? "compute" : "transport")},
                    {"bottleneck_node", static_cast<std::int64_t>(report.bottleneck_node)},
                    {"pull_bytes", static_cast<std::int64_t>(pull_bytes)},
                    {"push_bytes", static_cast<std::int64_t>(push_bytes)},
                    {"total_bytes", static_cast<std::int64_t>(report.total_bytes)}});
  }
  return report;
}

SimDuration AgileMLRuntime::RunClocks(int n) {
  SimDuration total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += RunClock().duration;
  }
  return total;
}

}  // namespace proteus
