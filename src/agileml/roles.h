// Stage selection and functional-role placement (§3.2).
//
// Given the current membership, the planner decides which of the three
// AgileML stages to run and maps every partition to a serving node (a
// ParamServ in stage 1, an ActivePS in stages 2/3) and, in stages 2/3, to
// a BackupPS on a reliable node. It prefers keeping partitions where they
// already are, so membership changes trigger the minimum state movement.
#ifndef SRC_AGILEML_ROLES_H_
#define SRC_AGILEML_ROLES_H_

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/agileml/cluster.h"
#include "src/common/types.h"

namespace proteus {

enum class Stage : int {
  kStage1 = 1,  // ParamServs only on reliable machines.
  kStage2 = 2,  // ActivePSs on transient, BackupPSs on reliable.
  kStage3 = 3,  // Stage 2 minus workers on reliable machines.
};

const char* StageName(Stage stage);

struct RoleAssignment {
  Stage stage = Stage::kStage1;
  // Partition -> node currently serving it to workers.
  std::map<PartitionId, NodeId> server;
  // Partition -> reliable node holding its hot backup (stages 2/3).
  std::map<PartitionId, NodeId> backup;
  std::set<NodeId> worker_nodes;
  std::set<NodeId> active_ps_nodes;  // Empty in stage 1.

  bool UsesBackups() const { return stage != Stage::kStage1; }
  std::vector<PartitionId> PartitionsServedBy(NodeId node) const;
  // Dense partition -> server lookup for hot-path accounting (index p,
  // kInvalidNode where unassigned). O(1) per query vs the map's O(log n).
  std::vector<NodeId> ServerByPartition(int num_partitions) const;
};

struct RolePlannerConfig {
  // ActivePSs run on this fraction of transient nodes ("best performance
  // when running ActivePSs on half of the resources", §3.3).
  double active_ps_fraction = 0.5;
  // Ratio thresholds from §3.3: stage 2 above 1:1, stage 3 above 15:1.
  double stage2_threshold = 1.0;
  double stage3_threshold = 15.0;
  // Benchmarks pin the stage to compare modalities (Figs. 11-14).
  std::optional<Stage> forced_stage;
  // Benchmarks also pin the ActivePS count (Fig. 12 sweeps 16/32/48).
  std::optional<int> forced_active_ps_count;
};

class RolePlanner {
 public:
  explicit RolePlanner(RolePlannerConfig config) : config_(config) {}

  Stage PickStage(const TierCounts& counts) const;

  // Plans roles for the given membership. `previous` (may be null) is
  // used for placement stability. num_partitions is the fixed global N.
  RoleAssignment Plan(const std::vector<NodeInfo>& nodes, int num_partitions,
                      const RoleAssignment* previous) const;

  const RolePlannerConfig& config() const { return config_; }
  void set_forced_stage(std::optional<Stage> stage) { config_.forced_stage = stage; }

 private:
  RolePlannerConfig config_;
};

}  // namespace proteus

#endif  // SRC_AGILEML_ROLES_H_
