#include "src/agileml/data_assignment.h"

#include <algorithm>

#include "src/common/logging.h"

namespace proteus {

DataAssignment::DataAssignment(std::int64_t num_items, int num_blocks)
    : num_items_(num_items),
      num_blocks_(num_blocks),
      owner_(static_cast<std::size_t>(num_blocks), kInvalidNode),
      loaded_(static_cast<std::size_t>(num_blocks)) {
  PROTEUS_CHECK_GT(num_items, 0);
  PROTEUS_CHECK_GT(num_blocks, 0);
}

ItemRange DataAssignment::BlockRange(int block) const {
  PROTEUS_CHECK_GE(block, 0);
  PROTEUS_CHECK_LT(block, num_blocks_);
  const std::int64_t begin = num_items_ * block / num_blocks_;
  const std::int64_t end = num_items_ * (block + 1) / num_blocks_;
  return {begin, end};
}

std::int64_t DataAssignment::BlockBytes(int block, double bytes_per_item) const {
  return static_cast<std::int64_t>(static_cast<double>(BlockRange(block).size()) *
                                   bytes_per_item);
}

std::vector<BlockMove> DataAssignment::Rebalance(const std::vector<NodeId>& workers) {
  PROTEUS_CHECK(!workers.empty());
  std::vector<BlockMove> moves;
  const int n = static_cast<int>(workers.size());
  const int base = num_blocks_ / n;
  const int extra = num_blocks_ % n;
  // Target counts: first `extra` workers (by list order) get base+1.
  std::map<NodeId, int> target;
  for (int i = 0; i < n; ++i) {
    target[workers[i]] = base + (i < extra ? 1 : 0);
  }
  // Current counts among the new worker set; blocks owned by nodes
  // outside the set become orphans to reassign.
  std::map<NodeId, int> have;
  for (const NodeId w : workers) {
    have[w] = 0;
  }
  std::vector<int> orphans;
  for (int b = 0; b < num_blocks_; ++b) {
    const NodeId o = owner_[static_cast<std::size_t>(b)];
    auto it = have.find(o);
    if (o != kInvalidNode && it != have.end()) {
      ++it->second;
    } else {
      orphans.push_back(b);
    }
  }
  // Take excess blocks away from over-target nodes (preferring blocks the
  // under-target nodes already have loaded is handled at give-time).
  std::vector<int> pool = orphans;
  for (const NodeId w : workers) {
    while (have[w] > target[w]) {
      // Release this node's highest-index block.
      for (int b = num_blocks_ - 1; b >= 0; --b) {
        if (owner_[static_cast<std::size_t>(b)] == w) {
          pool.push_back(b);
          owner_[static_cast<std::size_t>(b)] = kInvalidNode;
          --have[w];
          break;
        }
      }
    }
  }
  // Hand pooled blocks to under-target nodes, preferring already-loaded
  // blocks for each recipient.
  for (const NodeId w : workers) {
    while (have[w] < target[w]) {
      PROTEUS_CHECK(!pool.empty());
      // Prefer a pooled block this node has loaded.
      auto pick = pool.end();
      for (auto it = pool.begin(); it != pool.end(); ++it) {
        if (IsLoaded(*it, w)) {
          pick = it;
          break;
        }
      }
      if (pick == pool.end()) {
        pick = pool.begin();
      }
      const int b = *pick;
      pool.erase(pick);
      const NodeId prev = owner_[static_cast<std::size_t>(b)];
      const bool needs_load = !IsLoaded(b, w);
      owner_[static_cast<std::size_t>(b)] = w;
      loaded_[static_cast<std::size_t>(b)].insert(w);
      ++have[w];
      moves.push_back({b, prev, w, needs_load});
    }
  }
  PROTEUS_CHECK(pool.empty());
  return moves;
}

void DataAssignment::MarkLoaded(int block, NodeId node) {
  PROTEUS_CHECK_GE(block, 0);
  PROTEUS_CHECK_LT(block, num_blocks_);
  loaded_[static_cast<std::size_t>(block)].insert(node);
}

bool DataAssignment::IsLoaded(int block, NodeId node) const {
  return loaded_[static_cast<std::size_t>(block)].count(node) > 0;
}

std::vector<int> DataAssignment::DropNode(NodeId node) {
  std::vector<int> owned;
  for (int b = 0; b < num_blocks_; ++b) {
    if (owner_[static_cast<std::size_t>(b)] == node) {
      owned.push_back(b);
      owner_[static_cast<std::size_t>(b)] = kInvalidNode;
    }
    loaded_[static_cast<std::size_t>(b)].erase(node);
  }
  return owned;
}

NodeId DataAssignment::OwnerOf(int block) const {
  PROTEUS_CHECK_GE(block, 0);
  PROTEUS_CHECK_LT(block, num_blocks_);
  return owner_[static_cast<std::size_t>(block)];
}

std::vector<int> DataAssignment::BlocksOf(NodeId node) const {
  std::vector<int> blocks;
  for (int b = 0; b < num_blocks_; ++b) {
    if (owner_[static_cast<std::size_t>(b)] == node) {
      blocks.push_back(b);
    }
  }
  return blocks;
}

std::vector<ItemRange> DataAssignment::RangesOf(NodeId node) const {
  std::vector<ItemRange> ranges;
  for (int b : BlocksOf(node)) {
    const ItemRange r = BlockRange(b);
    if (!ranges.empty() && ranges.back().end == r.begin) {
      ranges.back().end = r.end;  // Merge adjacent blocks.
    } else {
      ranges.push_back(r);
    }
  }
  return ranges;
}

std::int64_t DataAssignment::ItemCountOf(NodeId node) const {
  std::int64_t count = 0;
  for (const auto& r : RangesOf(node)) {
    count += r.size();
  }
  return count;
}

bool DataAssignment::OwnershipIsComplete() const {
  for (int b = 0; b < num_blocks_; ++b) {
    if (owner_[static_cast<std::size_t>(b)] == kInvalidNode) {
      return false;
    }
  }
  return true;
}

}  // namespace proteus
