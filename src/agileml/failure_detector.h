// Heartbeat/lease failure detector (ISSUE 5, Proteus §3.3): the paper's
// controller *learns* about failures, but until now every failure in
// this repo was announced through an explicit Fail() call — unannounced
// spot terminations, the common case on volatile instances, were
// unrepresentable. The detector closes that gap: every live node renews
// a lease (Heartbeat) each runtime clock; the controller polls once per
// clock and nodes whose lease has lapsed move through a two-stage state
// machine:
//
//   alive --miss >= suspect_after--> suspected
//   suspected --heartbeat--> alive        (false positive, counted)
//   suspected --miss >= confirm_after--> confirmed dead (untracked)
//
// Everything is keyed on the integer sim clock, so detection latency is
// exact and deterministic: a node silenced at clock C is confirmed at
// clock C + confirm_after, never later — the ConsistencyAuditor checks
// this bound as an invariant during chaos runs.
#ifndef SRC_AGILEML_FAILURE_DETECTOR_H_
#define SRC_AGILEML_FAILURE_DETECTOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/types.h"

namespace proteus {

struct FailureDetectorConfig {
  bool enabled = false;
  // Missed clocks before a node becomes suspected (>= 1).
  int suspect_after = 1;
  // Missed clocks before a suspected node is confirmed dead
  // (> suspect_after). This is the detection-latency bound.
  int confirm_after = 3;
};

struct ConfirmedDeath {
  NodeId node = kInvalidNode;
  // Clocks between the last lease renewal and confirmation: the
  // detection latency, exactly confirm_after when polled every clock.
  std::int64_t missed_clocks = 0;
};

struct FailureDetectorReport {
  std::vector<NodeId> newly_suspected;
  std::vector<ConfirmedDeath> confirmed_dead;
};

class FailureDetector {
 public:
  explicit FailureDetector(FailureDetectorConfig config = {});

  const FailureDetectorConfig& config() const { return config_; }

  // Starts tracking `node` with its lease fresh as of `now_clock`.
  // Re-registering an already tracked node just renews the lease.
  void Register(NodeId node, std::int64_t now_clock);

  // Stops tracking (announced eviction/failure paths: the controller
  // already knows, no detection needed). No-op if untracked.
  void Unregister(NodeId node);

  // Lease renewal. Returns true when the node was under suspicion — a
  // false positive the caller may want to count. No-op (returns false)
  // for untracked nodes.
  bool Heartbeat(NodeId node, std::int64_t now_clock);

  // Evaluates every lease against `now_clock` and returns the state
  // transitions, in ascending node order (deterministic). Confirmed
  // nodes leave the tracked set.
  FailureDetectorReport Poll(std::int64_t now_clock);

  // Clamps every lease's renewal clock to `now_clock`. Must be called
  // when the runtime clock rewinds (rollback / checkpoint restore):
  // leases renewed at now-discarded future clocks would otherwise defer
  // suspicion of an already-dead node by the rewind distance, stretching
  // detection latency — and the backup-sync suppression window — far
  // past confirm_after. Live nodes renew on the next re-executed clock,
  // so clamping costs them nothing.
  void RewindTo(std::int64_t now_clock);

  bool IsTracked(NodeId node) const;
  bool IsSuspected(NodeId node) const;
  // Clock of the node's last lease renewal; kInvalidClock semantics do
  // not apply here — callers must only ask about tracked nodes.
  std::int64_t LastHeartbeat(NodeId node) const;
  std::vector<NodeId> Tracked() const;
  std::vector<NodeId> Suspected() const;
  std::size_t tracked_count() const { return leases_.size(); }

  std::uint64_t suspicions() const { return suspicions_; }
  std::uint64_t confirmations() const { return confirmations_; }
  std::uint64_t false_positives() const { return false_positives_; }

 private:
  struct Lease {
    std::int64_t last_heartbeat = 0;
    bool suspected = false;
  };

  FailureDetectorConfig config_;
  std::map<NodeId, Lease> leases_;
  std::uint64_t suspicions_ = 0;
  std::uint64_t confirmations_ = 0;
  std::uint64_t false_positives_ = 0;
};

}  // namespace proteus

#endif  // SRC_AGILEML_FAILURE_DETECTOR_H_
